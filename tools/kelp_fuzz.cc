/**
 * @file
 * kelp-fuzz: deterministic adversarial scenario fuzzing for the Kelp
 * runtime.
 *
 * Two modes:
 *
 *  - campaign (default): generate and execute --trials fuzzed
 *    scenarios, coverage-guided by the controller's decision log,
 *    shrink every failure to a 1-minimal spec, and print a canonical
 *    report. The report is byte-identical for any --jobs value (run
 *    twice with --jobs 1 and --jobs 8 and diff it -- CI does).
 *    --archive-dir writes each finding as a corpus entry for triage
 *    and possible promotion into tests/corpus/.
 *
 *  - replay (--replay DIR): load every *.scenario entry in DIR and
 *    judge each against the oracle named in its `# oracle:`
 *    directive. An open entry must still fire (a miss means the
 *    corpus is stale); an entry marked `# status: fixed` is a
 *    regression gate and must NOT fire (a hit means the repaired
 *    bug is back). This is what the tests/corpus/ ctest target and
 *    the fuzz-smoke CI job wrap.
 *
 * Exit status: 0 on success (campaign complete, or every replay
 * entry behaves as its status directs), 1 when any entry misbehaves
 * or the replay directory holds no entries at all.
 */

#include <cstdio>
#include <fstream>

#include "fuzz/fuzzer.hh"
#include "sim/log.hh"
#include "sim/options.hh"

using namespace kelp;

namespace {

int
replayCorpus(const std::string &dir, const fuzz::OracleConfig &ocfg)
{
    const auto entries = fuzz::loadCorpus(dir);
    if (entries.empty()) {
        // A replay gate that finds nothing must not pass: a typo'd
        // path would otherwise read as a green regression run.
        std::fprintf(stderr, "no *.scenario entries under %s\n",
                     dir.c_str());
        return 1;
    }
    int bad = 0;
    for (const auto &[name, entry] : entries) {
        const bool fires =
            fuzz::oracleFires(entry.spec, entry.oracle, ocfg);
        const char *verdict;
        if (entry.fixed) {
            // Fixed entries gate regressions: firing again means the
            // repaired bug is back.
            verdict = fires ? "REGRESSED" : "ok (fixed)";
            if (fires)
                ++bad;
        } else {
            verdict = fires ? "ok  " : "MISS";
            if (!fires)
                ++bad;
        }
        std::printf("%s %s (%s)\n", verdict, name.c_str(),
                    entry.oracle.c_str());
    }
    std::printf("%zu entr%s, %d failure%s\n", entries.size(),
                entries.size() == 1 ? "y" : "ies", bad,
                bad == 1 ? "" : "s");
    return bad ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Options opts(
        "kelp-fuzz",
        "deterministic adversarial scenario fuzzer (see DESIGN.md "
        "section 12)");
    opts.addInt("seed", 1, "base campaign seed");
    opts.addInt("trials", 64, "scenarios to generate and execute");
    opts.addInt("jobs", 1,
                "worker threads (0 = all cores); never changes the "
                "report");
    opts.addInt("batch", 8,
                "trials per generation batch (guidance granularity)");
    opts.addBool("shrink", true,
                 "minimize failing specs before reporting");
    opts.addInt("max-shrink", 400,
                "shrink budget: candidate evaluations per finding");
    opts.addDouble("thrash-rate", 0.25,
                   "ladder-thrash oracle threshold, SLO rung "
                   "transitions per controller sample");
    opts.addString("report", "",
                   "write the report to this file instead of stdout");
    opts.addString("archive-dir", "",
                   "archive shrunk findings as corpus entries here");
    opts.addString("corpus", "",
                   "seed the mutation pool with this corpus "
                   "directory's entries");
    opts.addString("replay", "",
                   "replay this corpus directory instead of fuzzing; "
                   "exit 1 unless every open entry fires its oracle "
                   "and every '# status: fixed' entry stays quiet");
    if (!opts.parse(argc, argv))
        return 0;

    fuzz::OracleConfig ocfg;
    ocfg.thrashRate = opts.getDouble("thrash-rate");

    // Oracles count contract violations instead of aborting on them.
    sim::setContractMode(sim::ContractMode::Count);

    if (opts.isSet("replay"))
        return replayCorpus(opts.getString("replay"), ocfg);

    fuzz::FuzzOptions fopts;
    fopts.seed = static_cast<uint64_t>(opts.getInt("seed"));
    fopts.trials = static_cast<int>(opts.getInt("trials"));
    fopts.jobs = static_cast<int>(opts.getInt("jobs"));
    fopts.batch = static_cast<int>(opts.getInt("batch"));
    fopts.shrink = opts.getBool("shrink");
    fopts.maxShrinkAttempts =
        static_cast<int>(opts.getInt("max-shrink"));
    fopts.oracle = ocfg;

    if (opts.isSet("corpus")) {
        for (auto &[name, entry] :
             fuzz::loadCorpus(opts.getString("corpus")))
            fopts.extraSeeds.push_back(entry.spec);
    }

    fuzz::FuzzReport report = fuzz::fuzz(fopts);
    const std::string text = report.toText() + "\n";

    if (opts.isSet("report")) {
        std::ofstream out(opts.getString("report"));
        out << text;
        out.close();
        if (!out)
            sim::fatal("cannot write report to ",
                       opts.getString("report"));
    } else {
        std::fputs(text.c_str(), stdout);
    }

    if (opts.isSet("archive-dir")) {
        const std::string dir = opts.getString("archive-dir");
        for (const fuzz::Finding &f : report.findings) {
            const std::string name = fuzz::saveCorpusEntry(
                dir, fuzz::CorpusEntry{f.oracle, false, f.shrunk});
            std::fprintf(stderr, "archived %s/%s\n", dir.c_str(),
                         name.c_str());
        }
    }

    return 0;
}
