/**
 * @file
 * kelp_lint CLI: walk the tree, lint every C++ source, apply the
 * checked-in baseline, and exit non-zero on any new finding.
 *
 * Usage:
 *   kelp_lint [--root=DIR] [--baseline=FILE] [--update-baseline]
 *             [dir...]
 *
 * With no directories given, the standard sweep is src, tools, bench,
 * tests, and examples under the root. tests/lint_fixtures/ is always
 * skipped: its files are deliberately bad (they are the linter's own
 * test corpus).
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace fs = std::filesystem;
using kelp::lint::Baseline;
using kelp::lint::Finding;

namespace {

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

bool
lintableExtension(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string baseline_path;
    bool update_baseline = false;
    std::vector<std::string> dirs;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--root=", 0) == 0) {
            root = arg.substr(7);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline_path = arg.substr(11);
        } else if (arg == "--update-baseline") {
            update_baseline = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: kelp_lint [--root=DIR] [--baseline=FILE] "
                "[--update-baseline] [dir...]\n");
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "kelp_lint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            dirs.push_back(arg);
        }
    }
    if (dirs.empty())
        dirs = {"src", "tools", "bench", "tests", "examples"};

    Baseline baseline;
    if (!baseline_path.empty()) {
        std::string text;
        if (!readFile(baseline_path, text)) {
            std::fprintf(stderr,
                         "kelp_lint: cannot read baseline '%s'\n",
                         baseline_path.c_str());
            return 2;
        }
        if (!baseline.parse(text)) {
            std::fprintf(stderr,
                         "kelp_lint: malformed baseline '%s'\n",
                         baseline_path.c_str());
            return 2;
        }
    }

    // Deterministic sweep: collect, then sort, then lint.
    std::vector<fs::path> files;
    for (const std::string &d : dirs) {
        fs::path top = fs::path(root) / d;
        if (!fs::exists(top))
            continue;
        for (auto it = fs::recursive_directory_iterator(top);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory()) {
                // The fixture corpora are deliberately bad.
                if (it->path().filename() == "lint_fixtures" ||
                    it->path().filename() == "analyze_fixtures")
                    it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() &&
                lintableExtension(it->path()))
                files.push_back(it->path());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Finding> fresh;
    size_t baselined = 0;
    for (const fs::path &p : files) {
        std::string content;
        if (!readFile(p, content)) {
            std::fprintf(stderr, "kelp_lint: cannot read '%s'\n",
                         p.string().c_str());
            return 2;
        }
        std::string rel =
            fs::relative(p, root).generic_string();
        for (Finding &f : kelp::lint::lintSource(rel, content)) {
            if (baseline.covers(f))
                ++baselined;
            else
                fresh.push_back(std::move(f));
        }
    }

    if (update_baseline) {
        if (baseline_path.empty()) {
            std::fprintf(stderr,
                         "kelp_lint: --update-baseline needs "
                         "--baseline=FILE\n");
            return 2;
        }
        std::ofstream out(baseline_path, std::ios::trunc);
        out << "# kelp_lint baseline: grandfathered findings, one "
               "per line as file|rule|excerpt.\n"
            << "# The goal is to keep this file empty; fix or "
               "allow() findings instead of re-baselining.\n";
        for (const Finding &f : fresh)
            out << Baseline::entry(f) << "\n";
        std::printf("kelp_lint: baseline updated with %zu entries\n",
                    fresh.size());
        return 0;
    }

    for (const Finding &f : fresh)
        std::printf("%s\n", kelp::lint::formatFinding(f).c_str());

    std::printf("kelp_lint: %zu files, %zu findings", files.size(),
                fresh.size());
    if (baselined)
        std::printf(" (%zu baselined)", baselined);
    std::printf("\n");
    return fresh.empty() ? 0 : 1;
}
