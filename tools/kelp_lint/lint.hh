/**
 * @file
 * kelp-lint: project-specific static analysis for the Kelp tree.
 *
 * The two hardest-won properties of this codebase are enforced here
 * as machine-checked rules instead of convention:
 *
 *  - bit-identical-per-seed runs (all randomness and time must come
 *    from the seeded sim::Rng / the simulated clock), and
 *  - knob discipline (all hardware actuation flows through the
 *    managed KnobSink so retry, snapshot, and reconciliation stay
 *    correct).
 *
 * The engine is a self-contained tokenizer-based pass (no libclang):
 * it lexes a translation unit, strips comments and literals, and runs
 * a fixed set of rules keyed off the file's repo-relative path. It is
 * deliberately a library -- tests drive it directly on fixture
 * sources, and the `kelp_lint` CLI (main.cc) walks the tree.
 *
 * Rules (see DESIGN.md section 8 for rationale and examples):
 *
 *   determinism      banned nondeterminism sources (rand, mt19937,
 *                    random_device, wall-clock reads) outside
 *                    src/sim/rng.*
 *   unordered-iter   range-for over std::unordered_map/set in
 *                    src/kelp/ and src/sim/ control paths
 *   knob-discipline  direct HAL knob mutator calls outside src/hal/
 *                    and the managed controllers in src/kelp/
 *   float-eq         ==/!= against floating-point literals
 *   include-guard    src/ headers must guard with KELP_<DIR>_<FILE>_HH
 *   using-namespace  `using namespace` in any header
 *   raw-parallelism  raw std::thread/std::async/mutex use outside
 *                    the deterministic pool in src/exp/pool.*
 *   bad-suppression  kelp-lint suppression comment without a reason
 *
 * Suppressions: `// kelp-lint: allow(<rule>): <reason>` on the same
 * line or the line directly above silences one finding; `allow-file`
 * silences the rule for the whole file. The reason is mandatory.
 */

#ifndef KELP_TOOLS_KELP_LINT_LINT_HH
#define KELP_TOOLS_KELP_LINT_LINT_HH

#include <set>
#include <string>
#include <vector>

namespace kelp {
namespace lint {

/** One rule violation at a source location. */
struct Finding
{
    /** Repo-relative path (forward slashes), e.g. "src/kelp/x.cc". */
    std::string file;

    /** 1-based source line. */
    int line = 0;

    /** Rule identifier (see file comment). */
    std::string rule;

    /** Human-readable explanation with the fix direction. */
    std::string message;

    /** Trimmed text of the offending source line. */
    std::string excerpt;
};

/** All rule identifiers the engine can emit, in report order. */
const std::vector<std::string> &allRules();

/**
 * Lint one translation unit. @p path is the repo-relative path that
 * scopes path-sensitive rules (it need not exist on disk); @p content
 * is the full source text. Returns findings sorted by line, with
 * valid suppressions already applied.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** Expected include-guard macro for a header under src/ (or tools/):
 * KELP_<DIR...>_<FILE>_HH with non-alphanumerics mapped to '_'. */
std::string expectedGuard(const std::string &path);

/** One formatted report line: "file:line: [rule] message". */
std::string formatFinding(const Finding &f);

/**
 * Checked-in set of grandfathered findings. Entries are one per
 * line, "file|rule|trimmed excerpt", '#' starts a comment. Line
 * numbers are deliberately not part of the key so unrelated edits do
 * not invalidate the baseline. The shipped baseline is empty and the
 * goal is to keep it that way.
 */
class Baseline
{
  public:
    /** Parse baseline text. Returns false on a malformed line. */
    bool parse(const std::string &text);

    /** True when the finding is grandfathered. */
    bool covers(const Finding &f) const;

    /** The baseline key for a finding. */
    static std::string entry(const Finding &f);

    size_t size() const { return entries_.size(); }

  private:
    std::set<std::string> entries_;
};

} // namespace lint
} // namespace kelp

#endif // KELP_TOOLS_KELP_LINT_LINT_HH
