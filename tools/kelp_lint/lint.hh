/**
 * @file
 * kelp-lint: project-specific static analysis for the Kelp tree.
 *
 * The two hardest-won properties of this codebase are enforced here
 * as machine-checked rules instead of convention:
 *
 *  - bit-identical-per-seed runs (all randomness and time must come
 *    from the seeded sim::Rng / the simulated clock), and
 *  - knob discipline (all hardware actuation flows through the
 *    managed KnobSink so retry, snapshot, and reconciliation stay
 *    correct).
 *
 * The engine is a self-contained tokenizer-based pass (no libclang):
 * it lexes a translation unit, strips comments and literals, and runs
 * a fixed set of rules keyed off the file's repo-relative path. It is
 * deliberately a library -- tests drive it directly on fixture
 * sources, and the `kelp_lint` CLI (main.cc) walks the tree. Whole-
 * program properties that need a cross-TU view (snapshot
 * completeness, audit completeness, layering) live in the sibling
 * kelp-analyze tool; both share the lexer, the `kelp:` suppression
 * grammar, and the baseline format via tools/kelp_check.
 *
 * Rules (see DESIGN.md section 8 for rationale and examples):
 *
 *   determinism      banned nondeterminism sources (rand, mt19937,
 *                    random_device, wall-clock reads) outside
 *                    src/sim/rng.*
 *   unordered-iter   range-for over std::unordered_map/set in
 *                    src/kelp/ and src/sim/ control paths
 *   knob-discipline  direct HAL knob mutator calls outside src/hal/
 *                    and the managed controllers in src/kelp/
 *   float-eq         ==/!= against floating-point literals
 *   include-guard    src/ headers must guard with KELP_<DIR>_<FILE>_HH
 *   using-namespace  `using namespace` in any header
 *   raw-parallelism  raw std::thread/std::async/mutex use outside
 *                    the deterministic pool in src/exp/pool.*
 *   bad-suppression  kelp: suppression comment without a reason
 *
 * Suppressions: `// kelp: allow(<rule>): <reason>` on the same line
 * or the line directly above silences one finding; `allow-file`
 * silences the rule for the whole file. The reason is mandatory.
 */

#ifndef KELP_TOOLS_KELP_LINT_LINT_HH
#define KELP_TOOLS_KELP_LINT_LINT_HH

#include <string>
#include <vector>

#include "check.hh"

namespace kelp {
namespace lint {

using check::Baseline;
using check::Finding;
using check::formatFinding;

/** All rule identifiers the engine can emit, in report order. */
const std::vector<std::string> &allRules();

/**
 * Lint one translation unit. @p path is the repo-relative path that
 * scopes path-sensitive rules (it need not exist on disk); @p content
 * is the full source text. Returns findings sorted by line, with
 * valid suppressions already applied.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** Expected include-guard macro for a header under src/ (or tools/):
 * KELP_<DIR...>_<FILE>_HH with non-alphanumerics mapped to '_'. */
std::string expectedGuard(const std::string &path);

} // namespace lint
} // namespace kelp

#endif // KELP_TOOLS_KELP_LINT_LINT_HH
