#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

namespace kelp {
namespace lint {

namespace {

using check::endsWith;
using check::isHeader;
using check::splitLines;
using check::startsWith;
using check::Tok;
using check::TokKind;
using check::trimmed;

// ---------------------------------------------------------------
// Rule: determinism. The bit-identical-per-seed guarantee dies the
// moment any code path reads entropy or the wall clock; every
// stochastic draw must come from the explicitly seeded sim::Rng and
// every timestamp from the simulated clock.

const std::set<std::string> &
bannedEntropy()
{
    static const std::set<std::string> kBanned = {
        "rand",          "srand",        "rand_r",
        "drand48",       "lrand48",      "mrand48",
        "random_device", "mt19937",      "mt19937_64",
        "minstd_rand",   "minstd_rand0", "default_random_engine",
        "random_shuffle"};
    return kBanned;
}

const std::set<std::string> &
bannedClocks()
{
    static const std::set<std::string> kBanned = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "localtime",
        "gmtime",        "strftime",      "ftime"};
    return kBanned;
}

void
ruleDeterminism(const std::string &path, const std::vector<Tok> &toks,
                const std::vector<std::string> &lines,
                std::vector<Finding> &out)
{
    // The one blessed entropy source implements itself here.
    if (endsWith(path, "src/sim/rng.cc") ||
        endsWith(path, "src/sim/rng.hh") ||
        startsWith(path, "src/sim/rng."))
        return;

    auto excerpt = [&](int line) {
        return line >= 1 && line <= static_cast<int>(lines.size())
                   ? trimmed(lines[line - 1])
                   : std::string();
    };

    for (size_t i = 0; i < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Id)
            continue;
        // Member accesses are someone else's symbols (e.g. a field
        // named `random` on a config struct).
        bool member = i > 0 && (toks[i - 1].text == "." ||
                                toks[i - 1].text == "->");
        if (member)
            continue;
        // Qualified names: only std:: / std::chrono:: (and the
        // global ::) versions of the banned symbols are the real
        // thing; my::random_device is someone else's type.
        if (i > 0 && toks[i - 1].text == "::" && i > 1 &&
            toks[i - 2].kind == TokKind::Id &&
            toks[i - 2].text != "std" && toks[i - 2].text != "chrono") {
            continue;
        }

        if (bannedEntropy().count(t.text)) {
            out.push_back(
                {path, t.line, "determinism",
                 "'" + t.text +
                     "' is a nondeterministic entropy source; draw "
                     "from the seeded sim::Rng (src/sim/rng.hh) "
                     "instead",
                 excerpt(t.line)});
            continue;
        }
        if (bannedClocks().count(t.text)) {
            out.push_back(
                {path, t.line, "determinism",
                 "'" + t.text +
                     "' reads the wall clock; use the simulated "
                     "engine time so runs stay bit-identical per "
                     "seed",
                 excerpt(t.line)});
            continue;
        }
        // `time(...)` / `clock(...)` as free-function calls. Member
        // calls (engine.time()) and unrelated declarations (`double
        // time;`) stay legal.
        if ((t.text == "time" || t.text == "clock") &&
            i + 1 < toks.size() && toks[i + 1].text == "(") {
            out.push_back(
                {path, t.line, "determinism",
                 "'" + t.text +
                     "()' reads the wall clock; use the simulated "
                     "engine time instead",
                 excerpt(t.line)});
        }
    }
}

// ---------------------------------------------------------------
// Rule: unordered-iter. Iteration order of unordered containers is
// implementation-defined and can differ run to run once pointers or
// hashes feed the bucketing; iterating one inside a control path
// silently breaks replayability. Scope: the controller and simulator
// cores, where ordering feeds actuation decisions and event streams.

void
ruleUnorderedIter(const std::string &path,
                  const std::vector<Tok> &toks,
                  const std::vector<std::string> &lines,
                  std::vector<Finding> &out)
{
    if (!startsWith(path, "src/kelp/") &&
        !startsWith(path, "src/sim/"))
        return;

    auto isUnordered = [](const std::string &s) {
        return s == "unordered_map" || s == "unordered_set" ||
               s == "unordered_multimap" ||
               s == "unordered_multiset";
    };

    // Pass 1: names declared with an unordered container type. After
    // the closing template bracket, the next identifier-ish token is
    // the declared name (skipping &, *, and cv qualifiers).
    std::set<std::string> names;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Id || !isUnordered(toks[i].text))
            continue;
        size_t j = i + 1;
        if (j >= toks.size() || toks[j].text != "<")
            continue;
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<")
                ++depth;
            else if (toks[j].text == "<<")
                depth += 2;
            else if (toks[j].text == ">")
                --depth;
            else if (toks[j].text == ">>")
                depth -= 2;
            if (depth <= 0)
                break;
        }
        for (++j; j < toks.size(); ++j) {
            const Tok &t = toks[j];
            if (t.text == "&" || t.text == "*" || t.text == "const")
                continue;
            if (t.kind == TokKind::Id)
                names.insert(t.text);
            break;
        }
    }

    // Pass 2: range-for statements whose range expression mentions a
    // declared unordered name (or an unordered temporary).
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Id || toks[i].text != "for" ||
            toks[i + 1].text != "(")
            continue;
        size_t j = i + 1;
        int depth = 0;
        size_t colon = 0;
        size_t close = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "(")
                ++depth;
            else if (toks[j].text == ")") {
                --depth;
                if (depth == 0) {
                    close = j;
                    break;
                }
            } else if (toks[j].text == ":" && depth == 1 && !colon) {
                colon = j;
            }
        }
        if (!colon || !close)
            continue;
        for (size_t k = colon + 1; k < close; ++k) {
            if (toks[k].kind == TokKind::Id &&
                (names.count(toks[k].text) ||
                 isUnordered(toks[k].text))) {
                int line = toks[i].line;
                out.push_back(
                    {path, line, "unordered-iter",
                     "range-for over unordered container '" +
                         toks[k].text +
                         "' in a control path; iteration order is "
                         "nondeterministic -- use a sorted/ordered "
                         "container or sort the keys first",
                     line <= static_cast<int>(lines.size())
                         ? trimmed(lines[line - 1])
                         : ""});
                break;
            }
        }
    }
}

// ---------------------------------------------------------------
// Rule: knob-discipline. Hardware actuation must flow through the
// managed KnobSink (controllers) or the HAL itself: a direct mutator
// call anywhere else bypasses actuation retry, checkpointing, and
// restart reconciliation, so the registry's idea of the hardware and
// the controller's idea of its intent silently diverge.

void
ruleKnobDiscipline(const std::string &path,
                   const std::vector<Tok> &toks,
                   const std::vector<std::string> &lines,
                   std::vector<Finding> &out)
{
    bool scoped = (startsWith(path, "src/") ||
                   startsWith(path, "tools/") ||
                   startsWith(path, "bench/")) &&
                  !startsWith(path, "src/hal/") &&
                  !startsWith(path, "src/kelp/");
    if (!scoped)
        return;

    static const std::set<std::string> kMutators = {
        "setCores", "setPrefetchersEnabled", "setCatWays",
        "adjustCores", "setMemBinding"};

    for (size_t i = 1; i + 1 < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Id || !kMutators.count(t.text))
            continue;
        if (toks[i - 1].text != "." && toks[i - 1].text != "->")
            continue;
        if (toks[i + 1].text != "(")
            continue;
        out.push_back(
            {path, t.line, "knob-discipline",
             "direct HAL knob mutator '" + t.text +
                 "()' outside src/hal/ and the managed controllers; "
                 "route actuation through the controller's KnobSink "
                 "so retry/snapshot/reconciliation stay correct",
             t.line <= static_cast<int>(lines.size())
                 ? trimmed(lines[t.line - 1])
                 : ""});
    }
}

// ---------------------------------------------------------------
// Rule: float-eq. Exact ==/!= on floating-point values is almost
// always a latent bug (accumulated rounding makes it flap); the rule
// flags comparisons where either operand is a floating literal.

bool
isFloatLiteral(const Tok &t)
{
    if (t.kind != TokKind::Num)
        return false;
    if (t.text.size() > 1 && (t.text[1] == 'x' || t.text[1] == 'X'))
        return false; // hex integer
    if (t.text.find('.') != std::string::npos)
        return true;
    // Decimal exponent form (1e9) without a dot.
    return t.text.find('e') != std::string::npos ||
           t.text.find('E') != std::string::npos;
}

void
ruleFloatEq(const std::string &path, const std::vector<Tok> &toks,
            const std::vector<std::string> &lines,
            std::vector<Finding> &out)
{
    for (size_t i = 1; i + 1 < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Punct ||
            (t.text != "==" && t.text != "!="))
            continue;
        if (!isFloatLiteral(toks[i - 1]) &&
            !isFloatLiteral(toks[i + 1]))
            continue;
        out.push_back(
            {path, t.line, "float-eq",
             "exact '" + t.text +
                 "' against a floating-point literal; compare with "
                 "an explicit tolerance (or justify exactness with "
                 "an allow)",
             t.line <= static_cast<int>(lines.size())
                 ? trimmed(lines[t.line - 1])
                 : ""});
    }
}

// ---------------------------------------------------------------
// Rule: include-guard. Guards must be derivable from the path so a
// moved header cannot silently shadow another one's guard.

void
ruleIncludeGuard(const std::string &path,
                 const std::vector<std::string> &lines,
                 std::vector<Finding> &out)
{
    if (!startsWith(path, "src/") || !isHeader(path))
        return;
    std::string expected = expectedGuard(path);

    int ifndef_line = 0;
    std::string guard;
    for (size_t i = 0; i < lines.size(); ++i) {
        std::string l = trimmed(lines[i]);
        if (!startsWith(l, "#ifndef"))
            continue;
        std::istringstream is(l);
        std::string directive;
        is >> directive >> guard;
        ifndef_line = static_cast<int>(i) + 1;
        break;
    }
    if (!ifndef_line) {
        out.push_back({path, 1, "include-guard",
                       "header has no #ifndef include guard; expected "
                       "'" + expected + "'",
                       ""});
        return;
    }
    if (guard != expected) {
        out.push_back({path, ifndef_line, "include-guard",
                       "include guard '" + guard +
                           "' does not match the path; expected '" +
                           expected + "'",
                       trimmed(lines[ifndef_line - 1])});
        return;
    }
    // The #define must pair with the #ifndef.
    bool defined = false;
    for (size_t i = static_cast<size_t>(ifndef_line);
         i < lines.size(); ++i) {
        if (startsWith(trimmed(lines[i]), "#define " + expected)) {
            defined = true;
            break;
        }
    }
    if (!defined) {
        out.push_back({path, ifndef_line, "include-guard",
                       "include guard '" + expected +
                           "' is never #defined",
                       trimmed(lines[ifndef_line - 1])});
    }
}

// ---------------------------------------------------------------
// Rule: using-namespace. A header-level using-directive leaks the
// namespace into every includer and changes overload resolution at a
// distance.

void
ruleUsingNamespace(const std::string &path,
                   const std::vector<Tok> &toks,
                   const std::vector<std::string> &lines,
                   std::vector<Finding> &out)
{
    if (!isHeader(path))
        return;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind == TokKind::Id &&
            toks[i].text == "using" &&
            toks[i + 1].kind == TokKind::Id &&
            toks[i + 1].text == "namespace") {
            int line = toks[i].line;
            out.push_back(
                {path, line, "using-namespace",
                 "'using namespace' in a header leaks into every "
                 "includer; qualify names or move the directive "
                 "into a .cc file",
                 line <= static_cast<int>(lines.size())
                     ? trimmed(lines[line - 1])
                     : ""});
        }
    }
}

// ---------------------------------------------------------------
// Rule: raw-parallelism. All concurrency must flow through the
// deterministic worker pool (src/exp/pool.*): jobs indexed, RNG
// streams derived per index, results committed in index order. A raw
// std::thread / std::async / mutex anywhere else can reorder side
// effects between runs and silently break the bit-identical-per-seed
// guarantee the pool exists to preserve.

const std::set<std::string> &
bannedParallelism()
{
    static const std::set<std::string> kBanned = {
        "thread",
        "jthread",
        "async",
        "mutex",
        "recursive_mutex",
        "timed_mutex",
        "recursive_timed_mutex",
        "shared_mutex",
        "shared_timed_mutex",
        "condition_variable",
        "condition_variable_any"};
    return kBanned;
}

void
ruleRawParallelism(const std::string &path,
                   const std::vector<Tok> &toks,
                   const std::vector<std::string> &lines,
                   std::vector<Finding> &out)
{
    bool scoped = startsWith(path, "src/") ||
                  startsWith(path, "tools/") ||
                  startsWith(path, "bench/");
    if (!scoped || startsWith(path, "src/exp/pool."))
        return;

    for (size_t i = 0; i < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Id || !bannedParallelism().count(t.text))
            continue;
        // Member accesses are someone else's symbols.
        if (i > 0 &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->"))
            continue;
        // Qualified names: only the std:: (or global ::) versions are
        // the real thing; this also keeps std::this_thread::sleep_for
        // legal, since `this_thread` is not in the banned set.
        if (i > 0 && toks[i - 1].text == "::" && i > 1 &&
            toks[i - 2].kind == TokKind::Id &&
            toks[i - 2].text != "std")
            continue;
        out.push_back(
            {path, t.line, "raw-parallelism",
             "raw '" + t.text +
                 "' outside src/exp/pool.*; all parallelism must go "
                 "through the deterministic worker pool (exp::runJobs "
                 "/ exp::InitGuard) so results stay byte-identical to "
                 "the serial path",
             t.line <= static_cast<int>(lines.size())
                 ? trimmed(lines[t.line - 1])
                 : ""});
    }
}

} // namespace

const std::vector<std::string> &
allRules()
{
    return check::lintRules();
}

std::string
expectedGuard(const std::string &path)
{
    // Components after the first (src/..., tools/...) form the guard;
    // the leading "src" is elided for brevity, matching the existing
    // KELP_<DIR>_<FILE>_HH convention.
    std::string p = path;
    if (startsWith(p, "src/"))
        p = p.substr(4);
    std::string guard = "KELP_";
    for (char c : p) {
        if (c == '/') {
            guard += '_';
        } else if (c == '.') {
            guard += '_';
        } else if (std::isalnum(static_cast<unsigned char>(c))) {
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        } else {
            guard += '_';
        }
    }
    return guard;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content)
{
    check::LexResult lex = check::tokenize(content);
    std::vector<std::string> lines = splitLines(content);

    std::vector<Finding> bad_sup;
    check::Suppressions sup = check::parseSuppressions(
        path, lex.comments, allRules(), check::analyzeRules(),
        bad_sup);

    std::vector<Finding> raw;
    ruleDeterminism(path, lex.toks, lines, raw);
    ruleUnorderedIter(path, lex.toks, lines, raw);
    ruleKnobDiscipline(path, lex.toks, lines, raw);
    ruleFloatEq(path, lex.toks, lines, raw);
    ruleIncludeGuard(path, lines, raw);
    ruleUsingNamespace(path, lex.toks, lines, raw);
    ruleRawParallelism(path, lex.toks, lines, raw);

    std::vector<Finding> out;
    for (auto &f : raw) {
        if (!sup.covers(f.rule, f.line))
            out.push_back(std::move(f));
    }
    // Suppression-syntax findings are not themselves suppressible:
    // silencing the thing that checks silencing defeats the audit.
    out.insert(out.end(), bad_sup.begin(), bad_sup.end());
    std::stable_sort(out.begin(), out.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return out;
}

} // namespace lint
} // namespace kelp
