#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

namespace kelp {
namespace lint {

namespace {

// ---------------------------------------------------------------
// Lexer. Produces identifier/number/punctuation tokens with line
// numbers; comments are collected separately (suppressions live in
// them), string and character literals are dropped outright, and
// preprocessor lines are skipped (the include-guard rule re-scans the
// raw text itself).

enum class TokKind { Id, Num, Punct };

struct Tok
{
    TokKind kind;
    std::string text;
    int line;
};

struct Comment
{
    int line;
    std::string text;
};

struct LexResult
{
    std::vector<Tok> toks;
    std::vector<Comment> comments;
};

bool
idStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
idChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Two-character punctuators the rules care about. `<<`/`>>` are kept
 * fused so template-bracket balancing can treat them as two. */
bool
isTwoCharPunct(char a, char b)
{
    static const char *kPairs[] = {"==", "!=", "<=", ">=", "::",
                                   "->", "&&", "||", "<<", ">>"};
    for (const char *p : kPairs) {
        if (p[0] == a && p[1] == b)
            return true;
    }
    return false;
}

LexResult
tokenize(const std::string &src)
{
    LexResult out;
    const size_t n = src.size();
    size_t i = 0;
    int line = 1;
    bool at_line_start = true;

    auto advance = [&](size_t k) {
        for (size_t j = 0; j < k && i < n; ++j, ++i) {
            if (src[i] == '\n') {
                ++line;
                at_line_start = true;
            }
        }
    };

    while (i < n) {
        char c = src[i];

        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }

        // Preprocessor directive: skip to end of line, honoring
        // backslash continuations. Line comments inside are still
        // harvested by the suppression scan? No -- suppressions on
        // preprocessor lines are not supported, and none exist.
        if (c == '#' && at_line_start) {
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n &&
                    src[i + 1] == '\n') {
                    advance(2);
                    continue;
                }
                if (src[i] == '\n')
                    break;
                advance(1);
            }
            continue;
        }
        at_line_start = false;

        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            size_t j = src.find('\n', i);
            if (j == std::string::npos)
                j = n;
            out.comments.push_back(
                {line, src.substr(i + 2, j - i - 2)});
            advance(j - i);
            continue;
        }

        // Block comment (recorded at its first line).
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            size_t j = src.find("*/", i + 2);
            size_t end = (j == std::string::npos) ? n : j + 2;
            out.comments.push_back(
                {line, src.substr(i + 2, end - i - 4)});
            advance(end - i);
            continue;
        }

        // Raw string literal R"delim(...)delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            size_t p = i + 2;
            std::string delim;
            while (p < n && src[p] != '(')
                delim += src[p++];
            std::string close = ")" + delim + "\"";
            size_t j = src.find(close, p);
            size_t end =
                (j == std::string::npos) ? n : j + close.size();
            advance(end - i);
            continue;
        }

        // String / character literal.
        if (c == '"' || c == '\'') {
            char q = c;
            size_t j = i + 1;
            while (j < n && src[j] != q) {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            advance((j < n ? j + 1 : n) - i);
            continue;
        }

        if (idStart(c)) {
            size_t j = i;
            while (j < n && idChar(src[j]))
                ++j;
            out.toks.push_back(
                {TokKind::Id, src.substr(i, j - i), line});
            advance(j - i);
            continue;
        }

        // Number: integer or floating literal (including the
        // leading-dot form ".5" and digit separators).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            size_t j = i;
            while (j < n) {
                char d = src[j];
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '.' || d == '\'') {
                    ++j;
                    continue;
                }
                // Exponent sign binds to the literal.
                if ((d == '+' || d == '-') && j > i) {
                    char e = src[j - 1];
                    if (e == 'e' || e == 'E' || e == 'p' ||
                        e == 'P') {
                        ++j;
                        continue;
                    }
                }
                break;
            }
            out.toks.push_back(
                {TokKind::Num, src.substr(i, j - i), line});
            advance(j - i);
            continue;
        }

        // Punctuation.
        if (i + 1 < n && isTwoCharPunct(c, src[i + 1])) {
            out.toks.push_back(
                {TokKind::Punct, src.substr(i, 2), line});
            advance(2);
            continue;
        }
        out.toks.push_back({TokKind::Punct, std::string(1, c), line});
        advance(1);
    }
    return out;
}

// ---------------------------------------------------------------
// Path scoping helpers.

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
isHeader(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".hpp") ||
           endsWith(path, ".h");
}

std::string
trimmed(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------
// Suppressions.

struct Suppressions
{
    /** Rules allowed for the whole file. */
    std::set<std::string> file;

    /** line -> rules allowed on that line (and, for a comment on its
     * own line, the line below it). */
    std::map<int, std::set<std::string>> lines;
};

/** Parse "kelp-lint: allow(rule): reason" comments. A suppression
 * with no reason is itself a finding: the reason is how the next
 * reader learns why the rule does not apply. A line-scoped allow
 * covers its own line and the next non-comment line, so a wrapped
 * multi-line justification still anchors to the code below it. */
Suppressions
parseSuppressions(const std::string &path,
                  const std::vector<Comment> &comments,
                  std::vector<Finding> &bad)
{
    // Every line occupied by a comment (block comments span several).
    std::set<int> comment_lines;
    for (const auto &c : comments) {
        int span = 1 + static_cast<int>(std::count(
                           c.text.begin(), c.text.end(), '\n'));
        for (int l = 0; l < span; ++l)
            comment_lines.insert(c.line + l);
    }
    auto anchor = [&comment_lines](int line) {
        int l = line + 1;
        while (comment_lines.count(l))
            ++l;
        return l;
    };

    Suppressions sup;
    for (const auto &c : comments) {
        // The directive must LEAD the comment: prose that merely
        // mentions kelp-lint (like this file's own documentation)
        // is not a suppression.
        std::string text = trimmed(c.text);
        if (!startsWith(text, "kelp-lint:"))
            continue;
        std::string rest = trimmed(text.substr(10));
        bool file_scope = startsWith(rest, "allow-file");
        if (!file_scope && !startsWith(rest, "allow")) {
            bad.push_back({path, c.line, "bad-suppression",
                           "unrecognized kelp-lint directive "
                           "(expected allow(<rule>): <reason> or "
                           "allow-file(<rule>): <reason>)",
                           trimmed(c.text)});
            continue;
        }
        size_t open = rest.find('(');
        size_t close = rest.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close <= open + 1) {
            bad.push_back({path, c.line, "bad-suppression",
                           "malformed kelp-lint suppression: missing "
                           "(<rule>)",
                           trimmed(c.text)});
            continue;
        }
        std::string rule =
            trimmed(rest.substr(open + 1, close - open - 1));
        std::string tail = trimmed(rest.substr(close + 1));
        if (tail.empty() || tail[0] != ':' ||
            trimmed(tail.substr(1)).empty()) {
            bad.push_back({path, c.line, "bad-suppression",
                           "suppression of '" + rule +
                               "' has no reason; write "
                               "allow(" + rule + "): <why>",
                           trimmed(c.text)});
            continue;
        }
        const auto &known = allRules();
        if (std::find(known.begin(), known.end(), rule) ==
            known.end()) {
            bad.push_back({path, c.line, "bad-suppression",
                           "suppression names unknown rule '" + rule +
                               "'",
                           trimmed(c.text)});
            continue;
        }
        if (file_scope) {
            sup.file.insert(rule);
        } else {
            sup.lines[c.line].insert(rule);
            sup.lines[anchor(c.line)].insert(rule);
        }
    }
    return sup;
}

bool
suppressed(const Suppressions &sup, const Finding &f)
{
    if (sup.file.count(f.rule))
        return true;
    auto it = sup.lines.find(f.line);
    return it != sup.lines.end() && it->second.count(f.rule) > 0;
}

// ---------------------------------------------------------------
// Rule: determinism. The bit-identical-per-seed guarantee dies the
// moment any code path reads entropy or the wall clock; every
// stochastic draw must come from the explicitly seeded sim::Rng and
// every timestamp from the simulated clock.

const std::set<std::string> &
bannedEntropy()
{
    static const std::set<std::string> kBanned = {
        "rand",          "srand",        "rand_r",
        "drand48",       "lrand48",      "mrand48",
        "random_device", "mt19937",      "mt19937_64",
        "minstd_rand",   "minstd_rand0", "default_random_engine",
        "random_shuffle"};
    return kBanned;
}

const std::set<std::string> &
bannedClocks()
{
    static const std::set<std::string> kBanned = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "localtime",
        "gmtime",        "strftime",      "ftime"};
    return kBanned;
}

void
ruleDeterminism(const std::string &path, const std::vector<Tok> &toks,
                const std::vector<std::string> &lines,
                std::vector<Finding> &out)
{
    // The one blessed entropy source implements itself here.
    if (endsWith(path, "src/sim/rng.cc") ||
        endsWith(path, "src/sim/rng.hh") ||
        startsWith(path, "src/sim/rng."))
        return;

    auto excerpt = [&](int line) {
        return line >= 1 && line <= static_cast<int>(lines.size())
                   ? trimmed(lines[line - 1])
                   : std::string();
    };

    for (size_t i = 0; i < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Id)
            continue;
        // Member accesses are someone else's symbols (e.g. a field
        // named `random` on a config struct).
        bool member = i > 0 && (toks[i - 1].text == "." ||
                                toks[i - 1].text == "->");
        if (member)
            continue;
        // Qualified names: only std:: / std::chrono:: (and the
        // global ::) versions of the banned symbols are the real
        // thing; my::random_device is someone else's type.
        if (i > 0 && toks[i - 1].text == "::" && i > 1 &&
            toks[i - 2].kind == TokKind::Id &&
            toks[i - 2].text != "std" && toks[i - 2].text != "chrono") {
            continue;
        }

        if (bannedEntropy().count(t.text)) {
            out.push_back(
                {path, t.line, "determinism",
                 "'" + t.text +
                     "' is a nondeterministic entropy source; draw "
                     "from the seeded sim::Rng (src/sim/rng.hh) "
                     "instead",
                 excerpt(t.line)});
            continue;
        }
        if (bannedClocks().count(t.text)) {
            out.push_back(
                {path, t.line, "determinism",
                 "'" + t.text +
                     "' reads the wall clock; use the simulated "
                     "engine time so runs stay bit-identical per "
                     "seed",
                 excerpt(t.line)});
            continue;
        }
        // `time(...)` / `clock(...)` as free-function calls. Member
        // calls (engine.time()) and unrelated declarations (`double
        // time;`) stay legal.
        if ((t.text == "time" || t.text == "clock") &&
            i + 1 < toks.size() && toks[i + 1].text == "(") {
            out.push_back(
                {path, t.line, "determinism",
                 "'" + t.text +
                     "()' reads the wall clock; use the simulated "
                     "engine time instead",
                 excerpt(t.line)});
        }
    }
}

// ---------------------------------------------------------------
// Rule: unordered-iter. Iteration order of unordered containers is
// implementation-defined and can differ run to run once pointers or
// hashes feed the bucketing; iterating one inside a control path
// silently breaks replayability. Scope: the controller and simulator
// cores, where ordering feeds actuation decisions and event streams.

void
ruleUnorderedIter(const std::string &path,
                  const std::vector<Tok> &toks,
                  const std::vector<std::string> &lines,
                  std::vector<Finding> &out)
{
    if (!startsWith(path, "src/kelp/") &&
        !startsWith(path, "src/sim/"))
        return;

    auto isUnordered = [](const std::string &s) {
        return s == "unordered_map" || s == "unordered_set" ||
               s == "unordered_multimap" ||
               s == "unordered_multiset";
    };

    // Pass 1: names declared with an unordered container type. After
    // the closing template bracket, the next identifier-ish token is
    // the declared name (skipping &, *, and cv qualifiers).
    std::set<std::string> names;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Id || !isUnordered(toks[i].text))
            continue;
        size_t j = i + 1;
        if (j >= toks.size() || toks[j].text != "<")
            continue;
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<")
                ++depth;
            else if (toks[j].text == "<<")
                depth += 2;
            else if (toks[j].text == ">")
                --depth;
            else if (toks[j].text == ">>")
                depth -= 2;
            if (depth <= 0)
                break;
        }
        for (++j; j < toks.size(); ++j) {
            const Tok &t = toks[j];
            if (t.text == "&" || t.text == "*" || t.text == "const")
                continue;
            if (t.kind == TokKind::Id)
                names.insert(t.text);
            break;
        }
    }

    // Pass 2: range-for statements whose range expression mentions a
    // declared unordered name (or an unordered temporary).
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Id || toks[i].text != "for" ||
            toks[i + 1].text != "(")
            continue;
        size_t j = i + 1;
        int depth = 0;
        size_t colon = 0;
        size_t close = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "(")
                ++depth;
            else if (toks[j].text == ")") {
                --depth;
                if (depth == 0) {
                    close = j;
                    break;
                }
            } else if (toks[j].text == ":" && depth == 1 && !colon) {
                colon = j;
            }
        }
        if (!colon || !close)
            continue;
        for (size_t k = colon + 1; k < close; ++k) {
            if (toks[k].kind == TokKind::Id &&
                (names.count(toks[k].text) ||
                 isUnordered(toks[k].text))) {
                int line = toks[i].line;
                out.push_back(
                    {path, line, "unordered-iter",
                     "range-for over unordered container '" +
                         toks[k].text +
                         "' in a control path; iteration order is "
                         "nondeterministic -- use a sorted/ordered "
                         "container or sort the keys first",
                     line <= static_cast<int>(lines.size())
                         ? trimmed(lines[line - 1])
                         : ""});
                break;
            }
        }
    }
}

// ---------------------------------------------------------------
// Rule: knob-discipline. Hardware actuation must flow through the
// managed KnobSink (controllers) or the HAL itself: a direct mutator
// call anywhere else bypasses actuation retry, checkpointing, and
// restart reconciliation, so the registry's idea of the hardware and
// the controller's idea of its intent silently diverge.

void
ruleKnobDiscipline(const std::string &path,
                   const std::vector<Tok> &toks,
                   const std::vector<std::string> &lines,
                   std::vector<Finding> &out)
{
    bool scoped = (startsWith(path, "src/") ||
                   startsWith(path, "tools/") ||
                   startsWith(path, "bench/")) &&
                  !startsWith(path, "src/hal/") &&
                  !startsWith(path, "src/kelp/");
    if (!scoped)
        return;

    static const std::set<std::string> kMutators = {
        "setCores", "setPrefetchersEnabled", "setCatWays",
        "adjustCores", "setMemBinding"};

    for (size_t i = 1; i + 1 < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Id || !kMutators.count(t.text))
            continue;
        if (toks[i - 1].text != "." && toks[i - 1].text != "->")
            continue;
        if (toks[i + 1].text != "(")
            continue;
        out.push_back(
            {path, t.line, "knob-discipline",
             "direct HAL knob mutator '" + t.text +
                 "()' outside src/hal/ and the managed controllers; "
                 "route actuation through the controller's KnobSink "
                 "so retry/snapshot/reconciliation stay correct",
             t.line <= static_cast<int>(lines.size())
                 ? trimmed(lines[t.line - 1])
                 : ""});
    }
}

// ---------------------------------------------------------------
// Rule: float-eq. Exact ==/!= on floating-point values is almost
// always a latent bug (accumulated rounding makes it flap); the rule
// flags comparisons where either operand is a floating literal.

bool
isFloatLiteral(const Tok &t)
{
    if (t.kind != TokKind::Num)
        return false;
    if (t.text.size() > 1 && (t.text[1] == 'x' || t.text[1] == 'X'))
        return false; // hex integer
    if (t.text.find('.') != std::string::npos)
        return true;
    // Decimal exponent form (1e9) without a dot.
    return t.text.find('e') != std::string::npos ||
           t.text.find('E') != std::string::npos;
}

void
ruleFloatEq(const std::string &path, const std::vector<Tok> &toks,
            const std::vector<std::string> &lines,
            std::vector<Finding> &out)
{
    for (size_t i = 1; i + 1 < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Punct ||
            (t.text != "==" && t.text != "!="))
            continue;
        if (!isFloatLiteral(toks[i - 1]) &&
            !isFloatLiteral(toks[i + 1]))
            continue;
        out.push_back(
            {path, t.line, "float-eq",
             "exact '" + t.text +
                 "' against a floating-point literal; compare with "
                 "an explicit tolerance (or justify exactness with "
                 "an allow)",
             t.line <= static_cast<int>(lines.size())
                 ? trimmed(lines[t.line - 1])
                 : ""});
    }
}

// ---------------------------------------------------------------
// Rule: include-guard. Guards must be derivable from the path so a
// moved header cannot silently shadow another one's guard.

void
ruleIncludeGuard(const std::string &path,
                 const std::vector<std::string> &lines,
                 std::vector<Finding> &out)
{
    if (!startsWith(path, "src/") || !isHeader(path))
        return;
    std::string expected = expectedGuard(path);

    int ifndef_line = 0;
    std::string guard;
    for (size_t i = 0; i < lines.size(); ++i) {
        std::string l = trimmed(lines[i]);
        if (!startsWith(l, "#ifndef"))
            continue;
        std::istringstream is(l);
        std::string directive;
        is >> directive >> guard;
        ifndef_line = static_cast<int>(i) + 1;
        break;
    }
    if (!ifndef_line) {
        out.push_back({path, 1, "include-guard",
                       "header has no #ifndef include guard; expected "
                       "'" + expected + "'",
                       ""});
        return;
    }
    if (guard != expected) {
        out.push_back({path, ifndef_line, "include-guard",
                       "include guard '" + guard +
                           "' does not match the path; expected '" +
                           expected + "'",
                       trimmed(lines[ifndef_line - 1])});
        return;
    }
    // The #define must pair with the #ifndef.
    bool defined = false;
    for (size_t i = static_cast<size_t>(ifndef_line);
         i < lines.size(); ++i) {
        if (startsWith(trimmed(lines[i]), "#define " + expected)) {
            defined = true;
            break;
        }
    }
    if (!defined) {
        out.push_back({path, ifndef_line, "include-guard",
                       "include guard '" + expected +
                           "' is never #defined",
                       trimmed(lines[ifndef_line - 1])});
    }
}

// ---------------------------------------------------------------
// Rule: using-namespace. A header-level using-directive leaks the
// namespace into every includer and changes overload resolution at a
// distance.

void
ruleUsingNamespace(const std::string &path,
                   const std::vector<Tok> &toks,
                   const std::vector<std::string> &lines,
                   std::vector<Finding> &out)
{
    if (!isHeader(path))
        return;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind == TokKind::Id &&
            toks[i].text == "using" &&
            toks[i + 1].kind == TokKind::Id &&
            toks[i + 1].text == "namespace") {
            int line = toks[i].line;
            out.push_back(
                {path, line, "using-namespace",
                 "'using namespace' in a header leaks into every "
                 "includer; qualify names or move the directive "
                 "into a .cc file",
                 line <= static_cast<int>(lines.size())
                     ? trimmed(lines[line - 1])
                     : ""});
        }
    }
}

// ---------------------------------------------------------------
// Rule: raw-parallelism. All concurrency must flow through the
// deterministic worker pool (src/exp/pool.*): jobs indexed, RNG
// streams derived per index, results committed in index order. A raw
// std::thread / std::async / mutex anywhere else can reorder side
// effects between runs and silently break the bit-identical-per-seed
// guarantee the pool exists to preserve.

const std::set<std::string> &
bannedParallelism()
{
    static const std::set<std::string> kBanned = {
        "thread",
        "jthread",
        "async",
        "mutex",
        "recursive_mutex",
        "timed_mutex",
        "recursive_timed_mutex",
        "shared_mutex",
        "shared_timed_mutex",
        "condition_variable",
        "condition_variable_any"};
    return kBanned;
}

void
ruleRawParallelism(const std::string &path,
                   const std::vector<Tok> &toks,
                   const std::vector<std::string> &lines,
                   std::vector<Finding> &out)
{
    bool scoped = startsWith(path, "src/") ||
                  startsWith(path, "tools/") ||
                  startsWith(path, "bench/");
    if (!scoped || startsWith(path, "src/exp/pool."))
        return;

    for (size_t i = 0; i < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Id || !bannedParallelism().count(t.text))
            continue;
        // Member accesses are someone else's symbols.
        if (i > 0 &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->"))
            continue;
        // Qualified names: only the std:: (or global ::) versions are
        // the real thing; this also keeps std::this_thread::sleep_for
        // legal, since `this_thread` is not in the banned set.
        if (i > 0 && toks[i - 1].text == "::" && i > 1 &&
            toks[i - 2].kind == TokKind::Id &&
            toks[i - 2].text != "std")
            continue;
        out.push_back(
            {path, t.line, "raw-parallelism",
             "raw '" + t.text +
                 "' outside src/exp/pool.*; all parallelism must go "
                 "through the deterministic worker pool (exp::runJobs "
                 "/ exp::InitGuard) so results stay byte-identical to "
                 "the serial path",
             t.line <= static_cast<int>(lines.size())
                 ? trimmed(lines[t.line - 1])
                 : ""});
    }
}

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : content) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

} // namespace

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> kRules = {
        "determinism",     "unordered-iter", "knob-discipline",
        "float-eq",        "include-guard",  "using-namespace",
        "raw-parallelism", "bad-suppression"};
    return kRules;
}

std::string
expectedGuard(const std::string &path)
{
    // Components after the first (src/..., tools/...) form the guard;
    // the leading "src" is elided for brevity, matching the existing
    // KELP_<DIR>_<FILE>_HH convention.
    std::string p = path;
    if (startsWith(p, "src/"))
        p = p.substr(4);
    std::string guard = "KELP_";
    for (char c : p) {
        if (c == '/') {
            guard += '_';
        } else if (c == '.') {
            guard += '_';
        } else if (std::isalnum(static_cast<unsigned char>(c))) {
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        } else {
            guard += '_';
        }
    }
    return guard;
}

std::string
formatFinding(const Finding &f)
{
    std::ostringstream os;
    os << f.file << ":" << f.line << ": [" << f.rule << "] "
       << f.message;
    if (!f.excerpt.empty())
        os << "\n    " << f.excerpt;
    return os.str();
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content)
{
    LexResult lex = tokenize(content);
    std::vector<std::string> lines = splitLines(content);

    std::vector<Finding> bad_sup;
    Suppressions sup =
        parseSuppressions(path, lex.comments, bad_sup);

    std::vector<Finding> raw;
    ruleDeterminism(path, lex.toks, lines, raw);
    ruleUnorderedIter(path, lex.toks, lines, raw);
    ruleKnobDiscipline(path, lex.toks, lines, raw);
    ruleFloatEq(path, lex.toks, lines, raw);
    ruleIncludeGuard(path, lines, raw);
    ruleUsingNamespace(path, lex.toks, lines, raw);
    ruleRawParallelism(path, lex.toks, lines, raw);

    std::vector<Finding> out;
    for (auto &f : raw) {
        if (!suppressed(sup, f))
            out.push_back(std::move(f));
    }
    // Suppression-syntax findings are not themselves suppressible:
    // silencing the thing that checks silencing defeats the audit.
    out.insert(out.end(), bad_sup.begin(), bad_sup.end());
    std::stable_sort(out.begin(), out.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return out;
}

bool
Baseline::parse(const std::string &text)
{
    for (const std::string &raw : splitLines(text)) {
        std::string l = trimmed(raw);
        if (l.empty() || l[0] == '#')
            continue;
        // Two separators make three fields.
        size_t first = l.find('|');
        size_t second =
            first == std::string::npos ? first : l.find('|', first + 1);
        if (second == std::string::npos)
            return false;
        entries_.insert(l);
    }
    return true;
}

std::string
Baseline::entry(const Finding &f)
{
    return f.file + "|" + f.rule + "|" + f.excerpt;
}

bool
Baseline::covers(const Finding &f) const
{
    return entries_.count(entry(f)) > 0;
}

} // namespace lint
} // namespace kelp
