/**
 * @file
 * Shared infrastructure of the project's static-analysis tools
 * (kelp-lint, kelp-analyze): the C++ surface lexer, the `kelp:`
 * suppression/annotation comment grammar, the line-number-free
 * baseline format, and the Finding record both engines emit.
 *
 * One library holds all of this so a rule is never suppressed two
 * different ways: both tools parse the same directives with the same
 * anchoring, validate rule names against the same registry, and gate
 * against baselines in the same format.
 *
 * Directive grammar (all lead a comment; prose that merely mentions
 * them is ignored):
 *
 *   // kelp: allow(<rule>): <reason>       silence one finding on
 *                                          this line / the line below
 *   // kelp: allow-file(<rule>): <reason>  silence the rule file-wide
 *   // kelp: transient(<reason>)           kelp-analyze: this data
 *                                          member is deliberately not
 *                                          checkpointed
 *   // kelp: checkpointed                  kelp-analyze: treat this
 *                                          class as checkpoint-
 *                                          bearing even without a
 *                                          snapshot()/restore() pair
 *
 * Reasons are mandatory everywhere: the reason is how the next reader
 * learns why the rule does not apply. The rule registry is split per
 * tool -- an allow naming the *other* tool's rule is simply inactive
 * here (the other tool honours it), while an allow naming a rule
 * neither tool knows is itself a finding.
 */

#ifndef KELP_TOOLS_KELP_CHECK_CHECK_HH
#define KELP_TOOLS_KELP_CHECK_CHECK_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace kelp {
namespace check {

// ---------------------------------------------------------------
// Lexer. Produces identifier/number/punctuation tokens with line
// numbers; comments are collected separately (directives live in
// them), string and character literals are dropped outright, and
// preprocessor lines are skipped (rules that need them re-scan the
// raw text).

enum class TokKind { Id, Num, Punct };

struct Tok
{
    TokKind kind;
    std::string text;
    int line;
};

struct Comment
{
    int line;
    std::string text;
};

struct LexResult
{
    std::vector<Tok> toks;
    std::vector<Comment> comments;
};

LexResult tokenize(const std::string &src);

/** Split content into lines ('\n' separated, no terminators). */
std::vector<std::string> splitLines(const std::string &content);

/** Strip leading/trailing spaces, tabs, and CRs. */
std::string trimmed(const std::string &s);

bool startsWith(const std::string &s, const std::string &prefix);
bool endsWith(const std::string &s, const std::string &suffix);

/** True for .hh/.hpp/.h paths. */
bool isHeader(const std::string &path);

// ---------------------------------------------------------------
// Findings.

/** One rule violation at a source location. */
struct Finding
{
    /** Repo-relative path (forward slashes), e.g. "src/kelp/x.cc". */
    std::string file;

    /** 1-based source line. */
    int line = 0;

    /** Rule identifier. */
    std::string rule;

    /** Human-readable explanation with the fix direction. */
    std::string message;

    /** Trimmed text of the offending source line. */
    std::string excerpt;
};

/** One formatted report line: "file:line: [rule] message". */
std::string formatFinding(const Finding &f);

// ---------------------------------------------------------------
// Rule registries. The union is the set of names an allow() may
// legally mention; each tool activates only its own slice.

/** kelp-lint's rules, in report order. */
const std::vector<std::string> &lintRules();

/** kelp-analyze's rules, in report order. */
const std::vector<std::string> &analyzeRules();

// ---------------------------------------------------------------
// Suppressions and annotations.

struct Suppressions
{
    /** Rules allowed for the whole file. */
    std::set<std::string> file;

    /** line -> rules allowed on that line (and, for a comment on its
     * own line, the line below it). */
    std::map<int, std::set<std::string>> lines;

    /** True when a finding of @p rule at @p line is silenced. */
    bool covers(const std::string &rule, int line) const;
};

/**
 * Parse `kelp: allow(...)` / `kelp: allow-file(...)` directives from
 * @p comments. @p ownRules activates suppressions for the calling
 * tool; directives naming a rule in @p foreignRules parse fine but
 * stay inactive here. Malformed directives, missing reasons, unknown
 * rules, and legacy `kelp-lint:` spellings are appended to @p bad as
 * "bad-suppression" findings. A line-scoped allow covers its own
 * line and the next non-comment line.
 */
Suppressions parseSuppressions(const std::string &path,
                               const std::vector<Comment> &comments,
                               const std::vector<std::string> &ownRules,
                               const std::vector<std::string> &foreignRules,
                               std::vector<Finding> &bad);

/**
 * Parse `kelp: transient(<reason>)` annotations. Returns line ->
 * reason with the same own-line/next-code-line anchoring as line
 * suppressions. An empty reason is a "bad-suppression" finding.
 */
std::map<int, std::string>
parseTransients(const std::string &path,
                const std::vector<Comment> &comments,
                std::vector<Finding> &bad);

/**
 * Lines marked `kelp: checkpointed` (anchored like line
 * suppressions): the class declared on such a line is treated as
 * checkpoint-bearing by kelp-analyze.
 */
std::set<int> parseCheckpointMarks(const std::vector<Comment> &comments);

// ---------------------------------------------------------------
// Baseline.

/**
 * Checked-in set of grandfathered findings. Entries are one per
 * line, "file|rule|trimmed excerpt", '#' starts a comment. Line
 * numbers are deliberately not part of the key so unrelated edits do
 * not invalidate the baseline. Both tools ship an empty baseline and
 * the goal is to keep them that way.
 */
class Baseline
{
  public:
    /** Parse baseline text. Returns false on a malformed line. */
    bool parse(const std::string &text);

    /** True when the finding is grandfathered. */
    bool covers(const Finding &f) const;

    /** The baseline key for a finding. */
    static std::string entry(const Finding &f);

    size_t size() const { return entries_.size(); }

  private:
    std::set<std::string> entries_;
};

} // namespace check
} // namespace kelp

#endif // KELP_TOOLS_KELP_CHECK_CHECK_HH
