#include "check.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace kelp {
namespace check {

namespace {

bool
idStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
idChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Two-character punctuators the rules care about. `<<`/`>>` are kept
 * fused so template-bracket balancing can treat them as two. */
bool
isTwoCharPunct(char a, char b)
{
    static const char *kPairs[] = {"==", "!=", "<=", ">=", "::",
                                   "->", "&&", "||", "<<", ">>"};
    for (const char *p : kPairs) {
        if (p[0] == a && p[1] == b)
            return true;
    }
    return false;
}

/** Every line occupied by a comment (block comments span several). */
std::set<int>
commentLines(const std::vector<Comment> &comments)
{
    std::set<int> lines;
    for (const auto &c : comments) {
        int span = 1 + static_cast<int>(std::count(
                           c.text.begin(), c.text.end(), '\n'));
        for (int l = 0; l < span; ++l)
            lines.insert(c.line + l);
    }
    return lines;
}

/** The next non-comment line after @p line: where a directive on its
 * own line (possibly with wrapped continuation comments) anchors. */
int
anchorBelow(const std::set<int> &comment_lines, int line)
{
    int l = line + 1;
    while (comment_lines.count(l))
        ++l;
    return l;
}

} // namespace

LexResult
tokenize(const std::string &src)
{
    LexResult out;
    const size_t n = src.size();
    size_t i = 0;
    int line = 1;
    bool at_line_start = true;

    auto advance = [&](size_t k) {
        for (size_t j = 0; j < k && i < n; ++j, ++i) {
            if (src[i] == '\n') {
                ++line;
                at_line_start = true;
            }
        }
    };

    while (i < n) {
        char c = src[i];

        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }

        // Preprocessor directive: skip to end of line, honoring
        // backslash continuations. Directives on preprocessor lines
        // are not supported, and none exist.
        if (c == '#' && at_line_start) {
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n &&
                    src[i + 1] == '\n') {
                    advance(2);
                    continue;
                }
                if (src[i] == '\n')
                    break;
                advance(1);
            }
            continue;
        }
        at_line_start = false;

        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            size_t j = src.find('\n', i);
            if (j == std::string::npos)
                j = n;
            out.comments.push_back(
                {line, src.substr(i + 2, j - i - 2)});
            advance(j - i);
            continue;
        }

        // Block comment (recorded at its first line).
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            size_t j = src.find("*/", i + 2);
            size_t end = (j == std::string::npos) ? n : j + 2;
            out.comments.push_back(
                {line, src.substr(i + 2, end - i - 4)});
            advance(end - i);
            continue;
        }

        // Raw string literal R"delim(...)delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            size_t p = i + 2;
            std::string delim;
            while (p < n && src[p] != '(')
                delim += src[p++];
            std::string close = ")" + delim + "\"";
            size_t j = src.find(close, p);
            size_t end =
                (j == std::string::npos) ? n : j + close.size();
            advance(end - i);
            continue;
        }

        // String / character literal.
        if (c == '"' || c == '\'') {
            char q = c;
            size_t j = i + 1;
            while (j < n && src[j] != q) {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            advance((j < n ? j + 1 : n) - i);
            continue;
        }

        if (idStart(c)) {
            size_t j = i;
            while (j < n && idChar(src[j]))
                ++j;
            out.toks.push_back(
                {TokKind::Id, src.substr(i, j - i), line});
            advance(j - i);
            continue;
        }

        // Number: integer or floating literal (including the
        // leading-dot form ".5" and digit separators).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            size_t j = i;
            while (j < n) {
                char d = src[j];
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '.' || d == '\'') {
                    ++j;
                    continue;
                }
                // Exponent sign binds to the literal.
                if ((d == '+' || d == '-') && j > i) {
                    char e = src[j - 1];
                    if (e == 'e' || e == 'E' || e == 'p' ||
                        e == 'P') {
                        ++j;
                        continue;
                    }
                }
                break;
            }
            out.toks.push_back(
                {TokKind::Num, src.substr(i, j - i), line});
            advance(j - i);
            continue;
        }

        // Punctuation.
        if (i + 1 < n && isTwoCharPunct(c, src[i + 1])) {
            out.toks.push_back(
                {TokKind::Punct, src.substr(i, 2), line});
            advance(2);
            continue;
        }
        out.toks.push_back({TokKind::Punct, std::string(1, c), line});
        advance(1);
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : content) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

std::string
trimmed(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
isHeader(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".hpp") ||
           endsWith(path, ".h");
}

std::string
formatFinding(const Finding &f)
{
    std::ostringstream os;
    os << f.file << ":" << f.line << ": [" << f.rule << "] "
       << f.message;
    if (!f.excerpt.empty())
        os << "\n    " << f.excerpt;
    return os.str();
}

const std::vector<std::string> &
lintRules()
{
    static const std::vector<std::string> kRules = {
        "determinism",     "unordered-iter", "knob-discipline",
        "float-eq",        "include-guard",  "using-namespace",
        "raw-parallelism", "bad-suppression"};
    return kRules;
}

const std::vector<std::string> &
analyzeRules()
{
    static const std::vector<std::string> kRules = {
        "snapshot-completeness", "audit-completeness",
        "dirty-discipline",      "rng-discipline",
        "layering",              "bad-suppression"};
    return kRules;
}

bool
Suppressions::covers(const std::string &rule, int line) const
{
    if (file.count(rule))
        return true;
    auto it = lines.find(line);
    return it != lines.end() && it->second.count(rule) > 0;
}

Suppressions
parseSuppressions(const std::string &path,
                  const std::vector<Comment> &comments,
                  const std::vector<std::string> &ownRules,
                  const std::vector<std::string> &foreignRules,
                  std::vector<Finding> &bad)
{
    std::set<int> cl = commentLines(comments);

    Suppressions sup;
    for (const auto &c : comments) {
        // The directive must LEAD the comment: prose that merely
        // mentions the grammar (like this library's documentation)
        // is not a directive.
        std::string text = trimmed(c.text);
        if (startsWith(text, "kelp-lint:") ||
            startsWith(text, "kelp-analyze:")) {
            bad.push_back({path, c.line, "bad-suppression",
                           "legacy tool-prefixed directive; the "
                           "unified spelling is kelp: "
                           "allow(<rule>): <reason>",
                           trimmed(c.text)});
            continue;
        }
        if (!startsWith(text, "kelp:"))
            continue;
        std::string rest = trimmed(text.substr(5));
        // Annotations owned by kelp-analyze's index pass, not the
        // suppression machinery: validated elsewhere.
        if (startsWith(rest, "transient") ||
            startsWith(rest, "checkpointed"))
            continue;
        bool file_scope = startsWith(rest, "allow-file");
        if (!file_scope && !startsWith(rest, "allow")) {
            bad.push_back({path, c.line, "bad-suppression",
                           "unrecognized kelp: directive (expected "
                           "allow(<rule>): <reason>, "
                           "allow-file(<rule>): <reason>, "
                           "transient(<reason>), or checkpointed)",
                           trimmed(c.text)});
            continue;
        }
        size_t open = rest.find('(');
        size_t close = rest.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close <= open + 1) {
            bad.push_back({path, c.line, "bad-suppression",
                           "malformed kelp: suppression: missing "
                           "(<rule>)",
                           trimmed(c.text)});
            continue;
        }
        std::string rule =
            trimmed(rest.substr(open + 1, close - open - 1));
        std::string tail = trimmed(rest.substr(close + 1));
        if (tail.empty() || tail[0] != ':' ||
            trimmed(tail.substr(1)).empty()) {
            bad.push_back({path, c.line, "bad-suppression",
                           "suppression of '" + rule +
                               "' has no reason; write "
                               "allow(" + rule + "): <why>",
                           trimmed(c.text)});
            continue;
        }
        bool own = std::find(ownRules.begin(), ownRules.end(),
                             rule) != ownRules.end();
        bool foreign = std::find(foreignRules.begin(),
                                 foreignRules.end(),
                                 rule) != foreignRules.end();
        if (!own && !foreign) {
            bad.push_back({path, c.line, "bad-suppression",
                           "suppression names unknown rule '" + rule +
                               "'",
                           trimmed(c.text)});
            continue;
        }
        if (!own)
            continue; // The other tool's rule; it honours this one.
        if (file_scope) {
            sup.file.insert(rule);
        } else {
            sup.lines[c.line].insert(rule);
            sup.lines[anchorBelow(cl, c.line)].insert(rule);
        }
    }
    return sup;
}

std::map<int, std::string>
parseTransients(const std::string &path,
                const std::vector<Comment> &comments,
                std::vector<Finding> &bad)
{
    std::set<int> cl = commentLines(comments);
    std::map<int, std::string> out;
    for (const auto &c : comments) {
        std::string text = trimmed(c.text);
        if (!startsWith(text, "kelp:"))
            continue;
        std::string rest = trimmed(text.substr(5));
        if (!startsWith(rest, "transient"))
            continue;
        size_t open = rest.find('(');
        size_t close = rest.rfind(')');
        std::string reason =
            (open != std::string::npos && close != std::string::npos &&
             close > open)
                ? trimmed(rest.substr(open + 1, close - open - 1))
                : std::string();
        if (reason.empty()) {
            bad.push_back({path, c.line, "bad-suppression",
                           "transient annotation has no reason; "
                           "write kelp: transient(<why this member "
                           "needs no checkpoint>)",
                           trimmed(c.text)});
            continue;
        }
        out[c.line] = reason;
        out[anchorBelow(cl, c.line)] = reason;
    }
    return out;
}

std::set<int>
parseCheckpointMarks(const std::vector<Comment> &comments)
{
    std::set<int> cl = commentLines(comments);
    std::set<int> out;
    for (const auto &c : comments) {
        std::string text = trimmed(c.text);
        if (!startsWith(text, "kelp:"))
            continue;
        if (startsWith(trimmed(text.substr(5)), "checkpointed")) {
            out.insert(c.line);
            out.insert(anchorBelow(cl, c.line));
        }
    }
    return out;
}

bool
Baseline::parse(const std::string &text)
{
    for (const std::string &raw : splitLines(text)) {
        std::string l = trimmed(raw);
        if (l.empty() || l[0] == '#')
            continue;
        // Two separators make three fields.
        size_t first = l.find('|');
        size_t second =
            first == std::string::npos ? first : l.find('|', first + 1);
        if (second == std::string::npos)
            return false;
        entries_.insert(l);
    }
    return true;
}

std::string
Baseline::entry(const Finding &f)
{
    return f.file + "|" + f.rule + "|" + f.excerpt;
}

bool
Baseline::covers(const Finding &f) const
{
    return entries_.count(entry(f)) > 0;
}

} // namespace check
} // namespace kelp
