#!/usr/bin/env python3
"""Gate bench_wall results against the checked-in baseline.

Usage: check_bench_wall.py BENCH_sweep.json bench/BENCH_wall.baseline.json

Hard requirements (never noise): the worker pool's grid results and
every event-driven scenario must be bit-identical to their reference
paths. Speedup floors are generous -- they catch an identity-preserving
change that silently disables the fast path (speedup collapsing toward
1x), not ordinary runner variance.
"""

import json
import sys


def fail(msg):
    print("check_bench_wall: FAIL:", msg)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        sys.exit(2)
    results = json.load(open(sys.argv[1]))
    baseline = json.load(open(sys.argv[2]))

    if results["identical"] is not True:
        fail("pool grid results are not bit-identical to serial")
    ed = results["event_driven"]
    if ed["identical"] is not True:
        fail("event-driven results are not bit-identical to full-tick")
    for s in ed["scenarios"]:
        if s["identical"] is not True:
            fail("scenario %r is not bit-identical" % s["name"])

    checks = [
        ("pool speedup", results["speedup"],
         baseline["min_pool_speedup"]),
        ("quiet speedup", ed["quiet_speedup"],
         baseline["min_quiet_speedup"]),
        ("geomean speedup", ed["geomean_speedup"],
         baseline["min_geomean_speedup"]),
    ]
    for s in ed["scenarios"]:
        checks.append(("scenario %r speedup" % s["name"], s["speedup"],
                       baseline["min_scenario_speedup"]))

    ok = True
    for name, value, floor in checks:
        verdict = "ok" if value >= floor else "BELOW FLOOR"
        print("check_bench_wall: %-26s %6.2fx (floor %.2fx) %s"
              % (name, value, floor, verdict))
        ok = ok and value >= floor
    if not ok:
        fail("speedup below baseline floor")
    print("check_bench_wall: PASS")


if __name__ == "__main__":
    main()
