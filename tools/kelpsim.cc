/**
 * @file
 * kelpsim: command-line driver for single experiments.
 *
 * Runs one workload mix under one runtime configuration and reports
 * the normalized results; optionally records a telemetry CSV of the
 * controller's knobs and the hardware signals, a Perfetto-compatible
 * JSON trace, a controller decision audit log (JSONL), and a run
 * manifest over the run.
 *
 * Examples:
 *   kelpsim --ml=cnn1 --cpu=stitch --instances=4 --config=kp
 *   kelpsim --ml=rnn1 --cpu=cpuml --threads=12 --config=ct
 *   kelpsim --ml=cnn2 --cpu=dram --level=high --config=kpsd \
 *           --telemetry=run.csv --trace=run.trace.json \
 *           --decisions=run.decisions.jsonl --manifest=run.json
 */

#include <chrono>  // kelp: allow(determinism): --perf wall-clock line
#include <cstdio>
#include <optional>
#include <string>

#include "cluster/cluster.hh"
#include "exp/pool.hh"
#include "exp/report.hh"
#include "exp/scenario.hh"
#include "hal/counters.hh"
#include "hal/fault_injector.hh"
#include "sim/log.hh"
#include "sim/options.hh"
#include "trace/decision_log.hh"
#include "trace/run_manifest.hh"
#include "trace/telemetry.hh"
#include "trace/trace_recorder.hh"

using namespace kelp;

namespace {

wl::MlWorkload
parseMl(const std::string &name)
{
    if (name == "rnn1")
        return wl::MlWorkload::Rnn1;
    if (name == "cnn1")
        return wl::MlWorkload::Cnn1;
    if (name == "cnn2")
        return wl::MlWorkload::Cnn2;
    if (name == "cnn3")
        return wl::MlWorkload::Cnn3;
    sim::fatal("unknown ML workload '", name,
               "' (rnn1|cnn1|cnn2|cnn3)");
}

wl::CpuWorkload
parseCpu(const std::string &name)
{
    if (name == "stream")
        return wl::CpuWorkload::Stream;
    if (name == "stitch")
        return wl::CpuWorkload::Stitch;
    if (name == "cpuml")
        return wl::CpuWorkload::Cpuml;
    if (name == "llc")
        return wl::CpuWorkload::LlcAggressor;
    if (name == "dram")
        return wl::CpuWorkload::DramAggressor;
    sim::fatal("unknown CPU workload '", name,
               "' (stream|stitch|cpuml|llc|dram)");
}

exp::ConfigKind
parseConfig(const std::string &name)
{
    if (name == "bl")
        return exp::ConfigKind::BL;
    if (name == "ct")
        return exp::ConfigKind::CT;
    if (name == "kpsd" || name == "kp-sd")
        return exp::ConfigKind::KPSD;
    if (name == "kp")
        return exp::ConfigKind::KP;
    if (name == "fg")
        return exp::ConfigKind::FG;
    sim::fatal("unknown config '", name, "' (bl|ct|kpsd|kp|fg)");
}

cluster::Placement
parsePlacement(const std::string &name)
{
    if (name == "binpack" || name == "bin-pack")
        return cluster::Placement::BinPack;
    if (name == "interference" || name == "interference-aware")
        return cluster::Placement::InterferenceAware;
    sim::fatal("unknown placement '", name,
               "' (binpack|interference)");
}

wl::AggressorLevel
parseLevel(const std::string &name)
{
    if (name == "low" || name == "l")
        return wl::AggressorLevel::Low;
    if (name == "medium" || name == "m")
        return wl::AggressorLevel::Medium;
    if (name == "high" || name == "h")
        return wl::AggressorLevel::High;
    sim::fatal("unknown aggressor level '", name, "' (low|medium|high)");
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Options opts("kelpsim",
                      "run one colocation experiment on a simulated "
                      "accelerated node");
    opts.addString("ml", "cnn1", "ML workload: rnn1|cnn1|cnn2|cnn3");
    opts.addString("cpu", "",
                   "colocated CPU workload: "
                   "stream|stitch|cpuml|llc|dram (empty = standalone)");
    opts.addString("config", "kp", "runtime: bl|ct|kpsd|kp|fg");
    opts.addInt("instances", 1, "CPU workload instances");
    opts.addInt("threads", 0, "CPU thread-count override (0 = auto)");
    opts.addString("level", "high",
                   "dram aggressor level: low|medium|high");
    opts.addDouble("warmup", 80.0, "warmup simulated seconds");
    opts.addDouble("measure", 60.0, "measured simulated seconds");
    opts.addDouble("period", 4.0, "controller sampling period, s");
    opts.addInt("seed", 12345, "random seed");
    opts.addString("faults", "",
                   "HAL fault plan, e.g. "
                   "drop=0.1,stuck=0.05,noise=0.1,spike=0.02,"
                   "knobfail=0.2,knobdelay=0.1 (empty = no faults)");
    opts.addInt("fault-seed", 1, "fault-injection random seed");
    opts.addBool("naive", false,
                 "disable controller hardening and the fail-safe "
                 "watchdog under --faults");
    opts.addString("telemetry", "",
                   "write knob/signal time series to this CSV file");
    opts.addString("trace", "",
                   "write a Perfetto/chrome://tracing JSON trace "
                   "(phase spans, decision instants, counter tracks) "
                   "to this file");
    opts.addString("decisions", "",
                   "write the controller decision audit log (JSONL) "
                   "to this file");
    opts.addString("manifest", "",
                   "write a run manifest (seed, config, build, "
                   "result summary) JSON to this file");
    opts.addBool("churn", false,
                 "dynamic colocation churn: seeded task arrival/"
                 "departure/crash events mid-run");
    opts.addDouble("churn-rate", 1.0 / 20.0,
                   "mean churn arrivals per second");
    opts.addDouble("churn-crash", 0.1,
                   "probability a churned task crashes");
    opts.addInt("churn-max", 4, "max concurrently-live churned tasks");
    opts.addInt("churn-seed", 99, "churn random seed");
    opts.addDouble("kill-at", 0.0,
                   "crash + restart the controller at this time, s "
                   "(0 = never)");
    opts.addBool("slo", false,
                 "arm the SLO degradation ladder (kp/kpsd)");
    opts.addDouble("slo-floor", 0.85,
                   "SLO floor: min acceptable ML perf ratio");
    opts.addInt("cluster", 0,
                "simulate a cluster of this many Kelp-managed nodes "
                "instead of one node (uses --ml, --config, --seed, "
                "--jobs, --slo-floor, --manifest, --decisions)");
    opts.addInt("cluster-epochs", 12,
                "simulated node-hours per node (--cluster runs)");
    opts.addString("cluster-placement", "interference",
                   "cluster scheduler: binpack|interference");
    opts.addString("traffic", "",
                   "open-loop request traffic spec, e.g. "
                   "shape=poisson,qps=300 or "
                   "shape=burst,qps=300,factor=8 (empty = "
                   "closed-loop ML task, the paper's setup)");
    opts.addBool("contract-selftest", false,
                 "deliberately violate one contract before the run "
                 "(verifies the release-mode violation counter "
                 "end-to-end)");
    opts.addBool("full-tick", false,
                 "disable the event-driven fast path: every tick "
                 "runs the full pipeline (results are bit-identical; "
                 "this is the A/B reference for perf work)");
    opts.addBool("perf", false,
                 "print wall-clock simulation throughput "
                 "(nondeterministic; excluded from byte-diff flows)");
    opts.addInt("jobs", 0,
                "worker threads (0 = all cores, 1 = serial); the "
                "standalone reference and the measured run are "
                "independent jobs");
    if (!opts.parse(argc, argv))
        return 0;
    if (!opts.positional().empty()) {
        // A bare word is a mistyped flag or scenario name; running
        // the default experiment instead (and exiting 0) would let
        // scripted sweeps silently collect the wrong data.
        std::fprintf(stderr,
                     "kelpsim: unexpected argument '%s'\n\n%s",
                     opts.positional().front().c_str(),
                     opts.usage().c_str());
        return 2;
    }

    if (opts.getInt("cluster") > 0) {
        cluster::ClusterConfig ccfg;
        ccfg.nodes = static_cast<int>(opts.getInt("cluster"));
        ccfg.epochs = static_cast<int>(opts.getInt("cluster-epochs"));
        ccfg.placement =
            parsePlacement(opts.getString("cluster-placement"));
        ccfg.ml = parseMl(opts.getString("ml"));
        ccfg.config = parseConfig(opts.getString("config"));
        ccfg.sloFloor = opts.getDouble("slo-floor");
        ccfg.seed = static_cast<uint64_t>(opts.getInt("seed"));
        ccfg.jobs = static_cast<int>(opts.getInt("jobs"));

        trace::DecisionLog clog;
        std::string clusterDecisions = opts.getString("decisions");
        cluster::ClusterResult cr = cluster::simulateCluster(
            ccfg, clusterDecisions.empty() ? nullptr : &clog);

        std::printf("cluster: %d nodes x %d node-hours, %s "
                    "scheduler, %s nodes (%s)\n",
                    ccfg.nodes, ccfg.epochs,
                    cluster::placementName(ccfg.placement),
                    exp::configName(ccfg.config),
                    wl::mlName(ccfg.ml));
        std::printf("%s", cr.canonicalText().c_str());

        if (!clusterDecisions.empty()) {
            if (!clog.writeJsonl(clusterDecisions))
                sim::fatal("cannot write decision log to ",
                           clusterDecisions);
            std::printf("decision log written to %s (%zu events)\n",
                        clusterDecisions.c_str(), clog.size());
        }
        std::string clusterManifest = opts.getString("manifest");
        if (!clusterManifest.empty()) {
            trace::RunManifest man;
            man.set("tool", "kelpsim-cluster");
            man.set("ml", wl::mlName(ccfg.ml));
            man.set("config", exp::configName(ccfg.config));
            man.set("placement",
                    cluster::placementName(ccfg.placement));
            man.set("nodes", ccfg.nodes);
            man.set("epochs", ccfg.epochs);
            man.set("seed", ccfg.seed);
            man.set("slo_floor", ccfg.sloFloor);
            man.set("arrivals", cr.arrivals);
            man.set("placed", cr.placed);
            man.set("rejected", cr.rejected);
            man.set("migrations", cr.migrations);
            man.set("evictions", cr.evictions);
            man.set("finished", cr.finished);
            man.set("running_at_end", cr.runningAtEnd);
            man.set("node_hours", cr.nodeHours);
            man.set("slo_node_hours", cr.sloNodeHours);
            man.set("slo_fraction", cr.sloFraction());
            man.set("stranded_ratio", cr.strandedRatio());
            man.set("evaluations", cr.evaluations);
            man.set("contract_violations", sim::contractViolations());
            man.addSamples("node_tail_p95_s", cr.tailSamples);
            if (!man.writeJson(clusterManifest))
                sim::fatal("cannot write manifest to ",
                           clusterManifest);
            std::printf("manifest written to %s\n",
                        clusterManifest.c_str());
        }
        return 0;
    }

    exp::RunConfig cfg;
    cfg.ml = parseMl(opts.getString("ml"));
    cfg.config = parseConfig(opts.getString("config"));
    if (!opts.getString("cpu").empty())
        cfg.cpu = parseCpu(opts.getString("cpu"));
    cfg.cpuInstances = static_cast<int>(opts.getInt("instances"));
    cfg.cpuThreadsOverride = static_cast<int>(opts.getInt("threads"));
    cfg.aggressorLevel = parseLevel(opts.getString("level"));
    cfg.warmup = opts.getDouble("warmup");
    cfg.measure = opts.getDouble("measure");
    cfg.samplePeriod = opts.getDouble("period");
    cfg.seed = static_cast<uint64_t>(opts.getInt("seed"));
    cfg.faults = hal::FaultPlan::parse(opts.getString("faults"));
    cfg.faultSeed = static_cast<uint64_t>(opts.getInt("fault-seed"));
    cfg.hardened = !opts.getBool("naive");
    cfg.churn.enabled = opts.getBool("churn");
    cfg.churn.arrivalRate = opts.getDouble("churn-rate");
    cfg.churn.crashProb = opts.getDouble("churn-crash");
    cfg.churn.maxLive = static_cast<int>(opts.getInt("churn-max"));
    cfg.churn.seed = static_cast<uint64_t>(opts.getInt("churn-seed"));
    cfg.killAt = opts.getDouble("kill-at");
    cfg.slo.enabled = opts.getBool("slo");
    cfg.slo.minPerfRatio = opts.getDouble("slo-floor");
    if (!opts.getString("traffic").empty()) {
        std::string terr;
        std::optional<serve::TrafficSpec> traffic =
            serve::TrafficSpec::tryParse(opts.getString("traffic"),
                                         &terr);
        if (!traffic)
            sim::fatal("bad --traffic spec: ", terr);
        cfg.serving.enabled = true;
        cfg.serving.traffic = *traffic;
    }
    cfg.eventDriven = !opts.getBool("full-tick");

    if (opts.getBool("contract-selftest")) {
        // Count mode regardless of build type so the violation is
        // recorded (not fatal) and shows up in the report below.
        sim::setContractMode(sim::ContractMode::Count);
        KELP_INVARIANT(false, "contract self-test (--contract-selftest)");
    }

    std::string csv = opts.getString("telemetry");
    std::string tracePath = opts.getString("trace");
    std::string decisionsPath = opts.getString("decisions");
    std::string manifestPath = opts.getString("manifest");

    trace::Telemetry tel;
    trace::TraceRecorder recorder;
    trace::DecisionLog decisions;
    exp::Observability obs;
    // A trace wants the telemetry counter tracks too, so the probes
    // run whenever either output is requested.
    if (!csv.empty() || !tracePath.empty())
        obs.telemetry = &tel;
    if (!tracePath.empty())
        obs.recorder = &recorder;
    if (!decisionsPath.empty() || !tracePath.empty())
        obs.decisions = &decisions;

    exp::RunResult ref;
    exp::RunResult r;
    // kelp: allow(determinism): wall time feeds only the --perf line
    auto wall0 = std::chrono::steady_clock::now();
    if (!obs.any() && manifestPath.empty()) {
        // The standalone reference and the measured run share no
        // state (the reference memo is guarded), so they are two
        // independent jobs; --jobs 1 reproduces the serial order.
        exp::runJobs(2, static_cast<int>(opts.getInt("jobs")),
                     [&](int i) {
                         if (i == 0)
                             ref = exp::standaloneReference(cfg.ml);
                         else
                             r = exp::runScenario(cfg);
                     });
    } else {
        // Instrumented run. measureScenario is the same measurement
        // body runScenario uses, so the observability sinks never
        // change the reported numbers.
        ref = exp::standaloneReference(cfg.ml);
        exp::Scenario s = exp::buildScenario(cfg, obs);
        r = exp::measureScenario(s, cfg);

        if (!csv.empty()) {
            if (!tel.writeCsv(csv))
                sim::fatal("cannot write telemetry to ", csv);
            std::printf("telemetry written to %s\n", csv.c_str());
        }
        if (!tracePath.empty()) {
            recorder.importTelemetry(tel);
            recorder.importDecisions(decisions);
            if (!recorder.writeJson(tracePath))
                sim::fatal("cannot write trace to ", tracePath);
            std::printf("trace written to %s (%zu events)\n",
                        tracePath.c_str(), recorder.size());
        }
        if (!decisionsPath.empty()) {
            if (!decisions.writeJsonl(decisionsPath))
                sim::fatal("cannot write decision log to ",
                           decisionsPath);
            std::printf("decision log written to %s (%zu events)\n",
                        decisionsPath.c_str(), decisions.size());
        }
        if (!manifestPath.empty()) {
            trace::RunManifest man;
            man.set("tool", "kelpsim");
            man.set("ml", wl::mlName(cfg.ml));
            man.set("cpu", cfg.cpu ? wl::cpuName(*cfg.cpu) : "");
            man.set("config", exp::configName(cfg.config));
            man.set("cpu_instances", cfg.cpuInstances);
            man.set("seed", cfg.seed);
            man.set("tick_s", cfg.tick);
            man.set("warmup_s", cfg.warmup);
            man.set("measure_s", cfg.measure);
            man.set("sample_period_s", cfg.samplePeriod);
            man.set("faults", cfg.faults.any());
            man.set("hardened", cfg.hardened);
            man.set("churn", cfg.churn.enabled);
            man.set("slo", cfg.slo.enabled);
            man.set("contract_violations", sim::contractViolations());
            man.set("ml_perf", r.mlPerf);
            man.set("ml_perf_ref", ref.mlPerf);
            man.set("ml_tail_p95_s", r.mlTailP95);
            man.set("cpu_throughput", r.cpuThroughput);
            man.set("avg_lo_cores", r.avgLoCores);
            man.set("avg_lo_prefetchers", r.avgLoPrefetchers);
            man.set("avg_hi_backfill", r.avgHiBackfill);
            man.set("fail_safe_entries", r.failSafeEntries);
            man.set("time_in_fail_safe_s", r.timeInFailSafe);
            man.set("restarts", r.restarts);
            man.set("decision_events", decisions.size());
            man.set("engine_ticks", r.engineTicks);
            man.set("engine_fast_ticks", r.engineFastTicks);
            man.set("engine_full_ticks", r.engineFullTicks);
            man.set("engine_skip_ratio", r.skipRatio());
            man.set("periodic_fires", r.periodicFires);
            man.set("demand_calls", r.demandCalls);
            man.set("advance_calls", r.advanceCalls);
            man.set("fast_task_ticks", r.fastTaskTicks);
            man.set("resolve_cache_hits", r.resolveCacheHits);
            man.set("resolve_cache_misses", r.resolveCacheMisses);
            man.set("mc_cache_hits", r.mcCacheHits);
            man.set("mc_cache_misses", r.mcCacheMisses);
            man.set("mem_fast_ticks", r.memFastTicks);
            if (s.inferTask) {
                man.addHistogram("ml_request_latency_s",
                                 s.inferTask->latency());
            }
            if (s.server) {
                man.set("traffic", cfg.serving.traffic.toString());
                man.set("req_arrivals", r.reqArrivals);
                man.set("req_admitted", r.reqAdmitted);
                man.set("req_rejected", r.reqRejected);
                man.set("req_shed", r.reqShed);
                man.set("req_expired", r.reqExpired);
                man.set("req_completed", r.reqCompleted);
                man.set("brownout_transitions",
                        r.brownoutTransitions);
                man.addHistogram("request_latency_s",
                                 s.server->latency());
            }
            if (!man.writeJson(manifestPath))
                sim::fatal("cannot write manifest to ", manifestPath);
            std::printf("manifest written to %s\n",
                        manifestPath.c_str());
        }
    }

    std::printf("%s %s%s under %s:\n", wl::mlName(cfg.ml),
                cfg.cpu ? "+ " : "(standalone)",
                cfg.cpu ? wl::cpuName(*cfg.cpu) : "",
                exp::configName(cfg.config));
    std::printf("  ML performance : %.2f /s (%.0f%% of standalone)\n",
                r.mlPerf, 100.0 * r.mlPerf / ref.mlPerf);
    if (r.mlTailP95 > 0.0) {
        std::printf("  p95 latency    : %.2f ms (standalone %.2f)\n",
                    1e3 * r.mlTailP95, 1e3 * ref.mlTailP95);
    }
    std::printf("  CPU throughput : %.2f units/s\n", r.cpuThroughput);
    std::printf("  knobs (avg)    : lo cores %.1f, prefetchers %.1f, "
                "backfill %.1f\n",
                r.avgLoCores, r.avgLoPrefetchers, r.avgHiBackfill);
    if (cfg.faults.any()) {
        std::printf("  faults         : %s controller, fail-safe "
                    "entries %llu, time in fail-safe %.0f s\n",
                    cfg.hardened ? "hardened" : "naive",
                    static_cast<unsigned long long>(r.failSafeEntries),
                    r.timeInFailSafe);
    }
    if (cfg.churn.enabled) {
        std::printf("  churn          : %llu arrivals, %llu finished, "
                    "%llu crashed, %llu rejected\n",
                    static_cast<unsigned long long>(r.churnArrivals),
                    static_cast<unsigned long long>(r.churnFinishes),
                    static_cast<unsigned long long>(r.churnCrashes),
                    static_cast<unsigned long long>(r.churnRejected));
    }
    if (cfg.serving.enabled) {
        std::printf(
            "  traffic        : %s\n",
            cfg.serving.traffic.toString().c_str());
        std::printf(
            "  requests       : %llu arrived, %llu admitted, "
            "%llu rejected, %llu shed, %llu expired, "
            "%llu completed, %llu in flight\n",
            static_cast<unsigned long long>(r.reqArrivals),
            static_cast<unsigned long long>(r.reqAdmitted),
            static_cast<unsigned long long>(r.reqRejected),
            static_cast<unsigned long long>(r.reqShed),
            static_cast<unsigned long long>(r.reqExpired),
            static_cast<unsigned long long>(r.reqCompleted),
            static_cast<unsigned long long>(r.reqInFlight));
        std::printf("  request tails  : p99 %.2f ms, p99.9 %.2f ms, "
                    "p99.99 %.2f ms\n",
                    1e3 * r.reqP99, 1e3 * r.reqP999,
                    1e3 * r.reqP9999);
        std::printf("  brownout       : %llu transitions, final "
                    "level %d\n",
                    static_cast<unsigned long long>(
                        r.brownoutTransitions),
                    r.brownoutFinal);
    }
    if (cfg.killAt > 0.0) {
        std::printf("  restarts       : %llu (kill at %.0f s)\n",
                    static_cast<unsigned long long>(r.restarts),
                    cfg.killAt);
    }
    if (cfg.slo.enabled) {
        std::printf("  SLO ladder     : %llu violations, %llu rung "
                    "transitions, final rung %s\n",
                    static_cast<unsigned long long>(r.sloViolations),
                    static_cast<unsigned long long>(r.sloTransitions),
                    runtime::sloRungName(r.sloFinalRung));
    }
    if (sim::contractViolations() > 0) {
        std::printf("  contracts      : %llu violation(s) recorded "
                    "(counted, not fatal)\n",
                    static_cast<unsigned long long>(
                        sim::contractViolations()));
    }
    // Tick-engine cost breakdown: how much of the run the
    // event-driven engine proved quiescent and skipped, and what the
    // full-path ticks actually paid for. Deterministic counters --
    // safe inside the CI byte-diff.
    std::printf("  tick engine    : %llu ticks (%llu fast-forwarded, "
                "%llu executed), skip %.1f%%\n",
                static_cast<unsigned long long>(r.engineTicks),
                static_cast<unsigned long long>(r.engineFastTicks),
                static_cast<unsigned long long>(r.engineFullTicks),
                100.0 * r.skipRatio());
    std::printf("  full-path cost : %llu demand + %llu advance calls, "
                "%llu periodic fires, %llu fast task-ticks\n",
                static_cast<unsigned long long>(r.demandCalls),
                static_cast<unsigned long long>(r.advanceCalls),
                static_cast<unsigned long long>(r.periodicFires),
                static_cast<unsigned long long>(r.fastTaskTicks));
    std::printf("  resolve cache  : mem %llu hit / %llu miss, "
                "mc %llu hit / %llu miss, %llu mem fast ticks\n",
                static_cast<unsigned long long>(r.resolveCacheHits),
                static_cast<unsigned long long>(r.resolveCacheMisses),
                static_cast<unsigned long long>(r.mcCacheHits),
                static_cast<unsigned long long>(r.mcCacheMisses),
                static_cast<unsigned long long>(r.memFastTicks));
    if (opts.getBool("perf")) {
        // kelp: allow(determinism): --perf opts into wall clocks
        auto wall1 = std::chrono::steady_clock::now();
        double wall_s =
            std::chrono::duration<double>(wall1 - wall0).count();
        double tps = wall_s > 0.0
                         ? static_cast<double>(r.engineTicks) / wall_s
                         : 0.0;
        std::printf("  throughput     : %.3g ticks/s wall "
                    "(%.2f s wall for %.0f s simulated)\n",
                    tps, wall_s, cfg.warmup + cfg.measure);
    }
    return 0;
}
