/**
 * @file
 * kelp_analyze CLI: index the tree, run the cross-TU rule families,
 * apply the checked-in baseline, and exit non-zero on any new
 * finding.
 *
 * Usage:
 *   kelp_analyze [--root=DIR] [--baseline=FILE] [--layering=FILE]
 *                [--json=FILE] [--inventory=FILE]
 *                [--update-baseline] [dir...]
 *
 * With no directories given the sweep is src/ under the root: the
 * whole-program rules are scoped to the library tree (tests and
 * benches stage deliberately weird states). tests/analyze_fixtures/
 * and tests/lint_fixtures/ are always skipped when a broader sweep
 * names them: those files are deliberately broken.
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hh"

namespace fs = std::filesystem;
using kelp::analyze::Baseline;
using kelp::analyze::Finding;
using kelp::analyze::SourceFile;

namespace {

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

bool
analyzableExtension(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    if (!out)
        return false;
    out << text;
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string baseline_path;
    std::string layering_path;
    std::string json_path;
    std::string inventory_path;
    bool update_baseline = false;
    std::vector<std::string> dirs;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--root=", 0) == 0) {
            root = arg.substr(7);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline_path = arg.substr(11);
        } else if (arg.rfind("--layering=", 0) == 0) {
            layering_path = arg.substr(11);
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg.rfind("--inventory=", 0) == 0) {
            inventory_path = arg.substr(12);
        } else if (arg == "--update-baseline") {
            update_baseline = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: kelp_analyze [--root=DIR] [--baseline=FILE] "
                "[--layering=FILE] [--json=FILE] "
                "[--inventory=FILE] [--update-baseline] [dir...]\n");
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr,
                         "kelp_analyze: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            dirs.push_back(arg);
        }
    }
    if (dirs.empty())
        dirs = {"src"};
    if (layering_path.empty())
        layering_path = (fs::path(root) /
                         "tools/kelp_analyze/layering.txt")
                            .string();

    Baseline baseline;
    if (!baseline_path.empty()) {
        std::string text;
        if (!readFile(baseline_path, text)) {
            std::fprintf(stderr,
                         "kelp_analyze: cannot read baseline '%s'\n",
                         baseline_path.c_str());
            return 2;
        }
        if (!baseline.parse(text)) {
            std::fprintf(stderr,
                         "kelp_analyze: malformed baseline '%s'\n",
                         baseline_path.c_str());
            return 2;
        }
    }

    std::string layering_text;
    if (!readFile(layering_path, layering_text)) {
        std::fprintf(stderr,
                     "kelp_analyze: cannot read layering table "
                     "'%s'\n",
                     layering_path.c_str());
        return 2;
    }

    // Deterministic sweep: collect, sort, read.
    std::vector<fs::path> paths;
    for (const std::string &d : dirs) {
        fs::path top = fs::path(root) / d;
        if (!fs::exists(top))
            continue;
        for (auto it = fs::recursive_directory_iterator(top);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory()) {
                // The fixture corpora are deliberately broken.
                if (it->path().filename() == "lint_fixtures" ||
                    it->path().filename() == "analyze_fixtures")
                    it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() &&
                analyzableExtension(it->path()))
                paths.push_back(it->path());
        }
    }
    std::sort(paths.begin(), paths.end());

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    for (const fs::path &p : paths) {
        SourceFile f;
        f.path = fs::relative(p, root).generic_string();
        if (!readFile(p, f.content)) {
            std::fprintf(stderr, "kelp_analyze: cannot read '%s'\n",
                         p.string().c_str());
            return 2;
        }
        files.push_back(std::move(f));
    }

    std::vector<Finding> all = kelp::analyze::analyzeFiles(
        files, "tools/kelp_analyze/layering.txt", layering_text);

    std::vector<Finding> fresh;
    size_t baselined = 0;
    for (Finding &f : all) {
        if (baseline.covers(f))
            ++baselined;
        else
            fresh.push_back(std::move(f));
    }

    if (update_baseline) {
        if (baseline_path.empty()) {
            std::fprintf(stderr,
                         "kelp_analyze: --update-baseline needs "
                         "--baseline=FILE\n");
            return 2;
        }
        std::ofstream out(baseline_path, std::ios::trunc);
        out << "# kelp_analyze baseline: grandfathered findings, one "
               "per line as file|rule|excerpt.\n"
            << "# The goal is to keep this file empty; fix, annotate "
               "transient, or allow() findings\n"
            << "# instead of re-baselining.\n";
        for (const Finding &f : fresh)
            out << Baseline::entry(f) << "\n";
        std::printf(
            "kelp_analyze: baseline updated with %zu entries\n",
            fresh.size());
        return 0;
    }

    if (!json_path.empty() &&
        !writeFile(json_path, kelp::analyze::jsonReport(fresh))) {
        std::fprintf(stderr, "kelp_analyze: cannot write '%s'\n",
                     json_path.c_str());
        return 2;
    }
    if (!inventory_path.empty()) {
        std::vector<Finding> ignored;
        kelp::analyze::Index index =
            kelp::analyze::buildIndex(files, ignored);
        if (!writeFile(inventory_path,
                       kelp::analyze::inventoryReport(index))) {
            std::fprintf(stderr, "kelp_analyze: cannot write '%s'\n",
                         inventory_path.c_str());
            return 2;
        }
    }

    for (const Finding &f : fresh)
        std::printf("%s\n",
                    kelp::analyze::formatFinding(f).c_str());

    std::printf("kelp_analyze: %zu files, %zu findings",
                files.size(), fresh.size());
    if (baselined)
        std::printf(" (%zu baselined)", baselined);
    std::printf("\n");
    return fresh.empty() ? 0 : 1;
}
