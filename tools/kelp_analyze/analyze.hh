/**
 * @file
 * kelp-analyze: cross-translation-unit semantic analysis for the
 * Kelp tree. Where kelp-lint checks one file at a time, this tool
 * first indexes the whole src/ tree -- classes and their data
 * members, checkpoint save/restore method bodies, knob-mutation call
 * sites, DecisionLog record sites, contract macros, sim::Rng usage,
 * and the #include graph -- then checks whole-program properties no
 * single-TU pass can see:
 *
 *   snapshot-completeness  every mutable data member of a
 *                          checkpoint-bearing class (one declaring
 *                          snapshot()/restore(), a serialize()/
 *                          deserialize() pair, or marked
 *                          `kelp: checkpointed`) is referenced by
 *                          the save/restore bodies or carries
 *                          `// kelp: transient(<reason>)`
 *   audit-completeness     every KnobSink mutation in src/kelp/ and
 *                          src/serve/ happens inside a function that
 *                          records to a DecisionLog (directly or via
 *                          a helper, computed as a fixpoint over the
 *                          indexed call graph) or carries an allow
 *   dirty-discipline       every knob-mutation and lifecycle-
 *                          transition call site in src/ must reach a
 *                          dirty-mark call (noteChange/markDirty,
 *                          fixpoint over the call graph): either the
 *                          enclosing function marks, or some indexed
 *                          definition of the mutator does -- a
 *                          mutation the event-driven engine never
 *                          hears about would let a quiescent node
 *                          keep fast-forwarding across it
 *   rng-discipline         inside a runJobs/parallelMap job lambda,
 *                          method calls on a sim::Rng declared
 *                          outside the lambda are cross-job stream
 *                          reuse; derive a per-job stream with
 *                          sim::Rng::derive(base, index)
 *   layering               every cross-module #include edge under
 *                          src/ must be declared in the checked-in
 *                          module DAG (tools/kelp_analyze/
 *                          layering.txt); the declared table must be
 *                          acyclic and nothing may include fuzz/
 *   bad-suppression        malformed `kelp:` directives (shared
 *                          grammar with kelp-lint via kelp_check)
 *
 * The engine is a library: tests drive buildIndex()/analyzeFiles()
 * directly on fixture trees, and the `kelp_analyze` CLI (main.cc)
 * walks the real tree, applies the (empty) baseline, and emits the
 * human report plus optional --json and --inventory artifacts. See
 * DESIGN.md section 14.
 */

#ifndef KELP_TOOLS_KELP_ANALYZE_ANALYZE_HH
#define KELP_TOOLS_KELP_ANALYZE_ANALYZE_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "check.hh"

namespace kelp {
namespace analyze {

using check::Baseline;
using check::Finding;
using check::formatFinding;

/** One input translation unit: repo-relative path + full text. */
struct SourceFile
{
    std::string path;
    std::string content;
};

/** A data member of an indexed class. */
struct MemberInfo
{
    std::string name;
    int line = 0;

    /** static / constexpr storage: not per-instance state. */
    bool isStatic = false;

    /** Declared with & / * at the top level: wiring, not owned
     * state, so checkpointing it would be wrong by construction. */
    bool isRef = false;
    bool isPtr = false;

    /** Reason from `kelp: transient(...)`, empty when unannotated. */
    std::string transientReason;
    bool hasTransient = false;
};

/** One indexed class/struct. */
struct ClassInfo
{
    std::string name;
    std::string file;
    int line = 0;

    std::vector<MemberInfo> members;

    /** Names of all declared methods. */
    std::set<std::string> methods;

    /** Identifiers referenced in the bodies of the checkpoint
     * methods (snapshot/restore/serialize/deserialize), including
     * out-of-line definitions from other files. */
    std::set<std::string> serialized;

    /** Marked `kelp: checkpointed` at the declaration. */
    bool marked = false;

    /** True when the class participates in checkpointing: declares
     * snapshot() or restore(), a serialize()+deserialize() pair, or
     * is marked. */
    bool checkpointBearing() const;
};

/** One indexed function definition (member or free). */
struct FunctionInfo
{
    /** Enclosing class for out-of-line / inline members, else "". */
    std::string cls;
    std::string name;
    std::string file;
    int line = 0;

    /** Bare names of functions called in the body. */
    std::set<std::string> callees;

    /** Body contains `recv->append(...)` / `recv.append(...)` where
     * the receiver's name mentions log/audit/decision. */
    bool directAudit = false;

    /** Body calls noteChange() or markDirty(), bare or through any
     * receiver -- the quiescence-invalidation primitives all carry
     * one of these two names. */
    bool directDirty = false;
};

/** One KnobSink mutator call site. */
struct KnobWrite
{
    std::string file;
    int line = 0;
    std::string mutator;

    /** Index into Index::functions of the innermost enclosing
     * definition, or -1 when none was found. */
    int function = -1;
};

/** One `#include "..."` edge. */
struct IncludeEdge
{
    std::string file;
    int line = 0;

    /** The quoted include target, verbatim. */
    std::string target;
};

/** One KELP_EXPECTS/KELP_ENSURES/KELP_INVARIANT site. */
struct ContractSite
{
    std::string file;
    int line = 0;
    std::string macro;
};

/** One rng-discipline violation candidate found during indexing:
 * a method call on an outer-scope Rng inside a job lambda. */
struct RngUse
{
    std::string file;
    int line = 0;
    std::string var;
    std::string method;
};

/** The whole-tree index built by pass 1. */
struct Index
{
    std::vector<ClassInfo> classes;
    std::vector<FunctionInfo> functions;
    std::vector<KnobWrite> knobWrites;

    /** Knob + lifecycle mutator call sites (receiver form), for the
     * dirty-discipline rule. Same shape as knobWrites. */
    std::vector<KnobWrite> dirtyWrites;
    std::vector<IncludeEdge> includes;
    std::vector<ContractSite> contracts;
    std::vector<RngUse> rngUses;
};

/** Pass 1: index every file. Directive-syntax problems found while
 * parsing annotations are appended to @p bad. */
Index buildIndex(const std::vector<SourceFile> &files,
                 std::vector<Finding> &bad);

/**
 * Parse + validate a layering table ("module: dep dep ..." lines,
 * '#' comments). Returns module -> allowed direct dependencies.
 * Table-level problems (malformed line, cycle) are reported against
 * @p tablePath in @p bad.
 */
std::map<std::string, std::set<std::string>>
parseLayering(const std::string &tablePath, const std::string &text,
              std::vector<Finding> &bad);

/**
 * Pass 2 on top of pass 1: run all rule families and return findings
 * sorted by (file, line), with valid `kelp:` suppressions already
 * applied. @p layeringText is the contents of the module-DAG table;
 * @p layeringPath names it in table-level findings.
 */
std::vector<Finding> analyzeFiles(const std::vector<SourceFile> &files,
                                  const std::string &layeringPath,
                                  const std::string &layeringText);

/** Machine-readable findings report (JSON array of objects with
 * file/line/rule/message/excerpt keys, wrapped with counts). */
std::string jsonReport(const std::vector<Finding> &findings);

/** Human-readable contract-coverage inventory: per src/ module, the
 * indexed functions, contract-macro density, knob-write audit
 * coverage, and checkpoint-bearing classes with their member
 * accounting. */
std::string inventoryReport(const Index &index);

/** First path component after src/ ("" for non-src paths). */
std::string moduleOf(const std::string &path);

} // namespace analyze
} // namespace kelp

#endif // KELP_TOOLS_KELP_ANALYZE_ANALYZE_HH
