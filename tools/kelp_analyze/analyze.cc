#include "analyze.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace kelp {
namespace analyze {

namespace {

using check::Comment;
using check::LexResult;
using check::splitLines;
using check::startsWith;
using check::Tok;
using check::TokKind;
using check::trimmed;

const std::set<std::string> &
cppKeywords()
{
    static const std::set<std::string> kKw = {
        "if",       "for",      "while",    "switch",  "return",
        "sizeof",   "alignof",  "catch",    "throw",   "new",
        "delete",   "case",     "default",  "do",      "else",
        "goto",     "static_cast",          "dynamic_cast",
        "const_cast",           "reinterpret_cast",    "decltype",
        "int",      "bool",     "void",     "char",    "double",
        "float",    "long",     "short",    "unsigned", "signed",
        "auto",     "const",    "constexpr", "static",  "noexcept",
        "typename", "template", "using",    "typedef", "namespace",
        "operator", "assert"};
    return kKw;
}

const std::set<std::string> &
knobMutators()
{
    static const std::set<std::string> kMut = {
        "setCores", "setPrefetchersEnabled", "setCatWays",
        "adjustCores", "setMemBinding"};
    return kMut;
}

/** Task lifecycle transitions and topology changes: everything that
 * alters what a node's resolve pass would compute and therefore must
 * invalidate quiescence. */
const std::set<std::string> &
lifecycleMutators()
{
    static const std::set<std::string> kMut = {
        "setLifeState", "setHomeSocket", "setDataPlacement",
        "setThreads", "submit"};
    return kMut;
}

/** The quiescence-invalidation primitives, by name. */
bool
dirtyMarker(const std::string &name)
{
    return name == "noteChange" || name == "markDirty";
}

const std::set<std::string> &
checkpointMethods()
{
    static const std::set<std::string> kM = {"snapshot", "restore",
                                             "serialize",
                                             "deserialize"};
    return kM;
}

/** Index of the '}' matching the '{' at @p open, or @p toks.size(). */
size_t
matchBrace(const std::vector<Tok> &toks, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == "{")
            ++depth;
        else if (toks[i].text == "}" && --depth == 0)
            return i;
    }
    return toks.size();
}

/** Index of the ')' matching the '(' at @p open, or @p toks.size(). */
size_t
matchParen(const std::vector<Tok> &toks, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == "(")
            ++depth;
        else if (toks[i].text == ")" && --depth == 0)
            return i;
    }
    return toks.size();
}

bool
containsNoCase(const std::string &hay, const std::string &needle)
{
    std::string h = hay;
    std::transform(h.begin(), h.end(), h.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return h.find(needle) != std::string::npos;
}

/** Receiver of an append() call that counts as a DecisionLog record:
 * the identifier's name mentions the audit trail. */
bool
auditReceiver(const std::string &name)
{
    return containsNoCase(name, "log") ||
           containsNoCase(name, "audit") ||
           containsNoCase(name, "decision");
}

/** Harvest identifiers and plain (unqualified, receiver-less) callee
 * names from a body token range [b, e). */
void
harvestBody(const std::vector<Tok> &toks, size_t b, size_t e,
            std::set<std::string> &ids, std::set<std::string> &callees,
            bool &directAudit, bool &directDirty)
{
    for (size_t i = b; i < e; ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Id)
            continue;
        ids.insert(t.text);
        if (i + 1 >= e || toks[i + 1].text != "(")
            continue;
        if (cppKeywords().count(t.text))
            continue;
        // noteChange()/markDirty() count in any form: bare, on a
        // member (registry_.noteChange()), or through a pointer --
        // the invalidation primitives are uniformly named, so the
        // name alone is the signal.
        if (dirtyMarker(t.text))
            directDirty = true;
        const std::string &prev = i > b ? toks[i - 1].text : "";
        if (prev == "." || prev == "->") {
            // Member calls never propagate audit capability by name
            // (str.append() must not look like DecisionLog::append());
            // instead the call site itself proves capability when the
            // receiver names the audit trail.
            if (t.text == "append" && i >= b + 2 &&
                toks[i - 2].kind == TokKind::Id &&
                auditReceiver(toks[i - 2].text))
                directAudit = true;
            continue;
        }
        if (prev == "::")
            continue;
        callees.insert(t.text);
    }
}

/** Per-file parse state shared by the index passes. */
struct ParsedFile
{
    const SourceFile *src = nullptr;
    LexResult lex;
    std::vector<std::string> lines;
    std::map<int, std::string> transients;
    std::set<int> checkpointMarks;

    std::string excerpt(int line) const
    {
        return line >= 1 && line <= static_cast<int>(lines.size())
                   ? trimmed(lines[line - 1])
                   : std::string();
    }
};

/** One function body discovered during indexing, with its token
 * extent so call sites can be attributed to it. */
struct DefExtent
{
    size_t fileIdx = 0;
    size_t bodyBegin = 0; // index of '{'
    size_t bodyEnd = 0;   // index of matching '}'
};

struct Builder
{
    std::vector<ParsedFile> parsed;
    Index index;
    std::vector<DefExtent> extents; // parallel to index.functions
    // Class body token ranges per file, so the file-scope definition
    // scanner does not rescan inline members.
    std::vector<std::vector<std::pair<size_t, size_t>>> classRanges;

    void parseAll(const std::vector<SourceFile> &files,
                  std::vector<Finding> &bad);
    void scanClasses(size_t fi);
    void parseClassBody(size_t fi, ClassInfo &cls, size_t b, size_t e);
    void scanFileScopeDefs(size_t fi);
    void scanMutatorSites(size_t fi,
                          const std::set<std::string> &mutators,
                          std::vector<KnobWrite> &out);
    void scanKnobWrites(size_t fi);
    void scanDirtyWrites(size_t fi);
    void scanIncludes(size_t fi);
    void scanContracts(size_t fi);
    void scanRngUses(size_t fi);
    void mergeOutOfLineCheckpointBodies();
};

void
Builder::parseAll(const std::vector<SourceFile> &files,
                  std::vector<Finding> &bad)
{
    parsed.resize(files.size());
    classRanges.resize(files.size());
    for (size_t i = 0; i < files.size(); ++i) {
        ParsedFile &pf = parsed[i];
        pf.src = &files[i];
        pf.lex = check::tokenize(files[i].content);
        pf.lines = splitLines(files[i].content);
        pf.transients =
            check::parseTransients(files[i].path, pf.lex.comments, bad);
        pf.checkpointMarks =
            check::parseCheckpointMarks(pf.lex.comments);
    }
    // Classes first, across ALL files: out-of-line bodies in a .cc
    // must find the class declared in a .hh that sorts after it.
    for (size_t i = 0; i < files.size(); ++i)
        scanClasses(i);
    for (size_t i = 0; i < files.size(); ++i) {
        scanFileScopeDefs(i);
        scanIncludes(i);
        scanContracts(i);
        scanRngUses(i);
    }
    mergeOutOfLineCheckpointBodies();
    // Mutation sites resolve against the full function list, so they
    // come last.
    for (size_t i = 0; i < files.size(); ++i) {
        scanKnobWrites(i);
        scanDirtyWrites(i);
    }
}

void
Builder::scanClasses(size_t fi)
{
    ParsedFile &pf = parsed[fi];
    const std::vector<Tok> &toks = pf.lex.toks;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Id ||
            (t.text != "class" && t.text != "struct"))
            continue;
        if (i > 0 && toks[i - 1].text == "enum")
            continue;
        if (toks[i + 1].kind != TokKind::Id)
            continue; // anonymous
        // `template <class T>`: the name is a template parameter.
        if (i + 2 < toks.size() && (toks[i + 2].text == ">" ||
                                    toks[i + 2].text == "," ||
                                    toks[i + 2].text == "="))
            continue;
        ClassInfo cls;
        cls.name = toks[i + 1].text;
        cls.file = pf.src->path;
        cls.line = t.line;
        cls.marked = pf.checkpointMarks.count(t.line) ||
                     pf.checkpointMarks.count(toks[i + 1].line);
        // Find the body '{' (or ';' for a forward declaration).
        size_t k = i + 2;
        while (k < toks.size() && toks[k].text != "{" &&
               toks[k].text != ";")
            ++k;
        if (k >= toks.size() || toks[k].text == ";")
            continue;
        size_t close = matchBrace(toks, k);
        classRanges[fi].push_back({k, close});
        parseClassBody(fi, cls, k + 1, close);
        index.classes.push_back(std::move(cls));
        i = close;
    }
}

void
Builder::parseClassBody(size_t fi, ClassInfo &cls, size_t b, size_t e)
{
    ParsedFile &pf = parsed[fi];
    const std::vector<Tok> &toks = pf.lex.toks;
    size_t i = b;
    while (i < e) {
        const Tok &t = toks[i];
        if (t.kind == TokKind::Id &&
            (t.text == "public" || t.text == "private" ||
             t.text == "protected") &&
            i + 1 < e && toks[i + 1].text == ":") {
            i += 2;
            continue;
        }
        // Collect one member-declaration statement.
        size_t s = i;
        int angle = 0;
        bool sawEq = false, sawOperator = false, sawNested = false,
             sawSkipKw = false;
        size_t firstParen = 0; // top-level '(', before any '='
        while (i < e) {
            const Tok &x = toks[i];
            if (x.kind == TokKind::Id) {
                if (x.text == "operator")
                    sawOperator = true;
                else if (x.text == "class" || x.text == "struct" ||
                         x.text == "enum" || x.text == "union")
                    sawNested = true;
                else if (x.text == "using" || x.text == "typedef" ||
                         x.text == "friend" ||
                         x.text == "static_assert" ||
                         x.text == "template")
                    sawSkipKw = true;
            } else if (x.text == "<" && angle >= 0) {
                if (i > s && (toks[i - 1].kind == TokKind::Id ||
                              toks[i - 1].text == ">"))
                    ++angle;
            } else if (x.text == ">" && angle > 0) {
                --angle;
            } else if (x.text == ">>" && angle > 1) {
                angle -= 2;
            } else if (x.text == "=" && angle == 0) {
                sawEq = true;
            } else if (x.text == "(" && angle == 0) {
                if (!firstParen && !sawEq)
                    firstParen = i;
                i = matchParen(toks, i);
            } else if (x.text == ";" && angle == 0) {
                break;
            } else if (x.text == "{" && angle == 0) {
                if ((firstParen || sawOperator) && !sawNested) {
                    // Inline method body.
                    std::string name;
                    if (firstParen && firstParen > s &&
                        toks[firstParen - 1].kind == TokKind::Id)
                        name = toks[firstParen - 1].text;
                    size_t close = matchBrace(toks, i);
                    if (!name.empty() && !sawSkipKw) {
                        cls.methods.insert(name);
                        FunctionInfo fn;
                        fn.cls = cls.name;
                        fn.name = name;
                        fn.file = pf.src->path;
                        fn.line = toks[s].line;
                        std::set<std::string> ids;
                        harvestBody(toks, i + 1, close, ids,
                                    fn.callees, fn.directAudit,
                                    fn.directDirty);
                        if (checkpointMethods().count(name))
                            cls.serialized.insert(ids.begin(),
                                                  ids.end());
                        extents.push_back({fi, i, close});
                        index.functions.push_back(std::move(fn));
                    }
                    i = close;
                    // Optional trailing ';'.
                    if (i + 1 < e && toks[i + 1].text == ";")
                        ++i;
                    s = e; // statement fully handled
                    break;
                }
                if (sawNested) {
                    // Nested type: skip its body, then its ';'.
                    i = matchBrace(toks, i);
                    while (i < e && toks[i].text != ";")
                        ++i;
                    s = e;
                    break;
                }
                // Brace initializer of a data member.
                i = matchBrace(toks, i);
            }
            ++i;
        }
        if (s >= e || s == i) {
            ++i;
            continue;
        }
        size_t stmtEnd = std::min(i, e); // exclusive of ';'
        ++i;
        if (sawOperator || sawNested || sawSkipKw)
            continue;
        if (firstParen) {
            // Method declaration without inline body.
            if (toks[firstParen - 1].kind == TokKind::Id &&
                firstParen > s)
                cls.methods.insert(toks[firstParen - 1].text);
            continue;
        }
        // Data member(s): extract declarator names at top level.
        bool isStatic = false, isRef = false, isPtr = false;
        {
            int a = 0;
            bool eq = false;
            for (size_t k = s; k < stmtEnd; ++k) {
                const Tok &x = toks[k];
                if (x.text == "<" &&
                    (toks[k - 1].kind == TokKind::Id ||
                     toks[k - 1].text == ">"))
                    ++a;
                else if (x.text == ">" && a > 0)
                    --a;
                else if (x.text == ">>" && a > 1)
                    a -= 2;
                else if (a)
                    continue;
                else if (x.text == "=")
                    eq = true;
                else if (eq)
                    continue;
                else if (x.text == "static" || x.text == "constexpr")
                    isStatic = true;
                else if (x.text == "&")
                    isRef = true;
                else if (x.text == "*")
                    isPtr = true;
            }
        }
        int a = 0;
        for (size_t k = s; k < stmtEnd; ++k) {
            const Tok &x = toks[k];
            if (x.text == "<" && k > s &&
                (toks[k - 1].kind == TokKind::Id ||
                 toks[k - 1].text == ">")) {
                ++a;
                continue;
            }
            if (x.text == ">" && a > 0) {
                --a;
                continue;
            }
            if (x.text == ">>" && a > 1) {
                a -= 2;
                continue;
            }
            if (a)
                continue;
            if (x.text == "=") {
                // Skip the initializer up to a top-level ','.
                int d = 0;
                for (++k; k < stmtEnd; ++k) {
                    const std::string &y = toks[k].text;
                    if (y == "(" || y == "{" || y == "[")
                        ++d;
                    else if (y == ")" || y == "}" || y == "]")
                        --d;
                    else if (y == "," && d == 0)
                        break;
                }
                continue;
            }
            if (x.text == "{" || x.text == "[") {
                int d = 0;
                for (; k < stmtEnd; ++k) {
                    const std::string &y = toks[k].text;
                    if (y == "(" || y == "{" || y == "[")
                        ++d;
                    else if (y == ")" || y == "}" || y == "]") {
                        if (--d == 0)
                            break;
                    }
                }
                continue;
            }
            if (x.kind != TokKind::Id || cppKeywords().count(x.text))
                continue;
            const std::string &next =
                k + 1 < stmtEnd ? toks[k + 1].text : ";";
            if (next == ";" || next == "=" || next == "," ||
                next == "{" || next == "[") {
                MemberInfo m;
                m.name = x.text;
                m.line = x.line;
                m.isStatic = isStatic;
                m.isRef = isRef;
                m.isPtr = isPtr;
                auto it = pf.transients.find(x.line);
                if (it != pf.transients.end()) {
                    m.hasTransient = true;
                    m.transientReason = it->second;
                }
                cls.members.push_back(std::move(m));
            }
        }
    }
}

void
Builder::scanFileScopeDefs(size_t fi)
{
    ParsedFile &pf = parsed[fi];
    const std::vector<Tok> &toks = pf.lex.toks;
    const auto &ranges = classRanges[fi];
    size_t r = 0;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        while (r < ranges.size() && ranges[r].second < i)
            ++r;
        if (r < ranges.size() && i >= ranges[r].first &&
            i <= ranges[r].second) {
            i = ranges[r].second;
            continue;
        }
        const Tok &t = toks[i];
        if (t.kind != TokKind::Id || toks[i + 1].text != "(" ||
            cppKeywords().count(t.text))
            continue;
        const std::string &prev = i > 0 ? toks[i - 1].text : "";
        if (prev == "." || prev == "->")
            continue;
        std::string cls;
        if (prev == "::" && i >= 2 && toks[i - 2].kind == TokKind::Id)
            cls = toks[i - 2].text;
        else if (prev == "~" && i >= 2 && toks[i - 2].text == "::" &&
                 toks[i - 3].kind == TokKind::Id)
            cls = toks[i - 3].text;
        size_t close = matchParen(toks, i + 1);
        if (close >= toks.size())
            continue;
        // Definition discriminator: only {const, noexcept, override,
        // final} may sit between ')' and the body '{'; a ctor
        // initializer list starts with ':'.
        size_t j = close + 1;
        while (j < toks.size() &&
               (toks[j].text == "const" || toks[j].text == "noexcept" ||
                toks[j].text == "override" || toks[j].text == "final"))
            ++j;
        if (j < toks.size() && toks[j].text == ":") {
            int d = 0;
            for (++j; j < toks.size(); ++j) {
                const std::string &y = toks[j].text;
                if (y == "(")
                    ++d;
                else if (y == ")")
                    --d;
                else if (y == "{" && d == 0)
                    break;
                else if (y == ";" && d == 0) {
                    j = toks.size();
                    break;
                }
            }
        }
        if (j >= toks.size() || toks[j].text != "{")
            continue;
        size_t bodyEnd = matchBrace(toks, j);
        FunctionInfo fn;
        fn.cls = cls;
        fn.name = t.text;
        fn.file = pf.src->path;
        fn.line = t.line;
        std::set<std::string> ids;
        harvestBody(toks, j + 1, bodyEnd, ids, fn.callees,
                    fn.directAudit, fn.directDirty);
        if (!cls.empty() && checkpointMethods().count(fn.name)) {
            // Class names repeat across modules (kelp::Controller vs
            // mem::Controller); only same-module classes match.
            for (ClassInfo &c : index.classes)
                if (c.name == cls &&
                    moduleOf(c.file) == moduleOf(fn.file))
                    c.serialized.insert(ids.begin(), ids.end());
        }
        extents.push_back({fi, j, bodyEnd});
        index.functions.push_back(std::move(fn));
        // Continue scanning from the body start so ctor initializer
        // lists are never rescanned (the last `member_(x) {` would
        // otherwise read as a definition of `member_`).
        i = j;
    }
}

void
Builder::mergeOutOfLineCheckpointBodies()
{
    // Out-of-line checkpoint methods also count as declared methods
    // of the class (covers `restore` declared in one header and
    // defined in a .cc the header never sees).
    for (const FunctionInfo &fn : index.functions) {
        if (fn.cls.empty())
            continue;
        for (ClassInfo &c : index.classes)
            if (c.name == fn.cls &&
                moduleOf(c.file) == moduleOf(fn.file))
                c.methods.insert(fn.name);
    }
}

void
Builder::scanMutatorSites(size_t fi,
                          const std::set<std::string> &mutators,
                          std::vector<KnobWrite> &out)
{
    ParsedFile &pf = parsed[fi];
    const std::vector<Tok> &toks = pf.lex.toks;
    for (size_t i = 1; i + 1 < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Id || !mutators.count(t.text))
            continue;
        if (toks[i - 1].text != "." && toks[i - 1].text != "->")
            continue;
        if (toks[i + 1].text != "(")
            continue;
        KnobWrite w;
        w.file = pf.src->path;
        w.line = t.line;
        w.mutator = t.text;
        // Innermost enclosing definition = smallest extent.
        size_t best = SIZE_MAX;
        for (size_t d = 0; d < extents.size(); ++d) {
            const DefExtent &ex = extents[d];
            if (ex.fileIdx != fi || i < ex.bodyBegin ||
                i > ex.bodyEnd)
                continue;
            size_t span = ex.bodyEnd - ex.bodyBegin;
            if (w.function < 0 || span < best) {
                best = span;
                w.function = static_cast<int>(d);
            }
        }
        out.push_back(std::move(w));
    }
}

void
Builder::scanKnobWrites(size_t fi)
{
    scanMutatorSites(fi, knobMutators(), index.knobWrites);
}

void
Builder::scanDirtyWrites(size_t fi)
{
    // Knob writes AND lifecycle transitions: anything that changes
    // what a quiescent node's resolve pass would compute.
    static const std::set<std::string> kAll = [] {
        std::set<std::string> s = knobMutators();
        s.insert(lifecycleMutators().begin(),
                 lifecycleMutators().end());
        return s;
    }();
    scanMutatorSites(fi, kAll, index.dirtyWrites);
}

void
Builder::scanIncludes(size_t fi)
{
    ParsedFile &pf = parsed[fi];
    for (size_t li = 0; li < pf.lines.size(); ++li) {
        std::string l = trimmed(pf.lines[li]);
        if (!startsWith(l, "#include"))
            continue;
        size_t q1 = l.find('"');
        if (q1 == std::string::npos)
            continue;
        size_t q2 = l.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        index.includes.push_back({pf.src->path,
                                  static_cast<int>(li) + 1,
                                  l.substr(q1 + 1, q2 - q1 - 1)});
    }
}

void
Builder::scanContracts(size_t fi)
{
    ParsedFile &pf = parsed[fi];
    for (const Tok &t : pf.lex.toks) {
        if (t.kind != TokKind::Id)
            continue;
        if (t.text == "KELP_EXPECTS" || t.text == "KELP_ENSURES" ||
            t.text == "KELP_INVARIANT")
            index.contracts.push_back(
                {pf.src->path, t.line, t.text});
    }
}

void
Builder::scanRngUses(size_t fi)
{
    ParsedFile &pf = parsed[fi];
    const std::vector<Tok> &toks = pf.lex.toks;

    // All `Rng name` declarations in the file, with token position.
    std::vector<std::pair<std::string, size_t>> decls;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Id || toks[i].text != "Rng")
            continue;
        size_t j = i + 1;
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*"))
            ++j;
        if (j < toks.size() && toks[j].kind == TokKind::Id)
            decls.push_back({toks[j].text, j});
    }
    if (decls.empty())
        return;

    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Id ||
            (toks[i].text != "runJobs" && toks[i].text != "parallelMap"))
            continue;
        size_t j = i + 1;
        if (toks[j].text == "<") { // parallelMap<T>(
            int a = 1;
            for (++j; j < toks.size() && a; ++j) {
                if (toks[j].text == "<")
                    ++a;
                else if (toks[j].text == ">")
                    --a;
            }
        }
        if (j >= toks.size() || toks[j].text != "(")
            continue;
        size_t argsEnd = matchParen(toks, j);
        // Every lambda in the argument list is a job body.
        for (size_t k = j + 1; k < argsEnd; ++k) {
            if (toks[k].text != "[")
                continue;
            size_t cap = k;
            while (cap < argsEnd && toks[cap].text != "]")
                ++cap;
            size_t b = cap;
            while (b < argsEnd && toks[b].text != "{")
                ++b;
            if (b >= argsEnd)
                break;
            size_t bodyEnd = matchBrace(toks, b);
            for (size_t m = b + 1; m < bodyEnd; ++m) {
                const Tok &v = toks[m];
                if (v.kind != TokKind::Id)
                    continue;
                if (m + 2 >= bodyEnd ||
                    (toks[m + 1].text != "." &&
                     toks[m + 1].text != "->") ||
                    toks[m + 2].kind != TokKind::Id ||
                    m + 3 >= bodyEnd || toks[m + 3].text != "(")
                    continue;
                bool outer = false, inner = false;
                for (const auto &d : decls) {
                    if (d.first != v.text)
                        continue;
                    if (d.second > b && d.second < bodyEnd)
                        inner = true;
                    else
                        outer = true;
                }
                if (outer && !inner)
                    index.rngUses.push_back({pf.src->path, v.line,
                                             v.text,
                                             toks[m + 2].text});
            }
            k = bodyEnd;
        }
        i = argsEnd;
    }
}

/** Propagate a per-function capability seed through the bare-name
 * call graph to a fixpoint: a function is capable when its seed is
 * set or any definition matching one of its callees is capable. */
std::vector<char>
capableFixpoint(const Index &index, std::vector<char> cap)
{
    std::map<std::string, std::vector<size_t>> byName;
    for (size_t i = 0; i < index.functions.size(); ++i)
        byName[index.functions[i].name].push_back(i);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < cap.size(); ++i) {
            if (cap[i])
                continue;
            for (const std::string &c : index.functions[i].callees) {
                auto it = byName.find(c);
                if (it == byName.end())
                    continue;
                for (size_t j : it->second) {
                    if (cap[j]) {
                        cap[i] = 1;
                        changed = true;
                        break;
                    }
                }
                if (cap[i])
                    break;
            }
        }
    }
    return cap;
}

/** Audit capability: direct DecisionLog append, or a call (by bare
 * name) to a capable function, to a fixpoint. */
std::vector<char>
auditCapable(const Index &index)
{
    std::vector<char> seed(index.functions.size(), 0);
    for (size_t i = 0; i < seed.size(); ++i)
        seed[i] = index.functions[i].directAudit ? 1 : 0;
    return capableFixpoint(index, std::move(seed));
}

/** Dirty-mark capability: a noteChange()/markDirty() call in the
 * body, or a call (by bare name) to a capable function. */
std::vector<char>
dirtyCapable(const Index &index)
{
    std::vector<char> seed(index.functions.size(), 0);
    for (size_t i = 0; i < seed.size(); ++i)
        seed[i] = index.functions[i].directDirty ? 1 : 0;
    return capableFixpoint(index, std::move(seed));
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

bool
ClassInfo::checkpointBearing() const
{
    if (marked)
        return true;
    if (methods.count("snapshot") || methods.count("restore"))
        return true;
    return methods.count("serialize") && methods.count("deserialize");
}

std::string
moduleOf(const std::string &path)
{
    if (!startsWith(path, "src/"))
        return "";
    size_t slash = path.find('/', 4);
    if (slash == std::string::npos)
        return "";
    return path.substr(4, slash - 4);
}

Index
buildIndex(const std::vector<SourceFile> &files,
           std::vector<Finding> &bad)
{
    Builder b;
    b.parseAll(files, bad);
    return std::move(b.index);
}

std::map<std::string, std::set<std::string>>
parseLayering(const std::string &tablePath, const std::string &text,
              std::vector<Finding> &bad)
{
    std::map<std::string, std::set<std::string>> dag;
    std::vector<std::string> lines = splitLines(text);
    for (size_t i = 0; i < lines.size(); ++i) {
        std::string l = trimmed(lines[i]);
        if (l.empty() || l[0] == '#')
            continue;
        size_t colon = l.find(':');
        if (colon == std::string::npos) {
            bad.push_back({tablePath, static_cast<int>(i) + 1,
                           "layering",
                           "malformed layering line; expected "
                           "'module: dep dep ...'",
                           l});
            continue;
        }
        std::string mod = trimmed(l.substr(0, colon));
        std::set<std::string> &deps = dag[mod];
        std::istringstream is(l.substr(colon + 1));
        std::string d;
        while (is >> d) {
            if (d == "fuzz") {
                bad.push_back(
                    {tablePath, static_cast<int>(i) + 1, "layering",
                     "'" + mod +
                         "' declares a dependency on fuzz; the "
                         "fuzzer is a leaf consumer and nothing may "
                         "include it",
                     l});
                continue;
            }
            deps.insert(d);
        }
    }
    // The declared table must itself be a DAG: colour-marked DFS.
    std::map<std::string, int> colour; // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    struct Dfs
    {
        const std::map<std::string, std::set<std::string>> &dag;
        std::map<std::string, int> &colour;
        const std::string &tablePath;
        std::vector<Finding> &bad;
        bool visit(const std::string &m)
        {
            colour[m] = 1;
            auto it = dag.find(m);
            if (it != dag.end()) {
                for (const std::string &d : it->second) {
                    int c = colour.count(d) ? colour[d] : 0;
                    if (c == 1) {
                        bad.push_back(
                            {tablePath, 1, "layering",
                             "declared module table has a cycle "
                             "through '" +
                                 m + "' -> '" + d + "'",
                             ""});
                        return false;
                    }
                    if (c == 0 && !visit(d))
                        return false;
                }
            }
            colour[m] = 2;
            return true;
        }
    } dfs{dag, colour, tablePath, bad};
    for (const auto &kv : dag) {
        if ((colour.count(kv.first) ? colour[kv.first] : 0) == 0 &&
            !dfs.visit(kv.first))
            break;
    }
    return dag;
}

std::vector<Finding>
analyzeFiles(const std::vector<SourceFile> &files,
             const std::string &layeringPath,
             const std::string &layeringText)
{
    std::vector<Finding> bad;
    Index index = buildIndex(files, bad);
    auto dag = parseLayering(layeringPath, layeringText, bad);

    // Per-file suppression state and line excerpts.
    std::map<std::string, check::Suppressions> sups;
    std::map<std::string, std::vector<std::string>> fileLines;
    for (const SourceFile &f : files) {
        LexResult lex = check::tokenize(f.content);
        sups[f.path] = check::parseSuppressions(
            f.path, lex.comments, check::analyzeRules(),
            check::lintRules(), bad);
        fileLines[f.path] = splitLines(f.content);
    }
    auto excerpt = [&](const std::string &file, int line) {
        const auto &ls = fileLines[file];
        return line >= 1 && line <= static_cast<int>(ls.size())
                   ? trimmed(ls[line - 1])
                   : std::string();
    };

    std::vector<Finding> raw;

    // --- snapshot-completeness -----------------------------------
    for (const ClassInfo &c : index.classes) {
        if (!c.checkpointBearing())
            continue;
        if (!startsWith(c.file, "src/"))
            continue;
        for (const MemberInfo &m : c.members) {
            if (m.isStatic || m.isRef || m.isPtr)
                continue;
            if (m.hasTransient || c.serialized.count(m.name))
                continue;
            raw.push_back(
                {c.file, m.line, "snapshot-completeness",
                 "mutable member '" + m.name +
                     "' of checkpoint-bearing class '" + c.name +
                     "' is never referenced by its snapshot/restore/"
                     "serialize/deserialize bodies; a restart would "
                     "silently lose it -- checkpoint it or annotate "
                     "`// kelp: transient(<reason>)`",
                 excerpt(c.file, m.line)});
        }
    }

    // --- audit-completeness --------------------------------------
    std::vector<char> cap = auditCapable(index);
    for (const KnobWrite &w : index.knobWrites) {
        if (!startsWith(w.file, "src/kelp/") &&
            !startsWith(w.file, "src/serve/"))
            continue;
        bool audited =
            w.function >= 0 &&
            cap[static_cast<size_t>(w.function)];
        if (audited)
            continue;
        std::string where =
            w.function >= 0
                ? "'" +
                      index.functions[static_cast<size_t>(w.function)]
                          .name +
                      "'"
                : "an unindexed context";
        raw.push_back(
            {w.file, w.line, "audit-completeness",
             "knob mutation '" + w.mutator + "()' in " + where +
                 " is not paired with a DecisionLog record on any "
                 "path through the function; actuation without an "
                 "audit trail cannot be replayed or explained -- "
                 "record the decision or justify with "
                 "`kelp: allow(audit-completeness): <reason>`",
             excerpt(w.file, w.line)});
    }

    // --- dirty-discipline ----------------------------------------
    // A mutation "reaches" a dirty mark when the enclosing function
    // marks (directly or through helpers), or when some indexed
    // definition of the mutator itself does -- the repo's normal
    // discipline is the latter: the setter body ends in noteChange(),
    // so every call site is covered at once.
    std::vector<char> dirty = dirtyCapable(index);
    std::map<std::string, std::vector<size_t>> defsByName;
    for (size_t i = 0; i < index.functions.size(); ++i)
        defsByName[index.functions[i].name].push_back(i);
    for (const KnobWrite &w : index.dirtyWrites) {
        if (!startsWith(w.file, "src/"))
            continue;
        bool reaches =
            w.function >= 0 && dirty[static_cast<size_t>(w.function)];
        if (!reaches) {
            auto it = defsByName.find(w.mutator);
            if (it != defsByName.end())
                for (size_t j : it->second)
                    if (dirty[j]) {
                        reaches = true;
                        break;
                    }
        }
        if (reaches)
            continue;
        std::string where =
            w.function >= 0
                ? "'" +
                      index.functions[static_cast<size_t>(w.function)]
                          .name +
                      "'"
                : "an unindexed context";
        raw.push_back(
            {w.file, w.line, "dirty-discipline",
             "mutation '" + w.mutator + "()' in " + where +
                 " reaches no dirty-mark (noteChange/markDirty) on "
                 "any indexed path: neither the enclosing function "
                 "nor any definition of '" + w.mutator +
                 "' invalidates quiescence, so an event-driven node "
                 "could keep fast-forwarding across this change -- "
                 "mark dirty in the mutator or justify with "
                 "`kelp: allow(dirty-discipline): <reason>`",
             excerpt(w.file, w.line)});
    }

    // --- rng-discipline ------------------------------------------
    for (const RngUse &u : index.rngUses) {
        if (u.method == "derive")
            continue;
        raw.push_back(
            {u.file, u.line, "rng-discipline",
             "'" + u.var + "." + u.method +
                 "()' inside a runJobs/parallelMap job lambda uses "
                 "an Rng declared outside the lambda; cross-job "
                 "stream reuse makes results depend on job "
                 "interleaving -- derive a per-job stream with "
                 "sim::Rng::derive(base, index)",
             excerpt(u.file, u.line)});
    }

    // --- layering ------------------------------------------------
    std::set<std::string> srcModules;
    for (const SourceFile &f : files) {
        std::string m = moduleOf(f.path);
        if (!m.empty())
            srcModules.insert(m);
    }
    for (const IncludeEdge &e : index.includes) {
        std::string from = moduleOf(e.file);
        if (from.empty())
            continue;
        size_t slash = e.target.find('/');
        if (slash == std::string::npos)
            continue; // relative same-directory include
        std::string to = e.target.substr(0, slash);
        if (!srcModules.count(to) && !dag.count(to))
            continue; // system or third-party header
        if (to == from)
            continue;
        auto it = dag.find(from);
        if (it == dag.end()) {
            raw.push_back(
                {e.file, e.line, "layering",
                 "module '" + from +
                     "' is not declared in the layering table (" +
                     layeringPath + ")",
                 excerpt(e.file, e.line)});
            continue;
        }
        if (!it->second.count(to)) {
            raw.push_back(
                {e.file, e.line, "layering",
                 "undeclared module dependency: '" + from +
                     "' includes '" + e.target + "' but the layering "
                     "table does not allow '" + from + " -> " + to +
                     "'; either the include is a layering violation "
                     "or the table needs a reviewed edge",
                 excerpt(e.file, e.line)});
        }
    }

    // Apply suppressions; directive-syntax findings stay.
    std::vector<Finding> out;
    for (Finding &f : raw) {
        auto it = sups.find(f.file);
        if (it != sups.end() && it->second.covers(f.rule, f.line))
            continue;
        out.push_back(std::move(f));
    }
    out.insert(out.end(), bad.begin(), bad.end());
    std::stable_sort(out.begin(), out.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
    return out;
}

std::string
jsonReport(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    os << "{\n  \"tool\": \"kelp-analyze\",\n  \"count\": "
       << findings.size() << ",\n  \"findings\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? ",\n" : "\n")
           << "    {\"file\": \"" << jsonEscape(f.file)
           << "\", \"line\": " << f.line << ", \"rule\": \""
           << jsonEscape(f.rule) << "\", \"message\": \""
           << jsonEscape(f.message) << "\", \"excerpt\": \""
           << jsonEscape(f.excerpt) << "\"}";
    }
    os << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

std::string
inventoryReport(const Index &index)
{
    struct ModStats
    {
        int functions = 0;
        int expects = 0, ensures = 0, invariants = 0;
        int knobWrites = 0, knobAudited = 0;
        int dirtyWrites = 0, dirtyMarked = 0;
    };
    std::map<std::string, ModStats> mods;
    std::vector<char> cap = auditCapable(index);
    std::vector<char> dirty = dirtyCapable(index);
    std::map<std::string, std::vector<size_t>> defsByName;
    for (size_t i = 0; i < index.functions.size(); ++i)
        defsByName[index.functions[i].name].push_back(i);

    for (const FunctionInfo &fn : index.functions) {
        std::string m = moduleOf(fn.file);
        if (!m.empty())
            ++mods[m].functions;
    }
    for (const ContractSite &c : index.contracts) {
        std::string m = moduleOf(c.file);
        if (m.empty())
            continue;
        if (c.macro == "KELP_EXPECTS")
            ++mods[m].expects;
        else if (c.macro == "KELP_ENSURES")
            ++mods[m].ensures;
        else
            ++mods[m].invariants;
    }
    for (const KnobWrite &w : index.knobWrites) {
        std::string m = moduleOf(w.file);
        if (m.empty())
            continue;
        ++mods[m].knobWrites;
        if (w.function >= 0 && cap[static_cast<size_t>(w.function)])
            ++mods[m].knobAudited;
    }
    for (const KnobWrite &w : index.dirtyWrites) {
        std::string m = moduleOf(w.file);
        if (m.empty())
            continue;
        ++mods[m].dirtyWrites;
        bool reaches =
            w.function >= 0 && dirty[static_cast<size_t>(w.function)];
        if (!reaches) {
            auto it = defsByName.find(w.mutator);
            if (it != defsByName.end())
                for (size_t j : it->second)
                    if (dirty[j]) {
                        reaches = true;
                        break;
                    }
        }
        if (reaches)
            ++mods[m].dirtyMarked;
    }

    std::ostringstream os;
    os << "kelp-analyze contract-coverage inventory\n"
       << "========================================\n\n"
       << "module      funcs  expects  ensures  invariants  "
          "knob-writes  audited  mut-sites  dirty-marked\n";
    for (const auto &kv : mods) {
        const ModStats &s = kv.second;
        char buf[200];
        std::snprintf(buf, sizeof buf,
                      "%-10s  %5d  %7d  %7d  %10d  %11d  %7d  %9d  "
                      "%12d\n",
                      kv.first.c_str(), s.functions, s.expects,
                      s.ensures, s.invariants, s.knobWrites,
                      s.knobAudited, s.dirtyWrites, s.dirtyMarked);
        os << buf;
    }

    os << "\ncheckpoint-bearing classes\n"
       << "--------------------------\n";
    for (const ClassInfo &c : index.classes) {
        if (!c.checkpointBearing() || !startsWith(c.file, "src/"))
            continue;
        int serialized = 0, transient = 0, wiring = 0;
        for (const MemberInfo &m : c.members) {
            if (m.isStatic || m.isRef || m.isPtr)
                ++wiring;
            else if (m.hasTransient)
                ++transient;
            else if (c.serialized.count(m.name))
                ++serialized;
        }
        os << "  " << c.name << " (" << c.file << "): "
           << c.members.size() << " members, " << serialized
           << " checkpointed, " << transient << " transient, "
           << wiring << " wiring/static"
           << (c.marked ? " [marked checkpointed]" : "") << "\n";
    }
    return os.str();
}

} // namespace analyze
} // namespace kelp
