/**
 * @file
 * Tests for the KELP_EXPECTS/KELP_ENSURES/KELP_INVARIANT contract
 * macros: Fatal mode panics (death test), Count mode records the
 * violation and continues, and the contracts wired into the runtime
 * (SloGuard preconditions, Task lifecycle legality) actually fire.
 */

#include <gtest/gtest.h>

#include "kelp/slo_guard.hh"
#include "sim/log.hh"
#include "workload/task.hh"

namespace {

using kelp::sim::ContractMode;
using kelp::sim::contractMode;
using kelp::sim::contractViolations;
using kelp::sim::resetContractViolations;
using kelp::sim::setContractMode;

class ContractTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_mode_ = contractMode();
        saved_level_ = kelp::sim::logLevel();
        setContractMode(ContractMode::Count);
        kelp::sim::setLogLevel(kelp::sim::LogLevel::Quiet);
        resetContractViolations();
    }

    void
    TearDown() override
    {
        setContractMode(saved_mode_);
        kelp::sim::setLogLevel(saved_level_);
        resetContractViolations();
    }

  private:
    ContractMode saved_mode_ = ContractMode::Fatal;
    kelp::sim::LogLevel saved_level_ = kelp::sim::LogLevel::Warn;
};

TEST_F(ContractTest, CountModeRecordsAndContinues)
{
    EXPECT_EQ(contractViolations(), 0u);
    KELP_INVARIANT(false, "deliberate violation");
    EXPECT_EQ(contractViolations(), 1u);
    KELP_EXPECTS(false, "deliberate violation");
    KELP_EXPECTS(false);
    KELP_ENSURES(1 + 1 == 3, "deliberate violation");
    // Reaching this line at all proves Count mode does not abort.
    EXPECT_EQ(contractViolations(), 4u);
}

TEST_F(ContractTest, PassingContractsAreFree)
{
    KELP_EXPECTS(true);
    KELP_ENSURES(2 + 2 == 4);
    KELP_INVARIANT(true, "never printed");
    EXPECT_EQ(contractViolations(), 0u);
}

TEST_F(ContractTest, ResetClearsTheCounter)
{
    KELP_INVARIANT(false, "deliberate violation");
    ASSERT_EQ(contractViolations(), 1u);
    resetContractViolations();
    EXPECT_EQ(contractViolations(), 0u);
}

TEST_F(ContractTest, FatalModePanicsOnViolation)
{
    EXPECT_DEATH(
        {
            setContractMode(ContractMode::Fatal);
            KELP_INVARIANT(false, "deliberate violation");
        },
        "invariant violated");
}

TEST_F(ContractTest, SloGuardRejectsNonsensePerfRatio)
{
    kelp::runtime::SloConfig cfg;
    cfg.enabled = true;
    kelp::runtime::SloGuard guard(cfg);

    guard.observe(1.0, 0.9);
    EXPECT_EQ(contractViolations(), 0u);

    // A negative performance ratio violates the observe()
    // precondition; in Count mode the guard still answers.
    guard.observe(2.0, -1.0);
    EXPECT_GE(contractViolations(), 1u);
}

// Minimal concrete Task so lifecycle contracts can be exercised
// without a full workload model.
class StubTask : public kelp::wl::Task
{
  public:
    StubTask() : Task("stub", 0) {}
    int threadsWanted() const override { return 1; }
    kelp::sim::GiBps bwDemand(const kelp::wl::ExecEnv &) override
    {
        return 0.0;
    }
    void advance(kelp::sim::Time, const kelp::wl::ExecEnv &) override {}
    double completedWork() const override { return 0.0; }
    kelp::wl::HostPhaseParams llcProfile() const override
    {
        return kelp::wl::HostPhaseParams{};
    }
};

TEST_F(ContractTest, LifecycleTerminalStatesAreSticky)
{
    using kelp::wl::LifeState;

    StubTask t;
    t.setLifeState(LifeState::Suspended);
    t.setLifeState(LifeState::Running);
    t.setLifeState(LifeState::Finished);
    EXPECT_EQ(contractViolations(), 0u);

    // Finished -> Running is illegal; Count mode records it.
    t.setLifeState(LifeState::Running);
    EXPECT_EQ(contractViolations(), 1u);
}

TEST_F(ContractTest, LegalTransitionMatrix)
{
    using kelp::wl::LifeState;
    using kelp::wl::legalLifeTransition;

    static_assert(legalLifeTransition(LifeState::Running,
                                      LifeState::Crashed),
                  "running tasks may crash");
    static_assert(!legalLifeTransition(LifeState::Crashed,
                                       LifeState::Running),
                  "crashed tasks stay crashed");
    EXPECT_TRUE(
        legalLifeTransition(LifeState::Suspended, LifeState::Running));
    EXPECT_TRUE(
        legalLifeTransition(LifeState::Finished, LifeState::Finished));
    EXPECT_FALSE(
        legalLifeTransition(LifeState::Finished, LifeState::Crashed));
}

} // namespace
