/**
 * @file
 * Tests for the assembled memory system: SNC routing, interleaving,
 * remote flows, backpressure wiring, and HAL counters.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"
#include "sim/types.hh"

using namespace kelp;
using namespace kelp::mem;

namespace {

MemSystemConfig
testConfig()
{
    MemSystemConfig cfg;
    cfg.numSockets = 2;
    cfg.socket.peakBw = 100.0;  // 50 per controller
    cfg.socket.baseLatency = 100.0;
    cfg.socket.inflationAt95 = 4.0;
    cfg.socket.distressThreshold = 0.8;
    cfg.socket.throttleStrength = 0.5;
    cfg.socket.sncLocalLatencyFactor = 0.9;
    cfg.socket.sncRemoteLatencyFactor = 1.1;
    cfg.upiCapacity = 40.0;
    cfg.upiHopLatency = 70.0;
    cfg.upiCoherenceTax = 1.0;
    return cfg;
}

constexpr sim::Time dt = 100 * sim::usec;

} // namespace

TEST(MemSystem, SncRoutesToHomeSubdomain)
{
    MemSystem mem(testConfig());
    mem.setSncEnabled(true);
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 10.0);
    mem.addFlow(2, {0, 1, 0, 1}, 30.0);
    mem.resolve(dt);
    EXPECT_NEAR(mem.controller(0, 0).totalDelivered(), 10.0, 1e-9);
    EXPECT_NEAR(mem.controller(0, 1).totalDelivered(), 30.0, 1e-9);
}

TEST(MemSystem, InterleavesWithoutSnc)
{
    MemSystem mem(testConfig());
    mem.setSncEnabled(false);
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 20.0);
    mem.resolve(dt);
    EXPECT_NEAR(mem.controller(0, 0).totalDelivered(), 10.0, 1e-9);
    EXPECT_NEAR(mem.controller(0, 1).totalDelivered(), 10.0, 1e-9);
}

TEST(MemSystem, SncIsolatesBandwidth)
{
    MemSystem mem(testConfig());
    mem.setSncEnabled(true);
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 10.0);   // ML in subdomain 0
    mem.addFlow(2, {0, 1, 0, 1}, 200.0);  // aggressor saturates sub 1
    mem.resolve(dt);
    // The ML flow keeps its full grant despite the other subdomain
    // being massively oversubscribed.
    EXPECT_NEAR(mem.grant(1).fraction, 1.0, 1e-9);
    EXPECT_LT(mem.grant(2).fraction, 0.3);
}

TEST(MemSystem, SncLocalLatencyBonus)
{
    MemSystem mem(testConfig());
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 10.0);
    mem.resolve(dt);
    double off = mem.grant(1).latency;

    mem.setSncEnabled(true);
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 10.0);
    mem.resolve(dt);
    double on = mem.grant(1).latency;
    EXPECT_NEAR(on / off, 0.9, 0.02);
}

TEST(MemSystem, SncCrossSubdomainLatencyPenalty)
{
    MemSystem mem(testConfig());
    mem.setSncEnabled(true);
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 10.0);  // local access
    mem.addFlow(2, {0, 0, 0, 1}, 10.0);  // cross-subdomain access
    mem.resolve(dt);
    EXPECT_GT(mem.grant(2).latency, mem.grant(1).latency);
}

TEST(MemSystem, RemoteFlowUsesUpi)
{
    MemSystem mem(testConfig());
    mem.beginTick();
    mem.addFlow(1, {0, 0, 1, 0}, 20.0);  // socket 0 -> socket 1 data
    mem.resolve(dt);
    EXPECT_NEAR(mem.upi().utilization(), 0.5, 1e-9);
    // Remote access pays the hop latency.
    EXPECT_GT(mem.grant(1).latency, 100.0 + 60.0);
    // Data lands on the remote socket's controllers, occupying
    // them for 1.5x the data volume (coherence overhead).
    EXPECT_NEAR(mem.controller(1, 0).totalDelivered() +
                mem.controller(1, 1).totalDelivered(),
                20.0 * 1.5, 1e-9);
}

TEST(MemSystem, UpiCapsRemoteFlows)
{
    MemSystem mem(testConfig());
    mem.beginTick();
    mem.addFlow(1, {0, 0, 1, 0}, 80.0);  // 2x the link capacity
    mem.resolve(dt);
    EXPECT_NEAR(mem.grant(1).fraction, 0.5, 1e-9);
}

TEST(MemSystem, CoherenceTaxHitsLocalTraffic)
{
    MemSystem mem(testConfig());
    // Local-only baseline.
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 10.0);
    mem.resolve(dt);
    double quiet = mem.grant(1).latency;
    // Same local flow while the link is saturated by someone else.
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 10.0);
    mem.addFlow(2, {1, 0, 0, 1}, 40.0);
    mem.resolve(dt);
    EXPECT_GT(mem.grant(1).latency, quiet * 1.5);
}

TEST(MemSystem, DistressAssertsOnSaturation)
{
    MemSystem mem(testConfig());
    mem.setSncEnabled(true);
    mem.beginTick();
    mem.addFlow(1, {0, 1, 0, 1}, 60.0);  // 120% of one controller
    mem.resolve(dt);
    EXPECT_DOUBLE_EQ(mem.saturation(0), 1.0);
    EXPECT_NEAR(mem.coreThrottle(0), 0.5, 1e-9);
    // The other socket is unaffected.
    EXPECT_DOUBLE_EQ(mem.saturation(1), 0.0);
    EXPECT_DOUBLE_EQ(mem.coreThrottle(1), 1.0);
}

TEST(MemSystem, ThrottleReflectsLastResolve)
{
    MemSystem mem(testConfig());
    mem.setSncEnabled(true);
    mem.beginTick();
    mem.addFlow(1, {0, 1, 0, 1}, 60.0);
    mem.resolve(dt);
    EXPECT_LT(mem.coreThrottle(0), 1.0);
    mem.beginTick();
    mem.resolve(dt);
    EXPECT_DOUBLE_EQ(mem.coreThrottle(0), 1.0);
}

TEST(MemSystem, SocketCountersTrackBandwidth)
{
    MemSystem mem(testConfig());
    mem.setSncEnabled(true);
    for (int i = 0; i < 5; ++i) {
        mem.beginTick();
        mem.addFlow(1, {0, 0, 0, 0}, 10.0);
        mem.addFlow(2, {0, 1, 0, 1}, 20.0);
        mem.resolve(dt);
    }
    sim::IntervalAccumulator::Snapshot bw, s0, s1;
    EXPECT_NEAR(mem.counters(0).bw.readSince(bw, 0.0), 30.0, 1e-9);
    EXPECT_NEAR(mem.counters(0).subdomainBw[0].readSince(s0, 0.0),
                10.0, 1e-9);
    EXPECT_NEAR(mem.counters(0).subdomainBw[1].readSince(s1, 0.0),
                20.0, 1e-9);
}

TEST(MemSystem, SubdomainLatencyCountersIndependent)
{
    MemSystem mem(testConfig());
    mem.setSncEnabled(true);
    for (int i = 0; i < 5; ++i) {
        mem.beginTick();
        mem.addFlow(1, {0, 0, 0, 0}, 5.0);
        mem.addFlow(2, {0, 1, 0, 1}, 60.0);  // saturates sub 1
        mem.resolve(dt);
    }
    sim::IntervalAccumulator::Snapshot l0, l1;
    double lat0 = mem.counters(0).subdomainLat[0].readSince(l0, 0.0);
    double lat1 = mem.counters(0).subdomainLat[1].readSince(l1, 0.0);
    EXPECT_GT(lat1, lat0 * 1.5);
}

TEST(MemSystem, GrantAggregatesAcrossFlows)
{
    MemSystem mem(testConfig());
    mem.setSncEnabled(true);
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 10.0);
    mem.addFlow(1, {0, 0, 0, 1}, 10.0);
    mem.resolve(dt);
    EXPECT_NEAR(mem.grant(1).delivered, 20.0, 1e-9);
    EXPECT_NEAR(mem.grant(1).fraction, 1.0, 1e-9);
}

TEST(MemSystem, FastAssertedIntegral)
{
    MemSystem mem(testConfig());
    mem.setSncEnabled(true);
    mem.beginTick();
    mem.addFlow(1, {0, 1, 0, 1}, 100.0);
    mem.resolve(dt);
    mem.beginTick();
    mem.resolve(dt);
    sim::IntervalAccumulator::Snapshot s;
    EXPECT_NEAR(mem.fastAsserted(0).readSince(s, 0.0), 0.5, 1e-9);
}

TEST(MemSystem, UnknownRequestorNeutral)
{
    MemSystem mem(testConfig());
    mem.beginTick();
    mem.resolve(dt);
    Grant g = mem.grant(42);
    EXPECT_DOUBLE_EQ(g.fraction, 1.0);
    EXPECT_DOUBLE_EQ(g.latency, 100.0);
}

TEST(MemSystem, InvalidRoutePanics)
{
    MemSystem mem(testConfig());
    mem.beginTick();
    EXPECT_DEATH(mem.addFlow(1, {0, 0, 5, 0}, 1.0), "socket");
}

TEST(MemSystem, TooManySocketsPanics)
{
    MemSystemConfig cfg = testConfig();
    cfg.numSockets = 3;
    EXPECT_DEATH(MemSystem{cfg}, "sockets");
}

TEST(MemSystem, RequestPriorityModePropagates)
{
    MemSystem mem(testConfig());
    mem.setArbitration(Arbitration::RequestPriority);
    mem.setSncEnabled(true);
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 10.0, true);
    mem.addFlow(2, {0, 0, 0, 0}, 100.0, false);
    mem.resolve(dt);
    EXPECT_NEAR(mem.grant(1).fraction, 1.0, 1e-9);
    EXPECT_LT(mem.grant(2).fraction, 0.5);
}
