/**
 * @file
 * Tests for the accelerator device model.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"

using namespace kelp;
using namespace kelp::accel;

TEST(Accelerator, TransferTime)
{
    AcceleratorConfig cfg;
    cfg.pcieBw = 12.0;
    Accelerator a(cfg);
    EXPECT_NEAR(a.transferTime(6.0), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(a.transferTime(0.0), 0.0);
}

TEST(Accelerator, NegativeTransferPanics)
{
    Accelerator a(AcceleratorConfig{});
    EXPECT_DEATH(a.transferTime(-1.0), "negative");
}

TEST(Accelerator, UtilizationAccumulates)
{
    Accelerator a(AcceleratorConfig{});
    a.recordEngineBusy(0.5, 1.0);
    a.recordEngineBusy(1.0, 1.0);
    a.recordLinkBusy(0.25, 2.0);
    sim::IntervalAccumulator::Snapshot e, l;
    EXPECT_NEAR(a.engineUtil().readSince(e, 0.0), 0.75, 1e-12);
    EXPECT_NEAR(a.linkUtil().readSince(l, 0.0), 0.25, 1e-12);
}

TEST(Accelerator, KindNames)
{
    EXPECT_STREQ(kindName(Kind::TpuV1), "TPU");
    EXPECT_STREQ(kindName(Kind::CloudTpu), "Cloud TPU");
    EXPECT_STREQ(kindName(Kind::Gpu), "GPU");
}

TEST(Accelerator, BadConfigPanics)
{
    AcceleratorConfig cfg;
    cfg.pcieBw = 0.0;
    EXPECT_DEATH(Accelerator{cfg}, "PCIe");
}
