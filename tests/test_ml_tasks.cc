/**
 * @file
 * Tests for the ML task models: training step graphs and the
 * inference server.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/catalog.hh"
#include "workload/ml_infer_task.hh"
#include "workload/ml_train_task.hh"

using namespace kelp;
using namespace kelp::wl;
using kelp::sim::msec;

namespace {

HostPhaseParams
hostParams(double cpu_frac = 0.3)
{
    HostPhaseParams p;
    p.cpuFrac = cpu_frac;
    p.parallelism = 4;
    return p;
}

ExecEnv
idealEnv(double cores = 8.0)
{
    ExecEnv env;
    env.effCores = cores;
    env.latencyNs = 90.0;
    env.baseLatencyNs = 90.0;
    return env;
}

/** In-feed-style step: host overlapping accel, then a sync hop. */
StepGraph
infeedStep(sim::Time host, sim::Time accel)
{
    StepGraph g;
    g.stages.push_back({{hostSegment(host, hostParams()),
                         accelSegment(accel)}});
    g.stages.push_back({{pcieSegment(0.2 * msec)}});
    return g;
}

} // namespace

TEST(StepGraph, StandaloneDurationIsCriticalPath)
{
    StepGraph g = infeedStep(3.0 * msec, 2.0 * msec);
    EXPECT_NEAR(g.standaloneDuration(), 3.2 * msec, 1e-12);
    EXPECT_NEAR(g.hostTime(), 3.0 * msec, 1e-12);
}

TEST(MlTrainTask, StandaloneStepRate)
{
    MlTrainTask t("cnn", 0, infeedStep(3.0 * msec, 2.0 * msec),
                  nullptr);
    t.advance(3.2 * msec * 10, idealEnv());
    EXPECT_EQ(t.steps(), 10u);
    EXPECT_NEAR(t.completedWork(), 10.0, 1e-6);
}

TEST(MlTrainTask, OverlapHidesFastHost)
{
    // Host shorter than accel: host slowdown up to the slack is free.
    MlTrainTask t("cnn", 0, infeedStep(2.0 * msec, 3.0 * msec),
                  nullptr);
    ExecEnv env = idealEnv();
    env.latencyNs = 120.0;  // mild: host 2.0 -> ~2.5ms, still < 3.0
    t.advance(3.2 * msec * 10, env);
    EXPECT_EQ(t.steps(), 10u);
}

TEST(MlTrainTask, CriticalHostSlowsStep)
{
    MlTrainTask t("cnn", 0, infeedStep(3.0 * msec, 2.0 * msec),
                  nullptr);
    ExecEnv env = idealEnv();
    env.latencyNs = 270.0;  // 3x -> host speed 1/(0.3+0.7*3) = 0.417
    sim::Time horizon = 1.0;
    t.advance(horizon, env);
    double expected_step = 3.0 * msec / 0.4167 + 0.2 * msec;
    EXPECT_NEAR(t.completedWork(), horizon / expected_step,
                t.completedWork() * 0.02);
}

TEST(MlTrainTask, PartialStepFraction)
{
    MlTrainTask t("cnn", 0, infeedStep(3.0 * msec, 2.0 * msec),
                  nullptr);
    t.advance(1.6 * msec, idealEnv());
    EXPECT_EQ(t.steps(), 0u);
    EXPECT_NEAR(t.completedWork(), 0.5, 0.01);
}

TEST(MlTrainTask, AccelUtilizationRecorded)
{
    accel::AcceleratorConfig acfg;
    accel::Accelerator accel(acfg);
    MlTrainTask t("cnn", 0, infeedStep(2.0 * msec, 3.0 * msec),
                  &accel);
    t.advance(3.2 * msec * 100, idealEnv());
    sim::IntervalAccumulator::Snapshot s;
    double util = accel.engineUtil().readSince(s, 0.0);
    EXPECT_NEAR(util, 3.0 / 3.2, 0.02);
}

TEST(MlTrainTask, ThreadsFollowParallelism)
{
    MlTrainTask t("cnn", 0, infeedStep(3.0 * msec, 2.0 * msec),
                  nullptr);
    EXPECT_EQ(t.threadsWanted(), 4);
}

TEST(MlTrainTask, DemandOnlyDuringHostStage)
{
    // Sequential: accel stage first, then host (CNN3 pattern).
    StepGraph g;
    g.stages.push_back({{accelSegment(2.0 * msec)}});
    g.stages.push_back({{hostSegment(2.0 * msec, hostParams())}});
    MlTrainTask t("cnn3", 0, g, nullptr);
    ExecEnv env = idealEnv();
    // At t=0 the accel stage is active: no host demand.
    EXPECT_DOUBLE_EQ(t.bwDemand(env), 0.0);
    t.advance(2.5 * msec, env);
    EXPECT_GT(t.bwDemand(env), 0.0);
}

TEST(MlTrainTask, EmptyStepPanics)
{
    StepGraph g;
    EXPECT_DEATH(MlTrainTask("x", 0, g, nullptr), "stages");
}

namespace {

InferConfig
inferConfig(bool closed = true, int depth = 2)
{
    HostPhaseParams beam;
    beam.cpuFrac = 0.5;
    beam.parallelism = 2;
    InferConfig cfg;
    StepGraph iter;
    iter.stages.push_back({{hostSegment(0.4 * msec, beam)}});
    iter.stages.push_back({{pcieSegment(0.1 * msec)}});
    iter.stages.push_back({{accelSegment(0.3 * msec)}});
    cfg.iteration = iter;
    cfg.itersPerRequest = 4;
    cfg.pipelineDepth = depth;
    cfg.closedLoop = closed;
    cfg.targetQps = 200.0;
    return cfg;
}

} // namespace

TEST(MlInferTask, SerialRequestLatencyIsSumOfPhases)
{
    InferConfig cfg = inferConfig();
    cfg.serial = true;
    MlInferTask t("rnn", 0, cfg, nullptr);
    t.advance(1.0, idealEnv());
    // One request = 4 iterations x 0.8 ms = 3.2 ms.
    EXPECT_NEAR(t.latency().percentile(50.0), 3.2e-3, 3.2e-3 * 0.05);
    EXPECT_NEAR(static_cast<double>(t.completed()), 1.0 / 3.2e-3,
                2.0);
}

TEST(MlInferTask, ClosedLoopKeepsDepthInFlight)
{
    MlInferTask t("rnn", 0, inferConfig(true, 3), nullptr);
    t.advance(0.5, idealEnv());
    // Throughput exceeds the serial rate thanks to pipelining.
    double serial_rate = 1.0 / 3.2e-3;
    EXPECT_GT(t.completed() / 0.5, serial_rate * 1.5);
}

TEST(MlInferTask, ClosedLoopThroughputTimesLatencyIsDepth)
{
    MlInferTask t("rnn", 0, inferConfig(true, 3), nullptr);
    t.advance(2.0, idealEnv());
    double qps = t.completed() / 2.0;
    double mean_lat = t.latency().mean();
    EXPECT_NEAR(qps * mean_lat, 3.0, 0.2);  // Little's law
}

TEST(MlInferTask, SlowHostCutsQpsAndInflatesTail)
{
    MlInferTask fast("rnn", 0, inferConfig(), nullptr);
    MlInferTask slow("rnn", 0, inferConfig(), nullptr);
    ExecEnv env = idealEnv(4.0);
    fast.advance(2.0, env);
    ExecEnv contended = env;
    contended.latencyNs = 360.0;
    slow.advance(2.0, contended);
    EXPECT_LT(slow.completed(), fast.completed() * 0.85);
    EXPECT_GT(slow.latency().percentile(95.0),
              fast.latency().percentile(95.0) * 1.15);
}

TEST(MlInferTask, OpenLoopTracksArrivalRateWhenUnderloaded)
{
    InferConfig cfg = inferConfig(false, 4);
    cfg.targetQps = 100.0;
    MlInferTask t("rnn", 0, cfg, nullptr, 7);
    t.advance(5.0, idealEnv());
    EXPECT_NEAR(t.completed() / 5.0, 100.0, 8.0);
}

TEST(MlInferTask, OpenLoopQueueGrowsWhenOverloaded)
{
    InferConfig cfg = inferConfig(false, 1);
    cfg.targetQps = 1000.0;  // far beyond 1/3.2ms = 312 capacity
    MlInferTask t("rnn", 0, cfg, nullptr, 7);
    t.advance(1.0, idealEnv());
    EXPECT_GT(t.queued(), 100u);
}

TEST(MlInferTask, TraceEventsCoverAllPhases)
{
    InferConfig cfg = inferConfig();
    cfg.serial = true;
    MlInferTask t("rnn", 0, cfg, nullptr);
    std::vector<TraceEvent> events;
    t.setTraceSink([&](const TraceEvent &e) { events.push_back(e); });
    t.advance(3.2e-3 * 2.5, idealEnv());
    int host = 0, pcie = 0, accel = 0;
    for (const auto &e : events) {
        EXPECT_LE(e.start, e.end);
        switch (e.kind) {
          case SegmentKind::Host:
            ++host;
            break;
          case SegmentKind::Pcie:
            ++pcie;
            break;
          case SegmentKind::Accel:
            ++accel;
            break;
        }
    }
    EXPECT_GE(host, 8);
    EXPECT_GE(pcie, 8);
    EXPECT_GE(accel, 8);
}

TEST(MlInferTask, ResetLatencyClearsHistogram)
{
    InferConfig cfg = inferConfig();
    cfg.serial = true;
    MlInferTask t("rnn", 0, cfg, nullptr);
    t.advance(0.1, idealEnv());
    EXPECT_GT(t.latency().count(), 0u);
    t.resetLatency();
    EXPECT_EQ(t.latency().count(), 0u);
}

TEST(MlInferTask, MultiSegmentStagePanics)
{
    InferConfig cfg = inferConfig();
    cfg.iteration.stages[0].segments.push_back(
        accelSegment(1.0 * msec));
    EXPECT_DEATH(MlInferTask("x", 0, cfg, nullptr), "one segment");
}
