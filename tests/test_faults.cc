/**
 * @file
 * Tests for the HAL fault injectors: plan parsing, each telemetry
 * fault class, actuation failure/delay semantics, and determinism.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hal/fault_injector.hh"
#include "sim/rng.hh"

using namespace kelp;
using namespace kelp::hal;

namespace {

/**
 * Scripted telemetry backend: every read returns a slightly
 * different, fully deterministic sample (real windowed counters
 * always jitter, and the stuck detector depends on that).
 */
class ScriptedSource : public CounterSource
{
  public:
    CounterSample
    sample(sim::SocketId socket) override
    {
        (void)socket;
        ++n_;
        CounterSample s;
        s.windowEnd = 0.01 * n_;
        s.socketBw = 50.0 + 0.125 * n_;
        s.memLatency = 120.0 + 0.25 * n_;
        s.saturation = 0.05 + 0.001 * n_;
        s.subdomainBw = {20.0 + 0.0625 * n_, 30.0 + 0.0625 * n_};
        s.subdomainLat = {110.0 + 0.5 * n_, 130.0 + 0.5 * n_};
        return s;
    }

  private:
    int n_ = 0;
};

/** Actuation backend that records every write it receives. */
class RecordingSink : public KnobSink
{
  public:
    struct Write
    {
        char kind;  // 'c', 'p', or 'w'
        sim::GroupId group;
        int value;
    };

    bool
    setCores(sim::GroupId group, sim::SocketId socket,
             sim::SubdomainId sub, int count) override
    {
        (void)socket;
        (void)sub;
        writes.push_back({'c', group, count});
        return true;
    }

    bool
    setPrefetchersEnabled(sim::GroupId group, int count) override
    {
        writes.push_back({'p', group, count});
        return true;
    }

    bool
    setCatWays(sim::GroupId group, int ways) override
    {
        writes.push_back({'w', group, ways});
        return true;
    }

    std::vector<Write> writes;
};

bool
sameSample(const CounterSample &a, const CounterSample &b)
{
    return a.windowEnd == b.windowEnd && a.socketBw == b.socketBw &&
           a.memLatency == b.memLatency &&
           a.saturation == b.saturation &&
           a.subdomainBw == b.subdomainBw &&
           a.subdomainLat == b.subdomainLat;
}

} // namespace

TEST(FaultPlan, EmptySpecIsDisabled)
{
    FaultPlan p = FaultPlan::parse("");
    EXPECT_FALSE(p.any());
    EXPECT_EQ(p.dropProb, 0.0);
    EXPECT_EQ(p.knobFailProb, 0.0);
}

TEST(FaultPlan, ParsesEveryKey)
{
    FaultPlan p = FaultPlan::parse(
        "drop=0.1,stuck=0.05,noise=0.2,noisefrac=0.3,spike=0.02,"
        "spikescale=8,knobfail=0.15,knobdelay=0.25");
    EXPECT_TRUE(p.any());
    EXPECT_DOUBLE_EQ(p.dropProb, 0.1);
    EXPECT_DOUBLE_EQ(p.stuckProb, 0.05);
    EXPECT_DOUBLE_EQ(p.noiseProb, 0.2);
    EXPECT_DOUBLE_EQ(p.noiseFrac, 0.3);
    EXPECT_DOUBLE_EQ(p.spikeProb, 0.02);
    EXPECT_DOUBLE_EQ(p.spikeScale, 8.0);
    EXPECT_DOUBLE_EQ(p.knobFailProb, 0.15);
    EXPECT_DOUBLE_EQ(p.knobDelayProb, 0.25);
}

TEST(FaultPlan, ToStringIsCanonicalAndRoundTrips)
{
    // Default plan renders empty and reparses to default.
    FaultPlan def;
    EXPECT_EQ(def.toString(), "");
    ASSERT_TRUE(FaultPlan::tryParse("").has_value());

    // Only non-default fields print, in documented key order.
    FaultPlan p;
    p.dropProb = 0.1;
    p.knobFailProb = 0.25;
    EXPECT_EQ(p.toString(), "drop=0.1,knobfail=0.25");

    // A scale knob at its default stays silent even when its
    // probability prints.
    FaultPlan q;
    q.noiseProb = 0.2;
    EXPECT_EQ(q.toString(), "noise=0.2");
    q.noiseFrac = 0.3;
    EXPECT_EQ(q.toString(), "noise=0.2,noisefrac=0.3");
}

TEST(FaultPlan, RandomizedToStringRoundTrip)
{
    // toString . tryParse is the identity, and toString of the
    // reparse reproduces the same bytes, across a seeded sweep of
    // plans (including awkward decimals).
    sim::Rng rng(31337);
    for (int i = 0; i < 500; ++i) {
        FaultPlan p;
        auto prob = [&]() {
            switch (rng.below(4)) {
              case 0:
                return 0.0;
              case 1:
                return 0.1 * static_cast<double>(rng.below(11));
              case 2:
                return rng.uniform();
              default:
                return 1.0 / 3.0;
            }
        };
        p.dropProb = prob();
        p.stuckProb = prob();
        p.noiseProb = prob();
        p.noiseFrac = prob();
        p.spikeProb = prob();
        p.spikeScale = 1.0 + 20.0 * rng.uniform();
        p.knobFailProb = prob();
        p.knobDelayProb = prob();

        const std::string text = p.toString();
        std::string error;
        auto back = FaultPlan::tryParse(text, &error);
        ASSERT_TRUE(back.has_value()) << error << " <- " << text;
        EXPECT_EQ(back->toString(), text);
        EXPECT_DOUBLE_EQ(back->dropProb, p.dropProb);
        EXPECT_DOUBLE_EQ(back->stuckProb, p.stuckProb);
        EXPECT_DOUBLE_EQ(back->noiseProb, p.noiseProb);
        EXPECT_DOUBLE_EQ(back->spikeProb, p.spikeProb);
        EXPECT_DOUBLE_EQ(back->knobFailProb, p.knobFailProb);
        EXPECT_DOUBLE_EQ(back->knobDelayProb, p.knobDelayProb);
        // Scale knobs print whenever non-default, so they round-trip
        // exactly even when their probability class is disarmed.
        EXPECT_DOUBLE_EQ(back->noiseFrac, p.noiseFrac);
        EXPECT_DOUBLE_EQ(back->spikeScale, p.spikeScale);
    }
}

TEST(FaultPlan, UnknownKeyFatal)
{
    EXPECT_EXIT(FaultPlan::parse("bogus=0.5"),
                ::testing::ExitedWithCode(1), "unknown fault spec");
}

TEST(FaultPlan, MalformedValueFatal)
{
    EXPECT_EXIT(FaultPlan::parse("drop=lots"),
                ::testing::ExitedWithCode(1), "bad value");
}

TEST(FaultPlan, TryParseRejectsUnknownKeyAmongValidOnes)
{
    // A typo'd key must not silently drop one fault dimension from
    // an otherwise-valid chaos spec.
    std::string error;
    auto p = FaultPlan::tryParse("drop=0.1,typo=1", &error);
    EXPECT_FALSE(p.has_value());
    EXPECT_NE(error.find("typo"), std::string::npos);
    EXPECT_NE(error.find("drop"), std::string::npos)
        << "error should list the valid keys: " << error;
}

TEST(FaultPlan, TryParseRejectsEmptyValue)
{
    // strtod("") yields 0.0; an empty value must be an error, not a
    // silently-disabled fault.
    std::string error;
    EXPECT_FALSE(FaultPlan::tryParse("drop=", &error).has_value());
    EXPECT_NE(error.find("bad value"), std::string::npos);
    EXPECT_FALSE(FaultPlan::tryParse("drop", &error).has_value());
}

TEST(FaultPlan, TryParseRejectsOutOfRangeProbability)
{
    std::string error;
    EXPECT_FALSE(FaultPlan::tryParse("drop=1.5", &error).has_value());
    EXPECT_FALSE(FaultPlan::tryParse("stuck=-0.1", &error).has_value());
    EXPECT_FALSE(
        FaultPlan::tryParse("spikescale=0", &error).has_value());
}

TEST(FaultPlan, TryParseAgreesWithParseOnValidSpecs)
{
    std::string spec = "drop=0.1,noise=0.2,noisefrac=0.3,knobfail=0.4";
    auto p = FaultPlan::tryParse(spec);
    ASSERT_TRUE(p.has_value());
    FaultPlan q = FaultPlan::parse(spec);
    EXPECT_DOUBLE_EQ(p->dropProb, q.dropProb);
    EXPECT_DOUBLE_EQ(p->noiseProb, q.noiseProb);
    EXPECT_DOUBLE_EQ(p->noiseFrac, q.noiseFrac);
    EXPECT_DOUBLE_EQ(p->knobFailProb, q.knobFailProb);
}

TEST(FaultyCounters, ZeroPlanIsPassThrough)
{
    ScriptedSource reference;
    FaultyCounterSource faulty(std::make_unique<ScriptedSource>(),
                               FaultPlan{}, sim::Rng(1));
    for (int i = 0; i < 20; ++i) {
        CounterSample want = reference.sample(0);
        CounterSample got = faulty.sample(0);
        EXPECT_TRUE(sameSample(want, got));
    }
    EXPECT_EQ(faulty.stats().reads, 20u);
    EXPECT_EQ(faulty.stats().drops, 0u);
    EXPECT_EQ(faulty.stats().stucks, 0u);
    EXPECT_EQ(faulty.stats().noises, 0u);
    EXPECT_EQ(faulty.stats().spikes, 0u);
}

TEST(FaultyCounters, DropReturnsZeroedSample)
{
    FaultPlan plan;
    plan.dropProb = 1.0;
    FaultyCounterSource faulty(std::make_unique<ScriptedSource>(),
                               plan, sim::Rng(2));
    for (int i = 0; i < 5; ++i) {
        CounterSample s = faulty.sample(0);
        // The dropout signature: all-zero, detectably impossible
        // (real memory latency is never 0, and the timestamp of a
        // healthy read always advances past 0).
        EXPECT_EQ(s.windowEnd, 0.0);
        EXPECT_EQ(s.memLatency, 0.0);
        EXPECT_EQ(s.socketBw, 0.0);
        EXPECT_EQ(s.saturation, 0.0);
    }
    EXPECT_EQ(faulty.stats().drops, 5u);
}

TEST(FaultyCounters, StuckRepeatsLastGoodSample)
{
    FaultyCounterSource faulty(std::make_unique<ScriptedSource>(),
                               FaultPlan{}, sim::Rng(3));
    CounterSample good = faulty.sample(0);  // clean, cached
    FaultPlan plan;
    plan.stuckProb = 1.0;
    faulty.setPlan(plan);
    for (int i = 0; i < 4; ++i) {
        CounterSample s = faulty.sample(0);
        EXPECT_TRUE(sameSample(s, good));  // bit-identical repeats
    }
    EXPECT_EQ(faulty.stats().stucks, 4u);
}

TEST(FaultyCounters, NoiseStaysWithinFraction)
{
    ScriptedSource reference;
    FaultPlan plan;
    plan.noiseProb = 1.0;
    plan.noiseFrac = 0.2;
    FaultyCounterSource faulty(std::make_unique<ScriptedSource>(),
                               plan, sim::Rng(4));
    bool perturbed = false;
    for (int i = 0; i < 20; ++i) {
        CounterSample want = reference.sample(0);
        CounterSample got = faulty.sample(0);
        EXPECT_NEAR(got.socketBw, want.socketBw,
                    0.2 * want.socketBw + 1e-9);
        EXPECT_NEAR(got.memLatency, want.memLatency,
                    0.2 * want.memLatency + 1e-9);
        if (!sameSample(want, got))
            perturbed = true;
    }
    EXPECT_TRUE(perturbed);
    EXPECT_EQ(faulty.stats().noises, 20u);
}

TEST(FaultyCounters, SpikeScalesExactlyOneSignal)
{
    ScriptedSource reference;
    FaultPlan plan;
    plan.spikeProb = 1.0;
    plan.spikeScale = 10.0;
    FaultyCounterSource faulty(std::make_unique<ScriptedSource>(),
                               plan, sim::Rng(5));
    for (int i = 0; i < 20; ++i) {
        CounterSample want = reference.sample(0);
        CounterSample got = faulty.sample(0);
        int scaled = 0;
        // kelp: allow(float-eq): the spike fault multiplies one
        // signal by exactly 10.0; the test asserts that bit-exact
        // scaling, tolerance would mask a buggy near-miss.
        scaled += got.socketBw == 10.0 * want.socketBw;
        // kelp: allow(float-eq): same bit-exact spike check.
        scaled += got.memLatency == 10.0 * want.memLatency;
        // kelp: allow(float-eq): same bit-exact spike check.
        scaled += got.saturation == 10.0 * want.saturation;
        // kelp: allow(float-eq): same bit-exact spike check.
        scaled += got.subdomainBw[0] == 10.0 * want.subdomainBw[0];
        EXPECT_EQ(scaled, 1);
    }
    EXPECT_EQ(faulty.stats().spikes, 20u);
}

TEST(FaultyCounters, SameSeedSameFaultSequence)
{
    FaultPlan plan;
    plan.dropProb = 0.3;
    plan.stuckProb = 0.2;
    plan.noiseProb = 0.3;
    plan.spikeProb = 0.1;
    FaultyCounterSource a(std::make_unique<ScriptedSource>(), plan,
                          sim::Rng(42));
    FaultyCounterSource b(std::make_unique<ScriptedSource>(), plan,
                          sim::Rng(42));
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(sameSample(a.sample(0), b.sample(0)));
    EXPECT_EQ(a.stats().drops, b.stats().drops);
    EXPECT_EQ(a.stats().noises, b.stats().noises);
}

TEST(FaultyKnobs, ZeroPlanAppliesImmediately)
{
    RecordingSink inner;
    FaultyKnobSink faulty(inner, FaultPlan{}, sim::Rng(1));
    EXPECT_TRUE(faulty.setCores(3, 0, 1, 8));
    EXPECT_TRUE(faulty.setPrefetchersEnabled(3, 6));
    EXPECT_TRUE(faulty.setCatWays(3, 4));
    ASSERT_EQ(inner.writes.size(), 3u);
    EXPECT_EQ(inner.writes[0].kind, 'c');
    EXPECT_EQ(inner.writes[0].value, 8);
    EXPECT_EQ(inner.writes[1].kind, 'p');
    EXPECT_EQ(inner.writes[2].kind, 'w');
    EXPECT_EQ(faulty.stats().writes, 3u);
    EXPECT_EQ(faulty.stats().failures, 0u);
    EXPECT_EQ(faulty.stats().delays, 0u);
}

TEST(FaultyKnobs, FailedWriteIsLostAndReportsFalse)
{
    RecordingSink inner;
    FaultPlan plan;
    plan.knobFailProb = 1.0;
    FaultyKnobSink faulty(inner, plan, sim::Rng(2));
    EXPECT_FALSE(faulty.setCores(3, 0, 1, 8));
    EXPECT_FALSE(faulty.setPrefetchersEnabled(3, 6));
    EXPECT_TRUE(inner.writes.empty());
    EXPECT_EQ(faulty.stats().failures, 2u);
}

TEST(FaultyKnobs, DelayedWriteLandsBeforeNextWrite)
{
    RecordingSink inner;
    FaultPlan plan;
    plan.knobDelayProb = 1.0;
    FaultyKnobSink faulty(inner, plan, sim::Rng(3));

    // Delayed: reports success but nothing reaches the sink yet.
    EXPECT_TRUE(faulty.setCores(3, 0, 1, 8));
    EXPECT_TRUE(inner.writes.empty());

    // The next write flushes the queued one first (in order), then
    // is itself delayed.
    EXPECT_TRUE(faulty.setPrefetchersEnabled(3, 6));
    ASSERT_EQ(inner.writes.size(), 1u);
    EXPECT_EQ(inner.writes[0].kind, 'c');
    EXPECT_EQ(inner.writes[0].value, 8);

    // flush() drains the remainder.
    faulty.flush();
    ASSERT_EQ(inner.writes.size(), 2u);
    EXPECT_EQ(inner.writes[1].kind, 'p');
    EXPECT_EQ(inner.writes[1].value, 6);
    EXPECT_EQ(faulty.stats().delays, 2u);
}

TEST(FaultyKnobs, SameSeedSameWriteFate)
{
    FaultPlan plan;
    plan.knobFailProb = 0.4;
    plan.knobDelayProb = 0.3;
    RecordingSink ia, ib;
    FaultyKnobSink a(ia, plan, sim::Rng(9));
    FaultyKnobSink b(ib, plan, sim::Rng(9));
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.setCores(3, 0, 1, i), b.setCores(3, 0, 1, i));
    a.flush();
    b.flush();
    EXPECT_EQ(a.stats().failures, b.stats().failures);
    EXPECT_EQ(a.stats().delays, b.stats().delays);
    ASSERT_EQ(ia.writes.size(), ib.writes.size());
    for (size_t i = 0; i < ia.writes.size(); ++i)
        EXPECT_EQ(ia.writes[i].value, ib.writes[i].value);
}
