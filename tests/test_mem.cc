/**
 * @file
 * Tests for the memory-system building blocks: latency curve,
 * controller arbitration, backpressure, and the UPI link.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mem/backpressure.hh"
#include "mem/controller.hh"
#include "mem/latency_curve.hh"
#include "mem/upi.hh"
#include "sim/types.hh"

using namespace kelp;
using namespace kelp::mem;

TEST(LatencyCurve, UnloadedEqualsBase)
{
    LatencyCurve c(90.0, 4.0);
    EXPECT_NEAR(c.at(0.0), 90.0, 1e-9);
    EXPECT_DOUBLE_EQ(c.base(), 90.0);
}

TEST(LatencyCurve, InflationAt95MatchesParameter)
{
    LatencyCurve c(90.0, 4.0);
    EXPECT_NEAR(c.inflation(0.95), 4.0, 1e-9);
    EXPECT_NEAR(c.at(0.95), 360.0, 1e-6);
}

TEST(LatencyCurve, ClampsAboveNinetyFive)
{
    LatencyCurve c(90.0, 4.0);
    EXPECT_NEAR(c.at(1.0), c.at(0.95), 1e-9);
    EXPECT_NEAR(c.at(5.0), c.at(0.95), 1e-9);
}

TEST(LatencyCurve, GentleAtLowLoad)
{
    LatencyCurve c(90.0, 4.0);
    EXPECT_LT(c.inflation(0.3), 1.05);
    EXPECT_LT(c.inflation(0.5), 1.15);
}

TEST(LatencyCurve, BadParamsPanic)
{
    EXPECT_DEATH(LatencyCurve(0.0, 4.0), "positive");
    EXPECT_DEATH(LatencyCurve(90.0, 0.5), ">= 1");
}

/** Monotonicity property across utilizations. */
class LatencyCurveMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(LatencyCurveMonotone, NonDecreasing)
{
    LatencyCurve c(90.0, GetParam());
    double prev = 0.0;
    for (double u = 0.0; u <= 1.0; u += 0.01) {
        double lat = c.at(u);
        EXPECT_GE(lat, prev);
        prev = lat;
    }
}

INSTANTIATE_TEST_SUITE_P(Inflations, LatencyCurveMonotone,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0, 8.0));

namespace {

Controller
makeController(sim::GiBps capacity = 50.0)
{
    return Controller(0, 0, capacity, LatencyCurve(90.0, 4.0));
}

} // namespace

TEST(Controller, UnderSubscribedFullGrant)
{
    Controller mc = makeController();
    mc.beginTick();
    mc.addDemand(1, 10.0, false, 0.0);
    mc.addDemand(2, 20.0, false, 0.0);
    mc.resolve(1e-4);
    EXPECT_DOUBLE_EQ(mc.grant(1).fraction, 1.0);
    EXPECT_DOUBLE_EQ(mc.grant(1).delivered, 10.0);
    EXPECT_DOUBLE_EQ(mc.grant(2).delivered, 20.0);
    EXPECT_DOUBLE_EQ(mc.totalDelivered(), 30.0);
    EXPECT_NEAR(mc.utilization(), 0.6, 1e-9);
}

TEST(Controller, OversubscribedProportionalShare)
{
    Controller mc = makeController(50.0);
    mc.beginTick();
    mc.addDemand(1, 60.0, false, 0.0);
    mc.addDemand(2, 40.0, false, 0.0);
    mc.resolve(1e-4);
    EXPECT_NEAR(mc.grant(1).delivered, 30.0, 1e-9);
    EXPECT_NEAR(mc.grant(2).delivered, 20.0, 1e-9);
    EXPECT_NEAR(mc.grant(1).fraction, 0.5, 1e-9);
    EXPECT_NEAR(mc.totalDelivered(), 50.0, 1e-9);
    EXPECT_DOUBLE_EQ(mc.utilization(), 1.0);
}

TEST(Controller, LatencyGrowsWithLoad)
{
    Controller mc = makeController(50.0);
    mc.beginTick();
    mc.addDemand(1, 10.0, false, 0.0);
    mc.resolve(1e-4);
    double light = mc.latency();
    mc.beginTick();
    mc.addDemand(1, 45.0, false, 0.0);
    mc.resolve(1e-4);
    double heavy = mc.latency();
    EXPECT_GT(heavy, light);
}

TEST(Controller, LatencyExtraAddsToGrant)
{
    Controller mc = makeController();
    mc.beginTick();
    mc.addDemand(1, 10.0, false, 70.0);
    mc.addDemand(2, 10.0, false, 0.0);
    mc.resolve(1e-4);
    EXPECT_NEAR(mc.grant(1).latency - mc.grant(2).latency, 70.0, 1e-9);
}

TEST(Controller, MergesFlowsOfSameRequestor)
{
    Controller mc = makeController();
    mc.beginTick();
    mc.addDemand(1, 10.0, false, 0.0);
    mc.addDemand(1, 15.0, false, 0.0);
    mc.resolve(1e-4);
    EXPECT_NEAR(mc.grant(1).delivered, 25.0, 1e-9);
}

TEST(Controller, UnknownRequestorGetsNeutralGrant)
{
    Controller mc = makeController();
    mc.beginTick();
    mc.resolve(1e-4);
    Grant g = mc.grant(99);
    EXPECT_DOUBLE_EQ(g.delivered, 0.0);
    EXPECT_DOUBLE_EQ(g.fraction, 1.0);
}

TEST(Controller, ZeroDemandIgnored)
{
    Controller mc = makeController();
    mc.beginTick();
    mc.addDemand(1, 0.0, false, 0.0);
    mc.resolve(1e-4);
    EXPECT_DOUBLE_EQ(mc.totalDelivered(), 0.0);
}

TEST(Controller, NegativeDemandPanics)
{
    Controller mc = makeController();
    mc.beginTick();
    EXPECT_DEATH(mc.addDemand(1, -1.0, false, 0.0), "negative");
}

TEST(Controller, BeginTickClearsState)
{
    Controller mc = makeController();
    mc.beginTick();
    mc.addDemand(1, 10.0, false, 0.0);
    mc.resolve(1e-4);
    mc.beginTick();
    mc.resolve(1e-4);
    EXPECT_DOUBLE_EQ(mc.totalDelivered(), 0.0);
    EXPECT_DOUBLE_EQ(mc.grant(1).delivered, 0.0);
}

TEST(Controller, CountersAccumulate)
{
    Controller mc = makeController();
    for (int i = 0; i < 10; ++i) {
        mc.beginTick();
        mc.addDemand(1, 25.0, false, 0.0);
        mc.resolve(1e-4);
    }
    sim::IntervalAccumulator::Snapshot s;
    EXPECT_NEAR(mc.bwAccum().readSince(s, 0.0), 25.0, 1e-9);
}

TEST(Controller, RequestPriorityProtectsHighPriority)
{
    Controller mc = makeController(50.0);
    mc.setArbitration(Arbitration::RequestPriority);
    mc.beginTick();
    mc.addDemand(1, 10.0, true, 0.0);   // high priority
    mc.addDemand(2, 100.0, false, 0.0); // aggressor
    mc.resolve(1e-4);
    // High priority gets full bandwidth at near-unloaded latency.
    EXPECT_NEAR(mc.grant(1).delivered, 10.0, 1e-9);
    EXPECT_LT(mc.grant(1).latency, 100.0);
    // Low priority absorbs all the loss and the queueing latency.
    EXPECT_NEAR(mc.grant(2).delivered, 40.0, 1e-9);
    EXPECT_GT(mc.grant(2).latency, mc.grant(1).latency);
}

TEST(Controller, RequestPriorityLowLatencyAtAnyLoad)
{
    // The hardware what-if must shield high-priority latency even
    // when the controller is busy but not oversubscribed.
    Controller mc = makeController(50.0);
    mc.setArbitration(Arbitration::RequestPriority);
    mc.beginTick();
    mc.addDemand(1, 5.0, true, 0.0);
    mc.addDemand(2, 40.0, false, 0.0);  // 90% load, undersubscribed
    mc.resolve(1e-4);
    EXPECT_DOUBLE_EQ(mc.grant(1).delivered, 5.0);
    EXPECT_LT(mc.grant(1).latency, mc.grant(2).latency);
    EXPECT_LT(mc.grant(1).latency, 100.0);
}

TEST(Controller, RequestPriorityFairWhenUnderSubscribed)
{
    Controller mc = makeController(50.0);
    mc.setArbitration(Arbitration::RequestPriority);
    mc.beginTick();
    mc.addDemand(1, 10.0, true, 0.0);
    mc.addDemand(2, 20.0, false, 0.0);
    mc.resolve(1e-4);
    EXPECT_DOUBLE_EQ(mc.grant(1).delivered, 10.0);
    EXPECT_DOUBLE_EQ(mc.grant(2).delivered, 20.0);
}

TEST(Controller, ZeroCapacityPanics)
{
    EXPECT_DEATH(makeController(0.0), "capacity");
}

TEST(Backpressure, BelowThresholdNoDistress)
{
    BackpressureUnit bp(0.8, 0.5);
    bp.update(0.5, 1e-4);
    EXPECT_DOUBLE_EQ(bp.assertedFraction(), 0.0);
    EXPECT_DOUBLE_EQ(bp.coreThrottle(), 1.0);
}

TEST(Backpressure, FullSaturationFullDistress)
{
    BackpressureUnit bp(0.8, 0.5);
    bp.update(1.0, 1e-4);
    EXPECT_DOUBLE_EQ(bp.assertedFraction(), 1.0);
    EXPECT_DOUBLE_EQ(bp.coreThrottle(), 0.5);
}

TEST(Backpressure, LinearDutyCycle)
{
    BackpressureUnit bp(0.8, 0.4);
    bp.update(0.9, 1e-4);
    EXPECT_NEAR(bp.assertedFraction(), 0.5, 1e-9);
    EXPECT_NEAR(bp.coreThrottle(), 0.8, 1e-9);
}

TEST(Backpressure, FastAssertedAccumulates)
{
    BackpressureUnit bp(0.8, 0.5);
    bp.update(1.0, 1.0);
    bp.update(0.5, 1.0);
    sim::IntervalAccumulator::Snapshot s;
    EXPECT_NEAR(bp.fastAsserted().readSince(s, 0.0), 0.5, 1e-9);
}

TEST(Backpressure, BadParamsPanic)
{
    EXPECT_DEATH(BackpressureUnit(0.0, 0.5), "threshold");
    EXPECT_DEATH(BackpressureUnit(1.5, 0.5), "threshold");
    EXPECT_DEATH(BackpressureUnit(0.8, 1.0), "strength");
}

TEST(Upi, GrantFractionUnderSubscribed)
{
    UpiLink upi(40.0, 70.0, 0.5);
    upi.beginTick();
    upi.addDemand(20.0);
    upi.resolve(1e-4);
    EXPECT_DOUBLE_EQ(upi.grantFraction(), 1.0);
    EXPECT_DOUBLE_EQ(upi.utilization(), 0.5);
}

TEST(Upi, GrantFractionOversubscribed)
{
    UpiLink upi(40.0, 70.0, 0.5);
    upi.beginTick();
    upi.addDemand(80.0);
    upi.resolve(1e-4);
    EXPECT_NEAR(upi.grantFraction(), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(upi.utilization(), 1.0);
}

TEST(Upi, RemoteLatencyGrowsWithLoad)
{
    UpiLink upi(40.0, 70.0, 0.5);
    upi.beginTick();
    upi.addDemand(4.0);
    upi.resolve(1e-4);
    double light = upi.remoteLatency();
    EXPECT_NEAR(light, 70.0, 2.0);
    upi.beginTick();
    upi.addDemand(38.0);
    upi.resolve(1e-4);
    EXPECT_GT(upi.remoteLatency(), light * 2.0);
}

TEST(Upi, CoherenceInflationRampsToFullTax)
{
    UpiLink upi(40.0, 70.0, 1.0);
    upi.beginTick();
    upi.addDemand(20.0);
    upi.resolve(1e-4);
    // Congestion utilization = 20 / (0.8 * 40) = 0.625.
    EXPECT_NEAR(upi.coherenceInflation(),
                1.0 + std::pow(20.0 / 32.0, 1.5), 1e-9);
    upi.beginTick();
    upi.addDemand(40.0);
    upi.resolve(1e-4);
    EXPECT_NEAR(upi.coherenceInflation(), 2.0, 1e-9);
}

TEST(Upi, CongestionUtilizationLeadsNominal)
{
    UpiLink upi(40.0, 70.0, 1.0);
    upi.beginTick();
    upi.addDemand(32.0);
    upi.resolve(1e-4);
    EXPECT_NEAR(upi.utilization(), 0.8, 1e-9);
    EXPECT_NEAR(upi.congestionUtilization(), 1.0, 1e-9);
    upi.beginTick();
    upi.addDemand(16.0);
    upi.resolve(1e-4);
    EXPECT_NEAR(upi.congestionUtilization(), 0.5, 1e-9);
}

TEST(Upi, DemandResetsEachTick)
{
    UpiLink upi(40.0, 70.0, 0.5);
    upi.beginTick();
    upi.addDemand(40.0);
    upi.resolve(1e-4);
    upi.beginTick();
    upi.resolve(1e-4);
    EXPECT_DOUBLE_EQ(upi.utilization(), 0.0);
    EXPECT_DOUBLE_EQ(upi.coherenceInflation(), 1.0);
}

TEST(Upi, BadParamsPanic)
{
    EXPECT_DEATH(UpiLink(0.0, 70.0, 0.5), "positive");
    EXPECT_DEATH(UpiLink(40.0, 70.0, -1.0), "tax");
}
