/**
 * @file
 * Tests for the scenario fuzzer: spec round-tripping, the
 * generator/mutator envelope, the oracle set, the shrinker's
 * 1-minimality, and byte-identical reports across worker counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "fuzz/mutate.hh"
#include "fuzz/oracle.hh"
#include "fuzz/shrink.hh"
#include "fuzz/spec.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

using namespace kelp;
using namespace kelp::fuzz;

namespace {

/** A short-horizon spec for tests that actually execute runs. */
ScenarioSpec
quickSpec()
{
    ScenarioSpec s;
    s.cfg.ml = wl::MlWorkload::Cnn1;
    s.cfg.config = exp::ConfigKind::KP;
    s.cfg.cpu = wl::CpuWorkload::Stitch;
    s.cfg.cpuInstances = 2;
    s.cfg.warmup = 2.0;
    s.cfg.measure = 8.0;
    s.cfg.samplePeriod = 1.0;
    return s;
}

} // namespace

// ------------------------------------------------------------------
// formatDouble / ScenarioSpec round-tripping

TEST(FuzzSpec, FormatDoubleShortestRoundTrip)
{
    EXPECT_EQ(formatDouble(0.0), "0");
    EXPECT_EQ(formatDouble(0.25), "0.25");
    EXPECT_EQ(formatDouble(12.5), "12.5");
    EXPECT_EQ(formatDouble(0.1), "0.1");
    // Reparse-reprint is a fixpoint even for awkward values.
    for (double v : {1.0 / 3.0, 0.1 + 0.2, 1e-9, 123456.789}) {
        std::string s = formatDouble(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST(FuzzSpec, DefaultSpecRoundTrips)
{
    ScenarioSpec spec;
    std::string text = spec.toString();
    std::string error;
    auto back = ScenarioSpec::tryParse(text, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->toString(), text);
}

TEST(FuzzSpec, ToStringIsCanonicalFixpoint)
{
    // killAt folds into the kills list: the printed form reparses to
    // an equal spec even though the field layout differs.
    ScenarioSpec spec = quickSpec();
    spec.cfg.killAt = 5.0;
    spec.cfg.kills = {7.5};
    std::string text = spec.toString();
    EXPECT_NE(text.find("kills=5,7.5"), std::string::npos) << text;
    auto back = ScenarioSpec::tryParse(text);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->toString(), text);
    EXPECT_EQ(*back, spec);
}

TEST(FuzzSpec, ParseRejectsGarbage)
{
    std::string error;
    EXPECT_FALSE(ScenarioSpec::tryParse("ml=vax", &error));
    EXPECT_NE(error.find("unknown ml workload"), std::string::npos);

    EXPECT_FALSE(ScenarioSpec::tryParse("bogus=1", &error));
    EXPECT_NE(error.find("unknown key"), std::string::npos);

    EXPECT_FALSE(ScenarioSpec::tryParse("ml=cnn1\nml=cnn2", &error));
    EXPECT_NE(error.find("duplicate key"), std::string::npos);

    EXPECT_FALSE(ScenarioSpec::tryParse("measure=0", &error));
    EXPECT_NE(error.find("measure"), std::string::npos);

    EXPECT_FALSE(ScenarioSpec::tryParse("kills=4,-1", &error));
    EXPECT_NE(error.find("positive"), std::string::npos);

    EXPECT_FALSE(ScenarioSpec::tryParse("slo-floor=1.5", &error));
    EXPECT_NE(error.find("slo-floor"), std::string::npos);

    EXPECT_FALSE(ScenarioSpec::tryParse("warmup", &error));
    EXPECT_NE(error.find("key=value"), std::string::npos);
}

TEST(FuzzSpec, CommentsAndBlanksAreSkipped)
{
    auto spec = ScenarioSpec::tryParse(
        "# a comment\n\n  \nml=cnn3\n# another\nseed=9\n");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->cfg.ml, wl::MlWorkload::Cnn3);
    EXPECT_EQ(spec->cfg.seed, 9u);
}

TEST(FuzzSpec, RandomizedMutantRoundTrip)
{
    // Every spec the mutator can emit round-trips through the
    // grammar byte-for-byte: the corpus never archives an
    // unparseable find.
    sim::Rng rng(2024);
    std::vector<ScenarioSpec> pool = seedSpecs();
    for (int i = 0; i < 300; ++i) {
        ScenarioSpec spec = pool[rng.below(pool.size())];
        mutateSpec(spec, rng, 1 + static_cast<int>(rng.below(5)));
        std::string text = spec.toString();
        std::string error;
        auto back = ScenarioSpec::tryParse(text, &error);
        ASSERT_TRUE(back.has_value()) << error << "\n" << text;
        EXPECT_EQ(back->toString(), text);
        pool.push_back(spec);
    }
}

// ------------------------------------------------------------------
// Generator / mutator

TEST(FuzzMutate, GenerateSpecIsPureInSeedAndIndex)
{
    const std::vector<ScenarioSpec> pool = seedSpecs();
    for (uint64_t idx : {0ull, 1ull, 17ull, 255ull}) {
        ScenarioSpec a = generateSpec(42, idx, pool);
        ScenarioSpec b = generateSpec(42, idx, pool);
        EXPECT_EQ(a, b) << "index " << idx;
    }
    // Different indices explore different specs (not a constant).
    std::set<std::string> texts;
    for (uint64_t idx = 0; idx < 16; ++idx)
        texts.insert(generateSpec(42, idx, pool).toString());
    EXPECT_GT(texts.size(), 4u);
}

TEST(FuzzMutate, MutantsStayInsideTheEnvelope)
{
    sim::Rng rng(7);
    std::vector<ScenarioSpec> pool = seedSpecs();
    for (int i = 0; i < 200; ++i) {
        ScenarioSpec spec = generateSpec(7, static_cast<uint64_t>(i),
                                         pool);
        const exp::RunConfig &c = spec.cfg;
        EXPECT_GT(c.measure, 0.0);
        EXPECT_GE(c.warmup, 0.0);
        EXPECT_GT(c.samplePeriod, 0.0);
        EXPECT_GE(c.cpuInstances, 1);
        for (sim::Time t : c.kills) {
            EXPECT_GT(t, 0.0);
            EXPECT_LT(t, c.warmup + c.measure);
        }
        if (c.slo.enabled) {
            EXPECT_GT(c.slo.minPerfRatio, 0.0);
            EXPECT_LE(c.slo.minPerfRatio, 1.0);
        }
        if (c.churn.enabled)
            EXPECT_GT(c.churn.arrivalRate, 0.0);
    }
}

// ------------------------------------------------------------------
// Oracles

TEST(FuzzOracle, LadderThrashRate)
{
    EXPECT_DOUBLE_EQ(ladderThrashRate(0, 10.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(ladderThrashRate(5, 10.0, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(ladderThrashRate(5, 10.0, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(ladderThrashRate(3, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(ladderThrashRate(3, 10.0, 0.0), 0.0);
}

TEST(FuzzOracle, ResultTextIsStablePerRun)
{
    sim::setContractMode(sim::ContractMode::Count);
    OracleConfig ocfg;
    ocfg.doubleRun = false;
    ocfg.twinRun = false;
    TrialOutcome a = runTrial(quickSpec(), ocfg);
    TrialOutcome b = runTrial(quickSpec(), ocfg);
    EXPECT_EQ(a.resultText, b.resultText);
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_NE(a.resultText.find("mlPerf="), std::string::npos);
}

TEST(FuzzOracle, BenignSpecFiresNothing)
{
    sim::setContractMode(sim::ContractMode::Count);
    OracleConfig ocfg;
    TrialOutcome out = runTrial(quickSpec(), ocfg);
    EXPECT_FALSE(out.fired())
        << out.hits.front().name << ": " << out.hits.front().detail;
    EXPECT_GT(out.decisionEvents, 0u);
    EXPECT_FALSE(out.coverage.empty());
}

TEST(FuzzOracle, KilledRunMatchesTwinWhenFaultFree)
{
    // The restart-divergence oracle leans on the bit-neutral restart
    // guarantee; check it holds through the oracle's own lens.
    sim::setContractMode(sim::ContractMode::Count);
    ScenarioSpec spec = quickSpec();
    spec.cfg.kills = {4.0, 7.0};
    OracleConfig ocfg;
    EXPECT_FALSE(oracleFires(spec, "restart-divergence", ocfg));
}

TEST(FuzzOracle, UnknownOracleNameIsFatal)
{
    OracleConfig ocfg;
    EXPECT_EXIT(oracleFires(quickSpec(), "no-such-oracle", ocfg),
                ::testing::ExitedWithCode(1), "unknown oracle");
}

// ------------------------------------------------------------------
// Shrinker

TEST(FuzzShrink, CandidatesAreStrictlySmallerAndParseable)
{
    ScenarioSpec spec = quickSpec();
    spec.cfg.kills = {3.0, 6.0};
    spec.cfg.churn.enabled = true;
    spec.cfg.faults.dropProb = 0.1;
    spec.cfg.slo.enabled = true;
    spec.cfg.hardened = false;
    std::vector<ScenarioSpec> cands = shrinkCandidates(spec);
    ASSERT_FALSE(cands.empty());
    for (const ScenarioSpec &c : cands) {
        EXPECT_NE(c, spec);
        auto back = ScenarioSpec::tryParse(c.toString());
        EXPECT_TRUE(back.has_value());
    }
}

TEST(FuzzShrink, PredicateShrinkIsOneMinimal)
{
    // Synthetic predicate: "fails" iff the spec schedules at least
    // one kill AND has churn enabled. Everything else is noise the
    // shrinker must strip.
    ScenarioSpec noisy = quickSpec();
    noisy.cfg.kills = {3.0, 5.0, 7.0};
    noisy.cfg.churn.enabled = true;
    noisy.cfg.churn.crashProb = 0.5;
    noisy.cfg.churn.maxLive = 6;
    noisy.cfg.faults.dropProb = 0.1;
    noisy.cfg.faults.knobFailProb = 0.3;
    noisy.cfg.slo.enabled = true;
    noisy.cfg.cpuThreadsOverride = 12;
    noisy.cfg.hardened = false;

    auto fails = [](const ScenarioSpec &s) {
        return !s.cfg.kills.empty() && s.cfg.churn.enabled;
    };
    ASSERT_TRUE(fails(noisy));

    ShrinkResult res = shrinkWith(noisy, fails, 10000);
    EXPECT_TRUE(res.minimal);
    EXPECT_GT(res.steps, 0);
    EXPECT_TRUE(fails(res.spec));

    // The shrunk spec kept only what the predicate needs...
    EXPECT_EQ(res.spec.cfg.kills.size(), 1u);
    EXPECT_TRUE(res.spec.cfg.churn.enabled);
    EXPECT_DOUBLE_EQ(res.spec.cfg.faults.dropProb, 0.0);
    EXPECT_DOUBLE_EQ(res.spec.cfg.faults.knobFailProb, 0.0);
    EXPECT_FALSE(res.spec.cfg.slo.enabled);
    EXPECT_EQ(res.spec.cfg.cpuThreadsOverride, 0);
    EXPECT_TRUE(res.spec.cfg.hardened);

    // ... and is 1-minimal: no single-step reduction still fails.
    for (const ScenarioSpec &c : shrinkCandidates(res.spec))
        EXPECT_FALSE(fails(c)) << c.toString();
}

TEST(FuzzShrink, BudgetExhaustionIsReportedNotMinimal)
{
    ScenarioSpec noisy = quickSpec();
    noisy.cfg.kills = {3.0, 5.0, 7.0};
    noisy.cfg.churn.enabled = true;
    auto alwaysFails = [](const ScenarioSpec &) { return true; };
    ShrinkResult res = shrinkWith(noisy, alwaysFails, 3);
    EXPECT_FALSE(res.minimal);
    EXPECT_EQ(res.attempts, 3);
}

// ------------------------------------------------------------------
// Campaign determinism

TEST(FuzzCampaign, ReportIsByteIdenticalAcrossJobs)
{
    FuzzOptions opts;
    opts.seed = 11;
    opts.trials = 6;
    opts.batch = 3;
    opts.shrink = false; // keep the test cheap; CLI smoke covers it

    opts.jobs = 1;
    FuzzReport serial = fuzz::fuzz(opts);
    opts.jobs = 4;
    FuzzReport parallel = fuzz::fuzz(opts);
    EXPECT_EQ(serial.toText(), parallel.toText());
    EXPECT_EQ(serial.coverageKeys, parallel.coverageKeys);
    EXPECT_GT(serial.coverageKeys, 0u);
}

// ------------------------------------------------------------------
// Corpus format

TEST(FuzzCorpus, EntryTextRoundTrips)
{
    CorpusEntry entry;
    entry.oracle = "contract-violation";
    entry.spec = quickSpec();
    std::string text = corpusEntryText(entry);
    std::string error;
    auto back = parseCorpusEntry(text, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->oracle, entry.oracle);
    EXPECT_EQ(back->spec, entry.spec);
    EXPECT_EQ(corpusEntryText(*back), text);
}

TEST(FuzzCorpus, FixedStatusRoundTrips)
{
    CorpusEntry entry;
    entry.oracle = "watchdog-stuck";
    entry.fixed = true;
    entry.spec = quickSpec();
    std::string text = corpusEntryText(entry);
    EXPECT_NE(text.find("# status: fixed\n"), std::string::npos);
    std::string error;
    auto back = parseCorpusEntry(text, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_TRUE(back->fixed);
    EXPECT_EQ(corpusEntryText(*back), text);

    // Open entries must not grow a status directive.
    entry.fixed = false;
    EXPECT_EQ(corpusEntryText(entry).find("# status:"),
              std::string::npos);
}

TEST(FuzzCorpus, EntryParsingIsStrict)
{
    std::string error;
    EXPECT_FALSE(parseCorpusEntry("ml=cnn1\n", &error));
    EXPECT_NE(error.find("oracle"), std::string::npos);

    EXPECT_FALSE(
        parseCorpusEntry("# oracle: nonsense\nml=cnn1\n", &error));
    EXPECT_NE(error.find("unknown oracle"), std::string::npos);

    EXPECT_FALSE(parseCorpusEntry(
        "# oracle: bad-metric\n# oracle: bad-metric\nml=cnn1\n",
        &error));
    EXPECT_NE(error.find("multiple"), std::string::npos);

    EXPECT_FALSE(
        parseCorpusEntry("# oracle: bad-metric\nml=vax\n", &error));

    EXPECT_FALSE(parseCorpusEntry(
        "# oracle: bad-metric\n# status: wontfix\nml=cnn1\n",
        &error));
    EXPECT_NE(error.find("unknown status"), std::string::npos);

    EXPECT_FALSE(parseCorpusEntry("# oracle: bad-metric\n"
                                  "# status: fixed\n"
                                  "# status: fixed\nml=cnn1\n",
                                  &error));
    EXPECT_NE(error.find("multiple"), std::string::npos);
}

TEST(FuzzCorpus, FileNameIsContentAddressed)
{
    CorpusEntry a{"bad-metric", false, quickSpec()};
    CorpusEntry b = a;
    EXPECT_EQ(corpusFileName(a), corpusFileName(b));
    b.spec.cfg.seed = 777;
    EXPECT_NE(corpusFileName(a), corpusFileName(b));
    EXPECT_NE(corpusFileName(a).find("bad-metric-"),
              std::string::npos);
    EXPECT_NE(corpusFileName(a).find(".scenario"), std::string::npos);
}
