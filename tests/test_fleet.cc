/**
 * @file
 * Tests for the fleet bandwidth-profiling model (Figure 2).
 */

#include <gtest/gtest.h>

#include "fleet/fleet.hh"
#include "sim/log.hh"

using namespace kelp;
using namespace kelp::fleet;

TEST(Fleet, Deterministic)
{
    FleetConfig cfg;
    cfg.servers = 200;
    auto a = profileFleet(cfg);
    auto b = profileFleet(cfg);
    ASSERT_EQ(a.p99PerServer().size(), b.p99PerServer().size());
    for (size_t i = 0; i < a.p99PerServer().size(); ++i)
        EXPECT_DOUBLE_EQ(a.p99PerServer()[i], b.p99PerServer()[i]);
}

TEST(Fleet, SeedChangesResult)
{
    FleetConfig cfg;
    cfg.servers = 200;
    auto a = profileFleet(cfg);
    cfg.seed = 777;
    auto b = profileFleet(cfg);
    EXPECT_NE(a.p99PerServer(), b.p99PerServer());
}

TEST(Fleet, ValuesAreFractionsOfPeak)
{
    FleetConfig cfg;
    cfg.servers = 500;
    auto r = profileFleet(cfg);
    for (double v : r.p99PerServer()) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(Fleet, CdfMonotone)
{
    FleetConfig cfg;
    cfg.servers = 500;
    auto r = profileFleet(cfg);
    auto cdf = r.cdf(21);
    double prev = -1.0;
    for (const auto &[x, y] : cdf) {
        EXPECT_GE(y, prev);
        EXPECT_GE(y, 0.0);
        EXPECT_LE(y, 1.0);
        prev = y;
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Fleet, FractionAboveConsistentWithCdf)
{
    FleetConfig cfg;
    cfg.servers = 500;
    auto r = profileFleet(cfg);
    EXPECT_NEAR(r.fractionAbove(0.5) + (1.0 - r.fractionAbove(0.5)),
                1.0, 1e-12);
    EXPECT_GE(r.fractionAbove(0.2), r.fractionAbove(0.8));
}

TEST(Fleet, SaturatedTailMatchesPaperBallpark)
{
    // Figure 2's headline: ~16% of servers above 70% of peak.
    FleetConfig cfg;
    auto r = profileFleet(cfg);
    double frac = r.fractionAbove(0.70);
    EXPECT_GT(frac, 0.08);
    EXPECT_LT(frac, 0.25);
}

TEST(Fleet, MoreCoresMoreSaturation)
{
    FleetConfig small;
    small.servers = 1000;
    small.cores = 16;
    FleetConfig big = small;
    big.cores = 64;
    EXPECT_GT(profileFleet(big).fractionAbove(0.7),
              profileFleet(small).fractionAbove(0.7));
}

TEST(Fleet, BadConfigPanics)
{
    FleetConfig cfg;
    cfg.servers = 0;
    EXPECT_DEATH(profileFleet(cfg), "configuration");
}

TEST(Fleet, EmptyFleetQueriesPanic)
{
    // An empty fleet has no distribution to ask about. The old code
    // silently answered fractionAbove = 0 and an all-ones CDF, which
    // masked empty-sweep bugs; all three queries are now contract
    // violations.
    FleetResult r({});
    EXPECT_DEATH(
        {
            sim::setContractMode(sim::ContractMode::Fatal);
            r.fractionAbove(0.7);
        },
        "empty");
    EXPECT_DEATH(
        {
            sim::setContractMode(sim::ContractMode::Fatal);
            r.cdf(5);
        },
        "empty");
    EXPECT_DEATH(
        {
            sim::setContractMode(sim::ContractMode::Fatal);
            r.percentile(99.0);
        },
        "empty");
}

TEST(Fleet, PercentileFollowsSharedConvention)
{
    // FleetResult::percentile must agree with sim::percentileSorted:
    // pinned values on a 4-server fleet (p99 target = 3.96 -> the
    // 4th sorted value; p50 target = 2 -> the 2nd).
    FleetResult r({0.4, 0.2, 0.8, 0.6});
    EXPECT_DOUBLE_EQ(r.percentile(50.0), 0.4);
    EXPECT_DOUBLE_EQ(r.percentile(99.0), 0.8);
    EXPECT_DOUBLE_EQ(r.percentile(0.0), 0.2);
    EXPECT_DOUBLE_EQ(r.percentile(100.0), 0.8);
}

TEST(Fleet, ProfiledP99PinnedRegression)
{
    // Regression pin for the percentile bugfix: the per-server p99
    // must be the sample sim::percentileSorted picks from the
    // server's 288 interval samples (the old floor(0.99 * (n - 1))
    // indexing sat one sample lower). Pin the fleet-level p99 of the
    // profile to the shared convention applied to its own values.
    FleetConfig cfg;
    cfg.servers = 100;
    auto r = profileFleet(cfg);
    const auto &v = r.values();
    ASSERT_EQ(v.size(), 100u);
    EXPECT_DOUBLE_EQ(r.percentile(99.0), v[98]);
    EXPECT_DOUBLE_EQ(r.percentile(50.0), v[49]);
}

TEST(Fleet, CdfCustomRange)
{
    // cdf() spans [lo, hi] inclusive; distributions on non-fraction
    // scales (cluster tail latencies in seconds) pass their own
    // range.
    FleetResult r({1.0, 2.0, 3.0, 4.0});
    auto cdf = r.cdf(5, 1.0, 4.0);
    ASSERT_EQ(cdf.size(), 5u);
    EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
    EXPECT_DOUBLE_EQ(cdf.back().first, 4.0);
    EXPECT_DOUBLE_EQ(cdf.front().second, 0.25);
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
    EXPECT_DOUBLE_EQ(cdf[1].first, 1.75);
    EXPECT_DOUBLE_EQ(cdf[1].second, 0.25);
}

TEST(Fleet, CdfBadRangePanics)
{
    FleetResult r({0.5});
    EXPECT_DEATH(r.cdf(5, 1.0, 1.0), "range");
    EXPECT_DEATH(r.cdf(5, 2.0, 1.0), "range");
}

TEST(Fleet, FractionAboveIsStrictAtSampleValues)
{
    // A threshold landing exactly on a sample counts that sample as
    // *not* above (strictly-greater semantics, matching the paper's
    // "above X%" phrasing).
    FleetResult r({0.5, 0.7});
    EXPECT_DOUBLE_EQ(r.fractionAbove(0.4), 1.0);
    EXPECT_DOUBLE_EQ(r.fractionAbove(0.5), 0.5);
    EXPECT_DOUBLE_EQ(r.fractionAbove(0.6), 0.5);
    EXPECT_DOUBLE_EQ(r.fractionAbove(0.7), 0.0);
    EXPECT_DOUBLE_EQ(r.fractionAbove(0.8), 0.0);
}

TEST(Fleet, SameSeedSameTailStatistics)
{
    // Determinism at the derived-statistic level, not just the raw
    // vector: two profiles from one seed agree on every queried
    // threshold and CDF row.
    FleetConfig cfg;
    cfg.servers = 300;
    auto a = profileFleet(cfg);
    auto b = profileFleet(cfg);
    for (double x : {0.1, 0.3, 0.5, 0.7, 0.9})
        EXPECT_DOUBLE_EQ(a.fractionAbove(x), b.fractionAbove(x));
    auto ca = a.cdf(21), cb = b.cdf(21);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t i = 0; i < ca.size(); ++i) {
        EXPECT_DOUBLE_EQ(ca[i].first, cb[i].first);
        EXPECT_DOUBLE_EQ(ca[i].second, cb[i].second);
    }
}
