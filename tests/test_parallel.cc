/**
 * @file
 * Tests for the deterministic worker pool (exp::runJobs) and the
 * sweep helpers built on it: results and side-effect ordering must be
 * bit-identical to the serial reference path for every job count,
 * exceptions must surface exactly as a serial loop would surface
 * them, and the adversarial cases (reverse-staggered job durations)
 * must not reorder commits.
 *
 * Tests are outside the raw-parallelism lint scope on purpose: they
 * stage adversarial schedules with real sleeps and inspect thread
 * identity directly.
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/evaluation.hh"
#include "exp/pool.hh"
#include "exp/sweep_runner.hh"
#include "fleet/fleet.hh"
#include "sim/rng.hh"

namespace {

using namespace kelp;

TEST(Pool, HardwareJobsIsPositive)
{
    EXPECT_GE(exp::hardwareJobs(), 1);
    EXPECT_EQ(exp::resolveJobs(0), exp::hardwareJobs());
    EXPECT_EQ(exp::resolveJobs(-3), exp::hardwareJobs());
    EXPECT_EQ(exp::resolveJobs(1), 1);
    EXPECT_EQ(exp::resolveJobs(7), 7);
}

TEST(Pool, SerialPathRunsInOrderOnCallerThread)
{
    std::vector<int> workOrder;
    std::vector<int> commitOrder;
    const auto caller = std::this_thread::get_id();
    bool offThread = false;
    exp::runJobs(
        5, 1,
        [&](int i) {
            workOrder.push_back(i);
            if (std::this_thread::get_id() != caller)
                offThread = true;
        },
        [&](int i) { commitOrder.push_back(i); });
    EXPECT_EQ(workOrder, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(commitOrder, workOrder);
    EXPECT_FALSE(offThread);
}

TEST(Pool, CommitsInIndexOrderOnCallerThread)
{
    // Adversarial schedule: later jobs finish first (job i sleeps
    // proportionally to n-1-i), so a pool that commits in completion
    // order would run 7,6,...,0.
    const int n = 8;
    std::vector<int> commitOrder;
    const auto caller = std::this_thread::get_id();
    bool commitOffThread = false;
    exp::runJobs(
        n, 4,
        [&](int i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2 * (n - 1 - i)));
        },
        [&](int i) {
            commitOrder.push_back(i);
            if (std::this_thread::get_id() != caller)
                commitOffThread = true;
        });
    std::vector<int> expect;
    for (int i = 0; i < n; ++i)
        expect.push_back(i);
    EXPECT_EQ(commitOrder, expect);
    EXPECT_FALSE(commitOffThread);
}

TEST(Pool, RunsEveryJobExactlyOnceWithMoreWorkersThanJobs)
{
    std::vector<std::atomic<int>> counts(3);
    exp::runJobs(3, 16, [&](int i) { counts[i].fetch_add(1); });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(Pool, FirstExceptionInIndexOrderWins)
{
    // Job 5 fails fast; job 1 fails after a delay. A serial loop
    // would have thrown from job 1 first, so the pool must too, and
    // no commit past index 0 may run.
    std::vector<int> committed;
    try {
        exp::runJobs(
            8, 4,
            [&](int i) {
                if (i == 5)
                    throw std::runtime_error("job 5");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
                if (i == 1)
                    throw std::runtime_error("job 1");
            },
            [&](int i) { committed.push_back(i); });
        FAIL() << "expected runJobs to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 1");
    }
    EXPECT_EQ(committed, (std::vector<int>{0}));
}

TEST(Pool, SerialExceptionMatches)
{
    std::vector<int> committed;
    try {
        exp::runJobs(
            4, 1,
            [&](int i) {
                if (i == 2)
                    throw std::runtime_error("job 2");
            },
            [&](int i) { committed.push_back(i); });
        FAIL() << "expected runJobs to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 2");
    }
    EXPECT_EQ(committed, (std::vector<int>{0, 1}));
}

TEST(Pool, ZeroJobsIsANoOp)
{
    bool ran = false;
    exp::runJobs(0, 8, [&](int) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(RngDerive, PureFunctionOfBaseAndIndex)
{
    sim::Rng a = sim::Rng::derive(2019, 7);
    sim::Rng b = sim::Rng::derive(2019, 7);
    EXPECT_EQ(a.next(), b.next());

    // Nearby indices and bases must decorrelate.
    EXPECT_NE(sim::Rng::derive(2019, 7).next(),
              sim::Rng::derive(2019, 8).next());
    EXPECT_NE(sim::Rng::derive(2019, 7).next(),
              sim::Rng::derive(2020, 7).next());
}

TEST(ParallelMap, MatchesSerialForEveryJobCount)
{
    // Deterministic per-index computation with enough mixing that an
    // index/result swap cannot cancel out.
    auto fn = [](int i) {
        sim::Rng rng = sim::Rng::derive(99, static_cast<uint64_t>(i));
        double acc = 0.0;
        for (int k = 0; k < 100; ++k)
            acc += rng.uniform();
        return acc;
    };
    const auto serial = exp::parallelMap<double>(64, 1, fn);
    for (int jobs : {4, 16}) {
        const auto par = exp::parallelMap<double>(64, jobs, fn);
        ASSERT_EQ(par.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(par[i], serial[i]) << "index " << i << " jobs "
                                         << jobs;
    }
}

void
expectSameResults(const std::vector<exp::RunResult> &a,
                  const std::vector<exp::RunResult> &b,
                  const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].mlPerf, b[i].mlPerf) << what << " run " << i;
        EXPECT_EQ(a[i].mlTailP95, b[i].mlTailP95)
            << what << " run " << i;
        EXPECT_EQ(a[i].cpuThroughput, b[i].cpuThroughput)
            << what << " run " << i;
        EXPECT_EQ(a[i].avgSaturation, b[i].avgSaturation)
            << what << " run " << i;
        EXPECT_EQ(a[i].avgLoCores, b[i].avgLoCores)
            << what << " run " << i;
    }
}

TEST(SweepRunner, ScenarioSweepIsBitIdenticalAcrossJobCounts)
{
    // A small but heterogeneous sweep: two configs that exercise the
    // controller and one baseline, at short durations.
    std::vector<exp::RunConfig> cfgs;
    for (auto kind : {exp::ConfigKind::BL, exp::ConfigKind::KPSD,
                      exp::ConfigKind::KP}) {
        exp::RunConfig cfg;
        cfg.ml = wl::MlWorkload::Cnn1;
        cfg.cpu = wl::CpuWorkload::Stitch;
        cfg.cpuInstances = 2;
        cfg.config = kind;
        cfg.warmup = 2.0;
        cfg.measure = 2.0;
        cfgs.push_back(cfg);
    }

    const auto serial = exp::runScenarios(cfgs, 1);
    expectSameResults(exp::runScenarios(cfgs, 4), serial, "jobs=4");
    expectSameResults(exp::runScenarios(cfgs, 16), serial, "jobs=16");
}

TEST(SweepRunner, FleetProfileIsBitIdenticalAcrossJobCounts)
{
    fleet::FleetConfig cfg;
    cfg.servers = 600;
    cfg.samplesPerDay = 48;

    cfg.jobs = 1;
    const auto serial = fleet::profileFleet(cfg).p99PerServer();
    for (int jobs : {3, 8}) {
        cfg.jobs = jobs;
        const auto par = fleet::profileFleet(cfg).p99PerServer();
        ASSERT_EQ(par.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(par[i], serial[i]) << "server " << i << " jobs "
                                         << jobs;
    }
}

} // namespace
