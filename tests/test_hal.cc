/**
 * @file
 * Tests for the HAL: task groups, resource knobs, and performance
 * counters.
 */

#include <gtest/gtest.h>

#include "hal/counters.hh"
#include "hal/knobs.hh"
#include "hal/task_group.hh"
#include "mem/mem_system.hh"

using namespace kelp;
using namespace kelp::hal;

namespace {

cpu::TopologyConfig
topoConfig()
{
    cpu::TopologyConfig cfg;
    cfg.sockets = 2;
    cfg.coresPerSocket = 16;  // 8 per subdomain
    return cfg;
}

} // namespace

TEST(TaskGroup, CreateAndLookup)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    TaskGroup &ml = reg.create("ml", Priority::High);
    TaskGroup &batch = reg.create("batch", Priority::Low);
    EXPECT_EQ(reg.size(), 2);
    EXPECT_EQ(reg.find("ml"), &ml);
    EXPECT_EQ(reg.find("batch"), &batch);
    EXPECT_EQ(reg.find("nope"), nullptr);
    EXPECT_EQ(&reg.get(ml.id()), &ml);
    EXPECT_EQ(ml.priority(), Priority::High);
}

TEST(TaskGroup, DuplicateNameFatal)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    reg.create("ml", Priority::High);
    EXPECT_EXIT(reg.create("ml", Priority::Low),
                ::testing::ExitedWithCode(1), "duplicate");
}

TEST(TaskGroup, StartsFloating)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    TaskGroup &g = reg.create("g", Priority::Low);
    EXPECT_TRUE(g.floating());
    EXPECT_EQ(g.cores().total(), 0);
}

TEST(Knobs, SetCoresPinsGroup)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    ResourceKnobs knobs(reg);
    TaskGroup &g = reg.create("g", Priority::Low);
    knobs.setCores(g.id(), 0, 1, 4);
    EXPECT_FALSE(g.floating());
    EXPECT_EQ(g.cores().inSubdomain(0, 1), 4);
    EXPECT_EQ(g.cores().inSocket(0), 4);
    EXPECT_EQ(g.cores().total(), 4);
}

TEST(Knobs, CapacityAccounting)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    ResourceKnobs knobs(reg);
    TaskGroup &a = reg.create("a", Priority::High);
    TaskGroup &b = reg.create("b", Priority::Low);
    knobs.setCores(a.id(), 0, 0, 5);
    knobs.setCores(b.id(), 0, 0, 3);
    EXPECT_EQ(reg.allocatedIn(0, 0), 8);
    EXPECT_EQ(reg.freeIn(0, 0), 0);
    EXPECT_EQ(reg.freeIn(0, 1), 8);
}

TEST(Knobs, OversubscriptionFatal)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    ResourceKnobs knobs(reg);
    TaskGroup &a = reg.create("a", Priority::High);
    TaskGroup &b = reg.create("b", Priority::Low);
    knobs.setCores(a.id(), 0, 0, 6);
    EXPECT_EXIT(knobs.setCores(b.id(), 0, 0, 3),
                ::testing::ExitedWithCode(1), "available");
}

TEST(Knobs, ResizeWithinOwnAllocation)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    ResourceKnobs knobs(reg);
    TaskGroup &a = reg.create("a", Priority::High);
    knobs.setCores(a.id(), 0, 0, 8);
    knobs.setCores(a.id(), 0, 0, 8);  // same count again is fine
    knobs.setCores(a.id(), 0, 0, 2);
    EXPECT_EQ(reg.freeIn(0, 0), 6);
}

TEST(Knobs, AdjustCoresClamps)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    ResourceKnobs knobs(reg);
    TaskGroup &a = reg.create("a", Priority::Low);
    knobs.setCores(a.id(), 0, 1, 7);
    EXPECT_EQ(knobs.adjustCores(a.id(), 0, 1, +5), 8);
    EXPECT_EQ(knobs.adjustCores(a.id(), 0, 1, -20), 0);
}

TEST(Knobs, PrefetchersClampToCores)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    ResourceKnobs knobs(reg);
    TaskGroup &a = reg.create("a", Priority::Low);
    knobs.setCores(a.id(), 0, 1, 4);
    knobs.setPrefetchersEnabled(a.id(), 100);
    EXPECT_EQ(a.prefetchersEnabled(), 4);
    EXPECT_DOUBLE_EQ(a.prefetcherFraction(), 1.0);
    knobs.setPrefetchersEnabled(a.id(), 2);
    EXPECT_DOUBLE_EQ(a.prefetcherFraction(), 0.5);
    // Shrinking the mask re-clamps prefetchers.
    knobs.setPrefetchersEnabled(a.id(), 4);
    knobs.setCores(a.id(), 0, 1, 2);
    EXPECT_EQ(a.prefetchersEnabled(), 2);
}

TEST(Knobs, MemBinding)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    ResourceKnobs knobs(reg);
    TaskGroup &a = reg.create("a", Priority::Low);
    knobs.setMemBinding(a.id(), 1, 1);
    EXPECT_EQ(a.memBinding().socket, 1);
    EXPECT_EQ(a.memBinding().subdomain, 1);
}

TEST(Knobs, CatWays)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    ResourceKnobs knobs(reg);
    TaskGroup &a = reg.create("a", Priority::High);
    knobs.setCatWays(a.id(), 4);
    EXPECT_EQ(a.catWays(), 4);
}

TEST(Knobs, UnknownGroupPanics)
{
    cpu::Topology topo(topoConfig());
    GroupRegistry reg(topo);
    ResourceKnobs knobs(reg);
    EXPECT_DEATH(knobs.setCatWays(7, 2), "out of range");
}

TEST(PerfCounters, WindowedRead)
{
    mem::MemSystemConfig cfg;
    cfg.socket.peakBw = 100.0;
    mem::MemSystem mem(cfg);
    PerfCounters pc(mem);

    for (int i = 0; i < 10; ++i) {
        mem.beginTick();
        mem.addFlow(1, {0, 0, 0, 0}, 30.0);
        mem.resolve(100 * sim::usec);
    }
    CounterSample s = pc.sample(0);
    EXPECT_NEAR(s.socketBw, 30.0, 1e-9);
    EXPECT_GT(s.memLatency, 0.0);

    // A second immediate read covers an empty window: fallbacks.
    CounterSample s2 = pc.sample(0);
    EXPECT_DOUBLE_EQ(s2.socketBw, 0.0);
}

TEST(PerfCounters, ReadersAreIndependent)
{
    mem::MemSystemConfig cfg;
    cfg.socket.peakBw = 100.0;
    mem::MemSystem mem(cfg);
    PerfCounters a(mem), b(mem);

    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 20.0);
    mem.resolve(100 * sim::usec);
    EXPECT_NEAR(a.sample(0).socketBw, 20.0, 1e-9);

    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 40.0);
    mem.resolve(100 * sim::usec);
    EXPECT_NEAR(a.sample(0).socketBw, 40.0, 1e-9);
    EXPECT_NEAR(b.sample(0).socketBw, 30.0, 1e-9);
}

TEST(PerfCounters, SaturationWindow)
{
    mem::MemSystemConfig cfg;
    cfg.socket.peakBw = 100.0;
    cfg.socket.distressThreshold = 0.8;
    mem::MemSystem mem(cfg);
    mem.setSncEnabled(true);
    PerfCounters pc(mem);
    mem.beginTick();
    mem.addFlow(1, {0, 1, 0, 1}, 100.0);  // saturate subdomain 1
    mem.resolve(100 * sim::usec);
    mem.beginTick();
    mem.resolve(100 * sim::usec);
    EXPECT_NEAR(pc.sample(0).saturation, 0.5, 1e-9);
}
