/**
 * @file
 * Tests for the time-stepped simulation engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hh"

using namespace kelp::sim;

TEST(Engine, AdvancesTime)
{
    Engine e(100 * usec);
    e.run(0.01);
    EXPECT_NEAR(e.now(), 0.01, 1e-9);
    EXPECT_EQ(e.tickCount(), 100u);
}

TEST(Engine, TickFnReceivesTimes)
{
    Engine e(1 * msec);
    std::vector<Time> times;
    e.onTick([&](Time now, Time dt) {
        times.push_back(now);
        EXPECT_DOUBLE_EQ(dt, 1 * msec);
    });
    e.run(0.005);
    ASSERT_EQ(times.size(), 5u);
    EXPECT_DOUBLE_EQ(times[0], 0.0);
    EXPECT_NEAR(times[4], 0.004, 1e-12);
}

TEST(Engine, TickFnsRunInRegistrationOrder)
{
    Engine e(1 * msec);
    std::vector<int> order;
    e.onTick([&](Time, Time) { order.push_back(1); });
    e.onTick([&](Time, Time) { order.push_back(2); });
    e.run(1 * msec);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(Engine, PeriodicFiresAtPeriod)
{
    Engine e(1 * msec);
    std::vector<Time> fires;
    e.every(0.01, [&](Time t) { fires.push_back(t); });
    e.run(0.035);
    // Default phase = one period: 10, 20, 30 ms.
    ASSERT_EQ(fires.size(), 3u);
    EXPECT_NEAR(fires[0], 0.010, 1e-9);
    EXPECT_NEAR(fires[2], 0.030, 1e-9);
}

TEST(Engine, PeriodicCustomPhase)
{
    Engine e(1 * msec);
    std::vector<Time> fires;
    e.every(0.01, [&](Time t) { fires.push_back(t); }, 0.002);
    e.run(0.025);
    ASSERT_EQ(fires.size(), 3u);
    EXPECT_NEAR(fires[0], 0.002, 1e-9);
    EXPECT_NEAR(fires[1], 0.012, 1e-9);
}

TEST(Engine, MultiplePeriodics)
{
    Engine e(1 * msec);
    int fast = 0, slow = 0;
    e.every(0.005, [&](Time) { ++fast; });
    e.every(0.010, [&](Time) { ++slow; });
    e.run(0.030);
    EXPECT_EQ(fast, 6);
    EXPECT_EQ(slow, 3);
}

TEST(Engine, RunUntilIsAbsolute)
{
    Engine e(1 * msec);
    e.runUntil(0.010);
    e.runUntil(0.010);  // no-op
    EXPECT_EQ(e.tickCount(), 10u);
    e.runUntil(0.020);
    EXPECT_EQ(e.tickCount(), 20u);
}

TEST(Engine, NoDriftOverManyTicks)
{
    Engine e(100 * usec);
    e.run(10.0);
    EXPECT_EQ(e.tickCount(), 100000u);
    EXPECT_NEAR(e.now(), 10.0, 1e-6);
}

TEST(Engine, BadTickLengthPanics)
{
    EXPECT_DEATH(Engine(0.0), "positive");
}

TEST(Engine, PeriodShorterThanTickPanics)
{
    Engine e(1 * msec);
    EXPECT_DEATH(e.every(0.1 * msec, [](Time) {}), "shorter");
}

TEST(Engine, PeriodicSeesUpdatedModelState)
{
    Engine e(1 * msec);
    int ticks_at_fire = -1;
    int ticks = 0;
    e.onTick([&](Time, Time) { ++ticks; });
    e.every(0.005, [&](Time) { ticks_at_fire = ticks; });
    e.run(0.005);
    // The periodic fires after the 5th tick completed.
    EXPECT_EQ(ticks_at_fire, 5);
}
