/**
 * @file
 * Event-driven tick engine: bit-identity and machinery tests.
 *
 * The engine's contract is absolute: with the fast path on, every
 * scenario -- steady colocation, churn, faults with controller
 * kills, the SLO ladder, open-loop traffic -- must produce a
 * RunResult bitwise equal to the full-tick reference, while actually
 * skipping ticks where it claims quiescence. These tests pin both
 * halves: equality on every field the simulation reports, and
 * engagement (skip ratio, cache hits) so the fast path cannot
 * silently rot into "always falls back".
 */

#include <gtest/gtest.h>

#include "exp/scenario.hh"
#include "mem/controller.hh"
#include "mem/mem_system.hh"
#include "sim/engine.hh"
#include "workload/batch_task.hh"

using namespace kelp;

namespace {

/** Shortened timing so the whole suite stays fast. */
exp::RunConfig
baseConfig()
{
    exp::RunConfig cfg;
    cfg.warmup = 4.0;
    cfg.measure = 8.0;
    return cfg;
}

/** EXPECT bitwise equality of every simulation-result field (the
 * tick-engine counters are excluded by design: the two paths *do*
 * differ in how many full-path calls they make). */
void
expectSameResult(const exp::RunResult &a, const exp::RunResult &b)
{
    EXPECT_EQ(a.mlPerf, b.mlPerf);
    EXPECT_EQ(a.mlTailP95, b.mlTailP95);
    EXPECT_EQ(a.cpuThroughput, b.cpuThroughput);
    EXPECT_EQ(a.avgLoCores, b.avgLoCores);
    EXPECT_EQ(a.avgLoPrefetchers, b.avgLoPrefetchers);
    EXPECT_EQ(a.avgHiBackfill, b.avgHiBackfill);
    EXPECT_EQ(a.timeInFailSafe, b.timeInFailSafe);
    EXPECT_EQ(a.failSafeEntries, b.failSafeEntries);
    EXPECT_EQ(a.avgSaturation, b.avgSaturation);
    EXPECT_EQ(a.avgSocketBw, b.avgSocketBw);
    EXPECT_EQ(a.churnArrivals, b.churnArrivals);
    EXPECT_EQ(a.churnFinishes, b.churnFinishes);
    EXPECT_EQ(a.churnCrashes, b.churnCrashes);
    EXPECT_EQ(a.churnRejected, b.churnRejected);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.sloViolations, b.sloViolations);
    EXPECT_EQ(a.sloTransitions, b.sloTransitions);
    EXPECT_EQ(a.sloFinalRung, b.sloFinalRung);
    EXPECT_EQ(a.reqArrivals, b.reqArrivals);
    EXPECT_EQ(a.reqAdmitted, b.reqAdmitted);
    EXPECT_EQ(a.reqRejected, b.reqRejected);
    EXPECT_EQ(a.reqShed, b.reqShed);
    EXPECT_EQ(a.reqExpired, b.reqExpired);
    EXPECT_EQ(a.reqCompleted, b.reqCompleted);
    EXPECT_EQ(a.reqInFlight, b.reqInFlight);
    EXPECT_EQ(a.brownoutTransitions, b.brownoutTransitions);
    EXPECT_EQ(a.brownoutFinal, b.brownoutFinal);
    EXPECT_EQ(a.reqP99, b.reqP99);
    EXPECT_EQ(a.reqP999, b.reqP999);
    EXPECT_EQ(a.reqP9999, b.reqP9999);
}

/** Run cfg with the fast path on and off; both results returned. */
std::pair<exp::RunResult, exp::RunResult>
runBoth(exp::RunConfig cfg)
{
    cfg.eventDriven = true;
    exp::RunResult fast = exp::runScenario(cfg);
    cfg.eventDriven = false;
    exp::RunResult full = exp::runScenario(cfg);
    return {fast, full};
}

// ---------------------------------------------------------------------
// Engine-level fast-forward machinery.

TEST(EngineFastForward, ConsumesTicksAndCountsThem)
{
    sim::Engine e(0.001);
    uint64_t full_ticks = 0;
    e.onTick([&](sim::Time, sim::Time) { ++full_ticks; });
    uint64_t offered = 0;
    e.setFastForward([&](sim::Time, sim::Time, uint64_t max_ticks) {
        offered += max_ticks;
        return max_ticks;  // consume everything offered
    });
    e.run(1.0);
    EXPECT_EQ(e.tickCount(), 1000u);
    EXPECT_EQ(e.tickCount(), e.fastTickCount() + e.fullTickCount());
    EXPECT_GT(e.fastTickCount(), 900u);
    EXPECT_EQ(full_ticks, e.fullTickCount());
}

TEST(EngineFastForward, RefusingHookFallsBackToFullTicks)
{
    sim::Engine e(0.001);
    uint64_t full_ticks = 0;
    e.onTick([&](sim::Time, sim::Time) { ++full_ticks; });
    e.setFastForward(
        [](sim::Time, sim::Time, uint64_t) -> uint64_t { return 0; });
    e.run(0.5);
    EXPECT_EQ(e.tickCount(), 500u);
    EXPECT_EQ(e.fastTickCount(), 0u);
    EXPECT_EQ(full_ticks, 500u);
}

TEST(EngineFastForward, StopsShortOfPeriodicDeadlines)
{
    // A periodic every 100 ticks: fast-forward chunks must never
    // cross it, and every firing must still happen.
    sim::Engine e(0.001);
    e.onTick([](sim::Time, sim::Time) {});
    int fires = 0;
    e.every(0.1, [&](sim::Time) { ++fires; });
    e.setFastForward([](sim::Time, sim::Time, uint64_t max_ticks) {
        return max_ticks;
    });
    e.run(1.0);
    EXPECT_EQ(fires, 10);
    EXPECT_EQ(e.periodicFireCount(), 10u);
    EXPECT_EQ(e.tickCount(), 1000u);
    EXPECT_GT(e.fastTickCount(), 0u);
}

TEST(EngineFastForward, TimeAdvanceMatchesSteppedEngine)
{
    // now() must be bitwise equal however ticks were consumed.
    sim::Engine fast(0.001);
    fast.onTick([](sim::Time, sim::Time) {});
    fast.setFastForward([](sim::Time, sim::Time, uint64_t max_ticks) {
        return max_ticks;
    });
    fast.run(0.777);

    sim::Engine full(0.001);
    full.onTick([](sim::Time, sim::Time) {});
    full.run(0.777);

    EXPECT_EQ(fast.now(), full.now());
    EXPECT_EQ(fast.tickCount(), full.tickCount());
}

// ---------------------------------------------------------------------
// Controller incremental demand cache.

TEST(ControllerCache, RepeatedDemandsHitAndMatch)
{
    const sim::Time dt = 100 * sim::usec;
    mem::Controller inc(0, 0, 100.0, mem::LatencyCurve());
    mem::Controller ref(0, 0, 100.0, mem::LatencyCurve());

    for (int t = 0; t < 50; ++t) {
        // Demands repeat except for a mutation at tick 25.
        double d0 = t >= 25 ? 30.0 : 40.0;
        inc.beginTick();
        inc.addDemand(1, d0, true, 0.0);
        inc.addDemand(2, 60.0, false, 10.0);
        inc.resolve(dt);

        ref.beginTick();
        ref.addDemand(1, d0, true, 0.0);
        ref.addDemand(2, 60.0, false, 10.0);
        ref.resolve(dt);

        for (int r = 1; r <= 2; ++r) {
            mem::Grant a = inc.grant(r);
            mem::Grant b = ref.grant(r);
            EXPECT_EQ(a.delivered, b.delivered);
            EXPECT_EQ(a.fraction, b.fraction);
            EXPECT_EQ(a.latency, b.latency);
        }
    }
    // Both controllers are caching (same class); the point here is
    // the hit pattern: two misses (first tick, tick-25 mutation),
    // everything else hits.
    EXPECT_EQ(inc.cacheMisses(), 2u);
    EXPECT_EQ(inc.cacheHits(), 48u);
}

TEST(ControllerCache, ReorderedDemandsMiss)
{
    const sim::Time dt = 100 * sim::usec;
    mem::Controller mc(0, 0, 100.0, mem::LatencyCurve());
    mc.beginTick();
    mc.addDemand(1, 40.0, false, 0.0);
    mc.addDemand(2, 60.0, false, 0.0);
    mc.resolve(dt);
    mc.beginTick();
    mc.addDemand(2, 60.0, false, 0.0);
    mc.addDemand(1, 40.0, false, 0.0);
    mc.resolve(dt);
    EXPECT_EQ(mc.cacheHits(), 0u);
    EXPECT_EQ(mc.cacheMisses(), 2u);
}

// ---------------------------------------------------------------------
// Scenario-level bit-identity: fast vs. full across every subsystem.

TEST(EventDrivenIdentity, SteadyColocation)
{
    exp::RunConfig cfg = baseConfig();
    cfg.ml = wl::MlWorkload::Cnn1;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 3;
    cfg.config = exp::ConfigKind::KP;
    auto [fast, full] = runBoth(cfg);
    expectSameResult(fast, full);
    // The fast run must actually skip ticks, and the full run none.
    EXPECT_GT(fast.engineFastTicks, 0u);
    EXPECT_EQ(full.engineFastTicks, 0u);
    EXPECT_EQ(fast.engineTicks, full.engineTicks);
}

TEST(EventDrivenIdentity, AllConfigsAllWorkloads)
{
    for (auto ml : wl::allMlWorkloads()) {
        for (auto kind :
             {exp::ConfigKind::BL, exp::ConfigKind::CT,
              exp::ConfigKind::KPSD, exp::ConfigKind::KP}) {
            exp::RunConfig cfg = baseConfig();
            cfg.ml = ml;
            cfg.cpu = wl::CpuWorkload::Stream;
            cfg.cpuInstances = 2;
            cfg.config = kind;
            auto [fast, full] = runBoth(cfg);
            SCOPED_TRACE(std::string(wl::mlName(ml)) + " under " +
                         exp::configName(kind));
            expectSameResult(fast, full);
        }
    }
}

TEST(EventDrivenIdentity, Churn)
{
    exp::RunConfig cfg = baseConfig();
    cfg.ml = wl::MlWorkload::Cnn2;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 2;
    cfg.config = exp::ConfigKind::KP;
    cfg.churn.enabled = true;
    cfg.churn.arrivalRate = 0.5;  // busy churn in a short run
    cfg.measure = 12.0;
    auto [fast, full] = runBoth(cfg);
    expectSameResult(fast, full);
    EXPECT_GT(fast.churnArrivals, 0u);
}

TEST(EventDrivenIdentity, FaultsAndControllerKills)
{
    exp::RunConfig cfg = baseConfig();
    cfg.ml = wl::MlWorkload::Cnn1;
    cfg.cpu = wl::CpuWorkload::DramAggressor;
    cfg.cpuInstances = 2;
    cfg.config = exp::ConfigKind::KP;
    cfg.faults = hal::FaultPlan::parse("drop=0.1,knobfail=0.2");
    cfg.killAt = 6.0;
    cfg.kills = {9.0};
    cfg.measure = 12.0;
    auto [fast, full] = runBoth(cfg);
    expectSameResult(fast, full);
    EXPECT_EQ(fast.restarts, 2u);
}

TEST(EventDrivenIdentity, SloLadder)
{
    exp::RunConfig cfg = baseConfig();
    cfg.ml = wl::MlWorkload::Cnn1;
    cfg.cpu = wl::CpuWorkload::DramAggressor;
    cfg.cpuInstances = 2;
    cfg.config = exp::ConfigKind::KP;
    cfg.slo.enabled = true;
    cfg.measure = 12.0;
    auto [fast, full] = runBoth(cfg);
    expectSameResult(fast, full);
}

TEST(EventDrivenIdentity, OpenLoopTraffic)
{
    exp::RunConfig cfg = baseConfig();
    cfg.ml = wl::MlWorkload::Rnn1;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 2;
    cfg.config = exp::ConfigKind::KP;
    std::string err;
    auto traffic =
        serve::TrafficSpec::tryParse("shape=burst,qps=200,factor=4",
                                     &err);
    ASSERT_TRUE(traffic) << err;
    cfg.serving.enabled = true;
    cfg.serving.traffic = *traffic;
    auto [fast, full] = runBoth(cfg);
    expectSameResult(fast, full);
    EXPECT_GT(fast.reqArrivals, 0u);
}

TEST(EventDrivenIdentity, QuietOpenLoopSkipsMostTicks)
{
    // The headline case: a lightly-loaded open-loop inference
    // server is idle between requests, and the engine must prove it
    // and skip. This pins the *engagement* so the fast path cannot
    // silently decay into always-full-tick.
    exp::RunConfig cfg = baseConfig();
    cfg.ml = wl::MlWorkload::Rnn1;
    cfg.config = exp::ConfigKind::BL;
    cfg.openLoopQps = 5.0;
    cfg.measure = 12.0;
    auto [fast, full] = runBoth(cfg);
    expectSameResult(fast, full);
    EXPECT_GT(fast.skipRatio(), 0.5);
    EXPECT_EQ(full.skipRatio(), 0.0);
}

TEST(EventDrivenIdentity, SerialInferenceTrace)
{
    exp::RunConfig cfg = baseConfig();
    cfg.ml = wl::MlWorkload::Rnn1;
    cfg.cpu = wl::CpuWorkload::Stream;
    cfg.cpuInstances = 2;
    cfg.config = exp::ConfigKind::KPSD;
    cfg.serialInference = true;
    auto [fast, full] = runBoth(cfg);
    expectSameResult(fast, full);
}

// ---------------------------------------------------------------------
// Node-level machinery.

wl::HostPhaseParams
streamish()
{
    wl::HostPhaseParams p;
    p.cpuFrac = 0.1;
    p.bwPerCore = 5.0;
    p.latencySensitivity = 0.2;
    p.llcFootprintMb = 256.0;
    p.llcHitMax = 0.05;
    return p;
}

TEST(NodeFastForward, DirtyMarkingBlocksAndRecovers)
{
    // A node of pure batch tasks quiesces; a knob write mid-run must
    // break the streak and the streak must rebuild afterwards.
    node::Node n(node::platformFor(accel::Kind::TpuV1));
    auto g = n.groups().create("batch", hal::Priority::Low).id();
    n.add(std::make_unique<wl::BatchTask>("b", g, 4, streamish()));

    // Settling takes ~55 ticks: the demand-basis relaxation halves
    // its error per tick and quiescence requires the *bitwise*
    // fixpoint, not an approximate one.
    const sim::Time dt = 100 * sim::usec;
    const int settle = 80;
    for (int i = 0; i < settle; ++i)
        n.tick(i * dt, dt);
    EXPECT_GT(n.fastForward(settle * dt, dt, 4), 0u);

    // A knob mutation through the registry marks the node dirty.
    n.knobs().setCores(g, 0, 0, 2);
    EXPECT_EQ(n.fastForward(settle * dt, dt, 4), 0u);

    // Quiescence rebuilds after full ticks re-settle the pipeline.
    for (int i = 0; i < settle; ++i)
        n.tick((settle + i) * dt, dt);
    EXPECT_GT(n.fastForward(2 * settle * dt, dt, 4), 0u);
}

TEST(NodeFastForward, DisabledSwitchRefuses)
{
    node::Node n(node::platformFor(accel::Kind::TpuV1));
    auto g = n.groups().create("batch", hal::Priority::Low).id();
    n.add(std::make_unique<wl::BatchTask>("b", g, 4, streamish()));
    n.setEventDrivenEnabled(false);

    const sim::Time dt = 100 * sim::usec;
    for (int i = 0; i < 80; ++i)
        n.tick(i * dt, dt);
    EXPECT_EQ(n.fastForward(80 * dt, dt, 4), 0u);
}

} // namespace
