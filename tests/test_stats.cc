/**
 * @file
 * Tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/log.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace kelp::sim;

TEST(OnlineStats, Empty)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, EmptyMinMaxAreIdentities)
{
    // Regression: min_/max_ had no initializers, so these reads
    // returned uninitialized memory on an empty instance instead of
    // the documented +inf/-inf identities.
    OnlineStats s;
    EXPECT_EQ(s.min(), std::numeric_limits<double>::infinity());
    EXPECT_EQ(s.max(), -std::numeric_limits<double>::infinity());
}

TEST(OnlineStats, ResetRestoresMinMaxIdentities)
{
    OnlineStats s;
    s.add(3.0);
    s.add(-7.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.min(), std::numeric_limits<double>::infinity());
    EXPECT_EQ(s.max(), -std::numeric_limits<double>::infinity());
    // And the identities fold correctly into the next window.
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(OnlineStats, SingleValue)
{
    OnlineStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, Reset)
{
    OnlineStats s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(OnlineStats, NegativeValues)
{
    OnlineStats s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Ewma, FirstSamplePrimes)
{
    Ewma e(0.25);
    EXPECT_FALSE(e.primed());
    e.add(10.0);
    EXPECT_TRUE(e.primed());
    EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesToConstant)
{
    Ewma e(0.25);
    for (int i = 0; i < 100; ++i)
        e.add(7.0);
    EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, SmoothingWeight)
{
    Ewma e(0.5);
    e.add(0.0);
    e.add(10.0);
    EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ewma, Reset)
{
    Ewma e(0.5);
    e.add(10.0);
    e.reset(0.0);
    EXPECT_FALSE(e.primed());
    e.add(4.0);
    EXPECT_DOUBLE_EQ(e.value(), 4.0);
}

TEST(Ewma, BadAlphaPanics)
{
    EXPECT_DEATH(Ewma(0.0), "alpha");
    EXPECT_DEATH(Ewma(1.5), "alpha");
}

TEST(LatencyHistogram, EmptyPercentileIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.percentile(95.0), 0.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SingleValue)
{
    LatencyHistogram h;
    h.add(0.005);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_NEAR(h.percentile(50.0), 0.005, 0.005 * 0.05);
    EXPECT_DOUBLE_EQ(h.mean(), 0.005);
}

TEST(LatencyHistogram, MeanExact)
{
    LatencyHistogram h;
    h.add(0.001);
    h.add(0.003);
    EXPECT_DOUBLE_EQ(h.mean(), 0.002);
}

TEST(LatencyHistogram, Reset)
{
    LatencyHistogram h;
    h.add(0.001);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(95.0), 0.0);
}

TEST(LatencyHistogram, ClampsOutOfRange)
{
    LatencyHistogram h(1e-6, 1.0);
    h.add(1e-12);
    h.add(100.0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_LE(h.percentile(100.0), 1.2);
}

TEST(LatencyHistogram, NanSamplePanicsInFatalMode)
{
    // Regression: NaN satisfied `!(x > minValue_)` and landed in
    // bucket 0 while poisoning sum_, so mean() and percentiles went
    // NaN. It is now a contract violation.
    LatencyHistogram h;
    EXPECT_DEATH(
        {
            setContractMode(ContractMode::Fatal);
            h.add(std::nan(""));
        },
        "NaN");
}

TEST(LatencyHistogram, NanSampleDroppedInCountMode)
{
    ContractMode saved = contractMode();
    LogLevel savedLevel = logLevel();
    setContractMode(ContractMode::Count);
    setLogLevel(LogLevel::Quiet);
    resetContractViolations();

    LatencyHistogram h;
    h.add(0.002);
    h.add(std::nan(""));
    EXPECT_EQ(contractViolations(), 1u);
    // The poisoned sample is dropped: count, mean, and percentiles
    // are those of the valid samples alone.
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.002);
    EXPECT_FALSE(std::isnan(h.percentile(50.0)));

    setContractMode(saved);
    setLogLevel(savedLevel);
    resetContractViolations();
}

TEST(LatencyHistogram, BadParamsPanic)
{
    EXPECT_DEATH(LatencyHistogram(0.0, 1.0), "parameters");
    EXPECT_DEATH(LatencyHistogram(1.0, 0.5), "parameters");
    EXPECT_DEATH(LatencyHistogram(1e-6, 1.0, 1.0), "parameters");
}

/** Percentile accuracy against a sorted reference, across
 * distributions. */
class HistogramAccuracy
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(HistogramAccuracy, MatchesSortedReference)
{
    auto [dist, pct] = GetParam();
    Rng rng(1234 + dist);
    LatencyHistogram h(1e-6, 10.0);
    std::vector<double> ref;
    for (int i = 0; i < 20000; ++i) {
        double x = 0.0;
        switch (dist) {
          case 0:
            x = rng.exponential(0.004);
            break;
          case 1:
            x = rng.uniform(0.001, 0.050);
            break;
          case 2:
            x = rng.logNormal(-6.0, 0.8);
            break;
        }
        h.add(x);
        ref.push_back(x);
    }
    std::sort(ref.begin(), ref.end());
    double exact = ref[static_cast<size_t>(pct / 100.0 *
                                           (ref.size() - 1))];
    // Log-bucketed histogram: a few percent of relative error.
    EXPECT_NEAR(h.percentile(pct), exact, exact * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsAndPercentiles, HistogramAccuracy,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(50.0, 90.0, 95.0, 99.0)));

TEST(IntervalAccumulator, AverageLevel)
{
    IntervalAccumulator acc;
    acc.accumulate(10.0, 2.0);
    acc.accumulate(20.0, 2.0);
    IntervalAccumulator::Snapshot s;
    EXPECT_DOUBLE_EQ(acc.readSince(s, 0.0), 15.0);
}

TEST(IntervalAccumulator, DeltaReads)
{
    IntervalAccumulator acc;
    IntervalAccumulator::Snapshot s;
    acc.accumulate(10.0, 1.0);
    EXPECT_DOUBLE_EQ(acc.readSince(s, 0.0), 10.0);
    acc.accumulate(30.0, 1.0);
    EXPECT_DOUBLE_EQ(acc.readSince(s, 0.0), 30.0);
}

TEST(IntervalAccumulator, IndependentReaders)
{
    IntervalAccumulator acc;
    IntervalAccumulator::Snapshot a, b;
    acc.accumulate(10.0, 1.0);
    EXPECT_DOUBLE_EQ(acc.readSince(a, 0.0), 10.0);
    acc.accumulate(20.0, 1.0);
    EXPECT_DOUBLE_EQ(acc.readSince(a, 0.0), 20.0);
    EXPECT_DOUBLE_EQ(acc.readSince(b, 0.0), 15.0);
}

TEST(IntervalAccumulator, FallbackWhenNoTimeElapsed)
{
    IntervalAccumulator acc;
    IntervalAccumulator::Snapshot s;
    EXPECT_DOUBLE_EQ(acc.readSince(s, 42.0), 42.0);
}

TEST(IntervalAccumulator, NegativeIntervalPanics)
{
    IntervalAccumulator acc;
    EXPECT_DEATH(acc.accumulate(1.0, -1.0), "negative");
}

TEST(IntervalAccumulator, TotalsTrack)
{
    IntervalAccumulator acc;
    acc.accumulate(5.0, 2.0);
    EXPECT_DOUBLE_EQ(acc.integral(), 10.0);
    EXPECT_DOUBLE_EQ(acc.elapsed(), 2.0);
}

TEST(PercentileSorted, PinnedValuesOnOneToHundred)
{
    // 100 samples 1..100: the smallest sample whose cumulative count
    // reaches p% of the total is exactly the sample numbered p.
    std::vector<double> v(100);
    for (int i = 0; i < 100; ++i)
        v[static_cast<size_t>(i)] = static_cast<double>(i + 1);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 99.0), 99.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 100.0), 100.0);
}

TEST(PercentileSorted, FleetP99RegressionAt288Samples)
{
    // Regression pin for the fleet-profiler bug: with 288 samples
    // (one day at 5-minute grain) the old floor(0.99 * (n - 1))
    // indexing returned sample 284; the shared convention --
    // smallest cumulative count >= 0.99 * 288 = 285.12, i.e. the
    // 286th sample -- returns index 285, one sample higher.
    std::vector<double> v(288);
    for (int i = 0; i < 288; ++i)
        v[static_cast<size_t>(i)] = static_cast<double>(i);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 99.0), 285.0);
}

TEST(PercentileSorted, MatchesHistogramTargetRule)
{
    // The convention, spelled out: index = ceil(p/100 * n) - 1,
    // clamped to the vector -- the sample-vector analogue of
    // LatencyHistogram's smallest-cumulative-count-reaching-target
    // rule. Checked across sizes and percentiles.
    for (int n : {1, 2, 3, 7, 100, 288, 1000}) {
        std::vector<double> v(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            v[static_cast<size_t>(i)] = static_cast<double>(i);
        for (double p : {0.0, 1.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
            double target = p / 100.0 * n;
            int idx = static_cast<int>(std::ceil(target)) - 1;
            idx = std::max(0, std::min(n - 1, idx));
            EXPECT_DOUBLE_EQ(percentileSorted(v, p),
                             static_cast<double>(idx))
                << "n=" << n << " p=" << p;
        }
    }
}

TEST(PercentileSorted, SingleSampleIsEveryPercentile)
{
    std::vector<double> v{3.5};
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 3.5);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50.0), 3.5);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 100.0), 3.5);
}

TEST(PercentileSorted, EmptyVectorPanics)
{
    std::vector<double> v;
    EXPECT_DEATH(
        {
            setContractMode(ContractMode::Fatal);
            percentileSorted(v, 99.0);
        },
        "empty");
}
