/**
 * @file
 * Tests for the CPU-side models: LLC apportionment, prefetcher
 * factors, and topology arithmetic.
 */

#include <gtest/gtest.h>

#include "cpu/llc.hh"
#include "cpu/prefetcher.hh"
#include "cpu/topology.hh"

using namespace kelp;
using namespace kelp::cpu;

TEST(LlcHitRate, FullCoverageHitsMax)
{
    EXPECT_DOUBLE_EQ(Llc::hitRate(32.0, 8.0, 0.9), 0.9);
}

TEST(LlcHitRate, SqrtCurve)
{
    EXPECT_NEAR(Llc::hitRate(4.0, 16.0, 0.8), 0.8 * 0.5, 1e-9);
}

TEST(LlcHitRate, ZeroCapacityZeroHits)
{
    EXPECT_DOUBLE_EQ(Llc::hitRate(0.0, 16.0, 0.8), 0.0);
}

TEST(LlcHitRate, ZeroFootprintHitsMax)
{
    EXPECT_DOUBLE_EQ(Llc::hitRate(1.0, 0.0, 0.8), 0.8);
}

TEST(Llc, DedicatedWaysAreExclusive)
{
    Llc llc(32.0, 16);  // 2 MiB per way
    std::vector<LlcRequest> reqs = {
        {1, 8.0, 1.0, 4, 0.9},   // 4 ways = 8 MiB dedicated
        {2, 100.0, 1.0, 0, 0.5}, // shared pool
    };
    auto shares = llc.apportion(reqs);
    EXPECT_DOUBLE_EQ(shares.at(1).capacityMb, 8.0);
    EXPECT_DOUBLE_EQ(shares.at(1).hitRate, 0.9);
    EXPECT_DOUBLE_EQ(shares.at(2).capacityMb, 24.0);
}

TEST(Llc, SharedPoolWeightedSplit)
{
    Llc llc(30.0, 10);
    std::vector<LlcRequest> reqs = {
        {1, 100.0, 1.0, 0, 0.5},
        {2, 100.0, 2.0, 0, 0.5},
    };
    auto shares = llc.apportion(reqs);
    EXPECT_NEAR(shares.at(1).capacityMb, 10.0, 1e-9);
    EXPECT_NEAR(shares.at(2).capacityMb, 20.0, 1e-9);
}

TEST(Llc, FootprintCapRedistributes)
{
    Llc llc(30.0, 10);
    std::vector<LlcRequest> reqs = {
        {1, 5.0, 1.0, 0, 0.9},    // only needs 5 MiB
        {2, 100.0, 1.0, 0, 0.5},  // takes the rest
    };
    auto shares = llc.apportion(reqs);
    EXPECT_NEAR(shares.at(1).capacityMb, 5.0, 1e-9);
    EXPECT_NEAR(shares.at(2).capacityMb, 25.0, 1e-9);
}

TEST(Llc, OrderIndependent)
{
    Llc llc(30.0, 10);
    std::vector<LlcRequest> fwd = {
        {1, 5.0, 1.0, 0, 0.9},
        {2, 100.0, 1.0, 0, 0.5},
    };
    std::vector<LlcRequest> rev = {fwd[1], fwd[0]};
    auto a = llc.apportion(fwd);
    auto b = llc.apportion(rev);
    EXPECT_DOUBLE_EQ(a.at(1).capacityMb, b.at(1).capacityMb);
    EXPECT_DOUBLE_EQ(a.at(2).capacityMb, b.at(2).capacityMb);
}

TEST(Llc, SingleGroupGetsEverything)
{
    Llc llc(32.0, 16);
    std::vector<LlcRequest> reqs = {{1, 100.0, 1.0, 0, 0.5}};
    auto shares = llc.apportion(reqs);
    EXPECT_NEAR(shares.at(1).capacityMb, 32.0, 1e-9);
}

TEST(Llc, TooManyDedicatedWaysPanics)
{
    Llc llc(32.0, 16);
    std::vector<LlcRequest> reqs = {
        {1, 8.0, 1.0, 10, 0.9},
        {2, 8.0, 1.0, 10, 0.9},
    };
    EXPECT_DEATH(llc.apportion(reqs), "exceed");
}

TEST(Llc, BadSizePanics)
{
    EXPECT_DEATH(Llc(0.0, 16), "size");
    EXPECT_DEATH(Llc(32.0, 0), "way");
}

TEST(Prefetcher, FullEnableIsNeutral)
{
    PrefetchParams p{0.4, 0.6};
    EXPECT_DOUBLE_EQ(prefetchTrafficFactor(p, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(prefetchStallFactor(p, 1.0), 1.0);
}

TEST(Prefetcher, FullDisableExtremes)
{
    PrefetchParams p{0.4, 0.6};
    EXPECT_NEAR(prefetchTrafficFactor(p, 0.0), 1.0 / 1.4, 1e-9);
    EXPECT_NEAR(prefetchStallFactor(p, 0.0), 1.0 / 0.4, 1e-9);
}

TEST(Prefetcher, MonotoneInFraction)
{
    PrefetchParams p{0.5, 0.7};
    double prev_traffic = 0.0, prev_stall = 10.0;
    for (double f = 0.0; f <= 1.0; f += 0.1) {
        double t = prefetchTrafficFactor(p, f);
        double s = prefetchStallFactor(p, f);
        EXPECT_GT(t, prev_traffic);
        EXPECT_LT(s, prev_stall);
        prev_traffic = t;
        prev_stall = s;
    }
}

TEST(Prefetcher, FractionClamped)
{
    PrefetchParams p{0.4, 0.6};
    EXPECT_DOUBLE_EQ(prefetchTrafficFactor(p, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(prefetchStallFactor(p, -1.0),
                     prefetchStallFactor(p, 0.0));
}

TEST(Prefetcher, BadParamsPanic)
{
    EXPECT_DEATH(prefetchTrafficFactor({-0.1, 0.5}, 1.0), "boost");
    EXPECT_DEATH(prefetchStallFactor({0.4, 1.0}, 1.0), "hide");
}

TEST(Topology, SubdomainArithmetic)
{
    TopologyConfig cfg;
    cfg.sockets = 2;
    cfg.coresPerSocket = 24;
    cfg.llcMbPerSocket = 33.0;
    cfg.llcWays = 12;
    Topology topo(cfg);
    EXPECT_EQ(topo.coresPerSubdomain(), 12);
    EXPECT_EQ(topo.totalCores(), 48);
    EXPECT_DOUBLE_EQ(topo.llcMbPerSubdomain(), 16.5);
    EXPECT_EQ(topo.llcWaysPerSubdomain(), 6);
}

TEST(Topology, OddCoresPanics)
{
    TopologyConfig cfg;
    cfg.coresPerSocket = 15;
    EXPECT_DEATH(Topology{cfg}, "even");
}

TEST(Topology, OddWaysPanics)
{
    TopologyConfig cfg;
    cfg.llcWays = 11;
    EXPECT_DEATH(Topology{cfg}, "even");
}

TEST(Topology, BadSmtFactorPanics)
{
    TopologyConfig cfg;
    cfg.smtSiblingFactor = 0.0;
    EXPECT_DEATH(Topology{cfg}, "SMT");
}
