/**
 * @file
 * Tests for the workload performance model: host-phase speeds,
 * demand, and the batch task.
 */

#include <gtest/gtest.h>

#include "workload/batch_task.hh"
#include "workload/task.hh"

using namespace kelp;
using namespace kelp::wl;

namespace {

HostPhaseParams
phase(double cpu_frac = 0.5, double lat_sens = 1.0)
{
    HostPhaseParams p;
    p.cpuFrac = cpu_frac;
    p.latencySensitivity = lat_sens;
    p.bwPerCore = 2.0;
    p.prefetch = {0.4, 0.6};
    return p;
}

ExecEnv
standaloneEnv()
{
    ExecEnv env;
    env.effCores = 4.0;
    env.latencyNs = 90.0;
    env.baseLatencyNs = 90.0;
    return env;
}

} // namespace

TEST(HostSpeeds, StandaloneIsUnity)
{
    HostSpeeds s = hostSpeeds(phase(), standaloneEnv(), 1.0);
    EXPECT_NEAR(s.speed, 1.0, 1e-9);
    EXPECT_NEAR(s.demandSpeed, 1.0, 1e-9);
}

TEST(HostSpeeds, LatencyInflationSlowsStallPortion)
{
    ExecEnv env = standaloneEnv();
    env.latencyNs = 180.0;  // 2x
    double s = hostSpeed(phase(0.5), env, 1.0);
    // rel time = 0.5 + 0.5*2 = 1.5
    EXPECT_NEAR(s, 1.0 / 1.5, 1e-9);
}

TEST(HostSpeeds, CpuHeavyPhaseLessExposed)
{
    ExecEnv env = standaloneEnv();
    env.latencyNs = 270.0;
    double stall_heavy = hostSpeed(phase(0.1), env, 1.0);
    double cpu_heavy = hostSpeed(phase(0.8), env, 1.0);
    EXPECT_GT(cpu_heavy, stall_heavy);
}

TEST(HostSpeeds, LatencySensitivityDamps)
{
    ExecEnv env = standaloneEnv();
    env.latencyNs = 270.0;  // 3x
    double sensitive = hostSpeed(phase(0.2, 1.0), env, 1.0);
    double streaming = hostSpeed(phase(0.2, 0.15), env, 1.0);
    EXPECT_GT(streaming, sensitive * 1.5);
}

TEST(HostSpeeds, MissRatioInflatesStall)
{
    ExecEnv env = standaloneEnv();
    env.missRatio = 2.0;
    double s = hostSpeed(phase(0.5), env, 1.0);
    EXPECT_NEAR(s, 1.0 / 1.5, 1e-9);
}

TEST(HostSpeeds, DisabledPrefetchersExposeStall)
{
    ExecEnv env = standaloneEnv();
    env.pfFraction = 0.0;
    double s = hostSpeed(phase(0.5), env, 1.0);
    // stall factor = 1 / (1 - 0.6) = 2.5
    EXPECT_NEAR(s, 1.0 / (0.5 + 0.5 * 2.5), 1e-9);
}

TEST(HostSpeeds, ThrottleStretchesMemoryOnly)
{
    ExecEnv env = standaloneEnv();
    env.throttle = 0.5;
    double s = hostSpeed(phase(0.5), env, 1.0);
    EXPECT_NEAR(s, 1.0 / (0.5 + 0.5 / 0.5), 1e-9);
    // A pure-compute phase is nearly immune.
    double compute = hostSpeed(phase(0.95), env, 1.0);
    EXPECT_GT(compute, 0.9);
}

TEST(HostSpeeds, BandwidthStarvationCaps)
{
    ExecEnv env = standaloneEnv();
    env.bwFraction = 0.5;
    HostSpeeds s = hostSpeeds(phase(0.5), env, 1.0);
    EXPECT_NEAR(s.speed, 0.5, 1e-9);
    // Offered pressure stays at the latency-view speed.
    EXPECT_NEAR(s.demandSpeed, 1.0, 1e-9);
}

TEST(HostSpeeds, StreamingDemandSurvivesThrottle)
{
    // Section VI-B: prefetcher-driven pressure persists under core
    // throttling for low-latency-sensitivity code.
    ExecEnv env = standaloneEnv();
    env.throttle = 0.5;
    HostSpeeds streaming = hostSpeeds(phase(0.05, 0.15), env, 1.0);
    HostSpeeds pointer = hostSpeeds(phase(0.05, 1.0), env, 1.0);
    EXPECT_GT(streaming.demandSpeed, 0.8);
    EXPECT_LT(pointer.demandSpeed, 0.6);
}

TEST(HostSpeeds, SmtFactorScalesBoth)
{
    ExecEnv env = standaloneEnv();
    env.smtFactor = 0.8;
    HostSpeeds s = hostSpeeds(phase(), env, 1.0);
    EXPECT_NEAR(s.speed, 0.8, 1e-9);
    EXPECT_NEAR(s.demandSpeed, 0.8, 1e-9);
}

TEST(HostDemand, ScalesWithCoresAndSpeed)
{
    HostPhaseParams p = phase();
    EXPECT_NEAR(hostDemand(p, 4.0, 1.0, 1.0, 1.0), 8.0, 1e-9);
    EXPECT_NEAR(hostDemand(p, 4.0, 0.5, 1.0, 1.0), 4.0, 1e-9);
    EXPECT_NEAR(hostDemand(p, 2.0, 1.0, 1.0, 1.0), 4.0, 1e-9);
}

TEST(HostDemand, MissRatioScalesTraffic)
{
    HostPhaseParams p = phase();
    EXPECT_NEAR(hostDemand(p, 1.0, 1.0, 2.0, 1.0), 4.0, 1e-9);
}

TEST(HostDemand, PrefetchersAddTraffic)
{
    HostPhaseParams p = phase();
    double on = hostDemand(p, 1.0, 1.0, 1.0, 1.0);
    double off = hostDemand(p, 1.0, 1.0, 1.0, 0.0);
    EXPECT_NEAR(on / off, 1.4, 1e-9);
}

/** Speed is monotone non-increasing in latency, for any phase. */
class SpeedMonotoneInLatency
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(SpeedMonotoneInLatency, Holds)
{
    auto [cpu_frac, lat_sens] = GetParam();
    ExecEnv env = standaloneEnv();
    double prev = 1e9;
    for (double lat = 90.0; lat <= 600.0; lat += 30.0) {
        env.latencyNs = lat;
        double s = hostSpeed(phase(cpu_frac, lat_sens), env, 1.0);
        EXPECT_LE(s, prev + 1e-12);
        prev = s;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PhaseShapes, SpeedMonotoneInLatency,
    ::testing::Combine(::testing::Values(0.05, 0.3, 0.6, 0.9),
                       ::testing::Values(0.15, 0.5, 1.0)));

TEST(Task, DataPlacementValidated)
{
    BatchTask t("t", 0, 1, phase());
    EXPECT_NO_THROW(t.setDataPlacement({{0, 0, 0.5}, {1, 0, 0.5}}));
    EXPECT_DEATH(t.setDataPlacement({{0, 0, 0.5}}), "sum to 1");
}

TEST(Task, DemandBasisDamped)
{
    BatchTask t("t", 0, 1, phase());
    EXPECT_DOUBLE_EQ(t.demandBasis(), 1.0);
    ExecEnv env = standaloneEnv();
    env.latencyNs = 450.0;  // 5x -> speed 1/3
    t.advance(1e-4, env);
    double after_one = t.demandBasis();
    EXPECT_LT(after_one, 1.0);
    EXPECT_GT(after_one, 1.0 / 3.0);  // damped, not instant
    for (int i = 0; i < 20; ++i)
        t.advance(1e-4, env);
    EXPECT_NEAR(t.demandBasis(), 1.0 / 3.0, 0.02);
}

TEST(BatchTask, StandaloneRate)
{
    BatchTask t("t", 0, 4, phase());
    ExecEnv env = standaloneEnv();
    env.effCores = 4.0;
    t.advance(1.0, env);
    EXPECT_NEAR(t.completedWork(), 4.0, 1e-9);
}

TEST(BatchTask, LimitedByCores)
{
    BatchTask t("t", 0, 8, phase());
    ExecEnv env = standaloneEnv();
    env.effCores = 2.0;
    t.advance(1.0, env);
    EXPECT_NEAR(t.completedWork(), 2.0, 1e-9);
}

TEST(BatchTask, ThroughputSince)
{
    BatchTask t("t", 0, 2, phase());
    ExecEnv env = standaloneEnv();
    env.effCores = 2.0;
    double cursor = 0.0;
    t.advance(1.0, env);
    EXPECT_NEAR(t.throughputSince(cursor, 1.0), 2.0, 1e-9);
    t.advance(2.0, env);
    EXPECT_NEAR(t.throughputSince(cursor, 2.0), 2.0, 1e-9);
}

TEST(BatchTask, SetThreads)
{
    BatchTask t("t", 0, 2, phase());
    t.setThreads(6);
    EXPECT_EQ(t.threadsWanted(), 6);
    EXPECT_DEATH(t.setThreads(0), "thread");
}

TEST(BatchTask, DemandUsesPhaseParams)
{
    BatchTask t("t", 0, 4, phase());
    ExecEnv env = standaloneEnv();
    env.effCores = 4.0;
    EXPECT_NEAR(t.bwDemand(env), 8.0, 1e-9);
}
