/**
 * @file
 * Tests for the kelp-lint rule engine, driven as a library per the
 * design: each fixture under tests/lint_fixtures/ is read from disk
 * and handed to lintSource() under a virtual repo-relative path that
 * exercises the rule's path scoping. No subprocess is involved.
 */

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hh"

namespace {

using kelp::lint::Baseline;
using kelp::lint::Finding;
using kelp::lint::lintSource;

std::string
readFixture(const std::string &name)
{
    const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<Finding>
lintFixture(const std::string &name, const std::string &virtualPath)
{
    return lintSource(virtualPath, readFixture(name));
}

int
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    int n = 0;
    for (const auto &f : fs)
        if (f.rule == rule)
            ++n;
    return n;
}

TEST(LintDeterminism, FlagsEveryEntropyAndClockSource)
{
    auto fs = lintFixture("bad_rand.cc", "src/exp/bad_rand.cc");
    // rand(), mt19937, random_device, time(nullptr), steady_clock.
    EXPECT_EQ(countRule(fs, "determinism"), 5);
    // Member accesses (e.time(), e.rand) must not fire.
    for (const auto &f : fs)
        EXPECT_LE(f.line, 14) << f.message;
}

TEST(LintDeterminism, RngImplementationIsExempt)
{
    auto fs = lintFixture("bad_rand.cc", "src/sim/rng.cc");
    EXPECT_EQ(countRule(fs, "determinism"), 0);
}

TEST(LintUnorderedIter, FlagsRangeForOverUnorderedInControlPaths)
{
    auto fs = lintFixture("bad_unordered.cc", "src/kelp/bad_unordered.cc");
    ASSERT_EQ(countRule(fs, "unordered-iter"), 1);
    for (const auto &f : fs)
        if (f.rule == "unordered-iter")
            EXPECT_EQ(f.line, 13) << f.excerpt;
}

TEST(LintUnorderedIter, OutsideControlPathsIsLegal)
{
    auto fs = lintFixture("bad_unordered.cc", "src/exp/bad_unordered.cc");
    EXPECT_EQ(countRule(fs, "unordered-iter"), 0);
}

TEST(LintKnobDiscipline, FlagsDirectMutatorCallsOutsideHal)
{
    auto fs = lintFixture("bad_knobs.cc", "src/exp/bad_knobs.cc");
    // setCores, setPrefetchersEnabled, setCatWays -- the bare
    // declaration at the bottom is not a call.
    EXPECT_EQ(countRule(fs, "knob-discipline"), 3);
}

TEST(LintKnobDiscipline, HalAndControllersAreExempt)
{
    EXPECT_EQ(countRule(lintFixture("bad_knobs.cc", "src/hal/bad_knobs.cc"),
                        "knob-discipline"),
              0);
    EXPECT_EQ(countRule(lintFixture("bad_knobs.cc", "src/kelp/bad_knobs.cc"),
                        "knob-discipline"),
              0);
}

TEST(LintFloatEq, FlagsEqualityAgainstFloatLiterals)
{
    auto fs = lintFixture("bad_floateq.cc", "src/exp/bad_floateq.cc");
    // x == 1.0, y != 0.5f, 2.5e-3 == x; int and hex comparisons pass.
    EXPECT_EQ(countRule(fs, "float-eq"), 3);
}

TEST(LintIncludeGuard, FlagsMismatchedGuard)
{
    auto fs = lintFixture("bad_guard.hh", "src/mem/bad_guard.hh");
    ASSERT_EQ(countRule(fs, "include-guard"), 1);
    for (const auto &f : fs)
        if (f.rule == "include-guard")
            EXPECT_NE(f.message.find("KELP_MEM_BAD_GUARD_HH"),
                      std::string::npos)
                << f.message;
}

TEST(LintIncludeGuard, ExpectedGuardNaming)
{
    EXPECT_EQ(kelp::lint::expectedGuard("src/kelp/slo_guard.hh"),
              "KELP_KELP_SLO_GUARD_HH");
    EXPECT_EQ(kelp::lint::expectedGuard("src/sim/log.hh"),
              "KELP_SIM_LOG_HH");
    EXPECT_EQ(kelp::lint::expectedGuard("tools/kelp_lint/lint.hh"),
              "KELP_TOOLS_KELP_LINT_LINT_HH");
}

TEST(LintUsingNamespace, FlagsUsingDirectiveInHeader)
{
    auto fs = lintFixture("bad_using.hh", "src/sim/bad_using.hh");
    EXPECT_EQ(countRule(fs, "using-namespace"), 1);
    // Guard in the fixture is correct for this virtual path.
    EXPECT_EQ(countRule(fs, "include-guard"), 0);
}

TEST(LintSuppression, ValidAllowSilencesTheFinding)
{
    auto fs = lintFixture("suppressed_ok.cc", "src/exp/suppressed_ok.cc");
    EXPECT_TRUE(fs.empty()) << kelp::lint::formatFinding(fs.front());
}

TEST(LintSuppression, AllowWithoutReasonIsItselfAFinding)
{
    auto fs = lintFixture("suppressed_noreason.cc",
                          "src/exp/suppressed_noreason.cc");
    // The malformed directive does not register, so the float-eq
    // finding survives alongside the bad-suppression finding.
    EXPECT_EQ(countRule(fs, "bad-suppression"), 1);
    EXPECT_EQ(countRule(fs, "float-eq"), 1);
}

TEST(LintSuppression, AllowFileSilencesWholeFile)
{
    std::string src = "// kelp: allow-file(float-eq): fixture-wide.\n"
                      "bool a(double x) { return x == 1.0; }\n"
                      "bool b(double x) { return x != 2.0; }\n";
    auto fs = lintSource("src/exp/allow_file.cc", src);
    EXPECT_TRUE(fs.empty());
}

TEST(LintSuppression, UnknownRuleNameIsRejected)
{
    std::string src =
        "// kelp: allow(no-such-rule): typo in the rule name.\n"
        "int x;\n";
    auto fs = lintSource("src/exp/typo.cc", src);
    EXPECT_EQ(countRule(fs, "bad-suppression"), 1);
}

TEST(LintSuppression, LegacyToolPrefixedSpellingIsRejected)
{
    // The pre-unification spelling parsed per-tool; it now reads as a
    // stale directive and must be migrated to the `kelp:` grammar.
    std::string src =
        "bool a(double x) { return x == 1.0; } "
        "// kelp-lint: allow(float-eq): stale spelling.\n";
    auto fs = lintSource("src/exp/legacy.cc", src);
    EXPECT_EQ(countRule(fs, "bad-suppression"), 1);
    // And it no longer suppresses anything.
    EXPECT_EQ(countRule(fs, "float-eq"), 1);
}

TEST(LintSuppression, AnalyzeRuleAllowParsesButStaysInactiveHere)
{
    // An allow naming the sibling tool's rule is legal (kelp-analyze
    // honours it) but silences nothing in kelp-lint.
    std::string src =
        "// kelp: allow(audit-completeness): actuation logged by caller.\n"
        "bool a(double x) { return x == 1.0; }\n";
    auto fs = lintSource("src/exp/foreign.cc", src);
    EXPECT_EQ(countRule(fs, "bad-suppression"), 0);
    EXPECT_EQ(countRule(fs, "float-eq"), 1);
}

TEST(LintBaseline, CoversGrandfatheredFindingsByKey)
{
    auto fs = lintFixture("bad_floateq.cc", "src/exp/bad_floateq.cc");
    ASSERT_EQ(fs.size(), 3u);

    std::string text = "# grandfathered\n" + Baseline::entry(fs[0]) + "\n";
    Baseline base;
    ASSERT_TRUE(base.parse(text));
    EXPECT_EQ(base.size(), 1u);
    EXPECT_TRUE(base.covers(fs[0]));
    EXPECT_FALSE(base.covers(fs[1]));

    // The key has no line number: moving the finding within the file
    // must keep it covered.
    Finding moved = fs[0];
    moved.line += 100;
    EXPECT_TRUE(base.covers(moved));
}

TEST(LintBaseline, RejectsMalformedLines)
{
    Baseline base;
    EXPECT_FALSE(base.parse("only-one-field\n"));
}

TEST(LintRawParallelism, FlagsRawThreadingOutsidePool)
{
    auto fs = lintFixture("bad_thread.cc", "src/kelp/bad_thread.cc");
    // thread, jthread, async, mutex, recursive_mutex,
    // condition_variable -- member accesses, mylib:: symbols, and
    // this_thread sleeps must not fire.
    EXPECT_EQ(countRule(fs, "raw-parallelism"), 6);
    for (const auto &f : fs)
        if (f.rule == "raw-parallelism")
            EXPECT_LE(f.line, 16) << f.message;
}

TEST(LintRawParallelism, PoolImplementationIsExempt)
{
    EXPECT_EQ(countRule(lintFixture("bad_thread.cc", "src/exp/pool.cc"),
                        "raw-parallelism"),
              0);
    EXPECT_EQ(countRule(lintFixture("bad_thread.cc", "src/exp/pool.hh"),
                        "raw-parallelism"),
              0);
}

TEST(LintRawParallelism, TestsAreOutOfScope)
{
    // Tests may stage adversarial schedules with real sleeps/threads;
    // the rule polices the library, tools, and benches.
    EXPECT_EQ(countRule(lintFixture("bad_thread.cc",
                                    "tests/test_parallel.cc"),
                        "raw-parallelism"),
              0);
}

TEST(LintEngine, RuleListIsStable)
{
    const auto &rules = kelp::lint::allRules();
    ASSERT_EQ(rules.size(), 8u);
    EXPECT_EQ(rules.front(), "determinism");
}

} // namespace
