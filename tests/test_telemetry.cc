/**
 * @file
 * Tests for the telemetry time-series module.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/engine.hh"
#include "sim/log.hh"
#include "trace/telemetry.hh"

using namespace kelp;
using namespace kelp::trace;

TEST(TimeSeries, RecordsInOrder)
{
    TimeSeries s("x");
    s.record(0.0, 1.0);
    s.record(1.0, 2.0);
    s.record(1.0, 3.0);  // equal time allowed
    EXPECT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s.last(), 3.0);
}

TEST(TimeSeries, OutOfOrderPanics)
{
    TimeSeries s("x");
    s.record(2.0, 1.0);
    EXPECT_DEATH(s.record(1.0, 1.0), "order");
}

TEST(TimeSeries, MeanOverWindow)
{
    TimeSeries s("x");
    for (int i = 0; i < 10; ++i)
        s.record(i, i);
    EXPECT_DOUBLE_EQ(s.meanOver(2.0, 4.0), 3.0);
    EXPECT_DOUBLE_EQ(s.meanOver(0.0, 9.0), 4.5);
    EXPECT_DOUBLE_EQ(s.meanOver(100.0, 200.0), 0.0);
}

TEST(TimeSeries, MaxOverWindow)
{
    TimeSeries s("x");
    s.record(0.0, 5.0);
    s.record(1.0, -2.0);
    s.record(2.0, 3.0);
    EXPECT_DOUBLE_EQ(s.maxOver(1.0, 2.0), 3.0);
    EXPECT_DOUBLE_EQ(s.maxOver(1.0, 1.5), -2.0);
    EXPECT_DOUBLE_EQ(s.maxOver(5.0, 6.0), 0.0);
}

TEST(TimeSeries, EmptyBehaviour)
{
    TimeSeries s("x");
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.last(), 0.0);
    EXPECT_DOUBLE_EQ(s.meanOver(0.0, 1.0), 0.0);
}

TEST(Telemetry, SeriesByNameIsStable)
{
    Telemetry t;
    TimeSeries &a = t.series("alpha");
    TimeSeries &b = t.series("alpha");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(t.find("alpha"), &a);
    EXPECT_EQ(t.find("missing"), nullptr);
}

TEST(Telemetry, ProbesSampleOnDemand)
{
    Telemetry t;
    double v = 1.0;
    t.addProbe("v", [&]() { return v; });
    t.sampleProbes(0.0);
    v = 2.0;
    t.sampleProbes(1.0);
    const TimeSeries *s = t.find("v");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->size(), 2u);
    EXPECT_DOUBLE_EQ(s->values()[0], 1.0);
    EXPECT_DOUBLE_EQ(s->values()[1], 2.0);
}

TEST(Telemetry, AttachSamplesOnCadence)
{
    Telemetry t;
    int calls = 0;
    t.addProbe("ticks", [&]() { return ++calls; });
    sim::Engine e(1e-3);
    t.attach(e, 0.01);
    e.run(0.05);
    EXPECT_EQ(calls, 5);
    EXPECT_EQ(t.find("ticks")->size(), 5u);
}

TEST(Telemetry, CsvHeaderAndAlignment)
{
    Telemetry t;
    t.series("a").record(0.0, 1.0);
    t.series("a").record(2.0, 3.0);
    t.series("b").record(1.0, 9.0);
    std::string csv = t.toCsv();
    std::istringstream in(csv);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "time,a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "0,1,");  // b has no sample yet: empty, not 0
    std::getline(in, line);
    EXPECT_EQ(line, "1,1,9");  // a carried forward
    std::getline(in, line);
    EXPECT_EQ(line, "2,3,9");
}

TEST(Telemetry, CsvLeadingCellsAreEmptyNotZero)
{
    // Regression: cells before a series' first sample used to be
    // fabricated as 0.0, indistinguishable from a real zero sample.
    Telemetry t;
    t.series("early").record(0.0, 5.0);
    t.series("late").record(2.0, 7.0);
    t.series("early").record(1.0, 6.0);
    std::string csv = t.toCsv();
    std::istringstream in(csv);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "time,early,late");
    std::getline(in, line);
    EXPECT_EQ(line, "0,5,");
    std::getline(in, line);
    EXPECT_EQ(line, "1,6,");
    std::getline(in, line);
    EXPECT_EQ(line, "2,6,7");
}

TEST(Telemetry, CsvHeaderEscapesCommasAndQuotes)
{
    // RFC 4180: names with commas or quotes are quote-wrapped with
    // inner quotes doubled, so the header stays parseable.
    Telemetry t;
    t.series("bw,GiB/s").record(0.0, 1.0);
    t.series("say \"hi\"").record(0.0, 2.0);
    t.series("plain").record(0.0, 3.0);
    std::string csv = t.toCsv();
    std::istringstream in(csv);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "time,\"bw,GiB/s\",\"say \"\"hi\"\"\",plain");
    std::getline(in, line);
    EXPECT_EQ(line, "0,1,2,3");
}

TEST(Telemetry, NewlineInSeriesNamePanics)
{
    EXPECT_DEATH(
        {
            sim::setContractMode(sim::ContractMode::Fatal);
            TimeSeries bad("bad\nname");
        },
        "newline");
    EXPECT_DEATH(
        {
            sim::setContractMode(sim::ContractMode::Fatal);
            TimeSeries bad("bad\rname");
        },
        "newline");
}

TEST(Telemetry, WriteCsvRoundTrips)
{
    Telemetry t;
    t.series("s").record(0.0, 42.0);
    std::string path = ::testing::TempDir() + "/kelp_telemetry.csv";
    ASSERT_TRUE(t.writeCsv(path));
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "time,s");
    std::remove(path.c_str());
}

TEST(Telemetry, WriteCsvFailsOnBadPath)
{
    Telemetry t;
    EXPECT_FALSE(t.writeCsv("/nonexistent/dir/file.csv"));
}

TEST(Telemetry, NullProbePanics)
{
    Telemetry t;
    EXPECT_DEATH(t.addProbe("x", nullptr), "null");
}
