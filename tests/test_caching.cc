/**
 * @file
 * Equivalence tests for the hot-path caches: the MemSystem resolve
 * cache and the LLC apportionment memo must be observationally
 * invisible -- a cached instance driven through an arbitrary flow
 * history must report bit-identical grants, counters, and shares to
 * an uncached one, while actually hitting.
 */

#include <vector>

#include <gtest/gtest.h>

#include "cpu/llc.hh"
#include "mem/mem_system.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

using namespace kelp;
using namespace kelp::mem;

namespace {

MemSystemConfig
testConfig()
{
    MemSystemConfig cfg;
    cfg.numSockets = 2;
    cfg.socket.peakBw = 100.0;
    cfg.socket.baseLatency = 100.0;
    cfg.socket.inflationAt95 = 4.0;
    cfg.socket.distressThreshold = 0.8;
    cfg.socket.throttleStrength = 0.5;
    cfg.socket.sncLocalLatencyFactor = 0.9;
    cfg.socket.sncRemoteLatencyFactor = 1.1;
    cfg.upiCapacity = 40.0;
    cfg.upiHopLatency = 70.0;
    cfg.upiCoherenceTax = 1.0;
    return cfg;
}

constexpr sim::Time dt = 100 * sim::usec;

struct TickFlow
{
    int requestor;
    Route route;
    sim::GiBps demand;
    bool highPriority;
};

/** A randomized flow history with long stable stretches (the case
 * the cache exists for) and occasional demand/route churn. */
std::vector<std::vector<TickFlow>>
flowHistory(int ticks, uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<std::vector<TickFlow>> history;
    std::vector<TickFlow> current;
    for (int t = 0; t < ticks; ++t) {
        if (current.empty() || rng.uniform() < 0.3) {
            current.clear();
            int n = 1 + static_cast<int>(rng.below(4));
            for (int f = 0; f < n; ++f) {
                TickFlow flow;
                flow.requestor = f + 1;
                flow.route.reqSocket =
                    static_cast<sim::SocketId>(rng.below(2));
                flow.route.reqSub =
                    static_cast<sim::SubdomainId>(rng.below(2));
                flow.route.homeSocket =
                    static_cast<sim::SocketId>(rng.below(2));
                flow.route.homeSub =
                    static_cast<sim::SubdomainId>(rng.below(2));
                flow.demand = rng.uniform(1.0, 80.0);
                flow.highPriority = rng.chance(0.3);
                current.push_back(flow);
            }
        }
        history.push_back(current);
    }
    return history;
}

void
driveTick(MemSystem &mem, const std::vector<TickFlow> &flows)
{
    mem.beginTick();
    for (const TickFlow &f : flows)
        mem.addFlow(f.requestor, f.route, f.demand, f.highPriority);
    mem.resolve(dt);
}

} // namespace

TEST(ResolveCache, CachedMatchesUncachedOverRandomChurn)
{
    MemSystem cached(testConfig());
    MemSystem plain(testConfig());
    plain.setResolveCacheEnabled(false);
    cached.setSncEnabled(true);
    plain.setSncEnabled(true);

    const auto history = flowHistory(300, 42);
    for (const auto &flows : history) {
        driveTick(cached, flows);
        driveTick(plain, flows);

        for (const TickFlow &f : flows) {
            Grant a = cached.grant(f.requestor);
            Grant b = plain.grant(f.requestor);
            EXPECT_EQ(a.delivered, b.delivered);
            EXPECT_EQ(a.fraction, b.fraction);
            EXPECT_EQ(a.latency, b.latency);
        }
        for (sim::SocketId s = 0; s < 2; ++s) {
            EXPECT_EQ(cached.saturation(s), plain.saturation(s));
            EXPECT_EQ(cached.coreThrottle(s), plain.coreThrottle(s));
            EXPECT_EQ(cached.counters(s).bw.integral(),
                      plain.counters(s).bw.integral());
            EXPECT_EQ(cached.counters(s).latency.integral(),
                      plain.counters(s).latency.integral());
            EXPECT_EQ(cached.fastAsserted(s).integral(),
                      plain.fastAsserted(s).integral());
            for (sim::SubdomainId d = 0; d < 2; ++d) {
                EXPECT_EQ(cached.controller(s, d).totalDelivered(),
                          plain.controller(s, d).totalDelivered());
            }
        }
        EXPECT_EQ(cached.upi().utilization(),
                  plain.upi().utilization());
    }

    // The history has stable stretches, so the cache must have both
    // hit and missed; the uncached instance must never engage.
    EXPECT_GT(cached.resolveCacheHits(), 0u);
    EXPECT_GT(cached.resolveCacheMisses(), 0u);
    EXPECT_EQ(plain.resolveCacheHits(), 0u);
}

TEST(ResolveCache, StableLoadHitsEveryTickAfterTheFirst)
{
    MemSystem mem(testConfig());
    const std::vector<TickFlow> flows{
        {1, {0, 0, 0, 0}, 10.0, false},
        {2, {0, 1, 0, 1}, 30.0, false},
    };
    const int ticks = 50;
    for (int t = 0; t < ticks; ++t)
        driveTick(mem, flows);
    EXPECT_EQ(mem.resolveCacheMisses(), 1u);
    EXPECT_EQ(mem.resolveCacheHits(),
              static_cast<uint64_t>(ticks - 1));
}

TEST(ResolveCache, DemandChangeInvalidates)
{
    MemSystem mem(testConfig());
    std::vector<TickFlow> flows{{1, {0, 0, 0, 0}, 10.0, false}};
    driveTick(mem, flows);
    driveTick(mem, flows);
    EXPECT_EQ(mem.resolveCacheHits(), 1u);

    flows[0].demand = 11.0;
    driveTick(mem, flows);
    EXPECT_EQ(mem.resolveCacheHits(), 1u);
    EXPECT_EQ(mem.resolveCacheMisses(), 2u);

    // The new demand must be reflected, not the cached grant.
    EXPECT_NEAR(mem.grant(1).delivered, 11.0, 1e-9);
}

TEST(ResolveCache, DtChangeInvalidates)
{
    MemSystem mem(testConfig());
    const std::vector<TickFlow> flows{{1, {0, 0, 0, 0}, 10.0, false}};
    driveTick(mem, flows);
    mem.beginTick();
    mem.addFlow(1, {0, 0, 0, 0}, 10.0);
    mem.resolve(2.0 * dt);
    EXPECT_EQ(mem.resolveCacheHits(), 0u);
    EXPECT_EQ(mem.resolveCacheMisses(), 2u);
}

TEST(ApportionCache, MemoMatchesFreshApportionment)
{
    cpu::Llc llc(32.0, 12);
    cpu::ApportionCache memo;
    sim::Rng rng(7);

    std::vector<cpu::LlcRequest> reqs;
    for (int iter = 0; iter < 200; ++iter) {
        if (reqs.empty() || rng.uniform() < 0.4) {
            reqs.clear();
            int n = 1 + static_cast<int>(rng.below(3));
            for (int g = 0; g < n; ++g) {
                cpu::LlcRequest r;
                r.group = g;
                r.footprintMb = rng.uniform(1.0, 64.0);
                r.weight = rng.uniform(0.5, 4.0);
                r.dedicatedWays =
                    static_cast<int>(rng.below(5));
                r.hitMax = rng.uniform(0.5, 0.99);
                reqs.push_back(r);
            }
        }
        const auto &got = memo.get(llc, reqs);
        const auto fresh = llc.apportion(reqs);
        ASSERT_EQ(got.size(), fresh.size());
        for (const auto &[group, share] : fresh) {
            auto it = got.find(group);
            ASSERT_NE(it, got.end());
            EXPECT_EQ(it->second.capacityMb, share.capacityMb);
            EXPECT_EQ(it->second.hitRate, share.hitRate);
        }
    }
    EXPECT_GT(memo.hits(), 0u);
    EXPECT_GT(memo.misses(), 0u);
}

TEST(ApportionCache, GeometryChangeMisses)
{
    cpu::Llc small(16.0, 8);
    cpu::Llc large(32.0, 12);
    cpu::ApportionCache memo;
    std::vector<cpu::LlcRequest> reqs(1);
    reqs[0].group = 1;
    reqs[0].footprintMb = 8.0;

    memo.get(small, reqs);
    memo.get(small, reqs);
    EXPECT_EQ(memo.hits(), 1u);

    // Same requests against a different cache geometry must miss and
    // return the new geometry's shares.
    const auto &got = memo.get(large, reqs);
    EXPECT_EQ(memo.misses(), 2u);
    const auto fresh = large.apportion(reqs);
    EXPECT_EQ(got.at(1).capacityMb, fresh.at(1).capacityMb);
    EXPECT_EQ(got.at(1).hitRate, fresh.at(1).hitRate);
}
