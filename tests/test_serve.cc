/**
 * @file
 * Tests for the open-loop request serving layer: traffic-spec
 * canonical strings, deterministic arrival generation, the
 * admission/brownout ladder's drop accounting, scenario-level
 * determinism across worker counts, and the manifest's percentile
 * reporting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "exp/scenario.hh"
#include "exp/sweep_runner.hh"
#include "fuzz/oracle.hh"
#include "serve/server.hh"
#include "serve/traffic.hh"
#include "sim/engine.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "trace/json.hh"
#include "trace/run_manifest.hh"
#include "workload/ml_infer_task.hh"
#include "workload/phase.hh"

using namespace kelp;
using namespace kelp::serve;

// ------------------------------------------------------------------
// TrafficSpec canonical strings

TEST(TrafficSpec, DefaultIsShortestPoisson)
{
    TrafficSpec t;
    EXPECT_EQ(t.toString(), "shape=poisson");
}

TEST(TrafficSpec, ToStringParseIsIdentity)
{
    std::vector<TrafficSpec> specs;
    specs.push_back({});
    {
        TrafficSpec t;
        t.qps = 600.0;
        t.lowFrac = 0.5;
        specs.push_back(t);
    }
    {
        TrafficSpec t;
        t.shape = TrafficSpec::Shape::Diurnal;
        t.diurnalAmp = 0.9;
        t.diurnalPeriod = 15.0;
        specs.push_back(t);
    }
    {
        TrafficSpec t;
        t.shape = TrafficSpec::Shape::Burst;
        t.spikeFactor = 16.0;
        t.spikeStart = 1.0;
        t.spikePeriod = 5.0;
        t.spikeLen = 2.0;
        specs.push_back(t);
    }
    for (const TrafficSpec &t : specs) {
        std::string err;
        auto back = TrafficSpec::tryParse(t.toString(), &err);
        ASSERT_TRUE(back.has_value()) << t.toString() << ": " << err;
        EXPECT_EQ(*back, t);
        // Canonical form is a fixpoint.
        EXPECT_EQ(back->toString(), t.toString());
    }
}

TEST(TrafficSpec, NonDefaultFieldsPrintShapeGated)
{
    TrafficSpec t;
    t.shape = TrafficSpec::Shape::Burst;
    t.spikeFactor = 8.0;
    // Diurnal knobs never leak into a burst spec even if touched.
    t.diurnalAmp = 0.9;
    EXPECT_EQ(t.toString(), "shape=burst,factor=8");
}

TEST(TrafficSpec, ParseRejectsMalformedSpecs)
{
    std::string err;
    // Shape must come first.
    EXPECT_FALSE(TrafficSpec::tryParse("qps=300,shape=poisson", &err));
    EXPECT_FALSE(TrafficSpec::tryParse("", &err));
    EXPECT_FALSE(TrafficSpec::tryParse("shape=square", &err));
    // Duplicate key.
    EXPECT_FALSE(
        TrafficSpec::tryParse("shape=poisson,qps=1,qps=2", &err));
    // Wrong-shape key.
    EXPECT_FALSE(
        TrafficSpec::tryParse("shape=poisson,factor=4", &err));
    EXPECT_FALSE(TrafficSpec::tryParse("shape=burst,amp=0.5", &err));
    // Out of range.
    EXPECT_FALSE(TrafficSpec::tryParse("shape=poisson,qps=0", &err));
    EXPECT_FALSE(
        TrafficSpec::tryParse("shape=poisson,lowfrac=1.5", &err));
    EXPECT_FALSE(TrafficSpec::tryParse("shape=diurnal,amp=1", &err));
    // Spike window longer than its period.
    EXPECT_FALSE(TrafficSpec::tryParse(
        "shape=burst,period=2,len=3", &err));
    EXPECT_FALSE(err.empty());
}

TEST(TrafficSpec, RateAtFollowsTheShape)
{
    TrafficSpec p;
    p.qps = 100.0;
    EXPECT_DOUBLE_EQ(p.rateAt(0.0), 100.0);
    EXPECT_DOUBLE_EQ(p.rateAt(123.0), 100.0);

    TrafficSpec d;
    d.shape = TrafficSpec::Shape::Diurnal;
    d.qps = 100.0;
    d.diurnalAmp = 0.5;
    d.diurnalPeriod = 20.0;
    EXPECT_NEAR(d.rateAt(0.0), 100.0, 1e-9);
    EXPECT_NEAR(d.rateAt(5.0), 150.0, 1e-9);   // sin peak
    EXPECT_NEAR(d.rateAt(15.0), 50.0, 1e-9);   // sin trough

    TrafficSpec b;
    b.shape = TrafficSpec::Shape::Burst;
    b.qps = 100.0;
    b.spikeFactor = 4.0;
    b.spikeStart = 2.0;
    b.spikePeriod = 10.0;
    b.spikeLen = 2.0;
    EXPECT_DOUBLE_EQ(b.rateAt(1.0), 100.0);   // before first window
    EXPECT_DOUBLE_EQ(b.rateAt(2.0), 400.0);   // window start
    EXPECT_DOUBLE_EQ(b.rateAt(3.9), 400.0);   // inside
    EXPECT_DOUBLE_EQ(b.rateAt(4.0), 100.0);   // half-open end
    EXPECT_DOUBLE_EQ(b.rateAt(12.5), 400.0);  // next period's window
}

// ------------------------------------------------------------------
// Arrival generation

TEST(ArrivalGenerator, TraceMatchesPureDerivation)
{
    // The contract: arrival i's randomness comes from
    // sim::Rng::derive(seed, i) alone -- a unit exponential scaled
    // by the instantaneous rate at the previous arrival, then the
    // priority coin. Recompute the trace independently.
    TrafficSpec t;
    t.shape = TrafficSpec::Shape::Burst;
    t.qps = 200.0;
    t.lowFrac = 0.3;
    const uint64_t seed = 42;
    ArrivalGenerator gen(t, seed);

    sim::Time prev = 0.0;
    for (uint64_t i = 0; i < 500; ++i) {
        sim::Rng rng = sim::Rng::derive(seed, i);
        const double gap = rng.exponential(1.0) / t.rateAt(prev);
        const bool low = rng.chance(t.lowFrac);
        ArrivalGenerator::Arrival a = gen.next();
        EXPECT_EQ(a.index, i);
        EXPECT_DOUBLE_EQ(a.time, prev + gap);
        EXPECT_EQ(a.lowPriority, low);
        prev = a.time;
    }
    EXPECT_EQ(gen.generated(), 500u);
}

TEST(ArrivalGenerator, SameSeedSameTraceDifferentSeedDiffers)
{
    TrafficSpec t;
    t.qps = 300.0;
    ArrivalGenerator a(t, 7), b(t, 7), c(t, 8);
    bool anyDiff = false;
    sim::Time prev = 0.0;
    for (int i = 0; i < 300; ++i) {
        ArrivalGenerator::Arrival x = a.next();
        ArrivalGenerator::Arrival y = b.next();
        ArrivalGenerator::Arrival z = c.next();
        EXPECT_DOUBLE_EQ(x.time, y.time);
        EXPECT_EQ(x.lowPriority, y.lowPriority);
        anyDiff = anyDiff || x.time != z.time;
        EXPECT_GE(x.time, prev);
        prev = x.time;
    }
    EXPECT_TRUE(anyDiff);
}

TEST(ArrivalGenerator, MeanRateApproximatesQps)
{
    TrafficSpec t;
    t.qps = 500.0;
    ArrivalGenerator gen(t, 1);
    sim::Time last = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        last = gen.next().time;
    // Mean inter-arrival 1/500 s; n arrivals span ~10 s.
    EXPECT_NEAR(last, n / t.qps, 0.05 * n / t.qps);
}

// ------------------------------------------------------------------
// RequestServer drop accounting and the brownout ladder

namespace {

/** A deliberately slow inference config so modest traffic overloads
 * it (service rate ~ pipelineDepth / (iters * accel time)). */
wl::InferConfig
slowInferConfig()
{
    wl::InferConfig cfg;
    wl::StepGraph iter;
    iter.stages.push_back({{wl::accelSegment(2.0 * sim::msec)}});
    cfg.iteration = iter;
    cfg.itersPerRequest = 5;
    cfg.pipelineDepth = 4;
    cfg.closedLoop = false;
    cfg.externalArrivals = true;
    return cfg;
}

wl::ExecEnv
idealEnv()
{
    wl::ExecEnv env;
    env.effCores = 8.0;
    env.latencyNs = 90.0;
    env.baseLatencyNs = 90.0;
    return env;
}

} // namespace

TEST(RequestServer, OverloadShedsButBooksBalance)
{
    // The single-stage pipeline caps at ~100 req/s (5 iters x 2 ms
    // with no stage overlap); 300 qps base plus a x8 spike is far
    // past it, so the ladder must reject/shed/expire -- and account
    // for every request. Contracts run in Count mode so a violated
    // invariant fails the test rather than aborting.
    sim::setContractMode(sim::ContractMode::Count);
    const uint64_t before = sim::contractViolationsHere();

    ServeConfig cfg;
    cfg.enabled = true;
    cfg.traffic.shape = TrafficSpec::Shape::Burst;
    cfg.traffic.qps = 300.0;
    cfg.traffic.spikeFactor = 8.0;
    cfg.traffic.spikeStart = 1.0;
    cfg.deadline = 0.1;
    cfg.maxQueue = 32;

    wl::MlInferTask task("rnn", 0, slowInferConfig(), nullptr);
    RequestServer server(cfg, task, 99);
    sim::Engine e(1e-4);
    e.onTick([&](sim::Time, sim::Time dt) {
        task.advance(dt, idealEnv());
    });
    server.attach(e);
    e.run(8.0);

    ServeStats st = server.stats();
    EXPECT_GT(st.arrivals, 2000u);
    EXPECT_GT(st.completed, 100u);
    EXPECT_GT(st.rejected + st.shed + st.expired, 0u)
        << "overload produced no drops at all";
    EXPECT_EQ(st.arrivals, st.admitted + st.rejected);
    EXPECT_EQ(st.admitted,
              st.completed + st.shed + st.expired + st.inFlight);
    server.checkConservation();
    EXPECT_EQ(sim::contractViolationsHere(), before);
}

TEST(RequestServer, BrownoutEscalatesUnderSpikeAndCalmsAfter)
{
    sim::setContractMode(sim::ContractMode::Count);
    ServeConfig cfg;
    cfg.enabled = true;
    cfg.traffic.shape = TrafficSpec::Shape::Burst;
    cfg.traffic.qps = 60.0;  // under the ~100 req/s service cap
    cfg.traffic.spikeFactor = 10.0;
    cfg.traffic.spikeStart = 1.0;
    cfg.traffic.spikePeriod = 60.0;  // one spike, then calm
    cfg.traffic.spikeLen = 2.0;
    cfg.deadline = 0.2;
    cfg.maxQueue = 32;

    wl::MlInferTask task("rnn", 0, slowInferConfig(), nullptr);
    RequestServer server(cfg, task, 5);
    sim::Engine e(1e-4);
    e.onTick([&](sim::Time, sim::Time dt) {
        task.advance(dt, idealEnv());
    });
    server.attach(e);
    e.run(10.0);

    // The spike pushed the ladder up; the calm stretch brought it
    // back down to normal service.
    int peak = 0;
    for (const RequestServer::LevelChange &c : server.brownoutTrace())
        peak = std::max(peak, c.to);
    EXPECT_GE(peak, 1);
    EXPECT_EQ(server.brownoutLevel(), 0);
    EXPECT_GT(server.stats().brownoutTransitions, 1u);
    // Transitions are recorded time-ordered.
    for (size_t i = 1; i < server.brownoutTrace().size(); ++i) {
        EXPECT_LE(server.brownoutTrace()[i - 1].time,
                  server.brownoutTrace()[i].time);
    }
    server.checkConservation();
}

TEST(RequestServer, QuietTrafficCompletesEverything)
{
    sim::setContractMode(sim::ContractMode::Count);
    ServeConfig cfg;
    cfg.enabled = true;
    cfg.traffic.qps = 50.0;  // far under capacity

    wl::MlInferTask task("rnn", 0, slowInferConfig(), nullptr);
    RequestServer server(cfg, task, 3);
    sim::Engine e(1e-4);
    e.onTick([&](sim::Time, sim::Time dt) {
        task.advance(dt, idealEnv());
    });
    server.attach(e);
    e.run(10.0);

    ServeStats st = server.stats();
    EXPECT_GT(st.arrivals, 300u);
    EXPECT_EQ(st.rejected, 0u);
    EXPECT_EQ(st.shed, 0u);
    EXPECT_EQ(st.expired, 0u);
    EXPECT_EQ(st.brownoutTransitions, 0u);
    EXPECT_EQ(st.admitted, st.completed + st.inFlight);
}

// ------------------------------------------------------------------
// Scenario integration

namespace {

exp::RunConfig
servingScenario(TrafficSpec traffic)
{
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Rnn1;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 2;
    cfg.config = exp::ConfigKind::KP;
    cfg.warmup = 1.0;
    cfg.measure = 6.0;
    cfg.samplePeriod = 1.0;
    cfg.serving.enabled = true;
    cfg.serving.traffic = traffic;
    return cfg;
}

} // namespace

TEST(ServeScenario, ReplayIsByteIdentical)
{
    // Dispatch tie-breaking, arrival generation, and the ladder are
    // all deterministic: two runs of the same config agree on the
    // canonical result text byte-for-byte.
    TrafficSpec t;
    t.shape = TrafficSpec::Shape::Burst;
    t.spikeFactor = 8.0;
    exp::RunConfig cfg = servingScenario(t);
    exp::RunResult a = exp::runScenario(cfg);
    exp::RunResult b = exp::runScenario(cfg);
    EXPECT_EQ(fuzz::resultText(a), fuzz::resultText(b));
    EXPECT_GT(a.reqArrivals, 0u);
    EXPECT_GT(a.reqCompleted, 0u);
}

TEST(ServeScenario, WorkerCountNeverChangesResults)
{
    std::vector<exp::RunConfig> cfgs;
    {
        TrafficSpec t;
        cfgs.push_back(servingScenario(t));
    }
    {
        TrafficSpec t;
        t.shape = TrafficSpec::Shape::Diurnal;
        cfgs.push_back(servingScenario(t));
    }
    {
        TrafficSpec t;
        t.shape = TrafficSpec::Shape::Burst;
        t.spikeFactor = 16.0;
        cfgs.push_back(servingScenario(t));
    }
    const auto serial = exp::runScenarios(cfgs, 1);
    const auto parallel = exp::runScenarios(cfgs, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(fuzz::resultText(serial[i]),
                  fuzz::resultText(parallel[i]))
            << "config " << i;
    }
}

TEST(ServeScenario, SeedChangesTheTraffic)
{
    TrafficSpec t;
    exp::RunConfig cfg = servingScenario(t);
    exp::RunResult a = exp::runScenario(cfg);
    cfg.seed += 1;
    exp::RunResult b = exp::runScenario(cfg);
    EXPECT_NE(fuzz::resultText(a), fuzz::resultText(b));
}

TEST(ServeScenario, TrainingWorkloadIgnoresTraffic)
{
    // Traffic only applies to inference workloads; a training config
    // with serving enabled builds no server and reports zeroes.
    TrafficSpec t;
    exp::RunConfig cfg = servingScenario(t);
    cfg.ml = wl::MlWorkload::Cnn1;  // training workload
    exp::Scenario s = exp::buildScenario(cfg);
    EXPECT_EQ(s.server, nullptr);
    exp::RunResult r = exp::measureScenario(s, cfg);
    EXPECT_EQ(r.reqArrivals, 0u);
    EXPECT_EQ(r.reqCompleted, 0u);
}

TEST(ServeScenario, PercentilesMatchTheHistogramExactly)
{
    TrafficSpec t;
    exp::RunConfig cfg = servingScenario(t);
    exp::Scenario s = exp::buildScenario(cfg);
    ASSERT_NE(s.server, nullptr);
    exp::RunResult r = exp::measureScenario(s, cfg);

    const sim::LatencyHistogram &h = s.server->latency();
    ASSERT_GT(h.count(), 0u);
    EXPECT_DOUBLE_EQ(r.reqP99, h.percentile(99.0));
    EXPECT_DOUBLE_EQ(r.reqP999, h.percentile(99.9));
    EXPECT_DOUBLE_EQ(r.reqP9999, h.percentile(99.99));

    // The manifest's histogram summary reports the same quantiles,
    // rendered through the same number formatter.
    trace::RunManifest man;
    man.addHistogram("request_latency_s", h);
    const std::string json = man.toJson();
    EXPECT_NE(json.find("\"p99\": " +
                        trace::jsonNumber(h.percentile(99.0))),
              std::string::npos);
    EXPECT_NE(json.find("\"p999\": " +
                        trace::jsonNumber(h.percentile(99.9))),
              std::string::npos);
    EXPECT_NE(json.find("\"p9999\": " +
                        trace::jsonNumber(h.percentile(99.99))),
              std::string::npos);
}
