/**
 * @file
 * Tests for the Kelp runtime: Algorithm 1 decisions, Algorithm 2
 * configuration, the controllers, profiles, and the manager.
 */

#include <gtest/gtest.h>

#include "hal/fault_injector.hh"
#include "kelp/baseline.hh"
#include "kelp/configurator.hh"
#include "kelp/core_throttle.hh"
#include "kelp/kelp_controller.hh"
#include "kelp/manager.hh"
#include "kelp/profile.hh"
#include "node/node.hh"
#include "node/platform.hh"
#include "sim/rng.hh"
#include "trace/decision_log.hh"
#include "workload/batch_task.hh"

using namespace kelp;
using namespace kelp::runtime;

namespace {

AppProfile
testProfile()
{
    AppProfile p;
    p.workload = "test";
    p.socketBw = {70.0, 45.0};
    p.latency = {150.0, 110.0};
    p.saturation = {0.10, 0.02};
    p.hiSubBw = {25.0, 12.0};
    return p;
}

} // namespace

TEST(Watermarks, HighLowBands)
{
    Watermarks w{10.0, 5.0};
    EXPECT_TRUE(w.isHigh(11.0));
    EXPECT_FALSE(w.isHigh(10.0));
    EXPECT_TRUE(w.isLow(4.0));
    EXPECT_FALSE(w.isLow(5.0));
    EXPECT_FALSE(w.isHigh(7.0));
    EXPECT_FALSE(w.isLow(7.0));
}

TEST(Algorithm1, QuietSystemBoostsBoth)
{
    KelpMeasurements m{30.0, 100.0, 0.0, 5.0};
    KelpDecision d = decideActions(testProfile(), m);
    EXPECT_EQ(d.actionH, Action::Boost);
    EXPECT_EQ(d.actionL, Action::Boost);
}

TEST(Algorithm1, HighSocketBwThrottlesLow)
{
    KelpMeasurements m{80.0, 100.0, 0.0, 5.0};
    KelpDecision d = decideActions(testProfile(), m);
    EXPECT_EQ(d.actionL, Action::Throttle);
    EXPECT_EQ(d.actionH, Action::Boost);  // hi subdomain still quiet
}

TEST(Algorithm1, HighLatencyThrottlesBoth)
{
    KelpMeasurements m{30.0, 200.0, 0.0, 5.0};
    KelpDecision d = decideActions(testProfile(), m);
    EXPECT_EQ(d.actionH, Action::Throttle);
    EXPECT_EQ(d.actionL, Action::Throttle);
}

TEST(Algorithm1, HighSaturationThrottlesLowOnly)
{
    KelpMeasurements m{30.0, 100.0, 0.5, 5.0};
    KelpDecision d = decideActions(testProfile(), m);
    EXPECT_EQ(d.actionL, Action::Throttle);
    EXPECT_EQ(d.actionH, Action::Boost);
}

TEST(Algorithm1, HighHiSubBwThrottlesBackfill)
{
    KelpMeasurements m{30.0, 100.0, 0.0, 30.0};
    KelpDecision d = decideActions(testProfile(), m);
    EXPECT_EQ(d.actionH, Action::Throttle);
}

TEST(Algorithm1, MiddleBandIsNop)
{
    KelpMeasurements m{55.0, 130.0, 0.05, 18.0};
    KelpDecision d = decideActions(testProfile(), m);
    EXPECT_EQ(d.actionH, Action::Nop);
    EXPECT_EQ(d.actionL, Action::Nop);
}

TEST(Algorithm1, BoostRequiresAllSignalsLow)
{
    // Saturation in the middle band blocks the low-priority boost.
    KelpMeasurements m{30.0, 100.0, 0.05, 5.0};
    KelpDecision d = decideActions(testProfile(), m);
    EXPECT_EQ(d.actionL, Action::Nop);
    EXPECT_EQ(d.actionH, Action::Boost);
}

TEST(Algorithm2, ThrottleHalvesPrefetchersFirst)
{
    Configurator c({0, 8, 1, 12});
    ResourceState s{0, 12, 12};
    c.configLoPriority(Action::Throttle, s);
    EXPECT_EQ(s.prefetcherNumL, 6);
    EXPECT_EQ(s.coreNumL, 12);
    c.configLoPriority(Action::Throttle, s);
    EXPECT_EQ(s.prefetcherNumL, 3);
    c.configLoPriority(Action::Throttle, s);
    c.configLoPriority(Action::Throttle, s);
    EXPECT_EQ(s.prefetcherNumL, 0);
    EXPECT_EQ(s.coreNumL, 12);
}

TEST(Algorithm2, CoresShedAfterPrefetchersExhausted)
{
    Configurator c({0, 8, 1, 12});
    ResourceState s{0, 12, 0};
    c.configLoPriority(Action::Throttle, s);
    EXPECT_EQ(s.coreNumL, 11);
    // Floor at minCoreL.
    s.coreNumL = 1;
    c.configLoPriority(Action::Throttle, s);
    EXPECT_EQ(s.coreNumL, 1);
}

TEST(Algorithm2, BoostRestoresPrefetchersBeforeCores)
{
    Configurator c({0, 8, 1, 12});
    ResourceState s{0, 6, 2};
    c.configLoPriority(Action::Boost, s);
    EXPECT_EQ(s.prefetcherNumL, 3);
    EXPECT_EQ(s.coreNumL, 6);
    s.prefetcherNumL = 6;  // all prefetchers on
    c.configLoPriority(Action::Boost, s);
    EXPECT_EQ(s.coreNumL, 7);
}

TEST(Algorithm2, BoostCapsAtMax)
{
    Configurator c({0, 8, 1, 12});
    ResourceState s{0, 12, 12};
    c.configLoPriority(Action::Boost, s);
    EXPECT_EQ(s.coreNumL, 12);
    EXPECT_EQ(s.prefetcherNumL, 12);
}

TEST(Algorithm2, HiPriorityOneCoreAtATime)
{
    Configurator c({0, 8, 1, 12});
    ResourceState s{3, 12, 12};
    c.configHiPriority(Action::Boost, s);
    EXPECT_EQ(s.coreNumH, 4);
    c.configHiPriority(Action::Throttle, s);
    c.configHiPriority(Action::Throttle, s);
    EXPECT_EQ(s.coreNumH, 2);
}

TEST(Algorithm2, HiPriorityLimits)
{
    Configurator c({0, 2, 1, 12});
    ResourceState s{2, 12, 12};
    c.configHiPriority(Action::Boost, s);
    EXPECT_EQ(s.coreNumH, 2);
    s.coreNumH = 0;
    c.configHiPriority(Action::Throttle, s);
    EXPECT_EQ(s.coreNumH, 0);
}

TEST(Algorithm2, NopChangesNothing)
{
    Configurator c({0, 8, 1, 12});
    ResourceState s{3, 7, 5};
    c.configHiPriority(Action::Nop, s);
    c.configLoPriority(Action::Nop, s);
    EXPECT_EQ(s.coreNumH, 3);
    EXPECT_EQ(s.coreNumL, 7);
    EXPECT_EQ(s.prefetcherNumL, 5);
}

TEST(Algorithm2, PrefetcherInvariant)
{
    Configurator c({0, 8, 1, 12});
    ResourceState s{0, 3, 8};  // more prefetchers than cores
    c.configLoPriority(Action::Nop, s);
    EXPECT_LE(s.prefetcherNumL, s.coreNumL);
}

TEST(Algorithm2, BadLimitsPanic)
{
    EXPECT_DEATH(Configurator({5, 2, 1, 12}), "hi-priority");
    EXPECT_DEATH(Configurator({0, 2, 8, 4}), "lo-priority");
}

TEST(Profile, DefaultsScaleWithPlatform)
{
    auto spec = node::platformFor(accel::Kind::CloudTpu);
    AppProfile p = defaultProfile(wl::MlWorkload::Cnn1, spec);
    EXPECT_NEAR(p.socketBw.hi, 0.70 * 115.2, 0.1);
    EXPECT_GT(p.latency.hi, spec.mem.socket.baseLatency);
    EXPECT_GT(p.saturation.hi, p.saturation.lo);
    // Below the distress threshold: throttle before global
    // backpressure fires.
    EXPECT_LT(p.socketBw.hi,
              spec.mem.socket.distressThreshold * 115.2);
}

TEST(Profile, Cnn3ToleratesOwnSaturation)
{
    // CNN3's parameter server saturates its own subdomain in bursts:
    // its profile must tolerate more saturation and latency than the
    // in-feed workloads, but cap backfill tightly (its subdomain has
    // no bandwidth to spare).
    auto spec = node::platformFor(accel::Kind::Gpu);
    AppProfile cnn3 = defaultProfile(wl::MlWorkload::Cnn3, spec);
    auto tpu = node::platformFor(accel::Kind::TpuV1);
    AppProfile rnn1 = defaultProfile(wl::MlWorkload::Rnn1, tpu);
    EXPECT_GT(cnn3.saturation.hi, rnn1.saturation.hi);
    EXPECT_GT(cnn3.latency.hi / spec.mem.socket.baseLatency,
              rnn1.latency.hi / tpu.mem.socket.baseLatency);
    EXPECT_LT(cnn3.hiSubBw.hi / spec.mem.socket.peakBw,
              rnn1.hiSubBw.hi / tpu.mem.socket.peakBw);
}

TEST(Profile, CoreThrottleIsLooser)
{
    auto spec = node::platformFor(accel::Kind::CloudTpu);
    AppProfile kelp_p = defaultProfile(wl::MlWorkload::Cnn1, spec);
    AppProfile ct = coreThrottleProfile(wl::MlWorkload::Cnn1, spec);
    EXPECT_GT(ct.socketBw.hi, kelp_p.socketBw.hi);
    EXPECT_GT(ct.latency.hi, kelp_p.latency.hi);
}

namespace {

/** A node with an ML group (sub 0) and a CPU group (sub 1). */
struct RuntimeFixture
{
    node::Node node{node::platformFor(accel::Kind::TpuV1)};
    sim::GroupId ml, cpu;
    wl::BatchTask *aggressor = nullptr;

    explicit RuntimeFixture(int aggressor_threads = 8,
                            bool split_ml = false)
    {
        node.setSncEnabled(true);
        ml = node.groups().create("ml", hal::Priority::High).id();
        cpu = node.groups().create("batch", hal::Priority::Low).id();
        if (split_ml) {
            // CoreThrottle-style placement: ML spread across the
            // socket, leaving both halves open for the CPU mask.
            node.knobs().setCores(ml, 0, 0, 2);
            node.knobs().setCores(ml, 0, 1, 2);
        } else {
            node.knobs().setCores(ml, 0, 0, 4);
        }
        node.knobs().setPrefetchersEnabled(ml, 4);
        wl::HostPhaseParams p;
        p.cpuFrac = 0.05;
        p.bwPerCore = 9.0;
        p.latencySensitivity = 0.15;
        p.prefetch = {0.5, 0.75};
        p.llcFootprintMb = 512.0;
        p.llcHitMax = 0.02;
        aggressor = &node.add(std::make_unique<wl::BatchTask>(
            "agg", cpu, aggressor_threads, p));
    }

    void
    runTicks(int ticks)
    {
        for (int i = 0; i < ticks; ++i)
            node.tick(i * 1e-4, 1e-4);
    }
};

} // namespace

TEST(KelpController, ThrottlesUnderSaturation)
{
    RuntimeFixture f(8);  // 72 GiB/s demand on a 38.4 GiB/s MC
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    ConfigLimits limits{0, 4, 1, 8};
    ResourceState init{0, 8, 8};
    KelpController ctl(bind, testProfile(), limits, init);

    f.runTicks(200);
    ctl.sample(0.02);
    EXPECT_EQ(ctl.lastDecision().actionL, Action::Throttle);
    EXPECT_EQ(ctl.state().prefetcherNumL, 4);
    // Knobs actually applied to the group (backfilled cores keep
    // their prefetchers).
    EXPECT_EQ(f.node.groups().get(f.cpu).prefetchersEnabled(),
              ctl.state().prefetcherNumL + ctl.state().coreNumH);
}

TEST(KelpController, ConvergesToRelievedSaturation)
{
    RuntimeFixture f(8);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    KelpController ctl(bind, testProfile(), {0, 4, 1, 8},
                       {0, 8, 8});
    double last_sat = 1.0;
    for (int round = 0; round < 12; ++round) {
        f.runTicks(100);
        ctl.sample(round);
        last_sat = f.node.memSystem().saturation(0);
    }
    // Prefetchers (and possibly cores) got cut until the distress
    // signal cleared.
    EXPECT_LT(ctl.state().prefetcherNumL, 8);
    EXPECT_LT(last_sat, 0.6);
}

TEST(KelpController, BoostsQuietSystem)
{
    RuntimeFixture f(1);  // tiny aggressor
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    KelpController ctl(bind, testProfile(), {0, 4, 1, 8},
                       {0, 4, 1});
    for (int round = 0; round < 12; ++round) {
        f.runTicks(100);
        ctl.sample(round);
    }
    EXPECT_EQ(ctl.state().coreNumL, 8);
    EXPECT_GT(ctl.state().coreNumH, 0);  // backfill grew
}

TEST(KelpController, KpsdNeverBackfills)
{
    RuntimeFixture f(1);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    KelpController ctl(bind, testProfile(), {0, 0, 1, 8},
                       {0, 4, 4});
    for (int round = 0; round < 10; ++round) {
        f.runTicks(100);
        ctl.sample(round);
    }
    EXPECT_EQ(ctl.state().coreNumH, 0);
    EXPECT_STREQ(ctl.name(), "KP-SD");
}

TEST(KelpController, NameReflectsBackfill)
{
    RuntimeFixture f(1);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    KelpController kp(bind, testProfile(), {0, 4, 1, 8}, {0, 4, 4});
    EXPECT_STREQ(kp.name(), "KP");
}

TEST(CoreThrottle, ShedsCoresUnderPressure)
{
    RuntimeFixture f(10, true);
    f.node.setSncEnabled(false);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    CoreThrottleController ctl(bind, testProfile(), 1, 12, 12);
    for (int round = 0; round < 6; ++round) {
        f.runTicks(100);
        ctl.sample(round);
    }
    EXPECT_LT(ctl.cores(), 12);
    EXPECT_GE(ctl.cores(), 1);
}

TEST(CoreThrottle, RecoversWhenQuiet)
{
    RuntimeFixture f(1, true);
    f.node.setSncEnabled(false);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    CoreThrottleController ctl(bind, testProfile(), 1, 12, 2);
    for (int round = 0; round < 12; ++round) {
        f.runTicks(100);
        ctl.sample(round);
    }
    EXPECT_EQ(ctl.cores(), 12);
}

TEST(CoreThrottle, AuditsEveryCoreAdjustment)
{
    // Regression for the audit gap kelp-analyze found: CT used to
    // actuate with no DecisionLog trail at all. Every core-count
    // change must now appear as a "ct-adjust" event carrying the
    // trigger sample and an old -> new core delta.
    RuntimeFixture f(10, true);
    f.node.setSncEnabled(false);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    CoreThrottleController ctl(bind, testProfile(), 1, 12, 12);
    trace::DecisionLog log;
    ctl.setDecisionLog(&log);
    for (int round = 0; round < 6; ++round) {
        f.runTicks(100);
        ctl.sample(round);
    }
    ASSERT_LT(ctl.cores(), 12);

    std::vector<const trace::DecisionEvent *> adjusts;
    for (const auto &ev : log.events())
        if (ev.kind == "ct-adjust")
            adjusts.push_back(&ev);
    ASSERT_FALSE(adjusts.empty());
    int prev = 12;
    for (const auto *ev : adjusts) {
        EXPECT_EQ(ev->loCoresOld, prev);
        EXPECT_EQ(ev->loCoresNew, prev - 1) << ev->reason;
        EXPECT_FALSE(ev->reason.empty());
        EXPECT_GT(ev->bwS, 0.0);
        prev = ev->loCoresNew;
    }
    // The trail replays to the live state.
    EXPECT_EQ(prev, ctl.cores());
}

TEST(CoreThrottle, AuditsActuationFailureAndRecovery)
{
    RuntimeFixture f(1, true);
    f.node.setSncEnabled(false);
    hal::FaultyKnobSink knobs(f.node.knobs(), hal::FaultPlan{},
                              sim::Rng(11));
    Bindings bind{&f.node, f.ml, f.cpu, 0, nullptr, &knobs};
    Hardening hard;
    hard.enabled = true;
    CoreThrottleController ctl(bind, testProfile(), 1, 12, 2, hard);
    trace::DecisionLog log;
    ctl.setDecisionLog(&log);

    // Knobs go dark: the first failed write must log one
    // actuation-fail edge (not one per retry).
    hal::FaultPlan dark;
    dark.knobFailProb = 1.0;
    knobs.setPlan(dark);
    double now = 0.0;
    for (int i = 0; i < 4; ++i) {
        f.runTicks(10);
        ctl.sample(now++);
    }
    int fails = 0, recoveries = 0;
    for (const auto &ev : log.events()) {
        if (ev.kind == "actuation-fail")
            ++fails;
        if (ev.kind == "actuation-recovered")
            ++recoveries;
    }
    EXPECT_EQ(fails, 1);
    EXPECT_EQ(recoveries, 0);

    // Knobs come back: the retry loop lands the pending write and
    // logs exactly one recovery edge.
    knobs.setPlan(hal::FaultPlan{});
    for (int i = 0; i < 8; ++i) {
        f.runTicks(10);
        ctl.sample(now++);
    }
    recoveries = 0;
    for (const auto &ev : log.events())
        if (ev.kind == "actuation-recovered")
            ++recoveries;
    EXPECT_EQ(recoveries, 1);
}

TEST(Baseline, TouchesNothing)
{
    RuntimeFixture f(4);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    BaselineController ctl(bind);
    int cores_before = f.node.groups().get(f.cpu).cores().total();
    ctl.sample(0.0);
    EXPECT_EQ(f.node.groups().get(f.cpu).cores().total(),
              cores_before);
    EXPECT_STREQ(ctl.name(), "BL");
}

TEST(Manager, SamplesAtPeriod)
{
    RuntimeFixture f(4);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto ctl = std::make_unique<BaselineController>(bind);
    RuntimeManager mgr(std::move(ctl), 0.01);
    sim::Engine e(1e-4);
    f.node.attach(e);
    mgr.attach(e);
    e.run(0.055);
    EXPECT_EQ(mgr.samples(), 5u);
}

TEST(Manager, TracksParameterAverages)
{
    RuntimeFixture f(8);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto ctl = std::make_unique<KelpController>(
        bind, testProfile(), ConfigLimits{0, 4, 1, 8},
        ResourceState{0, 8, 8});
    RuntimeManager mgr(std::move(ctl), 0.01);
    sim::Engine e(1e-4);
    f.node.attach(e);
    mgr.attach(e);
    e.run(0.1);
    EXPECT_GT(mgr.avgLoCores(), 0.0);
    EXPECT_LT(mgr.avgLoPrefetchers(), 8.0);  // some throttling seen
}

TEST(Manager, AveragesAreZeroBeforeFirstSample)
{
    // A manager that has never sampled must report zeroed averages,
    // not a divide-by-zero artifact.
    RuntimeFixture f(4);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto ctl = std::make_unique<BaselineController>(bind);
    RuntimeManager mgr(std::move(ctl), 0.01);
    EXPECT_EQ(mgr.samples(), 0u);
    EXPECT_EQ(mgr.avgLoCores(), 0.0);
    EXPECT_EQ(mgr.avgLoPrefetchers(), 0.0);
    EXPECT_EQ(mgr.avgHiBackfill(), 0.0);
    EXPECT_EQ(mgr.timeInFailSafe(), 0.0);
}

namespace {

hal::CounterSample
plausibleSample(double t, double jitter = 0.0)
{
    hal::CounterSample s;
    s.windowEnd = t;
    s.socketBw = 50.0 + jitter;
    s.memLatency = 120.0 + jitter;
    s.saturation = 0.05;
    s.subdomainBw = {20.0 + jitter, 30.0};
    s.subdomainLat = {110.0, 130.0};
    return s;
}

Hardening
testHardening()
{
    Hardening h;
    h.enabled = true;
    return h;
}

/**
 * Controller whose health report is scripted directly, isolating the
 * manager's watchdog logic from any real feedback loop.
 */
class ScriptedController : public Controller
{
  public:
    explicit ScriptedController(const Bindings &bindings)
        : Controller(bindings)
    {
    }

    void sample(sim::Time now) override { (void)now; }
    ControllerParams params() const override { return {}; }
    const char *name() const override { return "scripted"; }
    SampleHealth lastHealth() const override { return health; }
    void setFailSafe(bool on) override { failSafe_ = on; }
    bool failSafe() const override { return failSafe_; }
    bool probeActuation() override
    {
        ++probeCalls;
        return probeOk;
    }

    SampleHealth health;
    bool probeOk = false;
    int probeCalls = 0;

  private:
    bool failSafe_ = false;
};

} // namespace

TEST(SampleGuard, RejectsDropoutAndStaleSamples)
{
    SampleGuard g(testHardening());
    EXPECT_TRUE(g.accept(plausibleSample(1.0)));
    EXPECT_TRUE(g.primed());

    // Dropout: the zeroed sample (latency 0, timestamp 0) is
    // impossible on healthy hardware.
    EXPECT_FALSE(g.accept(hal::CounterSample{}));

    // A wedged/cached source repeats its timestamp: rejected even
    // though the measurements themselves look plausible.
    hal::CounterSample frozen = plausibleSample(2.0);
    EXPECT_TRUE(g.accept(frozen));
    EXPECT_FALSE(g.accept(frozen));
    EXPECT_FALSE(g.accept(frozen));
    EXPECT_EQ(g.rejected(), 3u);

    // Identical measurements under a *fresh* timestamp are a
    // converged system, not a fault.
    hal::CounterSample steady = frozen;
    steady.windowEnd = 3.0;
    EXPECT_TRUE(g.accept(steady));
}

TEST(SampleGuard, RejectsUpwardOutliersOnly)
{
    SampleGuard g(testHardening());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(g.accept(plausibleSample(1.0 + i, 0.1 * i)));

    // A 10x latency spike is rejected against the smoothed estimate.
    hal::CounterSample spike = plausibleSample(5.0);
    spike.memLatency *= 10.0;
    EXPECT_FALSE(g.accept(spike));

    // A sharp legitimate *drop* (the aggressor left) must pass, or
    // the controller could never re-open the taps.
    hal::CounterSample quiet = plausibleSample(6.0);
    quiet.socketBw = 2.0;
    quiet.subdomainBw[0] = 1.0;
    EXPECT_TRUE(g.accept(quiet));
}

TEST(SampleGuard, SmoothsAcceptedSamples)
{
    Hardening h = testHardening();
    h.ewmaAlpha = 0.5;
    SampleGuard g(h);
    hal::CounterSample a = plausibleSample(1.0);
    a.socketBw = 40.0;
    EXPECT_TRUE(g.accept(a));
    EXPECT_DOUBLE_EQ(g.smoothed().socketBw, 40.0);  // first primes

    hal::CounterSample b = plausibleSample(2.0);
    b.socketBw = 60.0;
    EXPECT_TRUE(g.accept(b));
    EXPECT_DOUBLE_EQ(g.smoothed().socketBw, 50.0);  // halfway

    g.reset();
    EXPECT_FALSE(g.primed());

    // After a reset the staleness clock survives: a cached sample
    // from before the reset is still rejected...
    EXPECT_FALSE(g.accept(b));
    // ...and fresh telemetry re-primes the filter.
    EXPECT_TRUE(g.accept(plausibleSample(3.0)));
    EXPECT_TRUE(g.primed());
}

TEST(SampleGuard, FirstSampleAlwaysPrimes)
{
    // With no history there is nothing to compare against: the first
    // plausible sample must be accepted however extreme it looks
    // relative to the watermarks, or a controller started under load
    // would reject telemetry forever.
    SampleGuard g(testHardening());
    EXPECT_FALSE(g.primed());
    hal::CounterSample hot = plausibleSample(1.0);
    hot.socketBw = 120.0;
    hot.memLatency = 400.0;
    EXPECT_TRUE(g.accept(hot));
    EXPECT_TRUE(g.primed());
    EXPECT_DOUBLE_EQ(g.smoothed().socketBw, 120.0);
}

TEST(SampleGuard, AllRejectedStreakNeverPrimes)
{
    // A source that only ever produces garbage must leave the guard
    // unprimed (and every rejection counted) rather than eventually
    // letting one through out of desperation.
    SampleGuard g(testHardening());
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(g.accept(hal::CounterSample{}));
    EXPECT_FALSE(g.primed());
    EXPECT_EQ(g.rejected(), 10u);
}

TEST(SampleGuard, ResetReprimesWithoutBlendingOldState)
{
    // Round trip through a fail-safe episode: the post-reset EWMA
    // must restart from the first fresh sample alone, not blend with
    // the pre-reset estimate.
    Hardening h = testHardening();
    h.ewmaAlpha = 0.5;
    SampleGuard g(h);
    hal::CounterSample a = plausibleSample(1.0);
    a.socketBw = 40.0;
    EXPECT_TRUE(g.accept(a));
    hal::CounterSample b = plausibleSample(2.0);
    b.socketBw = 80.0;
    EXPECT_TRUE(g.accept(b));
    EXPECT_DOUBLE_EQ(g.smoothed().socketBw, 60.0);

    g.reset();
    hal::CounterSample c = plausibleSample(3.0);
    c.socketBw = 10.0;
    EXPECT_TRUE(g.accept(c));
    // Re-primed exactly: no trace of the old 60 GiB/s estimate.
    EXPECT_DOUBLE_EQ(g.smoothed().socketBw, 10.0);
    hal::CounterSample d = plausibleSample(4.0);
    d.socketBw = 20.0;
    EXPECT_TRUE(g.accept(d));
    EXPECT_DOUBLE_EQ(g.smoothed().socketBw, 15.0);
}

TEST(Watchdog, EntersAfterConsecutiveBadAndRecovers)
{
    RuntimeFixture f(1);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto owned = std::make_unique<ScriptedController>(bind);
    ScriptedController *ctl = owned.get();
    RuntimeManager mgr(std::move(owned), 0.01);
    WatchdogConfig wd;
    wd.enabled = true;  // thresholds 3 / 3
    mgr.setWatchdog(wd);
    sim::Engine e(1e-4);
    f.node.attach(e);
    mgr.attach(e);

    // Half-period offsets keep run() boundaries away from the exact
    // sampling instants (floating-point tick accumulation).
    e.run(0.035);  // 3 healthy samples
    EXPECT_FALSE(mgr.inFailSafe());

    ctl->health.sampleValid = false;
    e.run(0.02);  // 2 bad: below the threshold
    EXPECT_FALSE(mgr.inFailSafe());
    e.run(0.01);  // 3rd consecutive bad: fail-safe
    EXPECT_TRUE(mgr.inFailSafe());
    EXPECT_TRUE(ctl->failSafe());
    EXPECT_EQ(mgr.failSafeEntries(), 1u);

    ctl->health.sampleValid = true;
    e.run(0.02);  // 2 good: still held
    EXPECT_TRUE(mgr.inFailSafe());
    e.run(0.01);  // 3rd consecutive good: re-armed
    EXPECT_FALSE(mgr.inFailSafe());
    EXPECT_FALSE(ctl->failSafe());
    EXPECT_EQ(mgr.failSafeExits(), 1u);
    EXPECT_GT(mgr.timeInFailSafe(), 0.0);

    // The transition trace records both edges in order.
    ASSERT_EQ(mgr.modeTrace().size(), 2u);
    EXPECT_TRUE(mgr.modeTrace()[0].failSafe);
    EXPECT_FALSE(mgr.modeTrace()[1].failSafe);
    EXPECT_LT(mgr.modeTrace()[0].time, mgr.modeTrace()[1].time);
}

TEST(Watchdog, InterruptedBadStreakDoesNotTrip)
{
    RuntimeFixture f(1);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto owned = std::make_unique<ScriptedController>(bind);
    ScriptedController *ctl = owned.get();
    RuntimeManager mgr(std::move(owned), 0.01);
    WatchdogConfig wd;
    wd.enabled = true;
    mgr.setWatchdog(wd);
    sim::Engine e(1e-4);
    f.node.attach(e);
    mgr.attach(e);

    // bad, bad, good, bad, bad, good, ... never 3 in a row. The
    // initial half-period keeps run() boundaries mid-period.
    e.run(0.005);
    for (int i = 0; i < 4; ++i) {
        ctl->health.actuationOk = false;
        e.run(0.02);
        ctl->health.actuationOk = true;
        e.run(0.01);
    }
    EXPECT_FALSE(mgr.inFailSafe());
    EXPECT_EQ(mgr.failSafeEntries(), 0u);
    EXPECT_TRUE(mgr.modeTrace().empty());
}

TEST(Watchdog, ProbeEscapesHeldBadVerdict)
{
    // The healthy-streak exit needs recoverThreshold consecutive
    // good samples, which a controller whose health report stays bad
    // (e.g. lingering retry state) can never assemble. The knob-write
    // probe is the bounded escape hatch: the moment it lands, the
    // watchdog re-arms.
    RuntimeFixture f(1);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto owned = std::make_unique<ScriptedController>(bind);
    ScriptedController *ctl = owned.get();
    RuntimeManager mgr(std::move(owned), 0.01);
    WatchdogConfig wd;
    wd.enabled = true;
    mgr.setWatchdog(wd);
    sim::Engine e(1e-4);
    f.node.attach(e);
    mgr.attach(e);

    // Telemetry stays valid but actuation reports bad forever.
    ctl->health.actuationOk = false;
    ctl->probeOk = true;
    e.run(0.035);  // 3 consecutive bad: trip
    EXPECT_TRUE(mgr.inFailSafe());

    // One more sample: the probe fires immediately (wait 1 -> 0),
    // lands, and re-arms despite the still-bad health verdict.
    e.run(0.01);
    EXPECT_FALSE(mgr.inFailSafe());
    EXPECT_FALSE(ctl->failSafe());
    EXPECT_EQ(mgr.failSafeExits(), 1u);
    EXPECT_EQ(mgr.probes(), 1u);
    EXPECT_EQ(ctl->probeCalls, 1);
}

TEST(Watchdog, ProbeBacksOffExponentiallyWhileDeadAndIsCapped)
{
    RuntimeFixture f(1);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto owned = std::make_unique<ScriptedController>(bind);
    ScriptedController *ctl = owned.get();
    RuntimeManager mgr(std::move(owned), 0.01);
    WatchdogConfig wd;
    wd.enabled = true;
    wd.probeBackoffCap = 4;
    mgr.setWatchdog(wd);
    sim::Engine e(1e-4);
    f.node.attach(e);
    mgr.attach(e);

    ctl->health.actuationOk = false;  // probes keep failing
    e.run(0.035);  // trip
    ASSERT_TRUE(mgr.inFailSafe());

    // 20 more fail-safe samples. Probe schedule with cap 4: samples
    // 1, 2, 4, 8, 12, 16, 20 after the trip -- 7 probes, not 20.
    e.run(0.20);
    EXPECT_TRUE(mgr.inFailSafe());
    EXPECT_EQ(mgr.probes(), 7u);
    EXPECT_EQ(mgr.failSafeExits(), 0u);
}

TEST(Watchdog, ProbeWaitsForValidTelemetry)
{
    // While telemetry is dark a landing knob write proves nothing
    // about the feedback loop -- the watchdog must keep the safe
    // static partition pinned and not even probe.
    RuntimeFixture f(1);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto owned = std::make_unique<ScriptedController>(bind);
    ScriptedController *ctl = owned.get();
    RuntimeManager mgr(std::move(owned), 0.01);
    WatchdogConfig wd;
    wd.enabled = true;
    mgr.setWatchdog(wd);
    sim::Engine e(1e-4);
    f.node.attach(e);
    mgr.attach(e);

    ctl->health.sampleValid = false;
    ctl->probeOk = true;
    e.run(0.1);
    EXPECT_TRUE(mgr.inFailSafe());
    EXPECT_EQ(mgr.probes(), 0u);
    EXPECT_EQ(ctl->probeCalls, 0);
}

TEST(Watchdog, ProbeDisabledByZeroCap)
{
    RuntimeFixture f(1);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto owned = std::make_unique<ScriptedController>(bind);
    ScriptedController *ctl = owned.get();
    RuntimeManager mgr(std::move(owned), 0.01);
    WatchdogConfig wd;
    wd.enabled = true;
    wd.probeBackoffCap = 0;
    mgr.setWatchdog(wd);
    sim::Engine e(1e-4);
    f.node.attach(e);
    mgr.attach(e);

    ctl->health.actuationOk = false;
    ctl->probeOk = true;
    e.run(0.2);
    EXPECT_TRUE(mgr.inFailSafe());
    EXPECT_EQ(mgr.probes(), 0u);
    EXPECT_EQ(ctl->probeCalls, 0);
}

TEST(Watchdog, DisabledNeverIntervenes)
{
    RuntimeFixture f(1);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto owned = std::make_unique<ScriptedController>(bind);
    ScriptedController *ctl = owned.get();
    RuntimeManager mgr(std::move(owned), 0.01);  // watchdog off
    sim::Engine e(1e-4);
    f.node.attach(e);
    mgr.attach(e);
    ctl->health.sampleValid = false;
    e.run(0.1);
    EXPECT_FALSE(mgr.inFailSafe());
    EXPECT_EQ(mgr.failSafeEntries(), 0u);
}
