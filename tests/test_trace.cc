/**
 * @file
 * Tests for the structured observability layer: JSON helpers, the
 * Perfetto trace recorder, the decision audit log, run manifests, and
 * the guarantee that observability changes nothing it observes.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/scenario.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "trace/decision_log.hh"
#include "trace/json.hh"
#include "trace/run_manifest.hh"
#include "trace/telemetry.hh"
#include "trace/trace_recorder.hh"

using namespace kelp;

namespace {

/**
 * Minimal recursive-descent JSON parser -- enough to validate that
 * the exporters emit well-formed JSON and to query fields back out.
 * Throws std::runtime_error (via fail()) on malformed input, which
 * a test turns into a failure.
 */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    const JsonValue &operator[](const std::string &key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &why)
    {
        throw std::runtime_error(why + " at offset " +
                                 std::to_string(pos_));
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue value()
    {
        skipWs();
        char c = peek();
        JsonValue v;
        if (c == '{') {
            v.type = JsonValue::Type::Object;
            expect('{');
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                skipWs();
                std::string key = string();
                skipWs();
                expect(':');
                v.fields[key] = value();
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            v.type = JsonValue::Type::Array;
            expect('[');
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.items.push_back(value());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.type = JsonValue::Type::String;
            v.str = string();
            return v;
        }
        if (literal("null"))
            return v;
        if (literal("true")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (literal("false")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return v;
        }
        // Number.
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("unexpected character");
        v.type = JsonValue::Type::Number;
        v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
        return v;
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = peek();
            ++pos_;
            if (c == '"')
                return out;
            if (c == '\\') {
                char e = peek();
                ++pos_;
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("bad \\u escape");
                    unsigned code = static_cast<unsigned>(std::strtoul(
                        text_.substr(pos_, 4).c_str(), nullptr, 16));
                    pos_ += 4;
                    // Exporters only escape control chars this way.
                    out += static_cast<char>(code);
                    break;
                  }
                  default:
                    fail("bad escape");
                }
                continue;
            }
            out += c;
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace

TEST(Json, EscapesSpecials)
{
    EXPECT_EQ(trace::jsonString("a\"b\\c\nd"),
              "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(trace::jsonString(std::string("x\x01y")),
              "\"x\\u0001y\"");
}

TEST(Json, NumberFormats)
{
    EXPECT_EQ(trace::jsonNumber(3.0), "3");
    EXPECT_EQ(trace::jsonNumber(-41.0), "-41");
    EXPECT_EQ(trace::jsonNumber(0.5), "0.5");
    // Non-finite values are not valid JSON numbers.
    EXPECT_EQ(trace::jsonNumber(std::nan("")), "null");
    EXPECT_EQ(trace::jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(Json, RoundTripsDoubles)
{
    double v = 313.63086629254104;
    JsonValue parsed = parseJson(trace::jsonNumber(v));
    EXPECT_EQ(parsed.number, v);
}

TEST(TraceRecorder, EmitsParseableTraceEvents)
{
    trace::TraceRecorder rec;
    rec.addSpan(trace::TraceRecorder::Lane::Cpu, 1.0, 1.5, "host", 7);
    rec.addSpan(trace::TraceRecorder::Lane::Pcie, 1.5, 1.6, "pcie", 7);
    rec.addSpan(trace::TraceRecorder::Lane::Accel, 1.6, 2.0, "accel",
                7);
    rec.addInstant(2.0, "algorithm1", "action_l=THROTTLE");
    rec.addCounter(2.5, "socket_bw_gibps", 57.25);

    JsonValue doc = parseJson(rec.toJson());
    const JsonValue &events = doc["traceEvents"];
    ASSERT_EQ(events.type, JsonValue::Type::Array);

    int spans = 0, instants = 0, counters = 0, meta = 0;
    for (const JsonValue &ev : events.items) {
        const std::string &ph = ev["ph"].str;
        if (ph == "X") {
            ++spans;
            EXPECT_EQ(ev["pid"].number, 1.0);
        } else if (ph == "i") {
            ++instants;
            EXPECT_EQ(ev["s"].str, "t");
            EXPECT_EQ(ev["name"].str, "algorithm1");
            EXPECT_EQ(ev["args"]["detail"].str, "action_l=THROTTLE");
        } else if (ph == "C") {
            ++counters;
            EXPECT_EQ(ev["name"].str, "socket_bw_gibps");
            EXPECT_EQ(ev["args"]["value"].number, 57.25);
        } else if (ph == "M") {
            ++meta;
        }
    }
    EXPECT_EQ(spans, 3);
    EXPECT_EQ(instants, 1);
    EXPECT_EQ(counters, 1);
    // 3 process_name + 4 thread_name metadata records.
    EXPECT_EQ(meta, 7);

    // Timestamps are exported in microseconds.
    for (const JsonValue &ev : events.items) {
        if (ev["ph"].str == "X" && ev["name"].str == "host") {
            EXPECT_EQ(ev["ts"].number, 1.0e6);
            EXPECT_EQ(ev["dur"].number, 0.5e6);
            EXPECT_EQ(ev["args"]["iteration"].number, 7.0);
        }
    }
}

TEST(TraceRecorder, PhaseSinkMapsSegmentKindsToLanes)
{
    trace::TraceRecorder rec;
    auto sink = rec.phaseSink();
    sink(wl::TraceEvent{wl::SegmentKind::Host, 0.0, 0.1, 1});
    sink(wl::TraceEvent{wl::SegmentKind::Pcie, 0.1, 0.2, 1});
    sink(wl::TraceEvent{wl::SegmentKind::Accel, 0.2, 0.3, 1});

    JsonValue doc = parseJson(rec.toJson());
    std::map<std::string, double> laneOf;
    for (const JsonValue &ev : doc["traceEvents"].items)
        if (ev["ph"].str == "X")
            laneOf[ev["name"].str] = ev["tid"].number;
    EXPECT_EQ(laneOf["host"], 1.0);
    EXPECT_EQ(laneOf["pcie"], 2.0);
    EXPECT_EQ(laneOf["accel"], 3.0);
}

TEST(TraceRecorder, BackwardsSpanPanics)
{
    trace::TraceRecorder rec;
    EXPECT_DEATH(
        {
            sim::setContractMode(sim::ContractMode::Fatal);
            rec.addSpan(trace::TraceRecorder::Lane::Cpu, 2.0, 1.0,
                        "bad");
        },
        "span");
}

TEST(DecisionLog, RecordsAndRoundTripsJsonl)
{
    trace::DecisionLog log;
    trace::DecisionEvent ev;
    ev.time = 4.0;
    ev.kind = "algorithm1";
    ev.reason = "action_h=BOOST action_l=THROTTLE";
    ev.loCoresOld = 12;
    ev.loCoresNew = 12;
    ev.loPrefetchersOld = 12;
    ev.loPrefetchersNew = 6;
    ev.hiBackfillOld = 0;
    ev.hiBackfillNew = 1;
    ev.bwS = 57.27;
    ev.latS = 85.06;
    ev.satS = 0.59;
    ev.bwH = 4.31;
    log.append(ev);

    trace::DecisionEvent later = ev;
    later.time = 8.0;
    later.kind = "slo-rung";
    later.perfRatio = 0.91;
    log.append(later);

    ASSERT_EQ(log.size(), 2u);
    EXPECT_TRUE(log.events()[0].changedKnobs());

    std::string jsonl = log.toJsonl();
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < jsonl.size()) {
        size_t end = jsonl.find('\n', start);
        ASSERT_NE(end, std::string::npos);
        lines.push_back(jsonl.substr(start, end - start));
        start = end + 1;
    }
    ASSERT_EQ(lines.size(), 2u);

    JsonValue first = parseJson(lines[0]);
    EXPECT_EQ(first["t"].number, 4.0);
    EXPECT_EQ(first["kind"].str, "algorithm1");
    EXPECT_EQ(first["lo_prefetchers"].items[0].number, 12.0);
    EXPECT_EQ(first["lo_prefetchers"].items[1].number, 6.0);
    EXPECT_EQ(first["hi_backfill"].items[1].number, 1.0);
    EXPECT_EQ(first["trigger"]["bw_s"].number, 57.27);
    EXPECT_EQ(first["reason"].str,
              "action_h=BOOST action_l=THROTTLE");

    JsonValue second = parseJson(lines[1]);
    EXPECT_EQ(second["kind"].str, "slo-rung");
    EXPECT_EQ(second["perf_ratio"].number, 0.91);
}

TEST(DecisionLog, EnforcesMonotonicTimePerContext)
{
    trace::DecisionLog log;
    trace::DecisionEvent ev;
    ev.kind = "algorithm1";
    ev.time = 10.0;
    log.append(ev);
    EXPECT_DEATH(
        {
            sim::setContractMode(sim::ContractMode::Fatal);
            trace::DecisionEvent bad;
            bad.kind = "algorithm1";
            bad.time = 5.0;
            log.append(bad);
        },
        "order");

    // A fresh context restarts the clock (benches pool runs).
    log.setContext("second-run");
    trace::DecisionEvent ok;
    ok.kind = "algorithm1";
    ok.time = 2.0;
    log.append(ok);
    EXPECT_EQ(log.size(), 2u);

    JsonValue tagged = parseJson(
        log.toJsonl().substr(log.toJsonl().rfind("{\"t\":2")));
    EXPECT_EQ(tagged["run"].str, "second-run");
}

TEST(RunManifest, PercentilesMatchHistogramExactly)
{
    sim::LatencyHistogram h(1e-6, 10.0);
    for (int i = 1; i <= 1000; ++i)
        h.add(1e-4 * i);

    trace::RunManifest man;
    man.set("tool", "test");
    man.addHistogram("lat", h);

    JsonValue doc = parseJson(man.toJson());
    EXPECT_EQ(doc["schema"].str, "kelp-run-manifest-v1");
    EXPECT_FALSE(doc["git_describe"].str.empty());
    EXPECT_EQ(doc["tool"].str, "test");

    const JsonValue &lat = doc["histograms"]["lat"];
    EXPECT_EQ(lat["count"].number, 1000.0);
    EXPECT_EQ(lat["mean"].number, h.mean());
    EXPECT_EQ(lat["p50"].number, h.percentile(50.0));
    EXPECT_EQ(lat["p90"].number, h.percentile(90.0));
    EXPECT_EQ(lat["p95"].number, h.percentile(95.0));
    EXPECT_EQ(lat["p99"].number, h.percentile(99.0));
    EXPECT_EQ(lat["p999"].number, h.percentile(99.9));
}

TEST(RunManifest, BooleansAndStringsRender)
{
    trace::RunManifest man;
    man.set("flag_on", true);
    man.set("flag_off", false);
    man.set("note", "a \"quoted\" string");
    JsonValue doc = parseJson(man.toJson());
    EXPECT_EQ(doc["flag_on"].type, JsonValue::Type::Bool);
    EXPECT_TRUE(doc["flag_on"].boolean);
    EXPECT_FALSE(doc["flag_off"].boolean);
    EXPECT_EQ(doc["note"].str, "a \"quoted\" string");
}

namespace {

/** Short KP run used by the invariance tests. */
exp::RunConfig
shortKpConfig()
{
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Rnn1;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 4;
    cfg.config = exp::ConfigKind::KP;
    cfg.warmup = 4.0;
    cfg.measure = 8.0;
    cfg.samplePeriod = 2.0;
    return cfg;
}

/** Field-by-field exact equality of two RunResults. */
void
expectSameResult(const exp::RunResult &a, const exp::RunResult &b)
{
    EXPECT_EQ(a.mlPerf, b.mlPerf);
    EXPECT_EQ(a.mlTailP95, b.mlTailP95);
    EXPECT_EQ(a.cpuThroughput, b.cpuThroughput);
    EXPECT_EQ(a.avgLoCores, b.avgLoCores);
    EXPECT_EQ(a.avgLoPrefetchers, b.avgLoPrefetchers);
    EXPECT_EQ(a.avgHiBackfill, b.avgHiBackfill);
    EXPECT_EQ(a.timeInFailSafe, b.timeInFailSafe);
    EXPECT_EQ(a.failSafeEntries, b.failSafeEntries);
    EXPECT_EQ(a.avgSaturation, b.avgSaturation);
    EXPECT_EQ(a.avgSocketBw, b.avgSocketBw);
    EXPECT_EQ(a.restarts, b.restarts);
}

} // namespace

TEST(Observability, OffPathMatchesPlainRunExactly)
{
    exp::RunConfig cfg = shortKpConfig();
    exp::RunResult plain = exp::runScenario(cfg);

    // A default Observability installs nothing.
    exp::Scenario s = exp::buildScenario(cfg, exp::Observability{});
    exp::RunResult off = exp::measureScenario(s, cfg);
    expectSameResult(plain, off);
}

TEST(Observability, SinksDoNotPerturbResults)
{
    exp::RunConfig cfg = shortKpConfig();
    exp::RunResult plain = exp::runScenario(cfg);

    trace::Telemetry tel;
    trace::TraceRecorder rec;
    trace::DecisionLog decisions;
    exp::Observability obs;
    obs.telemetry = &tel;
    obs.recorder = &rec;
    obs.decisions = &decisions;
    exp::Scenario s = exp::buildScenario(cfg, obs);
    exp::RunResult instrumented = exp::measureScenario(s, cfg);

    // Probes, the phase sink, and the audit log only read: the
    // instrumented run must reproduce the plain run bit for bit.
    expectSameResult(plain, instrumented);
    EXPECT_FALSE(tel.all().empty());
    EXPECT_FALSE(rec.empty());
    EXPECT_FALSE(decisions.empty());
}

TEST(Observability, SameSeedRunsExportIdenticalBytes)
{
    exp::RunConfig cfg = shortKpConfig();
    auto runOnce = [&cfg]() {
        trace::Telemetry tel;
        trace::TraceRecorder rec;
        trace::DecisionLog decisions;
        exp::Observability obs;
        obs.telemetry = &tel;
        obs.recorder = &rec;
        obs.decisions = &decisions;
        exp::Scenario s = exp::buildScenario(cfg, obs);
        exp::measureScenario(s, cfg);
        rec.importTelemetry(tel);
        rec.importDecisions(decisions);
        return std::make_pair(rec.toJson(), decisions.toJsonl());
    };
    auto [trace1, log1] = runOnce();
    auto [trace2, log2] = runOnce();
    EXPECT_EQ(trace1, trace2);
    EXPECT_EQ(log1, log2);
    EXPECT_FALSE(log1.empty());
}

TEST(Observability, DecisionLogReplaysKnobChanges)
{
    // Every knob change the controller's averages imply must be
    // reachable by replaying the audit log from the initial state.
    exp::RunConfig cfg = shortKpConfig();
    trace::DecisionLog decisions;
    exp::Observability obs;
    obs.decisions = &decisions;
    exp::Scenario s = exp::buildScenario(cfg, obs);
    exp::measureScenario(s, cfg);

    ASSERT_FALSE(decisions.empty());
    // Replay: each event's old state must match the running state
    // (events are a complete, ordered record of mutations).
    const auto &evs = decisions.events();
    int cores = evs.front().loCoresOld;
    int prefetchers = evs.front().loPrefetchersOld;
    int backfill = evs.front().hiBackfillOld;
    for (const trace::DecisionEvent &ev : evs) {
        EXPECT_EQ(ev.loCoresOld, cores) << "at t=" << ev.time;
        EXPECT_EQ(ev.loPrefetchersOld, prefetchers)
            << "at t=" << ev.time;
        EXPECT_EQ(ev.hiBackfillOld, backfill) << "at t=" << ev.time;
        cores = ev.loCoresNew;
        prefetchers = ev.loPrefetchersNew;
        backfill = ev.hiBackfillNew;
    }
    // And the final replayed state is the controller's final state.
    ASSERT_TRUE(s.manager);
    runtime::ControllerParams p = s.manager->controller().params();
    EXPECT_EQ(cores, p.loCores);
    EXPECT_EQ(prefetchers, p.loPrefetchers);
    EXPECT_EQ(backfill, p.hiBackfillCores);
}
