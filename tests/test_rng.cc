/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hh"

using kelp::sim::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedWorks)
{
    Rng r(0);
    std::set<uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(r.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform(5.0, 10.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 10.0);
    }
}

TEST(Rng, BelowBounds)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(13);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowZeroPanics)
{
    Rng r(1);
    EXPECT_DEATH((void)r.below(0), "n > 0");
}

TEST(Rng, ExponentialMean)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialNonNegative)
{
    Rng r(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, GaussianMoments)
{
    Rng r(23);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = r.gaussian(10.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LogNormalPositive)
{
    Rng r(29);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(r.logNormal(0.0, 1.0), 0.0);
}

TEST(Rng, ChanceProbability)
{
    Rng r(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(37);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(41);
    Rng a = parent.split(1);
    Rng b = parent.split(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng p1(41), p2(41);
    Rng a = p1.split(7);
    Rng b = p2.split(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

/** Chi-squared-ish bucket uniformity over seeds. */
class RngUniformity : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngUniformity, BucketsBalanced)
{
    Rng r(GetParam());
    const int buckets = 10;
    const int n = 50000;
    int count[buckets] = {};
    for (int i = 0; i < n; ++i)
        ++count[static_cast<int>(r.uniform() * buckets)];
    for (int b = 0; b < buckets; ++b)
        EXPECT_NEAR(count[b], n / buckets, n / buckets * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformity,
                         ::testing::Values(1, 42, 1234, 99999,
                                           0xdeadbeef));
