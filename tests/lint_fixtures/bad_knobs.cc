// Fixture: direct HAL knob mutation outside the managed sink
// (linted under a virtual src/exp/ path).
struct Knobs
{
    bool setCores(int g, int s, int d, int n);
    bool setPrefetchersEnabled(int g, int n);
    bool setCatWays(int g, int w);
};

void
rogueActuation(Knobs &knobs, Knobs *ptr)
{
    knobs.setCores(1, 0, 1, 4);
    ptr->setPrefetchersEnabled(1, 2);
    knobs.setCatWays(1, 3);
}

// A declaration (no '.'/'->' receiver) is not a call site.
bool setCores(int g);
