// Fixture: range-for over an unordered container in a control path
// (linted under a virtual src/kelp/ path).
#include <string>
#include <unordered_map>
#include <vector>

int
total()
{
    std::unordered_map<int, int> weights;
    weights[1] = 2;
    int sum = 0;
    for (const auto &[id, w] : weights)
        sum += id + w;
    return sum;
}

// Iterating a vector stays legal, as does find/count on the map.
int
legal()
{
    std::unordered_map<std::string, int> index;
    std::vector<int> order = {1, 2, 3};
    int sum = 0;
    for (int v : order)
        sum += v + static_cast<int>(index.count("x"));
    return sum;
}
