// Fixture: using-directive in a header (linted under a virtual
// src/sim/ path; the guard below is correct so only the using
// directive fires).
#ifndef KELP_SIM_BAD_USING_HH
#define KELP_SIM_BAD_USING_HH

#include <string>

using namespace std;

string fixtureName();

#endif // KELP_SIM_BAD_USING_HH
