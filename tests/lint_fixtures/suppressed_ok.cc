// Fixture: correctly suppressed findings -- the file must lint
// clean.
bool
exactByConstruction(double p)
{
    // kelp: allow(float-eq): p is copied from this literal and
    // never touched by arithmetic, so the comparison is exact.
    bool same = p == 0.25;
    bool trailing = p != 0.75; // kelp: allow(float-eq): ditto.
    return same || trailing;
}
