// Fixture: every banned nondeterminism source in one file.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int
entropySoup()
{
    int a = rand();
    std::mt19937 gen;
    std::random_device rd;
    long t = time(nullptr);
    auto now = std::chrono::steady_clock::now();
    (void)rd;
    (void)now;
    return a + static_cast<int>(gen()) + static_cast<int>(t);
}

// Member accesses (e.g. the engine's simulated clock) must NOT be
// flagged. The fixture is lint input, never compiled, so Engine
// needs no definition here.
double
legalUse(Engine &e)
{
    double sim_time = e.time();
    return sim_time + e.rand;
}
