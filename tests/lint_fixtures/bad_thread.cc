/**
 * Fixture for the raw-parallelism rule: raw threading primitives are
 * only legal inside the deterministic pool (src/exp/pool.*). Six
 * findings, all in spawn_raw().
 */

void
spawn_raw()
{
    std::thread worker([] {});
    std::jthread scoped_worker([] {});
    auto fut = std::async([] {});
    std::mutex m;
    std::recursive_mutex rm;
    std::condition_variable cv;
}

// None of these may fire: member accesses and foreign-namespace
// symbols belong to someone else, and this_thread sleeps do not
// create parallelism (test stubs use them for adversarial timing).
void
legal(Engine &e, Duration d)
{
    e.thread();
    e.mutex.lock();
    mylib::thread t;
    mylib::mutex guard;
    std::this_thread::sleep_for(d);
}
