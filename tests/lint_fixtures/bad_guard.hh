// Fixture: include guard does not match the path (linted under a
// virtual src/mem/ path, so the expected guard is
// KELP_MEM_BAD_GUARD_HH).
#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH

int fixtureValue();

#endif // WRONG_GUARD_HH
