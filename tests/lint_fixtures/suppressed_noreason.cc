// Fixture: a suppression without a reason is itself a finding, and
// the underlying finding still fires.
bool
unjustified(double p)
{
    // kelp: allow(float-eq)
    return p == 0.25;
}
