// Fixture: exact floating-point equality.
bool
flappy(double x, float y, int n)
{
    bool a = x == 1.0;
    bool b = y != 0.5f;
    bool c = 2.5e-3 == x;
    // Integer comparisons and hex literals stay legal.
    bool d = n == 3;
    bool e = n != 0x10;
    return a || b || c || d || e;
}
