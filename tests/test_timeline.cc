/**
 * @file
 * Tests for the ASCII timeline renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/timeline.hh"

using namespace kelp;
using namespace kelp::trace;

namespace {

wl::TraceEvent
ev(wl::SegmentKind kind, double start, double end, int iter = 0)
{
    return {kind, start, end, iter};
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

} // namespace

TEST(Timeline, EmptyEventsRenderNothing)
{
    EXPECT_EQ(renderTimeline({}), "");
}

TEST(Timeline, ThreeLanesWithGlyphs)
{
    std::vector<wl::TraceEvent> events = {
        ev(wl::SegmentKind::Host, 0.0, 1.0),
        ev(wl::SegmentKind::Pcie, 1.0, 2.0),
        ev(wl::SegmentKind::Accel, 2.0, 3.0),
    };
    TimelineOptions opts;
    opts.width = 30;
    std::string out = renderTimeline(events, opts);
    auto rows = lines(out);
    ASSERT_EQ(rows.size(), 4u);  // span + 3 lanes
    EXPECT_NE(rows[1].find('C'), std::string::npos);
    EXPECT_NE(rows[2].find('-'), std::string::npos);
    EXPECT_NE(rows[3].find('T'), std::string::npos);
    // Host occupies the first third, accel the last.
    EXPECT_EQ(rows[1].find('C'), rows[1].find_first_of('C'));
    EXPECT_LT(rows[1].rfind('C'), rows[3].find('T') + 10);
}

TEST(Timeline, ProportionalWidths)
{
    std::vector<wl::TraceEvent> events = {
        ev(wl::SegmentKind::Host, 0.0, 3.0),
        ev(wl::SegmentKind::Accel, 3.0, 4.0),
    };
    TimelineOptions opts;
    opts.width = 40;
    std::string out = renderTimeline(events, opts);
    auto rows = lines(out);
    size_t host = std::count(rows[1].begin(), rows[1].end(), 'C');
    size_t accel = std::count(rows[3].begin(), rows[3].end(), 'T');
    // 3:1 duration ratio within rounding.
    EXPECT_NEAR(static_cast<double>(host) / accel, 3.0, 0.5);
}

TEST(Timeline, TinySegmentsStillVisible)
{
    std::vector<wl::TraceEvent> events = {
        ev(wl::SegmentKind::Host, 0.0, 10.0),
        ev(wl::SegmentKind::Pcie, 10.0, 10.001),
    };
    std::string out = renderTimeline(events);
    auto rows = lines(out);
    EXPECT_NE(rows[2].find('-'), std::string::npos);
}

TEST(Timeline, CustomGlyphsAndLabels)
{
    std::vector<wl::TraceEvent> events = {
        ev(wl::SegmentKind::Host, 0.0, 1.0),
    };
    TimelineOptions opts;
    opts.hostGlyph = '#';
    opts.hostLabel = "BEAM";
    std::string out = renderTimeline(events, opts);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find("BEAM"), std::string::npos);
}

TEST(Timeline, BadWidthPanics)
{
    std::vector<wl::TraceEvent> events = {
        ev(wl::SegmentKind::Host, 0.0, 1.0),
    };
    TimelineOptions opts;
    opts.width = 0;
    EXPECT_DEATH(renderTimeline(events, opts), "width");
}

TEST(Timeline, LastEventsTail)
{
    std::vector<wl::TraceEvent> events;
    for (int i = 0; i < 10; ++i)
        events.push_back(ev(wl::SegmentKind::Host, i, i + 1, i));
    auto tail = lastEvents(events, 3);
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail[0].iteration, 7);
    EXPECT_EQ(lastEvents(events, 50).size(), 10u);
}
