/**
 * @file
 * Tests for dynamic colocation churn: the task lifecycle engine, the
 * SLO degradation ladder, controller snapshot/restore, restart-time
 * knob reconciliation, and the determinism guarantees of all of it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "exp/lifecycle.hh"
#include "exp/scenario.hh"
#include "fuzz/oracle.hh"
#include "kelp/kelp_controller.hh"
#include "kelp/manager.hh"
#include "kelp/slo_guard.hh"
#include "node/node.hh"
#include "node/platform.hh"
#include "workload/batch_task.hh"

using namespace kelp;
using namespace kelp::runtime;

namespace {

AppProfile
testProfile()
{
    AppProfile p;
    p.workload = "test";
    p.socketBw = {70.0, 45.0};
    p.latency = {150.0, 110.0};
    p.saturation = {0.10, 0.02};
    p.hiSubBw = {25.0, 12.0};
    return p;
}

wl::HostPhaseParams
aggressorParams()
{
    wl::HostPhaseParams p;
    p.cpuFrac = 0.05;
    p.bwPerCore = 9.0;
    p.latencySensitivity = 0.15;
    p.prefetch = {0.5, 0.75};
    p.llcFootprintMb = 512.0;
    p.llcHitMax = 0.02;
    return p;
}

/** Node with an ML group (subdomain 0) and a CPU group (sub 1). */
struct ChurnFixture
{
    node::Node node{node::platformFor(accel::Kind::TpuV1)};
    sim::GroupId ml, cpu;
    wl::BatchTask *mlTask = nullptr;
    wl::BatchTask *aggressor = nullptr;

    explicit ChurnFixture(int aggressor_threads = 8,
                          bool with_ml_task = false)
    {
        node.setSncEnabled(true);
        ml = node.groups().create("ml", hal::Priority::High).id();
        cpu = node.groups().create("batch", hal::Priority::Low).id();
        node.knobs().setCores(ml, 0, 0, 4);
        node.knobs().setPrefetchersEnabled(ml, 4);
        if (with_ml_task) {
            wl::HostPhaseParams p;
            p.cpuFrac = 0.8;
            p.bwPerCore = 2.0;
            mlTask = &node.add(std::make_unique<wl::BatchTask>(
                "ml-proxy", ml, 4, p));
        }
        if (aggressor_threads > 0) {
            aggressor = &node.add(std::make_unique<wl::BatchTask>(
                "agg", cpu, aggressor_threads, aggressorParams()));
        }
    }

    void
    runTicks(int ticks, double t0 = 0.0)
    {
        for (int i = 0; i < ticks; ++i)
            node.tick(t0 + i * 1e-4, 1e-4);
    }
};

/** Shortened timing for scenario-level runs. */
exp::RunConfig
quick(wl::MlWorkload ml, exp::ConfigKind kind)
{
    exp::RunConfig cfg;
    cfg.ml = ml;
    cfg.config = kind;
    cfg.warmup = 10.0;
    cfg.measure = 10.0;
    cfg.samplePeriod = 1.0;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------
// Lifecycle engine.

TEST(Lifecycle, SameSeedSameEventLog)
{
    exp::ChurnConfig cfg;
    cfg.enabled = true;
    cfg.arrivalRate = 0.2;
    cfg.crashProb = 0.3;
    cfg.maxLive = 3;
    cfg.seed = 42;

    ChurnFixture a(0), b(0);
    exp::LifecycleEngine ea(a.node, a.cpu, cfg);
    exp::LifecycleEngine eb(b.node, b.cpu, cfg);
    for (double t = 0.5; t <= 200.0; t += 0.5) {
        ea.poll(t);
        eb.poll(t);
    }

    ASSERT_GT(ea.eventLog().size(), 4u);
    ASSERT_EQ(ea.eventLog().size(), eb.eventLog().size());
    for (size_t i = 0; i < ea.eventLog().size(); ++i) {
        const exp::ChurnEvent &x = ea.eventLog()[i];
        const exp::ChurnEvent &y = eb.eventLog()[i];
        EXPECT_DOUBLE_EQ(x.time, y.time);
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.task, y.task);
        EXPECT_EQ(x.threads, y.threads);
    }
    EXPECT_EQ(ea.arrivals(), eb.arrivals());
    EXPECT_EQ(ea.crashes(), eb.crashes());
}

TEST(Lifecycle, SeedChangesTheLog)
{
    exp::ChurnConfig cfg;
    cfg.enabled = true;
    cfg.arrivalRate = 0.2;
    cfg.seed = 42;

    ChurnFixture a(0), b(0);
    exp::LifecycleEngine ea(a.node, a.cpu, cfg);
    cfg.seed = 43;
    exp::LifecycleEngine eb(b.node, b.cpu, cfg);
    for (double t = 0.5; t <= 200.0; t += 0.5) {
        ea.poll(t);
        eb.poll(t);
    }
    bool differs = ea.eventLog().size() != eb.eventLog().size();
    for (size_t i = 0;
         !differs && i < ea.eventLog().size(); ++i) {
        differs = ea.eventLog()[i].time != eb.eventLog()[i].time ||
                  ea.eventLog()[i].threads != eb.eventLog()[i].threads;
    }
    EXPECT_TRUE(differs);
}

TEST(Lifecycle, MembershipTracksArrivalsAndDepartures)
{
    exp::ChurnConfig cfg;
    cfg.enabled = true;
    cfg.arrivalRate = 1.0;  // fast arrivals
    cfg.maxLive = 2;
    cfg.seed = 7;

    ChurnFixture f(0);
    exp::LifecycleEngine eng(f.node, f.cpu, cfg);
    eng.poll(30.0);
    ASSERT_GT(eng.arrivals(), 0u);
    ASSERT_EQ(eng.liveTasks().size(), 2u);
    EXPECT_GT(eng.rejected(), 0u);

    // Live threads are exactly what the group reports runnable.
    int live_threads = 0;
    for (int id : eng.liveTasks())
        live_threads += f.node.taskById(id)->threadsWanted();
    EXPECT_EQ(f.node.runnableThreadsInGroup(f.cpu, 0), live_threads);

    // Far future: the first epoch's tasks have all retired, arrivals
    // kept coming, and the membership count tracks whatever is live
    // now -- retirees hold no runnable threads.
    eng.poll(1e6);
    EXPECT_GT(eng.finishes() + eng.crashes(), 0u);
    int live_now = 0;
    for (int id : eng.liveTasks())
        live_now += f.node.taskById(id)->threadsWanted();
    EXPECT_EQ(f.node.runnableThreadsInGroup(f.cpu, 0), live_now);
    EXPECT_EQ(eng.arrivals(), eng.finishes() + eng.crashes() +
                                  eng.liveTasks().size());
}

TEST(Lifecycle, RetiredTasksStopProgressingAndFreeCores)
{
    ChurnFixture f(4);
    f.runTicks(50);
    double work = f.aggressor->completedWork();
    EXPECT_GT(work, 0.0);

    f.aggressor->setLifeState(wl::LifeState::Finished);
    f.runTicks(50, 0.005);
    EXPECT_DOUBLE_EQ(f.aggressor->completedWork(), work);
    EXPECT_DOUBLE_EQ(f.node.lastEnv(*f.aggressor).effCores, 0.0);
    EXPECT_EQ(f.node.runnableThreadsInGroup(f.cpu, 0), 0);
    EXPECT_EQ(f.node.hungriestRunnable(f.cpu), nullptr);
}

TEST(Node, SuspendedTaskFreezesAndResumes)
{
    ChurnFixture f(4);
    f.runTicks(50);
    double work = f.aggressor->completedWork();

    f.aggressor->setLifeState(wl::LifeState::Suspended);
    EXPECT_FALSE(f.aggressor->runnable());
    f.runTicks(50, 0.005);
    EXPECT_DOUBLE_EQ(f.aggressor->completedWork(), work);

    f.aggressor->setLifeState(wl::LifeState::Running);
    f.runTicks(50, 0.010);
    EXPECT_GT(f.aggressor->completedWork(), work);
}

// ---------------------------------------------------------------
// SLO guard ladder.

TEST(SloGuard, EscalatesRungByRungWithFullTrace)
{
    SloConfig cfg;
    cfg.enabled = true;
    cfg.minPerfRatio = 0.85;
    cfg.escalateAfter = 2;
    cfg.deescalateAfter = 3;
    SloGuard g(cfg);

    // Sustained overload: one rung per K violating samples, in
    // strict order, saturating at the top.
    for (int i = 1; i <= 12; ++i)
        g.observe(i, 0.5);
    EXPECT_EQ(g.rung(), kRungEvictAntagonist);
    EXPECT_EQ(g.violations(), 12u);
    ASSERT_EQ(g.trace().size(), 4u);
    for (size_t i = 0; i < g.trace().size(); ++i) {
        EXPECT_EQ(g.trace()[i].from, static_cast<int>(i));
        EXPECT_EQ(g.trace()[i].to, static_cast<int>(i) + 1);
        EXPECT_DOUBLE_EQ(g.trace()[i].time, 2.0 * (i + 1));
    }
}

TEST(SloGuard, DeescalationIsHysteretic)
{
    SloConfig cfg;
    cfg.enabled = true;
    cfg.escalateAfter = 1;
    cfg.deescalateAfter = 3;
    SloGuard g(cfg);

    g.observe(1, 0.1);
    g.observe(2, 0.1);
    ASSERT_EQ(g.rung(), 2);

    // Two healthy samples are not enough...
    g.observe(3, 1.0);
    g.observe(4, 1.0);
    EXPECT_EQ(g.rung(), 2);
    // ...and a violation resets the healthy streak (but a single
    // violation cannot escalate past the streak threshold of the
    // *reset* bad counter either: one bad sample with K=1 does).
    g.observe(5, 0.1);
    EXPECT_EQ(g.rung(), 3);

    // Three consecutive healthy samples step down exactly one rung.
    g.observe(6, 1.0);
    g.observe(7, 1.0);
    g.observe(8, 1.0);
    EXPECT_EQ(g.rung(), 2);
    g.observe(9, 1.0);
    g.observe(10, 1.0);
    g.observe(11, 1.0);
    EXPECT_EQ(g.rung(), 1);

    // Every transition is in the audit trace, in order.
    ASSERT_EQ(g.trace().size(), 5u);
    EXPECT_EQ(g.trace()[3].from, 3);
    EXPECT_EQ(g.trace()[3].to, 2);
}

TEST(SloGuard, RestoreClampsAndRestartsStreaks)
{
    SloConfig cfg;
    cfg.enabled = true;
    cfg.escalateAfter = 2;
    SloGuard g(cfg);
    g.observe(1, 0.1);  // one violation into the streak
    g.restore(99);      // out-of-range checkpoint clamps...
    EXPECT_EQ(g.rung(), kSloRungMax);
    g.restore(2);
    EXPECT_EQ(g.rung(), 2);
    // ...and the pre-restore half-streak is forgotten.
    g.observe(2, 0.1);
    EXPECT_EQ(g.rung(), 2);
    g.observe(3, 0.1);
    EXPECT_EQ(g.rung(), 3);
}

TEST(SloGuard, RapidBoundaryOscillationIsHysteresisBounded)
{
    // Reference fixture for the fuzzer's ladder-thrash oracle: under
    // rapid oscillation around the SLO floor, the streak counters
    // must keep the rung-transition rate bounded -- at most one
    // transition per min(escalateAfter, deescalateAfter) samples --
    // and strict alternation must produce no transitions at all.

    // Strict good/bad alternation: neither streak ever completes.
    {
        SloConfig cfg;
        cfg.enabled = true;
        cfg.minPerfRatio = 0.85;
        cfg.escalateAfter = 2;
        cfg.deescalateAfter = 2;
        SloGuard g(cfg);
        for (int i = 1; i <= 40; ++i)
            g.observe(i, (i % 2) ? 0.5 : 1.0);
        EXPECT_EQ(g.rung(), kRungNormal);
        EXPECT_TRUE(g.trace().empty());
        EXPECT_DOUBLE_EQ(
            fuzz::ladderThrashRate(g.trace().size(), 40.0, 1.0), 0.0);
    }

    // Worst-case square wave tuned to the streak lengths: every
    // completed streak flips the rung, but never faster than the
    // hysteresis allows.
    {
        SloConfig cfg;
        cfg.enabled = true;
        cfg.minPerfRatio = 0.85;
        cfg.escalateAfter = 3;
        cfg.deescalateAfter = 5;
        SloGuard g(cfg);
        const int samples = 160;
        for (int i = 1; i <= samples; ++i) {
            const bool bad = (i - 1) % 8 < 3; // 3 bad, 5 good, repeat
            g.observe(i, bad ? 0.5 : 1.0);
        }
        const double rate = fuzz::ladderThrashRate(
            g.trace().size(), static_cast<double>(samples), 1.0);
        const double bound =
            1.0 / std::min(cfg.escalateAfter, cfg.deescalateAfter);
        EXPECT_LE(rate, bound);
        EXPECT_GT(g.trace().size(), 0u); // the wave does move rungs
        // Adjacent transitions are at least min-streak samples apart.
        for (size_t i = 1; i < g.trace().size(); ++i) {
            EXPECT_GE(g.trace()[i].time - g.trace()[i - 1].time,
                      std::min(cfg.escalateAfter,
                               cfg.deescalateAfter) -
                          1e-9);
        }
    }
}

TEST(KelpController, LadderDrainsThrottlesAndEvicts)
{
    ChurnFixture f(8, true);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    ConfigLimits limits{0, 4, 1, 8};
    ResourceState init{2, 8, 8};
    KelpController ctl(bind, testProfile(), limits, init);

    SloConfig slo;
    slo.enabled = true;
    slo.minPerfRatio = 0.85;
    slo.escalateAfter = 1;
    // An unreachable reference makes every sample a violation.
    ctl.enableSloGuard(slo, 1e9);

    // Sample 1 only primes the perf baseline.
    f.runTicks(50);
    ctl.sample(1.0);
    ASSERT_NE(ctl.sloGuard(), nullptr);
    EXPECT_EQ(ctl.sloGuard()->rung(), kRungNormal);

    f.runTicks(50, 0.005);
    ctl.sample(2.0);
    EXPECT_EQ(ctl.sloGuard()->rung(), kRungDrainBackfill);
    EXPECT_EQ(ctl.state().coreNumH, 0);

    f.runTicks(50, 0.010);
    ctl.sample(3.0);
    EXPECT_EQ(ctl.sloGuard()->rung(), kRungThrottleCores);
    EXPECT_EQ(ctl.state().coreNumL, 1);

    f.runTicks(50, 0.015);
    ctl.sample(4.0);
    EXPECT_EQ(ctl.sloGuard()->rung(), kRungDisablePrefetch);
    EXPECT_EQ(ctl.state().prefetcherNumL, 0);

    f.runTicks(50, 0.020);
    ctl.sample(5.0);
    EXPECT_EQ(ctl.sloGuard()->rung(), kRungEvictAntagonist);
    ASSERT_EQ(ctl.suspendedIds().size(), 1u);
    wl::Task *victim = f.node.taskById(ctl.suspendedIds()[0]);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->lifeState(), wl::LifeState::Suspended);

    // The applied knobs reflect the fully-escalated ladder.
    const hal::TaskGroup &g = f.node.groups().get(f.cpu);
    EXPECT_EQ(g.cores().inSubdomain(0, 0), 0);
    EXPECT_EQ(g.cores().inSubdomain(0, 1), 1);
    EXPECT_EQ(g.prefetchersEnabled(), 0);
}

// ---------------------------------------------------------------
// Snapshot / restore / reconcile.

TEST(Snapshot, SerializeRoundTrips)
{
    ControllerSnapshot s;
    s.valid = true;
    s.time = 123.4375;
    s.coreNumH = 3;
    s.coreNumL = 5;
    s.prefetcherNumL = 2;
    s.failSafe = true;
    s.rung = 4;
    s.prevH = 0;
    s.prevL = 1;
    s.suspended = {3, 7, 11};

    ControllerSnapshot t;
    ASSERT_TRUE(ControllerSnapshot::deserialize(s.serialize(), t));
    EXPECT_TRUE(t.valid);
    EXPECT_DOUBLE_EQ(t.time, s.time);
    EXPECT_EQ(t.coreNumH, s.coreNumH);
    EXPECT_EQ(t.coreNumL, s.coreNumL);
    EXPECT_EQ(t.prefetcherNumL, s.prefetcherNumL);
    EXPECT_EQ(t.failSafe, s.failSafe);
    EXPECT_EQ(t.rung, s.rung);
    EXPECT_EQ(t.prevH, s.prevH);
    EXPECT_EQ(t.prevL, s.prevL);
    EXPECT_EQ(t.suspended, s.suspended);

    // And the text itself is stable under a second round trip.
    EXPECT_EQ(t.serialize(), s.serialize());

    // Empty suspension list round-trips too.
    s.suspended.clear();
    ASSERT_TRUE(ControllerSnapshot::deserialize(s.serialize(), t));
    EXPECT_TRUE(t.suspended.empty());
}

TEST(Snapshot, CounterWindowRoundTripsExactly)
{
    ControllerSnapshot s;
    s.valid = true;
    s.time = 5.0;
    s.hasCounterWindow = true;
    // Awkward doubles: denormal-ish, negative, huge, and values with
    // no short decimal form -- %.17g must round-trip all of them
    // bit-exactly.
    for (size_t i = 0; i < s.counterWindow.size(); ++i) {
        s.counterWindow[i] =
            (i % 2 ? -1.0 : 1.0) * (0.1 + static_cast<double>(i)) /
            3.0 * 1e3;
    }
    s.counterWindow[0] = 1e-300;
    s.counterWindow[1] = 6.02214076e23;

    ControllerSnapshot t;
    ASSERT_TRUE(ControllerSnapshot::deserialize(s.serialize(), t));
    EXPECT_TRUE(t.hasCounterWindow);
    for (size_t i = 0; i < s.counterWindow.size(); ++i)
        EXPECT_DOUBLE_EQ(t.counterWindow[i], s.counterWindow[i]) << i;
    EXPECT_EQ(t.serialize(), s.serialize());

    // A window-less snapshot keeps the empty cw section.
    s.hasCounterWindow = false;
    ASSERT_TRUE(ControllerSnapshot::deserialize(s.serialize(), t));
    EXPECT_FALSE(t.hasCounterWindow);
    EXPECT_EQ(t.serialize(), s.serialize());
}

TEST(Snapshot, RejectsMalformedText)
{
    ControllerSnapshot t;
    EXPECT_FALSE(ControllerSnapshot::deserialize("", t));
    EXPECT_FALSE(ControllerSnapshot::deserialize("garbage", t));
    EXPECT_FALSE(ControllerSnapshot::deserialize("t=1;h=2", t));
    EXPECT_FALSE(ControllerSnapshot::deserialize(
        "t=1;h=0;l=1;p=1;fs=0;rung=0;ph=2;pl=2;cw=;susp=1|x", t));
    // Truncated counter window: fewer doubles than the cursor state
    // carries.
    EXPECT_FALSE(ControllerSnapshot::deserialize(
        "t=1;h=0;l=1;p=1;fs=0;rung=0;ph=2;pl=2;cw=1|2|3;susp=", t));
    // The legacy pre-counter-window format is not accepted.
    EXPECT_FALSE(ControllerSnapshot::deserialize(
        "t=1;h=0;l=1;p=1;fs=0;rung=0;ph=2;pl=2;susp=1", t));
}

TEST(Restart, ReconcileRepairsKnobDivergence)
{
    ChurnFixture f(8);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    ConfigLimits limits{0, 4, 1, 8};
    ResourceState init{0, 8, 8};
    AppProfile profile = testProfile();
    auto make = [&f, bind, limits, init, profile]() {
        return std::unique_ptr<Controller>(
            std::make_unique<KelpController>(bind, profile, limits,
                                             init));
    };

    auto mgr = std::make_unique<RuntimeManager>(make(), 0.01);
    mgr->setControllerFactory(make);
    sim::Engine eng(1e-3);
    f.node.attach(eng);
    mgr->attach(eng);
    eng.run(0.1);  // 10 samples under heavy aggressor pressure
    ASSERT_EQ(mgr->samples(), 10u);
    ControllerParams before = mgr->controller().params();

    // Corrupt the hardware behind the (dead) controller's back.
    f.node.knobs().setCores(f.cpu, 0, 1, 3);
    f.node.knobs().setPrefetchersEnabled(f.cpu, 2);
    f.node.knobs().setCatWays(f.cpu, 3);

    ASSERT_TRUE(mgr->restart(eng.now()));
    EXPECT_EQ(mgr->restarts(), 1u);
    ASSERT_EQ(mgr->restartTrace().size(), 1u);
    EXPECT_TRUE(mgr->restartTrace()[0].hadCheckpoint);
    EXPECT_GE(mgr->restartTrace()[0].repairs, 1);

    // Intent recovered exactly...
    ControllerParams after = mgr->controller().params();
    EXPECT_EQ(after.loCores, before.loCores);
    EXPECT_EQ(after.loPrefetchers, before.loPrefetchers);
    EXPECT_EQ(after.hiBackfillCores, before.hiBackfillCores);

    // ...and pushed back into the hardware.
    const hal::TaskGroup &g = f.node.groups().get(f.cpu);
    EXPECT_EQ(g.cores().inSubdomain(0, 1), before.loCores);
    EXPECT_EQ(g.cores().inSubdomain(0, 0), before.hiBackfillCores);
    EXPECT_EQ(g.prefetchersEnabled(),
              before.loPrefetchers + before.hiBackfillCores);
    EXPECT_EQ(g.catWays(), 0);
}

TEST(Restart, NoFactoryMeansNoRestart)
{
    ChurnFixture f(4);
    Bindings bind{&f.node, f.ml, f.cpu, 0};
    auto ctl = std::make_unique<KelpController>(
        bind, testProfile(), ConfigLimits{0, 4, 1, 8},
        ResourceState{0, 4, 4});
    RuntimeManager mgr(std::move(ctl), 1.0);
    EXPECT_FALSE(mgr.restart(5.0));
    EXPECT_EQ(mgr.restarts(), 0u);
}

// ---------------------------------------------------------------
// Scenario-level: determinism and restart recovery end-to-end.

TEST(ChurnScenario, RunIsDeterministicPerSeed)
{
    exp::RunConfig cfg = quick(wl::MlWorkload::Cnn1,
                               exp::ConfigKind::KP);
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 2;
    cfg.measure = 20.0;
    cfg.churn.enabled = true;
    cfg.churn.arrivalRate = 0.25;
    cfg.churn.maxLive = 3;
    cfg.churn.seed = 5;

    exp::RunResult a = exp::runScenario(cfg);
    exp::RunResult b = exp::runScenario(cfg);
    EXPECT_GT(a.churnArrivals, 0u);
    EXPECT_DOUBLE_EQ(a.mlPerf, b.mlPerf);
    EXPECT_DOUBLE_EQ(a.cpuThroughput, b.cpuThroughput);
    EXPECT_DOUBLE_EQ(a.avgLoCores, b.avgLoCores);
    EXPECT_EQ(a.churnArrivals, b.churnArrivals);
    EXPECT_EQ(a.churnFinishes, b.churnFinishes);
    EXPECT_EQ(a.churnCrashes, b.churnCrashes);
    EXPECT_EQ(a.sloTransitions, b.sloTransitions);
}

TEST(ChurnScenario, EventLogsIdenticalAcrossBuilds)
{
    exp::RunConfig cfg = quick(wl::MlWorkload::Cnn1,
                               exp::ConfigKind::KP);
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 2;
    cfg.churn.enabled = true;
    cfg.churn.arrivalRate = 0.5;
    cfg.churn.seed = 11;

    exp::Scenario a = exp::buildScenario(cfg);
    exp::Scenario b = exp::buildScenario(cfg);
    a.engine->run(30.0);
    b.engine->run(30.0);
    ASSERT_TRUE(a.lifecycle && b.lifecycle);
    const auto &la = a.lifecycle->eventLog();
    const auto &lb = b.lifecycle->eventLog();
    ASSERT_GT(la.size(), 0u);
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i) {
        EXPECT_DOUBLE_EQ(la[i].time, lb[i].time);
        EXPECT_EQ(la[i].kind, lb[i].kind);
        EXPECT_EQ(la[i].task, lb[i].task);
        EXPECT_EQ(la[i].threads, lb[i].threads);
    }
}

TEST(ChurnScenario, KillAndRestartIsBitNeutralWithoutFaults)
{
    // With a clean HAL the checkpoint replay + reconciliation is
    // exact: killing the controller mid-measurement must leave every
    // reported metric bit-identical to the uninterrupted run. This
    // also pins the ≤5-sample recovery bound at its strongest form
    // (zero divergent samples).
    exp::RunConfig cfg = quick(wl::MlWorkload::Cnn1,
                               exp::ConfigKind::KP);
    cfg.cpu = wl::CpuWorkload::DramAggressor;
    cfg.cpuThreadsOverride = 14;

    exp::RunResult clean = exp::runScenario(cfg);
    cfg.killAt = 15.0;  // mid-measurement
    exp::RunResult killed = exp::runScenario(cfg);

    EXPECT_EQ(clean.restarts, 0u);
    EXPECT_EQ(killed.restarts, 1u);
    EXPECT_DOUBLE_EQ(clean.mlPerf, killed.mlPerf);
    EXPECT_DOUBLE_EQ(clean.cpuThroughput, killed.cpuThroughput);
    EXPECT_DOUBLE_EQ(clean.avgLoCores, killed.avgLoCores);
    EXPECT_DOUBLE_EQ(clean.avgLoPrefetchers,
                     killed.avgLoPrefetchers);
    EXPECT_DOUBLE_EQ(clean.avgHiBackfill, killed.avgHiBackfill);
    EXPECT_DOUBLE_EQ(clean.avgSocketBw, killed.avgSocketBw);
}

TEST(ChurnScenario, ChurnOffIsBitIdenticalToStaticPath)
{
    // The churn machinery defaults off; a default-config KP run must
    // not be perturbed by its existence, and two identical runs must
    // agree bitwise.
    exp::RunConfig cfg = quick(wl::MlWorkload::Cnn1,
                               exp::ConfigKind::KP);
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 4;
    exp::RunResult a = exp::runScenario(cfg);
    exp::RunResult b = exp::runScenario(cfg);
    EXPECT_DOUBLE_EQ(a.mlPerf, b.mlPerf);
    EXPECT_DOUBLE_EQ(a.cpuThroughput, b.cpuThroughput);
    EXPECT_EQ(a.churnArrivals, 0u);
    EXPECT_EQ(a.restarts, 0u);
    EXPECT_EQ(a.sloTransitions, 0u);
}
