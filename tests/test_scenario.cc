/**
 * @file
 * Integration tests: full scenarios through the experiment harness.
 * These run shortened simulations (seconds of simulated time) and
 * assert the paper's qualitative behaviours.
 */

#include <gtest/gtest.h>

#include "exp/evaluation.hh"
#include "exp/scenario.hh"

using namespace kelp;
using namespace kelp::exp;

namespace {

/** Shortened timing for test runs. */
RunConfig
quick(wl::MlWorkload ml, ConfigKind kind)
{
    RunConfig cfg;
    cfg.ml = ml;
    cfg.config = kind;
    cfg.warmup = 10.0;
    cfg.measure = 10.0;
    cfg.samplePeriod = 1.0;
    return cfg;
}

} // namespace

TEST(Scenario, StandaloneCnn1MatchesStepTime)
{
    RunConfig cfg = quick(wl::MlWorkload::Cnn1, ConfigKind::BL);
    RunResult r = runScenario(cfg);
    // Standalone step = max(2.9 accel-overlapped... in-feed 3.2) +
    // 0.15 pcie = 3.35 ms -> ~298 steps/s.
    double step = wl::mlDesc(wl::MlWorkload::Cnn1)
                      .step.standaloneDuration();
    EXPECT_NEAR(r.mlPerf, 1.0 / step, 1.0 / step * 0.02);
    EXPECT_DOUBLE_EQ(r.cpuThroughput, 0.0);
}

TEST(Scenario, StandaloneRnn1HasStableTail)
{
    RunConfig cfg = quick(wl::MlWorkload::Rnn1, ConfigKind::BL);
    RunResult r = runScenario(cfg);
    EXPECT_GT(r.mlPerf, 100.0);  // hundreds of QPS
    EXPECT_GT(r.mlTailP95, 1e-3);
    EXPECT_LT(r.mlTailP95, 50e-3);
}

TEST(Scenario, AggressorDegradesBaseline)
{
    RunConfig cfg = quick(wl::MlWorkload::Cnn1, ConfigKind::BL);
    RunResult alone = runScenario(cfg);
    cfg.cpu = wl::CpuWorkload::DramAggressor;
    cfg.cpuThreadsOverride = 14;
    RunResult mixed = runScenario(cfg);
    EXPECT_LT(mixed.mlPerf, alone.mlPerf * 0.7);
    EXPECT_GT(mixed.avgSocketBw, alone.avgSocketBw);
}

TEST(Scenario, KelpProtectsAgainstAggressor)
{
    RunConfig cfg = quick(wl::MlWorkload::Cnn1, ConfigKind::BL);
    cfg.cpu = wl::CpuWorkload::DramAggressor;
    cfg.cpuThreadsOverride = 14;
    cfg.warmup = 20.0;
    RunResult bl = runScenario(cfg);
    cfg.config = ConfigKind::KP;
    RunResult kp = runScenario(cfg);
    EXPECT_GT(kp.mlPerf, bl.mlPerf * 1.2);
}

TEST(Scenario, SubdomainIsolationBeatsBaseline)
{
    RunConfig cfg = quick(wl::MlWorkload::Cnn1, ConfigKind::BL);
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 5;
    cfg.warmup = 20.0;
    RunResult bl = runScenario(cfg);
    cfg.config = ConfigKind::KPSD;
    RunResult kpsd = runScenario(cfg);
    EXPECT_GT(kpsd.mlPerf, bl.mlPerf);
    // Isolation costs low-priority throughput.
    EXPECT_LT(kpsd.cpuThroughput, bl.cpuThroughput);
}

TEST(Scenario, BackfillRecoversThroughput)
{
    RunConfig cfg = quick(wl::MlWorkload::Cnn1, ConfigKind::KPSD);
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 5;
    cfg.warmup = 30.0;
    RunResult kpsd = runScenario(cfg);
    cfg.config = ConfigKind::KP;
    RunResult kp = runScenario(cfg);
    EXPECT_GT(kp.cpuThroughput, kpsd.cpuThroughput);
    EXPECT_GT(kp.avgHiBackfill, 0.0);
    EXPECT_DOUBLE_EQ(kpsd.avgHiBackfill, 0.0);
}

TEST(Scenario, ForcedPrefetcherSweepReducesSaturation)
{
    RunConfig cfg = quick(wl::MlWorkload::Cnn1, ConfigKind::KPSD);
    cfg.cpu = wl::CpuWorkload::DramAggressor;
    cfg.aggressorLevel = wl::AggressorLevel::High;
    cfg.forcedPrefetcherFraction = 1.0;
    RunResult all_on = runScenario(cfg);
    cfg.forcedPrefetcherFraction = 0.0;
    RunResult all_off = runScenario(cfg);
    EXPECT_GT(all_on.avgSaturation, all_off.avgSaturation);
    EXPECT_GT(all_off.mlPerf, all_on.mlPerf);
}

TEST(Scenario, FineGrainedWhatIfDominates)
{
    RunConfig cfg = quick(wl::MlWorkload::Cnn1, ConfigKind::BL);
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 5;
    cfg.warmup = 20.0;
    RunResult bl = runScenario(cfg);
    cfg.config = ConfigKind::FG;
    RunResult fg = runScenario(cfg);
    // Hardware QoS protects the ML task without software throttling,
    // at CPU throughput close to Baseline (Section VI-D's estimate).
    EXPECT_GT(fg.mlPerf, bl.mlPerf * 1.15);
    EXPECT_GT(fg.cpuThroughput, bl.cpuThroughput * 0.80);
}

TEST(Scenario, SerialInferenceTraceWorks)
{
    RunConfig cfg = quick(wl::MlWorkload::Rnn1, ConfigKind::BL);
    cfg.serialInference = true;
    cfg.warmup = 2.0;
    Scenario s = buildScenario(cfg);
    int events = 0;
    s.inferTask->setTraceSink([&](const wl::TraceEvent &) {
        ++events;
    });
    s.engine->run(1.0);
    // Serial request stream: ~1/4.75ms requests x 15 segments.
    EXPECT_GT(events, 2000);
}

TEST(Scenario, RemoteAggressorWorseThanLocalOnCloudTpu)
{
    RunConfig cfg = quick(wl::MlWorkload::Cnn1, ConfigKind::BL);
    cfg.cpu = wl::CpuWorkload::DramAggressor;
    cfg.cpuThreadsOverride = 14;
    RunResult local = runScenario(cfg);
    cfg.aggressorThreadsLocal = 0.5;
    cfg.aggressorDataLocal = 0.5;
    RunResult remote = runScenario(cfg);
    EXPECT_LT(remote.mlPerf, local.mlPerf);
}

TEST(Scenario, StandaloneReferenceIsCached)
{
    RunResult a = standaloneReference(wl::MlWorkload::Cnn2);
    RunResult b = standaloneReference(wl::MlWorkload::Cnn2);
    EXPECT_DOUBLE_EQ(a.mlPerf, b.mlPerf);
    EXPECT_GT(a.mlPerf, 0.0);
}

TEST(Scenario, ConfigNames)
{
    EXPECT_STREQ(configName(ConfigKind::BL), "BL");
    EXPECT_STREQ(configName(ConfigKind::CT), "CT");
    EXPECT_STREQ(configName(ConfigKind::KPSD), "KP-SD");
    EXPECT_STREQ(configName(ConfigKind::KP), "KP");
    EXPECT_STREQ(configName(ConfigKind::FG), "FG");
}

TEST(Evaluation, MixGridShape)
{
    auto mixes = evaluationMixes();
    EXPECT_EQ(mixes.size(), 12u);  // 4 ML x 3 CPU
    EXPECT_EQ(configIndex(ConfigKind::BL), 0);
    EXPECT_EQ(configIndex(ConfigKind::KP), 3);
}

TEST(Evaluation, EfficiencyMath)
{
    MixResult r;
    r.mlPerf[0] = 100.0;  // BL
    r.cpuTput[0] = 10.0;
    r.mlPerf[1] = 120.0;  // CT: +20% ML
    r.cpuTput[1] = 8.0;   // -20% CPU
    EXPECT_NEAR(efficiency(r, ConfigKind::CT), 1.0, 1e-9);
    // Free lunch: gain with no loss maps to the sentinel.
    r.mlPerf[2] = 120.0;
    r.cpuTput[2] = 10.0;
    EXPECT_GT(efficiency(r, ConfigKind::KPSD), 50.0);
}

TEST(Evaluation, NonGridConfigPanics)
{
    EXPECT_DEATH(configIndex(ConfigKind::FG), "grid");
}
