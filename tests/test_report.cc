/**
 * @file
 * Tests for the experiment reporting helpers.
 */

#include <gtest/gtest.h>

#include "exp/report.hh"

using namespace kelp::exp;

TEST(Report, TableAlignsColumns)
{
    Table t({"a", "longheader"});
    t.addRow({"xx", "1"});
    t.addRow({"y", "22"});
    std::string out = t.render();
    // Header line, separator, two rows.
    int lines = 0;
    for (char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 4);
    // Every data line is as wide as the widest row.
    EXPECT_NE(out.find("a   longheader"), std::string::npos);
    EXPECT_NE(out.find("xx  1"), std::string::npos);
}

TEST(Report, TableRejectsRaggedRows)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "width");
}

TEST(Report, FmtPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.0, 0), "3");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Report, PctFormatsFractions)
{
    EXPECT_EQ(pct(0.5, 0), "50%");
    EXPECT_EQ(pct(0.123, 1), "12.3%");
    EXPECT_EQ(pct(1.0, 0), "100%");
}
