/**
 * @file
 * Tests for the deterministic cluster simulator (src/cluster/):
 * placement policies, worker-count byte-identity, job conservation,
 * and SLO-ladder shedding.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/scheduler.hh"
#include "sim/log.hh"
#include "trace/decision_log.hh"

using namespace kelp;
using namespace kelp::cluster;

namespace {

/** Small-but-nontrivial cluster the suite reuses: a few nodes, a
 * few node-hours, enough arrivals that placement has to choose. */
ClusterConfig
smallCluster()
{
    ClusterConfig cfg;
    cfg.nodes = 5;
    cfg.epochs = 3;
    cfg.arrivalsPerEpoch = 6.0;
    cfg.jobs = 1;
    return cfg;
}

NodeView
view(int index, int used, int capacity)
{
    NodeView v;
    v.index = index;
    v.usedThreads = used;
    v.capacityThreads = capacity;
    return v;
}

} // namespace

TEST(Scheduler, BinPackPicksFullestFeasibleNode)
{
    std::vector<NodeView> nodes = {view(0, 2, 12), view(1, 8, 12),
                                   view(2, 11, 12)};
    PlacementRequest req;
    req.kind = wl::CpuWorkload::Stream;
    req.threads = 2;
    // Node 2 has only 1 free thread; node 1 is the fullest that fits.
    EXPECT_EQ(placeJob(Placement::BinPack, {}, nodes, req), 1);
}

TEST(Scheduler, BinPackRespectsExcludeAndKind)
{
    std::vector<NodeView> nodes = {view(0, 4, 12), view(1, 4, 12)};
    nodes[0].hasKind = true;
    nodes[0].kind = wl::CpuWorkload::Stitch;
    PlacementRequest req;
    req.kind = wl::CpuWorkload::Stream;
    req.threads = 2;
    // Node 0 hosts a different kind; node 1 is excluded: no target.
    req.excludeNode = 1;
    EXPECT_EQ(placeJob(Placement::BinPack, {}, nodes, req), -1);
    req.excludeNode = -1;
    EXPECT_EQ(placeJob(Placement::BinPack, {}, nodes, req), 1);
}

TEST(Scheduler, InterferenceAwareAvoidsSaturatedAndEscalated)
{
    PolicyConfig pc;
    std::vector<NodeView> nodes = {view(0, 0, 12), view(1, 0, 12),
                                   view(2, 0, 12)};
    nodes[0].saturation = 0.85; // over the cap already
    nodes[1].rung = 1;          // escalated: shedding
    nodes[2].saturation = 0.30;
    PlacementRequest req;
    req.kind = wl::CpuWorkload::Stream;
    req.threads = 2;
    req.bwEstimate = 6.0;
    EXPECT_EQ(placeJob(Placement::InterferenceAware, pc, nodes, req),
              2);
    // Bin-pack sees none of that and takes the lowest index.
    EXPECT_EQ(placeJob(Placement::BinPack, pc, nodes, req), 0);
}

TEST(Scheduler, InterferenceAwareRejectsNearFloorNodes)
{
    PolicyConfig pc;
    std::vector<NodeView> nodes = {view(0, 0, 12)};
    nodes[0].perfRatio = pc.sloFloor + pc.sloMargin / 2.0;
    PlacementRequest req;
    req.kind = wl::CpuWorkload::Stream;
    req.threads = 1;
    req.bwEstimate = 1.0;
    EXPECT_EQ(placeJob(Placement::InterferenceAware, pc, nodes, req),
              -1);
}

TEST(Scheduler, EmptyRequestPanics)
{
    std::vector<NodeView> nodes = {view(0, 0, 12)};
    PlacementRequest req; // threads = 0
    EXPECT_DEATH(
        {
            sim::setContractMode(sim::ContractMode::Fatal);
            placeJob(Placement::BinPack, {}, nodes, req);
        },
        "threads");
}

TEST(Cluster, WorkerCountByteIdentity)
{
    // The tentpole guarantee: the evaluation fan-out commits in
    // strict index order, so --jobs never changes a byte of the
    // result.
    ClusterConfig serial = smallCluster();
    ClusterConfig parallel = smallCluster();
    parallel.jobs = 8;
    EXPECT_EQ(simulateCluster(serial).canonicalText(),
              simulateCluster(parallel).canonicalText());
}

TEST(Cluster, RepeatDeterminismAndSeedDivergence)
{
    ClusterConfig cfg = smallCluster();
    std::string a = simulateCluster(cfg).canonicalText();
    std::string b = simulateCluster(cfg).canonicalText();
    EXPECT_EQ(a, b);
    cfg.seed = 777;
    EXPECT_NE(a, simulateCluster(cfg).canonicalText());
}

TEST(Cluster, ConservationInvariants)
{
    ClusterConfig cfg = smallCluster();
    cfg.config = exp::ConfigKind::BL; // contention -> ladder actions
    cfg.placement = Placement::BinPack;
    ClusterResult r = simulateCluster(cfg);
    r.checkConservation();
    EXPECT_EQ(r.arrivals, r.placed + r.rejected);
    EXPECT_EQ(r.placed, r.finished + r.evictions + r.runningAtEnd);
    EXPECT_EQ(r.nodeHours,
              static_cast<uint64_t>(cfg.nodes) *
                  static_cast<uint64_t>(cfg.epochs));
    EXPECT_EQ(r.tailSamples.size(), r.nodeHours);
    EXPECT_EQ(r.epochs.size(), static_cast<size_t>(cfg.epochs));
    // Per-epoch rows sum to the totals.
    uint64_t arrivals = 0, placed = 0, rejected = 0;
    for (const EpochRow &row : r.epochs) {
        arrivals += row.arrivals;
        placed += row.placed;
        rejected += row.rejected;
    }
    EXPECT_EQ(arrivals, r.arrivals);
    EXPECT_EQ(placed, r.placed);
    EXPECT_EQ(rejected, r.rejected);
}

TEST(Cluster, LadderShedsUnderImpossibleFloor)
{
    // An SLO floor above what jitter allows forces every occupied
    // node onto the ladder; with migrate at rung 1 and evict at rung
    // 2 the cluster must shed -- and every shed job must stay
    // conserved (migrated jobs keep running, evicted ones terminal).
    ClusterConfig cfg = smallCluster();
    cfg.config = exp::ConfigKind::BL;
    cfg.placement = Placement::BinPack;
    cfg.sloFloor = 1.10;
    cfg.migrateRung = 1;
    cfg.evictRung = 2;
    ClusterResult r = simulateCluster(cfg);
    EXPECT_GT(r.migrations + r.evictions, 0u);
    EXPECT_EQ(r.sloNodeHours, 0u);
    r.checkConservation();
    // Migration history lands on the ledger.
    bool any_moved_or_evicted = false;
    for (const BatchJob &job : r.jobLedger) {
        if (job.migrations > 0 || job.state == JobState::Evicted)
            any_moved_or_evicted = true;
    }
    EXPECT_TRUE(any_moved_or_evicted);
}

TEST(Cluster, KelpNodesMeetSloWhereBaselineDoesNot)
{
    // The cluster-level restatement of the paper's node-level claim:
    // under the same scheduler and arrival stream, KP nodes keep
    // more node-hours inside the SLO than BL nodes.
    ClusterConfig bl = smallCluster();
    bl.placement = Placement::BinPack;
    bl.config = exp::ConfigKind::BL;
    ClusterConfig kp = bl;
    kp.config = exp::ConfigKind::KP;
    ClusterResult rbl = simulateCluster(bl);
    ClusterResult rkp = simulateCluster(kp);
    EXPECT_GT(rkp.sloFraction(), rbl.sloFraction());
    EXPECT_DOUBLE_EQ(rkp.sloFraction(), 1.0);
}

TEST(Cluster, InterferenceAwareProtectsBaselineSlo)
{
    // Under BL nodes (no node-level QoS), the interference-aware
    // scheduler must do no worse on SLO node-hours than blind
    // bin-packing, paying with stranded capacity instead.
    ClusterConfig bp = smallCluster();
    bp.config = exp::ConfigKind::BL;
    bp.placement = Placement::BinPack;
    ClusterConfig ia = bp;
    ia.placement = Placement::InterferenceAware;
    ClusterResult rbp = simulateCluster(bp);
    ClusterResult ria = simulateCluster(ia);
    EXPECT_GE(ria.sloFraction(), rbp.sloFraction());
    EXPECT_GE(ria.strandedRatio(), rbp.strandedRatio());
}

TEST(Cluster, TailsUseSharedPercentileConvention)
{
    ClusterResult r = simulateCluster(smallCluster());
    fleet::FleetResult tails = r.tails();
    EXPECT_EQ(tails.count(), r.tailSamples.size());
    // values() is sorted; p100 is the max, p0 the min.
    EXPECT_DOUBLE_EQ(tails.percentile(100.0), tails.values().back());
    EXPECT_DOUBLE_EQ(tails.percentile(0.0), tails.values().front());
}

TEST(Cluster, DecisionLogAuditsSchedulerActions)
{
    ClusterConfig cfg = smallCluster();
    cfg.config = exp::ConfigKind::BL;
    cfg.sloFloor = 1.10; // force ladder actions
    cfg.migrateRung = 1;
    cfg.evictRung = 2;
    trace::DecisionLog log;
    ClusterResult r = simulateCluster(cfg, &log);
    ASSERT_FALSE(log.empty());
    uint64_t places = 0, rejects = 0, migrates = 0, evicts = 0;
    for (const trace::DecisionEvent &ev : log.events()) {
        if (ev.kind == "cluster-place")
            ++places;
        else if (ev.kind == "cluster-reject")
            ++rejects;
        else if (ev.kind == "cluster-migrate")
            ++migrates;
        else if (ev.kind == "cluster-evict")
            ++evicts;
    }
    EXPECT_EQ(places, r.placed);
    EXPECT_EQ(rejects, r.rejected);
    EXPECT_EQ(migrates, r.migrations);
    EXPECT_EQ(evicts, r.evictions);
}

TEST(Cluster, BadConfigPanics)
{
    ClusterConfig cfg;
    cfg.nodes = 0;
    EXPECT_DEATH(
        {
            sim::setContractMode(sim::ContractMode::Fatal);
            simulateCluster(cfg);
        },
        "node");
    cfg = ClusterConfig{};
    cfg.minJobEpochs = 3;
    cfg.maxJobEpochs = 2;
    EXPECT_DEATH(
        {
            sim::setContractMode(sim::ContractMode::Fatal);
            simulateCluster(cfg);
        },
        "lifetime");
}
