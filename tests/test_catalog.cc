/**
 * @file
 * Tests for the workload catalog: Table I fidelity and parameter
 * sanity for every workload model.
 */

#include <gtest/gtest.h>

#include "node/platform.hh"
#include "workload/catalog.hh"

using namespace kelp;
using namespace kelp::wl;

TEST(Catalog, FourMlWorkloads)
{
    auto all = allMlWorkloads();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0], MlWorkload::Rnn1);
    EXPECT_EQ(all[3], MlWorkload::Cnn3);
}

TEST(Catalog, TableOnePlatforms)
{
    EXPECT_EQ(mlDesc(MlWorkload::Rnn1).platform, accel::Kind::TpuV1);
    EXPECT_EQ(mlDesc(MlWorkload::Cnn1).platform, accel::Kind::CloudTpu);
    EXPECT_EQ(mlDesc(MlWorkload::Cnn2).platform, accel::Kind::CloudTpu);
    EXPECT_EQ(mlDesc(MlWorkload::Cnn3).platform, accel::Kind::Gpu);
}

TEST(Catalog, TableOneInteractions)
{
    EXPECT_EQ(mlDesc(MlWorkload::Rnn1).interaction, "Beam search");
    EXPECT_EQ(mlDesc(MlWorkload::Cnn1).interaction, "Data in-feed");
    EXPECT_EQ(mlDesc(MlWorkload::Cnn2).interaction, "Data in-feed");
    EXPECT_EQ(mlDesc(MlWorkload::Cnn3).interaction,
              "Parameter server");
}

TEST(Catalog, TableOneIntensities)
{
    EXPECT_EQ(mlDesc(MlWorkload::Rnn1).cpuIntensity, "Medium");
    EXPECT_EQ(mlDesc(MlWorkload::Rnn1).memIntensity, "Low");
    EXPECT_EQ(mlDesc(MlWorkload::Cnn2).cpuIntensity, "High");
    EXPECT_EQ(mlDesc(MlWorkload::Cnn2).memIntensity, "Medium");
    EXPECT_EQ(mlDesc(MlWorkload::Cnn3).memIntensity, "High");
}

TEST(Catalog, OnlyRnn1IsInference)
{
    EXPECT_TRUE(mlDesc(MlWorkload::Rnn1).inference);
    EXPECT_FALSE(mlDesc(MlWorkload::Cnn1).inference);
    EXPECT_FALSE(mlDesc(MlWorkload::Cnn2).inference);
    EXPECT_FALSE(mlDesc(MlWorkload::Cnn3).inference);
}

TEST(Catalog, MemIntensityOrderingMatchesTable)
{
    // Table I intensity classes must be reflected in per-core
    // bandwidth demand: CNN3 (High) > CNN2 (Medium) > CNN1/RNN1 (Low).
    auto bw = [](MlWorkload w) {
        MlDesc d = mlDesc(w);
        if (d.inference) {
            for (const auto &st : d.infer.iteration.stages)
                if (st.segments[0].kind == SegmentKind::Host)
                    return st.segments[0].host.bwPerCore;
        }
        for (const auto &st : d.step.stages)
            for (const auto &seg : st.segments)
                if (seg.kind == SegmentKind::Host)
                    return seg.host.bwPerCore;
        return 0.0;
    };
    EXPECT_GT(bw(MlWorkload::Cnn3), bw(MlWorkload::Cnn2));
    EXPECT_GT(bw(MlWorkload::Cnn2), bw(MlWorkload::Cnn1));
    EXPECT_GT(bw(MlWorkload::Cnn2), bw(MlWorkload::Rnn1));
}

TEST(Catalog, SubMillisecondInferencePhases)
{
    // Figure 3: interleaving is on the order of sub-ms to ms.
    MlDesc d = mlDesc(MlWorkload::Rnn1);
    for (const auto &st : d.infer.iteration.stages) {
        EXPECT_GT(st.segments[0].duration, 0.01 * sim::msec);
        EXPECT_LT(st.segments[0].duration, 1.0 * sim::msec);
    }
}

TEST(Catalog, TrainStepsAreMilliseconds)
{
    for (auto w : {MlWorkload::Cnn1, MlWorkload::Cnn2,
                   MlWorkload::Cnn3}) {
        sim::Time step = mlDesc(w).step.standaloneDuration();
        EXPECT_GT(step, 1.0 * sim::msec);
        EXPECT_LT(step, 50.0 * sim::msec);
    }
}

TEST(Catalog, MlCoresFitInSubdomain)
{
    for (auto w : allMlWorkloads()) {
        MlDesc d = mlDesc(w);
        node::PlatformSpec spec = node::platformFor(d.platform);
        EXPECT_LE(d.mlCores, spec.topo.coresPerSocket / 2)
            << mlName(w);
        EXPECT_GE(d.mlCores, 1);
    }
}

TEST(Catalog, CpuParamsSane)
{
    for (auto w : {CpuWorkload::Stream, CpuWorkload::Stitch,
                   CpuWorkload::Cpuml, CpuWorkload::LlcAggressor,
                   CpuWorkload::DramAggressor}) {
        HostPhaseParams p = cpuParams(w, 32.0);
        EXPECT_GT(p.bwPerCore, 0.0) << cpuName(w);
        EXPECT_GE(p.cpuFrac, 0.0);
        EXPECT_LT(p.cpuFrac, 1.0);
        EXPECT_GT(p.llcFootprintMb, 0.0);
        EXPECT_GE(p.latencySensitivity, 0.0);
        EXPECT_LE(p.latencySensitivity, 1.0);
    }
}

TEST(Catalog, LlcAggressorFitsTheLlc)
{
    HostPhaseParams p = cpuParams(CpuWorkload::LlcAggressor, 48.0);
    EXPECT_DOUBLE_EQ(p.llcFootprintMb, 48.0);
    EXPECT_GT(p.llcHitMax, 0.9);  // cache-resident by design
}

TEST(Catalog, DramAggressorDoesNotFit)
{
    HostPhaseParams p = cpuParams(CpuWorkload::DramAggressor, 48.0);
    EXPECT_GT(p.llcFootprintMb, 100.0);
    EXPECT_LT(p.llcHitMax, 0.1);
}

TEST(Catalog, StreamIsBandwidthBound)
{
    HostPhaseParams p = cpuParams(CpuWorkload::Stream);
    EXPECT_LT(p.cpuFrac, 0.15);
    EXPECT_LT(p.latencySensitivity, 0.3);
    EXPECT_GT(p.bwPerCore, 4.0);
}

TEST(Catalog, CpumlIsComputeHeavy)
{
    HostPhaseParams p = cpuParams(CpuWorkload::Cpuml);
    EXPECT_GT(p.cpuFrac, 0.5);
    EXPECT_LT(p.bwPerCore, cpuParams(CpuWorkload::Stream).bwPerCore);
}

TEST(Catalog, AggressorLevelsMonotone)
{
    double sub_bw = 57.6;
    int lo = aggressorThreads(AggressorLevel::Low, sub_bw);
    int med = aggressorThreads(AggressorLevel::Medium, sub_bw);
    int hi = aggressorThreads(AggressorLevel::High, sub_bw);
    EXPECT_LT(lo, med);
    EXPECT_LT(med, hi);
    // High oversubscribes the subdomain.
    double per_core = cpuParams(CpuWorkload::DramAggressor).bwPerCore;
    EXPECT_GE(hi * per_core, sub_bw);
}

TEST(Catalog, SaturatingThreadsAtTheKnee)
{
    // Offered load lands at ~95% of peak: the knee of the
    // bandwidth-latency curve.
    double per_core = cpuParams(CpuWorkload::DramAggressor).bwPerCore;
    int n = saturatingDramThreads(100.0);
    EXPECT_GE(n * per_core, 95.0);
    EXPECT_LT((n - 1) * per_core, 95.0);
}

TEST(Catalog, StitchInstancesAreFourThreads)
{
    EXPECT_EQ(threadsPerInstance(CpuWorkload::Stitch), 4);
    EXPECT_EQ(threadsPerInstance(CpuWorkload::Stream), 1);
}

TEST(Catalog, NamesRoundTrip)
{
    EXPECT_STREQ(mlName(MlWorkload::Rnn1), "RNN1");
    EXPECT_STREQ(cpuName(CpuWorkload::Stitch), "Stitch");
    EXPECT_STREQ(aggressorLevelName(AggressorLevel::High), "H");
}

TEST(Platform, ThreePlatformsDistinct)
{
    auto tpu = node::platformFor(accel::Kind::TpuV1);
    auto cloud = node::platformFor(accel::Kind::CloudTpu);
    auto gpu = node::platformFor(accel::Kind::Gpu);
    EXPECT_NE(tpu.name, cloud.name);
    EXPECT_NE(cloud.name, gpu.name);
    // Cloud TPU platform has the most bandwidth and the highest
    // remote-traffic sensitivity (Section VI-A).
    EXPECT_GT(cloud.mem.socket.peakBw, tpu.mem.socket.peakBw);
    EXPECT_GT(cloud.mem.upiCoherenceTax, tpu.mem.upiCoherenceTax);
    EXPECT_GT(cloud.mem.upiCoherenceTax, gpu.mem.upiCoherenceTax);
}

TEST(Platform, AcceleratorsMatchPaper)
{
    EXPECT_NEAR(node::platformFor(accel::Kind::TpuV1).accel.peakTflops,
                92.0, 1e-9);
    EXPECT_NEAR(
        node::platformFor(accel::Kind::CloudTpu).accel.peakTflops,
        180.0, 1e-9);
    EXPECT_NEAR(
        node::platformFor(accel::Kind::CloudTpu).accel.deviceMemGb,
        64.0, 1e-9);
}
