/**
 * @file
 * Tests for the kelp-analyze cross-TU rule engine, driven as a
 * library per the design: fixture files under tests/analyze_fixtures/
 * are read from disk and handed to analyzeFiles()/buildIndex() under
 * virtual repo-relative paths that exercise each rule's scoping, and
 * a second group of tests loads the *real* src/ tree (via
 * KELP_SOURCE_DIR) to pin that the shipped baseline is empty and that
 * single-field mutations of the tree are caught. No subprocess is
 * involved.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze.hh"

namespace {

namespace fs = std::filesystem;

using kelp::analyze::analyzeFiles;
using kelp::analyze::buildIndex;
using kelp::analyze::Finding;
using kelp::analyze::Index;
using kelp::analyze::moduleOf;
using kelp::analyze::parseLayering;
using kelp::analyze::SourceFile;

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing file " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
readFixture(const std::string &name)
{
    return readAll(std::string(ANALYZE_FIXTURE_DIR) + "/" + name);
}

/** Drive one fixture as the whole tree under a virtual src/ path. */
std::vector<Finding>
analyzeFixture(const std::string &name, const std::string &virtualPath,
               const std::string &layeringText = "")
{
    std::vector<SourceFile> files{{virtualPath, readFixture(name)}};
    return analyzeFiles(files, "layering.txt", layeringText);
}

int
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    int n = 0;
    for (const auto &f : fs)
        if (f.rule == rule)
            ++n;
    return n;
}

std::string
replaceAll(std::string s, const std::string &from, const std::string &to)
{
    size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

// ---------------------------------------------------------------
// snapshot-completeness
// ---------------------------------------------------------------

TEST(AnalyzeSnapshot, UnserializedMemberFires)
{
    auto fs =
        analyzeFixture("snapshot_missing.hh", "src/kelp/widget.hh");
    ASSERT_EQ(countRule(fs, "snapshot-completeness"), 1);
    for (const auto &f : fs)
        if (f.rule == "snapshot-completeness") {
            EXPECT_NE(f.message.find("'lost_'"), std::string::npos)
                << f.message;
            EXPECT_NE(f.message.find("'Widget'"), std::string::npos);
        }
}

TEST(AnalyzeSnapshot, SerializedTransientWiringAndStaticAreQuiet)
{
    auto fs = analyzeFixture("snapshot_ok.hh", "src/kelp/widget.hh");
    EXPECT_EQ(countRule(fs, "snapshot-completeness"), 0);
    EXPECT_EQ(countRule(fs, "bad-suppression"), 0);
}

TEST(AnalyzeSnapshot, CheckpointedMarkPullsClassIntoTheRule)
{
    auto fs =
        analyzeFixture("snapshot_marked.hh", "src/kelp/cache.hh");
    ASSERT_EQ(countRule(fs, "snapshot-completeness"), 1);
    for (const auto &f : fs)
        if (f.rule == "snapshot-completeness") {
            EXPECT_NE(f.message.find("'entries_'"), std::string::npos)
                << f.message;
        }
}

TEST(AnalyzeSnapshot, OutsideSrcTreeIsQuiet)
{
    auto fs = analyzeFixture("snapshot_missing.hh",
                             "tests/widget.hh");
    EXPECT_EQ(countRule(fs, "snapshot-completeness"), 0);
}

TEST(AnalyzeSnapshot, OutOfLineBodiesMergeAcrossFilesWithinModule)
{
    // The checkpoint bodies live in another TU; the serialized set
    // must merge across files -- but only for a class in the same
    // src module, so the same-named mem-module class keeps flagging.
    const std::string hh =
        "class Box {\n"
        "  public:\n"
        "    int snapshot() const;\n"
        "    void restore(int s);\n"
        "  private:\n"
        "    int level_ = 0;\n"
        "};\n";
    const std::string cc =
        "#include \"kelp/box.hh\"\n"
        "int Box::snapshot() const { return level_; }\n"
        "void Box::restore(int s) { level_ = s; }\n";
    std::vector<SourceFile> files{{"src/kelp/box.hh", hh},
                                  {"src/kelp/box.cc", cc},
                                  {"src/mem/box.hh", hh}};
    auto fs = analyzeFiles(files, "layering.txt",
                           "kelp: mem\nmem:\n");
    ASSERT_EQ(countRule(fs, "snapshot-completeness"), 1);
    for (const auto &f : fs)
        if (f.rule == "snapshot-completeness") {
            EXPECT_EQ(f.file, "src/mem/box.hh");
        }
}

// ---------------------------------------------------------------
// audit-completeness
// ---------------------------------------------------------------

TEST(AnalyzeAudit, UnauditedKnobWriteFires)
{
    auto fs =
        analyzeFixture("audit_missing.cc", "src/kelp/actuator.cc");
    ASSERT_EQ(countRule(fs, "audit-completeness"), 1);
    for (const auto &f : fs)
        if (f.rule == "audit-completeness") {
            EXPECT_NE(f.message.find("'setCores()'"),
                      std::string::npos)
                << f.message;
            EXPECT_NE(f.message.find("'enforce'"), std::string::npos);
        }
}

TEST(AnalyzeAudit, HelperCapabilityPropagatesThroughCallGraph)
{
    auto fs = analyzeFixture("audit_ok.cc", "src/kelp/actuator.cc");
    EXPECT_EQ(countRule(fs, "audit-completeness"), 0);
}

TEST(AnalyzeAudit, AllowDirectiveSuppressesAndItsRemovalRefires)
{
    auto fs =
        analyzeFixture("audit_allowed.cc", "src/kelp/actuator.cc");
    EXPECT_EQ(countRule(fs, "audit-completeness"), 0);
    EXPECT_EQ(countRule(fs, "bad-suppression"), 0);

    // Strip the directive (keep the comment a plain comment): the
    // same write must become a finding again.
    std::string stripped = replaceAll(
        readFixture("audit_allowed.cc"),
        "kelp: allow(audit-completeness)", "note");
    std::vector<SourceFile> files{{"src/kelp/actuator.cc", stripped}};
    auto fs2 = analyzeFiles(files, "layering.txt", "");
    EXPECT_EQ(countRule(fs2, "audit-completeness"), 1);
}

TEST(AnalyzeAudit, OutsideControlModulesIsQuiet)
{
    // Knob writes in exp/ (experiment staging) are out of scope.
    auto fs =
        analyzeFixture("audit_missing.cc", "src/exp/actuator.cc");
    EXPECT_EQ(countRule(fs, "audit-completeness"), 0);
}

TEST(AnalyzeAudit, ServeModuleIsInScope)
{
    auto fs =
        analyzeFixture("audit_missing.cc", "src/serve/actuator.cc");
    EXPECT_EQ(countRule(fs, "audit-completeness"), 1);
}

// ---------------------------------------------------------------
// dirty-discipline
// ---------------------------------------------------------------

TEST(AnalyzeDirty, UnmarkedLifecycleMutationFires)
{
    auto fs =
        analyzeFixture("dirty_missing.cc", "src/exp/manager.cc");
    ASSERT_EQ(countRule(fs, "dirty-discipline"), 1);
    for (const auto &f : fs)
        if (f.rule == "dirty-discipline") {
            EXPECT_NE(f.message.find("'setLifeState()'"),
                      std::string::npos)
                << f.message;
            EXPECT_NE(f.message.find("'stop'"), std::string::npos);
        }
}

TEST(AnalyzeDirty, MutatorDefinitionOrCallerMarkingIsQuiet)
{
    auto fs = analyzeFixture("dirty_ok.cc", "src/exp/manager.cc");
    EXPECT_EQ(countRule(fs, "dirty-discipline"), 0);
    EXPECT_EQ(countRule(fs, "bad-suppression"), 0);
}

TEST(AnalyzeDirty, AllowDirectiveSuppressesAndItsRemovalRefires)
{
    auto fs =
        analyzeFixture("dirty_allowed.cc", "src/exp/manager.cc");
    EXPECT_EQ(countRule(fs, "dirty-discipline"), 0);
    EXPECT_EQ(countRule(fs, "bad-suppression"), 0);

    std::string stripped = replaceAll(
        readFixture("dirty_allowed.cc"),
        "kelp: allow(dirty-discipline)", "note");
    std::vector<SourceFile> files{{"src/exp/manager.cc", stripped}};
    auto fs2 = analyzeFiles(files, "layering.txt", "");
    EXPECT_EQ(countRule(fs2, "dirty-discipline"), 1);
}

TEST(AnalyzeDirty, KnobMutatorsAreInScopeAcrossAllOfSrc)
{
    // The audit fixture's unaudited setCores() is also a dirty-
    // discipline miss, and unlike audit-completeness the dirty rule
    // covers every src/ module, not just kelp/ and serve/.
    auto fs =
        analyzeFixture("audit_missing.cc", "src/exp/actuator.cc");
    EXPECT_EQ(countRule(fs, "dirty-discipline"), 1);
}

TEST(AnalyzeDirty, OutsideSrcTreeIsQuiet)
{
    auto fs = analyzeFixture("dirty_missing.cc", "tests/manager.cc");
    EXPECT_EQ(countRule(fs, "dirty-discipline"), 0);
}

// ---------------------------------------------------------------
// rng-discipline
// ---------------------------------------------------------------

TEST(AnalyzeRng, OuterRngUsedInsideJobLambdaFires)
{
    auto fs = analyzeFixture("rng_reuse.cc", "src/exp/campaign.cc");
    ASSERT_EQ(countRule(fs, "rng-discipline"), 1);
    for (const auto &f : fs)
        if (f.rule == "rng-discipline") {
            EXPECT_NE(f.message.find("'rng.uniform()'"),
                      std::string::npos)
                << f.message;
        }
}

TEST(AnalyzeRng, DerivedPerJobStreamIsQuiet)
{
    auto fs = analyzeFixture("rng_ok.cc", "src/exp/campaign.cc");
    EXPECT_EQ(countRule(fs, "rng-discipline"), 0);
}

// ---------------------------------------------------------------
// layering
// ---------------------------------------------------------------

TEST(AnalyzeLayering, UndeclaredEdgeFires)
{
    auto fs = analyzeFixture("layering_bad.cc", "src/serve/front.cc",
                             "serve: trace\ntrace:\nkelp: trace\n");
    ASSERT_EQ(countRule(fs, "layering"), 1);
    for (const auto &f : fs)
        if (f.rule == "layering") {
            EXPECT_NE(f.message.find("'serve -> kelp'"),
                      std::string::npos)
                << f.message;
        }
}

TEST(AnalyzeLayering, UndeclaredModuleFires)
{
    auto fs = analyzeFixture("layering_bad.cc", "src/serve/front.cc",
                             "kelp: trace\ntrace:\n");
    ASSERT_EQ(countRule(fs, "layering"), 1);
    for (const auto &f : fs)
        if (f.rule == "layering") {
            EXPECT_NE(f.message.find("not declared in the layering "
                                     "table"),
                      std::string::npos)
                << f.message;
        }
}

TEST(AnalyzeLayering, DeclaredEdgeIsQuiet)
{
    auto fs = analyzeFixture("layering_ok.cc", "src/serve/front.cc",
                             "serve: trace\ntrace:\n");
    EXPECT_EQ(countRule(fs, "layering"), 0);
}

TEST(AnalyzeLayering, TableCycleIsRejected)
{
    std::vector<Finding> bad;
    auto dag = parseLayering("layering.txt", "a: b\nb: a\n", bad);
    ASSERT_EQ(countRule(bad, "layering"), 1);
    EXPECT_NE(bad[0].message.find("cycle"), std::string::npos);
    EXPECT_EQ(dag.size(), 2u);
}

TEST(AnalyzeLayering, FuzzAsDependencyIsRejected)
{
    std::vector<Finding> bad;
    parseLayering("layering.txt", "exp: fuzz sim\n", bad);
    ASSERT_EQ(countRule(bad, "layering"), 1);
    EXPECT_NE(bad[0].message.find("fuzz"), std::string::npos);
}

TEST(AnalyzeLayering, MalformedLineIsRejected)
{
    std::vector<Finding> bad;
    parseLayering("layering.txt", "exp sim\n", bad);
    ASSERT_EQ(countRule(bad, "layering"), 1);
    EXPECT_EQ(bad[0].line, 1);
}

// ---------------------------------------------------------------
// index-level unit tests
// ---------------------------------------------------------------

TEST(AnalyzeIndex, MemberFlagsMethodsAndTransients)
{
    const std::string hh =
        "class Probe {\n"
        "  public:\n"
        "    void tick();\n"
        "    int snapshot() const { return plain_; }\n"
        "  private:\n"
        "    int plain_ = 0;\n"
        "    int *ptr_ = nullptr;\n"
        "    int &ref_;\n"
        "    static int shared_;\n"
        "    // kelp: transient(derived cache)\n"
        "    int cache_ = 0;\n"
        "};\n";
    std::vector<Finding> bad;
    Index ix = buildIndex({{"src/kelp/probe.hh", hh}}, bad);
    EXPECT_TRUE(bad.empty());
    ASSERT_EQ(ix.classes.size(), 1u);
    const auto &c = ix.classes[0];
    EXPECT_EQ(c.name, "Probe");
    EXPECT_TRUE(c.checkpointBearing());
    EXPECT_TRUE(c.methods.count("tick"));
    EXPECT_TRUE(c.methods.count("snapshot"));
    EXPECT_TRUE(c.serialized.count("plain_"));
    ASSERT_EQ(c.members.size(), 5u);
    for (const auto &m : c.members) {
        if (m.name == "plain_")
            EXPECT_FALSE(m.isStatic || m.isRef || m.isPtr);
        else if (m.name == "ptr_")
            EXPECT_TRUE(m.isPtr);
        else if (m.name == "ref_")
            EXPECT_TRUE(m.isRef);
        else if (m.name == "shared_")
            EXPECT_TRUE(m.isStatic);
        else if (m.name == "cache_") {
            EXPECT_TRUE(m.hasTransient);
            EXPECT_EQ(m.transientReason, "derived cache");
        } else
            ADD_FAILURE() << "unexpected member " << m.name;
    }
}

TEST(AnalyzeIndex, IncludesContractsAndKnobWritesAreIndexed)
{
    const std::string cc =
        "#include \"sim/log.hh\"\n"
        "#include <vector>\n"
        "void f(int x, Knobs *k) {\n"
        "    KELP_EXPECTS(x > 0);\n"
        "    k->setCores(0, 0, 1, x);\n"
        "    KELP_ENSURES(x > 0);\n"
        "}\n";
    std::vector<Finding> bad;
    Index ix = buildIndex({{"src/kelp/f.cc", cc}}, bad);
    ASSERT_EQ(ix.includes.size(), 1u);
    EXPECT_EQ(ix.includes[0].target, "sim/log.hh");
    EXPECT_EQ(ix.includes[0].line, 1);
    ASSERT_EQ(ix.contracts.size(), 2u);
    EXPECT_EQ(ix.contracts[0].macro, "KELP_EXPECTS");
    ASSERT_EQ(ix.knobWrites.size(), 1u);
    EXPECT_EQ(ix.knobWrites[0].mutator, "setCores");
    ASSERT_GE(ix.knobWrites[0].function, 0);
    EXPECT_EQ(
        ix.functions[static_cast<size_t>(ix.knobWrites[0].function)]
            .name,
        "f");
}

TEST(AnalyzeIndex, ModuleOfParsesSrcPathsOnly)
{
    EXPECT_EQ(moduleOf("src/kelp/controller.cc"), "kelp");
    EXPECT_EQ(moduleOf("src/sim/rng.hh"), "sim");
    EXPECT_EQ(moduleOf("tests/test_analyze.cc"), "");
    EXPECT_EQ(moduleOf("src/loose.hh"), "");
}

TEST(AnalyzeReports, JsonAndInventoryAreWellFormedSmoke)
{
    std::vector<Finding> one{{"src/kelp/a.cc", 3, "layering",
                              "msg with \"quotes\"", "#include x"}};
    std::string js = kelp::analyze::jsonReport(one);
    EXPECT_NE(js.find("\"rule\": \"layering\""), std::string::npos)
        << js;
    EXPECT_NE(js.find("\\\"quotes\\\""), std::string::npos);

    std::vector<Finding> bad;
    Index ix = buildIndex(
        {{"src/kelp/f.cc",
          "void f(Knobs *k) { KELP_EXPECTS(true); }\n"}},
        bad);
    std::string inv = kelp::analyze::inventoryReport(ix);
    EXPECT_NE(inv.find("kelp"), std::string::npos) << inv;
}

// ---------------------------------------------------------------
// real-tree tests: the shipped tree must be clean, and plausible
// single-edit regressions must be caught.
// ---------------------------------------------------------------

const std::vector<SourceFile> &
realTree()
{
    static const std::vector<SourceFile> tree = [] {
        const fs::path root = KELP_SOURCE_DIR;
        std::vector<fs::path> paths;
        for (auto it = fs::recursive_directory_iterator(root / "src");
             it != fs::recursive_directory_iterator(); ++it)
            if (it->is_regular_file()) {
                std::string ext = it->path().extension().string();
                if (ext == ".cc" || ext == ".hh")
                    paths.push_back(it->path());
            }
        std::sort(paths.begin(), paths.end());
        std::vector<SourceFile> files;
        for (const fs::path &p : paths)
            files.push_back({fs::relative(p, root).generic_string(),
                             readAll(p.string())});
        return files;
    }();
    return tree;
}

std::string
realLayering()
{
    return readAll(std::string(KELP_SOURCE_DIR) +
                   "/tools/kelp_analyze/layering.txt");
}

TEST(AnalyzeRealTree, ShippedTreeIsCleanWithEmptyBaseline)
{
    auto fs = analyzeFiles(realTree(),
                           "tools/kelp_analyze/layering.txt",
                           realLayering());
    for (const auto &f : fs)
        ADD_FAILURE() << kelp::analyze::formatFinding(f);
    EXPECT_TRUE(fs.empty());
}

TEST(AnalyzeRealTree, DroppingASnapshotFieldIsCaught)
{
    // Simulate the classic checkpoint bug: the serializer stops
    // mentioning counterWindow/hasCounterWindow (e.g. a dropped cw=
    // token in ControllerSnapshot save/restore). The header still
    // declares the members, so snapshot-completeness must fire for
    // both.
    std::vector<SourceFile> files = realTree();
    bool mutated = false;
    for (auto &f : files)
        if (f.path == "src/kelp/controller.cc") {
            f.content =
                replaceAll(f.content, "counterWindow", "cwRenamed");
            f.content = replaceAll(f.content, "hasCounterWindow",
                                   "hasCwRenamed");
            mutated = true;
        }
    ASSERT_TRUE(mutated);
    auto fs = analyzeFiles(files, "tools/kelp_analyze/layering.txt",
                           realLayering());
    int hits = 0;
    for (const auto &f : fs)
        if (f.rule == "snapshot-completeness" &&
            f.file == "src/kelp/controller.hh")
            ++hits;
    EXPECT_GE(hits, 2) << "expected counterWindow and "
                          "hasCounterWindow to be flagged";
}

TEST(AnalyzeRealTree, StrippingAnAuditAllowIsCaught)
{
    // The CoreThrottle actuation path justifies its knob writes with
    // allow(audit-completeness) directives (the decision is recorded
    // in sample()). Removing those justifications must re-expose the
    // writes as findings.
    std::vector<SourceFile> files = realTree();
    bool mutated = false;
    for (auto &f : files)
        if (f.path == "src/kelp/core_throttle.cc") {
            f.content =
                replaceAll(f.content, "kelp: allow(audit-completeness)",
                           "note");
            mutated = true;
        }
    ASSERT_TRUE(mutated);
    auto fs = analyzeFiles(files, "tools/kelp_analyze/layering.txt",
                           realLayering());
    int hits = 0;
    for (const auto &f : fs)
        if (f.rule == "audit-completeness" &&
            f.file == "src/kelp/core_throttle.cc")
            ++hits;
    EXPECT_GE(hits, 1);
}

TEST(AnalyzeRealTree, StrippingANoteChangeFromASetterIsCaught)
{
    // Simulate the quiescence bug the dirty-discipline rule exists
    // for: Task::setLifeState stops invalidating quiescence. Every
    // lifecycle transition in the controller and the lifecycle
    // driver would then mutate state a fast-forwarding node never
    // hears about, so the rule must flag the call sites.
    std::vector<SourceFile> files = realTree();
    bool mutated = false;
    for (auto &f : files)
        if (f.path == "src/workload/task.hh") {
            std::string from = "lifeState_ = s;\n        noteChange();";
            ASSERT_NE(f.content.find(from), std::string::npos);
            f.content = replaceAll(f.content, from, "lifeState_ = s;");
            mutated = true;
        }
    ASSERT_TRUE(mutated);
    auto fs = analyzeFiles(files, "tools/kelp_analyze/layering.txt",
                           realLayering());
    int hits = 0;
    for (const auto &f : fs)
        if (f.rule == "dirty-discipline")
            ++hits;
    EXPECT_GE(hits, 1);
}

TEST(AnalyzeRealTree, RealLayeringTableParsesCleanly)
{
    std::vector<Finding> bad;
    auto dag = parseLayering("tools/kelp_analyze/layering.txt",
                             realLayering(), bad);
    for (const auto &f : bad)
        ADD_FAILURE() << kelp::analyze::formatFinding(f);
    // Every src module present in the tree must be declared.
    std::set<std::string> mods;
    for (const auto &f : realTree()) {
        std::string m = moduleOf(f.path);
        if (!m.empty())
            mods.insert(m);
    }
    for (const auto &m : mods)
        EXPECT_TRUE(dag.count(m)) << "module missing from table: "
                                  << m;
}

} // namespace
