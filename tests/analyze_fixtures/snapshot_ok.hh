// Good twin of snapshot_missing.hh: every mutable member is either
// serialized by the snapshot/restore bodies or carries a justified
// transient annotation, so the snapshot-completeness rule stays
// quiet.
#ifndef KELP_TESTS_ANALYZE_FIXTURES_SNAPSHOT_OK_HH
#define KELP_TESTS_ANALYZE_FIXTURES_SNAPSHOT_OK_HH

namespace fx {

struct WidgetSnapshot
{
    int kept = 0;
};

class Widget
{
  public:
    WidgetSnapshot snapshot() const
    {
        WidgetSnapshot s;
        s.kept = kept_;
        return s;
    }

    void restore(const WidgetSnapshot &s) { kept_ = s.kept; }

  private:
    int kept_ = 0;
    // kelp: transient(memoized view; recomputed from kept_ on demand)
    int cached_ = 0;
    int *wiring_ = nullptr;
    static int instances_;
};

} // namespace fx

#endif // KELP_TESTS_ANALYZE_FIXTURES_SNAPSHOT_OK_HH
