// Good twin of audit_missing.cc via the escape hatch: the knob
// mutation carries a justified allow, so the audit-completeness rule
// stays quiet -- and deleting the directive makes it fire (the
// regression test does exactly that).
namespace fx {

struct Knobs
{
    bool setCores(int group, int socket, int half, int n);
};

class AllowedActuator
{
  public:
    bool enforce()
    {
        // kelp: allow(audit-completeness): decision recorded by the
        // caller at decision time; this is the mechanical write path.
        return knobs_->setCores(0, 0, 1, cores_);
    }

  private:
    Knobs *knobs_ = nullptr;
    int cores_ = 0;
};

} // namespace fx
