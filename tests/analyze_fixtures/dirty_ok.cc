// Good twin of dirty_missing.cc, covering both legitimate shapes:
// Hooked::setLifeState carries the dirty mark in its own body (the
// repo's normal discipline -- every call site is covered at once),
// and SelfMarking::stop marks dirty itself around a mutator the
// index only sees as a declaration.
namespace fx {

struct Hooked
{
    void noteChange();

    void
    setLifeState(int s)
    {
        state_ = s;
        noteChange();
    }

    int state_ = 0;
};

class Manager
{
  public:
    void stop()
    {
        victim_->setLifeState(2);
    }

  private:
    Hooked *victim_ = nullptr;
};

struct Worker
{
    void setThreads(int n);
};

class SelfMarking
{
  public:
    void noteChange();

    void resize()
    {
        victim_->setThreads(3);
        noteChange();
    }

  private:
    Worker *victim_ = nullptr;
};

} // namespace fx
