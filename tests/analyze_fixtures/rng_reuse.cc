// Deliberately broken fixture: the job lambda draws from an Rng
// declared outside the lambda, so per-job streams alias and results
// depend on job interleaving. The rng-discipline rule must fire.
namespace fx {

struct Rng
{
    double uniform();
    static Rng derive(unsigned long base, unsigned long index);
};

void runJobs(int count, int jobs, int which);
void sink(double v);

void
campaign(int n)
{
    Rng rng;
    runJobs(n, 4, [&](int i) {
        sink(rng.uniform() + i);
    });
}

} // namespace fx
