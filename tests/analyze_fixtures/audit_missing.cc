// Deliberately broken fixture: a knob mutation with no DecisionLog
// record anywhere in the enclosing function and no allow, so the
// audit-completeness rule must fire exactly once.
namespace fx {

struct Knobs
{
    bool setCores(int group, int socket, int half, int n);
};

class BadActuator
{
  public:
    bool enforce()
    {
        return knobs_->setCores(0, 0, 1, cores_);
    }

  private:
    Knobs *knobs_ = nullptr;
    int cores_ = 0;
};

} // namespace fx
