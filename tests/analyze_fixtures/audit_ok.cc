// Good twin of audit_missing.cc: the knob mutation happens in a
// function that records to the decision log through a helper, so the
// audit-completeness rule must see the capability through the call
// graph (record() -> decisionLog_->append()) and stay quiet.
namespace fx {

struct Knobs
{
    bool setCores(int group, int socket, int half, int n);
};

struct Log
{
    void append(int ev);
};

class GoodActuator
{
  public:
    bool enforce()
    {
        record(1);
        return knobs_->setCores(0, 0, 1, cores_);
    }

  private:
    void record(int ev)
    {
        if (decisionLog_)
            decisionLog_->append(ev);
    }

    Knobs *knobs_ = nullptr;
    Log *decisionLog_ = nullptr;
    int cores_ = 0;
};

} // namespace fx
