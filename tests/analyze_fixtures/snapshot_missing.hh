// Deliberately broken fixture: `lost_` is neither referenced by the
// snapshot/restore bodies nor annotated transient, so the
// snapshot-completeness rule must fire exactly once. `kept_` is
// serialized and `wiring_` is a raw pointer (exempt by design).
#ifndef KELP_TESTS_ANALYZE_FIXTURES_SNAPSHOT_MISSING_HH
#define KELP_TESTS_ANALYZE_FIXTURES_SNAPSHOT_MISSING_HH

namespace fx {

struct WidgetSnapshot
{
    int kept = 0;
};

class Widget
{
  public:
    WidgetSnapshot snapshot() const
    {
        WidgetSnapshot s;
        s.kept = kept_;
        return s;
    }

    void restore(const WidgetSnapshot &s) { kept_ = s.kept; }

  private:
    int kept_ = 0;
    int lost_ = 0;
    int *wiring_ = nullptr;
};

} // namespace fx

#endif // KELP_TESTS_ANALYZE_FIXTURES_SNAPSHOT_MISSING_HH
