// Deliberately broken fixture: the class has no snapshot()/restore()
// pair but is marked `kelp: checkpointed`, so it participates in the
// snapshot-completeness rule -- and `entries_` carries no transient
// annotation, so the rule must fire exactly once.
#ifndef KELP_TESTS_ANALYZE_FIXTURES_SNAPSHOT_MARKED_HH
#define KELP_TESTS_ANALYZE_FIXTURES_SNAPSHOT_MARKED_HH

namespace fx {

// kelp: checkpointed
class Cache
{
  public:
    void put(int v) { entries_ = v; }

  private:
    int entries_ = 0;
};

} // namespace fx

#endif // KELP_TESTS_ANALYZE_FIXTURES_SNAPSHOT_MARKED_HH
