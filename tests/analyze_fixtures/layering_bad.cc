// Deliberately broken fixture (virtual path src/serve/...): serve
// must not reach into the controller layer, so this include is an
// undeclared module edge and the layering rule must fire.
#include "kelp/controller.hh"

namespace fx {
}
