// Good twin of rng_reuse.cc: each job derives its own pure stream
// from (base seed, job index), so streams never alias and results
// are independent of job interleaving. The rng-discipline rule must
// stay quiet.
namespace fx {

struct Rng
{
    double uniform();
    static Rng derive(unsigned long base, unsigned long index);
};

void runJobs(int count, int jobs, int which);
void sink(double v);

void
campaign(int n)
{
    unsigned long seed = 7;
    runJobs(n, 4, [&](int i) {
        Rng r = Rng::derive(seed, static_cast<unsigned long>(i));
        sink(r.uniform());
    });
}

} // namespace fx
