// Good twin of layering_bad.cc: serve -> trace is a declared edge in
// the test table, so the layering rule stays quiet.
#include "trace/json.hh"

namespace fx {
}
