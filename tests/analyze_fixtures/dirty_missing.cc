// Deliberately broken fixture: a lifecycle transition whose enclosing
// function never marks the node dirty and whose mutator is only
// declared (no indexed definition carries a noteChange/markDirty), so
// the dirty-discipline rule must fire exactly once.
namespace fx {

struct Worker
{
    void setLifeState(int s);
};

class BadManager
{
  public:
    void stop()
    {
        victim_->setLifeState(2);
    }

  private:
    Worker *victim_ = nullptr;
};

} // namespace fx
