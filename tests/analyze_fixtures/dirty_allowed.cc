// Good twin of dirty_missing.cc via the escape hatch: the lifecycle
// transition carries a justified allow, so the dirty-discipline rule
// stays quiet -- and deleting the directive makes it fire (the
// regression test does exactly that).
namespace fx {

struct Worker
{
    void setLifeState(int s);
};

class AllowedManager
{
  public:
    void stop()
    {
        // kelp: allow(dirty-discipline): staging-time transition on
        // a task not yet attached to a node; nothing is quiescent.
        victim_->setLifeState(2);
    }

  private:
    Worker *victim_ = nullptr;
};

} // namespace fx
