/**
 * @file
 * Tests for the node orchestration: core pools, SMT, LLC
 * apportionment wiring, demand routing, and throttle application.
 */

#include <gtest/gtest.h>

#include "node/node.hh"
#include "node/platform.hh"
#include "workload/batch_task.hh"

using namespace kelp;

namespace {

node::PlatformSpec
spec()
{
    node::PlatformSpec p = node::platformFor(accel::Kind::TpuV1);
    return p;  // 16 cores/socket, 32 MiB LLC, 76.8 GiB/s
}

wl::HostPhaseParams
streamish()
{
    wl::HostPhaseParams p;
    p.cpuFrac = 0.1;
    p.bwPerCore = 5.0;
    p.latencySensitivity = 0.2;
    p.llcFootprintMb = 256.0;
    p.llcHitMax = 0.05;
    return p;
}

constexpr sim::Time dt = 100 * sim::usec;

} // namespace

TEST(Node, TaskPlacementAssignsIds)
{
    node::Node n(spec());
    auto g = n.groups().create("g", hal::Priority::Low).id();
    auto &a = n.add(std::make_unique<wl::BatchTask>("a", g, 2,
                                                    streamish()));
    auto &b = n.add(std::make_unique<wl::BatchTask>("b", g, 2,
                                                    streamish()));
    EXPECT_EQ(a.id(), 0);
    EXPECT_EQ(b.id(), 1);
}

TEST(Node, UnknownGroupPanics)
{
    node::Node n(spec());
    EXPECT_DEATH(n.add(std::make_unique<wl::BatchTask>(
                     "a", 3, 2, streamish())),
                 "unknown group");
}

TEST(Node, FloatingTasksGetFullCores)
{
    node::Node n(spec());
    auto g = n.groups().create("g", hal::Priority::Low).id();
    auto &t = n.add(std::make_unique<wl::BatchTask>("t", g, 4,
                                                    streamish()));
    n.tick(0.0, dt);
    EXPECT_NEAR(n.lastEnv(t).effCores, 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(n.lastEnv(t).smtFactor, 1.0);
}

TEST(Node, FairShareWithinPool)
{
    node::Node n(spec());
    auto g = n.groups().create("g", hal::Priority::Low).id();
    // 16 cores, two tasks wanting 24 threads total: SMT territory.
    auto &a = n.add(std::make_unique<wl::BatchTask>("a", g, 12,
                                                    streamish()));
    auto &b = n.add(std::make_unique<wl::BatchTask>("b", g, 12,
                                                    streamish()));
    n.tick(0.0, dt);
    // All 24 threads run (2 threads/core possible on 16 cores)...
    EXPECT_NEAR(n.lastEnv(a).effCores, 12.0, 1e-9);
    // ...but each runs below full speed due to sibling sharing.
    EXPECT_LT(n.lastEnv(a).smtFactor, 1.0);
    EXPECT_GT(n.lastEnv(a).smtFactor, 0.6);
    EXPECT_DOUBLE_EQ(n.lastEnv(a).smtFactor, n.lastEnv(b).smtFactor);
}

TEST(Node, ExtremeOversubscriptionLimitsSlots)
{
    node::Node n(spec());
    auto g = n.groups().create("g", hal::Priority::Low).id();
    auto &a = n.add(std::make_unique<wl::BatchTask>("a", g, 64,
                                                    streamish()));
    n.tick(0.0, dt);
    // Only 2 threads per core can run: 32 of 64.
    EXPECT_NEAR(n.lastEnv(a).effCores, 32.0, 1e-9);
}

TEST(Node, PinnedGroupIsolatedFromFloating)
{
    node::Node n(spec());
    auto ml = n.groups().create("ml", hal::Priority::High).id();
    auto batch = n.groups().create("batch", hal::Priority::Low).id();
    n.knobs().setCores(ml, 0, 0, 4);
    auto &m = n.add(std::make_unique<wl::BatchTask>("m", ml, 4,
                                                    streamish()));
    auto &b = n.add(std::make_unique<wl::BatchTask>("b", batch, 40,
                                                    streamish()));
    n.tick(0.0, dt);
    // The pinned group's task is untouched by the floating horde.
    EXPECT_NEAR(n.lastEnv(m).effCores, 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(n.lastEnv(m).smtFactor, 1.0);
    // The floating pool only has the remaining 12 cores.
    EXPECT_NEAR(n.lastEnv(b).effCores, 24.0, 1e-9);
}

TEST(Node, MissRatioStableAcrossTicks)
{
    // Regression: the per-tick miss-ratio rebuild must not
    // accumulate (early bug: ratios summed tick over tick under SNC).
    node::Node n(spec());
    n.setSncEnabled(true);
    auto g = n.groups().create("g", hal::Priority::Low).id();
    n.knobs().setCores(g, 0, 1, 8);
    auto &t = n.add(std::make_unique<wl::BatchTask>("t", g, 8,
                                                    streamish()));
    n.tick(0.0, dt);
    double first = n.lastEnv(t).missRatio;
    for (int i = 1; i <= 50; ++i)
        n.tick(i * dt, dt);
    EXPECT_NEAR(n.lastEnv(t).missRatio, first, 1e-9);
}

TEST(Node, LocalAllocationRoutesPerSubdomain)
{
    node::Node n(spec());
    n.setSncEnabled(true);
    auto g = n.groups().create("g", hal::Priority::Low).id();
    n.knobs().setCores(g, 0, 0, 2);
    n.knobs().setCores(g, 0, 1, 6);
    n.knobs().setPrefetchersEnabled(g, 8);
    n.add(std::make_unique<wl::BatchTask>("t", g, 8, streamish()));
    n.tick(0.0, dt);
    double d0 = n.memSystem().controller(0, 0).totalDelivered();
    double d1 = n.memSystem().controller(0, 1).totalDelivered();
    EXPECT_GT(d0, 0.0);
    EXPECT_NEAR(d1 / d0, 3.0, 0.01);  // 6:2 core split
}

TEST(Node, ExplicitDataPlacementOverridesLocal)
{
    node::Node n(spec());
    auto g = n.groups().create("g", hal::Priority::Low).id();
    auto &t = n.add(std::make_unique<wl::BatchTask>("t", g, 4,
                                                    streamish()));
    t.setDataPlacement({{1, 0, 1.0}});  // everything remote
    n.tick(0.0, dt);
    double local = n.memSystem().controller(0, 0).totalDelivered() +
                   n.memSystem().controller(0, 1).totalDelivered();
    double remote = n.memSystem().controller(1, 0).totalDelivered() +
                    n.memSystem().controller(1, 1).totalDelivered();
    EXPECT_DOUBLE_EQ(local, 0.0);
    EXPECT_GT(remote, 0.0);
    EXPECT_GT(n.memSystem().upi().utilization(), 0.0);
}

TEST(Node, DistressThrottleReachesTasks)
{
    node::Node n(spec());
    n.setSncEnabled(true);
    auto ml = n.groups().create("ml", hal::Priority::High).id();
    auto batch = n.groups().create("batch", hal::Priority::Low).id();
    n.knobs().setCores(ml, 0, 0, 4);
    n.knobs().setCores(batch, 0, 1, 8);
    n.knobs().setPrefetchersEnabled(batch, 8);
    auto &m = n.add(std::make_unique<wl::BatchTask>("m", ml, 4,
                                                    streamish()));
    // 8 streaming threads at 5 GiB/s overwhelm one 38.4 GiB/s MC.
    n.add(std::make_unique<wl::BatchTask>("b", batch, 8,
                                          streamish()));
    n.tick(0.0, dt);      // saturation detected at resolve
    n.tick(dt, dt);       // throttle visible one tick later
    EXPECT_LT(n.lastEnv(m).throttle, 1.0);
}

TEST(Node, PriorityAwareBackpressureExemptsHighPriority)
{
    node::Node n(spec());
    n.setSncEnabled(true);
    n.setPriorityAwareBackpressure(true);
    auto ml = n.groups().create("ml", hal::Priority::High).id();
    auto batch = n.groups().create("batch", hal::Priority::Low).id();
    n.knobs().setCores(ml, 0, 0, 4);
    n.knobs().setCores(batch, 0, 1, 8);
    n.knobs().setPrefetchersEnabled(batch, 8);
    auto &m = n.add(std::make_unique<wl::BatchTask>("m", ml, 4,
                                                    streamish()));
    auto &b = n.add(std::make_unique<wl::BatchTask>("b", batch, 8,
                                                    streamish()));
    n.tick(0.0, dt);
    n.tick(dt, dt);
    EXPECT_DOUBLE_EQ(n.lastEnv(m).throttle, 1.0);
    EXPECT_LT(n.lastEnv(b).throttle, 1.0);
}

TEST(Node, PrefetcherFractionReachesEnv)
{
    node::Node n(spec());
    auto g = n.groups().create("g", hal::Priority::Low).id();
    n.knobs().setCores(g, 0, 1, 8);
    n.knobs().setPrefetchersEnabled(g, 2);
    auto &t = n.add(std::make_unique<wl::BatchTask>("t", g, 8,
                                                    streamish()));
    n.tick(0.0, dt);
    EXPECT_NEAR(n.lastEnv(t).pfFraction, 0.25, 1e-9);
}

TEST(Node, CatWaysProtectHitRate)
{
    node::Node n(spec());
    auto ml = n.groups().create("ml", hal::Priority::High).id();
    auto batch = n.groups().create("batch", hal::Priority::Low).id();
    n.knobs().setCores(ml, 0, 0, 2);
    n.knobs().setCores(ml, 0, 1, 2);
    n.knobs().setCores(batch, 0, 0, 6);
    n.knobs().setCores(batch, 0, 1, 6);
    n.knobs().setPrefetchersEnabled(batch, 12);
    n.knobs().setPrefetchersEnabled(ml, 4);

    wl::HostPhaseParams hot;
    hot.cpuFrac = 0.5;
    hot.llcFootprintMb = 6.0;
    hot.llcHitMax = 0.9;
    wl::HostPhaseParams scan = streamish();
    scan.llcFootprintMb = 32.0;
    scan.llcHitMax = 0.9;
    scan.llcWeight = 5.0;

    auto &victim = n.add(std::make_unique<wl::BatchTask>(
        "victim", ml, 4, hot));
    n.add(std::make_unique<wl::BatchTask>("scan", batch, 12, scan));

    n.tick(0.0, dt);
    double unprotected = n.lastEnv(victim).missRatio;

    n.knobs().setCatWays(ml, 4);  // 4 of 16 ways = 8 MiB dedicated
    n.tick(dt, dt);
    double protected_ratio = n.lastEnv(victim).missRatio;
    EXPECT_GT(unprotected, 1.5);
    EXPECT_NEAR(protected_ratio, 1.0, 0.05);
}

TEST(Node, EngineAttachDrivesTicks)
{
    node::Node n(spec());
    auto g = n.groups().create("g", hal::Priority::Low).id();
    auto &t = n.add(std::make_unique<wl::BatchTask>("t", g, 2,
                                                    streamish()));
    sim::Engine e(dt);
    n.attach(e);
    e.run(0.1);
    EXPECT_NEAR(t.completedWork(), 0.2, 0.01);
}
