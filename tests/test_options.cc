/**
 * @file
 * Tests for the command-line options parser.
 */

#include <gtest/gtest.h>

#include "sim/options.hh"

using kelp::sim::Options;

namespace {

Options
makeOptions()
{
    Options o("prog", "test program");
    o.addString("name", "default", "a string");
    o.addInt("count", 7, "an int");
    o.addDouble("ratio", 0.5, "a double");
    o.addBool("verbose", false, "a flag");
    return o;
}

} // namespace

TEST(Options, DefaultsWithoutArgs)
{
    Options o = makeOptions();
    const char *argv[] = {"prog"};
    ASSERT_TRUE(o.parse(1, argv));
    EXPECT_EQ(o.getString("name"), "default");
    EXPECT_EQ(o.getInt("count"), 7);
    EXPECT_DOUBLE_EQ(o.getDouble("ratio"), 0.5);
    EXPECT_FALSE(o.getBool("verbose"));
    EXPECT_FALSE(o.isSet("name"));
}

TEST(Options, EqualsForm)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--name=alpha", "--count=42",
                          "--ratio=1.25"};
    ASSERT_TRUE(o.parse(4, argv));
    EXPECT_EQ(o.getString("name"), "alpha");
    EXPECT_EQ(o.getInt("count"), 42);
    EXPECT_DOUBLE_EQ(o.getDouble("ratio"), 1.25);
    EXPECT_TRUE(o.isSet("count"));
}

TEST(Options, SpaceForm)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--name", "beta", "--count", "-3"};
    ASSERT_TRUE(o.parse(5, argv));
    EXPECT_EQ(o.getString("name"), "beta");
    EXPECT_EQ(o.getInt("count"), -3);
}

TEST(Options, BareBoolean)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--verbose"};
    ASSERT_TRUE(o.parse(2, argv));
    EXPECT_TRUE(o.getBool("verbose"));
}

TEST(Options, ExplicitBoolean)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--verbose=false"};
    ASSERT_TRUE(o.parse(2, argv));
    EXPECT_FALSE(o.getBool("verbose"));
}

TEST(Options, Positional)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "one", "--count=1", "two"};
    ASSERT_TRUE(o.parse(4, argv));
    ASSERT_EQ(o.positional().size(), 2u);
    EXPECT_EQ(o.positional()[0], "one");
    EXPECT_EQ(o.positional()[1], "two");
}

TEST(Options, HelpReturnsFalse)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(o.parse(2, argv));
}

TEST(Options, UsageMentionsEveryOption)
{
    Options o = makeOptions();
    std::string usage = o.usage();
    EXPECT_NE(usage.find("--name"), std::string::npos);
    EXPECT_NE(usage.find("--count"), std::string::npos);
    EXPECT_NE(usage.find("--ratio"), std::string::npos);
    EXPECT_NE(usage.find("a flag"), std::string::npos);
}

TEST(Options, UnknownFlagFatal)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT(o.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown flag");
}

TEST(Options, BadIntFatal)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--count=seven"};
    EXPECT_EXIT(o.parse(2, argv), ::testing::ExitedWithCode(1),
                "integer");
}

TEST(Options, BadDoubleFatal)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--ratio=half"};
    EXPECT_EXIT(o.parse(2, argv), ::testing::ExitedWithCode(1),
                "number");
}

TEST(Options, MissingValueFatal)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--count"};
    EXPECT_EXIT(o.parse(2, argv), ::testing::ExitedWithCode(1),
                "needs a value");
}

TEST(Options, RepeatedFlagFatalWithUsage)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--count=1", "--count=2"};
    EXPECT_EXIT(o.parse(3, argv), ::testing::ExitedWithCode(1),
                "--count given more than once");
}

TEST(Options, RepeatedFlagFatalAcrossForms)
{
    // --name=x and a later bare "--name y" are still the same flag.
    Options o = makeOptions();
    const char *argv[] = {"prog", "--name=x", "--name", "y"};
    EXPECT_EXIT(o.parse(4, argv), ::testing::ExitedWithCode(1),
                "more than once");
}

TEST(Options, RepeatedBoolFlagFatal)
{
    Options o = makeOptions();
    const char *argv[] = {"prog", "--verbose", "--verbose"};
    EXPECT_EXIT(o.parse(3, argv), ::testing::ExitedWithCode(1),
                "--verbose given more than once");
}

TEST(Options, RepeatedFlagMessageIncludesUsage)
{
    // The death message carries the usage text, so the user sees the
    // registered flags, not just the complaint.
    Options o = makeOptions();
    const char *argv[] = {"prog", "--ratio=1", "--ratio=2"};
    EXPECT_EXIT(o.parse(3, argv), ::testing::ExitedWithCode(1),
                "at most once.*--ratio");
}

TEST(Options, TypeMismatchPanics)
{
    Options o = makeOptions();
    const char *argv[] = {"prog"};
    ASSERT_TRUE(o.parse(1, argv));
    EXPECT_DEATH((void)o.getInt("name"), "type mismatch");
}

TEST(Options, DuplicateRegistrationPanics)
{
    Options o = makeOptions();
    EXPECT_DEATH(o.addInt("count", 1, "again"), "duplicate");
}
