/**
 * @file
 * Robustness and property tests: conservation invariants under
 * randomized load, and failure/perturbation injection (aggressors
 * arriving, leaving, and ramping mid-run; controllers facing empty
 * or extreme configurations).
 */

#include <gtest/gtest.h>

#include "exp/scenario.hh"
#include "kelp/kelp_controller.hh"
#include "kelp/manager.hh"
#include "mem/mem_system.hh"
#include "node/platform.hh"
#include "sim/rng.hh"
#include "workload/batch_task.hh"

using namespace kelp;

namespace {

constexpr sim::Time dt = 100 * sim::usec;

} // namespace

/** Randomized flow sets must never violate conservation laws. */
class MemConservation : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MemConservation, DeliveredNeverExceedsCapacity)
{
    sim::Rng rng(GetParam());
    mem::MemSystemConfig cfg;
    cfg.socket.peakBw = 100.0;
    mem::MemSystem mem(cfg);
    mem.setSncEnabled(rng.chance(0.5));

    for (int tick = 0; tick < 50; ++tick) {
        mem.beginTick();
        int flows = 1 + static_cast<int>(rng.below(12));
        double total_demand = 0.0;
        for (int f = 0; f < flows; ++f) {
            mem::Route route;
            route.reqSocket = static_cast<int>(rng.below(2));
            route.reqSub = static_cast<int>(rng.below(2));
            route.homeSocket = static_cast<int>(rng.below(2));
            route.homeSub = static_cast<int>(rng.below(2));
            double demand = rng.uniform(0.0, 40.0);
            total_demand += demand;
            mem.addFlow(f, route, demand, rng.chance(0.3));
        }
        mem.resolve(dt);

        for (int s = 0; s < 2; ++s) {
            for (int d = 0; d < 2; ++d) {
                const auto &mc = mem.controller(s, d);
                // Delivery is capped by capacity (plus fp slack).
                EXPECT_LE(mc.totalDelivered(), 50.0 + 1e-6);
                EXPECT_GE(mc.utilization(), 0.0);
                EXPECT_LE(mc.utilization(), 1.0);
            }
            EXPECT_GE(mem.saturation(s), 0.0);
            EXPECT_LE(mem.saturation(s), 1.0);
            EXPECT_GT(mem.coreThrottle(s), 0.0);
            EXPECT_LE(mem.coreThrottle(s), 1.0);
        }
        // Per-requestor grants never exceed their demands.
        for (int f = 0; f < flows; ++f) {
            mem::Grant g = mem.grant(f);
            EXPECT_GE(g.fraction, 0.0);
            EXPECT_LE(g.fraction, 1.0 + 1e-9);
            EXPECT_GE(g.latency, 0.0);
        }
        (void)total_demand;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemConservation,
                         ::testing::Values(1, 7, 42, 1337, 99991));

TEST(Robustness, AggressorArrivalAndDeparture)
{
    // The controller must re-open the taps after an aggressor leaves.
    node::Node node(node::platformFor(accel::Kind::CloudTpu));
    node.setSncEnabled(true);
    auto ml = node.groups().create("ml", hal::Priority::High).id();
    auto cpu = node.groups().create("batch", hal::Priority::Low).id();
    node.knobs().setCores(ml, 0, 0, 4);
    node.knobs().setPrefetchersEnabled(ml, 4);

    wl::HostPhaseParams agg =
        wl::cpuParams(wl::CpuWorkload::DramAggressor);
    auto &task = node.add(std::make_unique<wl::BatchTask>(
        "agg", cpu, 10, agg));
    task.setHomeSocket(0);

    runtime::Bindings bind{&node, ml, cpu, 0};
    auto spec = node::platformFor(accel::Kind::CloudTpu);
    runtime::ConfigLimits limits{0, 8, 1, 12};
    runtime::ResourceState init{0, 10, 10};
    runtime::KelpController ctl(
        bind, runtime::defaultProfile(wl::MlWorkload::Cnn1, spec),
        limits, init);

    auto run_rounds = [&](int rounds) {
        for (int r = 0; r < rounds; ++r) {
            for (int t = 0; t < 100; ++t)
                node.tick(t * dt, dt);
            ctl.sample(r);
        }
    };

    run_rounds(10);  // heavy phase: prefetchers get cut
    int throttled_pf = ctl.state().prefetcherNumL;
    EXPECT_LT(throttled_pf, 10);

    task.setThreads(1);  // the aggressor all but leaves
    run_rounds(20);
    EXPECT_GT(ctl.state().prefetcherNumL, throttled_pf);
    EXPECT_GT(ctl.state().coreNumH, 0);  // backfill resumed
}

TEST(Robustness, AggressorRampIsTracked)
{
    // Ramping load must monotonically tighten the knobs.
    node::Node node(node::platformFor(accel::Kind::CloudTpu));
    node.setSncEnabled(true);
    auto ml = node.groups().create("ml", hal::Priority::High).id();
    auto cpu = node.groups().create("batch", hal::Priority::Low).id();
    node.knobs().setCores(ml, 0, 0, 4);
    node.knobs().setPrefetchersEnabled(ml, 4);
    auto &task = node.add(std::make_unique<wl::BatchTask>(
        "agg", cpu, 2, wl::cpuParams(wl::CpuWorkload::DramAggressor)));
    task.setHomeSocket(0);

    runtime::Bindings bind{&node, ml, cpu, 0};
    auto spec = node::platformFor(accel::Kind::CloudTpu);
    runtime::KelpController ctl(
        bind, runtime::defaultProfile(wl::MlWorkload::Cnn1, spec),
        {0, 8, 1, 12}, {0, 12, 12});

    std::vector<int> pf_at_load;
    for (int threads : {2, 6, 12}) {
        task.setThreads(threads);
        for (int r = 0; r < 8; ++r) {
            for (int t = 0; t < 100; ++t)
                node.tick(t * dt, dt);
            ctl.sample(r);
        }
        pf_at_load.push_back(ctl.state().prefetcherNumL);
    }
    EXPECT_GE(pf_at_load[0], pf_at_load[1]);
    EXPECT_GE(pf_at_load[1], pf_at_load[2]);
    EXPECT_LT(pf_at_load[2], 12);
}

TEST(Robustness, ControllerSurvivesIdleSystem)
{
    // No CPU tasks at all: sampling must be a stable no-op that
    // simply boosts to the limits and stays there.
    node::Node node(node::platformFor(accel::Kind::TpuV1));
    node.setSncEnabled(true);
    auto ml = node.groups().create("ml", hal::Priority::High).id();
    auto cpu = node.groups().create("batch", hal::Priority::Low).id();
    node.knobs().setCores(ml, 0, 0, 4);

    runtime::Bindings bind{&node, ml, cpu, 0};
    auto spec = node::platformFor(accel::Kind::TpuV1);
    runtime::KelpController ctl(
        bind, runtime::defaultProfile(wl::MlWorkload::Rnn1, spec),
        {0, 4, 1, 8}, {0, 4, 4});
    for (int r = 0; r < 20; ++r) {
        for (int t = 0; t < 50; ++t)
            node.tick(t * dt, dt);
        ctl.sample(r);
    }
    EXPECT_EQ(ctl.state().coreNumL, 8);
    EXPECT_EQ(ctl.state().prefetcherNumL, 8);
    EXPECT_EQ(ctl.state().coreNumH, 4);
}

TEST(Robustness, MinimumCoreFloorRespected)
{
    // Even an absurdly heavy aggressor cannot push the low-priority
    // allocation below one core (Algorithm 2's floor).
    node::Node node(node::platformFor(accel::Kind::TpuV1));
    node.setSncEnabled(true);
    auto ml = node.groups().create("ml", hal::Priority::High).id();
    auto cpu = node.groups().create("batch", hal::Priority::Low).id();
    node.knobs().setCores(ml, 0, 0, 4);
    wl::HostPhaseParams agg =
        wl::cpuParams(wl::CpuWorkload::DramAggressor);
    agg.bwPerCore = 40.0;  // pathological
    auto &task = node.add(std::make_unique<wl::BatchTask>(
        "agg", cpu, 16, agg));
    task.setHomeSocket(0);

    runtime::Bindings bind{&node, ml, cpu, 0};
    auto spec = node::platformFor(accel::Kind::TpuV1);
    runtime::KelpController ctl(
        bind, runtime::defaultProfile(wl::MlWorkload::Rnn1, spec),
        {0, 4, 1, 8}, {0, 8, 8});
    for (int r = 0; r < 30; ++r) {
        for (int t = 0; t < 50; ++t)
            node.tick(t * dt, dt);
        ctl.sample(r);
    }
    EXPECT_GE(ctl.state().coreNumL, 1);
    EXPECT_EQ(ctl.state().prefetcherNumL, 0);
}

TEST(Robustness, DeterministicAcrossRuns)
{
    // Identical configurations must reproduce bit-identical results.
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Cnn1;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 3;
    cfg.config = exp::ConfigKind::KP;
    cfg.warmup = 10.0;
    cfg.measure = 10.0;
    cfg.samplePeriod = 2.0;
    exp::RunResult a = exp::runScenario(cfg);
    exp::RunResult b = exp::runScenario(cfg);
    EXPECT_DOUBLE_EQ(a.mlPerf, b.mlPerf);
    EXPECT_DOUBLE_EQ(a.cpuThroughput, b.cpuThroughput);
    EXPECT_DOUBLE_EQ(a.avgSaturation, b.avgSaturation);
}

TEST(Robustness, SeedChangesInferenceArrivals)
{
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Rnn1;
    cfg.openLoopQps = 500.0;
    cfg.config = exp::ConfigKind::BL;
    cfg.warmup = 5.0;
    cfg.measure = 10.0;
    exp::RunResult a = exp::runScenario(cfg);
    cfg.seed = 999;
    exp::RunResult b = exp::runScenario(cfg);
    // Same distribution, different sample path.
    EXPECT_NE(a.mlTailP95, b.mlTailP95);
    EXPECT_NEAR(a.mlPerf, b.mlPerf, a.mlPerf * 0.05);
}
