/**
 * @file
 * Robustness and property tests: conservation invariants under
 * randomized load, and failure/perturbation injection (aggressors
 * arriving, leaving, and ramping mid-run; controllers facing empty
 * or extreme configurations).
 */

#include <gtest/gtest.h>

#include <utility>

#include "exp/scenario.hh"
#include "hal/fault_injector.hh"
#include "kelp/kelp_controller.hh"
#include "kelp/manager.hh"
#include "mem/mem_system.hh"
#include "node/platform.hh"
#include "sim/rng.hh"
#include "workload/batch_task.hh"

using namespace kelp;

namespace {

constexpr sim::Time dt = 100 * sim::usec;

} // namespace

/** Randomized flow sets must never violate conservation laws. */
class MemConservation : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MemConservation, DeliveredNeverExceedsCapacity)
{
    sim::Rng rng(GetParam());
    mem::MemSystemConfig cfg;
    cfg.socket.peakBw = 100.0;
    mem::MemSystem mem(cfg);
    mem.setSncEnabled(rng.chance(0.5));

    for (int tick = 0; tick < 50; ++tick) {
        mem.beginTick();
        int flows = 1 + static_cast<int>(rng.below(12));
        double total_demand = 0.0;
        for (int f = 0; f < flows; ++f) {
            mem::Route route;
            route.reqSocket = static_cast<int>(rng.below(2));
            route.reqSub = static_cast<int>(rng.below(2));
            route.homeSocket = static_cast<int>(rng.below(2));
            route.homeSub = static_cast<int>(rng.below(2));
            double demand = rng.uniform(0.0, 40.0);
            total_demand += demand;
            mem.addFlow(f, route, demand, rng.chance(0.3));
        }
        mem.resolve(dt);

        for (int s = 0; s < 2; ++s) {
            for (int d = 0; d < 2; ++d) {
                const auto &mc = mem.controller(s, d);
                // Delivery is capped by capacity (plus fp slack).
                EXPECT_LE(mc.totalDelivered(), 50.0 + 1e-6);
                EXPECT_GE(mc.utilization(), 0.0);
                EXPECT_LE(mc.utilization(), 1.0);
            }
            EXPECT_GE(mem.saturation(s), 0.0);
            EXPECT_LE(mem.saturation(s), 1.0);
            EXPECT_GT(mem.coreThrottle(s), 0.0);
            EXPECT_LE(mem.coreThrottle(s), 1.0);
        }
        // Per-requestor grants never exceed their demands.
        for (int f = 0; f < flows; ++f) {
            mem::Grant g = mem.grant(f);
            EXPECT_GE(g.fraction, 0.0);
            EXPECT_LE(g.fraction, 1.0 + 1e-9);
            EXPECT_GE(g.latency, 0.0);
        }
        (void)total_demand;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemConservation,
                         ::testing::Values(1, 7, 42, 1337, 99991));

TEST(Robustness, AggressorArrivalAndDeparture)
{
    // The controller must re-open the taps after an aggressor leaves.
    node::Node node(node::platformFor(accel::Kind::CloudTpu));
    node.setSncEnabled(true);
    auto ml = node.groups().create("ml", hal::Priority::High).id();
    auto cpu = node.groups().create("batch", hal::Priority::Low).id();
    node.knobs().setCores(ml, 0, 0, 4);
    node.knobs().setPrefetchersEnabled(ml, 4);

    wl::HostPhaseParams agg =
        wl::cpuParams(wl::CpuWorkload::DramAggressor);
    auto &task = node.add(std::make_unique<wl::BatchTask>(
        "agg", cpu, 10, agg));
    task.setHomeSocket(0);

    runtime::Bindings bind{&node, ml, cpu, 0};
    auto spec = node::platformFor(accel::Kind::CloudTpu);
    runtime::ConfigLimits limits{0, 8, 1, 12};
    runtime::ResourceState init{0, 10, 10};
    runtime::KelpController ctl(
        bind, runtime::defaultProfile(wl::MlWorkload::Cnn1, spec),
        limits, init);

    auto run_rounds = [&](int rounds) {
        for (int r = 0; r < rounds; ++r) {
            for (int t = 0; t < 100; ++t)
                node.tick(t * dt, dt);
            ctl.sample(r);
        }
    };

    run_rounds(10);  // heavy phase: prefetchers get cut
    int throttled_pf = ctl.state().prefetcherNumL;
    EXPECT_LT(throttled_pf, 10);

    task.setThreads(1);  // the aggressor all but leaves
    run_rounds(20);
    EXPECT_GT(ctl.state().prefetcherNumL, throttled_pf);
    EXPECT_GT(ctl.state().coreNumH, 0);  // backfill resumed
}

TEST(Robustness, AggressorRampIsTracked)
{
    // Ramping load must monotonically tighten the knobs.
    node::Node node(node::platformFor(accel::Kind::CloudTpu));
    node.setSncEnabled(true);
    auto ml = node.groups().create("ml", hal::Priority::High).id();
    auto cpu = node.groups().create("batch", hal::Priority::Low).id();
    node.knobs().setCores(ml, 0, 0, 4);
    node.knobs().setPrefetchersEnabled(ml, 4);
    auto &task = node.add(std::make_unique<wl::BatchTask>(
        "agg", cpu, 2, wl::cpuParams(wl::CpuWorkload::DramAggressor)));
    task.setHomeSocket(0);

    runtime::Bindings bind{&node, ml, cpu, 0};
    auto spec = node::platformFor(accel::Kind::CloudTpu);
    runtime::KelpController ctl(
        bind, runtime::defaultProfile(wl::MlWorkload::Cnn1, spec),
        {0, 8, 1, 12}, {0, 12, 12});

    std::vector<int> pf_at_load;
    for (int threads : {2, 6, 12}) {
        task.setThreads(threads);
        for (int r = 0; r < 8; ++r) {
            for (int t = 0; t < 100; ++t)
                node.tick(t * dt, dt);
            ctl.sample(r);
        }
        pf_at_load.push_back(ctl.state().prefetcherNumL);
    }
    EXPECT_GE(pf_at_load[0], pf_at_load[1]);
    EXPECT_GE(pf_at_load[1], pf_at_load[2]);
    EXPECT_LT(pf_at_load[2], 12);
}

TEST(Robustness, ControllerSurvivesIdleSystem)
{
    // No CPU tasks at all: sampling must be a stable no-op that
    // simply boosts to the limits and stays there.
    node::Node node(node::platformFor(accel::Kind::TpuV1));
    node.setSncEnabled(true);
    auto ml = node.groups().create("ml", hal::Priority::High).id();
    auto cpu = node.groups().create("batch", hal::Priority::Low).id();
    node.knobs().setCores(ml, 0, 0, 4);

    runtime::Bindings bind{&node, ml, cpu, 0};
    auto spec = node::platformFor(accel::Kind::TpuV1);
    runtime::KelpController ctl(
        bind, runtime::defaultProfile(wl::MlWorkload::Rnn1, spec),
        {0, 4, 1, 8}, {0, 4, 4});
    for (int r = 0; r < 20; ++r) {
        for (int t = 0; t < 50; ++t)
            node.tick(t * dt, dt);
        ctl.sample(r);
    }
    EXPECT_EQ(ctl.state().coreNumL, 8);
    EXPECT_EQ(ctl.state().prefetcherNumL, 8);
    EXPECT_EQ(ctl.state().coreNumH, 4);
}

TEST(Robustness, MinimumCoreFloorRespected)
{
    // Even an absurdly heavy aggressor cannot push the low-priority
    // allocation below one core (Algorithm 2's floor).
    node::Node node(node::platformFor(accel::Kind::TpuV1));
    node.setSncEnabled(true);
    auto ml = node.groups().create("ml", hal::Priority::High).id();
    auto cpu = node.groups().create("batch", hal::Priority::Low).id();
    node.knobs().setCores(ml, 0, 0, 4);
    wl::HostPhaseParams agg =
        wl::cpuParams(wl::CpuWorkload::DramAggressor);
    agg.bwPerCore = 40.0;  // pathological
    auto &task = node.add(std::make_unique<wl::BatchTask>(
        "agg", cpu, 16, agg));
    task.setHomeSocket(0);

    runtime::Bindings bind{&node, ml, cpu, 0};
    auto spec = node::platformFor(accel::Kind::TpuV1);
    runtime::KelpController ctl(
        bind, runtime::defaultProfile(wl::MlWorkload::Rnn1, spec),
        {0, 4, 1, 8}, {0, 8, 8});
    for (int r = 0; r < 30; ++r) {
        for (int t = 0; t < 50; ++t)
            node.tick(t * dt, dt);
        ctl.sample(r);
    }
    EXPECT_GE(ctl.state().coreNumL, 1);
    EXPECT_EQ(ctl.state().prefetcherNumL, 0);
}

TEST(Robustness, DeterministicAcrossRuns)
{
    // Identical configurations must reproduce bit-identical results.
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Cnn1;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 3;
    cfg.config = exp::ConfigKind::KP;
    cfg.warmup = 10.0;
    cfg.measure = 10.0;
    cfg.samplePeriod = 2.0;
    exp::RunResult a = exp::runScenario(cfg);
    exp::RunResult b = exp::runScenario(cfg);
    EXPECT_DOUBLE_EQ(a.mlPerf, b.mlPerf);
    EXPECT_DOUBLE_EQ(a.cpuThroughput, b.cpuThroughput);
    EXPECT_DOUBLE_EQ(a.avgSaturation, b.avgSaturation);
}

TEST(Robustness, SeedChangesInferenceArrivals)
{
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Rnn1;
    cfg.openLoopQps = 500.0;
    cfg.config = exp::ConfigKind::BL;
    cfg.warmup = 5.0;
    cfg.measure = 10.0;
    exp::RunResult a = exp::runScenario(cfg);
    cfg.seed = 999;
    exp::RunResult b = exp::runScenario(cfg);
    // Same distribution, different sample path.
    EXPECT_NE(a.mlTailP95, b.mlTailP95);
    EXPECT_NEAR(a.mlPerf, b.mlPerf, a.mlPerf * 0.05);
}

// ---------------------------------------------------------------------
// Controller-under-fault coverage: a hardened KP controller behind
// HAL fault injectors, supervised by the manager's watchdog.
// ---------------------------------------------------------------------

namespace {

/**
 * A TpuV1 node with one DRAM aggressor, a hardened KP controller
 * reading through a FaultyCounterSource and actuating through a
 * FaultyKnobSink (both initially fault-free), and a watchdog-armed
 * manager sampling every 10 ms. Tests script fault phases by swapping
 * the injector plans mid-run.
 */
struct FaultHarness
{
    node::Node node{node::platformFor(accel::Kind::TpuV1)};
    sim::GroupId ml, cpu;
    runtime::ConfigLimits limits{0, 4, 1, 8};
    std::unique_ptr<hal::FaultyCounterSource> counters;
    std::unique_ptr<hal::FaultyKnobSink> knobs;
    std::unique_ptr<runtime::RuntimeManager> mgr;
    runtime::KelpController *ctl = nullptr;
    sim::Engine engine{1e-4};

    explicit FaultHarness(int aggressor_threads = 8)
    {
        node.setSncEnabled(true);
        ml = node.groups().create("ml", hal::Priority::High).id();
        cpu = node.groups().create("batch", hal::Priority::Low).id();
        node.knobs().setCores(ml, 0, 0, 4);
        node.knobs().setPrefetchersEnabled(ml, 4);
        auto &task = node.add(std::make_unique<wl::BatchTask>(
            "agg", cpu, aggressor_threads,
            wl::cpuParams(wl::CpuWorkload::DramAggressor)));
        task.setHomeSocket(0);

        sim::Rng rng(7);
        counters = std::make_unique<hal::FaultyCounterSource>(
            std::make_unique<hal::PerfCounters>(node.memSystem()),
            hal::FaultPlan{}, rng.split(1));
        knobs = std::make_unique<hal::FaultyKnobSink>(
            node.knobs(), hal::FaultPlan{}, rng.split(2));

        runtime::Bindings bind{&node, ml, cpu, 0, counters.get(),
                               knobs.get()};
        runtime::Hardening hard;
        hard.enabled = true;
        auto spec = node::platformFor(accel::Kind::TpuV1);
        auto owned = std::make_unique<runtime::KelpController>(
            bind, runtime::defaultProfile(wl::MlWorkload::Rnn1, spec),
            limits, runtime::ResourceState{0, 8, 8}, hard);
        ctl = owned.get();
        mgr = std::make_unique<runtime::RuntimeManager>(
            std::move(owned), 0.01);
        runtime::WatchdogConfig wd;
        wd.enabled = true;  // thresholds 3 / 3
        mgr->setWatchdog(wd);
        node.attach(engine);
        mgr->attach(engine);
    }

    /** Applied (not just targeted) knob state never escapes the
     * configured ML-protection limits. */
    void
    checkAppliedWithinLimits()
    {
        const auto &group = node.groups().get(cpu);
        EXPECT_LE(group.cores().inSubdomain(0, 0), limits.maxCoreH);
        EXPECT_LE(group.cores().inSubdomain(0, 1), limits.maxCoreL);
        EXPECT_GE(group.cores().inSubdomain(0, 1), limits.minCoreL);
        EXPECT_LE(group.prefetchersEnabled(),
                  limits.maxCoreL + limits.maxCoreH);
        // The ML task's own placement is never touched.
        EXPECT_EQ(node.groups().get(ml).cores().inSubdomain(0, 0), 4);
    }
};

} // namespace

TEST(ControllerUnderFault, CounterDropoutTripsFailSafeAndRecovers)
{
    FaultHarness h;
    h.engine.run(0.055);  // clean: primes the guard
    EXPECT_FALSE(h.mgr->inFailSafe());

    // Telemetry goes completely dark mid-run.
    hal::FaultPlan dark;
    dark.dropProb = 1.0;
    h.counters->setPlan(dark);
    h.engine.run(0.03);  // 3 consecutive invalid samples
    EXPECT_TRUE(h.mgr->inFailSafe());
    EXPECT_TRUE(h.ctl->failSafe());
    EXPECT_EQ(h.mgr->failSafeEntries(), 1u);
    // Pinned to the static KP-SD floor: backfill withdrawn, the
    // low-priority subdomain fully populated, prefetchers on.
    EXPECT_EQ(h.ctl->state().coreNumH, h.limits.minCoreH);
    EXPECT_EQ(h.ctl->state().coreNumL, h.limits.maxCoreL);
    EXPECT_EQ(h.ctl->state().prefetcherNumL, h.limits.maxCoreL);
    h.checkAppliedWithinLimits();

    // Held down while telemetry stays dark.
    h.engine.run(0.05);
    EXPECT_TRUE(h.mgr->inFailSafe());
    EXPECT_EQ(h.mgr->failSafeExits(), 0u);

    // Telemetry returns: re-armed after the recovery streak.
    h.counters->setPlan(hal::FaultPlan{});
    h.engine.run(0.035);
    EXPECT_FALSE(h.mgr->inFailSafe());
    EXPECT_FALSE(h.ctl->failSafe());
    EXPECT_EQ(h.mgr->failSafeExits(), 1u);
    EXPECT_GT(h.mgr->timeInFailSafe(), 0.0);

    // Closed-loop control resumed: the controller moves off the
    // fail-safe config under a saturating aggressor.
    h.engine.run(0.1);
    EXPECT_LT(h.ctl->state().prefetcherNumL, h.limits.maxCoreL);
}

TEST(ControllerUnderFault, StuckSaturationSignalTripsFailSafe)
{
    FaultHarness h;
    h.engine.run(0.055);
    EXPECT_FALSE(h.mgr->inFailSafe());

    // The counter wedges: every read repeats the last good sample
    // bit-for-bit (saturation included), which real windowed
    // hardware averages never do.
    hal::FaultPlan wedge;
    wedge.stuckProb = 1.0;
    h.counters->setPlan(wedge);
    h.engine.run(0.07);
    EXPECT_TRUE(h.mgr->inFailSafe());
    EXPECT_GE(h.ctl->rejectedSamples(), 3u);
    h.checkAppliedWithinLimits();

    h.counters->setPlan(hal::FaultPlan{});
    h.engine.run(0.05);
    EXPECT_FALSE(h.mgr->inFailSafe());
    EXPECT_EQ(h.mgr->failSafeExits(), 1u);
}

TEST(ControllerUnderFault, ActuationStormTripsFailSafeAndRecovers)
{
    FaultHarness h;
    h.engine.run(0.055);
    EXPECT_FALSE(h.mgr->inFailSafe());

    // Every knob write is lost: retry backoff escalates, the failed-
    // attempt streak crosses the threshold, the watchdog trips.
    hal::FaultPlan storm;
    storm.knobFailProb = 1.0;
    h.knobs->setPlan(storm);
    h.engine.run(0.1);
    EXPECT_TRUE(h.mgr->inFailSafe());
    EXPECT_GE(h.mgr->failSafeEntries(), 1u);
    // Nothing lands while the storm persists, so the applied state
    // is the last successfully-enforced one: still within limits.
    h.checkAppliedWithinLimits();

    // Writes work again: the pinned fail-safe config lands, health
    // recovers, and the loop re-arms.
    h.knobs->setPlan(hal::FaultPlan{});
    h.engine.run(0.15);
    EXPECT_FALSE(h.mgr->inFailSafe());
    EXPECT_GE(h.mgr->failSafeExits(), 1u);
    // Once re-armed and enforcing cleanly, the applied state tracks
    // the controller's target exactly.
    const auto &group = h.node.groups().get(h.cpu);
    EXPECT_EQ(group.cores().inSubdomain(0, 1),
              h.ctl->state().coreNumL);
    EXPECT_EQ(group.cores().inSubdomain(0, 0),
              h.ctl->state().coreNumH);
    EXPECT_EQ(group.prefetchersEnabled(),
              h.ctl->state().prefetcherNumL + h.ctl->state().coreNumH);
}

TEST(ControllerUnderFault, NoViolatingConfigEverApplied)
{
    FaultHarness h;
    // A sustained mixed fault storm: telemetry corruption plus torn
    // and delayed actuation, heavy enough to trip the watchdog
    // repeatedly.
    hal::FaultPlan mixed;
    mixed.dropProb = 0.3;
    mixed.stuckProb = 0.1;
    mixed.noiseProb = 0.3;
    mixed.spikeProb = 0.1;
    mixed.knobFailProb = 0.3;
    mixed.knobDelayProb = 0.2;
    h.counters->setPlan(mixed);
    h.knobs->setPlan(mixed);

    h.engine.run(0.005);  // keep run boundaries mid-period
    for (int period = 0; period < 80; ++period) {
        h.engine.run(0.01);
        h.checkAppliedWithinLimits();
    }
    EXPECT_EQ(h.mgr->samples(), 80u);
}

TEST(ControllerUnderFault, ModeTraceDeterministicAcrossRuns)
{
    // Same workload seed + same fault seed => identical fail-safe
    // transition trace and bit-identical results, end to end through
    // the scenario layer.
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Cnn1;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 3;
    cfg.config = exp::ConfigKind::KP;
    cfg.warmup = 5.0;
    cfg.measure = 10.0;
    cfg.samplePeriod = 0.5;
    cfg.faults.dropProb = 0.6;
    cfg.faults.knobFailProb = 0.3;
    cfg.faultSeed = 11;

    auto run = [&cfg]() {
        exp::Scenario s = exp::buildScenario(cfg);
        s.engine->run(cfg.warmup + cfg.measure);
        return std::make_pair(s.manager->modeTrace(),
                              s.mlTask->completedWork());
    };
    auto a = run();
    auto b = run();
    EXPECT_GE(a.first.size(), 1u);  // the storm actually tripped it
    ASSERT_EQ(a.first.size(), b.first.size());
    for (size_t i = 0; i < a.first.size(); ++i) {
        EXPECT_EQ(a.first[i].time, b.first[i].time);
        EXPECT_EQ(a.first[i].failSafe, b.first[i].failSafe);
    }
    EXPECT_DOUBLE_EQ(a.second, b.second);
}
