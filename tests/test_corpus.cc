/**
 * @file
 * Regression-corpus replay. Entries come in two lifecycles:
 *
 *  - open entries (no status directive) are still-unfixed finds:
 *    each must keep firing the oracle named in its `# oracle:`
 *    directive and must stay 1-minimal (no single-step reduction
 *    fires it). A miss means the corpus is stale -- either a
 *    genuine fix landed (promote the entry to fixed) or replay
 *    broke.
 *
 *  - `# status: fixed` entries are regression gates for repaired
 *    bugs: each must NOT fire its oracle. A firing here means the
 *    fix regressed.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "fuzz/oracle.hh"
#include "fuzz/shrink.hh"
#include "sim/log.hh"

using namespace kelp;
using namespace kelp::fuzz;

namespace {

const std::vector<std::pair<std::string, CorpusEntry>> &
corpus()
{
    static const auto entries = loadCorpus(CORPUS_DIR);
    return entries;
}

} // namespace

TEST(Corpus, HasEntries)
{
    EXPECT_FALSE(corpus().empty())
        << "tests/corpus/ lost its *.scenario entries";
}

TEST(Corpus, FileNamesAreCanonical)
{
    for (const auto &[name, entry] : corpus())
        EXPECT_EQ(name, corpusFileName(entry));
}

TEST(Corpus, OpenEntriesStillFireTheirOracle)
{
    sim::setContractMode(sim::ContractMode::Count);
    for (const auto &[name, entry] : corpus()) {
        if (entry.fixed)
            continue;
        EXPECT_TRUE(oracleFires(entry.spec, entry.oracle,
                                OracleConfig{}))
            << name << " no longer reproduces '" << entry.oracle
            << "'";
    }
}

TEST(Corpus, FixedEntriesStayQuiet)
{
    sim::setContractMode(sim::ContractMode::Count);
    for (const auto &[name, entry] : corpus()) {
        if (!entry.fixed)
            continue;
        EXPECT_FALSE(oracleFires(entry.spec, entry.oracle,
                                 OracleConfig{}))
            << name << " regressed: '" << entry.oracle
            << "' fires again on a scenario marked fixed";
    }
}

TEST(Corpus, ReplayIsDeterministic)
{
    sim::setContractMode(sim::ContractMode::Count);
    OracleConfig ocfg;
    ocfg.twinRun = false;
    ocfg.doubleRun = false;
    for (const auto &[name, entry] : corpus()) {
        TrialOutcome a = runTrial(entry.spec, ocfg);
        TrialOutcome b = runTrial(entry.spec, ocfg);
        EXPECT_EQ(a.resultText, b.resultText) << name;
        EXPECT_EQ(a.coverage, b.coverage) << name;
    }
}

TEST(Corpus, OpenEntriesAreOneMinimal)
{
    // Minimality only means anything for entries that still fire;
    // a fixed entry's reductions trivially stay quiet too.
    sim::setContractMode(sim::ContractMode::Count);
    OracleConfig ocfg;
    for (const auto &[name, entry] : corpus()) {
        if (entry.fixed)
            continue;
        for (const ScenarioSpec &cand : shrinkCandidates(entry.spec)) {
            EXPECT_FALSE(oracleFires(cand, entry.oracle, ocfg))
                << name << " is not minimal: a smaller spec still "
                << "fires '" << entry.oracle << "':\n"
                << cand.toString();
        }
    }
}
