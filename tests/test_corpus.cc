/**
 * @file
 * Regression-corpus replay: every shrunk failure archived under
 * tests/corpus/ must still fire the oracle named in its
 * `# oracle:` directive, deterministically, and must still be
 * 1-minimal (no single-step reduction fires it). A test failure
 * here means a robustness regression -- or a genuine fix, in which
 * case the healed entry should be deleted with the fixing commit.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "fuzz/oracle.hh"
#include "fuzz/shrink.hh"
#include "sim/log.hh"

using namespace kelp;
using namespace kelp::fuzz;

namespace {

const std::vector<std::pair<std::string, CorpusEntry>> &
corpus()
{
    static const auto entries = loadCorpus(CORPUS_DIR);
    return entries;
}

} // namespace

TEST(Corpus, HasEntries)
{
    EXPECT_FALSE(corpus().empty())
        << "tests/corpus/ lost its *.scenario entries";
}

TEST(Corpus, FileNamesAreCanonical)
{
    for (const auto &[name, entry] : corpus())
        EXPECT_EQ(name, corpusFileName(entry));
}

TEST(Corpus, EveryEntryStillFiresItsOracle)
{
    sim::setContractMode(sim::ContractMode::Count);
    for (const auto &[name, entry] : corpus()) {
        EXPECT_TRUE(oracleFires(entry.spec, entry.oracle,
                                OracleConfig{}))
            << name << " no longer reproduces '" << entry.oracle
            << "'";
    }
}

TEST(Corpus, ReplayIsDeterministic)
{
    sim::setContractMode(sim::ContractMode::Count);
    OracleConfig ocfg;
    ocfg.twinRun = false;
    ocfg.doubleRun = false;
    for (const auto &[name, entry] : corpus()) {
        TrialOutcome a = runTrial(entry.spec, ocfg);
        TrialOutcome b = runTrial(entry.spec, ocfg);
        EXPECT_EQ(a.resultText, b.resultText) << name;
        EXPECT_EQ(a.coverage, b.coverage) << name;
    }
}

TEST(Corpus, EntriesAreOneMinimal)
{
    sim::setContractMode(sim::ContractMode::Count);
    OracleConfig ocfg;
    for (const auto &[name, entry] : corpus()) {
        for (const ScenarioSpec &cand : shrinkCandidates(entry.spec)) {
            EXPECT_FALSE(oracleFires(cand, entry.oracle, ocfg))
                << name << " is not minimal: a smaller spec still "
                << "fires '" << entry.oracle << "':\n"
                << cand.toString();
        }
    }
}
