/**
 * @file
 * Fine-grained hardware QoS what-if (paper Sections VI-C and VI-D).
 *
 * The paper closes by arguing that future hardware should provide
 * request-level memory prioritization and per-thread backpressure,
 * estimating that such hardware would beat every software
 * configuration. This example turns those two knobs on
 * (ConfigKind::FG) and compares the result against Baseline and full
 * Kelp on the paper's hardest mix (CNN1 + six Stitch instances).
 */

#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"

using namespace kelp;

int
main()
{
    exp::RunResult ref = exp::standaloneReference(wl::MlWorkload::Cnn1);

    exp::banner("Fine-grained hardware QoS what-if: CNN1 + 6x Stitch");
    exp::Table table({"Config", "CNN1 (norm)", "Stitch (units/s)",
                      "Saturation"});

    double kp_ml = 0.0, kp_cpu = 0.0, fg_ml = 0.0, fg_cpu = 0.0;
    for (auto kind : {exp::ConfigKind::BL, exp::ConfigKind::KPSD,
                      exp::ConfigKind::KP, exp::ConfigKind::FG}) {
        exp::RunConfig cfg;
        cfg.ml = wl::MlWorkload::Cnn1;
        cfg.cpu = wl::CpuWorkload::Stitch;
        cfg.cpuInstances = 6;
        cfg.config = kind;
        exp::RunResult r = exp::runScenario(cfg);
        double norm = r.mlPerf / ref.mlPerf;
        table.addRow({exp::configName(kind), exp::fmt(norm, 2),
                      exp::fmt(r.cpuThroughput, 2),
                      exp::fmt(r.avgSaturation, 2)});
        if (kind == exp::ConfigKind::KP) {
            kp_ml = norm;
            kp_cpu = r.cpuThroughput;
        }
        if (kind == exp::ConfigKind::FG) {
            fg_ml = norm;
            fg_cpu = r.cpuThroughput;
        }
    }
    table.print();

    std::printf("\nHardware QoS vs full Kelp: ML %+.0f%%, batch "
                "throughput %+.0f%% -- the headroom the paper "
                "projects for fine-grained memory isolation "
                "(Section VI-D), with no software feedback loop, no "
                "subdomain fragmentation, and no prefetcher "
                "sacrifices.\n",
                100.0 * (fg_ml / kp_ml - 1.0),
                100.0 * (fg_cpu / kp_cpu - 1.0));
    return 0;
}
