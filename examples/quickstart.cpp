/**
 * @file
 * Quickstart: colocate an accelerated training job with a bandwidth
 * aggressor, watch it degrade, then let the Kelp runtime protect it.
 *
 * Demonstrates the core public API:
 *  - build a platform and a Node,
 *  - place a high-priority ML task and low-priority CPU tasks,
 *  - run under Baseline vs. full Kelp,
 *  - read back performance and the controller's decisions.
 */

#include <cstdio>

#include "exp/scenario.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace kelp;

    // CNN1 on the Cloud TPU platform, colocated with four Stitch
    // batch instances -- the paper's first case study (Figure 9).
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Cnn1;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 4;

    exp::RunResult standalone = exp::standaloneReference(cfg.ml);
    std::printf("CNN1 standalone: %.2f steps/s\n", standalone.mlPerf);

    cfg.config = exp::ConfigKind::BL;
    exp::RunResult bl = exp::runScenario(cfg);
    std::printf("Baseline:  CNN1 %.2f steps/s (%.0f%% of standalone), "
                "Stitch %.2f units/s, saturation %.2f\n",
                bl.mlPerf, 100.0 * bl.mlPerf / standalone.mlPerf,
                bl.cpuThroughput, bl.avgSaturation);

    cfg.config = exp::ConfigKind::KP;
    exp::RunResult kp = exp::runScenario(cfg);
    std::printf("Kelp:      CNN1 %.2f steps/s (%.0f%% of standalone), "
                "Stitch %.2f units/s, saturation %.2f\n",
                kp.mlPerf, 100.0 * kp.mlPerf / standalone.mlPerf,
                kp.cpuThroughput, kp.avgSaturation);
    std::printf("Kelp knobs (time-avg): lo cores %.1f, "
                "lo prefetchers %.1f, backfill %.1f\n",
                kp.avgLoCores, kp.avgLoPrefetchers, kp.avgHiBackfill);

    std::printf("\nKelp improved CNN1 by %.0f%% over Baseline at "
                "%.0f%% of Baseline batch throughput.\n",
                100.0 * (kp.mlPerf / bl.mlPerf - 1.0),
                100.0 * kp.cpuThroughput /
                    std::max(bl.cpuThroughput, 1e-9));
    return 0;
}
