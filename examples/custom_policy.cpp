/**
 * @file
 * Custom policy: extending the runtime with your own controller.
 *
 * The runtime's Controller interface is the extension point the
 * Kelp, CoreThrottle, and Baseline configurations are built on. This
 * example implements a simple static-partition policy (fixed cores,
 * half the prefetchers, no feedback at all) and races it against the
 * full Kelp controller on the same workload mix, demonstrating why
 * feedback matters when the aggressor's intensity changes mid-run.
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "exp/scenario.hh"
#include "kelp/kelp_controller.hh"
#include "kelp/manager.hh"
#include "node/platform.hh"
#include "workload/batch_task.hh"
#include "workload/ml_train_task.hh"

using namespace kelp;

namespace {

/** A naive fixed allocation: no measurement, no adjustment. */
class StaticPartition : public runtime::Controller
{
  public:
    StaticPartition(const runtime::Bindings &bindings, int lo_cores)
        : Controller(bindings), loCores_(lo_cores)
    {
        auto &knobs = bind_.node->knobs();
        knobs.setCores(bind_.cpuGroup, bind_.socket, 1, loCores_);
        knobs.setPrefetchersEnabled(bind_.cpuGroup, loCores_ / 2);
    }

    void sample(sim::Time) override {}  // static by design

    runtime::ControllerParams
    params() const override
    {
        return {loCores_, loCores_ / 2, 0};
    }

    const char *name() const override { return "Static"; }

  private:
    int loCores_;
};

/** Build a CNN1 node whose aggressor doubles its threads mid-run. */
struct Bench
{
    std::unique_ptr<node::Node> node;
    sim::Engine engine{100 * sim::usec};
    wl::MlTrainTask *cnn1 = nullptr;
    wl::BatchTask *aggressor = nullptr;
    runtime::Bindings bind;

    Bench()
    {
        auto spec = node::platformFor(accel::Kind::CloudTpu);
        node = std::make_unique<node::Node>(spec);
        node->setSncEnabled(true);
        auto ml = node->groups().create("ml", hal::Priority::High).id();
        auto cpu =
            node->groups().create("batch", hal::Priority::Low).id();
        node->knobs().setCores(ml, 0, 0, 4);
        node->knobs().setPrefetchersEnabled(ml, 4);
        node->knobs().setCatWays(ml, 3);

        wl::MlDesc desc = wl::mlDesc(wl::MlWorkload::Cnn1);
        cnn1 = &node->add(std::make_unique<wl::MlTrainTask>(
            "CNN1", ml, desc.step, &node->accelerator()));
        aggressor = &node->add(std::make_unique<wl::BatchTask>(
            "stream", cpu, 4,
            wl::cpuParams(wl::CpuWorkload::DramAggressor)));
        node->attach(engine);
        bind = {node.get(), ml, cpu, 0};
    }
};

double
raceController(std::unique_ptr<runtime::Controller> ctl,
               const char *label)
{
    // Rebuild the bench around the supplied controller.
    Bench bench;
    (void)ctl;  // controllers are node-bound; construct below instead
    std::unique_ptr<runtime::Controller> bound;
    if (std::string(label) == "Static") {
        bound = std::make_unique<StaticPartition>(bench.bind, 10);
    } else {
        auto spec = node::platformFor(accel::Kind::CloudTpu);
        runtime::ConfigLimits limits{0, 8, 1, 12};
        runtime::ResourceState init{0, 10, 10};
        bound = std::make_unique<runtime::KelpController>(
            bench.bind,
            runtime::defaultProfile(wl::MlWorkload::Cnn1, spec),
            limits, init);
    }
    runtime::RuntimeManager mgr(std::move(bound), 2.0);
    mgr.attach(bench.engine);

    // Phase 1: light aggressor. Phase 2: it doubles twice.
    bench.engine.run(30.0);
    bench.aggressor->setThreads(8);
    bench.engine.run(30.0);
    bench.aggressor->setThreads(12);
    double steps_before = bench.cnn1->completedWork();
    bench.engine.run(30.0);
    double rate = (bench.cnn1->completedWork() - steps_before) / 30.0;
    std::printf("%-7s CNN1 under the heavy phase: %.1f steps/s "
                "(lo cores %.0f, prefetchers %.0f)\n",
                label, rate, mgr.avgLoCores(), mgr.avgLoPrefetchers());
    return rate;
}

} // namespace

int
main()
{
    std::printf("Racing a static partition against Kelp while the "
                "aggressor ramps 4 -> 8 -> 12 threads:\n\n");
    double fixed = raceController(nullptr, "Static");
    double kelp = raceController(nullptr, "Kelp");
    std::printf("\nKelp's feedback delivered %.0f%% more CNN1 "
                "throughput in the heavy phase.\n",
                100.0 * (kelp / std::max(fixed, 1e-9) - 1.0));
    return 0;
}
