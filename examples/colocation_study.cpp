/**
 * @file
 * Colocation study: how a capacity planner would use the library to
 * decide how much batch work can share a node with an accelerated
 * job under each runtime configuration.
 *
 * Sweeps Stitch load against CNN1 (the paper's most
 * bandwidth-sensitive workload) and prints, per configuration, the
 * highest batch load that keeps CNN1 above a 90% performance SLO --
 * plus the batch throughput harvested at that point.
 */

#include <cstdio>
#include <vector>

#include "exp/report.hh"
#include "exp/scenario.hh"

using namespace kelp;

int
main()
{
    const double slo = 0.90;  // CNN1 must keep 90% of standalone
    exp::RunResult ref = exp::standaloneReference(wl::MlWorkload::Cnn1);

    exp::banner("Colocation study: max Stitch load with CNN1 >= 90% "
                "of standalone");
    exp::Table table({"Config", "Max instances", "CNN1 perf",
                      "Stitch throughput (units/s)"});

    for (auto kind : {exp::ConfigKind::BL, exp::ConfigKind::CT,
                      exp::ConfigKind::KPSD, exp::ConfigKind::KP}) {
        int best = 0;
        double best_perf = 1.0;
        double best_tput = 0.0;
        for (int inst = 1; inst <= 6; ++inst) {
            exp::RunConfig cfg;
            cfg.ml = wl::MlWorkload::Cnn1;
            cfg.cpu = wl::CpuWorkload::Stitch;
            cfg.cpuInstances = inst;
            cfg.config = kind;
            exp::RunResult r = exp::runScenario(cfg);
            double norm = r.mlPerf / ref.mlPerf;
            std::printf("  %-5s %d instances: CNN1 %.2f, Stitch "
                        "%.2f\n",
                        exp::configName(kind), inst, norm,
                        r.cpuThroughput);
            if (norm >= slo) {
                best = inst;
                best_perf = norm;
                best_tput = r.cpuThroughput;
            }
        }
        table.addRow({exp::configName(kind), std::to_string(best),
                      exp::fmt(best_perf, 2), exp::fmt(best_tput, 2)});
    }

    std::printf("\n");
    table.print();
    std::printf("\nKelp's subdomain isolation + backfilling lets the "
                "node absorb the most batch work within the SLO.\n");
    return 0;
}
