#include "fleet/fleet.hh"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "exp/pool.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "workload/catalog.hh"

namespace kelp {
namespace fleet {

FleetResult::FleetResult(std::vector<double> p99_per_server)
    : p99_(std::move(p99_per_server))
{
    std::sort(p99_.begin(), p99_.end());
}

double
FleetResult::percentile(double pct) const
{
    KELP_EXPECTS(!p99_.empty(), "percentile of an empty fleet");
    if (p99_.empty())
        return 0.0;
    return sim::percentileSorted(p99_, pct);
}

double
FleetResult::fractionAbove(double peak_fraction) const
{
    KELP_EXPECTS(!p99_.empty(), "fractionAbove on an empty fleet");
    if (p99_.empty())
        return 0.0;
    // upper_bound: strictly-greater semantics -- a value exactly at
    // the threshold is not above it.
    auto it = std::upper_bound(p99_.begin(), p99_.end(), peak_fraction);
    return static_cast<double>(p99_.end() - it) /
           static_cast<double>(p99_.size());
}

std::vector<std::pair<double, double>>
FleetResult::cdf(int points, double lo, double hi) const
{
    KELP_ASSERT(points >= 2, "need at least two CDF points");
    KELP_ASSERT(hi > lo, "CDF range must be non-empty");
    std::vector<std::pair<double, double>> rows;
    for (int i = 0; i < points; ++i) {
        double x = lo + (hi - lo) * static_cast<double>(i) /
                            (points - 1);
        rows.emplace_back(x, 1.0 - fractionAbove(x));
    }
    return rows;
}

namespace {

/** Per-task state within one simulated server. */
struct FleetTask
{
    double peakDemand = 0.0;  ///< GiB/s at full activity.
    double phase = 0.0;       ///< Diurnal phase offset.
    double activity = 0.5;    ///< Random-walked activity level.
    double burstiness = 0.2;  ///< Random-walk step scale.
};

} // namespace

namespace {

/**
 * Simulate one server's day. All randomness comes from the canonical
 * per-server stream Rng::derive(cfg.seed, s), so the result depends
 * only on (cfg, s) -- never on which worker ran it or in what order.
 */
double
profileServer(const FleetConfig &cfg, int s)
{
    sim::Rng srng = sim::Rng::derive(cfg.seed, static_cast<uint64_t>(s));

    // Batch-task archetypes drawn from the catalog: bandwidth per
    // core at full activity. Weights reflect a WSC mix: mostly
    // moderate tasks, a minority of streaming bandwidth hogs
    // [Kanev'15-style heterogeneity].
    struct Archetype { wl::CpuWorkload kind; double weight; };
    const Archetype archetypes[] = {
        {wl::CpuWorkload::Cpuml, 0.45},
        {wl::CpuWorkload::Stitch, 0.35},
        {wl::CpuWorkload::Stream, 0.20},
    };
    constexpr size_t n_arch = std::size(archetypes);
    double weight_sum = 0.0;
    for (const auto &a : archetypes)
        weight_sum += a.weight;
    KELP_ASSERT(std::abs(weight_sum - 1.0) < 1e-9,
                "archetype weights must sum to 1");

    // Server population: total threads up to ~1.5x cores
    // (overcommit), split across a handful of jobs.
    int jobs = 2 + static_cast<int>(srng.below(8));
    std::vector<FleetTask> tasks;
    int threads_left = static_cast<int>(
        cfg.cores * srng.uniform(0.3, 1.25));
    for (int j = 0; j < jobs && threads_left > 0; ++j) {
        // The last archetype is the explicit fall-through so FP
        // rounding in the partial sums can never leave the pick
        // unassigned (the pre-fix loop silently remapped a
        // fallen-through pick to the *first* archetype).
        double pick = srng.uniform();
        const Archetype *arch = &archetypes[n_arch - 1];
        double acc = 0.0;
        for (size_t k = 0; k + 1 < n_arch; ++k) {
            acc += archetypes[k].weight;
            if (pick <= acc) {
                arch = &archetypes[k];
                break;
            }
        }
        int threads = 1 + static_cast<int>(srng.below(
            static_cast<uint64_t>(std::max(threads_left / 2, 1))));
        threads = std::min(threads, threads_left);
        threads_left -= threads;

        wl::HostPhaseParams p = wl::cpuParams(arch->kind);
        FleetTask t;
        t.peakDemand = p.bwPerCore * threads;
        t.phase = srng.uniform(0.0, 2.0 * M_PI);
        t.activity = srng.uniform(0.12, 0.72);
        t.burstiness = srng.uniform(0.05, 0.35);
        tasks.push_back(t);
    }

    // Walk the day and collect bandwidth samples.
    std::vector<double> samples;
    samples.reserve(cfg.samplesPerDay);
    for (int i = 0; i < cfg.samplesPerDay; ++i) {
        double tod = static_cast<double>(i) / cfg.samplesPerDay;
        double demand = 0.0;
        for (auto &t : tasks) {
            // Diurnal swing plus a bounded random walk.
            double diurnal =
                0.75 + 0.25 * std::sin(2.0 * M_PI * tod + t.phase);
            t.activity += srng.gaussian(0.0, t.burstiness * 0.1);
            t.activity = std::clamp(t.activity, 0.05, 1.0);
            demand += t.peakDemand * t.activity * diurnal;
        }
        samples.push_back(std::min(demand / cfg.peakBw, 1.0));
    }
    // Shared percentile convention (sim::percentileSorted) -- the
    // previous ad-hoc floor(0.99*(n-1)) index sat one sample below
    // the LatencyHistogram rule used everywhere else in the tree.
    std::sort(samples.begin(), samples.end());
    return sim::percentileSorted(samples, 99.0);
}

} // namespace

FleetResult
profileFleet(const FleetConfig &cfg)
{
    KELP_ASSERT(cfg.servers > 0 && cfg.samplesPerDay > 1,
                "bad fleet configuration");

    // Fan servers out in fixed-size contiguous batches; each slot of
    // the result vector is owned by exactly one job, so any job count
    // produces the same vector.
    std::vector<double> p99_per_server(
        static_cast<size_t>(cfg.servers));
    constexpr int kBatch = 128;
    const int batches = (cfg.servers + kBatch - 1) / kBatch;
    exp::runJobs(batches, exp::resolveJobs(cfg.jobs), [&](int b) {
        const int lo = b * kBatch;
        const int hi = std::min(lo + kBatch, cfg.servers);
        for (int s = lo; s < hi; ++s)
            p99_per_server[static_cast<size_t>(s)] =
                profileServer(cfg, s);
    });

    return FleetResult(std::move(p99_per_server));
}

} // namespace fleet
} // namespace kelp
