/**
 * @file
 * Fleet-level memory-bandwidth profiling (paper Figure 2).
 *
 * Figure 2 plots, for a production server generation over one day,
 * the distribution across machines of 99th-percentile memory
 * bandwidth (as a fraction of peak): 16% of machines exceed 70% of
 * peak, indicating widespread bandwidth saturation.
 *
 * We regenerate the figure with a Monte-Carlo fleet: each server
 * hosts a sampled colocation of batch tasks from the workload
 * catalog; task activity follows a diurnal cycle with per-task random
 * modulation; per-interval socket bandwidth is the demand sum capped
 * at peak. The per-server 99%-ile over the day's samples gives the
 * distribution.
 */

#ifndef KELP_FLEET_FLEET_HH
#define KELP_FLEET_FLEET_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace kelp {
namespace fleet {

/** Fleet-profiling parameters. */
struct FleetConfig
{
    /** Number of servers profiled. */
    int servers = 4000;

    /** Bandwidth samples per server over the day (5-minute grain). */
    int samplesPerDay = 288;

    /** Socket peak bandwidth, GiB/s. */
    sim::GiBps peakBw = 76.8;

    /** Cores per server available to batch tasks. */
    int cores = 32;

    uint64_t seed = 2019;

    /**
     * Worker threads for the Monte-Carlo sweep. Each server draws
     * from sim::Rng::derive(seed, server_index), so the result is
     * identical for every job count; 1 = serial, <= 0 = all cores.
     */
    int jobs = 1;
};

/** Per-fleet profiling result. */
class FleetResult
{
  public:
    explicit FleetResult(std::vector<double> p99_per_server);

    /** 99%-ile bandwidth fraction for each server, sorted. */
    const std::vector<double> &p99PerServer() const { return p99_; }

    /** Fraction of machines whose p99 exceeds the given fraction of
     * peak (the paper's "16% above 70%" statement). */
    double fractionAbove(double peak_fraction) const;

    /**
     * CDF rows for the figure: (x = fraction of peak BW,
     * y = fraction of machines with p99 <= x).
     */
    std::vector<std::pair<double, double>> cdf(int points = 11) const;

  private:
    std::vector<double> p99_;
};

/** Profile a synthetic fleet. */
FleetResult profileFleet(const FleetConfig &cfg);

} // namespace fleet
} // namespace kelp

#endif // KELP_FLEET_FLEET_HH
