/**
 * @file
 * Fleet-level memory-bandwidth profiling (paper Figure 2).
 *
 * Figure 2 plots, for a production server generation over one day,
 * the distribution across machines of 99th-percentile memory
 * bandwidth (as a fraction of peak): 16% of machines exceed 70% of
 * peak, indicating widespread bandwidth saturation.
 *
 * We regenerate the figure with a Monte-Carlo fleet: each server
 * hosts a sampled colocation of batch tasks from the workload
 * catalog; task activity follows a diurnal cycle with per-task random
 * modulation; per-interval socket bandwidth is the demand sum capped
 * at peak. The per-server 99%-ile over the day's samples gives the
 * distribution.
 */

#ifndef KELP_FLEET_FLEET_HH
#define KELP_FLEET_FLEET_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace kelp {
namespace fleet {

/** Fleet-profiling parameters. */
struct FleetConfig
{
    /** Number of servers profiled. */
    int servers = 4000;

    /** Bandwidth samples per server over the day (5-minute grain). */
    int samplesPerDay = 288;

    /** Socket peak bandwidth, GiB/s. */
    sim::GiBps peakBw = 76.8;

    /** Cores per server available to batch tasks. */
    int cores = 32;

    uint64_t seed = 2019;

    /**
     * Worker threads for the Monte-Carlo sweep. Each server draws
     * from sim::Rng::derive(seed, server_index), so the result is
     * identical for every job count; 1 = serial, <= 0 = all cores.
     */
    int jobs = 1;
};

/**
 * Distribution of one per-server statistic across a fleet (the
 * Figure 2 per-server p99 bandwidth fractions; the cluster simulator
 * reuses it for fleet-wide request-tail accounting). Values are held
 * sorted; percentile queries follow the shared
 * sim::percentileSorted convention.
 */
class FleetResult
{
  public:
    explicit FleetResult(std::vector<double> p99_per_server);

    /** 99%-ile bandwidth fraction for each server, sorted. */
    const std::vector<double> &p99PerServer() const { return p99_; }

    /** The sorted per-server values (alias for generic consumers). */
    const std::vector<double> &values() const { return p99_; }

    /** Number of servers in the distribution. */
    size_t count() const { return p99_.size(); }

    /** Fleet-level percentile of the per-server values (shared
     * sim::percentileSorted convention). Empty fleet is a contract
     * violation. */
    double percentile(double pct) const;

    /**
     * Fraction of machines whose value is *strictly greater* than
     * the given threshold (the paper's "16% above 70%" statement).
     * A machine sitting exactly at the threshold counts as not
     * above. Querying an empty fleet is a contract violation: there
     * is no distribution to ask about, and silently answering 0
     * previously masked empty-sweep bugs.
     */
    double fractionAbove(double peak_fraction) const;

    /**
     * CDF rows: (x, fraction of machines with value <= x), with x
     * spanning [lo, hi] inclusive in `points` even steps. The
     * defaults cover the Figure 2 domain (bandwidth as a fraction of
     * peak); distributions on other scales (e.g. cluster tail
     * latencies in seconds) pass their own range. Empty fleet is a
     * contract violation, as for fractionAbove.
     */
    std::vector<std::pair<double, double>>
    cdf(int points = 11, double lo = 0.0, double hi = 1.0) const;

  private:
    std::vector<double> p99_;
};

/** Profile a synthetic fleet. */
FleetResult profileFleet(const FleetConfig &cfg);

} // namespace fleet
} // namespace kelp

#endif // KELP_FLEET_FLEET_HH
