/**
 * @file
 * Resource configuration procedures -- the paper's Algorithm 2.
 *
 * Given a THROTTLE/BOOST/NOP decision per priority group, the
 * configurator mutates the managed resource state:
 *
 *  - High-priority subdomain (ConfigHiPriority): grows or shrinks the
 *    number of low-priority cores *backfilled* into the high-priority
 *    subdomain, one core at a time, within [min, max].
 *  - Low-priority subdomain (ConfigLoPriority): throttling first
 *    halves the number of enabled prefetchers (aggressive, to
 *    prioritize ML performance), and only starts removing cores once
 *    prefetchers are exhausted; boosting restores prefetchers one at
 *    a time before adding cores back.
 */

#ifndef KELP_KELP_CONFIGURATOR_HH
#define KELP_KELP_CONFIGURATOR_HH

#include "kelp/controller.hh"

namespace kelp {
namespace runtime {

/** Bounds on the managed resources. */
struct ConfigLimits
{
    int minCoreH = 0;
    int maxCoreH = 0;
    int minCoreL = 1;
    int maxCoreL = 1;
};

/** The resource state Algorithm 2 mutates. */
struct ResourceState
{
    /** Low-priority cores backfilled into the high-pri subdomain. */
    int coreNumH = 0;

    /** Cores held by low-priority tasks in the low-pri subdomain. */
    int coreNumL = 1;

    /** Low-priority-subdomain cores with prefetchers enabled. */
    int prefetcherNumL = 1;
};

/** Algorithm 2: resource configuration procedures. */
class Configurator
{
  public:
    explicit Configurator(const ConfigLimits &limits);

    /** ConfigHiPriority(action_h): adjust backfill cores. */
    void configHiPriority(Action action, ResourceState &state) const;

    /** ConfigLoPriority(action_l): adjust prefetchers, then cores. */
    void configLoPriority(Action action, ResourceState &state) const;

    const ConfigLimits &limits() const { return limits_; }

  private:
    ConfigLimits limits_;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_KELP_CONFIGURATOR_HH
