/**
 * @file
 * The Kelp runtime controller -- the paper's Algorithm 1.
 *
 * Every sampling period Kelp makes four measurements (socket
 * bandwidth, memory latency, memory saturation, high-priority
 * subdomain bandwidth), compares them against the application
 * profile's watermarks, decides a THROTTLE/BOOST/NOP action per
 * priority group, and actuates through Algorithm 2
 * (the Configurator):
 *
 *   - action_h throttles/boosts the low-priority cores backfilled
 *     into the high-priority subdomain (full Kelp only).
 *   - action_l throttles/boosts the low-priority subdomain:
 *     prefetchers first, then cores.
 *
 * The Kelp Subdomain (KP-SD) configuration is the same controller
 * with backfilling disabled (maxCoreH = 0).
 *
 * With Hardening enabled the controller degrades gracefully under
 * broken telemetry and actuation: samples are validated, outliers
 * rejected and the rest EWMA-smoothed (SampleGuard); opposite-action
 * flips pass through a NOP cycle (hysteresis); failed knob writes are
 * retried with exponential backoff; and a watchdog (RuntimeManager)
 * can pin the controller to a fail-safe config -- static KP-SD
 * partitioning with prefetchers on and backfill withdrawn, the
 * configuration that protects the accelerated task with no feedback
 * loop at all.
 */

#ifndef KELP_KELP_KELP_CONTROLLER_HH
#define KELP_KELP_KELP_CONTROLLER_HH

#include <memory>
#include <vector>

#include "hal/counters.hh"
#include "kelp/configurator.hh"
#include "kelp/controller.hh"
#include "kelp/profile.hh"
#include "kelp/sample_guard.hh"
#include "kelp/slo_guard.hh"

namespace kelp {
namespace runtime {

/** Algorithm 1 decision inputs (exposed for tests). */
struct KelpMeasurements
{
    double bwS = 0.0;   ///< Socket bandwidth, GiB/s.
    double latS = 0.0;  ///< Socket memory latency, ns.
    double satS = 0.0;  ///< Socket memory saturation, [0, 1].
    double bwH = 0.0;   ///< High-priority subdomain bandwidth, GiB/s.
};

/** Pure decision procedure of Algorithm 1 (testable in isolation). */
struct KelpDecision
{
    Action actionH = Action::Nop;
    Action actionL = Action::Nop;
};

/** Algorithm 1 lines 4-15: watermark comparison to actions. */
KelpDecision decideActions(const AppProfile &profile,
                           const KelpMeasurements &m);

/** The Kelp runtime (KP) and its subdomain-only variant (KP-SD). */
class KelpController : public Controller
{
  public:
    /**
     * @param bindings Node, groups, socket, and optional HAL backend
     *        overrides to manage.
     * @param profile Watermark profile of the accelerated task.
     * @param limits Resource bounds (maxCoreH = 0 yields KP-SD).
     * @param initial Starting resource state.
     * @param hardening Degraded-operation settings (disabled by
     *        default: identical behaviour to the paper's runtime).
     */
    KelpController(const Bindings &bindings, AppProfile profile,
                   const ConfigLimits &limits,
                   const ResourceState &initial,
                   const Hardening &hardening = {});

    void sample(sim::Time now) override;

    ControllerParams params() const override;

    const char *
    name() const override
    {
        return configurator_.limits().maxCoreH > 0 ? "KP" : "KP-SD";
    }

    SampleHealth lastHealth() const override { return health_; }

    void setFailSafe(bool on) override;
    bool failSafe() const override { return failSafe_; }
    bool probeActuation() override;

    /** The configuration fail-safe mode pins (inspection/tests). */
    ResourceState failSafeState() const;

    /** Current managed state (inspection). */
    const ResourceState &state() const { return state_; }

    /** Last decision taken (inspection). */
    const KelpDecision &lastDecision() const { return lastDecision_; }

    /** Last accepted measurements (inspection/audit). */
    const KelpMeasurements &lastMeasurements() const
    {
        return lastMeasurements_;
    }

    /** Samples rejected by the guard so far (inspection). */
    uint64_t rejectedSamples() const { return guard_.rejected(); }

    /**
     * Re-read low-priority group membership from the node every
     * sample instead of assuming the placement-time colocation. Under
     * churn the antagonist population changes mid-run, and managing
     * cores for departed tasks (or too few for arrivals) wastes the
     * subdomain. Off by default: the static paper path must stay
     * bit-identical.
     */
    void setDynamicMembership(bool on) { dynamicMembership_ = on; }
    bool dynamicMembership() const { return dynamicMembership_; }

    /**
     * Arm the SLO degradation ladder. @p referencePerf is the ML
     * task's standalone work rate (completed work per second); the
     * achieved/reference ratio is the SLO metric.
     */
    void enableSloGuard(const SloConfig &cfg, double referencePerf);

    /** The ladder, for rung/trace inspection (null when disarmed). */
    const SloGuard *sloGuard() const { return sloGuard_.get(); }

    /** Node task ids currently suspended by the ladder. */
    const std::vector<int> &suspendedIds() const { return suspended_; }

    ControllerSnapshot snapshot() const override;
    void restore(const ControllerSnapshot &snap) override;
    int reconcile() override;

  private:
    /** EnforceConfig(): push state into the HAL knobs. Returns true
     * when every write landed. */
    bool enforce();

    /** Enforce with the hardened retry/backoff machinery. */
    void actuate(sim::Time now);

    /** Append one audit event (no-op when no log is attached). */
    void logDecision(sim::Time now, const char *kind,
                     const ResourceState &before, double perfRatio,
                     const std::string &reason);

    /** Audit an actuation pending/landed transition. */
    void logActuationEdge(sim::Time now, bool wasPending);

    /** Clamp managed state to the live low-priority membership. */
    void clampToMembership();

    /** Apply the current ladder rung's interventions to state_ and
     * the suspended-task set. */
    void applyRung(int rung);

    /** Measure the ML performance ratio since the last sample, or a
     * negative value when it cannot be measured yet. */
    double measurePerfRatio(sim::Time now);

    // kelp: transient(config watermarks; rebuilt from the same profile at restart)
    AppProfile profile_;
    // kelp: transient(derived from config limits at construction)
    Configurator configurator_;
    ResourceState state_;
    std::unique_ptr<hal::CounterSource> ownedCounters_;
    hal::CounterSource *counters_;
    hal::KnobSink *knobs_;
    // kelp: transient(diagnostic echo of the last cycle; next sample overwrites)
    KelpDecision lastDecision_;
    // kelp: transient(diagnostic echo of the last cycle; next sample overwrites)
    KelpMeasurements lastMeasurements_;

    // kelp: transient(degraded-operation config, not runtime state)
    Hardening hardening_;
    SampleGuard guard_;
    // kelp: transient(derived verdict; re-established by the first post-restart sample)
    SampleHealth health_;
    bool failSafe_ = false;

    /** Retry-with-backoff state for failed knob writes. A restart
     * reconciles the knobs directly, so the retry loop deliberately
     * restarts from a clean slate instead of being checkpointed. */
    // kelp: transient(restart reconciles knobs; retry loop restarts clean)
    bool enforcePending_ = false;
    // kelp: transient(restart reconciles knobs; retry loop restarts clean)
    int backoff_ = 1;
    // kelp: transient(restart reconciles knobs; retry loop restarts clean)
    int retryWait_ = 0;
    // kelp: transient(restart reconciles knobs; retry loop restarts clean)
    int failedAttempts_ = 0;

    /** Last emitted actions, for hysteresis. */
    Action prevH_ = Action::Nop;
    Action prevL_ = Action::Nop;

    /** Churn support: live-membership tracking. */
    // kelp: transient(configuration flag set at construction)
    bool dynamicMembership_ = false;

    /** SLO ladder (armed via enableSloGuard). */
    std::unique_ptr<SloGuard> sloGuard_;
    // kelp: transient(config handed to enableSloGuard, not runtime state)
    double referencePerf_ = 0.0;
    double lastWork_ = -1.0;
    // kelp: transient(perf-ratio cursor; re-primed by the first post-restart sample)
    sim::Time lastWorkTime_ = 0.0;
    std::vector<int> suspended_;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_KELP_KELP_CONTROLLER_HH
