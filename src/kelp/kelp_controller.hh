/**
 * @file
 * The Kelp runtime controller -- the paper's Algorithm 1.
 *
 * Every sampling period Kelp makes four measurements (socket
 * bandwidth, memory latency, memory saturation, high-priority
 * subdomain bandwidth), compares them against the application
 * profile's watermarks, decides a THROTTLE/BOOST/NOP action per
 * priority group, and actuates through Algorithm 2
 * (the Configurator):
 *
 *   - action_h throttles/boosts the low-priority cores backfilled
 *     into the high-priority subdomain (full Kelp only).
 *   - action_l throttles/boosts the low-priority subdomain:
 *     prefetchers first, then cores.
 *
 * The Kelp Subdomain (KP-SD) configuration is the same controller
 * with backfilling disabled (maxCoreH = 0).
 */

#ifndef KELP_RUNTIME_KELP_CONTROLLER_HH
#define KELP_RUNTIME_KELP_CONTROLLER_HH

#include "hal/counters.hh"
#include "kelp/configurator.hh"
#include "kelp/controller.hh"
#include "kelp/profile.hh"

namespace kelp {
namespace runtime {

/** Algorithm 1 decision inputs (exposed for tests). */
struct KelpMeasurements
{
    double bwS = 0.0;   ///< Socket bandwidth, GiB/s.
    double latS = 0.0;  ///< Socket memory latency, ns.
    double satS = 0.0;  ///< Socket memory saturation, [0, 1].
    double bwH = 0.0;   ///< High-priority subdomain bandwidth, GiB/s.
};

/** Pure decision procedure of Algorithm 1 (testable in isolation). */
struct KelpDecision
{
    Action actionH = Action::Nop;
    Action actionL = Action::Nop;
};

/** Algorithm 1 lines 4-15: watermark comparison to actions. */
KelpDecision decideActions(const AppProfile &profile,
                           const KelpMeasurements &m);

/** The Kelp runtime (KP) and its subdomain-only variant (KP-SD). */
class KelpController : public Controller
{
  public:
    /**
     * @param bindings Node, groups, and socket to manage.
     * @param profile Watermark profile of the accelerated task.
     * @param limits Resource bounds (maxCoreH = 0 yields KP-SD).
     * @param initial Starting resource state.
     */
    KelpController(const Bindings &bindings, AppProfile profile,
                   const ConfigLimits &limits,
                   const ResourceState &initial);

    void sample(sim::Time now) override;

    ControllerParams params() const override;

    const char *
    name() const override
    {
        return configurator_.limits().maxCoreH > 0 ? "KP" : "KP-SD";
    }

    /** Current managed state (inspection). */
    const ResourceState &state() const { return state_; }

    /** Last decision taken (inspection). */
    const KelpDecision &lastDecision() const { return lastDecision_; }

  private:
    /** EnforceConfig(): push state into the HAL knobs. */
    void enforce();

    AppProfile profile_;
    Configurator configurator_;
    ResourceState state_;
    hal::PerfCounters counters_;
    KelpDecision lastDecision_;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_RUNTIME_KELP_CONTROLLER_HH
