#include "kelp/core_throttle.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace runtime {

CoreThrottleController::CoreThrottleController(const Bindings &bindings,
                                               AppProfile profile,
                                               int min_cores,
                                               int max_cores,
                                               int initial_cores,
                                               const Hardening &hardening)
    : Controller(bindings), profile_(std::move(profile)),
      minCores_(min_cores), maxCores_(max_cores),
      cores_(std::clamp(initial_cores, min_cores, max_cores)),
      counters_(bindings.counters), knobs_(bindings.knobs),
      hardening_(hardening), guard_(hardening)
{
    KELP_ASSERT(min_cores >= 1 && max_cores >= min_cores,
                "bad CoreThrottle core limits");
    if (!counters_) {
        ownedCounters_ = std::make_unique<hal::PerfCounters>(
            bindings.node->memSystem());
        counters_ = ownedCounters_.get();
    }
    if (!knobs_)
        knobs_ = &bindings.node->knobs();
    health_.actuationOk = enforce();
    enforcePending_ = !health_.actuationOk;
}

void
CoreThrottleController::sample(sim::Time now)
{
    (void)now;
    hal::CounterSample s = counters_->sample(bind_.socket);

    bool valid = true;
    if (hardening_.enabled) {
        valid = guard_.accept(s);
        if (valid)
            s = guard_.smoothed();
    }
    health_.sampleValid = valid;

    if (valid && !failSafe_) {
        // One core at a time, driven by socket bandwidth and latency:
        // the coarse-granularity feedback loop prior work uses.
        if (profile_.socketBw.isHigh(s.socketBw) ||
            profile_.latency.isHigh(s.memLatency)) {
            cores_ = std::max(cores_ - 1, minCores_);
        } else if (profile_.socketBw.isLow(s.socketBw) &&
                   profile_.latency.isLow(s.memLatency)) {
            cores_ = std::min(cores_ + 1, maxCores_);
        }
    }
    actuate();
}

void
CoreThrottleController::actuate()
{
    if (!hardening_.enabled) {
        health_.actuationOk = enforce();
        enforcePending_ = !health_.actuationOk;
        return;
    }
    if (retryWait_ > 0) {
        // Stale config, but no new evidence: the verdict holds.
        --retryWait_;
        return;
    }
    if (enforce()) {
        enforcePending_ = false;
        backoff_ = 1;
        failedAttempts_ = 0;
    } else {
        enforcePending_ = true;
        retryWait_ = backoff_;
        backoff_ = std::min(backoff_ * 2, hardening_.maxBackoff);
        ++failedAttempts_;
    }
    // Only a streak of failed attempts counts as an outage; the retry
    // loop absorbs transient failures.
    health_.actuationOk =
        failedAttempts_ < hardening_.actuationFailStreak;
}

void
CoreThrottleController::setFailSafe(bool on)
{
    if (on == failSafe_)
        return;
    failSafe_ = on;
    if (on) {
        // No subdomain isolation to lean on: the only configuration
        // that is safe for the accelerated task with no telemetry is
        // the minimum low-priority footprint.
        cores_ = minCores_;
    } else {
        guard_.reset();
    }
    backoff_ = 1;
    retryWait_ = 0;
    failedAttempts_ = 0;
    bool ok = enforce();
    enforcePending_ = !ok;
    if (hardening_.enabled) {
        failedAttempts_ = ok ? 0 : 1;
        health_.actuationOk =
            failedAttempts_ < hardening_.actuationFailStreak;
    } else {
        health_.actuationOk = ok;
    }
}

bool
CoreThrottleController::enforce()
{
    // SNC is off under CT; spread the mask across both halves so the
    // allocation is subdomain-agnostic.
    bool ok = true;
    if (!knobs_->setCores(bind_.cpuGroup, bind_.socket, 0,
                          cores_ / 2)) {
        ok = false;
    }
    if (!knobs_->setCores(bind_.cpuGroup, bind_.socket, 1,
                          cores_ - cores_ / 2)) {
        ok = false;
    }
    // CT never touches prefetchers: all cores keep them enabled.
    if (!knobs_->setPrefetchersEnabled(bind_.cpuGroup, cores_))
        ok = false;
    return ok;
}

ControllerParams
CoreThrottleController::params() const
{
    return {cores_, cores_, 0};
}

} // namespace runtime
} // namespace kelp
