#include "kelp/core_throttle.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"
#include "trace/decision_log.hh"

namespace kelp {
namespace runtime {

CoreThrottleController::CoreThrottleController(const Bindings &bindings,
                                               AppProfile profile,
                                               int min_cores,
                                               int max_cores,
                                               int initial_cores,
                                               const Hardening &hardening)
    : Controller(bindings), profile_(std::move(profile)),
      minCores_(min_cores), maxCores_(max_cores),
      cores_(std::clamp(initial_cores, min_cores, max_cores)),
      counters_(bindings.counters), knobs_(bindings.knobs),
      hardening_(hardening), guard_(hardening)
{
    KELP_ASSERT(min_cores >= 1 && max_cores >= min_cores,
                "bad CoreThrottle core limits");
    if (!counters_) {
        ownedCounters_ = std::make_unique<hal::PerfCounters>(
            bindings.node->memSystem());
        counters_ = ownedCounters_.get();
    }
    if (!knobs_)
        knobs_ = &bindings.node->knobs();
    health_.actuationOk = enforce();
    enforcePending_ = !health_.actuationOk;
}

void
CoreThrottleController::sample(sim::Time now)
{
    hal::CounterSample s = counters_->sample(bind_.socket);

    bool valid = true;
    if (hardening_.enabled) {
        valid = guard_.accept(s);
        if (valid)
            s = guard_.smoothed();
    }
    health_.sampleValid = valid;

    if (valid && !failSafe_) {
        // One core at a time, driven by socket bandwidth and latency:
        // the coarse-granularity feedback loop prior work uses.
        int before = cores_;
        if (profile_.socketBw.isHigh(s.socketBw) ||
            profile_.latency.isHigh(s.memLatency)) {
            cores_ = std::max(cores_ - 1, minCores_);
        } else if (profile_.socketBw.isLow(s.socketBw) &&
                   profile_.latency.isLow(s.memLatency)) {
            cores_ = std::min(cores_ + 1, maxCores_);
        }
        if (cores_ != before) {
            logDecision(now, "ct-adjust", before, s.socketBw,
                        s.memLatency,
                        cores_ < before
                            ? "throttle: socket watermarks high"
                            : "boost: socket watermarks low");
        }
    }
    actuate(now);
}

void
CoreThrottleController::actuate(sim::Time now)
{
    bool wasPending = enforcePending_;
    if (!hardening_.enabled) {
        health_.actuationOk = enforce();
        enforcePending_ = !health_.actuationOk;
        logActuationEdge(now, wasPending);
        return;
    }
    if (retryWait_ > 0) {
        // Stale config, but no new evidence: the verdict holds.
        --retryWait_;
        return;
    }
    if (enforce()) {
        enforcePending_ = false;
        backoff_ = 1;
        failedAttempts_ = 0;
    } else {
        enforcePending_ = true;
        retryWait_ = backoff_;
        backoff_ = std::min(backoff_ * 2, hardening_.maxBackoff);
        ++failedAttempts_;
    }
    // Only a streak of failed attempts counts as an outage; the retry
    // loop absorbs transient failures.
    health_.actuationOk =
        failedAttempts_ < hardening_.actuationFailStreak;
    logActuationEdge(now, wasPending);
}

void
CoreThrottleController::logDecision(sim::Time now, const char *kind,
                                    int coresBefore, double bw,
                                    double lat,
                                    const std::string &reason)
{
    if (!decisionLog_)
        return;
    trace::DecisionEvent ev;
    ev.time = now;
    ev.kind = kind;
    ev.reason = reason;
    ev.loCoresOld = coresBefore;
    ev.loCoresNew = cores_;
    // CT keeps prefetchers enabled on every low-priority core and
    // never backfills the high-priority subdomain.
    ev.loPrefetchersOld = coresBefore;
    ev.loPrefetchersNew = cores_;
    ev.hiBackfillOld = 0;
    ev.hiBackfillNew = 0;
    ev.bwS = bw;
    ev.latS = lat;
    ev.perfRatio = -1.0;
    decisionLog_->append(ev);
}

void
CoreThrottleController::logActuationEdge(sim::Time now,
                                         bool wasPending)
{
    if (!decisionLog_ || wasPending == enforcePending_)
        return;
    if (enforcePending_) {
        std::ostringstream why;
        why << "knob write failed";
        if (hardening_.enabled)
            why << "; retrying with backoff " << backoff_;
        logDecision(now, "actuation-fail", cores_, -1.0, -1.0,
                    why.str());
    } else {
        logDecision(now, "actuation-recovered", cores_, -1.0, -1.0,
                    "pending knob writes landed");
    }
}

void
CoreThrottleController::setFailSafe(bool on)
{
    if (on == failSafe_)
        return;
    failSafe_ = on;
    if (on) {
        // No subdomain isolation to lean on: the only configuration
        // that is safe for the accelerated task with no telemetry is
        // the minimum low-priority footprint.
        cores_ = minCores_;
    } else {
        guard_.reset();
    }
    backoff_ = 1;
    retryWait_ = 0;
    failedAttempts_ = 0;
    bool ok = enforce();
    enforcePending_ = !ok;
    if (hardening_.enabled) {
        failedAttempts_ = ok ? 0 : 1;
        health_.actuationOk =
            failedAttempts_ < hardening_.actuationFailStreak;
    } else {
        health_.actuationOk = ok;
    }
}

bool
CoreThrottleController::enforce()
{
    // SNC is off under CT; spread the mask across both halves so the
    // allocation is subdomain-agnostic.
    //
    // enforce() is the mechanical write path: core-count changes are
    // recorded at decision time ("ct-adjust" in sample()) and
    // success/failure edges by actuate() via logActuationEdge.
    bool ok = true;
    // kelp: allow(audit-completeness): decision recorded in sample();
    // actuation edges recorded by actuate().
    if (!knobs_->setCores(bind_.cpuGroup, bind_.socket, 0,
                          cores_ / 2)) {
        ok = false;
    }
    // kelp: allow(audit-completeness): decision recorded in sample();
    // actuation edges recorded by actuate().
    if (!knobs_->setCores(bind_.cpuGroup, bind_.socket, 1,
                          cores_ - cores_ / 2)) {
        ok = false;
    }
    // CT never touches prefetchers: all cores keep them enabled.
    // kelp: allow(audit-completeness): decision recorded in sample();
    // actuation edges recorded by actuate().
    if (!knobs_->setPrefetchersEnabled(bind_.cpuGroup, cores_))
        ok = false;
    return ok;
}

ControllerParams
CoreThrottleController::params() const
{
    return {cores_, cores_, 0};
}

} // namespace runtime
} // namespace kelp
