#include "kelp/core_throttle.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace runtime {

CoreThrottleController::CoreThrottleController(const Bindings &bindings,
                                               AppProfile profile,
                                               int min_cores,
                                               int max_cores,
                                               int initial_cores)
    : Controller(bindings), profile_(std::move(profile)),
      minCores_(min_cores), maxCores_(max_cores),
      cores_(std::clamp(initial_cores, min_cores, max_cores)),
      counters_(bindings.node->memSystem())
{
    KELP_ASSERT(min_cores >= 1 && max_cores >= min_cores,
                "bad CoreThrottle core limits");
    enforce();
}

void
CoreThrottleController::sample(sim::Time now)
{
    (void)now;
    hal::CounterSample s = counters_.sample(bind_.socket);

    // One core at a time, driven by socket bandwidth and latency:
    // the coarse-granularity feedback loop prior work uses.
    if (profile_.socketBw.isHigh(s.socketBw) ||
        profile_.latency.isHigh(s.memLatency)) {
        cores_ = std::max(cores_ - 1, minCores_);
    } else if (profile_.socketBw.isLow(s.socketBw) &&
               profile_.latency.isLow(s.memLatency)) {
        cores_ = std::min(cores_ + 1, maxCores_);
    }
    enforce();
}

void
CoreThrottleController::enforce()
{
    // SNC is off under CT; spread the mask across both halves so the
    // allocation is subdomain-agnostic.
    auto &knobs = bind_.node->knobs();
    knobs.setCores(bind_.cpuGroup, bind_.socket, 0, cores_ / 2);
    knobs.setCores(bind_.cpuGroup, bind_.socket, 1,
                   cores_ - cores_ / 2);
    // CT never touches prefetchers: all cores keep them enabled.
    knobs.setPrefetchersEnabled(bind_.cpuGroup, cores_);
}

ControllerParams
CoreThrottleController::params() const
{
    return {cores_, cores_, 0};
}

} // namespace runtime
} // namespace kelp
