/**
 * @file
 * SLO guard: the degradation ladder that protects the accelerated
 * task when Algorithm 1's gentle feedback loop is not enough.
 *
 * The paper's controller converges toward the SLO but has no hard
 * backstop: under a sustained overload (churned antagonists piling
 * onto the socket) the ML task can sit below its performance SLO for
 * many samples while cores/prefetchers ratchet down one notch per
 * period. The SLO guard watches the ML task's achieved performance
 * ratio every sample and, after K consecutive violations, escalates
 * a ladder of increasingly drastic interventions:
 *
 *   rung 0  Normal        -- Algorithm 1 alone.
 *   rung 1  DrainBackfill -- withdraw backfilled cores from the
 *                            high-priority subdomain.
 *   rung 2  ThrottleCores -- clamp low-priority cores to the minimum.
 *   rung 3  DisablePrefetch -- turn off all remaining low-priority
 *                            prefetchers.
 *   rung 4  EvictAntagonist -- suspend the most bandwidth-hungry
 *                            low-priority task.
 *
 * De-escalation is hysteretic: the guard steps down one rung only
 * after M consecutive healthy samples, so a marginal workload cannot
 * flap between rungs. Every transition is recorded in an audit trace
 * (time, from-rung, to-rung) so degraded runs are explainable and
 * reproducible.
 *
 * The guard itself is a pure state machine over (time, perfRatio)
 * observations: it decides *which* rung the system should be on, and
 * the controller applies the rung's interventions. That split keeps
 * the ladder testable in isolation.
 */

#ifndef KELP_KELP_SLO_GUARD_HH
#define KELP_KELP_SLO_GUARD_HH

#include <vector>

#include "sim/types.hh"

namespace kelp {
namespace runtime {

/** SLO-guard settings. Disabled by default: the ladder must not
 * perturb the paper's static-colocation results. */
struct SloConfig
{
    bool enabled = false;

    /** SLO floor: minimum acceptable ML performance ratio
     * (achieved / standalone). */
    double minPerfRatio = 0.85;

    /** Consecutive violating samples before escalating one rung. */
    int escalateAfter = 3;

    /** Consecutive healthy samples before de-escalating one rung. */
    int deescalateAfter = 5;
};

/** Ladder rungs, in escalation order. */
enum SloRung : int
{
    kRungNormal = 0,
    kRungDrainBackfill = 1,
    kRungThrottleCores = 2,
    kRungDisablePrefetch = 3,
    kRungEvictAntagonist = 4,
};

constexpr int kSloRungMax = kRungEvictAntagonist;

const char *sloRungName(int rung);

/** One audit-trace entry: a rung transition. */
struct RungChange
{
    sim::Time time = 0.0;
    int from = 0;
    int to = 0;
};

/** The ladder state machine. */
class SloGuard
{
  public:
    explicit SloGuard(const SloConfig &cfg);

    /**
     * Feed one sample's ML performance ratio. Returns the rung in
     * force after this observation. At most one rung transition
     * happens per call (escalation and de-escalation both move one
     * rung at a time, and both reset the opposing streak).
     */
    int observe(sim::Time now, double perfRatio);

    /** Current rung. */
    int rung() const { return rung_; }

    /** Total violating samples seen (telemetry). */
    uint64_t violations() const { return violations_; }

    /** Audit trace of every rung transition, in order. */
    const std::vector<RungChange> &trace() const { return trace_; }

    /** Restore a checkpointed rung (controller restart). Streaks
     * restart from zero: the restarted guard re-earns any further
     * transition. The trace is not rewritten. */
    void restore(int rung);

    const SloConfig &config() const { return cfg_; }

  private:
    // kelp: transient(ladder thresholds are config, not runtime state)
    SloConfig cfg_;
    int rung_ = kRungNormal;
    int badStreak_ = 0;
    int goodStreak_ = 0;
    // kelp: transient(cumulative diagnostics; the restart divergence test pins the post-restart rung, not lifetime counters)
    uint64_t violations_ = 0;
    // kelp: transient(diagnostic history for reports; not control state)
    std::vector<RungChange> trace_;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_KELP_SLO_GUARD_HH
