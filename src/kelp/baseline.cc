#include "kelp/baseline.hh"

namespace kelp {
namespace runtime {

BaselineController::BaselineController(const Bindings &bindings)
    : Controller(bindings)
{
}

void
BaselineController::sample(sim::Time now)
{
    (void)now;
    // Resource contention is unmanaged by design.
}

ControllerParams
BaselineController::params() const
{
    // Report the whole socket as available to low-priority tasks.
    int cores = bind_.node->topology().coresPerSocket();
    return {cores, cores, 0};
}

} // namespace runtime
} // namespace kelp
