/**
 * @file
 * CoreThrottle (CT): the competitive baseline configuration
 * (Section V-A), closely mimicking prior polling-based runtimes
 * (Heracles, Dirigent, CPI2): memory-bandwidth interference is
 * managed by shrinking the CPU mask of low-priority tasks; LLC
 * interference is handled with a dedicated CAT partition for the
 * accelerated task. NUMA subdomains are not used.
 *
 * With Hardening enabled the same degraded-telemetry defences as the
 * Kelp controller apply: sample validation + smoothing, actuation
 * retry with backoff, and a watchdog-driven fail-safe that pins the
 * low-priority mask to its minimum (without subdomains there is no
 * isolation to fall back on, so the safe floor is the smallest
 * low-priority footprint).
 */

#ifndef KELP_KELP_CORE_THROTTLE_HH
#define KELP_KELP_CORE_THROTTLE_HH

#include <memory>

#include "hal/counters.hh"
#include "kelp/controller.hh"
#include "kelp/profile.hh"
#include "kelp/sample_guard.hh"

namespace kelp {
namespace runtime {

/** Core-throttling feedback controller over socket-level signals. */
class CoreThrottleController : public Controller
{
  public:
    /**
     * @param bindings Node, groups, and socket to manage.
     * @param profile Watermarks (socket bandwidth and latency only --
     *        the signals prior work had access to).
     * @param min_cores Fewest low-priority cores.
     * @param max_cores Most low-priority cores.
     * @param initial_cores Starting allocation.
     * @param hardening Degraded-operation settings (off by default).
     */
    CoreThrottleController(const Bindings &bindings, AppProfile profile,
                           int min_cores, int max_cores,
                           int initial_cores,
                           const Hardening &hardening = {});

    void sample(sim::Time now) override;

    ControllerParams params() const override;

    const char *name() const override { return "CT"; }

    SampleHealth lastHealth() const override { return health_; }

    void setFailSafe(bool on) override;
    bool failSafe() const override { return failSafe_; }

    int cores() const { return cores_; }

  private:
    bool enforce();
    void actuate(sim::Time now);
    void logDecision(sim::Time now, const char *kind,
                     int coresBefore, double bw, double lat,
                     const std::string &reason);
    void logActuationEdge(sim::Time now, bool wasPending);

    AppProfile profile_;
    int minCores_;
    int maxCores_;
    int cores_;
    std::unique_ptr<hal::CounterSource> ownedCounters_;
    hal::CounterSource *counters_;
    hal::KnobSink *knobs_;

    Hardening hardening_;
    SampleGuard guard_;
    SampleHealth health_;
    bool failSafe_ = false;
    bool enforcePending_ = false;
    int backoff_ = 1;
    int retryWait_ = 0;
    int failedAttempts_ = 0;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_KELP_CORE_THROTTLE_HH
