/**
 * @file
 * CoreThrottle (CT): the competitive baseline configuration
 * (Section V-A), closely mimicking prior polling-based runtimes
 * (Heracles, Dirigent, CPI2): memory-bandwidth interference is
 * managed by shrinking the CPU mask of low-priority tasks; LLC
 * interference is handled with a dedicated CAT partition for the
 * accelerated task. NUMA subdomains are not used.
 */

#ifndef KELP_RUNTIME_CORE_THROTTLE_HH
#define KELP_RUNTIME_CORE_THROTTLE_HH

#include "hal/counters.hh"
#include "kelp/controller.hh"
#include "kelp/profile.hh"

namespace kelp {
namespace runtime {

/** Core-throttling feedback controller over socket-level signals. */
class CoreThrottleController : public Controller
{
  public:
    /**
     * @param bindings Node, groups, and socket to manage.
     * @param profile Watermarks (socket bandwidth and latency only --
     *        the signals prior work had access to).
     * @param min_cores Fewest low-priority cores.
     * @param max_cores Most low-priority cores.
     * @param initial_cores Starting allocation.
     */
    CoreThrottleController(const Bindings &bindings, AppProfile profile,
                           int min_cores, int max_cores,
                           int initial_cores);

    void sample(sim::Time now) override;

    ControllerParams params() const override;

    const char *name() const override { return "CT"; }

    int cores() const { return cores_; }

  private:
    void enforce();

    AppProfile profile_;
    int minCores_;
    int maxCores_;
    int cores_;
    hal::PerfCounters counters_;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_RUNTIME_CORE_THROTTLE_HH
