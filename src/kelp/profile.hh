/**
 * @file
 * Application profiles: the per-workload watermarks Kelp loads when a
 * job is scheduled onto the node (Section IV-D).
 *
 * Algorithm 1 compares four measurements against high/low watermarks:
 * socket bandwidth, memory latency, memory saturation, and
 * high-priority-subdomain bandwidth. "Thresholds for throttling are
 * configured conservatively to prioritize accelerated tasks."
 */

#ifndef KELP_KELP_PROFILE_HH
#define KELP_KELP_PROFILE_HH

#include <string>

#include "node/platform.hh"
#include "workload/catalog.hh"

namespace kelp {
namespace runtime {

/** A high/low watermark pair for one measurement. */
struct Watermarks
{
    double hi = 0.0;
    double lo = 0.0;

    bool isHigh(double x) const { return x > hi; }
    bool isLow(double x) const { return x < lo; }
};

/** Watermarks for the four measurements Kelp makes. */
struct AppProfile
{
    std::string workload;

    /** Socket memory bandwidth, GiB/s. */
    Watermarks socketBw;

    /** Memory latency, ns. */
    Watermarks latency;

    /** Memory saturation (distress duty cycle), [0, 1]. */
    Watermarks saturation;

    /** High-priority-subdomain bandwidth, GiB/s. */
    Watermarks hiSubBw;
};

/**
 * Default profile for an ML workload on its platform. Watermarks are
 * fractions of platform peak bandwidth / unloaded latency, shifted
 * per workload for its own bandwidth appetite (CNN3's parameter
 * server legitimately drives its subdomain hard, so its subdomain
 * watermark sits higher).
 */
AppProfile defaultProfile(wl::MlWorkload workload,
                          const node::PlatformSpec &platform);

/**
 * Watermarks for the CoreThrottle baseline: prior-work runtimes
 * (Heracles-style) target overall socket utilization and are less
 * conservative than Kelp's accelerator-first thresholds.
 */
AppProfile coreThrottleProfile(wl::MlWorkload workload,
                               const node::PlatformSpec &platform);

} // namespace runtime
} // namespace kelp

#endif // KELP_KELP_PROFILE_HH
