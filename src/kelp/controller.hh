/**
 * @file
 * Controller interface shared by the four evaluated runtime
 * configurations (Section V-A): Baseline, CoreThrottle, Kelp
 * Subdomain, and full Kelp.
 *
 * A controller samples hardware counters periodically (10 s in the
 * paper) and adjusts resource knobs. Controllers also expose their
 * current parameters (low-priority cores, prefetchers, backfill
 * cores) so experiments can reproduce the parameter plots
 * (Figures 11 and 12).
 */

#ifndef KELP_RUNTIME_CONTROLLER_HH
#define KELP_RUNTIME_CONTROLLER_HH

#include "node/node.hh"
#include "sim/types.hh"

namespace kelp {
namespace runtime {

/** Algorithm 1's per-group decision. */
enum class Action { Throttle, Boost, Nop };

const char *actionName(Action a);

/** What a controller is attached to. */
struct Bindings
{
    node::Node *node = nullptr;

    /** Group of the high-priority accelerated task. */
    sim::GroupId mlGroup = sim::invalidId;

    /** Group of the low-priority CPU tasks. */
    sim::GroupId cpuGroup = sim::invalidId;

    /** Socket the accelerated task runs on. */
    sim::SocketId socket = 0;
};

/** Snapshot of the knob settings a controller manages. */
struct ControllerParams
{
    /** Low-priority cores (low-priority subdomain / socket share). */
    int loCores = 0;

    /** Low-priority cores with prefetchers enabled. */
    int loPrefetchers = 0;

    /** Low-priority cores backfilled into the high-priority
     * subdomain (full Kelp only). */
    int hiBackfillCores = 0;
};

/** Base class of all runtime configurations. */
class Controller
{
  public:
    explicit Controller(const Bindings &bindings);
    virtual ~Controller() = default;

    /** One sampling period: measure and actuate. */
    virtual void sample(sim::Time now) = 0;

    /** Current knob settings. */
    virtual ControllerParams params() const = 0;

    /** Configuration name (BL / CT / KP-SD / KP). */
    virtual const char *name() const = 0;

  protected:
    Bindings bind_;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_RUNTIME_CONTROLLER_HH
