/**
 * @file
 * Controller interface shared by the four evaluated runtime
 * configurations (Section V-A): Baseline, CoreThrottle, Kelp
 * Subdomain, and full Kelp.
 *
 * A controller samples hardware counters periodically (10 s in the
 * paper) and adjusts resource knobs. Controllers also expose their
 * current parameters (low-priority cores, prefetchers, backfill
 * cores) so experiments can reproduce the parameter plots
 * (Figures 11 and 12).
 */

#ifndef KELP_KELP_CONTROLLER_HH
#define KELP_KELP_CONTROLLER_HH

#include <array>
#include <string>
#include <vector>

#include "hal/counters.hh"
#include "hal/knobs.hh"
#include "node/node.hh"
#include "sim/types.hh"

namespace kelp {

namespace trace {
class DecisionLog;
} // namespace trace

namespace runtime {

/** Algorithm 1's per-group decision. */
enum class Action { Throttle, Boost, Nop };

const char *actionName(Action a);

/** What a controller is attached to. */
struct Bindings
{
    node::Node *node = nullptr;

    /** Group of the high-priority accelerated task. */
    sim::GroupId mlGroup = sim::invalidId;

    /** Group of the low-priority CPU tasks. */
    sim::GroupId cpuGroup = sim::invalidId;

    /** Socket the accelerated task runs on. */
    sim::SocketId socket = 0;

    /** Telemetry backend override; null = the node's counters. */
    hal::CounterSource *counters = nullptr;

    /** Actuation backend override; null = the node's knobs. */
    hal::KnobSink *knobs = nullptr;
};

/**
 * Degraded-operation settings for the sampling controllers. Disabled
 * by default: the hardened paths must reduce to the paper's exact
 * behaviour so clean-telemetry runs stay bit-identical.
 */
struct Hardening
{
    bool enabled = false;

    /** EWMA weight applied to accepted measurements. */
    double ewmaAlpha = 0.5;

    /** Reject samples further than this factor from the smoothed
     * estimate (in either direction), once the filter is primed. */
    double outlierFactor = 3.0;

    /** Physical plausibility bounds (validation). */
    double maxBwGibps = 1000.0;
    double maxLatencyNs = 5000.0;

    /** Retry backoff cap for failed knob writes, in samples. */
    int maxBackoff = 8;

    /**
     * Consecutive failed enforcement attempts before actuation is
     * reported unhealthy to the watchdog. Transient write failures
     * are fully masked by the retry loop (the controller re-enforces
     * every period anyway); only a persistent outage should push the
     * node into fail-safe.
     */
    int actuationFailStreak = 3;
};

/** Per-sample health report consumed by the manager's watchdog. */
struct SampleHealth
{
    /** Last telemetry read passed validation/outlier checks. */
    bool sampleValid = true;

    /** All knob writes have landed (no retry pending). */
    bool actuationOk = true;
};

/** Snapshot of the knob settings a controller manages. */
struct ControllerParams
{
    /** Low-priority cores (low-priority subdomain / socket share). */
    int loCores = 0;

    /** Low-priority cores with prefetchers enabled. */
    int loPrefetchers = 0;

    /** Low-priority cores backfilled into the high-priority
     * subdomain (full Kelp only). */
    int hiBackfillCores = 0;
};

/**
 * Serializable controller checkpoint, written every sample by the
 * manager and replayed into a freshly-constructed controller after a
 * crash/restart. Holds the *intent* side of the control loop -- the
 * managed resource state, fail-safe flag, ladder rung, hysteresis
 * memory, and suspended-task list -- as plain ints so it stays a
 * simple line-oriented text format. The hardware side (what actually
 * landed in the knobs) is deliberately not checkpointed: the restart
 * path reconciles intent against the HAL's actual state instead of
 * trusting a possibly-stale record of it.
 */
struct ControllerSnapshot
{
    bool valid = false;

    /** Sample time the snapshot was taken at. */
    double time = 0.0;

    /** Managed resource state (ResourceState as plain ints). */
    int coreNumH = 0;
    int coreNumL = 1;
    int prefetcherNumL = 1;

    /** Watchdog fail-safe flag. */
    bool failSafe = false;

    /** SLO-ladder rung. */
    int rung = 0;

    /** Hysteresis memory (Action as int; 2 = Nop). */
    int prevH = 2;
    int prevL = 2;

    /** Node task ids suspended by the SLO ladder. */
    std::vector<int> suspended;

    /**
     * Measurement-window cursors of the controller's own counter
     * reader (hal::PerfCounters::cursorState). Without these a
     * restarted controller primes fresh cursors at restart time, its
     * first post-restart window starts mid-period, and its next
     * decision diverges from an uninterrupted controller's -- the
     * restart-divergence failure the fuzzer found. Only set when the
     * controller owns its reader; shared/injected telemetry backends
     * keep their own cursors across restarts already.
     */
    bool hasCounterWindow = false;
    std::array<double, hal::PerfCounters::kCursorDoubles>
        counterWindow{};

    /** One-line text form:
     * "t=..;h=..;l=..;p=..;fs=..;rung=..;ph=..;pl=..;cw=a|b|..;
     *  susp=a|b". */
    std::string serialize() const;

    /** Parse serialize()'s format; false (and *this untouched) on
     * malformed input. */
    static bool deserialize(const std::string &text,
                            ControllerSnapshot &out);
};

/** Base class of all runtime configurations. */
class Controller
{
  public:
    explicit Controller(const Bindings &bindings);
    virtual ~Controller() = default;

    /** One sampling period: measure and actuate. */
    virtual void sample(sim::Time now) = 0;

    /** Current knob settings. */
    virtual ControllerParams params() const = 0;

    /** Configuration name (BL / CT / KP-SD / KP). */
    virtual const char *name() const = 0;

    /** Health of the most recent sample (watchdog input). */
    virtual SampleHealth lastHealth() const { return {}; }

    /**
     * Enter or leave fail-safe mode. In fail-safe a controller pins
     * its knobs to a statically safe configuration and stops
     * closed-loop actuation; telemetry is still read (and validated)
     * so the watchdog can observe recovery. Default: no-op for
     * controllers with nothing to pin (Baseline).
     */
    virtual void setFailSafe(bool on) { (void)on; }

    /** True while the controller is pinned to its fail-safe config. */
    virtual bool failSafe() const { return false; }

    /**
     * Fail-safe escape probe: attempt one full knob-write pass right
     * now and report whether it landed. The watchdog calls this on
     * an exponential backoff while in fail-safe, so a controller
     * whose actuation path heals re-arms even when lingering retry
     * state would otherwise hold its health report bad forever.
     * Default: no actuation to probe, never re-arm this way.
     */
    virtual bool probeActuation() { return false; }

    /**
     * Checkpoint the controller's intent state. Default: an invalid
     * snapshot (stateless controllers like Baseline have nothing to
     * recover; a restart simply reconstructs them).
     */
    virtual ControllerSnapshot snapshot() const { return {}; }

    /** Replay a checkpoint into a freshly-built controller. */
    virtual void restore(const ControllerSnapshot &snap)
    {
        (void)snap;
    }

    /**
     * Compare the restored intent against the HAL's actual knob
     * state and repair any divergence (a faulty sink may have lost
     * writes that the checkpoint believes landed, or landed writes
     * the crash lost track of). Returns the number of divergent
     * knobs repaired. Default: nothing to reconcile.
     */
    virtual int reconcile() { return 0; }

    /**
     * Attach a decision audit log (observability; null detaches).
     * Not owned; must outlive the controller. When attached, every
     * knob-state mutation is recorded with its trigger measurements
     * and reason. When detached (the default), the control path is
     * untouched -- runs stay bit-identical to the paper path.
     */
    void setDecisionLog(trace::DecisionLog *log) { decisionLog_ = log; }

    /** The attached audit log, or null. */
    trace::DecisionLog *decisionLog() const { return decisionLog_; }

  protected:
    // kelp: transient(node/group wiring supplied at construction; a restarted controller is rebuilt with fresh bindings)
    Bindings bind_;
    trace::DecisionLog *decisionLog_ = nullptr;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_KELP_CONTROLLER_HH
