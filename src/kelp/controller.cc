#include "kelp/controller.hh"

#include "sim/log.hh"

namespace kelp {
namespace runtime {

const char *
actionName(Action a)
{
    switch (a) {
      case Action::Throttle:
        return "THROTTLE";
      case Action::Boost:
        return "BOOST";
      case Action::Nop:
        return "NOP";
    }
    return "?";
}

Controller::Controller(const Bindings &bindings)
    : bind_(bindings)
{
    KELP_ASSERT(bind_.node, "controller needs a node");
}

} // namespace runtime
} // namespace kelp
