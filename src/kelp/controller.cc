#include "kelp/controller.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/log.hh"

namespace kelp {
namespace runtime {

const char *
actionName(Action a)
{
    switch (a) {
      case Action::Throttle:
        return "THROTTLE";
      case Action::Boost:
        return "BOOST";
      case Action::Nop:
        return "NOP";
    }
    return "?";
}

std::string
ControllerSnapshot::serialize() const
{
    // %.17g round-trips an IEEE double exactly, keeping the
    // checkpoint/restore cycle bit-identical.
    char head[256];
    std::snprintf(head, sizeof(head),
                  "t=%.17g;h=%d;l=%d;p=%d;fs=%d;rung=%d;ph=%d;pl=%d;"
                  "cw=",
                  time, coreNumH, coreNumL, prefetcherNumL,
                  failSafe ? 1 : 0, rung, prevH, prevL);
    std::string out = head;
    if (hasCounterWindow) {
        char num[32];
        for (size_t i = 0; i < counterWindow.size(); ++i) {
            std::snprintf(num, sizeof(num), "%.17g",
                          counterWindow[i]);
            if (i)
                out += '|';
            out += num;
        }
    }
    out += ";susp=";
    for (size_t i = 0; i < suspended.size(); ++i) {
        if (i)
            out += '|';
        out += std::to_string(suspended[i]);
    }
    return out;
}

bool
ControllerSnapshot::deserialize(const std::string &text,
                                ControllerSnapshot &out)
{
    ControllerSnapshot snap;
    int fs = 0;
    int consumed = 0;
    int n = std::sscanf(text.c_str(),
                        "t=%lf;h=%d;l=%d;p=%d;fs=%d;rung=%d;ph=%d;"
                        "pl=%d;cw=%n",
                        &snap.time, &snap.coreNumH, &snap.coreNumL,
                        &snap.prefetcherNumL, &fs, &snap.rung,
                        &snap.prevH, &snap.prevL, &consumed);
    if (n != 8 || consumed <= 0)
        return false;
    snap.failSafe = fs != 0;

    const char *p = text.c_str() + consumed;
    if (*p != ';') {
        // Counter-window cursors: exactly kCursorDoubles
        // '|'-separated doubles (or nothing at all).
        size_t idx = 0;
        while (true) {
            char *end = nullptr;
            double v = std::strtod(p, &end);
            if (end == p || idx >= snap.counterWindow.size())
                return false;
            snap.counterWindow[idx++] = v;
            p = end;
            if (*p == '|')
                ++p;
            else
                break;
        }
        if (idx != snap.counterWindow.size())
            return false;
        snap.hasCounterWindow = true;
    }
    if (std::strncmp(p, ";susp=", 6) != 0)
        return false;
    p += 6;
    while (*p) {
        char *end = nullptr;
        long id = std::strtol(p, &end, 10);
        if (end == p)
            return false;
        snap.suspended.push_back(static_cast<int>(id));
        p = end;
        if (*p == '|')
            ++p;
        else if (*p)
            return false;
    }
    snap.valid = true;
    out = snap;
    return true;
}

Controller::Controller(const Bindings &bindings)
    : bind_(bindings)
{
    KELP_ASSERT(bind_.node, "controller needs a node");
}

} // namespace runtime
} // namespace kelp
