#include "kelp/slo_guard.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace runtime {

const char *
sloRungName(int rung)
{
    switch (rung) {
      case kRungNormal:
        return "normal";
      case kRungDrainBackfill:
        return "drain-backfill";
      case kRungThrottleCores:
        return "throttle-cores";
      case kRungDisablePrefetch:
        return "disable-prefetch";
      case kRungEvictAntagonist:
        return "evict-antagonist";
    }
    return "?";
}

SloGuard::SloGuard(const SloConfig &cfg)
    : cfg_(cfg)
{
    KELP_ASSERT(cfg_.escalateAfter > 0 && cfg_.deescalateAfter > 0,
                "SLO guard streak thresholds must be positive");
    KELP_ASSERT(cfg_.minPerfRatio > 0.0 && cfg_.minPerfRatio <= 1.0,
                "SLO floor must be in (0, 1]");
}

int
SloGuard::observe(sim::Time now, double perfRatio)
{
    KELP_EXPECTS(std::isfinite(perfRatio) && perfRatio >= 0.0,
                 "perf ratio must be a finite non-negative value, "
                 "got ", perfRatio);
    const int before = rung_;
    bool violating = perfRatio < cfg_.minPerfRatio;
    if (violating) {
        ++violations_;
        ++badStreak_;
        goodStreak_ = 0;
        if (badStreak_ >= cfg_.escalateAfter && rung_ < kSloRungMax) {
            trace_.push_back({now, rung_, rung_ + 1});
            ++rung_;
            badStreak_ = 0;
        }
    } else {
        ++goodStreak_;
        badStreak_ = 0;
        if (goodStreak_ >= cfg_.deescalateAfter &&
            rung_ > kRungNormal) {
            trace_.push_back({now, rung_, rung_ - 1});
            --rung_;
            goodStreak_ = 0;
        }
    }
    // Rung monotonicity: the ladder moves at most one rung per
    // observation and never leaves [Normal, EvictAntagonist].
    KELP_ENSURES(rung_ >= kRungNormal && rung_ <= kSloRungMax,
                 "ladder rung ", rung_, " out of range");
    KELP_ENSURES(rung_ >= before - 1 && rung_ <= before + 1,
                 "ladder moved ", before, " -> ", rung_,
                 " in one observation");
    return rung_;
}

void
SloGuard::restore(int rung)
{
    rung_ = std::clamp(rung, static_cast<int>(kRungNormal),
                       kSloRungMax);
    badStreak_ = 0;
    goodStreak_ = 0;
    KELP_ENSURES(rung_ >= kRungNormal && rung_ <= kSloRungMax,
                 "restored rung out of range");
}

} // namespace runtime
} // namespace kelp
