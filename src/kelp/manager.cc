#include "kelp/manager.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"
#include "trace/decision_log.hh"

namespace kelp {
namespace runtime {

namespace {

/**
 * Audit a manager-level action: knob old/new bracket the controller
 * transition the manager drove (fail-safe pinning, restart recovery).
 */
void
auditManagerEvent(trace::DecisionLog *log, sim::Time now,
                  const char *kind, const ControllerParams &before,
                  const ControllerParams &after,
                  const std::string &reason)
{
    if (!log)
        return;
    trace::DecisionEvent ev;
    ev.time = now;
    ev.kind = kind;
    ev.reason = reason;
    ev.loCoresOld = before.loCores;
    ev.loCoresNew = after.loCores;
    ev.loPrefetchersOld = before.loPrefetchers;
    ev.loPrefetchersNew = after.loPrefetchers;
    ev.hiBackfillOld = before.hiBackfillCores;
    ev.hiBackfillNew = after.hiBackfillCores;
    log->append(ev);
}

} // namespace

RuntimeManager::RuntimeManager(std::unique_ptr<Controller> controller,
                               sim::Time period)
    : controller_(std::move(controller)), period_(period)
{
    KELP_ASSERT(controller_, "manager needs a controller");
    KELP_ASSERT(period > 0.0, "sampling period must be positive");
}

void
RuntimeManager::attach(sim::Engine &engine)
{
    engine.every(period_, [this](sim::Time now) { onSample(now); });
}

void
RuntimeManager::setWatchdog(const WatchdogConfig &cfg)
{
    KELP_ASSERT(cfg.faultThreshold > 0 && cfg.recoverThreshold > 0,
                "watchdog thresholds must be positive");
    watchdog_ = cfg;
}

void
RuntimeManager::superviseHealth(sim::Time now)
{
    SampleHealth h = controller_->lastHealth();
    if (h.sampleValid && h.actuationOk) {
        ++consecutiveGood_;
        consecutiveBad_ = 0;
    } else {
        ++consecutiveBad_;
        consecutiveGood_ = 0;
    }

    if (!failSafe_ && consecutiveBad_ >= watchdog_.faultThreshold) {
        failSafe_ = true;
        ++entries_;
        modeTrace_.push_back({now, true});
        ControllerParams before = controller_->params();
        int streak = consecutiveBad_;
        controller_->setFailSafe(true);
        consecutiveBad_ = 0;
        probeWait_ = 1;
        probeBackoff_ = 1;
        if (controller_->decisionLog()) {
            std::ostringstream why;
            why << streak << " consecutive unhealthy samples; "
                << "entering fail-safe";
            auditManagerEvent(controller_->decisionLog(), now,
                              "watchdog-trip", before,
                              controller_->params(), why.str());
        }
    } else if (failSafe_ &&
               consecutiveGood_ >= watchdog_.recoverThreshold) {
        failSafe_ = false;
        ++exits_;
        modeTrace_.push_back({now, false});
        ControllerParams before = controller_->params();
        int streak = consecutiveGood_;
        controller_->setFailSafe(false);
        consecutiveGood_ = 0;
        if (controller_->decisionLog()) {
            std::ostringstream why;
            why << streak << " consecutive healthy samples; "
                << "leaving fail-safe";
            auditManagerEvent(controller_->decisionLog(), now,
                              "watchdog-rearm", before,
                              controller_->params(), why.str());
        }
    } else if (failSafe_ && watchdog_.probeBackoffCap > 0) {
        // Bounded fail-safe escape: the healthy-streak exit above can
        // be unreachable when lingering retry state holds the health
        // report bad through backoff windows, so while telemetry is
        // trustworthy we periodically probe the actuation path
        // out-of-band and re-arm the moment a probe lands. Failed
        // probes back off exponentially (capped), keeping the knob
        // traffic of a genuinely dead path bounded.
        if (probeWait_ > 0)
            --probeWait_;
        if (probeWait_ <= 0 && h.sampleValid) {
            ++probes_;
            if (controller_->probeActuation()) {
                failSafe_ = false;
                ++exits_;
                modeTrace_.push_back({now, false});
                ControllerParams before = controller_->params();
                controller_->setFailSafe(false);
                consecutiveGood_ = 0;
                consecutiveBad_ = 0;
                if (controller_->decisionLog()) {
                    auditManagerEvent(
                        controller_->decisionLog(), now,
                        "watchdog-rearm", before,
                        controller_->params(),
                        "fail-safe escape: knob-write probe landed; "
                        "leaving fail-safe");
                }
            } else {
                probeWait_ = probeBackoff_;
                probeBackoff_ = std::min(
                    probeBackoff_ * 2, watchdog_.probeBackoffCap);
            }
        }
    }

    if (failSafe_)
        timeInFailSafe_ += period_;
}

void
RuntimeManager::onSample(sim::Time now)
{
    controller_->sample(now);
    ++samples_;
    if (watchdog_.enabled)
        superviseHealth(now);
    ControllerParams p = controller_->params();
    loCores_.add(p.loCores);
    loPrefetchers_.add(p.loPrefetchers);
    hiBackfill_.add(p.hiBackfillCores);
    if (factory_) {
        ControllerSnapshot snap = controller_->snapshot();
        snap.time = now;
        checkpoint_ = snap.serialize();
        // Replay consistency: a checkpoint that cannot be parsed back
        // into the exact same text would silently lose intent on the
        // next restart -- catch the drift at write time, not at the
        // crash.
        ControllerSnapshot replay;
        KELP_INVARIANT(
            ControllerSnapshot::deserialize(checkpoint_, replay) &&
                replay.serialize() == checkpoint_,
            "controller checkpoint does not round-trip: '",
            checkpoint_, "'");
    }
}

void
RuntimeManager::setControllerFactory(
    std::function<std::unique_ptr<Controller>()> factory)
{
    KELP_ASSERT(factory, "controller factory must be callable");
    factory_ = std::move(factory);
}

bool
RuntimeManager::restart(sim::Time now)
{
    if (!factory_)
        return false;

    // The crash: the live controller (filter state, retry state,
    // perf baselines) is gone. Knob state stays wherever the
    // hardware last landed -- that is what reconciliation is for.
    // The audit log outlives the controller -- carry it across.
    trace::DecisionLog *audit = controller_->decisionLog();
    ControllerParams paramsBefore = controller_->params();
    controller_ = factory_();
    controller_->setDecisionLog(audit);

    RestartEvent ev;
    ev.time = now;
    ControllerSnapshot snap;
    if (!checkpoint_.empty() &&
        ControllerSnapshot::deserialize(checkpoint_, snap)) {
        ev.hadCheckpoint = true;
        controller_->restore(snap);
    }
    ev.repairs = controller_->reconcile();
    KELP_ENSURES(ev.repairs >= 0,
                 "reconcile() reported a negative repair count");
    restartTrace_.push_back(ev);
    if (audit) {
        std::ostringstream why;
        why << "controller restarted "
            << (ev.hadCheckpoint ? "from checkpoint"
                                 : "without checkpoint")
            << "; " << ev.repairs << " knob(s) reconciled";
        auditManagerEvent(audit, now, "restart", paramsBefore,
                          controller_->params(), why.str());
    }

    // The watchdog's streaks described the dead controller; the
    // fail-safe flag follows the restored snapshot.
    failSafe_ = controller_->failSafe();
    consecutiveBad_ = 0;
    consecutiveGood_ = 0;
    probeWait_ = 1;
    probeBackoff_ = 1;
    return true;
}

double
RuntimeManager::avgLoCores() const
{
    // Guard the zero-sample read explicitly: the averages must be a
    // plain 0.0 before the first sample, independent of how the
    // underlying accumulator treats an empty window.
    return samples_ == 0 ? 0.0 : loCores_.mean();
}

double
RuntimeManager::avgLoPrefetchers() const
{
    return samples_ == 0 ? 0.0 : loPrefetchers_.mean();
}

double
RuntimeManager::avgHiBackfill() const
{
    return samples_ == 0 ? 0.0 : hiBackfill_.mean();
}

} // namespace runtime
} // namespace kelp
