#include "kelp/manager.hh"

#include "sim/log.hh"

namespace kelp {
namespace runtime {

RuntimeManager::RuntimeManager(std::unique_ptr<Controller> controller,
                               sim::Time period)
    : controller_(std::move(controller)), period_(period)
{
    KELP_ASSERT(controller_, "manager needs a controller");
    KELP_ASSERT(period > 0.0, "sampling period must be positive");
}

void
RuntimeManager::attach(sim::Engine &engine)
{
    engine.every(period_, [this](sim::Time now) { onSample(now); });
}

void
RuntimeManager::onSample(sim::Time now)
{
    controller_->sample(now);
    ++samples_;
    ControllerParams p = controller_->params();
    loCores_.add(p.loCores);
    loPrefetchers_.add(p.loPrefetchers);
    hiBackfill_.add(p.hiBackfillCores);
}

double
RuntimeManager::avgLoCores() const
{
    return loCores_.mean();
}

double
RuntimeManager::avgLoPrefetchers() const
{
    return loPrefetchers_.mean();
}

double
RuntimeManager::avgHiBackfill() const
{
    return hiBackfill_.mean();
}

} // namespace runtime
} // namespace kelp
