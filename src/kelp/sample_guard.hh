/**
 * @file
 * Telemetry sample guard: validation, stuck detection, outlier
 * rejection, and EWMA smoothing for hardened controllers.
 *
 * Production counters fail in recognizable ways: a dropped uncore
 * read comes back zeroed (a real memory latency can never be zero),
 * a wedged/cached source stops advancing its read timestamp (healthy
 * hardware time never stands still, even when the measurements are
 * steady), and a glitched read is off by an order of magnitude. The
 * guard filters each raw CounterSample through those checks and
 * maintains a smoothed estimate of every signal, so a controller
 * acting on guard output neither reacts to garbage nor oscillates on
 * noise.
 */

#ifndef KELP_KELP_SAMPLE_GUARD_HH
#define KELP_KELP_SAMPLE_GUARD_HH

#include <cstdint>

#include "hal/counters.hh"
#include "kelp/controller.hh"

namespace kelp {
namespace runtime {

/** Validating, smoothing filter over raw counter samples.
 *
 * The guard rides along in checkpointed controllers but is
 * deliberately not serialized: after a restart the smoothed estimate
 * is stale by definition, so the guard re-primes from live telemetry
 * exactly as it does after a fail-safe episode (reset()). The
 * member-by-member accounting below is machine-checked. */
// kelp: checkpointed
class SampleGuard
{
  public:
    explicit SampleGuard(const Hardening &cfg);

    /**
     * Feed one raw sample. Returns true when the sample passed
     * validation and was folded into the smoothed estimate; false
     * when it was rejected (the smoothed estimate is unchanged).
     */
    bool accept(const hal::CounterSample &raw);

    /** Current smoothed estimate (meaningful once primed()). */
    const hal::CounterSample &smoothed() const { return smooth_; }

    /** True once at least one sample has been accepted. */
    bool primed() const { return primed_; }

    /** Forget the smoothed estimate (after a fail-safe episode it is
     * stale by definition). The staleness clock survives: telemetry
     * time never rewinds. */
    void reset();

    /** Rejected-sample count (inspection). */
    uint64_t rejected() const { return rejected_; }

  private:
    bool validate(const hal::CounterSample &s) const;
    bool isOutlier(const hal::CounterSample &s) const;
    void fold(const hal::CounterSample &s);

    // kelp: transient(validation thresholds are config, not runtime state)
    Hardening cfg_;
    // kelp: transient(stale after restart by definition; re-primes from live telemetry)
    hal::CounterSample smooth_;
    // kelp: transient(re-primes from live telemetry after restart)
    bool primed_ = false;
    // kelp: transient(staleness clock; first post-restart sample re-establishes it)
    double lastWindowEnd_ = -1.0;
    // kelp: transient(cumulative diagnostic counter, not control state)
    uint64_t rejected_ = 0;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_KELP_SAMPLE_GUARD_HH
