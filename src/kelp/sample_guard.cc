#include "kelp/sample_guard.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace runtime {

namespace {

/**
 * Below this bandwidth (GiB/s) relative outlier checks are
 * ill-conditioned and skipped. The floor must exceed the traffic a
 * single actuation step can add from zero (backfilling one core into
 * an idle subdomain jumps its bandwidth by several GiB/s -- a
 * legitimate consequence of the controller's own action, not a
 * telemetry glitch), while staying far below the order-of-magnitude
 * excursions the spike check exists to catch.
 */
constexpr double kBwFloor = 10.0;

} // namespace

SampleGuard::SampleGuard(const Hardening &cfg)
    : cfg_(cfg)
{
}

bool
SampleGuard::validate(const hal::CounterSample &s) const
{
    auto bad_bw = [this](double bw) {
        return !std::isfinite(bw) || bw < 0.0 ||
               bw > cfg_.maxBwGibps;
    };
    auto bad_lat = [this](double lat) {
        // A real memory access can never complete in zero time: the
        // all-zero sample of a dropped counter read fails here.
        return !std::isfinite(lat) || lat <= 0.0 ||
               lat > cfg_.maxLatencyNs;
    };
    if (bad_bw(s.socketBw) || bad_lat(s.memLatency))
        return false;
    // Noise can push a duty cycle slightly past 1; spikes push it far
    // past. Accept the former (it is clamped when folded).
    if (!std::isfinite(s.saturation) || s.saturation < 0.0 ||
        s.saturation > 1.3) {
        return false;
    }
    for (int d = 0; d < 2; ++d) {
        if (bad_bw(s.subdomainBw[d]))
            return false;
        // A fully idle subdomain reports zero latency (no accesses
        // in the window), so only negative/non-finite/implausibly
        // large values are invalid here; the zero-latency dropout
        // signature is caught at socket level above.
        if (!std::isfinite(s.subdomainLat[d]) ||
            s.subdomainLat[d] < 0.0 ||
            s.subdomainLat[d] > cfg_.maxLatencyNs) {
            return false;
        }
    }
    return true;
}

bool
SampleGuard::isOutlier(const hal::CounterSample &s) const
{
    if (!primed_)
        return false;
    // Only upward excursions are rejected: sharp legitimate drops
    // (an aggressor departing, a phase change) must pass through or
    // the controller would never re-open the taps.
    const double f = cfg_.outlierFactor;
    if (s.socketBw > f * std::max(smooth_.socketBw, kBwFloor))
        return true;
    if (s.memLatency > f * smooth_.memLatency)
        return true;
    if (s.subdomainBw[0] > f * std::max(smooth_.subdomainBw[0],
                                        kBwFloor)) {
        return true;
    }
    if (s.subdomainLat[0] > f * smooth_.subdomainLat[0])
        return true;
    return false;
}

void
SampleGuard::fold(const hal::CounterSample &s)
{
    if (!primed_) {
        smooth_ = s;
        smooth_.saturation = std::min(smooth_.saturation, 1.0);
        primed_ = true;
    } else {
        const double a = cfg_.ewmaAlpha;
        auto mix = [a](double &acc, double x) {
            acc += a * (x - acc);
        };
        mix(smooth_.socketBw, s.socketBw);
        mix(smooth_.memLatency, s.memLatency);
        mix(smooth_.saturation, std::min(s.saturation, 1.0));
        for (int d = 0; d < 2; ++d) {
            mix(smooth_.subdomainBw[d], s.subdomainBw[d]);
            mix(smooth_.subdomainLat[d], s.subdomainLat[d]);
        }
    }
    // EWMA bounds: every folded sample passed validation, and an
    // exponential average is a convex combination of its inputs, so
    // the smoothed estimate must stay inside the validation envelope.
    KELP_ENSURES(smooth_.socketBw >= 0.0 &&
                     smooth_.socketBw <= cfg_.maxBwGibps,
                 "smoothed socket bandwidth ", smooth_.socketBw,
                 " escaped [0, ", cfg_.maxBwGibps, "]");
    KELP_ENSURES(smooth_.memLatency >= 0.0 &&
                     smooth_.memLatency <= cfg_.maxLatencyNs,
                 "smoothed latency ", smooth_.memLatency,
                 " escaped [0, ", cfg_.maxLatencyNs, "]");
    KELP_ENSURES(smooth_.saturation >= 0.0 &&
                     smooth_.saturation <= 1.0,
                 "smoothed saturation ", smooth_.saturation,
                 " escaped [0, 1]");
}

bool
SampleGuard::accept(const hal::CounterSample &raw)
{
    // Staleness runs before any other check: the hardware clock
    // advances between any two healthy reads, so a repeated (or
    // rewound) window-end timestamp marks a stuck/cached sample. A
    // converged system legitimately reports identical *measurements*
    // window after window -- the timestamp is what distinguishes
    // fresh-but-steady telemetry from a wedged source.
    bool stale = raw.windowEnd <= lastWindowEnd_;
    if (!stale)
        lastWindowEnd_ = raw.windowEnd;

    if (stale || !validate(raw) || isOutlier(raw)) {
        ++rejected_;
        return false;
    }
    fold(raw);
    return true;
}

void
SampleGuard::reset()
{
    // The smoothed estimate is stale after a fail-safe episode, but
    // lastWindowEnd_ survives: telemetry time never rewinds, and
    // forgetting it would let one cached sample slip through right
    // after recovery.
    primed_ = false;
    smooth_ = hal::CounterSample{};
}

} // namespace runtime
} // namespace kelp
