/**
 * @file
 * Runtime manager: hosts a controller next to the node-level
 * scheduler runtime, sampling it periodically (10 s in the paper,
 * Section IV-D: "Kelp samples system performance every 10 seconds
 * and has negligible performance overhead. The effectiveness of Kelp
 * is not sensitive to the sampling frequency.").
 *
 * The manager also time-averages the controller's parameters so
 * experiments can reproduce the parameter plots (Figures 11 and 12)
 * without re-instrumenting each controller.
 *
 * An optional watchdog supervises controller health: after N
 * consecutive invalid samples or actuation failures it drops the
 * controller into its fail-safe configuration, and re-arms it once
 * telemetry and actuation have been healthy for M consecutive
 * samples. Mode transitions are counted and recorded with their
 * timestamps so degraded runs are auditable and reproducible.
 */

#ifndef KELP_KELP_MANAGER_HH
#define KELP_KELP_MANAGER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kelp/controller.hh"
#include "sim/engine.hh"
#include "sim/stats.hh"

namespace kelp {
namespace runtime {

/** Watchdog thresholds (disabled by default). */
struct WatchdogConfig
{
    bool enabled = false;

    /** Consecutive unhealthy samples before entering fail-safe. */
    int faultThreshold = 3;

    /** Consecutive healthy samples before re-arming. */
    int recoverThreshold = 3;

    /**
     * Fail-safe escape probe: while in fail-safe (and telemetry is
     * valid) the watchdog periodically calls the controller's
     * probeActuation() on an exponential backoff, re-arming
     * immediately when a probe lands. This cap bounds the backoff,
     * in samples; 0 disables probing. Without the probe, a
     * controller whose actuation-failure streak keeps its health
     * report bad through backoff windows can never assemble the
     * recoverThreshold healthy streak and is pinned in fail-safe
     * forever under intermittent knob faults.
     */
    int probeBackoffCap = 8;
};

/** Drives one controller at a fixed sampling period. */
class RuntimeManager
{
  public:
    /**
     * @param controller The configuration to run.
     * @param period Sampling period, seconds.
     */
    RuntimeManager(std::unique_ptr<Controller> controller,
                   sim::Time period = 10.0);

    /** Register the sampling callback with an engine. */
    void attach(sim::Engine &engine);

    Controller &controller() { return *controller_; }
    const Controller &controller() const { return *controller_; }

    sim::Time period() const { return period_; }

    /** Samples taken so far. */
    uint64_t samples() const { return samples_; }

    /** Time-averaged low-priority core count (0 before the first
     * sample). */
    double avgLoCores() const;

    /** Time-averaged enabled-prefetcher count (0 before the first
     * sample). */
    double avgLoPrefetchers() const;

    /** Time-averaged backfill core count (0 before the first
     * sample). */
    double avgHiBackfill() const;

    /** Arm (or disarm) the fail-safe watchdog. */
    void setWatchdog(const WatchdogConfig &cfg);
    const WatchdogConfig &watchdog() const { return watchdog_; }

    /** True while the supervised controller is held in fail-safe. */
    bool inFailSafe() const { return failSafe_; }

    /** Fail-safe entry/exit counts (telemetry). */
    uint64_t failSafeEntries() const { return entries_; }
    uint64_t failSafeExits() const { return exits_; }

    /** Fail-safe escape probes attempted (telemetry). */
    uint64_t probes() const { return probes_; }

    /** Total sampled time spent in fail-safe mode, seconds. */
    double timeInFailSafe() const { return timeInFailSafe_; }

    /** One watchdog mode transition. */
    struct ModeChange
    {
        sim::Time time;
        bool failSafe;
    };

    /** All transitions, in order (deterministic per seed). */
    const std::vector<ModeChange> &modeTrace() const
    {
        return modeTrace_;
    }

    /**
     * Register the recipe for rebuilding the controller from
     * scratch (crash/restart support). Once set, the manager also
     * checkpoints the controller's snapshot after every sample, so a
     * later restart() can replay the last known-good intent.
     */
    void setControllerFactory(
        std::function<std::unique_ptr<Controller>()> factory);

    /**
     * Simulate a controller crash + restart at @p now: discard the
     * live controller, rebuild it via the factory, replay the last
     * checkpoint into it, and reconcile its intent against the HAL's
     * actual knob state. Returns false (and leaves the controller
     * untouched) when no factory is registered.
     */
    bool restart(sim::Time now);

    /** One crash/restart event (audit trace). */
    struct RestartEvent
    {
        sim::Time time = 0.0;

        /** A checkpoint existed and was replayed. */
        bool hadCheckpoint = false;

        /** Divergent knobs repaired by reconciliation. */
        int repairs = 0;
    };

    uint64_t restarts() const { return restartTrace_.size(); }
    const std::vector<RestartEvent> &restartTrace() const
    {
        return restartTrace_;
    }

    /** Last serialized checkpoint ("" before the first sample). */
    const std::string &lastCheckpoint() const { return checkpoint_; }

  private:
    void onSample(sim::Time now);
    void superviseHealth(sim::Time now);

    std::unique_ptr<Controller> controller_;
    sim::Time period_;
    uint64_t samples_ = 0;
    sim::OnlineStats loCores_;
    sim::OnlineStats loPrefetchers_;
    sim::OnlineStats hiBackfill_;

    WatchdogConfig watchdog_;
    bool failSafe_ = false;
    int consecutiveBad_ = 0;
    int consecutiveGood_ = 0;
    int probeWait_ = 1;
    int probeBackoff_ = 1;
    uint64_t probes_ = 0;
    uint64_t entries_ = 0;
    uint64_t exits_ = 0;
    double timeInFailSafe_ = 0.0;
    std::vector<ModeChange> modeTrace_;

    std::function<std::unique_ptr<Controller>()> factory_;
    std::string checkpoint_;
    std::vector<RestartEvent> restartTrace_;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_KELP_MANAGER_HH
