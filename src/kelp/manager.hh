/**
 * @file
 * Runtime manager: hosts a controller next to the node-level
 * scheduler runtime, sampling it periodically (10 s in the paper,
 * Section IV-D: "Kelp samples system performance every 10 seconds
 * and has negligible performance overhead. The effectiveness of Kelp
 * is not sensitive to the sampling frequency.").
 *
 * The manager also time-averages the controller's parameters so
 * experiments can reproduce the parameter plots (Figures 11 and 12)
 * without re-instrumenting each controller.
 */

#ifndef KELP_RUNTIME_MANAGER_HH
#define KELP_RUNTIME_MANAGER_HH

#include <memory>

#include "kelp/controller.hh"
#include "sim/engine.hh"
#include "sim/stats.hh"

namespace kelp {
namespace runtime {

/** Drives one controller at a fixed sampling period. */
class RuntimeManager
{
  public:
    /**
     * @param controller The configuration to run.
     * @param period Sampling period, seconds.
     */
    RuntimeManager(std::unique_ptr<Controller> controller,
                   sim::Time period = 10.0);

    /** Register the sampling callback with an engine. */
    void attach(sim::Engine &engine);

    Controller &controller() { return *controller_; }
    const Controller &controller() const { return *controller_; }

    sim::Time period() const { return period_; }

    /** Samples taken so far. */
    uint64_t samples() const { return samples_; }

    /** Time-averaged low-priority core count. */
    double avgLoCores() const;

    /** Time-averaged enabled-prefetcher count. */
    double avgLoPrefetchers() const;

    /** Time-averaged backfill core count. */
    double avgHiBackfill() const;

  private:
    void onSample(sim::Time now);

    std::unique_ptr<Controller> controller_;
    sim::Time period_;
    uint64_t samples_ = 0;
    sim::OnlineStats loCores_;
    sim::OnlineStats loPrefetchers_;
    sim::OnlineStats hiBackfill_;
};

} // namespace runtime
} // namespace kelp

#endif // KELP_RUNTIME_MANAGER_HH
