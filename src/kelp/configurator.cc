#include "kelp/configurator.hh"

#include "sim/log.hh"

namespace kelp {
namespace runtime {

Configurator::Configurator(const ConfigLimits &limits)
    : limits_(limits)
{
    KELP_ASSERT(limits.minCoreH <= limits.maxCoreH,
                "bad hi-priority core limits");
    KELP_ASSERT(limits.minCoreL <= limits.maxCoreL,
                "bad lo-priority core limits");
    KELP_ASSERT(limits.minCoreL >= 0, "negative lo-priority minimum");
}

void
Configurator::configHiPriority(Action action, ResourceState &state) const
{
    // Paper Algorithm 2, ConfigHiPriority: one core at a time within
    // [minCoreNum_h, maxCoreNum_h].
    if (action == Action::Throttle) {
        if (state.coreNumH > limits_.minCoreH)
            state.coreNumH -= 1;
    } else if (action == Action::Boost) {
        if (state.coreNumH < limits_.maxCoreH)
            state.coreNumH += 1;
    }
}

void
Configurator::configLoPriority(Action action, ResourceState &state) const
{
    // Paper Algorithm 2, ConfigLoPriority: throttle by halving
    // prefetchers first ("more aggressive in disabling prefetchers in
    // order to prioritize ML task performance"), then shed cores;
    // boost by restoring prefetchers one at a time, then add cores.
    if (action == Action::Throttle) {
        if (state.prefetcherNumL > 0)
            state.prefetcherNumL /= 2;
        else if (state.coreNumL > limits_.minCoreL)
            state.coreNumL -= 1;
    } else if (action == Action::Boost) {
        if (state.prefetcherNumL < state.coreNumL)
            state.prefetcherNumL += 1;
        else if (state.coreNumL < limits_.maxCoreL)
            state.coreNumL += 1;
    }
    // Invariant: never more enabled prefetchers than cores.
    if (state.prefetcherNumL > state.coreNumL)
        state.prefetcherNumL = state.coreNumL;
}

} // namespace runtime
} // namespace kelp
