/**
 * @file
 * Baseline (BL): task priority is declared to the cluster scheduler
 * but node-level resource contention is unmanaged (Section V-A).
 * The controller samples nothing and touches nothing; tasks float
 * across the socket's cores and share the memory system freely.
 */

#ifndef KELP_KELP_BASELINE_HH
#define KELP_KELP_BASELINE_HH

#include "kelp/controller.hh"

namespace kelp {
namespace runtime {

/** The do-nothing configuration. */
class BaselineController : public Controller
{
  public:
    explicit BaselineController(const Bindings &bindings);

    void sample(sim::Time now) override;

    ControllerParams params() const override;

    const char *name() const override { return "BL"; }
};

} // namespace runtime
} // namespace kelp

#endif // KELP_KELP_BASELINE_HH
