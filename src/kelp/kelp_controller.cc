#include "kelp/kelp_controller.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace runtime {

namespace {

/**
 * Hysteresis: an opposite-action flip (Throttle <-> Boost) must pass
 * through a NOP cycle, so one noisy sample cannot reverse the
 * controller's direction outright.
 */
Action
damped(Action prev, Action next)
{
    if ((prev == Action::Throttle && next == Action::Boost) ||
        (prev == Action::Boost && next == Action::Throttle)) {
        return Action::Nop;
    }
    return next;
}

} // namespace

KelpDecision
decideActions(const AppProfile &profile, const KelpMeasurements &m)
{
    KelpDecision d;

    // High-priority subdomain: throttle backfill when its bandwidth
    // or the socket latency is high; boost when both are low.
    bool hi_bw_h = profile.hiSubBw.isHigh(m.bwH);
    bool hi_lat = profile.latency.isHigh(m.latS);
    bool lo_bw_h = profile.hiSubBw.isLow(m.bwH);
    bool lo_lat = profile.latency.isLow(m.latS);
    if (hi_bw_h || hi_lat)
        d.actionH = Action::Throttle;
    else if (lo_bw_h && lo_lat)
        d.actionH = Action::Boost;
    else
        d.actionH = Action::Nop;

    // Low-priority subdomain: socket bandwidth, latency, and memory
    // saturation all participate.
    bool hi_bw_s = profile.socketBw.isHigh(m.bwS);
    bool hi_sat = profile.saturation.isHigh(m.satS);
    bool lo_bw_s = profile.socketBw.isLow(m.bwS);
    bool lo_sat = profile.saturation.isLow(m.satS);
    if (hi_bw_s || hi_lat || hi_sat)
        d.actionL = Action::Throttle;
    else if (lo_bw_s && lo_lat && lo_sat)
        d.actionL = Action::Boost;
    else
        d.actionL = Action::Nop;

    return d;
}

KelpController::KelpController(const Bindings &bindings,
                               AppProfile profile,
                               const ConfigLimits &limits,
                               const ResourceState &initial,
                               const Hardening &hardening)
    : Controller(bindings), profile_(std::move(profile)),
      configurator_(limits), state_(initial),
      counters_(bindings.counters), knobs_(bindings.knobs),
      hardening_(hardening), guard_(hardening)
{
    KELP_ASSERT(bind_.cpuGroup != sim::invalidId,
                "Kelp needs a low-priority group to manage");
    if (!counters_) {
        ownedCounters_ = std::make_unique<hal::PerfCounters>(
            bindings.node->memSystem());
        counters_ = ownedCounters_.get();
    }
    if (!knobs_)
        knobs_ = &bindings.node->knobs();
    health_.actuationOk = enforce();
    enforcePending_ = !health_.actuationOk;
}

void
KelpController::sample(sim::Time now)
{
    (void)now;
    hal::CounterSample s = counters_->sample(bind_.socket);

    bool valid = true;
    if (hardening_.enabled) {
        valid = guard_.accept(s);
        // Decide on the smoothed estimate, not the raw read.
        if (valid)
            s = guard_.smoothed();
    }
    health_.sampleValid = valid;

    if (valid && !failSafe_) {
        KelpMeasurements m;
        m.bwS = s.socketBw;
        // Under subdomains the latency that matters to the
        // accelerated task is its own subdomain's: the saturated
        // low-priority controller would otherwise dominate the socket
        // average and block backfilling forever.
        m.latS = bind_.node->sncEnabled() ? s.subdomainLat[0]
                                          : s.memLatency;
        m.satS = s.saturation;
        // The high-priority subdomain is subdomain 0 by convention
        // (the ML task is bound there at placement time).
        m.bwH = s.subdomainBw[0];

        KelpDecision d = decideActions(profile_, m);
        if (hardening_.enabled) {
            d.actionH = damped(prevH_, d.actionH);
            d.actionL = damped(prevL_, d.actionL);
            prevH_ = d.actionH;
            prevL_ = d.actionL;
        }
        lastDecision_ = d;
        configurator_.configHiPriority(d.actionH, state_);
        configurator_.configLoPriority(d.actionL, state_);
    }
    actuate();
}

void
KelpController::actuate()
{
    if (!hardening_.enabled) {
        // Paper behaviour: enforce every sample, no retry.
        health_.actuationOk = enforce();
        enforcePending_ = !health_.actuationOk;
        return;
    }
    if (retryWait_ > 0) {
        // Backing off after a failed write; the config is stale but
        // no new evidence either way, so the health verdict holds.
        --retryWait_;
        return;
    }
    if (enforce()) {
        enforcePending_ = false;
        backoff_ = 1;
        failedAttempts_ = 0;
    } else {
        enforcePending_ = true;
        retryWait_ = backoff_;
        backoff_ = std::min(backoff_ * 2, hardening_.maxBackoff);
        ++failedAttempts_;
    }
    // Transient write failures are absorbed by the retry loop; only a
    // persistent outage (a streak of failed attempts) is reported to
    // the watchdog as unhealthy actuation.
    health_.actuationOk =
        failedAttempts_ < hardening_.actuationFailStreak;
}

ResourceState
KelpController::failSafeState() const
{
    // Static KP-SD partitioning: backfill fully withdrawn, the
    // low-priority subdomain fully populated with prefetchers on.
    // The subdomain boundary alone protects the accelerated task, no
    // telemetry required -- which is exactly why it is the safe
    // floor when telemetry cannot be trusted.
    ResourceState fs;
    fs.coreNumH = configurator_.limits().minCoreH;
    fs.coreNumL = configurator_.limits().maxCoreL;
    fs.prefetcherNumL = fs.coreNumL;
    return fs;
}

void
KelpController::setFailSafe(bool on)
{
    if (on == failSafe_)
        return;
    failSafe_ = on;
    if (on) {
        state_ = failSafeState();
        lastDecision_ = KelpDecision{};
    } else {
        // Re-arm the feedback loop from the fail-safe config with
        // fresh filter state: the smoothed estimate is stale.
        guard_.reset();
        prevH_ = Action::Nop;
        prevL_ = Action::Nop;
    }
    backoff_ = 1;
    retryWait_ = 0;
    failedAttempts_ = 0;
    bool ok = enforce();
    enforcePending_ = !ok;
    if (hardening_.enabled) {
        // Keep the streak semantics: one failed attempt at the mode
        // switch is not yet a reportable outage.
        failedAttempts_ = ok ? 0 : 1;
        health_.actuationOk =
            failedAttempts_ < hardening_.actuationFailStreak;
    } else {
        health_.actuationOk = ok;
    }
}

bool
KelpController::enforce()
{
    // Low-priority cores: coreNumL in the low-priority subdomain (1),
    // coreNumH backfilled into the high-priority subdomain (0).
    bool ok = true;
    if (!knobs_->setCores(bind_.cpuGroup, bind_.socket, 1,
                          state_.coreNumL)) {
        ok = false;
    }
    if (!knobs_->setCores(bind_.cpuGroup, bind_.socket, 0,
                          state_.coreNumH)) {
        ok = false;
    }
    // Backfilled cores keep their prefetchers; the managed count
    // applies to the low-priority subdomain's cores.
    if (!knobs_->setPrefetchersEnabled(
            bind_.cpuGroup, state_.prefetcherNumL + state_.coreNumH)) {
        ok = false;
    }
    return ok;
}

ControllerParams
KelpController::params() const
{
    return {state_.coreNumL, state_.prefetcherNumL, state_.coreNumH};
}

} // namespace runtime
} // namespace kelp
