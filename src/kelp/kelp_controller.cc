#include "kelp/kelp_controller.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"
#include "trace/decision_log.hh"

namespace kelp {
namespace runtime {

namespace {

/**
 * Hysteresis: an opposite-action flip (Throttle <-> Boost) must pass
 * through a NOP cycle, so one noisy sample cannot reverse the
 * controller's direction outright.
 */
Action
damped(Action prev, Action next)
{
    if ((prev == Action::Throttle && next == Action::Boost) ||
        (prev == Action::Boost && next == Action::Throttle)) {
        return Action::Nop;
    }
    return next;
}

} // namespace

KelpDecision
decideActions(const AppProfile &profile, const KelpMeasurements &m)
{
    KelpDecision d;

    // High-priority subdomain: throttle backfill when its bandwidth
    // or the socket latency is high; boost when both are low.
    bool hi_bw_h = profile.hiSubBw.isHigh(m.bwH);
    bool hi_lat = profile.latency.isHigh(m.latS);
    bool lo_bw_h = profile.hiSubBw.isLow(m.bwH);
    bool lo_lat = profile.latency.isLow(m.latS);
    if (hi_bw_h || hi_lat)
        d.actionH = Action::Throttle;
    else if (lo_bw_h && lo_lat)
        d.actionH = Action::Boost;
    else
        d.actionH = Action::Nop;

    // Low-priority subdomain: socket bandwidth, latency, and memory
    // saturation all participate.
    bool hi_bw_s = profile.socketBw.isHigh(m.bwS);
    bool hi_sat = profile.saturation.isHigh(m.satS);
    bool lo_bw_s = profile.socketBw.isLow(m.bwS);
    bool lo_sat = profile.saturation.isLow(m.satS);
    if (hi_bw_s || hi_lat || hi_sat)
        d.actionL = Action::Throttle;
    else if (lo_bw_s && lo_lat && lo_sat)
        d.actionL = Action::Boost;
    else
        d.actionL = Action::Nop;

    return d;
}

KelpController::KelpController(const Bindings &bindings,
                               AppProfile profile,
                               const ConfigLimits &limits,
                               const ResourceState &initial,
                               const Hardening &hardening)
    : Controller(bindings), profile_(std::move(profile)),
      configurator_(limits), state_(initial),
      counters_(bindings.counters), knobs_(bindings.knobs),
      hardening_(hardening), guard_(hardening)
{
    KELP_ASSERT(bind_.cpuGroup != sim::invalidId,
                "Kelp needs a low-priority group to manage");
    if (!counters_) {
        ownedCounters_ = std::make_unique<hal::PerfCounters>(
            bindings.node->memSystem());
        counters_ = ownedCounters_.get();
    }
    if (!knobs_)
        knobs_ = &bindings.node->knobs();
    health_.actuationOk = enforce();
    enforcePending_ = !health_.actuationOk;
}

void
KelpController::sample(sim::Time now)
{
    hal::CounterSample s = counters_->sample(bind_.socket);

    bool valid = true;
    if (hardening_.enabled) {
        valid = guard_.accept(s);
        // Decide on the smoothed estimate, not the raw read.
        if (valid)
            s = guard_.smoothed();
    }
    health_.sampleValid = valid;

    if (valid && !failSafe_) {
        KelpMeasurements m;
        m.bwS = s.socketBw;
        // Under subdomains the latency that matters to the
        // accelerated task is its own subdomain's: the saturated
        // low-priority controller would otherwise dominate the socket
        // average and block backfilling forever.
        m.latS = bind_.node->sncEnabled() ? s.subdomainLat[0]
                                          : s.memLatency;
        m.satS = s.saturation;
        // The high-priority subdomain is subdomain 0 by convention
        // (the ML task is bound there at placement time).
        m.bwH = s.subdomainBw[0];
        lastMeasurements_ = m;

        KelpDecision d = decideActions(profile_, m);
        if (hardening_.enabled) {
            d.actionH = damped(prevH_, d.actionH);
            d.actionL = damped(prevL_, d.actionL);
            prevH_ = d.actionH;
            prevL_ = d.actionL;
        }
        lastDecision_ = d;
        ResourceState before = state_;
        configurator_.configHiPriority(d.actionH, state_);
        configurator_.configLoPriority(d.actionL, state_);
        if (decisionLog_ &&
            (d.actionH != Action::Nop || d.actionL != Action::Nop)) {
            std::ostringstream why;
            why << "action_h=" << actionName(d.actionH)
                << " action_l=" << actionName(d.actionL);
            logDecision(now, "algorithm1", before, -1.0, why.str());
        }
    }
    if (dynamicMembership_ && !failSafe_) {
        ResourceState before = state_;
        clampToMembership();
        if (decisionLog_ &&
            (before.coreNumH != state_.coreNumH ||
             before.coreNumL != state_.coreNumL ||
             before.prefetcherNumL != state_.prefetcherNumL)) {
            logDecision(now, "membership-clamp", before, -1.0,
                        "clamped to live low-priority membership");
        }
    }
    if (sloGuard_ && !failSafe_) {
        double ratio = measurePerfRatio(now);
        int rungBefore = sloGuard_->rung();
        if (ratio >= 0.0)
            sloGuard_->observe(now, ratio);
        // Re-assert the active rung's clamps every sample: the
        // ladder outranks Algorithm 2's boosts until it de-escalates.
        ResourceState before = state_;
        size_t suspBefore = suspended_.size();
        applyRung(sloGuard_->rung());
        int rungAfter = sloGuard_->rung();
        if (decisionLog_) {
            bool stateChanged =
                before.coreNumH != state_.coreNumH ||
                before.coreNumL != state_.coreNumL ||
                before.prefetcherNumL != state_.prefetcherNumL ||
                suspended_.size() != suspBefore;
            if (rungAfter != rungBefore) {
                std::ostringstream why;
                why << "rung " << rungBefore << "->" << rungAfter
                    << " (" << sloRungName(rungAfter) << ")";
                if (suspended_.size() > suspBefore)
                    why << ", evicted task " << suspended_.back();
                else if (suspended_.size() < suspBefore)
                    why << ", resumed suspended tasks";
                logDecision(now, "slo-rung", before, ratio,
                            why.str());
            } else if (stateChanged) {
                std::ostringstream why;
                why << "re-asserted rung " << rungAfter << " ("
                    << sloRungName(rungAfter) << ") clamps";
                logDecision(now, "slo-clamp", before, ratio,
                            why.str());
            }
        }
    }
    actuate(now);
}

void
KelpController::clampToMembership()
{
    const ConfigLimits &lim = configurator_.limits();
    int threads = bind_.node->runnableThreadsInGroup(bind_.cpuGroup,
                                                     bind_.socket);
    if (threads <= 0) {
        // Nothing low-priority is runnable: park at the floor and
        // withdraw backfill so arrivals restart from the safe edge.
        state_.coreNumL = lim.minCoreL;
        state_.coreNumH = lim.minCoreH;
    } else {
        int cap = std::clamp(threads, lim.minCoreL, lim.maxCoreL);
        state_.coreNumL = std::min(state_.coreNumL, cap);
    }
    state_.prefetcherNumL =
        std::min(state_.prefetcherNumL, state_.coreNumL);
}

void
KelpController::enableSloGuard(const SloConfig &cfg,
                               double referencePerf)
{
    KELP_ASSERT(referencePerf > 0.0,
                "SLO guard needs a positive reference performance");
    sloGuard_ = std::make_unique<SloGuard>(cfg);
    referencePerf_ = referencePerf;
    lastWork_ = -1.0;
}

double
KelpController::measurePerfRatio(sim::Time now)
{
    double work = 0.0;
    bool found = false;
    for (const auto &t : bind_.node->tasks()) {
        if (t->group() == bind_.mlGroup) {
            work += t->completedWork();
            found = true;
        }
    }
    if (!found || referencePerf_ <= 0.0)
        return -1.0;
    if (lastWork_ < 0.0 || now <= lastWorkTime_) {
        // First observation (or a restarted controller): no interval
        // to rate yet, just set the baseline.
        lastWork_ = work;
        lastWorkTime_ = now;
        return -1.0;
    }
    double rate = (work - lastWork_) / (now - lastWorkTime_);
    lastWork_ = work;
    lastWorkTime_ = now;
    return rate / referencePerf_;
}

void
KelpController::applyRung(int rung)
{
    const ConfigLimits &lim = configurator_.limits();
    if (rung >= kRungDrainBackfill)
        state_.coreNumH = lim.minCoreH;
    if (rung >= kRungThrottleCores)
        state_.coreNumL = lim.minCoreL;
    if (rung >= kRungDisablePrefetch)
        state_.prefetcherNumL = 0;
    state_.prefetcherNumL =
        std::min(state_.prefetcherNumL, state_.coreNumL);

    if (rung >= kRungEvictAntagonist) {
        // Hold exactly one antagonist suspended: the one offering the
        // most bandwidth when the ladder topped out.
        if (suspended_.empty()) {
            wl::Task *victim =
                bind_.node->hungriestRunnable(bind_.cpuGroup);
            if (victim) {
                victim->setLifeState(wl::LifeState::Suspended);
                suspended_.push_back(victim->id());
            }
        }
    } else if (!suspended_.empty()) {
        for (int id : suspended_) {
            wl::Task *t = bind_.node->taskById(id);
            if (t && t->lifeState() == wl::LifeState::Suspended)
                t->setLifeState(wl::LifeState::Running);
        }
        suspended_.clear();
    }
}

bool
KelpController::probeActuation()
{
    // Out-of-band knob-write pass for the watchdog's fail-safe
    // escape. A landed pass is direct evidence the actuation path
    // healed, so the retry machinery resets: the accumulated failure
    // streak is what keeps lastHealth() bad through backoff windows
    // and would otherwise hold the node in fail-safe forever under
    // intermittent write faults (the watchdog-stuck corpus
    // findings). A failed probe changes nothing; the watchdog backs
    // off and tries again.
    if (!enforce())
        return false;
    enforcePending_ = false;
    backoff_ = 1;
    retryWait_ = 0;
    failedAttempts_ = 0;
    health_.actuationOk = true;
    return true;
}

ControllerSnapshot
KelpController::snapshot() const
{
    ControllerSnapshot snap;
    snap.valid = true;
    snap.coreNumH = state_.coreNumH;
    snap.coreNumL = state_.coreNumL;
    snap.prefetcherNumL = state_.prefetcherNumL;
    snap.failSafe = failSafe_;
    snap.rung = sloGuard_ ? sloGuard_->rung() : 0;
    snap.prevH = static_cast<int>(prevH_);
    snap.prevL = static_cast<int>(prevL_);
    snap.suspended = suspended_;
    // Only the controller-owned reader's cursors are worth
    // checkpointing: an injected telemetry backend outlives the
    // controller and keeps its own windows across restarts.
    if (const auto *pc = dynamic_cast<const hal::PerfCounters *>(
            ownedCounters_.get())) {
        snap.hasCounterWindow = true;
        snap.counterWindow = pc->cursorState(bind_.socket);
    }
    return snap;
}

void
KelpController::restore(const ControllerSnapshot &snap)
{
    if (!snap.valid)
        return;
    state_.coreNumH = snap.coreNumH;
    state_.coreNumL = snap.coreNumL;
    state_.prefetcherNumL = snap.prefetcherNumL;
    prevH_ = static_cast<Action>(std::clamp(snap.prevH, 0, 2));
    prevL_ = static_cast<Action>(std::clamp(snap.prevL, 0, 2));
    // Suspensions live in the node's task states and survive the
    // controller crash; the list just re-links them so resume and
    // checkpointing keep working.
    suspended_ = snap.suspended;
    if (sloGuard_)
        sloGuard_->restore(snap.rung);
    if (snap.failSafe) {
        failSafe_ = true;
        state_ = failSafeState();
    }
    // Filter history and the perf baseline died with the old
    // process: re-prime both from the next sample.
    guard_.reset();
    lastWork_ = -1.0;

    // Resume the pre-crash measurement window: the constructor
    // primed fresh cursors at restart time, which would make the
    // first post-restart window start mid-period and diverge from an
    // uninterrupted controller's reads.
    if (snap.hasCounterWindow) {
        if (auto *pc = dynamic_cast<hal::PerfCounters *>(
                ownedCounters_.get()))
            pc->restoreCursorState(bind_.socket, snap.counterWindow);
    }

    // Replay consistency: a restored controller must checkpoint the
    // same intent it was rebuilt from (modulo the snapshot timestamp,
    // which the manager stamps at write time). Anything less means
    // restarts lose state monotonically.
    ControllerSnapshot echo = snapshot();
    KELP_ENSURES(echo.coreNumH == snap.coreNumH &&
                     echo.coreNumL == snap.coreNumL &&
                     echo.prefetcherNumL == snap.prefetcherNumL &&
                     echo.failSafe == snap.failSafe &&
                     echo.suspended == snap.suspended,
                 "restored controller does not re-produce its own "
                 "checkpoint");
}

int
KelpController::reconcile()
{
    // Read the hardware's actual state straight from the registry
    // (never through a fault injector: reconciliation must see the
    // truth), compare it against the restored intent, and repair.
    hal::GroupKnobState actual =
        bind_.node->knobs().groupState(bind_.cpuGroup);
    int divergent = 0;
    if (actual.cores[bind_.socket][0] != state_.coreNumH)
        ++divergent;
    if (actual.cores[bind_.socket][1] != state_.coreNumL)
        ++divergent;
    if (actual.prefetchers != state_.prefetcherNumL + state_.coreNumH)
        ++divergent;
    if (actual.catWays != 0) {
        // The Kelp controller never dedicates CAT ways to the
        // low-priority group; a nonzero read is drift.
        ++divergent;
        // kelp: allow(audit-completeness): reconcile() repairs drift
        // back to already-audited intent; the restart itself is
        // recorded by the manager's "restart" event.
        knobs_->setCatWays(bind_.cpuGroup, 0);
    }
    if (divergent > 0) {
        // Repairs go through the managed sink (possibly faulty): a
        // lost repair is retried by the normal actuation loop.
        backoff_ = 1;
        retryWait_ = 0;
        bool ok = enforce();
        enforcePending_ = !ok;
        failedAttempts_ = ok ? 0 : 1;
        health_.actuationOk =
            !hardening_.enabled ||
            failedAttempts_ < hardening_.actuationFailStreak;
    }
    return divergent;
}

void
KelpController::actuate(sim::Time now)
{
    bool wasPending = enforcePending_;
    if (!hardening_.enabled) {
        // Paper behaviour: enforce every sample, no retry.
        health_.actuationOk = enforce();
        enforcePending_ = !health_.actuationOk;
        logActuationEdge(now, wasPending);
        return;
    }
    if (retryWait_ > 0) {
        // Backing off after a failed write; the config is stale but
        // no new evidence either way, so the health verdict holds.
        --retryWait_;
        return;
    }
    if (enforce()) {
        enforcePending_ = false;
        backoff_ = 1;
        failedAttempts_ = 0;
    } else {
        enforcePending_ = true;
        retryWait_ = backoff_;
        backoff_ = std::min(backoff_ * 2, hardening_.maxBackoff);
        ++failedAttempts_;
    }
    // Transient write failures are absorbed by the retry loop; only a
    // persistent outage (a streak of failed attempts) is reported to
    // the watchdog as unhealthy actuation.
    health_.actuationOk =
        failedAttempts_ < hardening_.actuationFailStreak;
    logActuationEdge(now, wasPending);
}

void
KelpController::logActuationEdge(sim::Time now, bool wasPending)
{
    if (!decisionLog_ || wasPending == enforcePending_)
        return;
    if (enforcePending_) {
        std::ostringstream why;
        why << "knob write failed";
        if (hardening_.enabled)
            why << "; retrying with backoff " << backoff_;
        logDecision(now, "actuation-fail", state_, -1.0, why.str());
    } else {
        logDecision(now, "actuation-recovered", state_, -1.0,
                    "pending knob writes landed");
    }
}

void
KelpController::logDecision(sim::Time now, const char *kind,
                            const ResourceState &before,
                            double perfRatio,
                            const std::string &reason)
{
    if (!decisionLog_)
        return;
    trace::DecisionEvent ev;
    ev.time = now;
    ev.kind = kind;
    ev.reason = reason;
    ev.loCoresOld = before.coreNumL;
    ev.loCoresNew = state_.coreNumL;
    ev.loPrefetchersOld = before.prefetcherNumL;
    ev.loPrefetchersNew = state_.prefetcherNumL;
    ev.hiBackfillOld = before.coreNumH;
    ev.hiBackfillNew = state_.coreNumH;
    ev.bwS = lastMeasurements_.bwS;
    ev.latS = lastMeasurements_.latS;
    ev.satS = lastMeasurements_.satS;
    ev.bwH = lastMeasurements_.bwH;
    ev.perfRatio = perfRatio;
    decisionLog_->append(ev);
}

ResourceState
KelpController::failSafeState() const
{
    // Static KP-SD partitioning: backfill fully withdrawn, the
    // low-priority subdomain fully populated with prefetchers on.
    // The subdomain boundary alone protects the accelerated task, no
    // telemetry required -- which is exactly why it is the safe
    // floor when telemetry cannot be trusted.
    ResourceState fs;
    fs.coreNumH = configurator_.limits().minCoreH;
    fs.coreNumL = configurator_.limits().maxCoreL;
    fs.prefetcherNumL = fs.coreNumL;
    return fs;
}

void
KelpController::setFailSafe(bool on)
{
    if (on == failSafe_)
        return;
    failSafe_ = on;
    if (on) {
        state_ = failSafeState();
        lastDecision_ = KelpDecision{};
    } else {
        // Re-arm the feedback loop from the fail-safe config with
        // fresh filter state: the smoothed estimate is stale.
        guard_.reset();
        prevH_ = Action::Nop;
        prevL_ = Action::Nop;
    }
    backoff_ = 1;
    retryWait_ = 0;
    failedAttempts_ = 0;
    bool ok = enforce();
    enforcePending_ = !ok;
    if (hardening_.enabled) {
        // Keep the streak semantics: one failed attempt at the mode
        // switch is not yet a reportable outage.
        failedAttempts_ = ok ? 0 : 1;
        health_.actuationOk =
            failedAttempts_ < hardening_.actuationFailStreak;
    } else {
        health_.actuationOk = ok;
    }
}

bool
KelpController::enforce()
{
    // Low-priority cores: coreNumL in the low-priority subdomain (1),
    // coreNumH backfilled into the high-priority subdomain (0).
    //
    // enforce() is the mechanical write path: every state_ change it
    // applies was already recorded at decision time (logDecision in
    // sample()) and its success/failure edges are recorded by
    // actuate() via logActuationEdge.
    bool ok = true;
    // kelp: allow(audit-completeness): decision recorded in sample();
    // actuation edges recorded by actuate().
    if (!knobs_->setCores(bind_.cpuGroup, bind_.socket, 1,
                          state_.coreNumL)) {
        ok = false;
    }
    // kelp: allow(audit-completeness): decision recorded in sample();
    // actuation edges recorded by actuate().
    if (!knobs_->setCores(bind_.cpuGroup, bind_.socket, 0,
                          state_.coreNumH)) {
        ok = false;
    }
    // Backfilled cores keep their prefetchers; the managed count
    // applies to the low-priority subdomain's cores.
    // kelp: allow(audit-completeness): decision recorded in sample();
    // actuation edges recorded by actuate().
    if (!knobs_->setPrefetchersEnabled(
            bind_.cpuGroup, state_.prefetcherNumL + state_.coreNumH)) {
        ok = false;
    }
    return ok;
}

ControllerParams
KelpController::params() const
{
    return {state_.coreNumL, state_.prefetcherNumL, state_.coreNumH};
}

} // namespace runtime
} // namespace kelp
