#include "kelp/kelp_controller.hh"

#include "sim/log.hh"

namespace kelp {
namespace runtime {

KelpDecision
decideActions(const AppProfile &profile, const KelpMeasurements &m)
{
    KelpDecision d;

    // High-priority subdomain: throttle backfill when its bandwidth
    // or the socket latency is high; boost when both are low.
    bool hi_bw_h = profile.hiSubBw.isHigh(m.bwH);
    bool hi_lat = profile.latency.isHigh(m.latS);
    bool lo_bw_h = profile.hiSubBw.isLow(m.bwH);
    bool lo_lat = profile.latency.isLow(m.latS);
    if (hi_bw_h || hi_lat)
        d.actionH = Action::Throttle;
    else if (lo_bw_h && lo_lat)
        d.actionH = Action::Boost;
    else
        d.actionH = Action::Nop;

    // Low-priority subdomain: socket bandwidth, latency, and memory
    // saturation all participate.
    bool hi_bw_s = profile.socketBw.isHigh(m.bwS);
    bool hi_sat = profile.saturation.isHigh(m.satS);
    bool lo_bw_s = profile.socketBw.isLow(m.bwS);
    bool lo_sat = profile.saturation.isLow(m.satS);
    if (hi_bw_s || hi_lat || hi_sat)
        d.actionL = Action::Throttle;
    else if (lo_bw_s && lo_lat && lo_sat)
        d.actionL = Action::Boost;
    else
        d.actionL = Action::Nop;

    return d;
}

KelpController::KelpController(const Bindings &bindings,
                               AppProfile profile,
                               const ConfigLimits &limits,
                               const ResourceState &initial)
    : Controller(bindings), profile_(std::move(profile)),
      configurator_(limits), state_(initial),
      counters_(bindings.node->memSystem())
{
    KELP_ASSERT(bind_.cpuGroup != sim::invalidId,
                "Kelp needs a low-priority group to manage");
    enforce();
}

void
KelpController::sample(sim::Time now)
{
    (void)now;
    hal::CounterSample s = counters_.sample(bind_.socket);

    KelpMeasurements m;
    m.bwS = s.socketBw;
    // Under subdomains the latency that matters to the accelerated
    // task is its own subdomain's: the saturated low-priority
    // controller would otherwise dominate the socket average and
    // block backfilling forever.
    m.latS = bind_.node->sncEnabled() ? s.subdomainLat[0]
                                      : s.memLatency;
    m.satS = s.saturation;
    // The high-priority subdomain is subdomain 0 by convention (the
    // ML task is bound there at placement time).
    m.bwH = s.subdomainBw[0];

    lastDecision_ = decideActions(profile_, m);
    configurator_.configHiPriority(lastDecision_.actionH, state_);
    configurator_.configLoPriority(lastDecision_.actionL, state_);
    enforce();
}

void
KelpController::enforce()
{
    auto &knobs = bind_.node->knobs();
    // Low-priority cores: coreNumL in the low-priority subdomain (1),
    // coreNumH backfilled into the high-priority subdomain (0).
    knobs.setCores(bind_.cpuGroup, bind_.socket, 1, state_.coreNumL);
    knobs.setCores(bind_.cpuGroup, bind_.socket, 0, state_.coreNumH);
    // Backfilled cores keep their prefetchers; the managed count
    // applies to the low-priority subdomain's cores.
    knobs.setPrefetchersEnabled(
        bind_.cpuGroup, state_.prefetcherNumL + state_.coreNumH);
}

ControllerParams
KelpController::params() const
{
    return {state_.coreNumL, state_.prefetcherNumL, state_.coreNumH};
}

} // namespace runtime
} // namespace kelp
