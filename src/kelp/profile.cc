#include "kelp/profile.hh"

namespace kelp {
namespace runtime {

AppProfile
defaultProfile(wl::MlWorkload workload, const node::PlatformSpec &platform)
{
    const double peak = platform.mem.socket.peakBw;
    const double sub_peak = peak / 2.0;
    const double base_lat = platform.mem.socket.baseLatency;

    AppProfile p;
    p.workload = wl::mlName(workload);

    // Conservative socket-level throttling points: well below the
    // distress threshold (0.80 of peak) so low-priority tasks are
    // throttled before global backpressure kicks in.
    p.socketBw = {0.70 * peak, 0.45 * peak};
    p.latency = {1.60 * base_lat, 1.30 * base_lat};
    p.saturation = {0.10, 0.02};
    if (workload == wl::MlWorkload::Cnn3) {
        // The parameter server saturates its own subdomain during
        // aggregation phases; the profile must not blame colocated
        // tasks for the ML task's own bursts (Section IV-D: profiles
        // are per-application).
        p.saturation = {0.30, 0.12};
        p.latency = {1.90 * base_lat, 1.50 * base_lat};
    }

    // High-priority-subdomain bandwidth watermark: leave headroom
    // above the ML task's own appetite before counting backfilled
    // traffic as interference.
    switch (workload) {
      case wl::MlWorkload::Rnn1:
      case wl::MlWorkload::Cnn1:
        // Low host-memory-intensity workloads (Table I): generous
        // backfill headroom before subdomain traffic counts as
        // interference.
        p.hiSubBw = {0.60 * sub_peak, 0.40 * sub_peak};
        break;
      case wl::MlWorkload::Cnn2:
        // Medium intensity: the in-feed itself uses a fair share, so
        // the watermarks sit above its own appetite.
        p.hiSubBw = {0.75 * sub_peak, 0.55 * sub_peak};
        break;
      case wl::MlWorkload::Cnn3:
        // High intensity: the parameter server's aggregation bursts
        // already approach the subdomain's capacity, so backfill
        // headroom is slim -- the watermarks sit just above the ps
        // phase's own time-averaged bandwidth.
        p.hiSubBw = {0.55 * sub_peak, 0.35 * sub_peak};
        break;
    }
    return p;
}

AppProfile
coreThrottleProfile(wl::MlWorkload workload,
                    const node::PlatformSpec &platform)
{
    AppProfile p = defaultProfile(workload, platform);
    // Utilization-oriented targets: throttle only when the socket is
    // visibly saturated; recover aggressively. This reproduces prior
    // work's behaviour of leaving more low-priority capacity online
    // at the cost of weaker ML protection (Figures 9/10/13).
    const double peak = platform.mem.socket.peakBw;
    const double base_lat = platform.mem.socket.baseLatency;
    p.socketBw = {0.72 * peak, 0.52 * peak};
    p.latency = {1.65 * base_lat, 1.35 * base_lat};
    return p;
}

} // namespace runtime
} // namespace kelp
