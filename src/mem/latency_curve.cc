#include "mem/latency_curve.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace mem {

namespace {

/** Convex queueing term: gentle below ~50% load, exploding toward
 * saturation (bandwidth-latency hockey stick). */
double
queueTerm(double u)
{
    // Past ~97% the queues are bounded in practice (finite MSHRs and
    // controller queues); clamp so inflation saturates rather than
    // diverging.
    u = std::clamp(u, 0.0, 0.95);
    return u * u / (1.0 - u);
}

} // namespace

LatencyCurve::LatencyCurve(sim::Nanoseconds base_ns,
                           double inflation_at_95)
    : base_(base_ns)
{
    KELP_ASSERT(base_ns > 0.0, "latency must be positive");
    KELP_ASSERT(inflation_at_95 >= 1.0, "inflation must be >= 1");
    alpha_ = (inflation_at_95 - 1.0) / queueTerm(0.95);
}

double
LatencyCurve::inflation(double utilization) const
{
    return 1.0 + alpha_ * queueTerm(utilization);
}

sim::Nanoseconds
LatencyCurve::at(double utilization) const
{
    return base_ * inflation(utilization);
}

} // namespace mem
} // namespace kelp
