/**
 * @file
 * Cross-socket interconnect (UPI/QPI) model.
 *
 * Remote memory flows traverse this link in addition to the remote
 * controller. Beyond its own bandwidth cap and hop latency, link load
 * taxes *local* traffic on both sockets through coherence overhead
 * (snoop responses slow down while the link is busy). The paper
 * observes this effect is strongest on the Cloud TPU platform
 * (Section VI-A, Figures 15 and 16); the coherence-tax coefficient is
 * a platform parameter.
 */

#ifndef KELP_MEM_UPI_HH
#define KELP_MEM_UPI_HH

#include "sim/stats.hh"
#include "sim/types.hh"

namespace kelp {
namespace mem {

/** A bidirectional socket-to-socket link (modeled as one shared
 * capacity, which is conservative for symmetric traffic). */
class UpiLink
{
  public:
    /**
     * @param capacity Link bandwidth, GiB/s.
     * @param hop_latency Added latency per remote access, ns.
     * @param coherence_tax Latency multiplier-at-full-load applied to
     *        all memory accesses on the attached sockets; 0.5 means
     *        +50% latency when the link saturates.
     */
    explicit UpiLink(sim::GiBps capacity = 40.0,
                     sim::Nanoseconds hop_latency = 70.0,
                     double coherence_tax = 0.5);

    /** Clear per-tick demand state. */
    void beginTick();

    /** Register a remote flow's demand for this tick. */
    void addDemand(sim::GiBps demand);

    /** Finalize this tick's utilization. */
    void resolve(sim::Time dt);

    /**
     * Advance the bandwidth integral for one tick whose link demand
     * is known to equal the last resolve()'s (MemSystem resolve
     * cache); utilization and grant fraction are already correct.
     */
    void accumulateCached(sim::Time dt);

    /** Advance the bandwidth integral by n frozen-demand ticks
     * (MemSystem fast-forward); bit-identical to n cached ticks. */
    void fastForward(uint64_t n, sim::Time dt);

    /** Utilization in [0, 1] from the last resolve(). */
    double utilization() const { return utilization_; }

    /**
     * Congestion-effective utilization: protocol and credit overheads
     * congest the link below its nominal data bandwidth, so queueing
     * effects (distress, coherence tax) key off demand relative to
     * ~80% of nominal capacity.
     */
    double congestionUtilization() const;

    /** Fraction of demanded link bandwidth actually granted. */
    double grantFraction() const { return grantFraction_; }

    /** Latency added to remote accesses crossing the link (ns). */
    sim::Nanoseconds remoteLatency() const;

    /**
     * Multiplier (>= 1) applied to the latency of *all* memory
     * accesses on the attached sockets: the coherence tax.
     */
    double coherenceInflation() const;

    sim::GiBps capacity() const { return capacity_; }

    /** Time-integrated delivered link bandwidth. */
    const sim::IntervalAccumulator &bwAccum() const { return bwAccum_; }

  private:
    sim::GiBps capacity_;
    sim::Nanoseconds hopLatency_;
    double coherenceTax_;

    sim::GiBps demand_ = 0.0;
    double utilization_ = 0.0;
    double grantFraction_ = 1.0;
    sim::IntervalAccumulator bwAccum_;
};

} // namespace mem
} // namespace kelp

#endif // KELP_MEM_UPI_HH
