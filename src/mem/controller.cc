#include "mem/controller.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace mem {

Controller::Controller(sim::McId id, sim::SocketId socket,
                       sim::GiBps capacity, LatencyCurve curve)
    : id_(id), socket_(socket), capacity_(capacity), curve_(curve),
      latency_(curve.base())
{
    KELP_ASSERT(capacity > 0.0, "controller capacity must be positive");
}

void
Controller::beginTick()
{
    demands_.clear();
    grants_.clear();
}

void
Controller::addDemand(int requestor, sim::GiBps demand,
                      bool high_priority, sim::Nanoseconds latency_extra)
{
    KELP_ASSERT(demand >= 0.0, "negative bandwidth demand");
    if (demand <= 0.0)
        return;
    demands_.push_back({requestor, demand, high_priority, latency_extra});
}

void
Controller::resolve(sim::Time dt)
{
    sim::GiBps total = 0.0;
    for (const auto &d : demands_)
        total += d.demand;

    // Demand-based utilization drives latency: queues form from what
    // is *requested*, even though delivery is capped at capacity.
    utilization_ = std::min(total / capacity_, 1.0);
    latency_ = curve_.at(utilization_);

    if (arbitration_ == Arbitration::Fair) {
        double frac = total <= capacity_ ? 1.0 : capacity_ / total;
        delivered_ = 0.0;
        for (const auto &d : demands_) {
            Grant &g = grants_[d.requestor];
            double given = d.demand * frac;
            // A requestor may submit several flows to one controller
            // (e.g., demand + prefetch); merge grants by demand
            // weight.
            double w_old = g.delivered;
            g.delivered += given;
            g.fraction = frac;
            if (g.delivered > 0.0) {
                g.latency = (g.latency * w_old +
                             (latency_ + d.latencyExtra) * given) /
                            g.delivered;
            }
            delivered_ += given;
        }
    } else {
        // RequestPriority: serve high-priority demands at (almost)
        // unloaded latency first; low-priority flows split what is
        // left and absorb all the queueing.
        sim::GiBps hi_total = 0.0, lo_total = 0.0;
        for (const auto &d : demands_)
            (d.highPriority ? hi_total : lo_total) += d.demand;

        double hi_frac = hi_total <= capacity_ ?
            1.0 : capacity_ / hi_total;
        sim::GiBps remaining =
            std::max(0.0, capacity_ - hi_total * hi_frac);
        double lo_frac = lo_total <= remaining ?
            1.0 : (lo_total > 0.0 ? remaining / lo_total : 1.0);

        // High-priority requests bypass the queue; they only see the
        // load their own class generates.
        double hi_util = std::min(hi_total / capacity_, 1.0);
        sim::Nanoseconds hi_lat = curve_.at(hi_util);

        delivered_ = 0.0;
        for (const auto &d : demands_) {
            Grant &g = grants_[d.requestor];
            double frac = d.highPriority ? hi_frac : lo_frac;
            sim::Nanoseconds lat =
                (d.highPriority ? hi_lat : latency_) + d.latencyExtra;
            double given = d.demand * frac;
            double w_old = g.delivered;
            g.delivered += given;
            g.fraction = frac;
            if (g.delivered > 0.0) {
                g.latency =
                    (g.latency * w_old + lat * given) / g.delivered;
            }
            delivered_ += given;
        }
    }

    bwAccum_.accumulate(delivered_, dt);
    utilAccum_.accumulate(utilization_, dt);
    latAccum_.accumulate(latency_ * std::max(delivered_, 1e-9), dt);
}

void
Controller::accumulateCached(sim::Time dt)
{
    // Must mirror the accumulate tail of resolve() exactly.
    bwAccum_.accumulate(delivered_, dt);
    utilAccum_.accumulate(utilization_, dt);
    latAccum_.accumulate(latency_ * std::max(delivered_, 1e-9), dt);
}

Grant
Controller::grant(int requestor) const
{
    auto it = grants_.find(requestor);
    if (it == grants_.end())
        return Grant{0.0, 1.0, latency_};
    return it->second;
}

} // namespace mem
} // namespace kelp
