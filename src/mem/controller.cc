#include "mem/controller.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace mem {

Controller::Controller(sim::McId id, sim::SocketId socket,
                       sim::GiBps capacity, LatencyCurve curve)
    : id_(id), socket_(socket), capacity_(capacity), curve_(curve),
      latency_(curve.base())
{
    KELP_ASSERT(capacity > 0.0, "controller capacity must be positive");
}

void
Controller::beginTick()
{
    // Keep last tick's demand sequence around so addDemand() can
    // detect, flow by flow, whether this tick registers the exact
    // same set; grants_ stays valid so a hit can skip arbitration.
    demands_.swap(prevDemands_);
    demands_.clear();
    demandsDirty_ = false;
}

void
Controller::addDemand(int requestor, sim::GiBps demand,
                      bool high_priority, sim::Nanoseconds latency_extra)
{
    KELP_ASSERT(demand >= 0.0, "negative bandwidth demand");
    if (demand <= 0.0)
        return;
    size_t i = demands_.size();
    if (i >= prevDemands_.size()) {
        demandsDirty_ = true;
    } else {
        const Demand &p = prevDemands_[i];
        if (p.requestor != requestor || p.demand != demand ||
            p.highPriority != high_priority ||
            p.latencyExtra != latency_extra) {
            demandsDirty_ = true;
        }
    }
    demands_.push_back({requestor, demand, high_priority, latency_extra});
}

void
Controller::resolve(sim::Time dt)
{
    bool hit = cacheValid_ && !demandsDirty_ &&
               demands_.size() == prevDemands_.size();
    if (hit) {
        ++cacheHits_;
#ifndef NDEBUG
        // Cross-check: arbitration over an identical demand set must
        // reproduce the cached outputs bitwise.
        double util = utilization_;
        sim::Nanoseconds lat = latency_;
        sim::GiBps del = delivered_;
        auto saved_grants = grants_;
        arbitrate();
        KELP_INVARIANT(utilization_ == util && latency_ == lat &&
                           delivered_ == del,
                       "controller demand-cache hit diverged from "
                       "full arbitration (mc ", id_, ")");
        for (const auto &[req, g] : saved_grants) {
            const Grant cur = grant(req);
            KELP_INVARIANT(cur.delivered == g.delivered &&
                               cur.fraction == g.fraction &&
                               cur.latency == g.latency,
                           "controller demand-cache grant diverged "
                           "(mc ", id_, ", requestor ", req, ")");
        }
#endif
    } else {
        ++cacheMisses_;
        arbitrate();
        cacheValid_ = true;
    }

    bwAccum_.accumulate(delivered_, dt);
    utilAccum_.accumulate(utilization_, dt);
    latAccum_.accumulate(latency_ * std::max(delivered_, 1e-9), dt);
}

void
Controller::arbitrate()
{
    grants_.clear();
    sim::GiBps total = 0.0;
    for (const auto &d : demands_)
        total += d.demand;

    // Demand-based utilization drives latency: queues form from what
    // is *requested*, even though delivery is capped at capacity.
    utilization_ = std::min(total / capacity_, 1.0);
    latency_ = curve_.at(utilization_);

    if (arbitration_ == Arbitration::Fair) {
        double frac = total <= capacity_ ? 1.0 : capacity_ / total;
        delivered_ = 0.0;
        for (const auto &d : demands_) {
            Grant &g = grants_[d.requestor];
            double given = d.demand * frac;
            // A requestor may submit several flows to one controller
            // (e.g., demand + prefetch); merge grants by demand
            // weight.
            double w_old = g.delivered;
            g.delivered += given;
            g.fraction = frac;
            if (g.delivered > 0.0) {
                g.latency = (g.latency * w_old +
                             (latency_ + d.latencyExtra) * given) /
                            g.delivered;
            }
            delivered_ += given;
        }
    } else {
        // RequestPriority: serve high-priority demands at (almost)
        // unloaded latency first; low-priority flows split what is
        // left and absorb all the queueing.
        sim::GiBps hi_total = 0.0, lo_total = 0.0;
        for (const auto &d : demands_)
            (d.highPriority ? hi_total : lo_total) += d.demand;

        double hi_frac = hi_total <= capacity_ ?
            1.0 : capacity_ / hi_total;
        sim::GiBps remaining =
            std::max(0.0, capacity_ - hi_total * hi_frac);
        double lo_frac = lo_total <= remaining ?
            1.0 : (lo_total > 0.0 ? remaining / lo_total : 1.0);

        // High-priority requests bypass the queue; they only see the
        // load their own class generates.
        double hi_util = std::min(hi_total / capacity_, 1.0);
        sim::Nanoseconds hi_lat = curve_.at(hi_util);

        delivered_ = 0.0;
        for (const auto &d : demands_) {
            Grant &g = grants_[d.requestor];
            double frac = d.highPriority ? hi_frac : lo_frac;
            sim::Nanoseconds lat =
                (d.highPriority ? hi_lat : latency_) + d.latencyExtra;
            double given = d.demand * frac;
            double w_old = g.delivered;
            g.delivered += given;
            g.fraction = frac;
            if (g.delivered > 0.0) {
                g.latency =
                    (g.latency * w_old + lat * given) / g.delivered;
            }
            delivered_ += given;
        }
    }
}

void
Controller::accumulateCached(sim::Time dt)
{
    // Must mirror the accumulate tail of resolve() exactly.
    bwAccum_.accumulate(delivered_, dt);
    utilAccum_.accumulate(utilization_, dt);
    latAccum_.accumulate(latency_ * std::max(delivered_, 1e-9), dt);
}

void
Controller::fastForward(uint64_t n, sim::Time dt)
{
    // Per-accumulator op chains are independent, so repeating each
    // one n times matches n per-tick rounds bit for bit.
    bwAccum_.accumulateRepeat(delivered_, dt, n);
    utilAccum_.accumulateRepeat(utilization_, dt, n);
    latAccum_.accumulateRepeat(latency_ * std::max(delivered_, 1e-9),
                               dt, n);
}

Grant
Controller::grant(int requestor) const
{
    auto it = grants_.find(requestor);
    if (it == grants_.end())
        return Grant{0.0, 1.0, latency_};
    return it->second;
}

} // namespace mem
} // namespace kelp
