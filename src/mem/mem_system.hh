/**
 * @file
 * Node-level memory system: per-socket controller pairs, NUMA
 * subdomain routing, shared backpressure, and the cross-socket link.
 *
 * Each socket owns two memory controllers (two halves of its channel
 * population). With NUMA subdomains (SNC/CoD) *disabled*, every flow
 * interleaves 50/50 across both controllers of its home socket --
 * full socket bandwidth, fully shared. With subdomains *enabled*,
 * a flow is routed to the controller of its home subdomain only, and
 * same-subdomain accesses enjoy a small latency discount while
 * cross-subdomain accesses pay a small premium (the SNC side effects
 * the paper measures in Section IV-A).
 *
 * Per tick the node submits flows, calls resolve(), and reads grants,
 * throttles, and counters back.
 */

#ifndef KELP_MEM_MEM_SYSTEM_HH
#define KELP_MEM_MEM_SYSTEM_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/backpressure.hh"
#include "mem/controller.hh"
#include "mem/upi.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace kelp {
namespace mem {

/** Memory-related parameters of one socket. */
struct SocketMemConfig
{
    /** Total peak socket bandwidth (both controllers), GiB/s. */
    sim::GiBps peakBw = 76.8;

    /** Unloaded memory latency, ns. */
    sim::Nanoseconds baseLatency = 90.0;

    /** Latency multiplier at 95% controller utilization. */
    double inflationAt95 = 4.0;

    /** Controller utilization where the distress signal asserts. */
    double distressThreshold = 0.80;

    /** Max issue-rate fraction removed by socket-wide throttling. */
    double throttleStrength = 0.45;

    /** Latency factor for same-subdomain accesses under SNC (< 1). */
    double sncLocalLatencyFactor = 0.92;

    /** Latency factor for cross-subdomain accesses under SNC (> 1). */
    double sncRemoteLatencyFactor = 1.10;
};

/** Parameters of the full memory system. */
struct MemSystemConfig
{
    int numSockets = 2;
    SocketMemConfig socket;

    /** Cross-socket link bandwidth, GiB/s. */
    sim::GiBps upiCapacity = 40.0;

    /** Added latency per remote hop, ns. */
    sim::Nanoseconds upiHopLatency = 70.0;

    /** Coherence latency tax at full link load (platform knob; the
     * Cloud TPU platform's is the highest, per Section VI-A). */
    double upiCoherenceTax = 0.5;

    /**
     * Controller-occupancy overhead of remote requests: a request
     * arriving over the link holds the home controller longer
     * (coherence round-trips, open-page misses), so remote traffic
     * consumes this multiple of its data bandwidth at the home
     * controller.
     */
    double remoteMcOverhead = 1.5;
};

/** Where a flow originates and where its data lives. */
struct Route
{
    sim::SocketId reqSocket = 0;
    sim::SubdomainId reqSub = 0;
    sim::SocketId homeSocket = 0;
    sim::SubdomainId homeSub = 0;
};

/** Aggregated per-socket counters exposed to the HAL. */
struct SocketCounters
{
    sim::IntervalAccumulator bw;
    sim::IntervalAccumulator latency;
    std::array<sim::IntervalAccumulator, 2> subdomainBw;
    std::array<sim::IntervalAccumulator, 2> subdomainLat;
};

/**
 * The complete host memory system of a node.
 */
class MemSystem
{
  public:
    explicit MemSystem(const MemSystemConfig &cfg);

    int numSockets() const { return static_cast<int>(sockets_.size()); }

    /** Enable/disable NUMA subdomains (SNC/CoD) on all sockets. */
    void setSncEnabled(bool enabled)
    {
        sncEnabled_ = enabled;
        cacheValid_ = false;
        noteChange();
    }
    bool sncEnabled() const { return sncEnabled_; }

    /** Select controller arbitration for the what-if ablation. */
    void setArbitration(Arbitration mode);

    /** Clear per-tick state; call before submitting flows. */
    void beginTick();

    /**
     * Submit one flow's bandwidth demand for this tick.
     *
     * @param requestor Task identifier.
     * @param route Requesting/home placement of the flow.
     * @param demand Requested bandwidth, GiB/s.
     * @param high_priority Request-priority class (used only under
     *        RequestPriority arbitration).
     */
    void addFlow(int requestor, const Route &route, sim::GiBps demand,
                 bool high_priority = false);

    /** Resolve all flows for a tick of length dt. */
    void resolve(sim::Time dt);

    /** Aggregated grant for a requestor across all its flows. */
    Grant grant(int requestor) const;

    /**
     * Core issue-rate multiplier for a socket, reflecting the last
     * resolve(). Read it *before* submitting this tick's flows to get
     * the physical one-tick signal-propagation delay.
     */
    double coreThrottle(sim::SocketId s) const;

    /** Instantaneous distress duty cycle for a socket. */
    double saturation(sim::SocketId s) const;

    /** Effective unloaded latency (for normalizing stall factors). */
    sim::Nanoseconds baseLatency() const { return cfg_.socket.baseLatency; }

    /** Utilization of a specific controller (testing/inspection). */
    const Controller &controller(sim::SocketId s,
                                 sim::SubdomainId d) const;

    const UpiLink &upi() const { return upi_; }

    /** Per-socket counter block (bandwidth, latency, subdomain BW). */
    const SocketCounters &counters(sim::SocketId s) const;

    /** FAST_ASSERTED-equivalent accumulator for a socket. */
    const sim::IntervalAccumulator &fastAsserted(sim::SocketId s) const;

    const MemSystemConfig &config() const { return cfg_; }

    /**
     * Resolve caching: when a tick's submitted flows are identical to
     * the previous tick's (same requestors, routes, demands, priority
     * bits, in the same order -- the common case, since task demand
     * only moves on phase or knob changes), resolve() reuses the
     * previous grants and only advances the time-integrated counters.
     * Debug builds re-run the full computation on every hit and
     * KELP_INVARIANT the cached grants against it.
     */
    void setResolveCacheEnabled(bool enabled)
    {
        cacheEnabled_ = enabled;
        cacheValid_ = false;
        noteChange();
    }
    uint64_t resolveCacheHits() const { return cacheHits_; }
    uint64_t resolveCacheMisses() const { return cacheMisses_; }

    /** True when the most recent resolve() was a cache hit: every
     * grant, throttle, and instantaneous signal repeated the previous
     * tick's bit for bit. The node's quiescence detector keys off
     * this. */
    bool lastResolveHit() const { return lastHit_; }

    /** Controller-level arbitration-skip counters, summed. */
    uint64_t mcCacheHits() const;
    uint64_t mcCacheMisses() const;

    /** Ticks consumed through fastForward(). */
    uint64_t fastTicks() const { return fastTicks_; }

    /**
     * Advance the whole memory system by n ticks during which the
     * registered flow set is frozen (node fast-forward). Equivalent,
     * bit for bit, to n resolve() cache hits: only time integrals
     * move; grants, utilizations, latencies, and throttles are fixed
     * points. Callable only when the previous resolve() hit.
     */
    void fastForward(uint64_t n, sim::Time dt);

    /** Hook fired on every configuration mutation (SNC, arbitration,
     * cache enablement); the node uses it to leave the fast path. */
    void setChangeHook(std::function<void()> hook)
    {
        changeHook_ = std::move(hook);
    }

  private:
    void noteChange()
    {
        if (changeHook_)
            changeHook_();
    }

    struct Flow
    {
        int requestor;
        Route route;
        sim::GiBps demand;
        bool highPriority;
    };

    struct SocketState
    {
        std::array<std::unique_ptr<Controller>, 2> mc;
        std::unique_ptr<BackpressureUnit> backpressure;
        SocketCounters counters;
    };

    /** Latency factor from SNC locality for a flow. */
    double sncFactor(const Route &route) const;

    /** The pre-cache resolve pipeline (always correct, never reuses
     * state). Clears and re-registers controller/link demand. */
    void resolveFull(sim::Time dt);

    /** Counter-only advance for a tick identical to the last one. */
    void resolveCached(sim::Time dt);

    /** Steps shared by both paths: backpressure + socket counters. */
    void updateBackpressure(sim::Time dt);
    void accumulateSocketCounters(sim::Time dt);

    MemSystemConfig cfg_;
    bool sncEnabled_ = false;
    std::vector<SocketState> sockets_;
    UpiLink upi_;
    std::vector<Flow> flows_;
    std::unordered_map<int, Grant> grants_;

    /** Resolve-cache state (see setResolveCacheEnabled). */
    std::vector<Flow> prevFlows_;
    bool cacheEnabled_ = true;
    bool cacheValid_ = false;
    bool flowsDirty_ = false;
    sim::Time prevDt_ = -1.0;
    uint64_t cacheHits_ = 0;
    uint64_t cacheMisses_ = 0;
    bool lastHit_ = false;
    uint64_t fastTicks_ = 0;
    std::function<void()> changeHook_;
};

} // namespace mem
} // namespace kelp

#endif // KELP_MEM_MEM_SYSTEM_HH
