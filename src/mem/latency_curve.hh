/**
 * @file
 * Latency-load curve for DRAM controllers.
 *
 * Memory access latency is flat at low utilization and grows convexly
 * as the controller approaches saturation (classic bandwidth-latency
 * "hockey stick"). The curve is parameterized by the unloaded latency
 * and the inflation factor at 95% utilization, which is the landmark
 * the calibration constants are written against.
 */

#ifndef KELP_MEM_LATENCY_CURVE_HH
#define KELP_MEM_LATENCY_CURVE_HH

#include "sim/types.hh"

namespace kelp {
namespace mem {

/** Maps controller utilization in [0, 1] to effective latency. */
class LatencyCurve
{
  public:
    /**
     * @param base_ns Unloaded (idle-controller) latency.
     * @param inflation_at_95 Latency multiplier when utilization hits
     *        0.95 (e.g., 4.0 means 4x the unloaded latency).
     */
    explicit LatencyCurve(sim::Nanoseconds base_ns = 90.0,
                          double inflation_at_95 = 4.0);

    /** Effective latency at the given utilization. */
    sim::Nanoseconds at(double utilization) const;

    /** Latency multiplier (>= 1) at the given utilization. */
    double inflation(double utilization) const;

    /** Unloaded latency. */
    sim::Nanoseconds base() const { return base_; }

  private:
    sim::Nanoseconds base_;
    double alpha_;
};

} // namespace mem
} // namespace kelp

#endif // KELP_MEM_LATENCY_CURVE_HH
