/**
 * @file
 * Memory controller bandwidth/latency model.
 *
 * Every tick, requestors (tasks) register bandwidth demands; resolve()
 * computes each requestor's delivered bandwidth and the controller's
 * effective latency from the latency-load curve.
 *
 * Two arbitration modes are supported:
 *  - Fair: proportional sharing when oversubscribed. This models the
 *    FR-FCFS-ish behaviour of real controllers that the paper works
 *    around, and is the mode used in all paper-reproduction runs.
 *  - RequestPriority: high-priority demands are served first and see
 *    near-unloaded latency; low-priority flows share the remainder.
 *    This is the "fine-grained memory isolation" hardware that
 *    Section VI-D of the paper calls for, used by the what-if
 *    ablation to estimate its headroom.
 */

#ifndef KELP_MEM_CONTROLLER_HH
#define KELP_MEM_CONTROLLER_HH

#include <unordered_map>
#include <vector>

#include "mem/latency_curve.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace kelp {
namespace mem {

/** Arbitration policy for an oversubscribed controller. */
enum class Arbitration { Fair, RequestPriority };

/** Per-requestor resolution result for one tick. */
struct Grant
{
    /** Bandwidth actually delivered (GiB/s). */
    sim::GiBps delivered = 0.0;

    /** delivered / demanded, in [0, 1]; 1 when demand was 0. */
    double fraction = 1.0;

    /** Effective access latency this requestor observed (ns). */
    sim::Nanoseconds latency = 0.0;
};

/**
 * One memory controller (one NUMA subdomain's worth of channels when
 * subdomains are enabled; half of an interleaved socket otherwise).
 */
class Controller
{
  public:
    /**
     * @param id Node-unique controller id.
     * @param socket Socket this controller belongs to.
     * @param capacity Peak deliverable bandwidth, GiB/s.
     * @param curve Latency-load curve.
     */
    Controller(sim::McId id, sim::SocketId socket, sim::GiBps capacity,
               LatencyCurve curve);

    sim::McId id() const { return id_; }
    sim::SocketId socket() const { return socket_; }
    sim::GiBps capacity() const { return capacity_; }

    /** Select the arbitration policy (default Fair). */
    void setArbitration(Arbitration mode) { arbitration_ = mode; }
    Arbitration arbitration() const { return arbitration_; }

    /** Clear per-tick demand state. */
    void beginTick();

    /**
     * Register demand for this tick.
     *
     * @param requestor Task identifier.
     * @param demand Requested bandwidth, GiB/s.
     * @param high_priority Only meaningful under RequestPriority.
     * @param latency_extra Additional per-request latency (e.g., the
     *        UPI hop for remote flows), added to this requestor's
     *        grant latency.
     */
    void addDemand(int requestor, sim::GiBps demand, bool high_priority,
                   sim::Nanoseconds latency_extra);

    /** Resolve all registered demands for a tick of length dt. */
    void resolve(sim::Time dt);

    /**
     * Advance the time-integrated counters by one tick whose demand
     * set is known to be identical to the last resolve()'s, without
     * re-running arbitration. Caller (MemSystem's resolve cache)
     * guarantees demands were neither cleared nor re-registered since.
     */
    void accumulateCached(sim::Time dt);

    /** Utilization in [0, 1] from the last resolve(). */
    double utilization() const { return utilization_; }

    /** Controller-level effective latency from the last resolve(). */
    sim::Nanoseconds latency() const { return latency_; }

    /** Grant for a requestor (zero Grant if it had no demand). */
    Grant grant(int requestor) const;

    /** Total delivered bandwidth from the last resolve(). */
    sim::GiBps totalDelivered() const { return delivered_; }

    /** Time-integrated delivered bandwidth (for counters). */
    const sim::IntervalAccumulator &bwAccum() const { return bwAccum_; }

    /** Time-integrated utilization. */
    const sim::IntervalAccumulator &utilAccum() const
    {
        return utilAccum_;
    }

    /** Delivered-bandwidth-weighted latency integral. */
    const sim::IntervalAccumulator &latAccum() const
    {
        return latAccum_;
    }

  private:
    struct Demand
    {
        int requestor;
        sim::GiBps demand;
        bool highPriority;
        sim::Nanoseconds latencyExtra;
    };

    sim::McId id_;
    sim::SocketId socket_;
    sim::GiBps capacity_;
    LatencyCurve curve_;
    Arbitration arbitration_ = Arbitration::Fair;

    std::vector<Demand> demands_;
    std::unordered_map<int, Grant> grants_;
    double utilization_ = 0.0;
    sim::Nanoseconds latency_;
    sim::GiBps delivered_ = 0.0;

    sim::IntervalAccumulator bwAccum_;
    sim::IntervalAccumulator utilAccum_;
    sim::IntervalAccumulator latAccum_;
};

} // namespace mem
} // namespace kelp

#endif // KELP_MEM_CONTROLLER_HH
