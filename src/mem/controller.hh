/**
 * @file
 * Memory controller bandwidth/latency model.
 *
 * Every tick, requestors (tasks) register bandwidth demands; resolve()
 * computes each requestor's delivered bandwidth and the controller's
 * effective latency from the latency-load curve.
 *
 * Two arbitration modes are supported:
 *  - Fair: proportional sharing when oversubscribed. This models the
 *    FR-FCFS-ish behaviour of real controllers that the paper works
 *    around, and is the mode used in all paper-reproduction runs.
 *  - RequestPriority: high-priority demands are served first and see
 *    near-unloaded latency; low-priority flows share the remainder.
 *    This is the "fine-grained memory isolation" hardware that
 *    Section VI-D of the paper calls for, used by the what-if
 *    ablation to estimate its headroom.
 */

#ifndef KELP_MEM_CONTROLLER_HH
#define KELP_MEM_CONTROLLER_HH

#include <unordered_map>
#include <vector>

#include "mem/latency_curve.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace kelp {
namespace mem {

/** Arbitration policy for an oversubscribed controller. */
enum class Arbitration { Fair, RequestPriority };

/** Per-requestor resolution result for one tick. */
struct Grant
{
    /** Bandwidth actually delivered (GiB/s). */
    sim::GiBps delivered = 0.0;

    /** delivered / demanded, in [0, 1]; 1 when demand was 0. */
    double fraction = 1.0;

    /** Effective access latency this requestor observed (ns). */
    sim::Nanoseconds latency = 0.0;
};

/**
 * One memory controller (one NUMA subdomain's worth of channels when
 * subdomains are enabled; half of an interleaved socket otherwise).
 */
class Controller
{
  public:
    /**
     * @param id Node-unique controller id.
     * @param socket Socket this controller belongs to.
     * @param capacity Peak deliverable bandwidth, GiB/s.
     * @param curve Latency-load curve.
     */
    Controller(sim::McId id, sim::SocketId socket, sim::GiBps capacity,
               LatencyCurve curve);

    sim::McId id() const { return id_; }
    sim::SocketId socket() const { return socket_; }
    sim::GiBps capacity() const { return capacity_; }

    /** Select the arbitration policy (default Fair). */
    void
    setArbitration(Arbitration mode)
    {
        arbitration_ = mode;
        cacheValid_ = false;
    }
    Arbitration arbitration() const { return arbitration_; }

    /** Clear per-tick demand state. */
    void beginTick();

    /**
     * Register demand for this tick.
     *
     * @param requestor Task identifier.
     * @param demand Requested bandwidth, GiB/s.
     * @param high_priority Only meaningful under RequestPriority.
     * @param latency_extra Additional per-request latency (e.g., the
     *        UPI hop for remote flows), added to this requestor's
     *        grant latency.
     */
    void addDemand(int requestor, sim::GiBps demand, bool high_priority,
                   sim::Nanoseconds latency_extra);

    /**
     * Resolve all registered demands for a tick of length dt.
     *
     * Incremental: when this tick's addDemand() sequence matched the
     * previous tick's exactly (same requestors, demands, priorities,
     * and latency extras, in the same order), arbitration is skipped
     * and only the time-integrated counters advance -- the grants,
     * utilization, and latency are unchanged by construction.
     * Arbitration is dt-independent, so the hit test does not look
     * at dt. Debug builds re-run arbitration on every hit and check
     * the cached outputs bitwise.
     */
    void resolve(sim::Time dt);

    /**
     * Advance the counters by n ticks of length dt with the demand
     * set known frozen (MemSystem fast-forward). Bit-identical to n
     * cache-hit resolves.
     */
    void fastForward(uint64_t n, sim::Time dt);

    /** Arbitration-skip counters for the perf breakdown. */
    uint64_t cacheHits() const { return cacheHits_; }
    uint64_t cacheMisses() const { return cacheMisses_; }

    /**
     * Advance the time-integrated counters by one tick whose demand
     * set is known to be identical to the last resolve()'s, without
     * re-running arbitration. Caller (MemSystem's resolve cache)
     * guarantees demands were neither cleared nor re-registered since.
     */
    void accumulateCached(sim::Time dt);

    /** Utilization in [0, 1] from the last resolve(). */
    double utilization() const { return utilization_; }

    /** Controller-level effective latency from the last resolve(). */
    sim::Nanoseconds latency() const { return latency_; }

    /** Grant for a requestor (zero Grant if it had no demand). */
    Grant grant(int requestor) const;

    /** Total delivered bandwidth from the last resolve(). */
    sim::GiBps totalDelivered() const { return delivered_; }

    /** Time-integrated delivered bandwidth (for counters). */
    const sim::IntervalAccumulator &bwAccum() const { return bwAccum_; }

    /** Time-integrated utilization. */
    const sim::IntervalAccumulator &utilAccum() const
    {
        return utilAccum_;
    }

    /** Delivered-bandwidth-weighted latency integral. */
    const sim::IntervalAccumulator &latAccum() const
    {
        return latAccum_;
    }

  private:
    struct Demand
    {
        int requestor;
        sim::GiBps demand;
        bool highPriority;
        sim::Nanoseconds latencyExtra;
    };

    /** Run arbitration over demands_ into the output members. Pure
     * in (demands_, arbitration_, capacity_, curve_): re-running it
     * produces bitwise-identical outputs. */
    void arbitrate();

    sim::McId id_;
    sim::SocketId socket_;
    sim::GiBps capacity_;
    LatencyCurve curve_;
    Arbitration arbitration_ = Arbitration::Fair;

    std::vector<Demand> demands_;
    std::vector<Demand> prevDemands_;
    bool demandsDirty_ = false;
    bool cacheValid_ = false;
    uint64_t cacheHits_ = 0;
    uint64_t cacheMisses_ = 0;
    std::unordered_map<int, Grant> grants_;
    double utilization_ = 0.0;
    sim::Nanoseconds latency_;
    sim::GiBps delivered_ = 0.0;

    sim::IntervalAccumulator bwAccum_;
    sim::IntervalAccumulator utilAccum_;
    sim::IntervalAccumulator latAccum_;
};

} // namespace mem
} // namespace kelp

#endif // KELP_MEM_CONTROLLER_HH
