/**
 * @file
 * Shared memory backpressure (the paper's key micro-architectural
 * observation, Section IV-B).
 *
 * When a memory controller saturates, it broadcasts a distress signal
 * to every core on the socket; cores are then throttled to protect the
 * interconnect. The signal is socket-global, so a saturated
 * low-priority subdomain throttles the high-priority subdomain's cores
 * too -- defeating the isolation NUMA subdomains should provide.
 *
 * System software can observe the signal through the uncore
 * FAST_ASSERTED event (asserted cycles / elapsed cycles); this unit
 * exposes the same counter semantics so the Kelp runtime measures
 * saturation exactly the way the paper does.
 */

#ifndef KELP_MEM_BACKPRESSURE_HH
#define KELP_MEM_BACKPRESSURE_HH

#include "sim/stats.hh"
#include "sim/types.hh"

namespace kelp {
namespace mem {

/** Per-socket distress-signal generator and core-throttle source. */
class BackpressureUnit
{
  public:
    /**
     * @param distress_threshold Controller utilization above which the
     *        distress signal asserts (fraction of peak).
     * @param throttle_strength Maximum fraction of core issue rate
     *        removed when fully saturated (0 disables throttling).
     */
    explicit BackpressureUnit(double distress_threshold = 0.80,
                              double throttle_strength = 0.45);

    /**
     * Update with this tick's worst controller utilization on the
     * socket.
     *
     * @param max_mc_utilization Highest utilization across the
     *        socket's controllers.
     * @param dt Tick length.
     */
    void update(double max_mc_utilization, sim::Time dt);

    /** Apply n identical update(max_mc_utilization, dt) rounds
     * (MemSystem fast-forward); bit-identical to the loop. */
    void fastForward(double max_mc_utilization, uint64_t n,
                     sim::Time dt);

    /**
     * Fraction of the last tick during which distress was asserted,
     * in [0, 1]. This is what FAST_ASSERTED accumulates.
     */
    double assertedFraction() const { return asserted_; }

    /**
     * Core issue-rate multiplier in (0, 1] to apply to every core on
     * the socket. 1.0 means no throttling.
     */
    double coreThrottle() const;

    /** FAST_ASSERTED-equivalent integral (asserted time). */
    const sim::IntervalAccumulator &fastAsserted() const
    {
        return fastAsserted_;
    }

    double distressThreshold() const { return threshold_; }
    double throttleStrength() const { return strength_; }

  private:
    double threshold_;
    double strength_;
    double asserted_ = 0.0;
    sim::IntervalAccumulator fastAsserted_;
};

} // namespace mem
} // namespace kelp

#endif // KELP_MEM_BACKPRESSURE_HH
