#include "mem/mem_system.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace mem {

MemSystem::MemSystem(const MemSystemConfig &cfg)
    : cfg_(cfg),
      upi_(cfg.upiCapacity, cfg.upiHopLatency, cfg.upiCoherenceTax)
{
    KELP_ASSERT(cfg.numSockets >= 1 && cfg.numSockets <= 2,
                "MemSystem supports 1 or 2 sockets");
    sockets_.resize(cfg.numSockets);
    LatencyCurve curve(cfg.socket.baseLatency, cfg.socket.inflationAt95);
    sim::McId next_id = 0;
    for (int s = 0; s < cfg.numSockets; ++s) {
        for (int d = 0; d < 2; ++d) {
            sockets_[s].mc[d] = std::make_unique<Controller>(
                next_id++, s, cfg.socket.peakBw / 2.0, curve);
        }
        sockets_[s].backpressure = std::make_unique<BackpressureUnit>(
            cfg.socket.distressThreshold, cfg.socket.throttleStrength);
    }
}

void
MemSystem::setArbitration(Arbitration mode)
{
    for (auto &s : sockets_)
        for (auto &mc : s.mc)
            mc->setArbitration(mode);
    cacheValid_ = false;
    noteChange();
}

uint64_t
MemSystem::mcCacheHits() const
{
    uint64_t n = 0;
    for (const auto &s : sockets_)
        for (const auto &mc : s.mc)
            n += mc->cacheHits();
    return n;
}

uint64_t
MemSystem::mcCacheMisses() const
{
    uint64_t n = 0;
    for (const auto &s : sockets_)
        for (const auto &mc : s.mc)
            n += mc->cacheMisses();
    return n;
}

void
MemSystem::beginTick()
{
    // Keep last tick's flows around so addFlow can detect whether
    // this tick's demand set changed; controller/link demand is
    // cleared lazily in resolveFull, since a cache hit reuses it.
    std::swap(flows_, prevFlows_);
    flows_.clear();
    flowsDirty_ = false;
}

void
MemSystem::addFlow(int requestor, const Route &route, sim::GiBps demand,
                   bool high_priority)
{
    KELP_ASSERT(route.homeSocket >= 0 && route.homeSocket < numSockets(),
                "flow home socket out of range");
    KELP_ASSERT(route.reqSocket >= 0 && route.reqSocket < numSockets(),
                "flow request socket out of range");
    if (demand <= 0.0)
        return;
    if (!flowsDirty_) {
        const size_t i = flows_.size();
        if (i >= prevFlows_.size()) {
            flowsDirty_ = true;
        } else {
            const Flow &p = prevFlows_[i];
            // Exact comparison on purpose: any drift at all forces a
            // full recompute, so the cache can never change results.
            if (p.requestor != requestor || p.demand != demand ||
                p.highPriority != high_priority ||
                p.route.reqSocket != route.reqSocket ||
                p.route.reqSub != route.reqSub ||
                p.route.homeSocket != route.homeSocket ||
                p.route.homeSub != route.homeSub) {
                flowsDirty_ = true;
            }
        }
    }
    flows_.push_back({requestor, route, demand, high_priority});
}

double
MemSystem::sncFactor(const Route &route) const
{
    if (!sncEnabled_ || route.homeSocket != route.reqSocket)
        return 1.0;
    return route.reqSub == route.homeSub ?
        cfg_.socket.sncLocalLatencyFactor :
        cfg_.socket.sncRemoteLatencyFactor;
}

void
MemSystem::resolve(sim::Time dt)
{
    const bool hit = cacheEnabled_ && cacheValid_ && !flowsDirty_ &&
                     flows_.size() == prevFlows_.size() &&
                     dt == prevDt_;
    if (hit) {
        ++cacheHits_;
#ifndef NDEBUG
        // Debug builds pay for a full recompute on every hit and
        // prove the cache would have returned exactly that.
        const std::unordered_map<int, Grant> cached = grants_;
        resolveFull(dt);
        KELP_INVARIANT(grants_.size() == cached.size(),
                       "resolve cache drifted: requestor set changed");
        for (const auto &[req, g] : grants_) {
            auto it = cached.find(req);
            KELP_INVARIANT(it != cached.end() &&
                               it->second.delivered == g.delivered &&
                               it->second.fraction == g.fraction &&
                               it->second.latency == g.latency,
                           "resolve cache drifted for requestor ", req);
        }
#else
        resolveCached(dt);
#endif
    } else {
        ++cacheMisses_;
        resolveFull(dt);
    }
    lastHit_ = hit;
    cacheValid_ = true;
    prevDt_ = dt;
}

void
MemSystem::fastForward(uint64_t n, sim::Time dt)
{
    KELP_EXPECTS(lastHit_ && dt == prevDt_,
                 "mem fast-forward without a resolve-cache hit");
    // Equivalent to n rounds of resolveCached(dt): every
    // instantaneous signal is a fixed point while the flow set is
    // frozen, so only the time integrals advance. Each accumulator's
    // op chain is independent, so per-accumulator n-fold repeats
    // reproduce the per-tick interleaving bit for bit.
    upi_.fastForward(n, dt);
    for (auto &s : sockets_)
        for (auto &mc : s.mc)
            mc->fastForward(n, dt);
    for (auto &s : sockets_) {
        double max_util = std::max({s.mc[0]->utilization(),
                                    s.mc[1]->utilization(),
                                    upi_.congestionUtilization()});
        s.backpressure->fastForward(max_util, n, dt);
    }
    double coh = upi_.coherenceInflation();
    for (auto &s : sockets_) {
        double bw0 = s.mc[0]->totalDelivered();
        double bw1 = s.mc[1]->totalDelivered();
        KELP_INVARIANT(bw0 >= 0.0 && bw1 >= 0.0,
                       "memory controller delivered negative "
                       "bandwidth");
        KELP_INVARIANT(s.mc[0]->latency() >= 0.0 &&
                           s.mc[1]->latency() >= 0.0,
                       "memory controller reported negative latency");
        s.counters.bw.accumulateRepeat(bw0 + bw1, dt, n);
        s.counters.subdomainBw[0].accumulateRepeat(bw0, dt, n);
        s.counters.subdomainBw[1].accumulateRepeat(bw1, dt, n);
        s.counters.subdomainLat[0].accumulateRepeat(
            s.mc[0]->latency() * coh, dt, n);
        s.counters.subdomainLat[1].accumulateRepeat(
            s.mc[1]->latency() * coh, dt, n);
        double lat;
        if (bw0 + bw1 > 0.0) {
            lat = (s.mc[0]->latency() * bw0 + s.mc[1]->latency() * bw1) /
                  (bw0 + bw1);
        } else {
            lat = cfg_.socket.baseLatency;
        }
        s.counters.latency.accumulateRepeat(lat * coh, dt, n);
    }
    fastTicks_ += n;
}

void
MemSystem::resolveCached(sim::Time dt)
{
    // Demand registered with the controllers and the link is exactly
    // last tick's; grants_ and all instantaneous state are already
    // correct. Only time integrals and the (stateful) backpressure
    // duty cycle advance.
    upi_.accumulateCached(dt);
    for (auto &s : sockets_)
        for (auto &mc : s.mc)
            mc->accumulateCached(dt);
    updateBackpressure(dt);
    accumulateSocketCounters(dt);
}

void
MemSystem::resolveFull(sim::Time dt)
{
    // 0. Clear demand registered for the previous tick (deferred from
    //    beginTick so cache hits can reuse it).
    for (auto &s : sockets_)
        for (auto &mc : s.mc)
            mc->beginTick();
    upi_.beginTick();

    // 1. Cross-socket link first: remote flows are capped by the link
    //    before they ever reach the remote controller.
    for (const auto &f : flows_) {
        if (f.route.homeSocket != f.route.reqSocket)
            upi_.addDemand(f.demand);
    }
    upi_.resolve(dt);

    // 2. Route flows to controllers. Remote flows hold the home
    //    controller longer than their data volume implies.
    for (const auto &f : flows_) {
        bool remote = f.route.homeSocket != f.route.reqSocket;
        sim::Nanoseconds extra = remote ? upi_.remoteLatency() : 0.0;
        sim::GiBps demand = remote ?
            f.demand * upi_.grantFraction() * cfg_.remoteMcOverhead :
            f.demand;
        auto &home = sockets_[f.route.homeSocket];
        if (sncEnabled_) {
            home.mc[f.route.homeSub]->addDemand(
                f.requestor, demand, f.highPriority, extra);
        } else {
            // Channel interleaving spreads the flow across both
            // controllers evenly.
            home.mc[0]->addDemand(f.requestor, demand / 2.0,
                                  f.highPriority, extra);
            home.mc[1]->addDemand(f.requestor, demand / 2.0,
                                  f.highPriority, extra);
        }
    }
    for (auto &s : sockets_)
        for (auto &mc : s.mc)
            mc->resolve(dt);

    // 3. Distress signals.
    updateBackpressure(dt);

    // 4. Assemble per-requestor grants. The coherence tax from the
    //    inter-socket link inflates every access's latency.
    double coh = upi_.coherenceInflation();
    grants_.clear();
    struct Merge { double delivered = 0, demand = 0, lat_w = 0; };
    std::unordered_map<int, Merge> merged;
    for (const auto &f : flows_) {
        double snc = sncFactor(f.route);
        bool remote = f.route.homeSocket != f.route.reqSocket;
        auto &home = sockets_[f.route.homeSocket];
        double delivered = 0.0;
        double lat = 0.0;
        if (sncEnabled_) {
            Grant g = home.mc[f.route.homeSub]->grant(f.requestor);
            // The controller merges same-requestor flows, so recover
            // this flow's share by its demand fraction.
            delivered = f.demand *
                (remote ? upi_.grantFraction() : 1.0) * g.fraction;
            lat = g.latency;
        } else {
            Grant g0 = home.mc[0]->grant(f.requestor);
            Grant g1 = home.mc[1]->grant(f.requestor);
            double eff =
                f.demand * (remote ? upi_.grantFraction() : 1.0);
            delivered = eff / 2.0 * g0.fraction +
                        eff / 2.0 * g1.fraction;
            lat = (g0.latency + g1.latency) / 2.0;
        }
        lat = lat * snc * coh;
        auto &m = merged[f.requestor];
        m.delivered += delivered;
        m.demand += f.demand;
        m.lat_w += lat * std::max(delivered, 1e-12);
    }
    for (const auto &[req, m] : merged) {
        Grant g;
        g.delivered = m.delivered;
        g.fraction = m.demand > 0.0 ?
            std::min(m.delivered / m.demand, 1.0) : 1.0;
        g.latency = m.delivered > 0.0 ? m.lat_w / m.delivered :
            cfg_.socket.baseLatency;
        // Physicality: a grant can neither deliver negative bytes
        // nor complete in non-positive time, and the delivered
        // fraction is a fraction.
        KELP_ENSURES(g.delivered >= 0.0,
                     "negative delivered bandwidth for requestor ",
                     req);
        KELP_ENSURES(g.fraction >= 0.0 && g.fraction <= 1.0,
                     "grant fraction ", g.fraction,
                     " outside [0, 1] for requestor ", req);
        KELP_ENSURES(g.latency > 0.0,
                     "non-positive grant latency for requestor ",
                     req);
        grants_[req] = g;
    }

    // 5. Socket-level counters for the HAL.
    accumulateSocketCounters(dt);
}

void
MemSystem::updateBackpressure(sim::Time dt)
{
    // Socket-wide shared distress. The inter-socket link
    // participates: the throttling mechanism exists precisely "to
    // avoid congesting the interconnection network" (Section IV-B),
    // so a saturated link distresses the cores on both attached
    // sockets.
    for (auto &s : sockets_) {
        double max_util = std::max({s.mc[0]->utilization(),
                                    s.mc[1]->utilization(),
                                    upi_.congestionUtilization()});
        s.backpressure->update(max_util, dt);
    }
}

void
MemSystem::accumulateSocketCounters(sim::Time dt)
{
    double coh = upi_.coherenceInflation();
    for (auto &s : sockets_) {
        double bw0 = s.mc[0]->totalDelivered();
        double bw1 = s.mc[1]->totalDelivered();
        KELP_INVARIANT(bw0 >= 0.0 && bw1 >= 0.0,
                       "memory controller delivered negative "
                       "bandwidth");
        KELP_INVARIANT(s.mc[0]->latency() >= 0.0 &&
                           s.mc[1]->latency() >= 0.0,
                       "memory controller reported negative latency");
        s.counters.bw.accumulate(bw0 + bw1, dt);
        s.counters.subdomainBw[0].accumulate(bw0, dt);
        s.counters.subdomainBw[1].accumulate(bw1, dt);
        s.counters.subdomainLat[0].accumulate(
            s.mc[0]->latency() * coh, dt);
        s.counters.subdomainLat[1].accumulate(
            s.mc[1]->latency() * coh, dt);
        double lat;
        if (bw0 + bw1 > 0.0) {
            lat = (s.mc[0]->latency() * bw0 + s.mc[1]->latency() * bw1) /
                  (bw0 + bw1);
        } else {
            lat = cfg_.socket.baseLatency;
        }
        s.counters.latency.accumulate(lat * coh, dt);
    }
}

Grant
MemSystem::grant(int requestor) const
{
    auto it = grants_.find(requestor);
    if (it == grants_.end())
        return Grant{0.0, 1.0, cfg_.socket.baseLatency};
    return it->second;
}

double
MemSystem::coreThrottle(sim::SocketId s) const
{
    KELP_ASSERT(s >= 0 && s < numSockets(), "socket out of range");
    return sockets_[s].backpressure->coreThrottle();
}

double
MemSystem::saturation(sim::SocketId s) const
{
    KELP_ASSERT(s >= 0 && s < numSockets(), "socket out of range");
    return sockets_[s].backpressure->assertedFraction();
}

const Controller &
MemSystem::controller(sim::SocketId s, sim::SubdomainId d) const
{
    KELP_ASSERT(s >= 0 && s < numSockets() && (d == 0 || d == 1),
                "controller index out of range");
    return *sockets_[s].mc[d];
}

const SocketCounters &
MemSystem::counters(sim::SocketId s) const
{
    KELP_ASSERT(s >= 0 && s < numSockets(), "socket out of range");
    return sockets_[s].counters;
}

const sim::IntervalAccumulator &
MemSystem::fastAsserted(sim::SocketId s) const
{
    KELP_ASSERT(s >= 0 && s < numSockets(), "socket out of range");
    return sockets_[s].backpressure->fastAsserted();
}

} // namespace mem
} // namespace kelp
