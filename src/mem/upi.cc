#include "mem/upi.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace mem {

UpiLink::UpiLink(sim::GiBps capacity, sim::Nanoseconds hop_latency,
                 double coherence_tax)
    : capacity_(capacity), hopLatency_(hop_latency),
      coherenceTax_(coherence_tax)
{
    KELP_ASSERT(capacity > 0.0, "UPI capacity must be positive");
    KELP_ASSERT(coherence_tax >= 0.0, "coherence tax must be >= 0");
}

void
UpiLink::beginTick()
{
    demand_ = 0.0;
}

void
UpiLink::addDemand(sim::GiBps demand)
{
    KELP_ASSERT(demand >= 0.0, "negative UPI demand");
    demand_ += demand;
}

double
UpiLink::congestionUtilization() const
{
    return std::min(demand_ / (0.8 * capacity_), 1.0);
}

void
UpiLink::resolve(sim::Time dt)
{
    utilization_ = std::min(demand_ / capacity_, 1.0);
    grantFraction_ =
        demand_ <= capacity_ ? 1.0 : capacity_ / demand_;
    bwAccum_.accumulate(std::min(demand_, capacity_), dt);
}

void
UpiLink::accumulateCached(sim::Time dt)
{
    bwAccum_.accumulate(std::min(demand_, capacity_), dt);
}

void
UpiLink::fastForward(uint64_t n, sim::Time dt)
{
    bwAccum_.accumulateRepeat(std::min(demand_, capacity_), dt, n);
}

sim::Nanoseconds
UpiLink::remoteLatency() const
{
    // The hop itself queues convexly as the link loads up.
    double u = std::min(utilization_, 0.99);
    double queue = std::pow(u, 3) / (1.0 - u);
    return hopLatency_ * (1.0 + queue);
}

double
UpiLink::coherenceInflation() const
{
    // Sub-quadratic ramp: snoop-response slowdown is already felt at
    // moderate link load, reaching the full tax at saturation.
    return 1.0 + coherenceTax_ * std::pow(congestionUtilization(), 1.5);
}

} // namespace mem
} // namespace kelp
