#include "mem/backpressure.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace mem {

BackpressureUnit::BackpressureUnit(double distress_threshold,
                                   double throttle_strength)
    : threshold_(distress_threshold), strength_(throttle_strength)
{
    KELP_ASSERT(distress_threshold > 0.0 && distress_threshold < 1.0,
                "distress threshold must be in (0, 1)");
    KELP_ASSERT(throttle_strength >= 0.0 && throttle_strength < 1.0,
                "throttle strength must be in [0, 1)");
}

void
BackpressureUnit::update(double max_mc_utilization, sim::Time dt)
{
    // The distress duty cycle rises linearly from the threshold to
    // full saturation; this matches the smooth saturation curves the
    // paper plots from FAST_ASSERTED (Figure 7).
    double over = (max_mc_utilization - threshold_) / (1.0 - threshold_);
    asserted_ = std::clamp(over, 0.0, 1.0);
    fastAsserted_.accumulate(asserted_, dt);
}

void
BackpressureUnit::fastForward(double max_mc_utilization, uint64_t n,
                              sim::Time dt)
{
    // Same formula as update(); asserted_ is idempotent under a
    // repeated input, so only the integral needs the n-fold repeat.
    double over = (max_mc_utilization - threshold_) / (1.0 - threshold_);
    asserted_ = std::clamp(over, 0.0, 1.0);
    fastAsserted_.accumulateRepeat(asserted_, dt, n);
}

double
BackpressureUnit::coreThrottle() const
{
    return 1.0 - strength_ * asserted_;
}

} // namespace mem
} // namespace kelp
