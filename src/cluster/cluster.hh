/**
 * @file
 * Deterministic Kelp-managed cluster simulator (ROADMAP item 2).
 *
 * Scales the single-node scenario machinery to a fleet: N nodes,
 * each permanently hosting the latency-critical ML service under one
 * runtime configuration (BL / KP-SD / KP), with a stream of batch
 * jobs arriving at the cluster scheduler. Per epoch (one simulated
 * node-hour) the simulator:
 *
 *  1. draws Poisson batch-job arrivals (kind, width, lifetime) from
 *     the epoch's own derived RNG stream;
 *  2. places each arrival through the scheduler policy (bin-pack vs
 *     interference-aware; see cluster/scheduler.hh);
 *  3. measures every node's colocation by running the full
 *     single-node scenario (exp::buildScenario + measureScenario via
 *     exp::runScenario) for its (ML, config, antagonist) signature
 *     -- signatures are memoized, and the misses are fanned out on
 *     the deterministic worker pool with strict-index-order commits,
 *     so any --jobs count is byte-identical to serial;
 *  4. applies per-node heterogeneity jitter from the node's
 *     sim::Rng::derive(seed, node) stream, scores the SLO
 *     (perf ratio >= floor), and advances the per-node SLO ladder:
 *     consecutive violating epochs escalate the rung, and an
 *     escalated node migrates its widest batch job away (or evicts
 *     it when no placement exists / the rung climbs further);
 *  5. accounts fleet metrics: fraction of node-hours meeting the
 *     SLO, stranded-capacity ratio (idle batch-thread-hours over
 *     capacity thread-hours), and the fleet-wide distribution of
 *     per-node request-tail latencies (shared percentile
 *     convention via fleet::FleetResult / sim::percentileSorted).
 *
 * Conservation invariant, checked every epoch: every arriving job is
 * exactly one of placed/rejected, and every placed job is exactly
 * one of running/finished/evicted (a migrated job is still running,
 * on its new node).
 *
 * All scheduler actions can be audited into a trace::DecisionLog
 * ("cluster-place" / "cluster-reject" / "cluster-migrate" /
 * "cluster-evict" events at epoch timestamps).
 */

#ifndef KELP_CLUSTER_CLUSTER_HH
#define KELP_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/scheduler.hh"
#include "exp/scenario.hh"
#include "fleet/fleet.hh"

namespace kelp {

namespace trace {
class DecisionLog;
} // namespace trace

namespace cluster {

/** Everything that defines one cluster simulation. */
struct ClusterConfig
{
    /** Kelp-managed nodes, each hosting the ML service. */
    int nodes = 24;

    /** Scheduling rounds; one epoch = one simulated node-hour. */
    int epochs = 12;

    Placement placement = Placement::InterferenceAware;

    /** Per-node runtime configuration (BL / KP-SD / KP). */
    exp::ConfigKind config = exp::ConfigKind::KP;

    /** The latency-critical service every node hosts. */
    wl::MlWorkload ml = wl::MlWorkload::Rnn1;

    /** SLO floor: min acceptable ML perf ratio per node-hour. */
    double sloFloor = 0.85;

    /** Mean Poisson batch-job arrivals per epoch. */
    double arrivalsPerEpoch = 8.0;

    /** Batch-job lifetime range, epochs (inclusive). */
    int minJobEpochs = 2;
    int maxJobEpochs = 6;

    /** Batch-job width range: 1..maxJobInstances instances (threads
     * follow wl::threadsPerInstance). */
    int maxJobInstances = 3;

    /** Batch thread capacity per node (host cores minus the ML
     * task's entitlement on the RNN1/TPUv1 platform). */
    int capacityThreads = 12;

    /** Interference-aware policy knobs (peak BW of the RNN1 host
     * socket; see cluster/scheduler.hh). */
    double peakBw = 76.8;
    double satCap = 0.80;
    double sloMargin = 0.03;

    /** SLO-ladder rungs: consecutive violating epochs before the
     * scheduler migrates the widest job away / evicts it. */
    int migrateRung = 2;
    int evictRung = 3;

    /** Node-evaluation measurement windows (simulated seconds of
     * the single-node scenario run per signature). */
    sim::Time evalWarmup = 2.0;
    sim::Time evalMeasure = 6.0;
    sim::Time evalSamplePeriod = 1.0;

    uint64_t seed = 2019;

    /** Worker threads for signature evaluation (resolveJobs
     * semantics; never changes the results). */
    int jobs = 1;
};

/** Terminal / live state of one batch job. */
enum class JobState { Running, Finished, Evicted };

/** One batch job's cluster lifetime (exposed for tests). */
struct BatchJob
{
    int id = -1;
    wl::CpuWorkload kind = wl::CpuWorkload::Stream;
    int instances = 0;
    int threads = 0;
    int arrivalEpoch = 0;
    int remainingEpochs = 0;

    /** Current node (-1 once finished/evicted or never placed). */
    int node = -1;

    JobState state = JobState::Running;
    int migrations = 0;
};

/** Per-epoch accounting row (exposed for invariant tests). */
struct EpochRow
{
    int epoch = 0;
    uint64_t arrivals = 0;
    uint64_t placed = 0;
    uint64_t rejected = 0;
    uint64_t migrations = 0;
    uint64_t evictions = 0;
    uint64_t finished = 0;

    /** Jobs still running at the end of the epoch. */
    uint64_t running = 0;

    /** Nodes meeting the SLO this epoch. */
    uint64_t sloNodes = 0;

    /** Batch threads in use / capacity this epoch. */
    uint64_t usedThreads = 0;
    uint64_t capacityThreads = 0;
};

/** Fleet-level results of one cluster simulation. */
struct ClusterResult
{
    /** Whole-run job accounting. */
    uint64_t arrivals = 0;
    uint64_t placed = 0;
    uint64_t rejected = 0;
    uint64_t migrations = 0;
    uint64_t evictions = 0;
    uint64_t finished = 0;
    uint64_t runningAtEnd = 0;

    /** SLO accounting over node-hours. */
    uint64_t nodeHours = 0;
    uint64_t sloNodeHours = 0;

    /** Batch-capacity accounting over node-hours. */
    uint64_t usedThreadHours = 0;
    uint64_t capacityThreadHours = 0;

    /** Distinct single-node scenario evaluations (memo misses). */
    uint64_t evaluations = 0;

    std::vector<EpochRow> epochs;

    /** Per node-hour ML request-tail (p95) samples, seconds. */
    std::vector<double> tailSamples;

    /** Jobs in arrival order (terminal states for tests). */
    std::vector<BatchJob> jobLedger;

    /** Fraction of node-hours meeting the SLO (Fig 14-style). */
    double sloFraction() const;

    /** Stranded capacity: idle batch-thread-hours / capacity. */
    double strandedRatio() const;

    /** Fleet-wide tail distribution (shared percentile convention);
     * query e.g. .percentile(99.0) for the fleet p99 of per-node
     * p95 tails. */
    fleet::FleetResult tails() const;

    /**
     * Canonical byte-diffable text of the whole result (summary +
     * per-epoch rows). Two runs -- any --jobs count -- with the
     * same ClusterConfig must produce identical text; the
     * determinism suite and the CI cluster-smoke job compare it.
     */
    std::string canonicalText() const;

    /** Enforce the job-conservation invariants (also checked every
     * epoch during simulation). */
    void checkConservation() const;
};

/**
 * Run one cluster simulation. Deterministic: a pure function of
 * `cfg` (in particular, byte-identical for every cfg.jobs).
 * Scheduler actions are audited into `log` when non-null.
 */
ClusterResult simulateCluster(const ClusterConfig &cfg,
                              trace::DecisionLog *log = nullptr);

} // namespace cluster
} // namespace kelp

#endif // KELP_CLUSTER_CLUSTER_HH
