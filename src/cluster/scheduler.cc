#include "cluster/scheduler.hh"

#include "sim/log.hh"

namespace kelp {
namespace cluster {

const char *
placementName(Placement p)
{
    switch (p) {
      case Placement::BinPack:
        return "bin-pack";
      case Placement::InterferenceAware:
        return "interference-aware";
    }
    return "?";
}

namespace {

/** Capacity + kind feasibility shared by both policies. */
bool
feasible(const NodeView &n, const PlacementRequest &req)
{
    if (n.index == req.excludeNode)
        return false;
    if (n.usedThreads + req.threads > n.capacityThreads)
        return false;
    return !n.hasKind || n.kind == req.kind;
}

} // namespace

int
placeJob(Placement policy, const PolicyConfig &pc,
         const std::vector<NodeView> &nodes,
         const PlacementRequest &req)
{
    KELP_EXPECTS(req.threads > 0, "placement request without threads");

    int best = -1;
    if (policy == Placement::BinPack) {
        // Best-fit decreasing: the most-loaded node the job still
        // fits on. Minimizes fragmentation, ignores interference.
        int bestUsed = -1;
        for (const NodeView &n : nodes) {
            if (!feasible(n, req))
                continue;
            if (n.usedThreads > bestUsed) {
                bestUsed = n.usedThreads;
                best = n.index;
            }
        }
        return best;
    }

    // Interference-aware: filter on the node's telemetry and rung
    // state, then take the lowest predicted saturation.
    double bestScore = 0.0;
    for (const NodeView &n : nodes) {
        if (!feasible(n, req))
            continue;
        if (n.rung > 0)
            continue; // escalated: shedding, not accepting
        if (n.perfRatio < pc.sloFloor + pc.sloMargin)
            continue; // ML task already near the floor
        double predicted =
            n.saturation + req.bwEstimate / pc.peakBw;
        if (predicted > pc.satCap)
            continue;
        if (best < 0 || predicted < bestScore) {
            bestScore = predicted;
            best = n.index;
        }
    }
    return best;
}

} // namespace cluster
} // namespace kelp
