#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "exp/report.hh"
#include "exp/sweep_runner.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "trace/decision_log.hh"

namespace kelp {
namespace cluster {

namespace {

/** Salts decorrelating the simulator's derived RNG stream families
 * (arrivals per epoch vs heterogeneity jitter per node-hour). */
constexpr uint64_t kArrivalSalt = 0x636c7573746572ull; // "cluster"
constexpr uint64_t kJitterSalt = 0x6a69747465720aull;  // "jitter"

/** Per-node-hour heterogeneity: multiplicative perf jitter stddev
 * and its clamp range (machines differ a little; the fleet-level
 * distributions should not be a single repeated value). */
constexpr double kJitterStddev = 0.015;
constexpr double kJitterLo = 0.94;
constexpr double kJitterHi = 1.06;

/** Seconds per epoch for DecisionLog timestamps (one node-hour). */
constexpr double kEpochSeconds = 3600.0;

/** Poisson draw via Knuth's product method -- a pure function of the
 * passed stream, cheap at the small means the simulator uses. */
uint64_t
poisson(sim::Rng &rng, double mean)
{
    KELP_EXPECTS(mean >= 0.0 && mean <= 64.0,
                 "cluster arrival rate out of the supported range");
    double limit = std::exp(-mean);
    uint64_t k = 0;
    double product = rng.uniform();
    while (product > limit) {
        ++k;
        product *= rng.uniform();
    }
    return k;
}

/** The batch-job population arriving at the cluster: the same WSC
 * antagonist kinds the single-node experiments colocate, weighted
 * toward the benign end (most batch work is compute-bound; the
 * bandwidth-hungry stitchers are the minority that makes placement
 * interesting). Weights must sum to 1. */
struct Archetype
{
    wl::CpuWorkload kind;
    double weight;
};

constexpr Archetype kArchetypes[] = {
    {wl::CpuWorkload::Cpuml, 0.45},
    {wl::CpuWorkload::Stitch, 0.35},
    {wl::CpuWorkload::Stream, 0.20},
};

wl::CpuWorkload
pickKind(double pick)
{
    constexpr size_t n = sizeof(kArchetypes) / sizeof(kArchetypes[0]);
    double weight_sum = 0.0;
    for (const Archetype &a : kArchetypes)
        weight_sum += a.weight;
    KELP_ASSERT(std::abs(weight_sum - 1.0) < 1e-9,
                "cluster archetype weights must sum to 1");
    // Explicit last-archetype fallback: a pick of exactly 1.0 (or
    // accumulated rounding) must land somewhere.
    double acc = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
        acc += kArchetypes[i].weight;
        if (pick <= acc)
            return kArchetypes[i].kind;
    }
    return kArchetypes[n - 1].kind;
}

/** One node's colocation signature: the batch kind it hosts (-1 =
 * idle) and how many instances. Config/ML/seed/windows are fixed per
 * simulation, so they stay out of the key. */
using EvalKey = std::pair<int, int>;

/** What one single-node scenario evaluation feeds back to the
 * cluster scheduler: the node's Kelp telemetry. */
struct EvalResult
{
    double mlPerf = 0.0;
    double tailP95 = 0.0;
    double saturation = 0.0;
};

/** Live per-node scheduler state. */
struct NodeState
{
    int usedThreads = 0;

    /** Kind hosted (meaningful only when instances > 0). */
    wl::CpuWorkload kind = wl::CpuWorkload::Stream;
    int instances = 0;

    /** SLO-ladder rung: consecutive violating epochs. */
    int rung = 0;

    /** Telemetry from the last evaluated epoch (optimistic before
     * the first one: empty node at standalone performance). */
    double saturation = 0.0;
    double perfRatio = 1.0;
};

exp::RunConfig
signatureConfig(const ClusterConfig &cfg, const EvalKey &key)
{
    exp::RunConfig rc;
    rc.ml = cfg.ml;
    rc.config = cfg.config;
    if (key.first >= 0) {
        rc.cpu = static_cast<wl::CpuWorkload>(key.first);
        rc.cpuInstances = key.second;
    }
    rc.warmup = cfg.evalWarmup;
    rc.measure = cfg.evalMeasure;
    rc.samplePeriod = cfg.evalSamplePeriod;
    rc.seed = cfg.seed;
    return rc;
}

void
logEvent(trace::DecisionLog *log, int epoch, const char *kind,
         std::string reason, double perf_ratio = -1.0)
{
    if (!log)
        return;
    trace::DecisionEvent ev;
    ev.time = static_cast<double>(epoch) * kEpochSeconds;
    ev.kind = kind;
    ev.reason = std::move(reason);
    ev.perfRatio = perf_ratio;
    log->append(std::move(ev));
}

std::string
jobText(const BatchJob &job)
{
    std::ostringstream os;
    os << "job " << job.id << " (" << wl::cpuName(job.kind) << " x"
       << job.instances << ", " << job.threads << " threads)";
    return os.str();
}

} // namespace

double
ClusterResult::sloFraction() const
{
    return nodeHours == 0 ? 0.0
                          : static_cast<double>(sloNodeHours) /
                                static_cast<double>(nodeHours);
}

double
ClusterResult::strandedRatio() const
{
    if (capacityThreadHours == 0)
        return 0.0;
    return 1.0 - static_cast<double>(usedThreadHours) /
                     static_cast<double>(capacityThreadHours);
}

fleet::FleetResult
ClusterResult::tails() const
{
    return fleet::FleetResult(tailSamples);
}

std::string
ClusterResult::canonicalText() const
{
    std::ostringstream os;
    os << "arrivals=" << arrivals << " placed=" << placed
       << " rejected=" << rejected << " migrations=" << migrations
       << " evictions=" << evictions << " finished=" << finished
       << " running=" << runningAtEnd << "\n";
    os << "node-hours=" << nodeHours
       << " slo-node-hours=" << sloNodeHours
       << " slo-fraction=" << exp::fmt(sloFraction(), 6) << "\n";
    os << "thread-hours used=" << usedThreadHours
       << " capacity=" << capacityThreadHours
       << " stranded=" << exp::fmt(strandedRatio(), 6) << "\n";
    os << "evaluations=" << evaluations << "\n";
    if (!tailSamples.empty()) {
        std::vector<double> sorted(tailSamples);
        std::sort(sorted.begin(), sorted.end());
        os << "tail-ms p50="
           << exp::fmt(sim::percentileSorted(sorted, 50.0) * 1e3, 4)
           << " p90="
           << exp::fmt(sim::percentileSorted(sorted, 90.0) * 1e3, 4)
           << " p99="
           << exp::fmt(sim::percentileSorted(sorted, 99.0) * 1e3, 4)
           << "\n";
    }
    os << "epoch arr plc rej mig evi fin run slo used cap\n";
    for (const EpochRow &row : epochs) {
        os << row.epoch << " " << row.arrivals << " " << row.placed
           << " " << row.rejected << " " << row.migrations << " "
           << row.evictions << " " << row.finished << " "
           << row.running << " " << row.sloNodes << " "
           << row.usedThreads << " " << row.capacityThreads << "\n";
    }
    return os.str();
}

void
ClusterResult::checkConservation() const
{
    KELP_INVARIANT(arrivals == placed + rejected,
                   "cluster lost a job between arrival and placement");
    KELP_INVARIANT(placed == finished + evictions + runningAtEnd,
                   "a placed job is in no terminal or running state");
    uint64_t ledger_finished = 0, ledger_evicted = 0,
             ledger_running = 0;
    for (const BatchJob &job : jobLedger) {
        if (job.node < 0 && job.state == JobState::Running) {
            // Rejected at arrival: never placed.
            continue;
        }
        switch (job.state) {
          case JobState::Running:
            ++ledger_running;
            break;
          case JobState::Finished:
            ++ledger_finished;
            break;
          case JobState::Evicted:
            ++ledger_evicted;
            break;
        }
    }
    KELP_INVARIANT(ledger_finished == finished &&
                       ledger_evicted == evictions &&
                       ledger_running == runningAtEnd,
                   "cluster job ledger disagrees with the totals");
}

ClusterResult
simulateCluster(const ClusterConfig &cfg, trace::DecisionLog *log)
{
    KELP_EXPECTS(cfg.nodes > 0 && cfg.epochs > 0,
                 "cluster needs at least one node and one epoch");
    KELP_EXPECTS(cfg.minJobEpochs >= 1 &&
                     cfg.maxJobEpochs >= cfg.minJobEpochs,
                 "bad batch-job lifetime range");
    KELP_EXPECTS(cfg.maxJobInstances >= 1,
                 "bad batch-job width range");
    KELP_EXPECTS(cfg.capacityThreads >= 1,
                 "node needs batch thread capacity");

    ClusterResult result;

    PolicyConfig policy;
    policy.peakBw = cfg.peakBw;
    policy.satCap = cfg.satCap;
    policy.sloFloor = cfg.sloFloor;
    policy.sloMargin = cfg.sloMargin;

    // Pre-warm the standalone-reference memo serially so the
    // evaluation fan-out below only ever reads it, and evaluate the
    // idle signature: the same-windows baseline every colocated
    // measurement normalizes against.
    const EvalKey idle_key{-1, 0};
    exp::prewarmReferences({signatureConfig(cfg, idle_key)});

    std::map<EvalKey, EvalResult> memo;
    auto evaluate = [&cfg](const EvalKey &key) {
        exp::RunResult rr = exp::runScenario(signatureConfig(cfg, key));
        EvalResult er;
        er.mlPerf = rr.mlPerf;
        er.tailP95 = rr.mlTailP95;
        er.saturation = rr.avgSaturation;
        return er;
    };
    memo[idle_key] = evaluate(idle_key);
    ++result.evaluations;

    const double ref_perf = memo[idle_key].mlPerf;
    KELP_ASSERT(ref_perf > 0.0,
                "idle-node evaluation produced no ML performance");

    std::vector<NodeState> nodes(static_cast<size_t>(cfg.nodes));
    std::vector<BatchJob> &jobs = result.jobLedger;

    auto nodeViews = [&]() {
        std::vector<NodeView> views(nodes.size());
        for (size_t i = 0; i < nodes.size(); ++i) {
            const NodeState &n = nodes[i];
            NodeView &v = views[i];
            v.index = static_cast<int>(i);
            v.usedThreads = n.usedThreads;
            v.capacityThreads = cfg.capacityThreads;
            v.hasKind = n.instances > 0;
            v.kind = n.kind;
            v.rung = n.rung;
            v.saturation = n.saturation;
            v.perfRatio = n.perfRatio;
        }
        return views;
    };

    auto requestFor = [](const BatchJob &job, int exclude) {
        PlacementRequest req;
        req.kind = job.kind;
        req.threads = job.threads;
        req.bwEstimate = static_cast<double>(job.threads) *
                         wl::cpuParams(job.kind).bwPerCore;
        req.excludeNode = exclude;
        return req;
    };

    auto placeOn = [&](BatchJob &job, int node_index) {
        NodeState &n = nodes[static_cast<size_t>(node_index)];
        KELP_ASSERT(n.instances == 0 || n.kind == job.kind,
                    "placement broke the one-kind-per-node model");
        n.kind = job.kind;
        n.instances += job.instances;
        n.usedThreads += job.threads;
        job.node = node_index;
    };

    auto removeFrom = [&](BatchJob &job) {
        KELP_ASSERT(job.node >= 0, "removing an unplaced job");
        NodeState &n = nodes[static_cast<size_t>(job.node)];
        n.instances -= job.instances;
        n.usedThreads -= job.threads;
        KELP_ASSERT(n.instances >= 0 && n.usedThreads >= 0,
                    "node accounting went negative");
        job.node = -1;
    };

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        EpochRow row;
        row.epoch = epoch;

        // 1. Arrivals: the epoch's own derived stream, independent
        // of every other epoch and of the node jitter streams.
        sim::Rng arrival_rng = sim::Rng::derive(
            cfg.seed ^ kArrivalSalt, static_cast<uint64_t>(epoch));
        uint64_t n_arrivals = poisson(arrival_rng, cfg.arrivalsPerEpoch);
        row.arrivals = n_arrivals;

        for (uint64_t a = 0; a < n_arrivals; ++a) {
            BatchJob job;
            job.id = static_cast<int>(jobs.size());
            job.kind = pickKind(arrival_rng.uniform());
            job.instances = 1 + static_cast<int>(arrival_rng.below(
                                    static_cast<uint64_t>(
                                        cfg.maxJobInstances)));
            job.threads =
                job.instances * wl::threadsPerInstance(job.kind);
            job.arrivalEpoch = epoch;
            job.remainingEpochs =
                cfg.minJobEpochs +
                static_cast<int>(arrival_rng.below(
                    static_cast<uint64_t>(cfg.maxJobEpochs -
                                          cfg.minJobEpochs + 1)));

            int target = placeJob(cfg.placement, policy, nodeViews(),
                                  requestFor(job, -1));
            if (target < 0) {
                ++row.rejected;
                job.node = -1;
                logEvent(log, epoch, "cluster-reject",
                         jobText(job) + ": no feasible node");
            } else {
                ++row.placed;
                placeOn(job, target);
                logEvent(log, epoch, "cluster-place",
                         jobText(job) + " -> node " +
                             std::to_string(target));
            }
            jobs.push_back(job);
        }

        // 2. Capacity snapshot for the epoch (what stranded-capacity
        // accounting integrates: threads busy while the epoch runs).
        for (const NodeState &n : nodes) {
            row.usedThreads += static_cast<uint64_t>(n.usedThreads);
            row.capacityThreads +=
                static_cast<uint64_t>(cfg.capacityThreads);
        }

        // 3. Evaluate every node's colocation. Collect the memo
        // misses in node order and fan them out on the worker pool;
        // commits insert into the memo in strict index order, so the
        // memo's contents -- and everything derived from them -- are
        // byte-identical for any cfg.jobs.
        std::vector<EvalKey> misses;
        std::set<EvalKey> staged;
        for (const NodeState &n : nodes) {
            EvalKey key = n.instances > 0
                              ? EvalKey{static_cast<int>(n.kind),
                                        n.instances}
                              : idle_key;
            if (memo.find(key) == memo.end() && staged.insert(key).second)
                misses.push_back(key);
        }
        std::vector<EvalResult> miss_results(misses.size());
        exp::runJobs(
            static_cast<int>(misses.size()), cfg.jobs,
            [&](int i) {
                miss_results[static_cast<size_t>(i)] =
                    evaluate(misses[static_cast<size_t>(i)]);
            },
            [&](int i) {
                memo[misses[static_cast<size_t>(i)]] =
                    miss_results[static_cast<size_t>(i)];
                ++result.evaluations;
            });

        // 4. Score each node-hour: signature telemetry, per-node
        // heterogeneity jitter (a pure function of (seed, node,
        // epoch)), SLO check, ladder rung.
        for (size_t i = 0; i < nodes.size(); ++i) {
            NodeState &n = nodes[i];
            EvalKey key = n.instances > 0
                              ? EvalKey{static_cast<int>(n.kind),
                                        n.instances}
                              : idle_key;
            const EvalResult &er = memo.at(key);

            sim::Rng jitter_rng = sim::Rng::derive(
                cfg.seed ^ kJitterSalt,
                (static_cast<uint64_t>(i) << 24) |
                    static_cast<uint64_t>(epoch));
            double factor = std::clamp(
                1.0 + jitter_rng.gaussian(0.0, kJitterStddev),
                kJitterLo, kJitterHi);

            n.perfRatio = er.mlPerf / ref_perf * factor;
            n.saturation = er.saturation;
            double tail = er.tailP95 / factor;
            result.tailSamples.push_back(tail);

            if (n.perfRatio >= cfg.sloFloor) {
                ++row.sloNodes;
                n.rung = 0;
            } else {
                ++n.rung;
            }
        }

        // 5. SLO-ladder actions: an escalated node sheds its widest
        // batch job -- migrated when any node will take it, evicted
        // at the top rung or when nothing will.
        for (size_t i = 0; i < nodes.size(); ++i) {
            NodeState &n = nodes[i];
            if (n.rung < cfg.migrateRung || n.instances == 0)
                continue;
            BatchJob *widest = nullptr;
            for (BatchJob &job : jobs) {
                if (job.state != JobState::Running ||
                    job.node != static_cast<int>(i))
                    continue;
                if (!widest || job.threads > widest->threads)
                    widest = &job;
            }
            if (!widest)
                continue;
            int target = -1;
            if (n.rung < cfg.evictRung) {
                target = placeJob(
                    cfg.placement, policy, nodeViews(),
                    requestFor(*widest, static_cast<int>(i)));
            }
            if (target >= 0) {
                removeFrom(*widest);
                placeOn(*widest, target);
                ++widest->migrations;
                ++row.migrations;
                logEvent(log, epoch, "cluster-migrate",
                         jobText(*widest) + ": node " +
                             std::to_string(i) + " rung " +
                             std::to_string(n.rung) + " -> node " +
                             std::to_string(target),
                         n.perfRatio);
            } else {
                removeFrom(*widest);
                widest->state = JobState::Evicted;
                ++row.evictions;
                logEvent(log, epoch, "cluster-evict",
                         jobText(*widest) + ": node " +
                             std::to_string(i) + " rung " +
                             std::to_string(n.rung) +
                             ", no feasible target",
                         n.perfRatio);
            }
        }

        // 6. Progress running jobs; finish the expiring ones.
        for (BatchJob &job : jobs) {
            if (job.state != JobState::Running || job.node < 0)
                continue;
            --job.remainingEpochs;
            if (job.remainingEpochs <= 0) {
                removeFrom(job);
                job.state = JobState::Finished;
                ++row.finished;
            } else {
                ++row.running;
            }
        }

        result.arrivals += row.arrivals;
        result.placed += row.placed;
        result.rejected += row.rejected;
        result.migrations += row.migrations;
        result.evictions += row.evictions;
        result.finished += row.finished;
        result.nodeHours += static_cast<uint64_t>(cfg.nodes);
        result.sloNodeHours += row.sloNodes;
        result.usedThreadHours += row.usedThreads;
        result.capacityThreadHours += row.capacityThreads;
        result.epochs.push_back(row);

        // Per-epoch conservation: every arrival so far is placed or
        // rejected; every placed job is running, finished or evicted.
        uint64_t running_now = 0;
        for (const BatchJob &job : jobs)
            if (job.state == JobState::Running && job.node >= 0)
                ++running_now;
        KELP_INVARIANT(result.arrivals ==
                           result.placed + result.rejected,
                       "epoch lost a job between arrival and verdict");
        KELP_INVARIANT(result.placed == result.finished +
                                            result.evictions +
                                            running_now,
                       "epoch lost a placed job");
    }

    for (const BatchJob &job : jobs)
        if (job.state == JobState::Running && job.node >= 0)
            ++result.runningAtEnd;

    result.checkConservation();
    return result;
}

} // namespace cluster
} // namespace kelp
