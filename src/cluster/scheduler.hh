/**
 * @file
 * Cluster placement policies: where an arriving (or migrating) batch
 * job lands among N Kelp-managed nodes.
 *
 * Two policies are evaluated against each other:
 *
 *  - BinPack: classic best-fit decreasing on free thread capacity.
 *    It sees only core counts -- the scheduler most clusters run
 *    today -- and happily packs bandwidth antagonists next to a
 *    latency-critical ML task.
 *
 *  - InterferenceAware: consumes the per-node Kelp telemetry the
 *    node controllers already export (measured memory saturation,
 *    measured ML performance ratio) plus the node's SLO-ladder rung
 *    state (the same rung the node audits into its DecisionLog).
 *    A candidate is rejected when the node is escalated (rung > 0),
 *    when its ML task is already near the SLO floor, or when the
 *    predicted saturation (measured + the job's bandwidth estimate)
 *    would cross the cap; among the survivors it picks the lowest
 *    predicted saturation.
 *
 * Both policies are pure functions of their inputs and break ties on
 * the lowest node index, so placement is deterministic for any
 * worker count.
 */

#ifndef KELP_CLUSTER_SCHEDULER_HH
#define KELP_CLUSTER_SCHEDULER_HH

#include <vector>

#include "workload/catalog.hh"

namespace kelp {
namespace cluster {

/** Cluster scheduler placement policies. */
enum class Placement { BinPack, InterferenceAware };

const char *placementName(Placement p);

/** The scheduler's view of one candidate node. */
struct NodeView
{
    int index = -1;

    /** Batch threads currently placed / placeable on the node. */
    int usedThreads = 0;
    int capacityThreads = 0;

    /** Batch kind currently hosted; ignored when the node is empty.
     * A node hosts one batch kind at a time (the node-evaluation
     * machinery models a single antagonist kind per node). */
    bool hasKind = false;
    wl::CpuWorkload kind = wl::CpuWorkload::Stream;

    /** Cluster SLO-ladder rung (0 = healthy; >0 = escalated, the
     * node is shedding load, not accepting more). */
    int rung = 0;

    /** Last measured memory saturation (0..1) and ML performance
     * ratio from the node's Kelp telemetry. */
    double saturation = 0.0;
    double perfRatio = 1.0;
};

/** One placement request (an arriving or migrating batch job). */
struct PlacementRequest
{
    wl::CpuWorkload kind = wl::CpuWorkload::Stream;
    int threads = 0;

    /** Estimated bandwidth demand at full activity, GiB/s. */
    double bwEstimate = 0.0;

    /** Migration source; never a candidate (-1 = none). */
    int excludeNode = -1;
};

/** Knobs consumed by the interference-aware scorer. */
struct PolicyConfig
{
    /** Socket peak bandwidth of the fleet's node platform, GiB/s. */
    double peakBw = 76.8;

    /** Predicted-saturation ceiling a placement may not cross. */
    double satCap = 0.80;

    /** Cluster SLO floor on the ML performance ratio. */
    double sloFloor = 0.85;

    /** Extra perf-ratio headroom a node must have over the floor
     * before it accepts new antagonist work. */
    double sloMargin = 0.03;
};

/**
 * Choose the node for a request under the given policy, or -1 to
 * reject (no feasible node). Deterministic: ties break on the lowest
 * node index.
 */
int placeJob(Placement policy, const PolicyConfig &pc,
             const std::vector<NodeView> &nodes,
             const PlacementRequest &req);

} // namespace cluster
} // namespace kelp

#endif // KELP_CLUSTER_SCHEDULER_HH
