/**
 * @file
 * Last-level cache with CAT-style way partitioning.
 *
 * The LLC is apportioned among task groups every tick:
 *  - Groups holding dedicated CAT ways get that capacity exclusively
 *    (this is how all managed configurations shield the ML task from
 *    LLC interference, per Section III-B).
 *  - Groups without dedicated ways compete for the shared pool in
 *    proportion to their access intensity, capped at their footprint;
 *    capacity a group cannot use is redistributed.
 *
 * A group's hit rate follows a square-root capacity curve up to the
 * phase's achievable maximum; the node converts hit rates into DRAM
 * traffic and stall scaling.
 *
 * Under NUMA subdomains each subdomain owns an Llc instance of half
 * the socket's size and ways.
 */

#ifndef KELP_CPU_LLC_HH
#define KELP_CPU_LLC_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace kelp {
namespace cpu {

/** One group's cache usage characteristics for apportionment. */
struct LlcRequest
{
    /** Task-group identifier. */
    int group = 0;

    /** Working-set size, MiB. */
    double footprintMb = 0.0;

    /** Relative access intensity (weights shared-pool competition). */
    double weight = 1.0;

    /** CAT ways dedicated to this group (0 = use the shared pool). */
    int dedicatedWays = 0;

    /** Hit rate achieved with unbounded capacity, in [0, 1]. */
    double hitMax = 0.95;
};

/** Apportionment result for one group. */
struct LlcShare
{
    /** Effective capacity available to the group, MiB. */
    double capacityMb = 0.0;

    /** Resulting hit rate, in [0, 1]. */
    double hitRate = 0.0;
};

/** A last-level cache domain (a socket, or a subdomain under SNC). */
class Llc
{
  public:
    /**
     * @param size_mb Total capacity, MiB.
     * @param ways Associativity (CAT partition granularity).
     */
    Llc(double size_mb, int ways);

    double sizeMb() const { return sizeMb_; }
    int ways() const { return ways_; }

    /** Capacity of a single way, MiB. */
    double wayMb() const { return sizeMb_ / ways_; }

    /**
     * Apportion capacity among the given groups and compute each
     * group's hit rate. Dedicated ways must not exceed the total.
     */
    std::unordered_map<int, LlcShare>
    apportion(const std::vector<LlcRequest> &requests) const;

    /** Hit rate for one group occupying the given capacity alone. */
    static double hitRate(double capacity_mb, double footprint_mb,
                          double hit_max);

  private:
    double sizeMb_;
    int ways_;
};

/**
 * One-entry memo for Llc::apportion, keyed on the exact
 * (geometry, request vector) tuple. Task footprints, weights, and CAT
 * masks move on phase boundaries and knob actuations, not every
 * 100 µs tick, so the previous tick's apportionment is usually still
 * the answer. A miss recomputes and restores the key, so the memo can
 * never change a result; debug builds additionally recompute on every
 * hit and KELP_INVARIANT the cached shares against the fresh ones.
 */
class ApportionCache
{
  public:
    /** Equivalent to llc.apportion(requests); memoised. The returned
     * reference stays valid until the next get(). */
    const std::unordered_map<int, LlcShare> &
    get(const Llc &llc, const std::vector<LlcRequest> &requests);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    double sizeMb_ = -1.0;
    int ways_ = 0;
    std::vector<LlcRequest> key_;
    std::unordered_map<int, LlcShare> value_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace cpu
} // namespace kelp

#endif // KELP_CPU_LLC_HH
