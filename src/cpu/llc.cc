#include "cpu/llc.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace cpu {

Llc::Llc(double size_mb, int ways)
    : sizeMb_(size_mb), ways_(ways)
{
    KELP_ASSERT(size_mb > 0.0, "LLC size must be positive");
    KELP_ASSERT(ways > 0, "LLC must have at least one way");
}

double
Llc::hitRate(double capacity_mb, double footprint_mb, double hit_max)
{
    if (footprint_mb <= 0.0)
        return hit_max;
    double cover = std::min(capacity_mb / footprint_mb, 1.0);
    // Square-root curve: early capacity captures hot lines first.
    return hit_max * std::sqrt(std::max(cover, 0.0));
}

std::unordered_map<int, LlcShare>
Llc::apportion(const std::vector<LlcRequest> &requests) const
{
    std::unordered_map<int, LlcShare> out;

    int dedicated_ways = 0;
    for (const auto &r : requests)
        dedicated_ways += std::max(r.dedicatedWays, 0);
    KELP_ASSERT(dedicated_ways <= ways_,
                "dedicated CAT ways exceed LLC associativity");

    double shared_pool = (ways_ - dedicated_ways) * wayMb();

    // First pass: dedicated groups take their partitions; shared
    // groups register weighted claims capped by footprint.
    double total_weight = 0.0;
    for (const auto &r : requests) {
        if (r.dedicatedWays > 0) {
            double cap = r.dedicatedWays * wayMb();
            out[r.group] = {cap, hitRate(cap, r.footprintMb, r.hitMax)};
        } else {
            total_weight += std::max(r.weight, 0.0);
        }
    }

    // Second pass with one redistribution round: groups whose
    // footprint is smaller than their fair share release the excess
    // to the remaining competitors.
    double pool = shared_pool;
    double weight_left = total_weight;
    std::vector<const LlcRequest *> pending;
    for (const auto &r : requests)
        if (r.dedicatedWays <= 0)
            pending.push_back(&r);

    // Satisfy small-footprint groups first so redistribution is
    // deterministic regardless of request order.
    std::sort(pending.begin(), pending.end(),
              [](const LlcRequest *a, const LlcRequest *b) {
                  if (a->footprintMb != b->footprintMb)
                      return a->footprintMb < b->footprintMb;
                  return a->group < b->group;
              });

    for (const auto *r : pending) {
        double w = std::max(r->weight, 0.0);
        double fair = weight_left > 0.0 ? pool * w / weight_left : 0.0;
        double cap = std::min(fair, std::max(r->footprintMb, 0.0));
        // A zero-weight group still gets to cache in an empty pool.
        if (total_weight <= 0.0)
            cap = std::min(pool, std::max(r->footprintMb, 0.0));
        out[r->group] = {cap, hitRate(cap, r->footprintMb, r->hitMax)};
        pool -= cap;
        weight_left -= w;
    }

    return out;
}

namespace {

bool
sameRequests(const std::vector<LlcRequest> &a,
             const std::vector<LlcRequest> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        // Exact comparison on purpose: any drift forces a recompute.
        if (a[i].group != b[i].group ||
            a[i].footprintMb != b[i].footprintMb ||
            a[i].weight != b[i].weight ||
            a[i].dedicatedWays != b[i].dedicatedWays ||
            a[i].hitMax != b[i].hitMax) {
            return false;
        }
    }
    return true;
}

} // namespace

const std::unordered_map<int, LlcShare> &
ApportionCache::get(const Llc &llc,
                    const std::vector<LlcRequest> &requests)
{
    const bool hit = llc.sizeMb() == sizeMb_ && llc.ways() == ways_ &&
                     sameRequests(requests, key_);
    if (hit) {
        ++hits_;
#ifndef NDEBUG
        const auto fresh = llc.apportion(requests);
        KELP_INVARIANT(fresh.size() == value_.size(),
                       "LLC apportion memo drifted: group set changed");
        for (const auto &[group, share] : fresh) {
            auto it = value_.find(group);
            KELP_INVARIANT(it != value_.end() &&
                               it->second.capacityMb == share.capacityMb &&
                               it->second.hitRate == share.hitRate,
                           "LLC apportion memo drifted for group ",
                           group);
        }
#endif
        return value_;
    }
    ++misses_;
    sizeMb_ = llc.sizeMb();
    ways_ = llc.ways();
    key_ = requests;
    value_ = llc.apportion(requests);
    return value_;
}

} // namespace cpu
} // namespace kelp
