#include "cpu/topology.hh"

#include "sim/log.hh"

namespace kelp {
namespace cpu {

Topology::Topology(const TopologyConfig &cfg)
    : cfg_(cfg)
{
    KELP_ASSERT(cfg.sockets >= 1, "need at least one socket");
    KELP_ASSERT(cfg.coresPerSocket >= 2 && cfg.coresPerSocket % 2 == 0,
                "cores per socket must be even (subdomain split)");
    KELP_ASSERT(cfg.llcWays >= 2 && cfg.llcWays % 2 == 0,
                "LLC ways must be even (subdomain split)");
    KELP_ASSERT(cfg.llcMbPerSocket > 0.0, "LLC size must be positive");
    KELP_ASSERT(cfg.smtSiblingFactor > 0.0 && cfg.smtSiblingFactor <= 1.0,
                "SMT sibling factor must be in (0, 1]");
}

} // namespace cpu
} // namespace kelp
