/**
 * @file
 * CPU topology description: sockets, cores, and the core->subdomain
 * mapping used when NUMA subdomains are enabled.
 *
 * Cores are modeled as allocation counts, not individual objects: the
 * experiments and the Kelp runtime operate purely on "how many cores
 * does group G hold in subdomain D", which is exactly the granularity
 * of the CPU-mask knob the paper's runtime manipulates.
 */

#ifndef KELP_CPU_TOPOLOGY_HH
#define KELP_CPU_TOPOLOGY_HH

#include "sim/types.hh"

namespace kelp {
namespace cpu {

/** Node CPU topology parameters. */
struct TopologyConfig
{
    int sockets = 2;
    int coresPerSocket = 16;

    /** LLC capacity per socket, MiB. */
    double llcMbPerSocket = 32.0;

    /** LLC associativity (CAT partition granularity) per socket. */
    int llcWays = 16;

    /**
     * SMT throughput factor: relative throughput of one hardware
     * thread when its sibling is busy. SMT is enabled in all of the
     * paper's experiments; the synthetic LLC aggressor contends for
     * in-pipeline resources through it.
     */
    double smtSiblingFactor = 0.65;
};

/** Immutable topology with subdomain arithmetic helpers. */
class Topology
{
  public:
    explicit Topology(const TopologyConfig &cfg);

    const TopologyConfig &config() const { return cfg_; }

    int sockets() const { return cfg_.sockets; }
    int coresPerSocket() const { return cfg_.coresPerSocket; }

    /** Cores in one NUMA subdomain (half a socket). */
    int coresPerSubdomain() const { return cfg_.coresPerSocket / 2; }

    /** Total cores across the node. */
    int totalCores() const { return cfg_.sockets * cfg_.coresPerSocket; }

    /** LLC size of one subdomain under SNC, MiB. */
    double llcMbPerSubdomain() const { return cfg_.llcMbPerSocket / 2; }

    /** LLC ways of one subdomain under SNC. */
    int llcWaysPerSubdomain() const { return cfg_.llcWays / 2; }

  private:
    TopologyConfig cfg_;
};

} // namespace cpu
} // namespace kelp

#endif // KELP_CPU_TOPOLOGY_HH
