#include "cpu/prefetcher.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace cpu {

double
prefetchTrafficFactor(const PrefetchParams &p, double enabled_frac)
{
    KELP_ASSERT(p.trafficBoost >= 0.0, "negative prefetch boost");
    double f = std::clamp(enabled_frac, 0.0, 1.0);
    return (1.0 + p.trafficBoost * f) / (1.0 + p.trafficBoost);
}

double
prefetchStallFactor(const PrefetchParams &p, double enabled_frac)
{
    KELP_ASSERT(p.stallHide >= 0.0 && p.stallHide < 1.0,
                "stall hide must be in [0, 1)");
    double f = std::clamp(enabled_frac, 0.0, 1.0);
    return (1.0 - p.stallHide * f) / (1.0 - p.stallHide);
}

} // namespace cpu
} // namespace kelp
