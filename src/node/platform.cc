#include "node/platform.hh"

#include "sim/log.hh"

namespace kelp {
namespace node {

namespace {

PlatformSpec
makeTpuPlatform()
{
    PlatformSpec p;
    p.name = "TPU platform";

    // Haswell-class dual-socket host.
    p.topo.sockets = 2;
    p.topo.coresPerSocket = 16;
    p.topo.llcMbPerSocket = 32.0;
    p.topo.llcWays = 16;
    p.topo.smtSiblingFactor = 0.65;

    p.mem.numSockets = 2;
    p.mem.socket.peakBw = 76.8;     // 4ch DDR4-2400
    p.mem.socket.baseLatency = 90.0;
    p.mem.socket.inflationAt95 = 2.5;
    p.mem.socket.distressThreshold = 0.80;
    p.mem.socket.throttleStrength = 0.30;
    p.mem.socket.sncLocalLatencyFactor = 0.93;
    p.mem.socket.sncRemoteLatencyFactor = 1.08;
    p.mem.upiCapacity = 38.4;       // QPI-class link
    p.mem.upiHopLatency = 65.0;
    p.mem.upiCoherenceTax = 0.70;

    p.accel.kind = accel::Kind::TpuV1;
    p.accel.peakTflops = 92.0;      // 92 TOPS MAC array [Jouppi'17]
    p.accel.deviceMemGb = 8.0;
    p.accel.deviceMemBw = 34.0;
    p.accel.pcieBw = 12.0;
    p.accel.attachedSocket = 0;
    return p;
}

PlatformSpec
makeCloudTpuPlatform()
{
    PlatformSpec p;
    p.name = "Cloud TPU platform";

    // Skylake-class dual-socket host with SNC.
    p.topo.sockets = 2;
    p.topo.coresPerSocket = 24;
    p.topo.llcMbPerSocket = 33.0;
    p.topo.llcWays = 12;
    p.topo.smtSiblingFactor = 0.65;

    p.mem.numSockets = 2;
    p.mem.socket.peakBw = 115.2;    // 6ch DDR4-2400
    p.mem.socket.baseLatency = 85.0;
    p.mem.socket.inflationAt95 = 3.0;
    p.mem.socket.distressThreshold = 0.80;
    // Strong global throttling: CNN1 loses 50% with subdomains and
    // unmanaged backpressure (Figure 7b).
    p.mem.socket.throttleStrength = 0.58;
    // SNC latency bonus: CNN1 up to +9% over standalone (Fig. 7b).
    p.mem.socket.sncLocalLatencyFactor = 0.90;
    p.mem.socket.sncRemoteLatencyFactor = 1.08;
    p.mem.upiCapacity = 41.6;       // UPI-class link
    p.mem.upiHopLatency = 70.0;
    // Highest remote-traffic sensitivity of the three platforms
    // (Section VI-A, Figures 15-16).
    p.mem.upiCoherenceTax = 2.20;

    p.accel.kind = accel::Kind::CloudTpu;
    p.accel.peakTflops = 180.0;
    p.accel.deviceMemGb = 64.0;
    p.accel.deviceMemBw = 600.0;
    p.accel.pcieBw = 14.0;
    p.accel.attachedSocket = 0;
    return p;
}

PlatformSpec
makeGpuPlatform()
{
    PlatformSpec p;
    p.name = "GPU platform";

    // Broadwell-class dual-socket host with Cluster-on-Die.
    p.topo.sockets = 2;
    p.topo.coresPerSocket = 20;
    p.topo.llcMbPerSocket = 30.0;
    p.topo.llcWays = 20;
    p.topo.smtSiblingFactor = 0.65;

    p.mem.numSockets = 2;
    p.mem.socket.peakBw = 76.8;
    p.mem.socket.baseLatency = 95.0;
    p.mem.socket.inflationAt95 = 3.0;
    p.mem.socket.distressThreshold = 0.80;
    p.mem.socket.throttleStrength = 0.40;
    p.mem.socket.sncLocalLatencyFactor = 0.94;
    p.mem.socket.sncRemoteLatencyFactor = 1.10;
    p.mem.upiCapacity = 38.4;
    p.mem.upiHopLatency = 75.0;
    p.mem.upiCoherenceTax = 0.90;

    p.accel.kind = accel::Kind::Gpu;
    p.accel.peakTflops = 10.6;      // P100-class
    p.accel.deviceMemGb = 16.0;
    p.accel.deviceMemBw = 732.0;
    p.accel.pcieBw = 12.0;
    p.accel.attachedSocket = 0;
    return p;
}

} // namespace

PlatformSpec
platformFor(accel::Kind kind)
{
    switch (kind) {
      case accel::Kind::TpuV1:
        return makeTpuPlatform();
      case accel::Kind::CloudTpu:
        return makeCloudTpuPlatform();
      case accel::Kind::Gpu:
        return makeGpuPlatform();
    }
    sim::panic("unknown accelerator kind");
}

} // namespace node
} // namespace kelp
