/**
 * @file
 * Node: a complete accelerated server, and the per-tick orchestration
 * that couples tasks to the hardware models.
 *
 * Every tick the node:
 *  1. Builds core pools per socket (pinned groups own their masked
 *     cores; floating groups share the rest) and computes each task's
 *     effective cores, folding in fair sharing and SMT capacity.
 *  2. Apportions each LLC domain (socket-wide, or per-subdomain when
 *     SNC is on) among the tasks present and derives per-task LLC
 *     miss ratios relative to their standalone hit rates.
 *  3. Reads the previous tick's distress throttles, collects per-task
 *     bandwidth demands, and routes them: explicit data placements
 *     (Remote-DRAM experiments) or local-allocation splits across the
 *     subdomains where the task holds cores.
 *  4. Resolves the memory system and advances every task with its
 *     post-resolve environment.
 */

#ifndef KELP_NODE_NODE_HH
#define KELP_NODE_NODE_HH

#include <array>
#include <memory>
#include <vector>

#include "accel/accelerator.hh"
#include "cpu/llc.hh"
#include "cpu/topology.hh"
#include "hal/knobs.hh"
#include "hal/task_group.hh"
#include "mem/mem_system.hh"
#include "node/platform.hh"
#include "sim/engine.hh"
#include "workload/task.hh"

namespace kelp {
namespace node {

/** A fully-assembled accelerated server. */
class Node
{
  public:
    explicit Node(const PlatformSpec &spec);

    const PlatformSpec &spec() const { return spec_; }
    const cpu::Topology &topology() const { return topo_; }
    mem::MemSystem &memSystem() { return mem_; }
    const mem::MemSystem &memSystem() const { return mem_; }
    accel::Accelerator &accelerator() { return accel_; }
    hal::GroupRegistry &groups() { return groups_; }
    hal::ResourceKnobs &knobs() { return knobs_; }

    /** Enable NUMA subdomains on the host (SNC/CoD). */
    void setSncEnabled(bool enabled) { mem_.setSncEnabled(enabled); }
    bool sncEnabled() const { return mem_.sncEnabled(); }

    /**
     * Section VI-C what-if: backpressure that targets the offending
     * threads only -- high-priority groups are exempt from the
     * distress throttle. Off by default (the paper's hardware
     * throttles every core on the socket).
     */
    void setPriorityAwareBackpressure(bool enabled)
    {
        priorityAwareBackpressure_ = enabled;
        markDirty();
    }
    bool priorityAwareBackpressure() const
    {
        return priorityAwareBackpressure_;
    }

    /**
     * Place a task on the node. The node assigns the task id used as
     * its memory-system requestor.
     */
    wl::Task &addTask(std::unique_ptr<wl::Task> task);

    /** Typed convenience overload returning the concrete task type. */
    template <typename T>
    T &
    add(std::unique_ptr<T> task)
    {
        return static_cast<T &>(addTask(std::move(task)));
    }

    /** All placed tasks. */
    const std::vector<std::unique_ptr<wl::Task>> &tasks() const
    {
        return tasks_;
    }

    /** Task by node-assigned id, or nullptr. Ids are stable: tasks
     * are never erased, only moved to a terminal lifecycle state. */
    wl::Task *taskById(int id);

    /**
     * Threads wanted by the *runnable* members of a group on a
     * socket. Controllers re-read this every sample under churn
     * instead of assuming a fixed colocation.
     */
    int runnableThreadsInGroup(sim::GroupId group,
                               sim::SocketId socket) const;

    /**
     * The runnable member of a group with the highest bandwidth
     * demand on the last tick (ties break toward the lowest task id).
     * Nullptr when the group has no runnable members. This is the SLO
     * ladder's eviction victim: the antagonist hurting the ML task
     * most right now.
     */
    wl::Task *hungriestRunnable(sim::GroupId group);

    /** Register the node's tick pipeline with an engine, including
     * the event-driven fast-forward hook. */
    void attach(sim::Engine &engine);

    /** Execute one tick (exposed for tests; attach() drives this). */
    void tick(sim::Time now, sim::Time dt);

    /** Last computed environment for a task (inspection/tests). */
    const wl::ExecEnv &lastEnv(const wl::Task &task) const;

    /**
     * Enable/disable the event-driven fast path (default on).
     * Disabling forces every tick through the full pipeline; the
     * results are bit-identical either way -- the fast path only
     * engages where it can prove ticks are repeats.
     */
    void setEventDrivenEnabled(bool enabled)
    {
        eventDriven_ = enabled;
        markDirty();
    }
    bool eventDrivenEnabled() const { return eventDriven_; }

    /**
     * Fast-forward up to max_ticks quiescent ticks; returns how many
     * were consumed (0 = not quiescent). attach() wires this into
     * the engine; exposed for tests.
     */
    uint64_t fastForward(sim::Time now, sim::Time dt,
                         uint64_t max_ticks);

    /** Invalidate quiescence (knob writes, lifecycle changes, task
     * arrivals, config flips all funnel here via change hooks). */
    void markDirty()
    {
        dirty_ = true;
        fastReady_ = false;
        quietStreak_ = 0;
    }

    /** Per-task bwDemand() calls made by the full tick path. */
    uint64_t demandCalls() const { return demandCalls_; }

    /** Per-task advance() calls made by the full tick path. */
    uint64_t advanceCalls() const { return advanceCalls_; }

    /** Task-ticks consumed through the fast path. */
    uint64_t fastTaskTicks() const { return fastTaskTicks_; }

  private:
    struct TaskState
    {
        wl::Task *task = nullptr;
        wl::ExecEnv env;
        /** Effective cores per subdomain of the home socket. */
        std::array<double, 2> coresPerSub = {0.0, 0.0};
        /** Bandwidth demand submitted on the last tick, GiB/s. */
        double lastDemand = 0.0;
    };

    /** Phase 1: pools, effective cores, SMT. */
    void computeCoreShares();

    /** Phase 2: LLC apportionment and miss ratios. */
    void computeLlc();

    /** Phase 3+4: demands, memory resolution, task advancement. */
    void resolveAndAdvance(sim::Time dt);

    /** Ask every runnable task to cache its quiescent-tick kernel
     * against its last resolved environment; true when all accept
     * and their demands still match what the resolve cache saw. */
    bool tryPrepareFast(sim::Time dt);

    /** Debug cross-check: recompute the full pre-resolve pipeline
     * and KELP_INVARIANT it against the cached environments. */
    void verifyQuiescent(sim::Time dt);

    TaskState &stateOf(const wl::Task &task);

    PlatformSpec spec_;
    cpu::Topology topo_;
    mem::MemSystem mem_;
    accel::Accelerator accel_;
    hal::GroupRegistry groups_;
    hal::ResourceKnobs knobs_;

    std::vector<std::unique_ptr<wl::Task>> tasks_;
    std::vector<TaskState> states_;
    bool priorityAwareBackpressure_ = false;

    /** Event-driven engine state. dirty_ is raised by any change
     * hook; quietStreak_ counts consecutive full ticks that were
     * resolve-cache hits with no dirt; fastReady_ marks the task
     * kernels as prepared for the current environment. */
    bool eventDriven_ = true;
    bool dirty_ = true;
    int quietStreak_ = 0;
    bool fastReady_ = false;
    uint64_t demandCalls_ = 0;
    uint64_t advanceCalls_ = 0;
    uint64_t fastTaskTicks_ = 0;

    /** Per-(socket, domain) apportionment memos (2 sockets x 2
     * domains; the non-SNC case uses domain 0 only). */
    std::array<cpu::ApportionCache, 4> llcCaches_;
};

} // namespace node
} // namespace kelp

#endif // KELP_NODE_NODE_HH
