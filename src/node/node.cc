#include "node/node.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "sim/log.hh"

namespace kelp {
namespace node {

Node::Node(const PlatformSpec &spec)
    : spec_(spec), topo_(spec.topo), mem_(spec.mem),
      accel_(spec.accel), groups_(topo_), knobs_(groups_)
{
    // Any group-knob write or memory-system reconfiguration breaks
    // quiescence; the hooks funnel them all into markDirty().
    groups_.setChangeHook([this]() { markDirty(); });
    mem_.setChangeHook([this]() { markDirty(); });
}

wl::Task &
Node::addTask(std::unique_ptr<wl::Task> task)
{
    KELP_ASSERT(task, "null task");
    KELP_ASSERT(task->group() >= 0 && task->group() < groups_.size(),
                "task placed into unknown group ", task->group());
    task->setId(static_cast<int>(tasks_.size()));
    task->setChangeHook([this]() { markDirty(); });
    tasks_.push_back(std::move(task));
    states_.push_back(TaskState{tasks_.back().get(), {}, {}});
    markDirty();
    return *tasks_.back();
}

void
Node::attach(sim::Engine &engine)
{
    engine.onTick([this](sim::Time now, sim::Time dt) {
        tick(now, dt);
    });
    engine.setFastForward(
        [this](sim::Time now, sim::Time dt, uint64_t max_ticks) {
            return fastForward(now, dt, max_ticks);
        });
}

Node::TaskState &
Node::stateOf(const wl::Task &task)
{
    KELP_ASSERT(task.id() >= 0 &&
                task.id() < static_cast<int>(states_.size()),
                "task not placed on this node");
    return states_[task.id()];
}

const wl::ExecEnv &
Node::lastEnv(const wl::Task &task) const
{
    KELP_ASSERT(task.id() >= 0 &&
                task.id() < static_cast<int>(states_.size()),
                "task not placed on this node");
    return states_[task.id()].env;
}

wl::Task *
Node::taskById(int id)
{
    if (id < 0 || id >= static_cast<int>(tasks_.size()))
        return nullptr;
    return tasks_[id].get();
}

int
Node::runnableThreadsInGroup(sim::GroupId group,
                             sim::SocketId socket) const
{
    int threads = 0;
    for (const auto &t : tasks_) {
        if (t->group() == group && t->homeSocket() == socket &&
            t->runnable()) {
            threads += t->threadsWanted();
        }
    }
    return threads;
}

wl::Task *
Node::hungriestRunnable(sim::GroupId group)
{
    wl::Task *best = nullptr;
    double best_demand = -1.0;
    for (auto &st : states_) {
        if (st.task->group() != group || !st.task->runnable())
            continue;
        if (st.lastDemand > best_demand) {
            best_demand = st.lastDemand;
            best = st.task;
        }
    }
    return best;
}

void
Node::computeCoreShares()
{
    // A pool is a set of tasks sharing a set of cores: one pool per
    // pinned group per socket, plus one floating pool per socket over
    // the unpinned cores.
    struct Pool
    {
        double cores = 0.0;
        std::array<double, 2> coresPerSub = {0.0, 0.0};
        int threads = 0;
        std::vector<TaskState *> members;
    };

    for (int s = 0; s < topo_.sockets(); ++s) {
        std::unordered_map<int, Pool> pinned_pools;
        Pool floating;

        int pinned_cores = 0;
        for (const auto &g : groups_.all()) {
            if (!g->floating() && g->cores().inSocket(s) > 0) {
                Pool &p = pinned_pools[g->id()];
                p.cores = g->cores().inSocket(s);
                p.coresPerSub[0] = g->cores().inSubdomain(s, 0);
                p.coresPerSub[1] = g->cores().inSubdomain(s, 1);
                pinned_cores += g->cores().inSocket(s);
            }
        }
        floating.cores = std::max(
            topo_.coresPerSocket() - pinned_cores, 0);
        floating.coresPerSub[0] = floating.cores / 2.0;
        floating.coresPerSub[1] = floating.cores / 2.0;

        for (auto &st : states_) {
            if (st.task->homeSocket() != s)
                continue;
            if (!st.task->runnable()) {
                // Suspended/terminated tasks hold no cores and make
                // no progress; their slots return to the pool.
                st.env.effCores = 0.0;
                st.env.smtFactor = 1.0;
                st.coresPerSub = {0.0, 0.0};
                continue;
            }
            const auto &g = groups_.get(st.task->group());
            Pool *pool = nullptr;
            if (!g.floating() && pinned_pools.count(g.id()))
                pool = &pinned_pools[g.id()];
            else
                pool = &floating;
            pool->threads += st.task->threadsWanted();
            pool->members.push_back(&st);
        }

        auto apply = [this](Pool &pool) {
            if (pool.members.empty())
                return;
            double smt = topo_.config().smtSiblingFactor;
            for (auto *st : pool.members) {
                int n = st->task->threadsWanted();
                // Slots: how many of the task's threads can run at
                // once (SMT doubles thread capacity). SMT factor: the
                // per-running-thread throughput penalty from sibling
                // sharing.
                double slots_frac = 0.0;
                double smt_factor = 1.0;
                if (pool.cores > 0.0 && pool.threads > 0) {
                    double r = pool.threads / pool.cores;
                    if (r <= 1.0) {
                        slots_frac = 1.0;
                    } else {
                        double running = std::min(
                            static_cast<double>(pool.threads),
                            2.0 * pool.cores);
                        double c_eff = pool.cores *
                            (1.0 + smt * std::min(r - 1.0, 1.0));
                        slots_frac = running / pool.threads;
                        smt_factor = c_eff / running;
                    }
                }
                st->env.effCores = n * slots_frac;
                st->env.smtFactor = smt_factor;
                // Split a task's effective cores across subdomains in
                // proportion to the pool's core placement.
                for (int d = 0; d < 2; ++d) {
                    st->coresPerSub[d] = pool.cores > 0.0 ?
                        st->env.effCores *
                            (pool.coresPerSub[d] / pool.cores) :
                        0.0;
                }
            }
        };

        for (auto &[id, pool] : pinned_pools)
            apply(pool);
        apply(floating);
    }
}

void
Node::computeLlc()
{
    // Miss ratios are rebuilt from scratch every tick: a task
    // accumulates one weighted contribution per LLC domain it has
    // cores in (-1 marks "no contribution yet").
    for (auto &st : states_)
        st.env.missRatio = -1.0;

    bool snc = mem_.sncEnabled();
    for (int s = 0; s < topo_.sockets(); ++s) {
        int domains = snc ? 2 : 1;
        for (int d = 0; d < domains; ++d) {
            cpu::Llc llc(snc ? topo_.llcMbPerSubdomain() :
                               topo_.config().llcMbPerSocket,
                         snc ? topo_.llcWaysPerSubdomain() :
                               topo_.config().llcWays);

            // Gather requests from tasks with cores in this domain.
            std::vector<cpu::LlcRequest> reqs;
            std::vector<TaskState *> present;
            for (auto &st : states_) {
                if (st.task->homeSocket() != s)
                    continue;
                double cores = snc ? st.coresPerSub[d] :
                    st.coresPerSub[0] + st.coresPerSub[1];
                if (cores <= 1e-9)
                    continue;
                const auto &g = groups_.get(st.task->group());
                wl::HostPhaseParams prof = st.task->llcProfile();
                cpu::LlcRequest r;
                r.group = st.task->id();
                r.footprintMb = prof.llcFootprintMb;
                r.weight = prof.llcWeight * cores;
                r.dedicatedWays =
                    std::min(g.catWays(), llc.ways() - 1);
                r.hitMax = prof.llcHitMax;
                reqs.push_back(r);
                present.push_back(&st);
            }
            if (reqs.empty())
                continue;

            const auto &shares =
                llcCaches_[static_cast<size_t>(s * 2 + d)].get(llc,
                                                               reqs);
            for (auto *st : present) {
                wl::HostPhaseParams prof = st->task->llcProfile();
                // Standalone reference: the full socket LLC, alone,
                // SNC off (the paper's normalization baseline).
                double hit_alone = cpu::Llc::hitRate(
                    topo_.config().llcMbPerSocket,
                    prof.llcFootprintMb, prof.llcHitMax);
                double hit_now = shares.at(st->task->id()).hitRate;
                double miss_alone = std::max(1.0 - hit_alone, 0.01);
                double miss_now = std::max(1.0 - hit_now, 0.0);
                double ratio = miss_now / miss_alone;
                // Weight by the task's core split across domains so
                // spanning tasks blend their two domains' ratios.
                double c0 = st->coresPerSub[0];
                double c1 = st->coresPerSub[1];
                double total = c0 + c1;
                double w = 1.0;
                if (snc && total > 0.0)
                    w = (d == 0 ? c0 : c1) / total;
                double contrib = ratio * w;
                st->env.missRatio = st->env.missRatio < 0.0 ?
                    contrib : st->env.missRatio + contrib;
            }
        }
    }

    // Tasks with no cores anywhere keep the neutral ratio.
    for (auto &st : states_)
        if (st.env.missRatio < 0.0)
            st.env.missRatio = 1.0;
}

void
Node::resolveAndAdvance(sim::Time dt)
{
    // Throttles from the previous tick's distress state (one tick of
    // physical signal propagation).
    std::array<double, 2> throttle = {1.0, 1.0};
    for (int s = 0; s < mem_.numSockets(); ++s)
        throttle[s] = mem_.coreThrottle(s);

    mem_.beginTick();

    // Pass 1: collect and route demands.
    for (auto &st : states_) {
        if (!st.task->runnable()) {
            st.lastDemand = 0.0;
            continue;
        }
        const auto &g = groups_.get(st.task->group());
        st.env.socket = st.task->homeSocket();
        st.env.pfFraction = g.floating() ? 1.0 : g.prefetcherFraction();
        st.env.throttle = throttle[st.env.socket];
        if (priorityAwareBackpressure_ &&
            g.priority() == hal::Priority::High) {
            st.env.throttle = 1.0;
        }
        st.env.baseLatencyNs = mem_.baseLatency();

        sim::GiBps demand = st.task->bwDemand(st.env);
        ++demandCalls_;
        st.lastDemand = std::max(demand, 0.0);
        if (demand <= 0.0)
            continue;

        bool hi = g.priority() == hal::Priority::High;
        sim::SocketId home = st.task->homeSocket();
        if (!st.task->dataPlacement().empty()) {
            // Explicit placement (Remote-DRAM experiments). The
            // requesting subdomain is where most of its cores sit.
            sim::SubdomainId req_sub =
                st.coresPerSub[1] > st.coresPerSub[0] ? 1 : 0;
            for (const auto &share : st.task->dataPlacement()) {
                mem::Route route{home, req_sub, share.socket,
                                 share.subdomain};
                mem_.addFlow(st.task->id(), route,
                             demand * share.fraction, hi);
            }
        } else {
            // Local allocation: data lives where the cores are.
            double c0 = st.coresPerSub[0];
            double c1 = st.coresPerSub[1];
            double total = c0 + c1;
            if (total <= 1e-12) {
                continue;
            }
            if (c0 > 1e-12) {
                mem_.addFlow(st.task->id(),
                             {home, 0, home, 0}, demand * c0 / total,
                             hi);
            }
            if (c1 > 1e-12) {
                mem_.addFlow(st.task->id(),
                             {home, 1, home, 1}, demand * c1 / total,
                             hi);
            }
        }
    }

    mem_.resolve(dt);

    // Pass 2: advance with post-resolve environments. Non-runnable
    // tasks are frozen: no progress, no demand-basis updates.
    for (auto &st : states_) {
        if (!st.task->runnable())
            continue;
        mem::Grant grant = mem_.grant(st.task->id());
        st.env.latencyNs = grant.latency;
        st.env.bwFraction = grant.fraction;
        st.task->advance(dt, st.env);
        ++advanceCalls_;
    }
}

void
Node::tick(sim::Time now, sim::Time dt)
{
    (void)now;
    computeCoreShares();
    computeLlc();
    resolveAndAdvance(dt);

    // Quiescence tracking: a tick is quiet when nothing marked the
    // node dirty and the memory system proved the flow set repeated
    // (resolve-cache hit). Any full tick invalidates the prepared
    // task kernels -- a task may have advanced through an internal
    // boundary (stage change) that a cached kernel would miss.
    bool quiet = !dirty_ && mem_.lastResolveHit();
    dirty_ = false;
    fastReady_ = false;
    if (quiet)
        ++quietStreak_;
    else
        quietStreak_ = 0;
}

bool
Node::tryPrepareFast(sim::Time dt)
{
    for (auto &st : states_) {
        if (!st.task->runnable())
            continue;
        if (!st.task->fastPrepare(st.env, dt))
            return false;
        // A stage transition inside the last advance() can move this
        // tick's demand while the resolve cache only notices one
        // tick later; require the demand to still be exactly what
        // the cache validated.
        if (std::max(st.task->bwDemand(st.env), 0.0) != st.lastDemand)
            return false;
    }
    fastReady_ = true;
    return true;
}

uint64_t
Node::fastForward(sim::Time now, sim::Time dt, uint64_t max_ticks)
{
    (void)now;
    // Two quiet ticks are required, not one: a resolve hit at tick N
    // proves tick N repeated N-1, which pins the throttle (computed
    // from N-1's distress state) for N+1 as well.
    if (!eventDriven_ || dirty_ || quietStreak_ < 2)
        return 0;
    if (!fastReady_ && !tryPrepareFast(dt))
        return 0;

    uint64_t done = 0;
    while (done < max_ticks) {
        // Batched chunk: every runnable task promises a conservative
        // horizon of safe ticks; run the overlap through the batch
        // kernels, one op chain per tick instead of two virtual
        // dispatches per task per tick.
        uint64_t h = max_ticks - done;
        uint64_t runnables = 0;
        for (auto &st : states_) {
            if (!st.task->runnable())
                continue;
            ++runnables;
            h = std::min(h, st.task->fastHorizon(dt));
            if (h == 0)
                break;
        }
        if (h > 0) {
#ifndef NDEBUG
            verifyQuiescent(dt);
#endif
            for (auto &st : states_) {
                if (st.task->runnable())
                    st.task->fastTickRunMany(dt, h);
            }
            fastTaskTicks_ += h * runnables;
            done += h;
            continue;
        }

        // Boundary ticks (a task stopped promising a horizon): fall
        // back to per-tick stepping through the ready/run protocol.
        // Phase 1 (const): every runnable task must accept one more
        // tick before anything mutates, so a refusal leaves the
        // model exactly at a full-tick boundary.
        bool ready = true;
        for (auto &st : states_) {
            if (st.task->runnable() && !st.task->fastTickReady(dt)) {
                ready = false;
                break;
            }
        }
        if (!ready)
            break;
#ifndef NDEBUG
        verifyQuiescent(dt);
#endif
        // Phase 2: apply the cached kernels.
        bool keep = true;
        for (auto &st : states_) {
            if (!st.task->runnable())
                continue;
            if (!st.task->fastTickRun(dt))
                keep = false;
            ++fastTaskTicks_;
        }
        ++done;
        if (!keep) {
            // A task crossed an internal edge; fall back to full
            // ticks so next tick's demand is recomputed.
            markDirty();
            break;
        }
    }
    // The memory-system integrals are independent of task state
    // while the flow set is frozen, so they batch at the end.
    if (done > 0)
        mem_.fastForward(done, dt);
    return done;
}

void
Node::verifyQuiescent(sim::Time dt)
{
    (void)dt;
    // Recompute the whole pre-resolve pipeline and prove the cached
    // environments are bitwise fixed points. The recomputation is
    // idempotent: with no state changes it writes back exactly the
    // values already present.
    std::vector<wl::ExecEnv> cached;
    cached.reserve(states_.size());
    for (const auto &st : states_)
        cached.push_back(st.env);

    computeCoreShares();
    computeLlc();

    std::array<double, 2> throttle = {1.0, 1.0};
    for (int s = 0; s < mem_.numSockets(); ++s)
        throttle[s] = mem_.coreThrottle(s);

    for (size_t i = 0; i < states_.size(); ++i) {
        auto &st = states_[i];
        if (!st.task->runnable())
            continue;
        const wl::ExecEnv &c = cached[i];
        KELP_INVARIANT(st.env.effCores == c.effCores &&
                           st.env.smtFactor == c.smtFactor &&
                           st.env.missRatio == c.missRatio,
                       "fast-forward core/LLC state drifted for "
                       "task '", st.task->name(), "'");
        const auto &g = groups_.get(st.task->group());
        double pf = g.floating() ? 1.0 : g.prefetcherFraction();
        double th = throttle[st.task->homeSocket()];
        if (priorityAwareBackpressure_ &&
            g.priority() == hal::Priority::High) {
            th = 1.0;
        }
        KELP_INVARIANT(c.pfFraction == pf && c.throttle == th,
                       "fast-forward knob/throttle state drifted "
                       "for task '", st.task->name(), "'");
        KELP_INVARIANT(std::max(st.task->bwDemand(st.env), 0.0) ==
                           st.lastDemand,
                       "fast-forward demand drifted for task '",
                       st.task->name(), "'");
    }
}

} // namespace node
} // namespace kelp
