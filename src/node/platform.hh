/**
 * @file
 * Platform descriptors for the three accelerated platforms in the
 * paper's Table I: the TPU (v1) inference platform, the Cloud TPU
 * training platform, and the GPU training platform.
 *
 * Host-side parameters follow the server generations the paper's
 * platforms shipped with (Haswell/Broadwell-class for TPU and GPU,
 * Skylake-class with SNC for Cloud TPU). The coherence-tax knob is
 * highest on the Cloud TPU platform, matching the paper's observation
 * that it is the most sensitive to cross-socket traffic
 * (Section VI-A).
 */

#ifndef KELP_NODE_PLATFORM_HH
#define KELP_NODE_PLATFORM_HH

#include <string>

#include "accel/accelerator.hh"
#include "cpu/topology.hh"
#include "mem/mem_system.hh"

namespace kelp {
namespace node {

/** Complete hardware description of one node. */
struct PlatformSpec
{
    std::string name;
    cpu::TopologyConfig topo;
    mem::MemSystemConfig mem;
    accel::AcceleratorConfig accel;
};

/** The platform a given accelerator kind ships in. */
PlatformSpec platformFor(accel::Kind kind);

} // namespace node
} // namespace kelp

#endif // KELP_NODE_PLATFORM_HH
