/**
 * @file
 * RunManifest: the JSON "what produced this output" record written
 * next to every instrumented kelpsim or bench output.
 *
 * A manifest captures everything needed to reproduce and interpret a
 * run: seed and configuration, the build's `git describe`, the
 * contract-violation count, run timing (simulated seconds -- wall
 * clocks are banned by the determinism rules, and a wall time would
 * break the byte-identical-per-seed guarantee CI enforces on manifest
 * files), and percentile summaries of any latency histograms.
 *
 * Keys render in insertion order, so a producer that sets the same
 * fields in the same order always emits the same bytes.
 */

#ifndef KELP_TRACE_RUN_MANIFEST_HH
#define KELP_TRACE_RUN_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace kelp {

namespace sim {
class LatencyHistogram;
} // namespace sim

namespace trace {

/** Ordered key/value manifest with histogram summaries. */
class RunManifest
{
  public:
    /** Starts with the standard preamble: schema identifier and the
     * build's git describe. */
    RunManifest();

    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, const char *value);
    void set(const std::string &key, double value);
    void set(const std::string &key, int value);
    void set(const std::string &key, uint64_t value);
    void set(const std::string &key, bool value);

    /**
     * Summarize a histogram under `histograms.<name>`: count, mean,
     * and the p50/p90/p95/p99/p999/p9999 percentiles, each matching
     * LatencyHistogram::percentile exactly.
     */
    void addHistogram(const std::string &name,
                      const sim::LatencyHistogram &histogram);

    /**
     * Summarize a raw sample vector under `histograms.<name>` with
     * the exact same fields as addHistogram, computed with the
     * shared sim::percentileSorted convention (so a consumer cannot
     * tell -- and need not care -- whether a producer recorded a
     * histogram or kept raw samples). `values` need not be sorted.
     * Empty vectors record a count of 0 with all summaries 0.
     */
    void addSamples(const std::string &name,
                    std::vector<double> values);

    /** The build's `git describe` (baked in at configure time;
     * "unknown" outside a git checkout). */
    static const char *gitDescribe();

    /** The manifest as a JSON object (trailing newline). */
    std::string toJson() const;

    /** Write the JSON to a file; false on I/O failure. */
    bool writeJson(const std::string &path) const;

  private:
    enum class Kind { String, Number, Bool };

    struct Entry
    {
        std::string key;
        Kind kind;
        std::string str;
        double num = 0.0;
    };

    struct HistogramSummary
    {
        std::string name;
        uint64_t count;
        double mean;
        double p50, p90, p95, p99, p999, p9999;
    };

    std::vector<Entry> entries_;
    std::vector<HistogramSummary> histograms_;
};

} // namespace trace
} // namespace kelp

#endif // KELP_TRACE_RUN_MANIFEST_HH
