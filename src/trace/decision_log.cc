#include "trace/decision_log.hh"

#include <fstream>
#include <sstream>

#include "sim/log.hh"
#include "trace/json.hh"

namespace kelp {
namespace trace {

bool
DecisionEvent::changedKnobs() const
{
    return loCoresOld != loCoresNew ||
           loPrefetchersOld != loPrefetchersNew ||
           hiBackfillOld != hiBackfillNew;
}

std::string
DecisionEvent::toJson(const std::string &context) const
{
    std::ostringstream os;
    os << "{\"t\":" << jsonNumber(time)
       << ",\"kind\":" << jsonString(kind);
    if (!context.empty())
        os << ",\"run\":" << jsonString(context);
    os << ",\"lo_cores\":[" << loCoresOld << "," << loCoresNew << "]"
       << ",\"lo_prefetchers\":[" << loPrefetchersOld << ","
       << loPrefetchersNew << "]"
       << ",\"hi_backfill\":[" << hiBackfillOld << "," << hiBackfillNew
       << "]"
       << ",\"trigger\":{\"bw_s\":" << jsonNumber(bwS)
       << ",\"lat_s\":" << jsonNumber(latS)
       << ",\"sat_s\":" << jsonNumber(satS)
       << ",\"bw_h\":" << jsonNumber(bwH) << "}"
       << ",\"perf_ratio\":" << jsonNumber(perfRatio)
       << ",\"reason\":" << jsonString(reason) << "}";
    return os.str();
}

void
DecisionLog::append(DecisionEvent ev)
{
    KELP_EXPECTS(!any_ || ev.time >= lastTime_,
                 "decision log must be appended in time order "
                 "(got t=", ev.time, " after t=", lastTime_, ")");
    lastTime_ = ev.time;
    any_ = true;
    events_.push_back(std::move(ev));
    eventContext_.push_back(context_);
}

void
DecisionLog::setContext(const std::string &context)
{
    context_ = context;
    // A fresh context is a fresh run: its simulated clock restarts.
    any_ = false;
    lastTime_ = 0.0;
}

std::string
DecisionLog::toJsonl() const
{
    std::ostringstream os;
    for (size_t i = 0; i < events_.size(); ++i)
        os << events_[i].toJson(eventContext_[i]) << "\n";
    return os.str();
}

bool
DecisionLog::writeJsonl(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJsonl();
    return static_cast<bool>(out);
}

} // namespace trace
} // namespace kelp
