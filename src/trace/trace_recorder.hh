/**
 * @file
 * TraceRecorder: Chrome trace-event / Perfetto-compatible JSON export.
 *
 * Captures the run as a `traceEvents` array that chrome://tracing and
 * ui.perfetto.dev open directly:
 *
 *  - Phase spans (`ph:"X"`) on the node's three execution lanes --
 *    CPU, PCIe, Accel -- fed by the inference task's TraceEvent sink
 *    (the same stream the ASCII timeline renders).
 *  - Controller decisions (`ph:"i"` instants) on a dedicated
 *    controller lane, imported from a DecisionLog.
 *  - Telemetry series (`ph:"C"` counter tracks), imported from a
 *    Telemetry registry, so knob trajectories and saturation signals
 *    plot directly above the execution lanes.
 *
 * Lanes are modelled with the trace-event pid/tid convention: pid 1
 * is the node (tids 1..3 = CPU/PCIe/Accel), pid 2 the controller,
 * pid 3 the telemetry counters. Metadata events name them.
 *
 * Determinism and overhead: timestamps are simulated time only
 * (exported in microseconds, the trace-event unit); events are
 * buffered as small structs with interned names and serialized once
 * at end of run, so recording never perturbs the run it observes.
 */

#ifndef KELP_TRACE_TRACE_RECORDER_HH
#define KELP_TRACE_TRACE_RECORDER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "workload/ml_infer_task.hh"

namespace kelp {
namespace trace {

class DecisionLog;
class Telemetry;

/** Buffers trace events and serializes them as trace-event JSON. */
class TraceRecorder
{
  public:
    /** Execution lanes of the node process (trace tids). */
    enum class Lane : int { Cpu = 1, Pcie = 2, Accel = 3 };

    TraceRecorder() = default;

    /** A completed span on an execution lane ([start, end] in
     * simulated seconds). */
    void addSpan(Lane lane, sim::Time start, sim::Time end,
                 const std::string &name, int iteration = -1);

    /** An instant on the controller lane (decisions, mode changes). */
    void addInstant(sim::Time t, const std::string &name,
                    const std::string &detail = "");

    /** One sample of a counter track. */
    void addCounter(sim::Time t, const std::string &series,
                    double value);

    /**
     * Sink for MlInferTask::setTraceSink: maps phase-execution
     * records onto the CPU/PCIe/Accel lanes. The returned callable
     * holds a pointer to this recorder, which must outlive it.
     */
    std::function<void(const wl::TraceEvent &)> phaseSink();

    /** Import every series of a telemetry registry as counter
     * tracks. */
    void importTelemetry(const Telemetry &telemetry);

    /** Import a decision log as controller-lane instants. */
    void importDecisions(const DecisionLog &log);

    /** Buffered event count (excluding lane metadata). */
    size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** The full trace-event JSON document. */
    std::string toJson() const;

    /** Write the JSON to a file; false on I/O failure. */
    bool writeJson(const std::string &path) const;

  private:
    struct Event
    {
        char ph;          ///< 'X', 'i', or 'C'.
        int pid;
        int tid;
        sim::Time ts;     ///< Start, seconds.
        sim::Time dur;    ///< Span length, seconds ('X' only).
        double value;     ///< Counter value ('C' only).
        int iteration;    ///< Span iteration arg (-1 = none).
        uint32_t name;    ///< Interned name index.
        uint32_t detail;  ///< Interned detail index (0 = none).
    };

    uint32_t intern(const std::string &s);

    std::vector<Event> events_;
    std::vector<std::string> names_;
};

} // namespace trace
} // namespace kelp

#endif // KELP_TRACE_TRACE_RECORDER_HH
