#include "trace/telemetry.hh"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "sim/log.hh"

namespace kelp {
namespace trace {

TimeSeries::TimeSeries(std::string name)
    : name_(std::move(name))
{
    // Newlines in a series name would break the CSV's one-row-per-
    // sample framing even with RFC 4180 quoting (multi-line headers
    // defeat every line-oriented consumer). Commas and quotes are
    // legal -- toCsv escapes them.
    KELP_EXPECTS(name_.find('\n') == std::string::npos &&
                     name_.find('\r') == std::string::npos,
                 "telemetry series name must not contain newlines");
}

namespace {

/**
 * Render a CSV header cell: names containing a comma, quote, or
 * newline are quoted per RFC 4180 (quotes doubled). Newlines -- which
 * only appear if the constructor contract above was violated in
 * Count mode -- are replaced by spaces so the header stays one line.
 */
std::string
csvCell(const std::string &name)
{
    std::string clean = name;
    for (char &c : clean)
        if (c == '\n' || c == '\r')
            c = ' ';
    if (clean.find(',') == std::string::npos &&
        clean.find('"') == std::string::npos) {
        return clean;
    }
    std::string out = "\"";
    for (char c : clean) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
TimeSeries::record(sim::Time t, double value)
{
    KELP_ASSERT(times_.empty() || t >= times_.back(),
                "time series must be recorded in order");
    times_.push_back(t);
    values_.push_back(value);
}

double
TimeSeries::last() const
{
    return values_.empty() ? 0.0 : values_.back();
}

double
TimeSeries::meanOver(sim::Time from, sim::Time to) const
{
    double sum = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < times_.size(); ++i) {
        if (times_[i] >= from && times_[i] <= to) {
            sum += values_[i];
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
TimeSeries::maxOver(sim::Time from, sim::Time to) const
{
    double best = 0.0;
    bool any = false;
    for (size_t i = 0; i < times_.size(); ++i) {
        if (times_[i] >= from && times_[i] <= to) {
            best = any ? std::max(best, values_[i]) : values_[i];
            any = true;
        }
    }
    return best;
}

TimeSeries &
Telemetry::series(const std::string &name)
{
    for (auto &s : series_)
        if (s->name() == name)
            return *s;
    series_.push_back(std::make_unique<TimeSeries>(name));
    return *series_.back();
}

const TimeSeries *
Telemetry::find(const std::string &name) const
{
    for (const auto &s : series_)
        if (s->name() == name)
            return s.get();
    return nullptr;
}

void
Telemetry::addProbe(const std::string &name, Probe probe)
{
    KELP_ASSERT(probe, "null telemetry probe");
    probes_.emplace_back(&series(name), std::move(probe));
}

void
Telemetry::attach(sim::Engine &engine, sim::Time period)
{
    engine.every(period,
                 [this](sim::Time now) { sampleProbes(now); });
}

void
Telemetry::sampleProbes(sim::Time now)
{
    for (auto &[s, probe] : probes_)
        s->record(now, probe());
}

std::string
Telemetry::toCsv() const
{
    // Union of all sample times; values carry forward between a
    // series' samples. Before a series' first sample there is no
    // value to carry -- those cells are left empty rather than
    // fabricating a 0.0 the series never recorded.
    std::set<sim::Time> times;
    for (const auto &s : series_)
        times.insert(s->times().begin(), s->times().end());

    std::ostringstream os;
    os << "time";
    for (const auto &s : series_)
        os << "," << csvCell(s->name());
    os << "\n";

    std::vector<size_t> cursor(series_.size(), 0);
    std::vector<double> current(series_.size(), 0.0);
    std::vector<bool> started(series_.size(), false);
    for (sim::Time t : times) {
        for (size_t i = 0; i < series_.size(); ++i) {
            const auto &s = *series_[i];
            while (cursor[i] < s.size() && s.times()[cursor[i]] <= t) {
                current[i] = s.values()[cursor[i]];
                started[i] = true;
                ++cursor[i];
            }
        }
        os << t;
        for (size_t i = 0; i < series_.size(); ++i) {
            os << ",";
            if (started[i])
                os << current[i];
        }
        os << "\n";
    }
    return os.str();
}

bool
Telemetry::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toCsv();
    return static_cast<bool>(out);
}

} // namespace trace
} // namespace kelp
