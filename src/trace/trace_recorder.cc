#include "trace/trace_recorder.hh"

#include <fstream>
#include <sstream>

#include "sim/log.hh"
#include "trace/decision_log.hh"
#include "trace/json.hh"
#include "trace/telemetry.hh"

namespace kelp {
namespace trace {

namespace {

/** Trace-event process ids of the three lane groups. */
constexpr int kPidNode = 1;
constexpr int kPidController = 2;
constexpr int kPidCounters = 3;

/** Controller-lane thread id. */
constexpr int kTidController = 1;

/** Simulated seconds -> trace-event microseconds. */
double
toTraceUs(sim::Time t)
{
    return t * 1e6;
}

/** One `ph:"M"` metadata event naming a process or thread. */
void
metadata(std::ostringstream &os, const char *what, int pid, int tid,
         const char *name)
{
    os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << name
       << "\"}}";
}

} // namespace

uint32_t
TraceRecorder::intern(const std::string &s)
{
    // Index 0 is reserved for "no detail"; series/name sets are tiny
    // (a handful of phase and series names), so linear scan wins over
    // a map -- and keeps iteration order trivially deterministic.
    if (names_.empty())
        names_.push_back("");
    for (uint32_t i = 0; i < names_.size(); ++i)
        if (names_[i] == s)
            return i;
    names_.push_back(s);
    return static_cast<uint32_t>(names_.size() - 1);
}

void
TraceRecorder::addSpan(Lane lane, sim::Time start, sim::Time end,
                       const std::string &name, int iteration)
{
    KELP_EXPECTS(end >= start, "trace span must not end before it "
                 "starts (", name, ": ", start, " .. ", end, ")");
    Event ev{};
    ev.ph = 'X';
    ev.pid = kPidNode;
    ev.tid = static_cast<int>(lane);
    ev.ts = start;
    ev.dur = end - start;
    ev.iteration = iteration;
    ev.name = intern(name);
    ev.detail = intern("");
    events_.push_back(ev);
}

void
TraceRecorder::addInstant(sim::Time t, const std::string &name,
                          const std::string &detail)
{
    Event ev{};
    ev.ph = 'i';
    ev.pid = kPidController;
    ev.tid = kTidController;
    ev.ts = t;
    ev.iteration = -1;
    ev.name = intern(name);
    ev.detail = intern(detail);
    events_.push_back(ev);
}

void
TraceRecorder::addCounter(sim::Time t, const std::string &series,
                          double value)
{
    Event ev{};
    ev.ph = 'C';
    ev.pid = kPidCounters;
    ev.tid = 0;
    ev.ts = t;
    ev.value = value;
    ev.iteration = -1;
    ev.name = intern(series);
    ev.detail = intern("");
    events_.push_back(ev);
}

std::function<void(const wl::TraceEvent &)>
TraceRecorder::phaseSink()
{
    return [this](const wl::TraceEvent &ev) {
        Lane lane = Lane::Cpu;
        const char *name = "host";
        switch (ev.kind) {
          case wl::SegmentKind::Host:
            lane = Lane::Cpu;
            name = "host";
            break;
          case wl::SegmentKind::Pcie:
            lane = Lane::Pcie;
            name = "pcie";
            break;
          case wl::SegmentKind::Accel:
            lane = Lane::Accel;
            name = "accel";
            break;
        }
        addSpan(lane, ev.start, ev.end, name, ev.iteration);
    };
}

void
TraceRecorder::importTelemetry(const Telemetry &telemetry)
{
    for (const auto &series : telemetry.all()) {
        for (size_t i = 0; i < series->size(); ++i) {
            addCounter(series->times()[i], series->name(),
                       series->values()[i]);
        }
    }
}

void
TraceRecorder::importDecisions(const DecisionLog &log)
{
    for (const DecisionEvent &d : log.events()) {
        std::ostringstream detail;
        if (d.changedKnobs()) {
            detail << "lo_cores " << d.loCoresOld << "->"
                   << d.loCoresNew << ", lo_prefetchers "
                   << d.loPrefetchersOld << "->" << d.loPrefetchersNew
                   << ", hi_backfill " << d.hiBackfillOld << "->"
                   << d.hiBackfillNew << "; ";
        }
        detail << d.reason;
        addInstant(d.time, d.kind, detail.str());
    }
}

std::string
TraceRecorder::toJson() const
{
    std::ostringstream os;
    os << "{\"traceEvents\":[\n";

    // Lane metadata: stable, emitted whether or not a lane has
    // events, so traces from different runs line up in the viewer.
    metadata(os, "process_name", kPidNode, 0, "node");
    os << ",\n";
    metadata(os, "thread_name", kPidNode,
             static_cast<int>(Lane::Cpu), "CPU");
    os << ",\n";
    metadata(os, "thread_name", kPidNode,
             static_cast<int>(Lane::Pcie), "PCIe");
    os << ",\n";
    metadata(os, "thread_name", kPidNode,
             static_cast<int>(Lane::Accel), "Accel");
    os << ",\n";
    metadata(os, "process_name", kPidController, 0, "controller");
    os << ",\n";
    metadata(os, "thread_name", kPidController, kTidController,
             "decisions");
    os << ",\n";
    metadata(os, "process_name", kPidCounters, 0, "telemetry");

    for (const Event &ev : events_) {
        os << ",\n{\"name\":" << jsonString(names_[ev.name])
           << ",\"ph\":\"" << ev.ph << "\""
           << ",\"ts\":" << jsonNumber(toTraceUs(ev.ts))
           << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
        switch (ev.ph) {
          case 'X':
            os << ",\"dur\":" << jsonNumber(toTraceUs(ev.dur));
            if (ev.iteration >= 0)
                os << ",\"args\":{\"iteration\":" << ev.iteration
                   << "}";
            break;
          case 'C':
            os << ",\"args\":{\"value\":" << jsonNumber(ev.value)
               << "}";
            break;
          case 'i':
            os << ",\"s\":\"t\"";
            if (ev.detail != 0)
                os << ",\"args\":{\"detail\":"
                   << jsonString(names_[ev.detail]) << "}";
            break;
          default:
            break;
        }
        os << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
    return os.str();
}

bool
TraceRecorder::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

} // namespace trace
} // namespace kelp
