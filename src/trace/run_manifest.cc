#include "trace/run_manifest.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/stats.hh"
#include "trace/json.hh"

#ifndef KELP_GIT_DESCRIBE
#define KELP_GIT_DESCRIBE "unknown"
#endif

namespace kelp {
namespace trace {

RunManifest::RunManifest()
{
    set("schema", "kelp-run-manifest-v1");
    set("git_describe", gitDescribe());
}

const char *
RunManifest::gitDescribe()
{
    return KELP_GIT_DESCRIBE;
}

void
RunManifest::set(const std::string &key, const std::string &value)
{
    entries_.push_back({key, Kind::String, value, 0.0});
}

void
RunManifest::set(const std::string &key, const char *value)
{
    set(key, std::string(value));
}

void
RunManifest::set(const std::string &key, double value)
{
    entries_.push_back({key, Kind::Number, "", value});
}

void
RunManifest::set(const std::string &key, int value)
{
    set(key, static_cast<double>(value));
}

void
RunManifest::set(const std::string &key, uint64_t value)
{
    set(key, static_cast<double>(value));
}

void
RunManifest::set(const std::string &key, bool value)
{
    entries_.push_back({key, Kind::Bool, value ? "true" : "false", 0.0});
}

void
RunManifest::addHistogram(const std::string &name,
                          const sim::LatencyHistogram &histogram)
{
    HistogramSummary h;
    h.name = name;
    h.count = histogram.count();
    h.mean = histogram.mean();
    h.p50 = histogram.percentile(50.0);
    h.p90 = histogram.percentile(90.0);
    h.p95 = histogram.percentile(95.0);
    h.p99 = histogram.percentile(99.0);
    h.p999 = histogram.percentile(99.9);
    h.p9999 = histogram.percentile(99.99);
    histograms_.push_back(h);
}

void
RunManifest::addSamples(const std::string &name,
                        std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    HistogramSummary h;
    h.name = name;
    h.count = static_cast<uint64_t>(values.size());
    if (values.empty()) {
        h.mean = h.p50 = h.p90 = h.p95 = h.p99 = h.p999 = h.p9999 =
            0.0;
        histograms_.push_back(h);
        return;
    }
    double sum = 0.0;
    for (double v : values)
        sum += v;
    h.mean = sum / static_cast<double>(values.size());
    h.p50 = sim::percentileSorted(values, 50.0);
    h.p90 = sim::percentileSorted(values, 90.0);
    h.p95 = sim::percentileSorted(values, 95.0);
    h.p99 = sim::percentileSorted(values, 99.0);
    h.p999 = sim::percentileSorted(values, 99.9);
    h.p9999 = sim::percentileSorted(values, 99.99);
    histograms_.push_back(h);
}

std::string
RunManifest::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    bool first = true;
    for (const Entry &e : entries_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  " << jsonString(e.key) << ": ";
        switch (e.kind) {
          case Kind::String:
            os << jsonString(e.str);
            break;
          case Kind::Number:
            os << jsonNumber(e.num);
            break;
          case Kind::Bool:
            os << e.str;
            break;
        }
    }
    if (!histograms_.empty()) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  \"histograms\": {\n";
        for (size_t i = 0; i < histograms_.size(); ++i) {
            const HistogramSummary &h = histograms_[i];
            os << "    " << jsonString(h.name) << ": {"
               << "\"count\": " << h.count
               << ", \"mean\": " << jsonNumber(h.mean)
               << ", \"p50\": " << jsonNumber(h.p50)
               << ", \"p90\": " << jsonNumber(h.p90)
               << ", \"p95\": " << jsonNumber(h.p95)
               << ", \"p99\": " << jsonNumber(h.p99)
               << ", \"p999\": " << jsonNumber(h.p999)
               << ", \"p9999\": " << jsonNumber(h.p9999) << "}";
            if (i + 1 < histograms_.size())
                os << ",";
            os << "\n";
        }
        os << "  }";
    }
    os << "\n}\n";
    return os.str();
}

bool
RunManifest::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

} // namespace trace
} // namespace kelp
