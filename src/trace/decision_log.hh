/**
 * @file
 * DecisionLog: the controller's audit trail.
 *
 * Every actuation the runtime takes -- an Algorithm 1 knob move, a
 * churn membership clamp, an SLO-ladder rung transition or clamp, a
 * fail-safe entry/exit, a failed/recovered knob write, a watchdog
 * trip, a crash/restart -- is recorded as one DecisionEvent: when it
 * happened (simulated time), what triggered it (the sample values the
 * controller acted on), the old -> new knob state, and a
 * human-readable reason. The log is queryable in tests and exports as
 * JSONL (one JSON object per line), so a degraded or surprising run
 * can be replayed decision by decision.
 *
 * The log never samples anything itself: producers (KelpController,
 * RuntimeManager) append events at the moment they act, which keeps
 * the record exact and the tick path allocation-light (events are
 * buffered in memory and serialized once at end of run).
 *
 * Determinism: events carry simulated time only; with the same seed,
 * two runs produce byte-identical JSONL.
 */

#ifndef KELP_TRACE_DECISION_LOG_HH
#define KELP_TRACE_DECISION_LOG_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace kelp {
namespace trace {

/** One audited controller action. */
struct DecisionEvent
{
    /** Simulated time of the action, seconds. */
    sim::Time time = 0.0;

    /**
     * Action class: "algorithm1", "membership-clamp", "slo-rung",
     * "slo-clamp", "ct-adjust" (CoreThrottle core-count change),
     * "actuation-fail", "actuation-recovered",
     * "watchdog-trip" (fail-safe entry), "watchdog-rearm" (fail-safe
     * exit), "restart".
     */
    std::string kind;

    /** Deterministic human-readable explanation. */
    std::string reason;

    /** Knob state before -> after (low-priority cores, low-priority
     * prefetchers, backfilled high-priority-subdomain cores). For
     * events that change no knob, old == new == current state. */
    int loCoresOld = 0;
    int loCoresNew = 0;
    int loPrefetchersOld = 0;
    int loPrefetchersNew = 0;
    int hiBackfillOld = 0;
    int hiBackfillNew = 0;

    /** Trigger sample the decision was made on (0 when the event was
     * not driven by a counter sample). */
    double bwS = 0.0;
    double latS = 0.0;
    double satS = 0.0;
    double bwH = 0.0;

    /** ML performance ratio that drove an SLO event (negative when
     * not applicable). */
    double perfRatio = -1.0;

    /** True when any knob differs between old and new. */
    bool changedKnobs() const;

    /** One JSONL line (no trailing newline). */
    std::string toJson(const std::string &context) const;
};

/** Append-only audit log; one instance per run (or per labelled
 * sub-run via setContext). */
class DecisionLog
{
  public:
    DecisionLog() = default;

    /**
     * Append one event. Within a context, event times must be
     * non-decreasing (the producers act in simulated-time order; an
     * out-of-order append means a producer is mis-stamping events).
     */
    void append(DecisionEvent ev);

    /**
     * Label subsequent events (exported as a "run" field). Benches
     * that pool several runs into one log set a fresh context per
     * run; the monotonic-time check restarts with it.
     */
    void setContext(const std::string &context);
    const std::string &context() const { return context_; }

    const std::vector<DecisionEvent> &events() const { return events_; }
    size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** All events as JSONL (one object per line, trailing newline). */
    std::string toJsonl() const;

    /** Write JSONL to a file; false on I/O failure. */
    bool writeJsonl(const std::string &path) const;

  private:
    std::vector<DecisionEvent> events_;

    /** Per-event context label ("" = unlabelled), parallel to
     * events_. */
    std::vector<std::string> eventContext_;

    std::string context_;
    sim::Time lastTime_ = 0.0;
    bool any_ = false;
};

} // namespace trace
} // namespace kelp

#endif // KELP_TRACE_DECISION_LOG_HH
