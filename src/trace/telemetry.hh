/**
 * @file
 * Telemetry: named time-series recording for experiments.
 *
 * A TimeSeries accumulates (time, value) samples; a Telemetry
 * registry groups series, samples registered probes on a fixed
 * cadence, and exports everything as CSV for plotting. This is how
 * the runtime's knob trajectories (Figures 11 and 12), saturation
 * signals (Figure 7), and bandwidth traces are captured without
 * entangling the model code with I/O.
 */

#ifndef KELP_TRACE_TELEMETRY_HH
#define KELP_TRACE_TELEMETRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "sim/types.hh"

namespace kelp {
namespace trace {

/** One named (time, value) series. */
class TimeSeries
{
  public:
    explicit TimeSeries(std::string name);

    const std::string &name() const { return name_; }

    /** Append a sample (times must be non-decreasing). */
    void record(sim::Time t, double value);

    size_t size() const { return times_.size(); }
    bool empty() const { return times_.empty(); }

    const std::vector<sim::Time> &times() const { return times_; }
    const std::vector<double> &values() const { return values_; }

    /** Last recorded value (0 when empty). */
    double last() const;

    /** Arithmetic mean of samples in [from, to]. */
    double meanOver(sim::Time from, sim::Time to) const;

    /** Largest sample in [from, to] (0 when none). */
    double maxOver(sim::Time from, sim::Time to) const;

  private:
    std::string name_;
    std::vector<sim::Time> times_;
    std::vector<double> values_;
};

/** A value source sampled on the telemetry cadence. */
using Probe = std::function<double()>;

/** Registry of series and probes for one experiment. */
class Telemetry
{
  public:
    Telemetry() = default;

    /** Create (or fetch) a series by name. */
    TimeSeries &series(const std::string &name);

    /** Find a series; nullptr if absent. */
    const TimeSeries *find(const std::string &name) const;

    /** Register a probe sampled into the named series. */
    void addProbe(const std::string &name, Probe probe);

    /**
     * Attach to an engine: all probes are sampled every `period`.
     */
    void attach(sim::Engine &engine, sim::Time period);

    /** Sample all probes now (also called by the engine hook). */
    void sampleProbes(sim::Time now);

    /** All series, in creation order. */
    const std::vector<std::unique_ptr<TimeSeries>> &all() const
    {
        return series_;
    }

    /**
     * Render every series as CSV: a `time` column followed by one
     * column per series, rows aligned on the union of sample times
     * (missing cells carry the previous value forward).
     */
    std::string toCsv() const;

    /** Write the CSV to a file; returns false on I/O failure. */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<std::unique_ptr<TimeSeries>> series_;
    std::vector<std::pair<TimeSeries *, Probe>> probes_;
};

} // namespace trace
} // namespace kelp

#endif // KELP_TRACE_TELEMETRY_HH
