/**
 * @file
 * ASCII timeline (Gantt) rendering of phase-execution traces.
 *
 * Turns a stream of TraceEvents (from MlInferTask's trace sink) into
 * the three-lane CPU / PCIe / Accel timeline the paper's Figure 3
 * plots, for terminal output in benches and examples.
 */

#ifndef KELP_TRACE_TIMELINE_HH
#define KELP_TRACE_TIMELINE_HH

#include <string>
#include <vector>

#include "workload/ml_infer_task.hh"

namespace kelp {
namespace trace {

/** Rendering options. */
struct TimelineOptions
{
    /** Character width of the plotted span. */
    int width = 72;

    /** Lane glyphs for Host / Pcie / Accel segments. */
    char hostGlyph = 'C';
    char pcieGlyph = '-';
    char accelGlyph = 'T';

    /** Lane labels. */
    std::string hostLabel = "CPU ";
    std::string pcieLabel = "PCIe";
    std::string accelLabel = "Acc ";
};

/**
 * Render the events as a three-lane timeline. Events must be
 * time-ordered (as emitted by the trace sink); the span is
 * [first.start, last.end]. Returns an empty string for no events.
 */
std::string renderTimeline(const std::vector<wl::TraceEvent> &events,
                           const TimelineOptions &opts = {});

/**
 * The trailing `count` events (e.g., one request's worth: stages x
 * iterations). Returns all events if fewer exist.
 */
std::vector<wl::TraceEvent>
lastEvents(const std::vector<wl::TraceEvent> &events, size_t count);

} // namespace trace
} // namespace kelp

#endif // KELP_TRACE_TIMELINE_HH
