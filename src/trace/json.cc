#include "trace/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdint>

namespace kelp {
namespace trace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Counts, knob settings, and whole-second times dominate the
    // exports; print them as integers for readability.
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace trace
} // namespace kelp
