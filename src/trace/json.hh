/**
 * @file
 * Minimal JSON output helpers shared by the observability writers
 * (TraceRecorder, DecisionLog, RunManifest).
 *
 * Only serialization lives here -- the exports are consumed by
 * Perfetto, chrome://tracing, and ad-hoc analysis scripts, never read
 * back by the simulator. Formatting is fully deterministic: a given
 * value always renders to the same bytes, which is what lets CI
 * byte-diff same-seed runs' JSON outputs.
 */

#ifndef KELP_TRACE_JSON_HH
#define KELP_TRACE_JSON_HH

#include <string>

namespace kelp {
namespace trace {

/**
 * Escape a string for embedding between JSON double quotes: quote,
 * backslash, and control characters are encoded per RFC 8259 (the
 * result does NOT include the surrounding quotes).
 */
std::string jsonEscape(const std::string &s);

/** `"escaped"` -- jsonEscape with the surrounding quotes. */
std::string jsonString(const std::string &s);

/**
 * Render a double as a JSON number. Integral values within the
 * exactly-representable range print without a fraction ("3" not
 * "3.0"); everything else uses round-trip precision. Non-finite
 * values (which JSON cannot express) render as `null`.
 */
std::string jsonNumber(double v);

} // namespace trace
} // namespace kelp

#endif // KELP_TRACE_JSON_HH
