#include "trace/timeline.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"
#include "sim/types.hh"

namespace kelp {
namespace trace {

std::vector<wl::TraceEvent>
lastEvents(const std::vector<wl::TraceEvent> &events, size_t count)
{
    if (events.size() <= count)
        return events;
    return {events.end() - static_cast<long>(count), events.end()};
}

std::string
renderTimeline(const std::vector<wl::TraceEvent> &events,
               const TimelineOptions &opts)
{
    if (events.empty())
        return "";
    KELP_ASSERT(opts.width > 0, "timeline width must be positive");

    double t0 = events.front().start;
    double t1 = events.back().end;
    for (const auto &e : events) {
        t0 = std::min(t0, e.start);
        t1 = std::max(t1, e.end);
    }
    double span = std::max(t1 - t0, 1e-12);
    double scale = opts.width / span;

    std::string lanes[3] = {std::string(opts.width, ' '),
                            std::string(opts.width, ' '),
                            std::string(opts.width, ' ')};
    for (const auto &e : events) {
        int a = static_cast<int>((e.start - t0) * scale);
        int b = std::max(a + 1,
                         static_cast<int>((e.end - t0) * scale));
        a = std::clamp(a, 0, opts.width - 1);
        b = std::clamp(b, a + 1, opts.width);
        int lane;
        char glyph;
        switch (e.kind) {
          case wl::SegmentKind::Host:
            lane = 0;
            glyph = opts.hostGlyph;
            break;
          case wl::SegmentKind::Pcie:
            lane = 1;
            glyph = opts.pcieGlyph;
            break;
          default:
            lane = 2;
            glyph = opts.accelGlyph;
            break;
        }
        for (int i = a; i < b; ++i)
            lanes[lane][i] = glyph;
    }

    std::ostringstream os;
    os << "span: " << sim::toMsec(span) << " ms\n";
    os << "  " << opts.hostLabel << " |" << lanes[0] << "|\n";
    os << "  " << opts.pcieLabel << " |" << lanes[1] << "|\n";
    os << "  " << opts.accelLabel << " |" << lanes[2] << "|\n";
    return os.str();
}

} // namespace trace
} // namespace kelp
