/**
 * @file
 * Scenario builder and runner: assembles a node for one workload mix
 * under one of the four evaluated configurations (Section V-A),
 * runs it with warmup, and reports normalized metrics.
 *
 *  - BL    Baseline: priorities declared, contention unmanaged.
 *  - CT    CoreThrottle: CAT partition for the ML task + feedback
 *          core-count throttling of low-priority tasks (prior work).
 *  - KP-SD Kelp Subdomain: NUMA subdomains + prefetcher toggling.
 *  - KP    Full Kelp: KP-SD + backfilling the high-priority
 *          subdomain, managed by Algorithms 1 and 2.
 */

#ifndef KELP_EXP_SCENARIO_HH
#define KELP_EXP_SCENARIO_HH

#include <memory>
#include <optional>
#include <vector>

#include "exp/lifecycle.hh"
#include "hal/fault_injector.hh"
#include "kelp/manager.hh"
#include "kelp/slo_guard.hh"
#include "node/node.hh"
#include "serve/server.hh"
#include "sim/engine.hh"
#include "workload/batch_task.hh"
#include "workload/catalog.hh"
#include "workload/ml_infer_task.hh"
#include "workload/ml_train_task.hh"

namespace kelp {

namespace trace {
class DecisionLog;
class Telemetry;
class TraceRecorder;
} // namespace trace

namespace exp {

/**
 * The four evaluated runtime configurations, plus FG: the
 * fine-grained hardware memory-QoS what-if of Section VI-D
 * (request-priority memory controllers + priority-aware
 * backpressure), used by the ablation bench to estimate the headroom
 * the paper projects for future hardware.
 */
enum class ConfigKind { BL, CT, KPSD, KP, FG };

const char *configName(ConfigKind kind);

/** Everything that defines one experimental run. */
struct RunConfig
{
    wl::MlWorkload ml = wl::MlWorkload::Cnn1;
    ConfigKind config = ConfigKind::BL;

    /** Colocated CPU workload; nullopt = standalone. */
    std::optional<wl::CpuWorkload> cpu;

    /** Instances of the CPU workload (threads follow the catalog's
     * threads-per-instance). */
    int cpuInstances = 1;

    /** For CPUML-style sweeps: total threads instead of instances. */
    int cpuThreadsOverride = 0;

    /** Synthetic-aggressor level (DramAggressor only). */
    wl::AggressorLevel aggressorLevel = wl::AggressorLevel::High;

    /** Fraction of aggressor data on the ML task's socket. */
    double aggressorDataLocal = 1.0;

    /** Fraction of aggressor threads on the ML task's socket. */
    double aggressorThreadsLocal = 1.0;

    /** Fraction of low-priority prefetchers force-enabled; negative
     * leaves the controller in charge (Figure 7 sweeps this with the
     * controller replaced by a fixed setting). */
    double forcedPrefetcherFraction = -1.0;

    /** Serial single-request inference mode (Figure 3 trace). */
    bool serialInference = false;

    /** Non-zero: replace the inference server's closed-loop load
     * generation with open-loop Poisson arrivals at this rate
     * (knee-sweep experiments). */
    double openLoopQps = 0.0;

    /** Simulation timing. */
    sim::Time tick = 100 * sim::usec;
    sim::Time warmup = 80.0;
    sim::Time measure = 60.0;
    sim::Time samplePeriod = 4.0;

    uint64_t seed = 12345;

    /**
     * HAL fault injection (chaos experiments). An all-zero plan (the
     * default) bypasses the injection layer entirely, so fault-free
     * runs are bit-identical to builds without this feature.
     */
    hal::FaultPlan faults;

    /** Seed of the fault-injection streams (independent of `seed` so
     * the same workload can be replayed under different faults). */
    uint64_t faultSeed = 1;

    /**
     * Under an active fault plan: true runs the hardened controller
     * (sample guard + actuation retry + watchdog fail-safe), false
     * the naive one, which trusts every read and forgets failed
     * writes. Ignored when `faults` is all-zero.
     */
    bool hardened = true;

    /**
     * Dynamic colocation churn: seeded task arrival/departure/crash
     * events mid-run. Disabled by default; when enabled the Kelp
     * controller re-reads low-priority membership every sample.
     */
    ChurnConfig churn;

    /**
     * Non-zero: crash and restart the runtime controller once at
     * this time (checkpoint replay + knob reconciliation). Only
     * configurations with a registered controller factory (KP/KP-SD)
     * honor it; others run unaffected.
     */
    sim::Time killAt = 0.0;

    /**
     * Full kill/restart schedule: additional controller crash times
     * beyond killAt, each handled exactly like killAt. The scenario
     * fuzzer mutates this list to search for restart-recovery corner
     * cases (repeated crashes, crashes inside SLO escalations); the
     * single killAt knob remains for the CLI and the existing
     * benches. Times must be positive; order does not matter.
     */
    std::vector<sim::Time> kills;

    /** SLO degradation ladder (KP/KP-SD; disabled by default). */
    runtime::SloConfig slo;

    /**
     * Open-loop serving layer (traffic shaping, admission control,
     * batching, brownout; see src/serve/). Disabled by default; only
     * honored when the ML workload is an inference server, training
     * workloads ignore it.
     */
    serve::ServeConfig serving;

    /**
     * Event-driven tick engine (default on). When off, every tick
     * runs the full pipeline. Results are bit-identical either way;
     * the flag exists for A/B perf measurement and identity tests.
     */
    bool eventDriven = true;
};

/** Normalized results of a run. */
struct RunResult
{
    /** ML performance: steps/s (training) or QPS (inference). */
    double mlPerf = 0.0;

    /** p95 request latency, seconds (inference only; 0 otherwise). */
    double mlTailP95 = 0.0;

    /** Aggregate CPU-task throughput, standalone thread-seconds/s. */
    double cpuThroughput = 0.0;

    /** Controller parameter time-averages (Figures 11/12). */
    double avgLoCores = 0.0;
    double avgLoPrefetchers = 0.0;
    double avgHiBackfill = 0.0;

    /** Watchdog telemetry (fault-injection runs; 0 otherwise). */
    double timeInFailSafe = 0.0;
    uint64_t failSafeEntries = 0;

    /** Mean memory saturation over the measurement window. */
    double avgSaturation = 0.0;

    /** Mean socket bandwidth over the measurement window, GiB/s. */
    double avgSocketBw = 0.0;

    /** Churn telemetry (churn runs; 0 otherwise). */
    uint64_t churnArrivals = 0;
    uint64_t churnFinishes = 0;
    uint64_t churnCrashes = 0;
    uint64_t churnRejected = 0;

    /** Controller crash/restart telemetry (kill-at runs). */
    uint64_t restarts = 0;

    /** SLO-ladder telemetry (0 when the ladder is disarmed). */
    uint64_t sloViolations = 0;
    uint64_t sloTransitions = 0;
    int sloFinalRung = 0;

    /** Request-serving drop accounting, whole run (traffic runs;
     * all-zero otherwise). */
    uint64_t reqArrivals = 0;
    uint64_t reqAdmitted = 0;
    uint64_t reqRejected = 0;
    uint64_t reqShed = 0;
    uint64_t reqExpired = 0;
    uint64_t reqCompleted = 0;
    uint64_t reqInFlight = 0;

    /** Brownout-ladder telemetry (traffic runs). */
    uint64_t brownoutTransitions = 0;
    int brownoutFinal = 0;

    /** Request-latency tail over the measurement window, seconds
     * (traffic runs; 0 otherwise). */
    double reqP99 = 0.0;
    double reqP999 = 0.0;
    double reqP9999 = 0.0;

    /** Tick-engine cost breakdown, whole run (deterministic counters,
     * safe to byte-diff across hosts). */
    uint64_t engineTicks = 0;     ///< Total ticks simulated.
    uint64_t engineFastTicks = 0; ///< Ticks consumed by fast-forward.
    uint64_t engineFullTicks = 0; ///< Ticks through the full pipeline.
    uint64_t periodicFires = 0;   ///< Periodic callback firings.
    uint64_t demandCalls = 0;     ///< Full-path bwDemand() calls.
    uint64_t advanceCalls = 0;    ///< Full-path advance() calls.
    uint64_t fastTaskTicks = 0;   ///< Task-ticks via cached kernels.
    uint64_t resolveCacheHits = 0;
    uint64_t resolveCacheMisses = 0;
    uint64_t mcCacheHits = 0;
    uint64_t mcCacheMisses = 0;
    uint64_t memFastTicks = 0;

    /** engineFastTicks / engineTicks (0 when no ticks ran). */
    double skipRatio() const
    {
        return engineTicks == 0
                   ? 0.0
                   : static_cast<double>(engineFastTicks) /
                         static_cast<double>(engineTicks);
    }
};

/**
 * A fully-assembled scenario, exposed so tests and special-purpose
 * experiments (timeline traces, what-ifs) can drive the pieces
 * directly.
 */
struct Scenario
{
    std::unique_ptr<node::Node> node;
    std::unique_ptr<sim::Engine> engine;
    std::unique_ptr<runtime::RuntimeManager> manager;

    /** Fault-injecting HAL wrappers (fault-injection runs only). */
    std::unique_ptr<hal::FaultyCounterSource> faultyCounters;
    std::unique_ptr<hal::FaultyKnobSink> faultyKnobs;

    /** Churn driver (churn runs only). */
    std::unique_ptr<LifecycleEngine> lifecycle;

    /** Open-loop request server (traffic runs only). */
    std::unique_ptr<serve::RequestServer> server;

    wl::Task *mlTask = nullptr;
    wl::MlInferTask *inferTask = nullptr;
    std::vector<wl::BatchTask *> cpuTasks;

    sim::GroupId mlGroup = sim::invalidId;
    sim::GroupId cpuGroup = sim::invalidId;
};

/**
 * Optional observability sinks for an instrumented run. All sinks are
 * borrowed (must outlive the scenario) and all default to null: a
 * default Observability installs nothing, and the run is bit-identical
 * to the un-instrumented paper path.
 */
struct Observability
{
    /** Perfetto-compatible span recorder; receives the inference
     * task's phase events (CPU/PCIe/Accel lanes) as they happen.
     * Counter tracks and decision instants are imported at end of
     * run by the caller (importTelemetry / importDecisions). */
    trace::TraceRecorder *recorder = nullptr;

    /** Controller decision audit log. */
    trace::DecisionLog *decisions = nullptr;

    /** Knob/hardware-signal time series, sampled on a periodic. The
     * standard probe set (socket bandwidth, memory latency,
     * saturation, contract violations, controller knobs) is
     * installed automatically. */
    trace::Telemetry *telemetry = nullptr;

    /** Telemetry sampling period, simulated seconds (<= 0 follows
     * the controller sampling period). */
    sim::Time telemetryPeriod = 0.0;

    /** True when any sink is attached. */
    bool any() const { return recorder || decisions || telemetry; }
};

/** Build a scenario without running it. */
Scenario buildScenario(const RunConfig &cfg);

/** Build a scenario with observability sinks installed. */
Scenario buildScenario(const RunConfig &cfg,
                       const Observability &obs);

/**
 * Warm up, measure, and summarize an already-built scenario. Shared
 * by the plain and instrumented paths so both compute the exact same
 * RunResult from the same simulated run.
 */
RunResult measureScenario(Scenario &s, const RunConfig &cfg);

/** Build, warm up, measure, and summarize. */
RunResult runScenario(const RunConfig &cfg);

/**
 * Standalone ML performance (and p95 tail) for normalization,
 * memoized per workload within the process.
 */
RunResult standaloneReference(wl::MlWorkload ml);

/**
 * Baseline CPU throughput for a mix at given instance count, used as
 * the CPU-side normalization anchor in the figure benches.
 */
double baselineCpuThroughput(const RunConfig &cfg);

} // namespace exp
} // namespace kelp

#endif // KELP_EXP_SCENARIO_HH
