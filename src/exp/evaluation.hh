/**
 * @file
 * The paper's full evaluation grid (Section V-C): every ML workload
 * colocated with every CPU workload under every configuration, with
 * the slowdown/efficiency summary statistics of Figures 13 and 14.
 */

#ifndef KELP_EXP_EVALUATION_HH
#define KELP_EXP_EVALUATION_HH

#include <vector>

#include "exp/scenario.hh"

namespace kelp {
namespace exp {

/** One workload mix of the evaluation grid. */
struct Mix
{
    wl::MlWorkload ml;
    wl::CpuWorkload cpu;

    /** Instances/threads for the CPU workload (RunConfig semantics). */
    int cpuInstances = 1;
    int cpuThreadsOverride = 0;
};

/** Results for one mix across the four configurations. */
struct MixResult
{
    Mix mix;

    /** ML slowdown per config (standalone perf / achieved perf). */
    double mlSlowdown[4] = {1, 1, 1, 1};

    /** CPU slowdown per config (Baseline tput / achieved tput). */
    double cpuSlowdown[4] = {1, 1, 1, 1};

    /** Raw performance per config. */
    double mlPerf[4] = {0, 0, 0, 0};
    double cpuTput[4] = {0, 0, 0, 0};
};

/** Index of a ConfigKind within the MixResult arrays. */
int configIndex(ConfigKind kind);

/** The 12 mixes of the paper's evaluation (4 ML x 3 CPU), with
 * representative load levels per platform. */
std::vector<Mix> evaluationMixes();

/** Run one mix across BL/CT/KP-SD/KP. */
MixResult runMix(const Mix &mix);

/** Run the full grid (12 mixes x 4 configurations). */
std::vector<MixResult> runEvaluationGrid(bool verbose = true);

/**
 * Efficiency metric (Section V-C): ML performance gain over Baseline
 * per unit of CPU throughput loss vs. Baseline. Higher is better;
 * returns a large sentinel when CPU loss is ~zero.
 */
double efficiency(const MixResult &r, ConfigKind kind);

} // namespace exp
} // namespace kelp

#endif // KELP_EXP_EVALUATION_HH
