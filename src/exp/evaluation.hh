/**
 * @file
 * The paper's full evaluation grid (Section V-C): every ML workload
 * colocated with every CPU workload under every configuration, with
 * the slowdown/efficiency summary statistics of Figures 13 and 14.
 */

#ifndef KELP_EXP_EVALUATION_HH
#define KELP_EXP_EVALUATION_HH

#include <string>
#include <vector>

#include "exp/scenario.hh"

namespace kelp {
namespace exp {

/** One workload mix of the evaluation grid. */
struct Mix
{
    wl::MlWorkload ml;
    wl::CpuWorkload cpu;

    /** Instances/threads for the CPU workload (RunConfig semantics). */
    int cpuInstances = 1;
    int cpuThreadsOverride = 0;
};

/** Results for one mix across the four configurations. */
struct MixResult
{
    Mix mix;

    /** ML slowdown per config (standalone perf / achieved perf). */
    double mlSlowdown[4] = {1, 1, 1, 1};

    /** CPU slowdown per config (Baseline tput / achieved tput). */
    double cpuSlowdown[4] = {1, 1, 1, 1};

    /** Raw performance per config. */
    double mlPerf[4] = {0, 0, 0, 0};
    double cpuTput[4] = {0, 0, 0, 0};
};

/** Index of a ConfigKind within the MixResult arrays. */
int configIndex(ConfigKind kind);

/** The 12 mixes of the paper's evaluation (4 ML x 3 CPU), with
 * representative load levels per platform. */
std::vector<Mix> evaluationMixes();

/** Execution knobs for the evaluation grid. */
struct GridOptions
{
    bool verbose = true;

    /** Worker count; 1 = serial reference path, <= 0 = all cores. */
    int jobs = 1;

    /** Negative = RunConfig defaults. The wall-clock harness and CI
     * shorten the runs; results then differ from the paper grid but
     * stay deterministic and jobs-invariant. */
    double warmup = -1.0;
    double measure = -1.0;

    /** Non-empty: write a run-manifest JSON (build, grid settings,
     * per-config slowdown summary) to this path after the grid. */
    std::string manifestPath;
};

/** Run one mix across BL/CT/KP-SD/KP. */
MixResult runMix(const Mix &mix);

/** Run one mix with the grid's warmup/measure overrides applied. */
MixResult runMix(const Mix &mix, const GridOptions &opt);

/** Run the full grid (12 mixes x 4 configurations). */
std::vector<MixResult> runEvaluationGrid(bool verbose = true);

/**
 * Run the full grid `opt.jobs` mixes at a time. Results -- and, with
 * `opt.verbose`, the progress lines -- are byte-identical to the
 * serial path for every job count (see DESIGN.md section 10).
 */
std::vector<MixResult> runEvaluationGrid(const GridOptions &opt);

/**
 * Efficiency metric (Section V-C): ML performance gain over Baseline
 * per unit of CPU throughput loss vs. Baseline. Higher is better;
 * returns a large sentinel when CPU loss is ~zero.
 */
double efficiency(const MixResult &r, ConfigKind kind);

} // namespace exp
} // namespace kelp

#endif // KELP_EXP_EVALUATION_HH
