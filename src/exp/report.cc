#include "exp/report.hh"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "sim/log.hh"

namespace kelp {
namespace exp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    KELP_ASSERT(cells.size() == headers_.size(),
                "row width does not match headers");
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c ? "  " : "");
            os << cells[c];
            os << std::string(width[c] - cells[c].size(), ' ');
        }
        os << "\n";
    };
    emit(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
Table::print() const
{
    std::cout << render();
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

} // namespace exp
} // namespace kelp
