/**
 * @file
 * Deterministic fan-out helpers for experiment sweeps.
 *
 * Builds on the worker pool (pool.hh) with the shapes the bench
 * drivers actually use: map a function over indices with results
 * stored by index, and run a pre-collected list of RunConfigs in
 * parallel with the standalone-reference memo pre-warmed so the
 * parallel phase only ever reads it.
 */

#ifndef KELP_EXP_SWEEP_RUNNER_HH
#define KELP_EXP_SWEEP_RUNNER_HH

#include <functional>
#include <vector>

#include "exp/pool.hh"
#include "exp/scenario.hh"

namespace kelp {
namespace exp {

/**
 * Evaluate fn(0..n-1) on up to `jobs` workers and return the results
 * indexed by input -- identical to a serial loop for any job count.
 * The optional `committed` callback runs on the calling thread in
 * index order (for progress output).
 */
template <typename T>
std::vector<T>
parallelMap(int n, int jobs, const std::function<T(int)> &fn,
            const std::function<void(int)> &committed = nullptr)
{
    std::vector<T> out(static_cast<size_t>(n < 0 ? 0 : n));
    runJobs(
        n, jobs, [&](int i) { out[static_cast<size_t>(i)] = fn(i); },
        committed);
    return out;
}

/**
 * Serially compute (and memoize) the standalone reference for every
 * ML workload the given configs touch -- including those the
 * SLO-enabled configure path needs -- so that concurrent runScenario
 * calls only read the memo.
 */
void prewarmReferences(const std::vector<RunConfig> &cfgs);

/** Run each config through runScenario, `jobs` at a time. */
std::vector<RunResult> runScenarios(const std::vector<RunConfig> &cfgs,
                                    int jobs);

} // namespace exp
} // namespace kelp

#endif // KELP_EXP_SWEEP_RUNNER_HH
