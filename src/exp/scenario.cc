#include "exp/scenario.hh"

// kelp: allow-file(knob-discipline): scenario construction does
// the one-time static placement (paper Section V-A) before any
// controller exists; there is no retry/snapshot/reconciliation state
// to bypass yet, and the controllers take ownership of the knobs the
// moment the run starts.

#include <algorithm>
#include <cmath>
#include <map>

#include "exp/pool.hh"
#include "hal/counters.hh"
#include "kelp/baseline.hh"
#include "kelp/core_throttle.hh"
#include "kelp/kelp_controller.hh"
#include "kelp/profile.hh"
#include "node/platform.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "trace/decision_log.hh"
#include "trace/telemetry.hh"
#include "trace/trace_recorder.hh"

namespace kelp {
namespace exp {

const char *
configName(ConfigKind kind)
{
    switch (kind) {
      case ConfigKind::BL:
        return "BL";
      case ConfigKind::CT:
        return "CT";
      case ConfigKind::KPSD:
        return "KP-SD";
      case ConfigKind::KP:
        return "KP";
      case ConfigKind::FG:
        return "FG";
    }
    return "?";
}

namespace {

/** Dedicated CAT ways for the ML task in a domain of `ways` ways. */
int
mlCatWays(int domain_ways)
{
    return std::max(2, static_cast<int>(domain_ways * 0.5));
}

/** Create the ML task of a scenario. */
void
placeMlTask(Scenario &s, const wl::MlDesc &desc, const RunConfig &cfg)
{
    if (desc.inference) {
        wl::InferConfig infer = desc.infer;
        infer.serial = cfg.serialInference;
        if (cfg.openLoopQps > 0.0) {
            infer.closedLoop = false;
            infer.targetQps = cfg.openLoopQps;
            infer.pipelineDepth = 4;
        }
        if (cfg.serving.enabled) {
            // The serving layer owns arrival generation and batch
            // admission; the pipeline is sized to take one dispatch
            // batch at a time.
            infer.externalArrivals = true;
            infer.serial = false;
            infer.pipelineDepth = cfg.serving.maxBatch;
        }
        auto task = std::make_unique<wl::MlInferTask>(
            desc.name, s.mlGroup, infer,
            &s.node->accelerator(), cfg.seed);
        s.inferTask = &s.node->add(std::move(task));
        s.mlTask = s.inferTask;
    } else {
        auto task = std::make_unique<wl::MlTrainTask>(
            desc.name, s.mlGroup, desc.step, &s.node->accelerator());
        s.mlTask = &s.node->add(std::move(task));
    }
    s.mlTask->setHomeSocket(0);
}

/** Create the colocated CPU tasks of a scenario. */
void
placeCpuTasks(Scenario &s, const RunConfig &cfg)
{
    if (!cfg.cpu)
        return;
    wl::CpuWorkload kind = *cfg.cpu;
    double llc_mb = s.node->topology().config().llcMbPerSocket;
    wl::HostPhaseParams params = wl::cpuParams(kind, llc_mb);

    auto add_batch = [&](const std::string &name, int threads,
                         sim::SocketId socket) -> wl::BatchTask * {
        if (threads <= 0)
            return nullptr;
        auto t = std::make_unique<wl::BatchTask>(name, s.cpuGroup,
                                                 threads, params);
        wl::BatchTask &ref = s.node->add(std::move(t));
        ref.setHomeSocket(socket);
        s.cpuTasks.push_back(&ref);
        return &ref;
    };

    switch (kind) {
      case wl::CpuWorkload::Stitch:
      case wl::CpuWorkload::Stream: {
        int per = wl::threadsPerInstance(kind);
        for (int i = 0; i < cfg.cpuInstances; ++i) {
            add_batch(std::string(wl::cpuName(kind)) + "." +
                          std::to_string(i),
                      per, 0);
        }
        break;
      }
      case wl::CpuWorkload::Cpuml: {
        int threads = cfg.cpuThreadsOverride > 0 ?
            cfg.cpuThreadsOverride : cfg.cpuInstances;
        add_batch("CPUML", threads, 0);
        break;
      }
      case wl::CpuWorkload::LlcAggressor: {
        // Oversubscribed threads exercise SMT/pipeline contention
        // alongside cache occupancy (Section III-B).
        int threads = cfg.cpuThreadsOverride > 0 ?
            cfg.cpuThreadsOverride :
            s.node->topology().coresPerSocket() * 5 / 4;
        add_batch("LLC-aggressor", threads, 0);
        break;
      }
      case wl::CpuWorkload::DramAggressor: {
        int threads = cfg.cpuThreadsOverride > 0 ?
            cfg.cpuThreadsOverride :
            wl::aggressorThreads(
                cfg.aggressorLevel,
                s.node->spec().mem.socket.peakBw / 2.0);
        int local = static_cast<int>(
            std::lround(threads * cfg.aggressorThreadsLocal));
        local = std::clamp(local, 0, threads);
        wl::BatchTask *t0 =
            add_batch("DRAM-aggressor.local", local, 0);
        wl::BatchTask *t1 =
            add_batch("DRAM-aggressor.remote", threads - local, 1);
        // Data split across sockets (Remote DRAM experiments).
        if (cfg.aggressorDataLocal < 1.0 || threads - local > 0) {
            std::vector<wl::DataShare> placement;
            if (cfg.aggressorDataLocal > 0.0) {
                placement.push_back(
                    {0, 1, cfg.aggressorDataLocal});
            }
            if (cfg.aggressorDataLocal < 1.0) {
                placement.push_back(
                    {1, 1, 1.0 - cfg.aggressorDataLocal});
            }
            if (t0)
                t0->setDataPlacement(placement);
            if (t1)
                t1->setDataPlacement(placement);
        }
        break;
      }
    }
}

/** Total threads the low-priority tasks want on socket 0. */
int
cpuThreadsOnMlSocket(const Scenario &s)
{
    int threads = 0;
    for (const auto *t : s.cpuTasks)
        if (t->homeSocket() == 0)
            threads += t->threadsWanted();
    return threads;
}

/** Apply the per-configuration placement and controller. */
void
configure(Scenario &s, const wl::MlDesc &desc, const RunConfig &cfg)
{
    node::Node &node = *s.node;
    hal::ResourceKnobs &knobs = node.knobs();
    const cpu::Topology &topo = node.topology();
    int ml_cores = desc.mlCores;
    int per_socket = topo.coresPerSocket();
    int per_sub = topo.coresPerSubdomain();

    runtime::Bindings bind{&node, s.mlGroup, s.cpuGroup, 0};
    runtime::AppProfile profile =
        runtime::defaultProfile(cfg.ml, node.spec());

    // Chaos runs interpose the fault injector between the controller
    // and the HAL; placement-time knob writes above/below go straight
    // to the real knobs (the scheduler's setup is not under test).
    runtime::Hardening hardening;
    if (cfg.faults.any()) {
        sim::Rng faultRng(cfg.faultSeed);
        s.faultyCounters = std::make_unique<hal::FaultyCounterSource>(
            std::make_unique<hal::PerfCounters>(node.memSystem()),
            cfg.faults, faultRng.split(1));
        s.faultyKnobs = std::make_unique<hal::FaultyKnobSink>(
            knobs, cfg.faults, faultRng.split(2));
        bind.counters = s.faultyCounters.get();
        bind.knobs = s.faultyKnobs.get();

        hardening.enabled = cfg.hardened;
        hardening.maxBwGibps = 3.0 * node.spec().mem.socket.peakBw;
        hardening.maxLatencyNs =
            10.0 * node.spec().mem.socket.baseLatency;
    }

    std::unique_ptr<runtime::Controller> controller;

    // Rebuild recipe for crash/restart recovery (Kelp configs only).
    std::function<std::unique_ptr<runtime::Controller>()> make_kelp;

    switch (cfg.config) {
      case ConfigKind::BL:
        // Everything floats; contention is unmanaged.
        node.setSncEnabled(false);
        controller = std::make_unique<runtime::BaselineController>(bind);
        break;

      case ConfigKind::FG: {
        // Section VI-D what-if: request-priority memory controllers
        // plus per-priority backpressure (Section VI-C). Static
        // placement, no software feedback loop at all.
        node.setSncEnabled(false);
        node.memSystem().setArbitration(
            mem::Arbitration::RequestPriority);
        node.setPriorityAwareBackpressure(true);
        knobs.setCores(s.mlGroup, 0, 0, (ml_cores + 1) / 2);
        knobs.setCores(s.mlGroup, 0, 1, ml_cores / 2);
        knobs.setPrefetchersEnabled(s.mlGroup, ml_cores);
        knobs.setCatWays(s.mlGroup, mlCatWays(topo.config().llcWays));
        if (s.cpuGroup != sim::invalidId && !s.cpuTasks.empty()) {
            int cpu_cores = per_socket - ml_cores;
            knobs.setCores(s.cpuGroup, 0, 0, (cpu_cores + 1) / 2);
            knobs.setCores(s.cpuGroup, 0, 1, cpu_cores / 2);
            knobs.setPrefetchersEnabled(s.cpuGroup, cpu_cores);
        }
        break;
      }

      case ConfigKind::CT: {
        node.setSncEnabled(false);
        // ML task: pinned cores spread across the socket + dedicated
        // LLC partition via CAT.
        knobs.setCores(s.mlGroup, 0, 0, (ml_cores + 1) / 2);
        knobs.setCores(s.mlGroup, 0, 1, ml_cores / 2);
        knobs.setPrefetchersEnabled(s.mlGroup, ml_cores);
        knobs.setCatWays(s.mlGroup, mlCatWays(topo.config().llcWays));
        int max_cores = per_socket - ml_cores;
        if (s.cpuGroup != sim::invalidId && !s.cpuTasks.empty()) {
            controller =
                std::make_unique<runtime::CoreThrottleController>(
                    bind,
                    runtime::coreThrottleProfile(cfg.ml, node.spec()),
                    1, max_cores, max_cores, hardening);
        }
        break;
      }

      case ConfigKind::KPSD:
      case ConfigKind::KP: {
        node.setSncEnabled(true);
        // ML task owns the high-priority subdomain (0) with a CAT
        // partition in that subdomain's LLC.
        knobs.setCores(s.mlGroup, 0, 0, ml_cores);
        knobs.setPrefetchersEnabled(s.mlGroup, ml_cores);
        knobs.setCatWays(s.mlGroup,
                         mlCatWays(topo.llcWaysPerSubdomain()));

        if (s.cpuGroup != sim::invalidId &&
            (!s.cpuTasks.empty() || cfg.churn.enabled)) {
            runtime::ConfigLimits limits;
            limits.minCoreL = 1;
            limits.maxCoreL = per_sub;
            limits.minCoreH = 0;
            limits.maxCoreH = cfg.config == ConfigKind::KP ?
                per_sub - ml_cores : 0;

            runtime::ResourceState initial;
            initial.coreNumL = std::min(
                per_sub,
                std::max(1, cpuThreadsOnMlSocket(s)));
            initial.prefetcherNumL = initial.coreNumL;
            initial.coreNumH = 0;

            if (cfg.forcedPrefetcherFraction >= 0.0) {
                // Hardware-mechanism sweep (Figure 7): fixed knobs,
                // no controller.
                knobs.setCores(s.cpuGroup, 0, 1, initial.coreNumL);
                int enabled = static_cast<int>(std::lround(
                    cfg.forcedPrefetcherFraction * initial.coreNumL));
                knobs.setPrefetchersEnabled(s.cpuGroup, enabled);
            } else {
                // SLO reference: the workload's standalone work
                // rate, resolved before the factory is captured so a
                // restart rebuild never re-enters the scenario
                // machinery.
                double ref_perf = cfg.slo.enabled ?
                    standaloneReference(cfg.ml).mlPerf : 0.0;
                bool dynamic = cfg.churn.enabled;
                runtime::SloConfig slo = cfg.slo;
                make_kelp = [bind, profile, limits, initial,
                             hardening, dynamic, slo, ref_perf]() {
                    auto c =
                        std::make_unique<runtime::KelpController>(
                            bind, profile, limits, initial,
                            hardening);
                    if (dynamic)
                        c->setDynamicMembership(true);
                    if (slo.enabled)
                        c->enableSloGuard(slo, ref_perf);
                    return std::unique_ptr<runtime::Controller>(
                        std::move(c));
                };
                controller = make_kelp();
            }
        }
        break;
      }
    }

    if (controller) {
        s.manager = std::make_unique<runtime::RuntimeManager>(
            std::move(controller), cfg.samplePeriod);
        if (hardening.enabled) {
            runtime::WatchdogConfig wd;
            wd.enabled = true;
            s.manager->setWatchdog(wd);
        }
        if (make_kelp)
            s.manager->setControllerFactory(make_kelp);
        s.manager->attach(*s.engine);
    }
}

/**
 * The standard probe set every instrumented run records: the four
 * hardware signals the controller acts on plus its knob state and the
 * process-wide contract-violation counter. Probes only read; they
 * never perturb the simulated system.
 */
void
installStandardProbes(Scenario &s, trace::Telemetry &tel)
{
    auto counters =
        std::make_shared<hal::PerfCounters>(s.node->memSystem());
    auto sample = std::make_shared<hal::CounterSample>();
    tel.addProbe("socket_bw_gibps", [counters, sample]() {
        *sample = counters->sample(0);
        return sample->socketBw;
    });
    tel.addProbe("mem_latency_ns",
                 [sample]() { return sample->memLatency; });
    tel.addProbe("saturation",
                 [sample]() { return sample->saturation; });
    tel.addProbe("contract_violations", []() {
        return static_cast<double>(sim::contractViolations());
    });
    if (s.manager) {
        auto *mgr = s.manager.get();
        tel.addProbe("lo_cores", [mgr]() {
            return mgr->controller().params().loCores;
        });
        tel.addProbe("lo_prefetchers", [mgr]() {
            return mgr->controller().params().loPrefetchers;
        });
        tel.addProbe("hi_backfill", [mgr]() {
            return mgr->controller().params().hiBackfillCores;
        });
    }
}

} // namespace

Scenario
buildScenario(const RunConfig &cfg)
{
    Scenario s;
    wl::MlDesc desc = wl::mlDesc(cfg.ml);
    node::PlatformSpec spec = node::platformFor(desc.platform);

    s.node = std::make_unique<node::Node>(spec);
    s.engine = std::make_unique<sim::Engine>(cfg.tick);

    s.mlGroup =
        s.node->groups().create("ml", hal::Priority::High).id();
    s.cpuGroup =
        s.node->groups().create("batch", hal::Priority::Low).id();

    placeMlTask(s, desc, cfg);
    placeCpuTasks(s, cfg);
    configure(s, desc, cfg);

    if (cfg.churn.enabled) {
        s.lifecycle = std::make_unique<LifecycleEngine>(
            *s.node, s.cpuGroup, cfg.churn);
        s.lifecycle->attach(*s.engine);
    }

    // Open-loop serving layer: only inference workloads have a
    // request stream to serve; a traffic spec on a training workload
    // is ignored rather than fatal so fuzzed configs stay runnable.
    if (cfg.serving.enabled && s.inferTask) {
        s.server = std::make_unique<serve::RequestServer>(
            cfg.serving, *s.inferTask, cfg.seed);
        s.server->attach(*s.engine);
    }

    if (s.manager) {
        // Crash/restart schedule: killAt plus any extra kill times,
        // each registered as a periodic whose period is far beyond
        // any run length so it fires exactly once. Sorted so the
        // registration order (which breaks same-tick ties in the
        // engine) is a pure function of the config, not of how the
        // caller assembled the list.
        std::vector<sim::Time> kills;
        if (cfg.killAt > 0.0)
            kills.push_back(cfg.killAt);
        for (sim::Time t : cfg.kills) {
            KELP_EXPECTS(t > 0.0, "kill times must be positive");
            kills.push_back(t);
        }
        std::sort(kills.begin(), kills.end());
        runtime::RuntimeManager *mgr = s.manager.get();
        for (sim::Time at : kills) {
            s.engine->every(1e18,
                            [mgr](sim::Time t) { mgr->restart(t); },
                            at);
        }
    }

    s.node->setEventDrivenEnabled(cfg.eventDriven);
    s.node->attach(*s.engine);
    return s;
}

Scenario
buildScenario(const RunConfig &cfg, const Observability &obs)
{
    Scenario s = buildScenario(cfg);
    if (obs.decisions && s.manager)
        s.manager->controller().setDecisionLog(obs.decisions);
    if (obs.decisions && s.server)
        s.server->setDecisionLog(obs.decisions);
    if (obs.recorder && s.inferTask)
        s.inferTask->setTraceSink(obs.recorder->phaseSink());
    if (obs.telemetry) {
        installStandardProbes(s, *obs.telemetry);
        sim::Time period = obs.telemetryPeriod > 0.0 ?
            obs.telemetryPeriod : cfg.samplePeriod;
        obs.telemetry->attach(*s.engine, period);
    }
    return s;
}

RunResult
measureScenario(Scenario &s, const RunConfig &cfg)
{
    s.engine->run(cfg.warmup);

    // Start the measurement window.
    double ml_work0 = s.mlTask->completedWork();
    std::vector<double> cpu_work0;
    for (const auto *t : s.cpuTasks)
        cpu_work0.push_back(t->completedWork());
    if (s.inferTask)
        s.inferTask->resetLatency();
    if (s.server)
        s.server->resetLatency();
    hal::PerfCounters counters(s.node->memSystem());
    counters.sample(0);  // reset the window cursor

    s.engine->run(cfg.measure);

    RunResult r;
    r.mlPerf =
        (s.mlTask->completedWork() - ml_work0) / cfg.measure;
    if (s.inferTask)
        r.mlTailP95 = s.inferTask->latency().percentile(95.0);
    for (size_t i = 0; i < s.cpuTasks.size(); ++i) {
        r.cpuThroughput +=
            (s.cpuTasks[i]->completedWork() - cpu_work0[i]) /
            cfg.measure;
    }
    if (s.manager) {
        r.avgLoCores = s.manager->avgLoCores();
        r.avgLoPrefetchers = s.manager->avgLoPrefetchers();
        r.avgHiBackfill = s.manager->avgHiBackfill();
        r.timeInFailSafe = s.manager->timeInFailSafe();
        r.failSafeEntries = s.manager->failSafeEntries();
        r.restarts = s.manager->restarts();
        auto *kelp = dynamic_cast<runtime::KelpController *>(
            &s.manager->controller());
        if (kelp && kelp->sloGuard()) {
            const runtime::SloGuard &g = *kelp->sloGuard();
            r.sloViolations = g.violations();
            r.sloTransitions = g.trace().size();
            r.sloFinalRung = g.rung();
        }
    }
    if (s.server) {
        s.server->checkConservation();
        const serve::ServeStats st = s.server->stats();
        r.reqArrivals = st.arrivals;
        r.reqAdmitted = st.admitted;
        r.reqRejected = st.rejected;
        r.reqShed = st.shed;
        r.reqExpired = st.expired;
        r.reqCompleted = st.completed;
        r.reqInFlight = st.inFlight;
        r.brownoutTransitions = st.brownoutTransitions;
        r.brownoutFinal = st.brownoutLevel;
        r.reqP99 = s.server->latency().percentile(99.0);
        r.reqP999 = s.server->latency().percentile(99.9);
        r.reqP9999 = s.server->latency().percentile(99.99);
    }
    if (s.lifecycle) {
        r.churnArrivals = s.lifecycle->arrivals();
        r.churnFinishes = s.lifecycle->finishes();
        r.churnCrashes = s.lifecycle->crashes();
        r.churnRejected = s.lifecycle->rejected();
    }
    hal::CounterSample cs = counters.sample(0);
    r.avgSaturation = cs.saturation;
    r.avgSocketBw = cs.socketBw;

    // Tick-engine cost breakdown (whole run, warmup included --
    // these are lifetime counters, not window deltas).
    r.engineTicks = s.engine->tickCount();
    r.engineFastTicks = s.engine->fastTickCount();
    r.engineFullTicks = s.engine->fullTickCount();
    r.periodicFires = s.engine->periodicFireCount();
    r.demandCalls = s.node->demandCalls();
    r.advanceCalls = s.node->advanceCalls();
    r.fastTaskTicks = s.node->fastTaskTicks();
    r.resolveCacheHits = s.node->memSystem().resolveCacheHits();
    r.resolveCacheMisses = s.node->memSystem().resolveCacheMisses();
    r.mcCacheHits = s.node->memSystem().mcCacheHits();
    r.mcCacheMisses = s.node->memSystem().mcCacheMisses();
    r.memFastTicks = s.node->memSystem().fastTicks();
    return r;
}

RunResult
runScenario(const RunConfig &cfg)
{
    Scenario s = buildScenario(cfg);
    return measureScenario(s, cfg);
}

RunResult
standaloneReference(wl::MlWorkload ml)
{
    // Guarded: pool workers can race to populate the memo (the guard
    // is re-entrant because the SLO configure path recurses here).
    InitGuard guard;
    static std::map<wl::MlWorkload, RunResult> cache;
    auto it = cache.find(ml);
    if (it != cache.end())
        return it->second;

    RunConfig cfg;
    cfg.ml = ml;
    cfg.config = ConfigKind::BL;
    cfg.cpu.reset();
    RunResult r = runScenario(cfg);
    cache[ml] = r;
    return r;
}

double
baselineCpuThroughput(const RunConfig &cfg)
{
    RunConfig bl = cfg;
    bl.config = ConfigKind::BL;
    return runScenario(bl).cpuThroughput;
}

} // namespace exp
} // namespace kelp
