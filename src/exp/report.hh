/**
 * @file
 * Plain-text reporting helpers shared by the bench binaries: aligned
 * tables for the paper's figures ("rows/series"), with a consistent
 * look across all experiments.
 */

#ifndef KELP_EXP_REPORT_HH
#define KELP_EXP_REPORT_HH

#include <string>
#include <vector>

namespace kelp {
namespace exp {

/** An aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

    /** Print to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision. */
std::string fmt(double v, int precision = 3);

/** Format as a percentage ("42.0%"). */
std::string pct(double fraction, int precision = 1);

/** Print a figure/table banner. */
void banner(const std::string &title);

} // namespace exp
} // namespace kelp

#endif // KELP_EXP_REPORT_HH
