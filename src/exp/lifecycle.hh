/**
 * @file
 * Task lifecycle engine: dynamic colocation churn.
 *
 * The paper evaluates static colocations -- a fixed antagonist mix
 * placed before time zero. The production setting it targets
 * (Section II) is a fleet where batch work arrives, finishes, and
 * crashes continuously. The lifecycle engine reproduces that regime
 * deterministically: seeded Poisson arrivals draw batch antagonists
 * from the workload catalog's churn mix, each arrival gets an
 * exponentially-distributed lifetime and a Bernoulli crash flag, and
 * a periodic poll retires tasks whose time is up. Every event is
 * appended to an ordered log so two runs with the same seed and
 * config produce byte-identical histories.
 *
 * Tasks are placed into the low-priority group; the controllers'
 * dynamic-membership path re-reads the live population every sample
 * and re-sizes the managed knobs accordingly. Retired tasks are not
 * erased from the node (ids stay stable, completed work stays
 * reportable); they simply stop holding cores and generating traffic.
 */

#ifndef KELP_EXP_LIFECYCLE_HH
#define KELP_EXP_LIFECYCLE_HH

#include <vector>

#include "node/node.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"
#include "workload/catalog.hh"

namespace kelp {
namespace exp {

/** Churn parameters. Disabled by default: the static paper path. */
struct ChurnConfig
{
    bool enabled = false;

    /** Mean task arrivals per second (Poisson process). */
    double arrivalRate = 1.0 / 20.0;

    /** Multiplier on the catalog archetypes' mean lifetimes. */
    double lifetimeScale = 1.0;

    /** Probability an arriving task eventually crashes instead of
     * finishing cleanly. */
    double crashProb = 0.1;

    /** Cap on concurrently-live churned tasks; arrivals beyond it
     * are rejected (and counted). */
    int maxLive = 4;

    /** Seed of the churn streams (independent of the run seed). */
    uint64_t seed = 99;

    /** How often the engine polls for departures/arrivals. */
    sim::Time checkPeriod = 0.5;
};

enum class ChurnEventKind { Arrival, Finish, Crash };

const char *churnEventName(ChurnEventKind k);

/** One entry of the deterministic event log. */
struct ChurnEvent
{
    sim::Time time = 0.0;
    ChurnEventKind kind = ChurnEventKind::Arrival;

    /** Node-assigned task id. */
    int task = 0;

    /** Threads the task runs. */
    int threads = 0;
};

/** Drives seeded arrival/departure/crash events against a node. */
class LifecycleEngine
{
  public:
    /**
     * @param node Node churned tasks are placed on.
     * @param group Low-priority group the tasks join.
     * @param cfg Churn parameters (must be enabled).
     */
    LifecycleEngine(node::Node &node, sim::GroupId group,
                    const ChurnConfig &cfg);

    /** Register the periodic poll with an engine. */
    void attach(sim::Engine &engine);

    /** One poll: retire due tasks, then admit pending arrivals
     * (exposed so tests can step the engine by hand). */
    void poll(sim::Time now);

    /** Ordered, deterministic event history. */
    const std::vector<ChurnEvent> &eventLog() const { return log_; }

    /** Currently-live churned task ids. */
    std::vector<int> liveTasks() const;

    uint64_t arrivals() const { return arrivals_; }
    uint64_t finishes() const { return finishes_; }
    uint64_t crashes() const { return crashes_; }

    /** Arrivals rejected by the maxLive admission cap. */
    uint64_t rejected() const { return rejected_; }

    const ChurnConfig &config() const { return cfg_; }

  private:
    struct Live
    {
        int taskId = 0;
        int threads = 0;
        sim::Time deadline = 0.0;
        bool willCrash = false;
    };

    void spawn(sim::Time now);

    node::Node &node_;
    sim::GroupId group_;
    ChurnConfig cfg_;
    sim::Rng rng_;
    sim::Time nextArrival_ = 0.0;
    std::vector<Live> live_;
    std::vector<ChurnEvent> log_;
    uint64_t arrivals_ = 0;
    uint64_t finishes_ = 0;
    uint64_t crashes_ = 0;
    uint64_t rejected_ = 0;
};

} // namespace exp
} // namespace kelp

#endif // KELP_EXP_LIFECYCLE_HH
