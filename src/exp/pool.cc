#include "exp/pool.hh"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/log.hh"

namespace kelp {
namespace exp {

int
hardwareJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

int
resolveJobs(int requested)
{
    return requested >= 1 ? requested : hardwareJobs();
}

void
runJobs(int jobCount, int workers,
        const std::function<void(int)> &work,
        const std::function<void(int)> &commit)
{
    KELP_EXPECTS(jobCount >= 0, "runJobs: negative job count");
    KELP_EXPECTS(static_cast<bool>(work), "runJobs: null work function");
    if (jobCount == 0)
        return;

    const int effective = std::min(resolveJobs(workers), jobCount);
    if (effective <= 1) {
        // Reference path: a plain serial loop. The parallel path
        // below must be byte-identical to this one.
        for (int i = 0; i < jobCount; ++i) {
            work(i);
            if (commit)
                commit(i);
        }
        return;
    }

    std::atomic<int> nextJob{0};
    std::atomic<bool> cancel{false};
    std::vector<std::exception_ptr> errors(jobCount);
    std::vector<char> done(jobCount, 0);
    std::mutex doneMutex;
    std::condition_variable doneCv;

    auto workerLoop = [&]() {
        for (;;) {
            const int i = nextJob.fetch_add(1);
            if (i >= jobCount || cancel.load())
                return;
            std::exception_ptr err;
            try {
                work(i);
            } catch (...) {
                err = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lk(doneMutex);
                errors[i] = err;
                done[i] = 1;
            }
            doneCv.notify_all();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(effective);
    for (int t = 0; t < effective; ++t)
        threads.emplace_back(workerLoop);

    // Commit on the calling thread in strict index order. On the
    // first failed job, stop committing, drain the workers, and
    // rethrow -- the same exception a serial loop would have thrown
    // first.
    std::exception_ptr firstError;
    for (int i = 0; i < jobCount && !firstError; ++i) {
        {
            std::unique_lock<std::mutex> lk(doneMutex);
            doneCv.wait(lk, [&] { return done[i] != 0; });
            firstError = errors[i];
        }
        if (!firstError && commit)
            commit(i);
    }
    if (firstError)
        cancel.store(true);
    for (auto &t : threads)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

namespace {

// Recursive because the guarded initialisation in scenario.cc can
// re-enter itself (the SLO-enabled configure path computes another
// standalone reference).
std::recursive_mutex &
initMutex()
{
    static std::recursive_mutex m;
    return m;
}

} // namespace

InitGuard::InitGuard()
{
    initMutex().lock();
}

InitGuard::~InitGuard()
{
    initMutex().unlock();
}

} // namespace exp
} // namespace kelp
