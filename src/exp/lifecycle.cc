#include "exp/lifecycle.hh"

#include <algorithm>
#include <string>

#include "sim/log.hh"
#include "workload/batch_task.hh"

namespace kelp {
namespace exp {

const char *
churnEventName(ChurnEventKind k)
{
    switch (k) {
      case ChurnEventKind::Arrival:
        return "arrival";
      case ChurnEventKind::Finish:
        return "finish";
      case ChurnEventKind::Crash:
        return "crash";
    }
    return "?";
}

LifecycleEngine::LifecycleEngine(node::Node &node, sim::GroupId group,
                                 const ChurnConfig &cfg)
    : node_(node), group_(group), cfg_(cfg), rng_(cfg.seed)
{
    KELP_ASSERT(cfg_.arrivalRate > 0.0,
                "churn arrival rate must be positive");
    KELP_ASSERT(cfg_.maxLive > 0, "churn maxLive must be positive");
    KELP_ASSERT(cfg_.checkPeriod > 0.0,
                "churn check period must be positive");
    nextArrival_ = rng_.exponential(1.0 / cfg_.arrivalRate);
}

void
LifecycleEngine::attach(sim::Engine &engine)
{
    engine.every(cfg_.checkPeriod,
                 [this](sim::Time now) { poll(now); });
}

void
LifecycleEngine::spawn(sim::Time now)
{
    // Weighted archetype pick: one uniform draw against the mix's
    // cumulative weights.
    const auto &mix = wl::churnMix();
    double total = 0.0;
    for (const auto &a : mix)
        total += a.weight;
    double pick = rng_.uniform(0.0, total);
    const wl::ChurnArchetype *arch = &mix.back();
    for (const auto &a : mix) {
        if (pick < a.weight) {
            arch = &a;
            break;
        }
        pick -= a.weight;
    }

    int span = arch->maxThreads - arch->minThreads + 1;
    int threads = arch->minThreads +
                  static_cast<int>(rng_.below(span));
    double lifetime =
        rng_.exponential(arch->meanLifetime * cfg_.lifetimeScale);
    bool will_crash = rng_.chance(cfg_.crashProb);

    double llc_mb =
        node_.topology().config().llcMbPerSocket;
    auto task = std::make_unique<wl::BatchTask>(
        "churn." + std::to_string(arrivals_), group_, threads,
        wl::cpuParams(arch->kind, llc_mb));
    wl::Task &placed = node_.addTask(std::move(task));
    placed.setHomeSocket(0);

    Live l;
    l.taskId = placed.id();
    l.threads = threads;
    l.deadline = now + lifetime;
    l.willCrash = will_crash;
    KELP_ENSURES(l.deadline >= now,
                 "churned task scheduled to retire in the past");
    live_.push_back(l);

    ++arrivals_;
    log_.push_back({now, ChurnEventKind::Arrival, l.taskId, threads});
}

void
LifecycleEngine::poll(sim::Time now)
{
    // Retire first so a departure's cores are already free when the
    // same poll admits a replacement.
    for (auto it = live_.begin(); it != live_.end();) {
        if (it->deadline > now) {
            ++it;
            continue;
        }
        wl::Task *t = node_.taskById(it->taskId);
        KELP_ASSERT(t, "churned task vanished from the node");
        // A task the SLO ladder suspended still ages toward its
        // deadline; retirement wins over suspension.
        t->setLifeState(it->willCrash ? wl::LifeState::Crashed
                                      : wl::LifeState::Finished);
        if (it->willCrash) {
            ++crashes_;
            log_.push_back({now, ChurnEventKind::Crash, it->taskId,
                            it->threads});
        } else {
            ++finishes_;
            log_.push_back({now, ChurnEventKind::Finish, it->taskId,
                            it->threads});
        }
        it = live_.erase(it);
    }

    // Admit every arrival whose Poisson timestamp has passed. The
    // inter-arrival stream always advances -- a rejected arrival is
    // lost, not queued -- so the arrival process stays independent
    // of admission decisions and the log stays seed-deterministic.
    while (nextArrival_ <= now) {
        if (static_cast<int>(live_.size()) < cfg_.maxLive)
            spawn(now);
        else
            ++rejected_;
        nextArrival_ += rng_.exponential(1.0 / cfg_.arrivalRate);
    }

    // Admission-control invariant: the live population never exceeds
    // the configured cap, and the event log is consistent with the
    // population (every arrival is live, finished, or crashed).
    KELP_INVARIANT(static_cast<int>(live_.size()) <= cfg_.maxLive,
                   "live churned tasks ", live_.size(),
                   " exceed maxLive ", cfg_.maxLive);
    KELP_INVARIANT(arrivals_ ==
                       finishes_ + crashes_ + live_.size(),
                   "churn ledger out of balance: ", arrivals_,
                   " arrivals vs ", finishes_, " finishes + ",
                   crashes_, " crashes + ", live_.size(), " live");
}

std::vector<int>
LifecycleEngine::liveTasks() const
{
    std::vector<int> ids;
    ids.reserve(live_.size());
    for (const auto &l : live_)
        ids.push_back(l.taskId);
    return ids;
}

} // namespace exp
} // namespace kelp
