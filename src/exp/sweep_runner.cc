#include "exp/sweep_runner.hh"

#include <set>

namespace kelp {
namespace exp {

void
prewarmReferences(const std::vector<RunConfig> &cfgs)
{
    std::set<wl::MlWorkload> mls;
    for (const RunConfig &cfg : cfgs)
        mls.insert(cfg.ml);
    for (wl::MlWorkload ml : mls)
        standaloneReference(ml);
}

std::vector<RunResult>
runScenarios(const std::vector<RunConfig> &cfgs, int jobs)
{
    prewarmReferences(cfgs);
    return parallelMap<RunResult>(
        static_cast<int>(cfgs.size()), jobs,
        [&](int i) { return runScenario(cfgs[static_cast<size_t>(i)]); });
}

} // namespace exp
} // namespace kelp
