#include "exp/evaluation.hh"

#include <cmath>
#include <cstdio>

#include "exp/sweep_runner.hh"
#include "node/platform.hh"
#include "sim/log.hh"
#include "trace/run_manifest.hh"

namespace kelp {
namespace exp {

int
configIndex(ConfigKind kind)
{
    switch (kind) {
      case ConfigKind::BL:
        return 0;
      case ConfigKind::CT:
        return 1;
      case ConfigKind::KPSD:
        return 2;
      case ConfigKind::KP:
        return 3;
      case ConfigKind::FG:
        break;
    }
    sim::panic("config not part of the evaluation grid");
}

std::vector<Mix>
evaluationMixes()
{
    std::vector<Mix> mixes;
    for (auto ml : wl::allMlWorkloads()) {
        wl::MlDesc desc = wl::mlDesc(ml);
        node::PlatformSpec spec = node::platformFor(desc.platform);
        int half = spec.topo.coresPerSocket / 2;
        int spare = spec.topo.coresPerSocket - desc.mlCores;
        for (auto cpu : wl::evaluationCpuWorkloads()) {
            Mix m;
            m.ml = ml;
            m.cpu = cpu;
            switch (cpu) {
              case wl::CpuWorkload::Stream:
                // Streaming threads on every core the ML task does
                // not hold: the heaviest mix.
                m.cpuInstances = spare;
                break;
              case wl::CpuWorkload::Stitch:
                m.cpuInstances = 4;  // 16 threads
                break;
              case wl::CpuWorkload::Cpuml:
                m.cpuThreadsOverride = half;
                m.cpuInstances = half;
                break;
              default:
                sim::panic("unexpected evaluation CPU workload");
            }
            mixes.push_back(m);
        }
    }
    return mixes;
}

MixResult
runMix(const Mix &mix, const GridOptions &opt)
{
    const ConfigKind kinds[] = {ConfigKind::BL, ConfigKind::CT,
                                ConfigKind::KPSD, ConfigKind::KP};
    MixResult out;
    out.mix = mix;

    RunResult ref = standaloneReference(mix.ml);
    for (ConfigKind kind : kinds) {
        RunConfig cfg;
        cfg.ml = mix.ml;
        cfg.cpu = mix.cpu;
        cfg.cpuInstances = mix.cpuInstances;
        cfg.cpuThreadsOverride = mix.cpuThreadsOverride;
        cfg.config = kind;
        if (opt.warmup >= 0.0)
            cfg.warmup = opt.warmup;
        if (opt.measure >= 0.0)
            cfg.measure = opt.measure;
        RunResult r = runScenario(cfg);
        int i = configIndex(kind);
        out.mlPerf[i] = r.mlPerf;
        out.cpuTput[i] = r.cpuThroughput;
        out.mlSlowdown[i] =
            r.mlPerf > 0.0 ? ref.mlPerf / r.mlPerf : 1e9;
    }
    double bl_tput = out.cpuTput[0];
    for (int i = 0; i < 4; ++i) {
        out.cpuSlowdown[i] = out.cpuTput[i] > 0.0 ?
            bl_tput / out.cpuTput[i] : 1e9;
    }
    return out;
}

MixResult
runMix(const Mix &mix)
{
    return runMix(mix, GridOptions{});
}

namespace {

/** Grid manifest: settings + per-config geomean slowdowns. */
void
writeGridManifest(const std::vector<MixResult> &results,
                  const GridOptions &opt)
{
    trace::RunManifest man;
    man.set("tool", "evaluation-grid");
    man.set("mixes", static_cast<uint64_t>(results.size()));
    man.set("jobs", opt.jobs);
    man.set("warmup_s", opt.warmup);
    man.set("measure_s", opt.measure);
    man.set("contract_violations", sim::contractViolations());
    const char *names[4] = {"bl", "ct", "kpsd", "kp"};
    for (int c = 0; c < 4; ++c) {
        double ml_log = 0.0;
        double cpu_log = 0.0;
        for (const MixResult &r : results) {
            ml_log += std::log(r.mlSlowdown[c]);
            cpu_log += std::log(r.cpuSlowdown[c]);
        }
        double n = results.empty() ?
            1.0 : static_cast<double>(results.size());
        man.set(std::string("ml_slowdown_geomean_") + names[c],
                std::exp(ml_log / n));
        man.set(std::string("cpu_slowdown_geomean_") + names[c],
                std::exp(cpu_log / n));
    }
    if (!man.writeJson(opt.manifestPath)) {
        sim::fatal("cannot write grid manifest to ",
                   opt.manifestPath);
    }
}

} // namespace

std::vector<MixResult>
runEvaluationGrid(const GridOptions &opt)
{
    const std::vector<Mix> mixes = evaluationMixes();

    // Pre-warm the standalone-reference memo serially so the fan-out
    // only reads it (the memo is also guarded, but warming it here
    // keeps the progress lines honest about where time goes).
    {
        std::vector<RunConfig> cfgs;
        for (const Mix &mix : mixes) {
            RunConfig cfg;
            cfg.ml = mix.ml;
            cfgs.push_back(cfg);
        }
        prewarmReferences(cfgs);
    }

    std::vector<MixResult> results = parallelMap<MixResult>(
        static_cast<int>(mixes.size()), opt.jobs,
        [&](int i) { return runMix(mixes[static_cast<size_t>(i)], opt); },
        [&](int i) {
            if (!opt.verbose)
                return;
            const Mix &mix = mixes[static_cast<size_t>(i)];
            std::printf("  running %s + %s ...\n", wl::mlName(mix.ml),
                        wl::cpuName(mix.cpu));
            std::fflush(stdout);
        });
    if (!opt.manifestPath.empty())
        writeGridManifest(results, opt);
    return results;
}

std::vector<MixResult>
runEvaluationGrid(bool verbose)
{
    GridOptions opt;
    opt.verbose = verbose;
    return runEvaluationGrid(opt);
}

double
efficiency(const MixResult &r, ConfigKind kind)
{
    int i = configIndex(kind);
    double ml_gain = r.mlPerf[0] > 0.0 ?
        r.mlPerf[i] / r.mlPerf[0] - 1.0 : 0.0;
    double cpu_loss = r.cpuTput[0] > 0.0 ?
        1.0 - r.cpuTput[i] / r.cpuTput[0] : 0.0;
    if (cpu_loss < 1e-3)
        return ml_gain > 0.0 ? 99.0 : 0.0;
    return ml_gain / cpu_loss;
}

} // namespace exp
} // namespace kelp
