/**
 * @file
 * Deterministic worker pool for independent experiment jobs.
 *
 * All parallelism in the repository goes through this pool (enforced
 * by the kelp-lint `raw-parallelism` rule). The job model keeps the
 * parallel path bit-identical to the serial one:
 *
 *  - jobs are indexed 0..n-1 and must be mutually independent; any
 *    randomness a job needs comes from sim::Rng::derive(base, index),
 *    a pure function of the base seed and the job index, never from
 *    shared generator state;
 *  - workers may finish in any order, but the optional commit
 *    callback runs on the calling thread in strict job-index order,
 *    so side effects (stdout, result vectors) are sequenced exactly
 *    as a serial loop would sequence them;
 *  - with one effective worker the pool degenerates to a plain
 *    in-order loop on the calling thread -- the reference path the
 *    parallel one is diffed against.
 *
 * Exceptions: if jobs throw, the first exception in commit (index)
 * order is rethrown on the calling thread after all workers have
 * drained -- again matching what a serial loop would have surfaced.
 */

#ifndef KELP_EXP_POOL_HH
#define KELP_EXP_POOL_HH

#include <functional>

namespace kelp {
namespace exp {

/** Number of jobs to use when the caller asks for "all cores". */
int hardwareJobs();

/**
 * Resolve a --jobs style request: values >= 1 pass through, anything
 * else (0, negative) means hardwareJobs().
 */
int resolveJobs(int requested);

/**
 * Run `jobCount` independent jobs on up to `workers` threads
 * (resolveJobs semantics: <= 0 means all cores).
 *
 * `work(i)` runs on an arbitrary pool thread (or on the caller when
 * the effective worker count is 1). `commit(i)` -- if non-null --
 * runs on the calling thread in ascending job-index order as results
 * become available; use it for anything order-sensitive (printing,
 * appending).
 */
void runJobs(int jobCount, int workers,
             const std::function<void(int)> &work,
             const std::function<void(int)> &commit = nullptr);

/**
 * Serialise access to lazily initialised shared caches (for example
 * the standalone-reference memo in scenario.cc) without letting that
 * code name a mutex directly. Re-entrant from the owning thread: the
 * reference computation can recurse back into the cache.
 */
class InitGuard
{
  public:
    InitGuard();
    ~InitGuard();
    InitGuard(const InitGuard &) = delete;
    InitGuard &operator=(const InitGuard &) = delete;
};

} // namespace exp
} // namespace kelp

#endif // KELP_EXP_POOL_HH
