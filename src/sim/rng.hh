/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * All stochastic behaviour in the library (request arrivals, fleet
 * sampling, jitter) draws from an explicitly seeded Rng so that every
 * bench binary regenerates the same rows on every run.
 */

#ifndef KELP_SIM_RNG_HH
#define KELP_SIM_RNG_HH

#include <cstdint>

namespace kelp {
namespace sim {

/**
 * A small, fast, deterministic PRNG (xoshiro256**), seeded through
 * SplitMix64 so that nearby seeds yield unrelated streams.
 */
class Rng
{
  public:
    /** Construct with the given seed (any value, including 0). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t below(uint64_t n);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Standard normal via Box-Muller (no cached spare; stateless). */
    double gaussian(double mean = 0.0, double stddev = 1.0);

    /** Log-normal with the given location/scale of the underlying
     * normal. */
    double logNormal(double mu, double sigma);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Split off an independent child stream. Children of the same
     * parent with different salts are decorrelated.
     */
    Rng split(uint64_t salt);

    /**
     * Derive the canonical per-job stream for job `index` of a run
     * seeded with `base`. This is a pure function of (base, index):
     * no parent Rng state is involved, so serial and parallel
     * executors that agree on job indices agree on streams by
     * construction. Used by the experiment pool and the fleet
     * profiler.
     */
    static Rng derive(uint64_t base, uint64_t index);

  private:
    uint64_t s_[4];
};

} // namespace sim
} // namespace kelp

#endif // KELP_SIM_RNG_HH
