#include "sim/options.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/log.hh"

namespace kelp {
namespace sim {

Options::Options(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
    addBool("help", false, "print this help and exit");
}

void
Options::add(const std::string &name, Kind kind, const std::string &def,
             const std::string &help)
{
    KELP_ASSERT(!options_.count(name), "duplicate option --", name);
    options_[name] = Option{kind, def, def, help, false};
    order_.push_back(name);
}

void
Options::addString(const std::string &name, const std::string &def,
                   const std::string &help)
{
    add(name, Kind::String, def, help);
}

void
Options::addInt(const std::string &name, long def,
                const std::string &help)
{
    add(name, Kind::Int, std::to_string(def), help);
}

void
Options::addDouble(const std::string &name, double def,
                   const std::string &help)
{
    std::ostringstream os;
    os << def;
    add(name, Kind::Double, os.str(), help);
}

void
Options::addBool(const std::string &name, bool def,
                 const std::string &help)
{
    add(name, Kind::Bool, def ? "true" : "false", help);
}

bool
Options::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool have_value = false;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            have_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end())
            fatal("unknown flag --", name, "\n", usage());
        Option &opt = it->second;
        if (opt.set) {
            // Silently taking the last occurrence would let a sweep
            // script that pastes `--seed=1 ... --seed=2` collect data
            // under the wrong seed without any sign of trouble.
            fatal("flag --", name,
                  " given more than once; each flag may appear at "
                  "most once\n",
                  usage());
        }
        if (!have_value) {
            if (opt.kind == Kind::Bool) {
                value = "true";
            } else if (i + 1 < argc) {
                value = argv[++i];
            } else {
                fatal("flag --", name, " needs a value");
            }
        }
        // Validate typed values eagerly.
        char *end = nullptr;
        switch (opt.kind) {
          case Kind::Int:
            (void)std::strtol(value.c_str(), &end, 10);
            if (!end || *end != '\0')
                fatal("flag --", name, " expects an integer, got '",
                      value, "'");
            break;
          case Kind::Double:
            (void)std::strtod(value.c_str(), &end);
            if (!end || *end != '\0')
                fatal("flag --", name, " expects a number, got '",
                      value, "'");
            break;
          case Kind::Bool:
            if (value != "true" && value != "false" && value != "1" &&
                value != "0") {
                fatal("flag --", name, " expects true/false");
            }
            break;
          case Kind::String:
            break;
        }
        opt.value = value;
        opt.set = true;
    }

    if (getBool("help")) {
        std::fputs(usage().c_str(), stdout);
        return false;
    }
    return true;
}

const Options::Option &
Options::lookup(const std::string &name, Kind kind) const
{
    auto it = options_.find(name);
    KELP_ASSERT(it != options_.end(), "unregistered option --", name);
    KELP_ASSERT(it->second.kind == kind, "type mismatch for --", name);
    return it->second;
}

std::string
Options::getString(const std::string &name) const
{
    return lookup(name, Kind::String).value;
}

long
Options::getInt(const std::string &name) const
{
    return std::strtol(lookup(name, Kind::Int).value.c_str(), nullptr,
                       10);
}

double
Options::getDouble(const std::string &name) const
{
    return std::strtod(lookup(name, Kind::Double).value.c_str(),
                       nullptr);
}

bool
Options::getBool(const std::string &name) const
{
    const std::string &v = lookup(name, Kind::Bool).value;
    return v == "true" || v == "1";
}

bool
Options::isSet(const std::string &name) const
{
    auto it = options_.find(name);
    KELP_ASSERT(it != options_.end(), "unregistered option --", name);
    return it->second.set;
}

std::string
Options::usage() const
{
    std::ostringstream os;
    os << program_ << " -- " << summary_ << "\n\noptions:\n";
    for (const auto &name : order_) {
        const Option &o = options_.at(name);
        os << "  --" << name;
        switch (o.kind) {
          case Kind::String:
            os << "=<string>";
            break;
          case Kind::Int:
            os << "=<int>";
            break;
          case Kind::Double:
            os << "=<num>";
            break;
          case Kind::Bool:
            break;
        }
        os << "\n      " << o.help << " (default: " << o.def << ")\n";
    }
    return os.str();
}

} // namespace sim
} // namespace kelp
