#include "sim/rng.hh"

#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace sim {

namespace {

/** SplitMix64 step, used only for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitMix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    KELP_ASSERT(n > 0, "Rng::below requires n > 0");
    // Modulo bias is negligible for the n used here (n << 2^64).
    return next() % n;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::gaussian(double mean, double stddev)
{
    double u1 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    double u2 = uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::split(uint64_t salt)
{
    // Derive the child's seed from our stream plus the salt so that
    // splitting does not disturb determinism of the parent sequence
    // relative to other salts.
    uint64_t x = s_[0] ^ (salt * 0xD2B74407B1CE6E93ull);
    return Rng(splitMix64(x));
}

Rng
Rng::derive(uint64_t base, uint64_t index)
{
    // Two SplitMix64 rounds over base, then fold in the index with an
    // odd multiplier before a final round. Depends only on the
    // arguments, never on any generator's position in its stream.
    uint64_t x = base;
    splitMix64(x);
    uint64_t h = splitMix64(x);
    uint64_t y = h ^ ((index + 1) * 0xD2B74407B1CE6E93ull);
    return Rng(splitMix64(y));
}

} // namespace sim
} // namespace kelp
