/**
 * @file
 * The time-stepped simulation engine.
 *
 * The engine advances simulated time in fixed ticks. Registered tick
 * functions run every tick in registration order (the node registers
 * its demand/resolve/advance pipeline as a single function to keep the
 * ordering explicit). Periodic callbacks run at their own cadence --
 * this is how runtime controllers get their 10-second sampling without
 * being entangled in the per-tick model.
 */

#ifndef KELP_SIM_ENGINE_HH
#define KELP_SIM_ENGINE_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace kelp {
namespace sim {

/** A function invoked every tick with (now, dt). */
using TickFn = std::function<void(Time, Time)>;

/** A function invoked periodically with the current time. */
using PeriodicFn = std::function<void(Time)>;

/**
 * Fixed-step simulation driver.
 */
class Engine
{
  public:
    /** @param tick_len Length of one simulation step, in seconds. */
    explicit Engine(Time tick_len = 100 * usec);

    /** Current simulated time in seconds. */
    Time now() const { return now_; }

    /** Step length in seconds. */
    Time tickLength() const { return tickLen_; }

    /** Number of ticks executed so far. */
    uint64_t tickCount() const { return ticks_; }

    /**
     * Register a per-tick function. Functions run in registration
     * order every tick.
     */
    void onTick(TickFn fn);

    /**
     * Register a periodic callback.
     *
     * @param period Interval between invocations (must be >= tick).
     * @param fn Callback; receives the time of invocation.
     * @param phase Offset of the first invocation from time zero.
     *              Defaults to one full period (so a controller first
     *              fires after its first sampling window, as Kelp's
     *              10 s sampler does).
     */
    void every(Time period, PeriodicFn fn, Time phase = -1.0);

    /** Run for the given additional duration of simulated time. */
    void run(Time duration);

    /** Run until the given absolute simulated time. */
    void runUntil(Time t);

  private:
    struct Periodic
    {
        Time period;
        Time next;
        PeriodicFn fn;
    };

    void step();

    Time tickLen_;
    Time now_ = 0.0;
    uint64_t ticks_ = 0;
    std::vector<TickFn> tickFns_;
    std::vector<Periodic> periodics_;
};

} // namespace sim
} // namespace kelp

#endif // KELP_SIM_ENGINE_HH
