/**
 * @file
 * The time-stepped simulation engine.
 *
 * The engine advances simulated time in fixed ticks. Registered tick
 * functions run every tick in registration order (the node registers
 * its demand/resolve/advance pipeline as a single function to keep the
 * ordering explicit). Periodic callbacks run at their own cadence --
 * this is how runtime controllers get their 10-second sampling without
 * being entangled in the per-tick model.
 */

#ifndef KELP_SIM_ENGINE_HH
#define KELP_SIM_ENGINE_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace kelp {
namespace sim {

/** A function invoked every tick with (now, dt). */
using TickFn = std::function<void(Time, Time)>;

/** A function invoked periodically with the current time. */
using PeriodicFn = std::function<void(Time)>;

/**
 * A fast-forward hook: asked to consume up to max_ticks ticks of
 * length dt starting at now, it returns how many it actually
 * consumed (0 = the model is not quiescent, run a normal step). The
 * hook must leave the model in exactly the state a sequence of that
 * many normal ticks would have produced, bit for bit.
 */
using FastForwardFn = std::function<uint64_t(Time, Time, uint64_t)>;

/**
 * Fixed-step simulation driver.
 */
class Engine
{
  public:
    /** @param tick_len Length of one simulation step, in seconds. */
    explicit Engine(Time tick_len = 100 * usec);

    /** Current simulated time in seconds. */
    Time now() const { return now_; }

    /** Step length in seconds. */
    Time tickLength() const { return tickLen_; }

    /** Number of ticks executed so far (full steps + fast ticks). */
    uint64_t tickCount() const { return ticks_; }

    /** Ticks consumed through the fast-forward hook. */
    uint64_t fastTickCount() const { return fastTicks_; }

    /** Ticks executed through the full step() path. */
    uint64_t fullTickCount() const { return ticks_ - fastTicks_; }

    /** Number of periodic-callback invocations so far. */
    uint64_t periodicFireCount() const { return periodicFires_; }

    /**
     * Register a per-tick function. Functions run in registration
     * order every tick.
     */
    void onTick(TickFn fn);

    /**
     * Register a periodic callback.
     *
     * @param period Interval between invocations (must be >= tick).
     * @param fn Callback; receives the time of invocation.
     * @param phase Offset of the first invocation from time zero.
     *              Defaults to one full period (so a controller first
     *              fires after its first sampling window, as Kelp's
     *              10 s sampler does).
     */
    void every(Time period, PeriodicFn fn, Time phase = -1.0);

    /**
     * Install the fast-forward hook. The engine only engages it when
     * the hook's owner is the sole tick function, so a hook can never
     * skip over another registrant's per-tick work. At most one hook
     * may be installed.
     */
    void setFastForward(FastForwardFn fn);

    /** Run for the given additional duration of simulated time. */
    void run(Time duration);

    /** Run until the given absolute simulated time. */
    void runUntil(Time t);

  private:
    struct Periodic
    {
        Time period;
        Time next;
        PeriodicFn fn;
    };

    void step();

    /** Max fast ticks that fit before the next periodic deadline or
     * the horizon t, with a safety margin so the boundary ticks run
     * through step() and keep exact periodic-firing semantics. */
    uint64_t fastChunk(Time t) const;

    Time tickLen_;
    Time now_ = 0.0;
    uint64_t ticks_ = 0;
    uint64_t fastTicks_ = 0;
    uint64_t periodicFires_ = 0;
    std::vector<TickFn> tickFns_;
    std::vector<Periodic> periodics_;
    FastForwardFn fastFn_;
};

} // namespace sim
} // namespace kelp

#endif // KELP_SIM_ENGINE_HH
