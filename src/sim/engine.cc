#include "sim/engine.hh"

#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace sim {

Engine::Engine(Time tick_len)
    : tickLen_(tick_len)
{
    KELP_ASSERT(tick_len > 0.0, "tick length must be positive");
}

void
Engine::onTick(TickFn fn)
{
    tickFns_.push_back(std::move(fn));
}

void
Engine::every(Time period, PeriodicFn fn, Time phase)
{
    KELP_ASSERT(period >= tickLen_,
                "periodic interval shorter than a tick");
    if (phase < 0.0)
        phase = period;
    periodics_.push_back({period, now_ + phase, std::move(fn)});
}

void
Engine::step()
{
    Time t = now_;
    for (auto &fn : tickFns_)
        fn(t, tickLen_);
    now_ = t + tickLen_;
    ++ticks_;
    // Fire periodics whose deadline has been reached. Periodics run
    // after the tick so they observe a fully-updated model state.
    for (auto &p : periodics_) {
        while (p.next <= now_ + tickLen_ * 1e-9) {
            p.fn(p.next);
            p.next += p.period;
        }
    }
}

void
Engine::run(Time duration)
{
    runUntil(now_ + duration);
}

void
Engine::runUntil(Time t)
{
    // Half-tick tolerance avoids an extra step from floating-point
    // accumulation over millions of ticks.
    while (now_ + tickLen_ * 0.5 < t)
        step();
}

} // namespace sim
} // namespace kelp
