#include "sim/engine.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace sim {

Engine::Engine(Time tick_len)
    : tickLen_(tick_len)
{
    KELP_ASSERT(tick_len > 0.0, "tick length must be positive");
}

void
Engine::onTick(TickFn fn)
{
    tickFns_.push_back(std::move(fn));
}

void
Engine::every(Time period, PeriodicFn fn, Time phase)
{
    KELP_ASSERT(period >= tickLen_,
                "periodic interval shorter than a tick");
    if (phase < 0.0)
        phase = period;
    periodics_.push_back({period, now_ + phase, std::move(fn)});
}

void
Engine::setFastForward(FastForwardFn fn)
{
    KELP_ASSERT(!fastFn_, "fast-forward hook already installed");
    fastFn_ = std::move(fn);
}

void
Engine::step()
{
    Time t = now_;
    for (auto &fn : tickFns_)
        fn(t, tickLen_);
    now_ = t + tickLen_;
    ++ticks_;
    // Fire periodics whose deadline has been reached. Periodics run
    // after the tick so they observe a fully-updated model state.
    for (auto &p : periodics_) {
        while (p.next <= now_ + tickLen_ * 1e-9) {
            p.fn(p.next);
            p.next += p.period;
            ++periodicFires_;
        }
    }
}

uint64_t
Engine::fastChunk(Time t) const
{
    // Stop one tick short of every deadline so the tick that reaches
    // a periodic firing (and the final tick before the horizon) runs
    // through step(), where the firing condition is evaluated with
    // its normal floating-point sequence. now_ itself accumulates the
    // identical per-tick additions on both paths, so stopping short
    // is the only thing this margin has to guarantee.
    double limit = (t - now_) / tickLen_ - 1.0;
    for (const auto &p : periodics_) {
        double d = (p.next - now_) / tickLen_ - 1.0;
        limit = std::min(limit, d);
    }
    if (limit < 1.0)
        return 0;
    // Kill timers use ~1e18 s periods; cap well below 2^63 before
    // the cast so the conversion is defined.
    limit = std::min(limit, 1e15);
    return static_cast<uint64_t>(limit);
}

void
Engine::run(Time duration)
{
    runUntil(now_ + duration);
}

void
Engine::runUntil(Time t)
{
    // Half-tick tolerance avoids an extra step from floating-point
    // accumulation over millions of ticks.
    while (now_ + tickLen_ * 0.5 < t) {
        // The fast path only engages when its owner is the sole tick
        // registrant: a second onTick function would be skipped over.
        if (fastFn_ && tickFns_.size() == 1) {
            uint64_t chunk = fastChunk(t);
            if (chunk > 0) {
                uint64_t done = fastFn_(now_, tickLen_, chunk);
                KELP_ASSERT(done <= chunk,
                            "fast-forward overran its chunk");
                if (done > 0) {
                    // Advance time with the same per-tick additions
                    // step() would have performed.
                    for (uint64_t i = 0; i < done; ++i)
                        now_ += tickLen_;
                    ticks_ += done;
                    fastTicks_ += done;
                    continue;
                }
            }
        }
        step();
    }
}

} // namespace sim
} // namespace kelp
