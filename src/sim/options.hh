/**
 * @file
 * A small command-line / key-value options parser for the CLI tool,
 * benches, and examples.
 *
 * Flags take the forms `--name=value`, `--name value`, or bare
 * `--name` for booleans. Unknown flags are fatal (user error), so
 * typos do not silently run the wrong experiment, and so is giving
 * the same flag twice (the silent last-one-wins alternative lets
 * pasted sweep command lines collect data under the wrong knob). Every option is
 * registered with a description, and `--help` prints them.
 */

#ifndef KELP_SIM_OPTIONS_HH
#define KELP_SIM_OPTIONS_HH

#include <map>
#include <string>
#include <vector>

namespace kelp {
namespace sim {

/** Declarative command-line options. */
class Options
{
  public:
    /**
     * @param program Program name for the usage banner.
     * @param summary One-line description.
     */
    Options(std::string program, std::string summary);

    /** Register options (call before parse()). */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    void addInt(const std::string &name, long def,
                const std::string &help);
    void addDouble(const std::string &name, double def,
                   const std::string &help);
    void addBool(const std::string &name, bool def,
                 const std::string &help);

    /**
     * Parse argv. Returns false if `--help` was requested (usage has
     * been printed); exits fatally (with usage text) on malformed,
     * unknown, or repeated flags.
     */
    bool parse(int argc, const char *const *argv);

    /** Typed getters (fatal on unknown name or type mismatch). */
    std::string getString(const std::string &name) const;
    long getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** True if the user supplied the option explicitly. */
    bool isSet(const std::string &name) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Render the usage/help text. */
    std::string usage() const;

  private:
    enum class Kind { String, Int, Double, Bool };

    struct Option
    {
        Kind kind;
        std::string value;
        std::string def;
        std::string help;
        bool set = false;
    };

    const Option &lookup(const std::string &name, Kind kind) const;
    void add(const std::string &name, Kind kind,
             const std::string &def, const std::string &help);

    std::string program_;
    std::string summary_;
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;
    std::vector<std::string> positional_;
};

} // namespace sim
} // namespace kelp

#endif // KELP_SIM_OPTIONS_HH
