#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/log.hh"

namespace kelp {
namespace sim {

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

Ewma::Ewma(double alpha, double initial)
    : alpha_(alpha), value_(initial)
{
    KELP_ASSERT(alpha > 0.0 && alpha <= 1.0, "Ewma alpha out of range");
}

double
Ewma::add(double x)
{
    if (!primed_) {
        value_ = x;
        primed_ = true;
    } else {
        value_ += alpha_ * (x - value_);
    }
    return value_;
}

void
Ewma::reset(double value)
{
    value_ = value;
    primed_ = false;
}

LatencyHistogram::LatencyHistogram(double min_value, double max_value,
                                   double growth)
    : minValue_(min_value), logMin_(std::log(min_value)),
      logGrowth_(std::log(growth))
{
    KELP_ASSERT(min_value > 0.0 && max_value > min_value && growth > 1.0,
                "bad LatencyHistogram parameters");
    size_t n = static_cast<size_t>(
        std::ceil((std::log(max_value) - logMin_) / logGrowth_)) + 2;
    buckets_.assign(n, 0);
}

size_t
LatencyHistogram::bucketFor(double x) const
{
    if (!(x > minValue_))
        return 0;
    double idx = (std::log(x) - logMin_) / logGrowth_;
    size_t i = static_cast<size_t>(idx) + 1;
    return std::min(i, buckets_.size() - 1);
}

double
LatencyHistogram::bucketLow(size_t i) const
{
    if (i == 0)
        return 0.0;
    return std::exp(logMin_ + logGrowth_ * static_cast<double>(i - 1));
}

double
LatencyHistogram::bucketHigh(size_t i) const
{
    return std::exp(logMin_ + logGrowth_ * static_cast<double>(i));
}

void
LatencyHistogram::add(double x)
{
    // NaN would otherwise fall into bucket 0 (every comparison on it
    // is false, including `x > minValue_`) and poison sum_ -- mean()
    // and every percentile after it would be NaN. Reject it as a
    // contract violation; in Count mode the sample is dropped and the
    // histogram stays well-formed.
    KELP_EXPECTS(!std::isnan(x),
                 "NaN cannot be recorded in a latency histogram");
    if (std::isnan(x))
        return;
    ++buckets_[bucketFor(x)];
    ++total_;
    sum_ += x;
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
    sum_ = 0.0;
}

double
LatencyHistogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double
LatencyHistogram::percentile(double pct) const
{
    if (total_ == 0)
        return 0.0;
    pct = std::clamp(pct, 0.0, 100.0);
    double target = pct / 100.0 * static_cast<double>(total_);
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        double before = static_cast<double>(seen);
        seen += buckets_[i];
        if (static_cast<double>(seen) >= target) {
            double within = buckets_[i] == 0 ? 0.0 :
                (target - before) / static_cast<double>(buckets_[i]);
            within = std::clamp(within, 0.0, 1.0);
            return bucketLow(i) +
                   within * (bucketHigh(i) - bucketLow(i));
        }
    }
    return bucketHigh(buckets_.size() - 1);
}

double
percentileSorted(const std::vector<double> &sorted, double pct)
{
    KELP_EXPECTS(!sorted.empty(),
                 "percentileSorted on an empty sample vector");
    if (sorted.empty())
        return 0.0;
    pct = std::clamp(pct, 0.0, 100.0);
    // Same rule as LatencyHistogram::percentile: the smallest entry
    // whose cumulative count reaches pct/100 * n. Sample i (0-based)
    // covers cumulative counts (i, i+1].
    double target = pct / 100.0 * static_cast<double>(sorted.size());
    double idx = std::ceil(target) - 1.0;
    size_t i = idx <= 0.0 ? 0 : static_cast<size_t>(idx);
    return sorted[std::min(i, sorted.size() - 1)];
}

void
IntervalAccumulator::flush() const
{
    if (pendingN_ == 0)
        return;
    integral_ +=
        pendingX_ * pendingDt_ * static_cast<double>(pendingN_);
    time_ += pendingDt_ * static_cast<double>(pendingN_);
    pendingN_ = 0;
}

void
IntervalAccumulator::accumulate(double x, double dt)
{
    KELP_ASSERT(dt >= 0.0, "negative accumulation interval");
    if (pendingN_ != 0 && x == pendingX_ && dt == pendingDt_) {
        ++pendingN_;
        return;
    }
    flush();
    pendingX_ = x;
    pendingDt_ = dt;
    pendingN_ = 1;
}

void
IntervalAccumulator::accumulateRepeat(double x, double dt, uint64_t n)
{
    KELP_ASSERT(dt >= 0.0, "negative accumulation interval");
    if (n == 0)
        return;
    if (pendingN_ != 0 && x == pendingX_ && dt == pendingDt_) {
        pendingN_ += n;
        return;
    }
    flush();
    pendingX_ = x;
    pendingDt_ = dt;
    pendingN_ = n;
}

double
IntervalAccumulator::readSince(Snapshot &snap, double fallback) const
{
    flush();
    double dt = time_ - snap.time;
    double di = integral_ - snap.integral;
    snap.time = time_;
    snap.integral = integral_;
    if (dt <= 0.0)
        return fallback;
    return di / dt;
}

} // namespace sim
} // namespace kelp
