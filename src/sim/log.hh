/**
 * @file
 * Minimal gem5-style logging and error-reporting helpers.
 *
 * fatal() is for user errors (bad configuration); panic() is for
 * internal invariant violations. Both terminate. inform()/warn() are
 * status messages that never stop execution.
 */

#ifndef KELP_SIM_LOG_HH
#define KELP_SIM_LOG_HH

#include <sstream>
#include <string>

namespace kelp {
namespace sim {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Get the process-wide log level (default: Warn). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail {

void emit(LogLevel level, const std::string &tag, const std::string &msg);

[[noreturn]] void die(const std::string &tag, const std::string &msg,
                      bool is_panic);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Informative status message (shown at Inform level and above). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Inform, "info",
                 detail::format(std::forward<Args>(args)...));
}

/** Warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, "warn",
                 detail::format(std::forward<Args>(args)...));
}

/** Debug-level trace message. */
template <typename... Args>
void
debug(Args &&...args)
{
    detail::emit(LogLevel::Debug, "debug",
                 detail::format(std::forward<Args>(args)...));
}

/** Terminate due to a user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::die("fatal", detail::format(std::forward<Args>(args)...),
                false);
}

/** Terminate due to an internal library bug. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::die("panic", detail::format(std::forward<Args>(args)...),
                true);
}

/** panic() unless the given condition holds. */
#define KELP_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::kelp::sim::panic("assertion failed: " #cond " ",          \
                               ##__VA_ARGS__);                          \
        }                                                               \
    } while (0)

} // namespace sim
} // namespace kelp

#endif // KELP_SIM_LOG_HH
