/**
 * @file
 * Minimal gem5-style logging and error-reporting helpers.
 *
 * fatal() is for user errors (bad configuration); panic() is for
 * internal invariant violations. Both terminate. inform()/warn() are
 * status messages that never stop execution.
 */

#ifndef KELP_SIM_LOG_HH
#define KELP_SIM_LOG_HH

#include <cstdint>
#include <sstream>
#include <string>

namespace kelp {
namespace sim {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Get the process-wide log level (default: Warn). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail {

void emit(LogLevel level, const std::string &tag, const std::string &msg);

[[noreturn]] void die(const std::string &tag, const std::string &msg,
                      bool is_panic);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Informative status message (shown at Inform level and above). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Inform, "info",
                 detail::format(std::forward<Args>(args)...));
}

/** Warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, "warn",
                 detail::format(std::forward<Args>(args)...));
}

/** Debug-level trace message. */
template <typename... Args>
void
debug(Args &&...args)
{
    detail::emit(LogLevel::Debug, "debug",
                 detail::format(std::forward<Args>(args)...));
}

/** Terminate due to a user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::die("fatal", detail::format(std::forward<Args>(args)...),
                false);
}

/** Terminate due to an internal library bug. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::die("panic", detail::format(std::forward<Args>(args)...),
                true);
}

/** panic() unless the given condition holds. */
#define KELP_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::kelp::sim::panic("assertion failed: " #cond " ",          \
                               ##__VA_ARGS__);                          \
        }                                                               \
    } while (0)

/**
 * Contract-violation handling mode.
 *
 * Fatal: a violated contract panics (abort), so debug builds and
 * death tests pinpoint the offending call stack immediately.
 *
 * Count: a violated contract increments a process-wide counter and
 * execution continues. Release builds default to this so a production
 * run degrades (and reports the count through kelpsim telemetry)
 * instead of crashing; the counter makes the violation visible to CI
 * and to operators either way.
 */
enum class ContractMode { Fatal, Count };

/** Current mode (default: Fatal unless NDEBUG, then Count). */
ContractMode contractMode();

/** Override the mode (tests exercise both paths in any build). */
void setContractMode(ContractMode mode);

/** Contract violations recorded since start/reset (Count mode). */
uint64_t contractViolations();

/** Reset the violation counter (test isolation). */
void resetContractViolations();

/**
 * Contract violations recorded by the *calling thread* since it
 * started (Count mode). The process-wide counter above is useless for
 * attributing violations to one run when pool workers execute several
 * runs concurrently; a worker that brackets a run with two reads of
 * this counter gets an exact per-run delta regardless of what the
 * other workers are doing. Never reset: callers difference it.
 */
uint64_t contractViolationsHere();

namespace detail {

void contractViolated(const char *kind, const char *cond,
                      const char *file, int line,
                      const std::string &msg);

} // namespace detail

/**
 * Contract macros: machine-checked statements of the invariants the
 * controllers otherwise assume informally. KELP_EXPECTS states a
 * precondition at function entry, KELP_ENSURES a postcondition before
 * return, KELP_INVARIANT a mid-flight structural invariant. All three
 * share the same handling (contractMode() above); the distinction is
 * documentation and shows up in the violation report.
 */
#define KELP_CONTRACT_CHECK_(kind, cond, ...)                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::kelp::sim::detail::contractViolated(                      \
                kind, #cond, __FILE__, __LINE__,                        \
                ::kelp::sim::detail::format(__VA_ARGS__));              \
        }                                                               \
    } while (0)

#define KELP_EXPECTS(cond, ...)                                         \
    KELP_CONTRACT_CHECK_("precondition", cond, ##__VA_ARGS__)
#define KELP_ENSURES(cond, ...)                                         \
    KELP_CONTRACT_CHECK_("postcondition", cond, ##__VA_ARGS__)
#define KELP_INVARIANT(cond, ...)                                       \
    KELP_CONTRACT_CHECK_("invariant", cond, ##__VA_ARGS__)

} // namespace sim
} // namespace kelp

#endif // KELP_SIM_LOG_HH
