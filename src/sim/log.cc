#include "sim/log.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace kelp {
namespace sim {

namespace {

LogLevel g_level = LogLevel::Warn;

#ifdef NDEBUG
ContractMode g_contract_mode = ContractMode::Count;
#else
ContractMode g_contract_mode = ContractMode::Fatal;
#endif

// Atomic: Count-mode violations can be recorded from worker-pool
// threads during parallel sweeps.
std::atomic<uint64_t> g_contract_violations{0};

// Per-thread tally alongside the global one, so a pool worker can
// attribute violations to the run it is executing (the fuzzer's
// contract oracle differences this around each trial).
thread_local uint64_t g_contract_violations_here = 0;

/** Cap on per-violation warn() lines so a hot loop with a broken
 * invariant cannot flood stderr in Count mode. */
constexpr uint64_t kMaxContractWarnings = 10;

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

ContractMode
contractMode()
{
    return g_contract_mode;
}

void
setContractMode(ContractMode mode)
{
    g_contract_mode = mode;
}

uint64_t
contractViolations()
{
    return g_contract_violations.load();
}

void
resetContractViolations()
{
    g_contract_violations.store(0);
}

uint64_t
contractViolationsHere()
{
    return g_contract_violations_here;
}

namespace detail {

void
emit(LogLevel level, const std::string &tag, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(g_level))
        return;
    std::cerr << "[" << tag << "] " << msg << "\n";
}

void
die(const std::string &tag, const std::string &msg, bool is_panic)
{
    std::cerr << "[" << tag << "] " << msg << std::endl;
    if (is_panic) {
        // Internal bug: abort so a debugger/core dump sees the state.
        // Tests intercept this via death tests.
        std::abort();
    }
    std::exit(1);
}

void
contractViolated(const char *kind, const char *cond, const char *file,
                 int line, const std::string &msg)
{
    std::ostringstream os;
    os << kind << " violated at " << file << ":" << line << ": "
       << cond;
    if (!msg.empty())
        os << " (" << msg << ")";

    if (g_contract_mode == ContractMode::Fatal)
        die("contract", os.str(), true);

    ++g_contract_violations_here;
    const uint64_t count = g_contract_violations.fetch_add(1) + 1;
    if (count <= kMaxContractWarnings) {
        emit(LogLevel::Warn, "contract", os.str());
        if (count == kMaxContractWarnings) {
            emit(LogLevel::Warn, "contract",
                 "further contract violations will be counted "
                 "silently");
        }
    }
}

} // namespace detail

} // namespace sim
} // namespace kelp
