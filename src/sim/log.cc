#include "sim/log.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace kelp {
namespace sim {

namespace {

LogLevel g_level = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
emit(LogLevel level, const std::string &tag, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(g_level))
        return;
    std::cerr << "[" << tag << "] " << msg << "\n";
}

void
die(const std::string &tag, const std::string &msg, bool is_panic)
{
    std::cerr << "[" << tag << "] " << msg << std::endl;
    if (is_panic) {
        // Internal bug: abort so a debugger/core dump sees the state.
        // Tests intercept this via death tests.
        std::abort();
    }
    std::exit(1);
}

} // namespace detail

} // namespace sim
} // namespace kelp
