/**
 * @file
 * Statistics primitives used by the simulator and the runtime.
 *
 * - OnlineStats: Welford mean/variance accumulation.
 * - Ewma: exponentially weighted moving average for rate smoothing.
 * - LatencyHistogram: log-bucketed histogram with percentile queries
 *   (used for RNN1 request tail latency).
 * - IntervalAccumulator: integral-over-time accumulator that supports
 *   the delta reads performance counters provide (value since the
 *   previous sample).
 */

#ifndef KELP_SIM_STATS_HH
#define KELP_SIM_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace kelp {
namespace sim {

/** Streaming mean/variance/min/max via Welford's algorithm. */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Remove all observations. */
    void reset();

    /** Number of observations so far. */
    size_t count() const { return n_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;

    /** Empty-window identities (+inf/-inf) so min()/max() honour the
     * documented contract instead of reading uninitialized memory
     * when no observation has been added yet. */
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Exponentially weighted moving average. */
class Ewma
{
  public:
    /**
     * @param alpha Weight of each new sample (0 < alpha <= 1).
     * @param initial Value reported before the first sample.
     */
    explicit Ewma(double alpha = 0.25, double initial = 0.0);

    /** Fold in a new sample and return the updated average. */
    double add(double x);

    /** Current smoothed value. */
    double value() const { return value_; }

    /** Reset to a given value, forgetting history. */
    void reset(double value);

    /** True once at least one sample has been added. */
    bool primed() const { return primed_; }

  private:
    double alpha_;
    double value_;
    bool primed_ = false;
};

/**
 * Log-bucketed latency histogram with percentile queries.
 *
 * Buckets grow geometrically from minValue to maxValue; values outside
 * the range clamp to the boundary buckets. Percentiles interpolate
 * linearly within a bucket, which is accurate to the bucket growth
 * factor (1.5% by default) -- plenty for reproducing tail-latency
 * ratios.
 */
class LatencyHistogram
{
  public:
    /**
     * @param min_value Lower bound of the tracked range (exclusive 0).
     * @param max_value Upper bound of the tracked range.
     * @param growth Geometric bucket growth factor (> 1).
     */
    LatencyHistogram(double min_value = 1e-6, double max_value = 1e2,
                     double growth = 1.015);

    /** Record one value. */
    void add(double x);

    /** Remove all recorded values. */
    void reset();

    /** Number of recorded values. */
    uint64_t count() const { return total_; }

    /** Arithmetic mean of recorded values. */
    double mean() const;

    /**
     * Value at the given percentile (e.g., 95.0). Returns 0 when the
     * histogram is empty.
     */
    double percentile(double pct) const;

  private:
    size_t bucketFor(double x) const;
    double bucketLow(size_t i) const;
    double bucketHigh(size_t i) const;

    double minValue_;
    double logMin_;
    double logGrowth_;
    std::vector<uint64_t> buckets_;
    uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * Percentile of a pre-sorted sample vector under the repository's
 * shared percentile convention -- the same cumulative-count rule
 * LatencyHistogram::percentile applies to its buckets: the result is
 * the smallest sample whose cumulative count reaches
 * pct/100 * count. With point samples the histogram's within-bucket
 * interpolation collapses to the sample itself, so the two
 * implementations agree up to the histogram's bucket resolution.
 * Every consumer of raw sample vectors (fleet profiling, cluster SLO
 * accounting, manifest sample summaries) must use this instead of
 * hand-rolled index arithmetic so percentiles can never drift apart
 * between subsystems.
 *
 * `sorted` must be in ascending order. An empty vector is a contract
 * violation (returns 0 in Count mode, matching the histogram's
 * empty-case fallback).
 */
double percentileSorted(const std::vector<double> &sorted, double pct);

/**
 * Time-integral accumulator with counter-style delta reads.
 *
 * accumulate(x, dt) adds x*dt to a running integral; a reader holding
 * a Snapshot can ask for the average value of x over the interval
 * since its previous read -- exactly how Kelp consumes hardware
 * counters (bandwidth = bytes delta / time delta, saturation =
 * asserted-cycles delta / cycles delta).
 */
class IntervalAccumulator
{
  public:
    /** Reader-side cursor; value-initialized cursors read from t=0. */
    struct Snapshot
    {
        double integral = 0.0;
        double time = 0.0;
    };

    /** Add x (a rate or level) held for duration dt. */
    void accumulate(double x, double dt);

    /**
     * Accumulate the same (x, dt) pair n times. Identical to calling
     * accumulate(x, dt) n times: repeated identical samples merge
     * into one pending run either way, so the engine's fast-forward
     * paths and the stepped path fold counters bit-for-bit the same.
     */
    void accumulateRepeat(double x, double dt, uint64_t n);

    /** Total integral since construction. */
    double integral() const
    {
        flush();
        return integral_;
    }

    /** Total time accumulated since construction. */
    double elapsed() const
    {
        flush();
        return time_;
    }

    /**
     * Average level since the snapshot; updates the snapshot to now.
     * Returns fallback when no time has elapsed.
     */
    double readSince(Snapshot &snap, double fallback = 0.0) const;

  private:
    /** Fold the pending run into the integrals. */
    void flush() const;

    // A run of identical samples is held symbolically and folded in
    // closed form on read or when a different sample arrives. This
    // makes an n-tick steady stretch cost O(1) instead of n adds --
    // the core of the event-driven engine's counter cost model --
    // and because the stepped path merges the very same per-tick
    // sample stream, fast-forward and stepped runs stay identical.
    mutable double integral_ = 0.0;
    mutable double time_ = 0.0;
    mutable double pendingX_ = 0.0;
    mutable double pendingDt_ = 0.0;
    mutable uint64_t pendingN_ = 0;
};

} // namespace sim
} // namespace kelp

#endif // KELP_SIM_STATS_HH
