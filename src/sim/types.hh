/**
 * @file
 * Fundamental simulation types: simulated time, identifiers, and the
 * unit conventions used throughout the library.
 *
 * Conventions:
 *  - Simulated time is a double in seconds (phases are sub-millisecond
 *    and experiments run for minutes; double keeps full precision over
 *    that range).
 *  - Bandwidth is measured in GiB/s (the paper reports percentages of
 *    peak, so the absolute unit only has to be internally consistent).
 *  - Work is measured in abstract "work units"; a phase defines how
 *    long one unit takes standalone, and contention scales that.
 */

#ifndef KELP_SIM_TYPES_HH
#define KELP_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace kelp {
namespace sim {

/** Simulated time in seconds. */
using Time = double;

/** Bandwidth in GiB per second. */
using GiBps = double;

/** Memory access latency in nanoseconds. */
using Nanoseconds = double;

/** An abstract quantity of computational work. */
using Work = double;

/** Identifier for a socket within a node. */
using SocketId = int;

/** Identifier for a NUMA subdomain within a socket (0 or 1). */
using SubdomainId = int;

/** Identifier for a memory controller within a node. */
using McId = int;

/** Identifier for a core within a node. */
using CoreId = int;

/** Identifier for a task group (cgroup-like) within a node. */
using GroupId = int;

/** Sentinel for "no id". */
constexpr int invalidId = -1;

/** One microsecond in seconds. */
constexpr Time usec = 1e-6;

/** One millisecond in seconds. */
constexpr Time msec = 1e-3;

/** Convert seconds to microseconds. */
constexpr double
toUsec(Time t)
{
    return t * 1e6;
}

/** Convert seconds to milliseconds. */
constexpr double
toMsec(Time t)
{
    return t * 1e3;
}

/** Positive infinity shorthand for time deadlines. */
constexpr Time timeInf = std::numeric_limits<Time>::infinity();

} // namespace sim
} // namespace kelp

#endif // KELP_SIM_TYPES_HH
