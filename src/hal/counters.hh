/**
 * @file
 * Performance-counter interface: the measurement side of the runtime.
 *
 * The paper's Kelp makes exactly four kinds of measurement every
 * sampling period (Section IV-D): socket memory bandwidth, memory
 * latency, memory saturation (FAST_ASSERTED duty cycle), and
 * high-priority-subdomain bandwidth. This class exposes those as
 * windowed counter reads: each read reports the average since this
 * reader's previous read, which is how real MSR/uncore counters are
 * consumed (read, diff, divide by elapsed).
 *
 * Each consumer owns its own PerfCounters instance so readers never
 * perturb one another's windows.
 */

#ifndef KELP_HAL_COUNTERS_HH
#define KELP_HAL_COUNTERS_HH

#include <array>

#include "mem/mem_system.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace kelp {
namespace hal {

/** One sampling window's worth of measurements for a socket. */
struct CounterSample
{
    /**
     * End of the sampling window on the hardware clock, seconds.
     * Healthy telemetry always advances this between reads (real
     * counter reads are timestamped); a repeated value marks a
     * stale/cached read and a zero one a dropped read.
     */
    double windowEnd = 0.0;

    /** Average socket memory bandwidth over the window, GiB/s. */
    sim::GiBps socketBw = 0.0;

    /** Average effective memory latency over the window, ns. */
    sim::Nanoseconds memLatency = 0.0;

    /** Memory saturation: distress duty cycle in [0, 1]. */
    double saturation = 0.0;

    /** Average per-subdomain bandwidth, GiB/s. */
    std::array<sim::GiBps, 2> subdomainBw = {0.0, 0.0};

    /** Average per-subdomain memory latency, ns. */
    std::array<sim::Nanoseconds, 2> subdomainLat = {0.0, 0.0};
};

/**
 * Abstract telemetry backend. Controllers read through this interface
 * so the measurement side can be swapped (simulated uncore counters,
 * real MSRs, or a fault-injecting wrapper) without touching the
 * control logic.
 */
class CounterSource
{
  public:
    virtual ~CounterSource() = default;

    /** Read all counters for a socket since this reader's last read. */
    virtual CounterSample sample(sim::SocketId socket) = 0;
};

/** Windowed reader over the memory system's counters. */
class PerfCounters : public CounterSource
{
  public:
    explicit PerfCounters(const mem::MemSystem &mem);

    /**
     * Read all counters for a socket, returning averages over the
     * window since the previous read (or since construction).
     */
    CounterSample sample(sim::SocketId socket) override;

    /** Doubles in one socket's flattened window-cursor state. */
    static constexpr size_t kCursorDoubles = 14;

    /**
     * Export one socket's window cursors as a flat array (controller
     * checkpointing). A reader rebuilt after a crash would otherwise
     * prime fresh cursors at construction time and its first window
     * would start mid-period, diverging from an uninterrupted
     * reader's.
     */
    std::array<double, kCursorDoubles>
    cursorState(sim::SocketId socket) const;

    /** Restore cursors exported with cursorState(): the next
     * sample() continues the pre-crash window exactly. */
    void restoreCursorState(sim::SocketId socket,
                            const std::array<double, kCursorDoubles> &state);

  private:
    struct SocketCursors
    {
        sim::IntervalAccumulator::Snapshot bw;
        sim::IntervalAccumulator::Snapshot lat;
        sim::IntervalAccumulator::Snapshot sat;
        std::array<sim::IntervalAccumulator::Snapshot, 2> sub;
        std::array<sim::IntervalAccumulator::Snapshot, 2> subLat;
    };

    const mem::MemSystem &mem_;
    std::array<SocketCursors, 2> cursors_;
};

} // namespace hal
} // namespace kelp

#endif // KELP_HAL_COUNTERS_HH
