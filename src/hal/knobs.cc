#include "hal/knobs.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace hal {

ResourceKnobs::ResourceKnobs(GroupRegistry &registry)
    : registry_(registry)
{
}

GroupKnobState
ResourceKnobs::groupState(sim::GroupId group) const
{
    const TaskGroup &g = registry_.get(group);
    GroupKnobState st;
    st.cores = g.cores().count;
    st.prefetchers = g.prefetchersEnabled();
    st.catWays = g.catWays();
    return st;
}

bool
ResourceKnobs::setCores(sim::GroupId group, sim::SocketId socket,
                        sim::SubdomainId sub, int count)
{
    KELP_ASSERT(count >= 0, "negative core count");
    TaskGroup &g = registry_.get(group);
    int current = g.cores_.inSubdomain(socket, sub);
    int free = registry_.freeIn(socket, sub) + current;
    if (count > free) {
        sim::fatal("group ", g.name(), " requests ", count,
                   " cores in socket ", socket, " subdomain ", sub,
                   " but only ", free, " are available");
    }
    g.cores_.count[socket][sub] = count;
    g.floating_ = false;
    // Prefetcher enablement can never exceed the cores held.
    g.prefetchersEnabled_ =
        std::min(g.prefetchersEnabled_, g.cores_.total());
    registry_.noteChange();
    return true;
}

int
ResourceKnobs::adjustCores(sim::GroupId group, sim::SocketId socket,
                           sim::SubdomainId sub, int delta)
{
    TaskGroup &g = registry_.get(group);
    int current = g.cores_.inSubdomain(socket, sub);
    int free = registry_.freeIn(socket, sub) + current;
    int target = std::clamp(current + delta, 0, free);
    g.cores_.count[socket][sub] = target;
    g.floating_ = false;
    g.prefetchersEnabled_ =
        std::min(g.prefetchersEnabled_, g.cores_.total());
    registry_.noteChange();
    return target;
}

bool
ResourceKnobs::setPrefetchersEnabled(sim::GroupId group, int count)
{
    TaskGroup &g = registry_.get(group);
    g.prefetchersEnabled_ = std::clamp(count, 0, g.cores_.total());
    registry_.noteChange();
    return true;
}

bool
ResourceKnobs::setCatWays(sim::GroupId group, int ways)
{
    KELP_ASSERT(ways >= 0, "negative CAT ways");
    TaskGroup &g = registry_.get(group);
    // Validation against the per-domain way budget happens where the
    // LLC is apportioned (the domain membership depends on SNC mode).
    g.catWays_ = ways;
    registry_.noteChange();
    return true;
}

void
ResourceKnobs::setMemBinding(sim::GroupId group, sim::SocketId socket,
                             sim::SubdomainId sub)
{
    TaskGroup &g = registry_.get(group);
    g.memBinding_ = {socket, sub};
    registry_.noteChange();
}

} // namespace hal
} // namespace kelp
