/**
 * @file
 * HAL fault injection: deterministic degraded-telemetry and
 * failed-actuation models for robustness experiments.
 *
 * Production uncore counters glitch (dropped reads, stuck values,
 * noisy windows, spike outliers) and MSR/cgroup knob writes fail or
 * land late. The wrappers here inject exactly those fault classes
 * between a controller and the real HAL backends, driven by a
 * sim::Rng-seeded FaultPlan so every degraded run is reproducible:
 * the same seed produces the same fault sequence, and an all-zero
 * plan is a bit-identical pass-through.
 */

#ifndef KELP_HAL_FAULT_INJECTOR_HH
#define KELP_HAL_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hal/counters.hh"
#include "hal/knobs.hh"
#include "sim/rng.hh"

namespace kelp {
namespace hal {

/**
 * Per-fault-class probabilities, all applied independently per
 * counter read / knob write. Telemetry classes are mutually
 * exclusive per read, tested in the order listed.
 */
struct FaultPlan
{
    /** Counter read returns an all-zero sample (dropped read). */
    double dropProb = 0.0;

    /** Counter read repeats the last good sample (stuck/stale). */
    double stuckProb = 0.0;

    /** Counter read is scaled by 1 +/- noiseFrac per signal. */
    double noiseProb = 0.0;
    double noiseFrac = 0.2;

    /** One signal of the read is scaled by spikeScale (outlier). */
    double spikeProb = 0.0;
    double spikeScale = 10.0;

    /** Knob write is silently dropped (actuation failure). */
    double knobFailProb = 0.0;

    /** Knob write is deferred until the next write (delayed apply). */
    double knobDelayProb = 0.0;

    /** True when any fault class has non-zero probability. */
    bool any() const;

    /**
     * Parse a comma-separated spec, e.g.
     * "drop=0.1,stuck=0.05,noise=0.1,noisefrac=0.3,spike=0.02,"
     * "spikescale=8,knobfail=0.2,knobdelay=0.1".
     * An empty spec yields the all-zero (disabled) plan; unknown
     * keys, malformed/empty values, and out-of-range values are
     * fatal.
     */
    static FaultPlan parse(const std::string &spec);

    /**
     * Non-fatal variant: returns std::nullopt on any parse or
     * validation error and, when @p error is non-null, stores a
     * human-readable description of what was wrong.
     */
    static std::optional<FaultPlan>
    tryParse(const std::string &spec, std::string *error = nullptr);

    /**
     * Canonical spec string: keys in the documented order, only
     * fields that differ from a default-constructed plan, values in
     * shortest round-trip decimal form. The result parses back to an
     * identical plan (toString . tryParse is the identity, and
     * toString of the reparse reproduces the same bytes); an all-
     * default plan renders as the empty string. Used by the scenario
     * fuzzer's spec serialization and by manifest/decision reporting.
     */
    std::string toString() const;
};

/** Telemetry-side injection counts (inspection/reporting). */
struct CounterFaultStats
{
    uint64_t reads = 0;
    uint64_t drops = 0;
    uint64_t stucks = 0;
    uint64_t noises = 0;
    uint64_t spikes = 0;
};

/** Wraps a CounterSource, corrupting reads per the fault plan. */
class FaultyCounterSource : public CounterSource
{
  public:
    FaultyCounterSource(std::unique_ptr<CounterSource> inner,
                        const FaultPlan &plan, sim::Rng rng);

    CounterSample sample(sim::SocketId socket) override;

    /** Swap the active plan (tests script fault phases with this). */
    void setPlan(const FaultPlan &plan) { plan_ = plan; }
    const FaultPlan &plan() const { return plan_; }

    const CounterFaultStats &stats() const { return stats_; }

  private:
    std::unique_ptr<CounterSource> inner_;
    FaultPlan plan_;
    sim::Rng rng_;
    CounterFaultStats stats_;

    /** Last clean sample per socket, for the stuck class. */
    std::array<CounterSample, 2> lastGood_;
    std::array<bool, 2> haveLast_ = {false, false};
};

/** Actuation-side injection counts (inspection/reporting). */
struct KnobFaultStats
{
    uint64_t writes = 0;
    uint64_t failures = 0;
    uint64_t delays = 0;
};

/**
 * Wraps a KnobSink, dropping or delaying writes per the fault plan.
 * A delayed write reports success but is only applied immediately
 * before the *next* write reaching the sink (stale actuation); a
 * failed write reports false and is lost.
 */
class FaultyKnobSink : public KnobSink
{
  public:
    FaultyKnobSink(KnobSink &inner, const FaultPlan &plan,
                   sim::Rng rng);

    bool setCores(sim::GroupId group, sim::SocketId socket,
                  sim::SubdomainId sub, int count) override;
    bool setPrefetchersEnabled(sim::GroupId group, int count) override;
    bool setCatWays(sim::GroupId group, int ways) override;

    /** Swap the active plan (tests script fault phases with this). */
    void setPlan(const FaultPlan &plan) { plan_ = plan; }
    const FaultPlan &plan() const { return plan_; }

    const KnobFaultStats &stats() const { return stats_; }

    /** Apply any queued delayed writes now (end-of-run drain). */
    void flush();

  private:
    struct PendingWrite
    {
        enum class Kind { Cores, Prefetchers, CatWays } kind;
        sim::GroupId group;
        sim::SocketId socket = 0;
        sim::SubdomainId sub = 0;
        int value = 0;
    };

    /** Route one write through the fault model. */
    bool submit(const PendingWrite &w);
    void applyNow(const PendingWrite &w);

    KnobSink &inner_;
    FaultPlan plan_;
    sim::Rng rng_;
    KnobFaultStats stats_;
    std::vector<PendingWrite> delayed_;
};

} // namespace hal
} // namespace kelp

#endif // KELP_HAL_FAULT_INJECTOR_HH
