/**
 * @file
 * Resource-control knobs: the actuation interface of the runtime.
 *
 * These mirror the mechanisms the paper's runtime drives on real
 * hardware: CPU masks (core counts per subdomain), the per-core L2
 * prefetcher MSR toggle, Intel CAT way masks, and NUMA memory
 * binding. All group mutation goes through this class so that core
 * capacity is validated against the topology in one place.
 */

#ifndef KELP_HAL_KNOBS_HH
#define KELP_HAL_KNOBS_HH

#include "hal/task_group.hh"

namespace kelp {
namespace hal {

/**
 * Abstract actuation backend. Controllers write knobs through this
 * interface so actuation can be swapped (simulated registry, real
 * MSR/cgroup writes, or a fault-injecting wrapper). Every mutator
 * reports whether the write landed: real MSR and cgroup writes can
 * fail transiently, and hardened controllers retry on failure.
 */
class KnobSink
{
  public:
    virtual ~KnobSink() = default;

    /** Set the cores a group holds in (socket, subdomain). */
    virtual bool setCores(sim::GroupId group, sim::SocketId socket,
                          sim::SubdomainId sub, int count) = 0;

    /** Set how many of the group's cores keep prefetchers enabled. */
    virtual bool setPrefetchersEnabled(sim::GroupId group,
                                       int count) = 0;

    /** Dedicate LLC ways to the group via CAT (0 = shared pool). */
    virtual bool setCatWays(sim::GroupId group, int ways) = 0;
};

/**
 * Snapshot of a group's actual hardware-visible knob state, as read
 * back from the registry (the simulated MSR/cgroup ground truth).
 * Restarted controllers reconcile their checkpointed intent against
 * this before resuming: a fault-injecting sink may have dropped or
 * delayed writes, so the checkpoint and the hardware can diverge.
 */
struct GroupKnobState
{
    /** Cores held per (socket, subdomain). */
    std::array<std::array<int, 2>, maxSockets> cores = {};

    /** Cores with L2 prefetchers enabled. */
    int prefetchers = 0;

    /** Dedicated LLC (CAT) ways. */
    int catWays = 0;
};

/** Mutating interface over a GroupRegistry. */
class ResourceKnobs : public KnobSink
{
  public:
    explicit ResourceKnobs(GroupRegistry &registry);

    /** Read back a group's actual knob state (never faulted: this is
     * the reconciliation path's view of the hardware itself). */
    GroupKnobState groupState(sim::GroupId group) const;

    /**
     * Set the number of cores a group holds in (socket, subdomain).
     * Fails fatally if the subdomain would be oversubscribed;
     * otherwise the write always lands (returns true).
     */
    bool setCores(sim::GroupId group, sim::SocketId socket,
                  sim::SubdomainId sub, int count) override;

    /** Adjust a group's cores in (socket, subdomain) by delta,
     * clamped to [0, free]. Returns the applied new count. */
    int adjustCores(sim::GroupId group, sim::SocketId socket,
                    sim::SubdomainId sub, int delta);

    /** Set how many of the group's cores keep prefetchers enabled
     * (clamped to [0, total cores]). */
    bool setPrefetchersEnabled(sim::GroupId group, int count) override;

    /** Dedicate LLC ways to the group via CAT (0 = shared pool). */
    bool setCatWays(sim::GroupId group, int ways) override;

    /** Bind the group's memory allocation to (socket, subdomain). */
    void setMemBinding(sim::GroupId group, sim::SocketId socket,
                       sim::SubdomainId sub);

    GroupRegistry &registry() { return registry_; }

  private:
    GroupRegistry &registry_;
};

} // namespace hal
} // namespace kelp

#endif // KELP_HAL_KNOBS_HH
