#include "hal/counters.hh"

#include "sim/log.hh"

namespace kelp {
namespace hal {

PerfCounters::PerfCounters(const mem::MemSystem &mem)
    : mem_(mem)
{
    // Prime the window cursors with an initial read, the way real
    // counters are consumed (read, diff, divide). A reader built at
    // time zero is unaffected (the cursors already sit at zero), but
    // one built mid-run -- a restarted controller's, say -- must not
    // report a first window stretching back through history it never
    // lived through.
    for (int s = 0; s < mem_.numSockets(); ++s)
        sample(s);
}

CounterSample
PerfCounters::sample(sim::SocketId socket)
{
    KELP_ASSERT(socket >= 0 && socket < mem_.numSockets(),
                "socket out of range");
    auto &cur = cursors_[socket];
    const auto &c = mem_.counters(socket);

    CounterSample out;
    out.socketBw = c.bw.readSince(cur.bw, 0.0);
    // The cursor now sits at the accumulator's total elapsed time:
    // the window-end timestamp of this read.
    out.windowEnd = cur.bw.time;
    out.memLatency =
        c.latency.readSince(cur.lat, mem_.baseLatency());
    out.saturation = mem_.fastAsserted(socket).readSince(cur.sat, 0.0);
    for (int d = 0; d < 2; ++d) {
        out.subdomainBw[d] =
            c.subdomainBw[d].readSince(cur.sub[d], 0.0);
        out.subdomainLat[d] = c.subdomainLat[d].readSince(
            cur.subLat[d], mem_.baseLatency());
    }
    return out;
}

std::array<double, PerfCounters::kCursorDoubles>
PerfCounters::cursorState(sim::SocketId socket) const
{
    KELP_ASSERT(socket >= 0 && socket < mem_.numSockets(),
                "socket out of range");
    const SocketCursors &cur = cursors_[socket];
    return {cur.bw.integral,        cur.bw.time,
            cur.lat.integral,       cur.lat.time,
            cur.sat.integral,       cur.sat.time,
            cur.sub[0].integral,    cur.sub[0].time,
            cur.sub[1].integral,    cur.sub[1].time,
            cur.subLat[0].integral, cur.subLat[0].time,
            cur.subLat[1].integral, cur.subLat[1].time};
}

void
PerfCounters::restoreCursorState(
    sim::SocketId socket,
    const std::array<double, kCursorDoubles> &state)
{
    KELP_ASSERT(socket >= 0 && socket < mem_.numSockets(),
                "socket out of range");
    SocketCursors &cur = cursors_[socket];
    cur.bw = {state[0], state[1]};
    cur.lat = {state[2], state[3]};
    cur.sat = {state[4], state[5]};
    cur.sub[0] = {state[6], state[7]};
    cur.sub[1] = {state[8], state[9]};
    cur.subLat[0] = {state[10], state[11]};
    cur.subLat[1] = {state[12], state[13]};
}

} // namespace hal
} // namespace kelp
