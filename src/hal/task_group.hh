/**
 * @file
 * Task groups: the cgroup-like resource containers the Kelp runtime
 * manipulates.
 *
 * A group carries everything the node-level scheduler (Borglet in the
 * paper) binds for a job: priority class, per-subdomain core
 * allocations (CPU masks), the number of cores with L2 prefetchers
 * enabled, dedicated LLC (CAT) ways, and NUMA memory binding. Tasks
 * attach to a group and inherit its resources.
 */

#ifndef KELP_HAL_TASK_GROUP_HH
#define KELP_HAL_TASK_GROUP_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/topology.hh"
#include "sim/types.hh"

namespace kelp {
namespace hal {

/** Priority class of a group (the paper's hi/lo split). */
enum class Priority { High, Low };

/** Maximum sockets supported by the allocation tables. */
constexpr int maxSockets = 2;

/** Core counts held per (socket, subdomain). */
struct CoreAllocation
{
    std::array<std::array<int, 2>, maxSockets> count = {};

    int
    total() const
    {
        int t = 0;
        for (const auto &s : count)
            for (int c : s)
                t += c;
        return t;
    }

    int
    inSocket(sim::SocketId s) const
    {
        return count[s][0] + count[s][1];
    }

    int
    inSubdomain(sim::SocketId s, sim::SubdomainId d) const
    {
        return count[s][d];
    }
};

/** Where a group's memory pages are allocated. */
struct MemBinding
{
    sim::SocketId socket = 0;
    sim::SubdomainId subdomain = 0;
};

/**
 * One resource container. Mutations go through ResourceKnobs so that
 * capacity constraints are enforced centrally.
 */
class TaskGroup
{
  public:
    TaskGroup(sim::GroupId id, std::string name, Priority priority);

    sim::GroupId id() const { return id_; }
    const std::string &name() const { return name_; }
    Priority priority() const { return priority_; }

    const CoreAllocation &cores() const { return cores_; }

    /** Cores whose L2 prefetchers are enabled (<= total cores). */
    int prefetchersEnabled() const { return prefetchersEnabled_; }

    /** Fraction of this group's cores with prefetchers enabled. */
    double prefetcherFraction() const;

    /** Dedicated LLC ways in each LLC domain the group occupies. */
    int catWays() const { return catWays_; }

    const MemBinding &memBinding() const { return memBinding_; }

    /**
     * A floating group has no CPU mask: its tasks share all cores of
     * their socket with other floating groups (the Baseline
     * configuration). Setting cores through ResourceKnobs pins the
     * group.
     */
    bool floating() const { return floating_; }

  private:
    friend class ResourceKnobs;

    sim::GroupId id_;
    std::string name_;
    Priority priority_;
    CoreAllocation cores_;
    int prefetchersEnabled_ = 0;
    int catWays_ = 0;
    MemBinding memBinding_;
    bool floating_ = true;
};

/**
 * Registry of groups on a node; owns the groups and knows the
 * topology so allocations can be validated.
 */
class GroupRegistry
{
  public:
    explicit GroupRegistry(const cpu::Topology &topo);

    /** Create a group; names must be unique. */
    TaskGroup &create(const std::string &name, Priority priority);

    TaskGroup &get(sim::GroupId id);
    const TaskGroup &get(sim::GroupId id) const;

    /** Find by name; nullptr if absent. */
    TaskGroup *find(const std::string &name);

    /** Number of groups. */
    int size() const { return static_cast<int>(groups_.size()); }

    /** All groups, in creation order. */
    const std::vector<std::unique_ptr<TaskGroup>> &all() const
    {
        return groups_;
    }

    /** Cores allocated across all groups in (socket, subdomain). */
    int allocatedIn(sim::SocketId s, sim::SubdomainId d) const;

    /** Free cores remaining in (socket, subdomain). */
    int freeIn(sim::SocketId s, sim::SubdomainId d) const;

    const cpu::Topology &topology() const { return topo_; }

    /** Hook fired on every group mutation (creation or any knob
     * write through ResourceKnobs); the node uses it to invalidate
     * its quiescence state. */
    void setChangeHook(std::function<void()> hook)
    {
        changeHook_ = std::move(hook);
    }

    /** Notify the hook owner that group state changed. */
    void noteChange()
    {
        if (changeHook_)
            changeHook_();
    }

  private:
    const cpu::Topology &topo_;
    std::vector<std::unique_ptr<TaskGroup>> groups_;
    std::function<void()> changeHook_;
};

} // namespace hal
} // namespace kelp

#endif // KELP_HAL_TASK_GROUP_HH
