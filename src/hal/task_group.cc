#include "hal/task_group.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace hal {

TaskGroup::TaskGroup(sim::GroupId id, std::string name, Priority priority)
    : id_(id), name_(std::move(name)), priority_(priority)
{
}

double
TaskGroup::prefetcherFraction() const
{
    int total = cores_.total();
    if (total <= 0)
        return 1.0;
    return std::clamp(
        static_cast<double>(prefetchersEnabled_) / total, 0.0, 1.0);
}

GroupRegistry::GroupRegistry(const cpu::Topology &topo)
    : topo_(topo)
{
}

TaskGroup &
GroupRegistry::create(const std::string &name, Priority priority)
{
    if (find(name))
        sim::fatal("duplicate task group name: ", name);
    auto id = static_cast<sim::GroupId>(groups_.size());
    groups_.push_back(std::make_unique<TaskGroup>(id, name, priority));
    noteChange();
    return *groups_.back();
}

TaskGroup &
GroupRegistry::get(sim::GroupId id)
{
    KELP_ASSERT(id >= 0 && id < size(), "group id out of range: ", id);
    return *groups_[id];
}

const TaskGroup &
GroupRegistry::get(sim::GroupId id) const
{
    KELP_ASSERT(id >= 0 && id < size(), "group id out of range: ", id);
    return *groups_[id];
}

TaskGroup *
GroupRegistry::find(const std::string &name)
{
    for (auto &g : groups_)
        if (g->name() == name)
            return g.get();
    return nullptr;
}

int
GroupRegistry::allocatedIn(sim::SocketId s, sim::SubdomainId d) const
{
    int total = 0;
    for (const auto &g : groups_)
        total += g->cores().inSubdomain(s, d);
    return total;
}

int
GroupRegistry::freeIn(sim::SocketId s, sim::SubdomainId d) const
{
    return topo_.coresPerSubdomain() - allocatedIn(s, d);
}

} // namespace hal
} // namespace kelp
