#include "hal/fault_injector.hh"

#include <charconv>
#include <cstdlib>
#include <sstream>

#include "sim/log.hh"

namespace kelp {
namespace hal {

bool
FaultPlan::any() const
{
    return dropProb > 0.0 || stuckProb > 0.0 || noiseProb > 0.0 ||
           spikeProb > 0.0 || knobFailProb > 0.0 ||
           knobDelayProb > 0.0;
}

namespace {

/** Set a failure description and return nullopt (tryParse helper). */
std::optional<FaultPlan>
parseError(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return std::nullopt;
}

} // namespace

std::optional<FaultPlan>
FaultPlan::tryParse(const std::string &spec, std::string *error)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        if (eq == std::string::npos) {
            return parseError(error, "fault spec item '" + item +
                                     "' needs key=value");
        }
        std::string key = item.substr(0, eq);
        std::string str = item.substr(eq + 1);
        char *end = nullptr;
        double value = std::strtod(str.c_str(), &end);
        // strtod accepts the empty string (it parses zero characters
        // and leaves end at the terminator), so reject it explicitly.
        if (str.empty() || !end || *end != '\0') {
            return parseError(error, "fault spec key '" + key +
                                     "' has bad value '" + str + "'");
        }
        bool probability = true;
        if (key == "drop")
            plan.dropProb = value;
        else if (key == "stuck")
            plan.stuckProb = value;
        else if (key == "noise")
            plan.noiseProb = value;
        else if (key == "noisefrac") {
            plan.noiseFrac = value;
            probability = false;
            if (value < 0.0) {
                return parseError(error,
                                  "fault spec key 'noisefrac' must "
                                  "be >= 0, got '" + str + "'");
            }
        } else if (key == "spike")
            plan.spikeProb = value;
        else if (key == "spikescale") {
            plan.spikeScale = value;
            probability = false;
            if (value <= 0.0) {
                return parseError(error,
                                  "fault spec key 'spikescale' must "
                                  "be > 0, got '" + str + "'");
            }
        } else if (key == "knobfail")
            plan.knobFailProb = value;
        else if (key == "knobdelay")
            plan.knobDelayProb = value;
        else {
            return parseError(error,
                              "unknown fault spec key '" + key +
                              "' (drop|stuck|noise|noisefrac|spike|"
                              "spikescale|knobfail|knobdelay)");
        }
        if (probability && (value < 0.0 || value > 1.0)) {
            return parseError(error, "fault spec key '" + key +
                                     "' is a probability and must be "
                                     "in [0, 1], got '" + str + "'");
        }
    }
    return plan;
}

std::string
FaultPlan::toString() const
{
    // Shortest round-trip decimal: strtod() of the result gives back
    // the exact double, and re-rendering that double gives back the
    // exact bytes, which is what makes the spec canonical.
    auto shortest = [](double v) {
        char buf[32];
        auto res = std::to_chars(buf, buf + sizeof(buf), v);
        return std::string(buf, res.ptr);
    };
    const FaultPlan def;
    std::ostringstream os;
    auto field = [&](const char *key, double value, double defValue) {
        // Exact comparison is the point: a field is printed iff its
        // bits differ from the default-constructed plan.
        if (value == defValue) // kelp: allow(float-eq): canonical print must distinguish exact default values
            return;
        if (os.tellp() > 0)
            os << ",";
        os << key << "=" << shortest(value);
    };
    field("drop", dropProb, def.dropProb);
    field("stuck", stuckProb, def.stuckProb);
    field("noise", noiseProb, def.noiseProb);
    field("noisefrac", noiseFrac, def.noiseFrac);
    field("spike", spikeProb, def.spikeProb);
    field("spikescale", spikeScale, def.spikeScale);
    field("knobfail", knobFailProb, def.knobFailProb);
    field("knobdelay", knobDelayProb, def.knobDelayProb);
    return os.str();
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    std::string error;
    std::optional<FaultPlan> plan = tryParse(spec, &error);
    if (!plan)
        sim::fatal(error);
    return *plan;
}

FaultyCounterSource::FaultyCounterSource(
    std::unique_ptr<CounterSource> inner, const FaultPlan &plan,
    sim::Rng rng)
    : inner_(std::move(inner)), plan_(plan), rng_(rng)
{
    KELP_ASSERT(inner_, "fault injector needs a backend source");
}

CounterSample
FaultyCounterSource::sample(sim::SocketId socket)
{
    // Always consume the inner read so the windowed cursors advance
    // exactly as they would without injection: a dropped read on real
    // hardware still advances the counter, it just loses the window.
    CounterSample clean = inner_->sample(socket);
    ++stats_.reads;

    if (rng_.chance(plan_.dropProb)) {
        ++stats_.drops;
        return CounterSample{};  // zeroed: the dropout signature
    }
    if (rng_.chance(plan_.stuckProb) && haveLast_[socket]) {
        ++stats_.stucks;
        return lastGood_[socket];
    }
    if (rng_.chance(plan_.noiseProb)) {
        ++stats_.noises;
        CounterSample s = clean;
        auto jitter = [this](double &x) {
            x *= 1.0 + rng_.uniform(-plan_.noiseFrac, plan_.noiseFrac);
        };
        jitter(s.socketBw);
        jitter(s.memLatency);
        jitter(s.saturation);
        for (int d = 0; d < 2; ++d) {
            jitter(s.subdomainBw[d]);
            jitter(s.subdomainLat[d]);
        }
        return s;
    }
    if (rng_.chance(plan_.spikeProb)) {
        ++stats_.spikes;
        CounterSample s = clean;
        switch (rng_.below(4)) {
          case 0:
            s.socketBw *= plan_.spikeScale;
            break;
          case 1:
            s.memLatency *= plan_.spikeScale;
            break;
          case 2:
            s.saturation *= plan_.spikeScale;
            break;
          case 3:
            s.subdomainBw[0] *= plan_.spikeScale;
            break;
        }
        return s;
    }

    lastGood_[socket] = clean;
    haveLast_[socket] = true;
    return clean;
}

FaultyKnobSink::FaultyKnobSink(KnobSink &inner, const FaultPlan &plan,
                               sim::Rng rng)
    : inner_(inner), plan_(plan), rng_(rng)
{
}

void
FaultyKnobSink::applyNow(const PendingWrite &w)
{
    switch (w.kind) {
      case PendingWrite::Kind::Cores:
        inner_.setCores(w.group, w.socket, w.sub, w.value);
        break;
      case PendingWrite::Kind::Prefetchers:
        inner_.setPrefetchersEnabled(w.group, w.value);
        break;
      case PendingWrite::Kind::CatWays:
        inner_.setCatWays(w.group, w.value);
        break;
    }
}

void
FaultyKnobSink::flush()
{
    for (const PendingWrite &w : delayed_)
        applyNow(w);
    delayed_.clear();
}

bool
FaultyKnobSink::submit(const PendingWrite &w)
{
    // Delayed writes land immediately before the next write reaches
    // the sink, preserving their original order.
    flush();
    ++stats_.writes;
    if (rng_.chance(plan_.knobFailProb)) {
        ++stats_.failures;
        return false;
    }
    if (rng_.chance(plan_.knobDelayProb)) {
        ++stats_.delays;
        delayed_.push_back(w);
        return true;
    }
    applyNow(w);
    return true;
}

bool
FaultyKnobSink::setCores(sim::GroupId group, sim::SocketId socket,
                         sim::SubdomainId sub, int count)
{
    return submit(
        {PendingWrite::Kind::Cores, group, socket, sub, count});
}

bool
FaultyKnobSink::setPrefetchersEnabled(sim::GroupId group, int count)
{
    return submit(
        {PendingWrite::Kind::Prefetchers, group, 0, 0, count});
}

bool
FaultyKnobSink::setCatWays(sim::GroupId group, int ways)
{
    return submit({PendingWrite::Kind::CatWays, group, 0, 0, ways});
}

} // namespace hal
} // namespace kelp
