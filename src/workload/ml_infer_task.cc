#include "workload/ml_infer_task.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace wl {

MlInferTask::MlInferTask(std::string name, sim::GroupId group,
                         InferConfig cfg, accel::Accelerator *accel,
                         uint64_t seed)
    : Task(std::move(name), group), cfg_(std::move(cfg)),
      accel_(accel), rng_(seed)
{
    KELP_ASSERT(!cfg_.iteration.stages.empty(),
                "inference iteration has no stages");
    for (const auto &stage : cfg_.iteration.stages)
        KELP_ASSERT(stage.segments.size() == 1,
                    "inference stages must have one segment each");
    KELP_ASSERT(cfg_.itersPerRequest >= 1, "need >= 1 iteration");
    KELP_ASSERT(cfg_.pipelineDepth >= 1, "need pipeline depth >= 1");
    if (cfg_.serial) {
        cfg_.closedLoop = true;
        cfg_.pipelineDepth = 1;
    }
    KELP_ASSERT(!(cfg_.serial && cfg_.externalArrivals),
                "serial trace mode cannot be externally driven");
    if (cfg_.externalArrivals) {
        cfg_.closedLoop = false;
        // Never reached: submit() is the only arrival source.
        nextArrival_ = 1e300;
    } else if (!cfg_.closedLoop) {
        KELP_ASSERT(cfg_.targetQps > 0.0, "target QPS must be > 0");
        nextArrival_ = rng_.exponential(1.0 / cfg_.targetQps);
    }
}

void
MlInferTask::submit(sim::Time arrival)
{
    KELP_EXPECTS(cfg_.externalArrivals,
                 "submit() is only valid in externalArrivals mode");
    queue_.push_back(arrival);
    noteChange();
}

bool
MlInferTask::fastPrepare(const ExecEnv &env, sim::Time dt)
{
    (void)env;
    (void)dt;
    // Only the fully-idle server has a fast kernel: a closed loop
    // re-arms itself instantly and never idles, and any queued or
    // in-flight request makes intra-tick event processing necessary.
    return !cfg_.closedLoop && queue_.empty() && inFlight_.empty();
}

bool
MlInferTask::fastTickReady(sim::Time dt) const
{
    // Conservative: the next arrival must lie strictly beyond this
    // tick (externally-driven tasks hold a 1e300 sentinel here).
    return nextArrival_ > now_ + dt;
}

bool
MlInferTask::fastTickRun(sim::Time dt)
{
    // Replay of advance() on an idle server: the event loop runs no
    // admissions or retirements and the trailing assignment leaves
    // now_ at exactly entry-now_ + dt.
    now_ = now_ + dt;
    if (accel_) {
        accel_->recordEngineBusy(0.0, dt);
        accel_->recordLinkBusy(0.0, dt);
    }
    return true;
}

uint64_t
MlInferTask::fastHorizon(sim::Time dt) const
{
    // Ticks until the next arrival could fall inside one, with a
    // margin of a few ticks: per-tick accumulation of now_ drifts
    // from the closed-form division by at most a few ulp per tick,
    // and an overestimate here would skip a tick the stepped
    // protocol would have refused. (Externally-driven tasks hold a
    // 1e300 sentinel, which simply yields a huge horizon.)
    double ticks = (nextArrival_ - now_) / dt;
    if (!(ticks > 5.0))
        return 0;
    return static_cast<uint64_t>(std::min(ticks - 4.0, 1e15));
}

void
MlInferTask::fastTickRunMany(sim::Time dt, uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        now_ = now_ + dt;
    if (accel_)
        accel_->recordBusyRepeat(0.0, 0.0, dt, n);
}

const StepSegment &
MlInferTask::segmentOf(const Request &r) const
{
    return cfg_.iteration.stages[r.stage].segments[0];
}

int
MlInferTask::threadsWanted() const
{
    int threads = 1;
    for (const auto &stage : cfg_.iteration.stages) {
        const auto &seg = stage.segments[0];
        if (seg.kind == SegmentKind::Host)
            threads = std::max(threads, seg.host.parallelism);
    }
    // The pipeline can have several requests in host stages at once.
    return threads * std::min(cfg_.pipelineDepth, 2);
}

HostPhaseParams
MlInferTask::llcProfile() const
{
    for (const auto &stage : cfg_.iteration.stages) {
        const auto &seg = stage.segments[0];
        if (seg.kind == SegmentKind::Host)
            return seg.host;
    }
    return HostPhaseParams{};
}

bool
MlInferTask::advanceStage(Request &r)
{
    if (traceSink_) {
        traceSink_({segmentOf(r).kind, r.segmentStart, now_, r.iter});
    }
    ++r.stage;
    if (r.stage >= cfg_.iteration.stages.size()) {
        r.stage = 0;
        ++r.iter;
        if (r.iter >= cfg_.itersPerRequest)
            return true;
    }
    r.remaining = segmentOf(r).duration;
    r.segmentStart = now_;
    return false;
}

void
MlInferTask::admitFromQueue()
{
    while (static_cast<int>(inFlight_.size()) < cfg_.pipelineDepth &&
           !queue_.empty()) {
        Request r;
        r.arrival = queue_.front();
        queue_.pop_front();
        r.remaining = segmentOf(r).duration;
        r.segmentStart = now_;
        inFlight_.push_back(r);
    }
}

sim::GiBps
MlInferTask::bwDemand(const ExecEnv &env)
{
    // Demand comes from requests currently in host segments.
    int host_active = 0;
    const HostPhaseParams *params = nullptr;
    for (const auto &r : inFlight_) {
        const auto &seg = segmentOf(r);
        if (seg.kind == SegmentKind::Host) {
            ++host_active;
            params = &seg.host;
        }
    }
    if (!host_active)
        return 0.0;
    double share = env.effCores / host_active;
    double cores_each =
        std::min(share, static_cast<double>(params->parallelism));
    return hostDemand(*params, cores_each * host_active, demandBasis(),
                      env.missRatio, env.pfFraction);
}

void
MlInferTask::advance(sim::Time dt, const ExecEnv &env)
{
    sim::Time end = now_ + dt;
    sim::Time accel_busy = 0.0;
    sim::Time link_busy = 0.0;
    double last_host_speed = -1.0;

    // Event loop within the tick: advance to the next segment
    // completion or arrival, whichever is first.
    int guard = 0;
    while (now_ < end - 1e-12) {
        KELP_ASSERT(++guard < 100000, "inference event loop stuck");

        // Admit arrivals that have already happened.
        if (!cfg_.closedLoop) {
            // Externally-driven tasks get arrivals via submit()
            // only; the self-generating branch never runs for them
            // (nextArrival_ stays at its sentinel).
            while (nextArrival_ <= now_ + 1e-12) {
                queue_.push_back(nextArrival_);
                nextArrival_ += rng_.exponential(1.0 / cfg_.targetQps);
            }
        } else {
            // Closed loop: keep exactly pipelineDepth requests in
            // flight; a fresh one arrives the moment a slot frees.
            while (static_cast<int>(inFlight_.size() + queue_.size()) <
                   cfg_.pipelineDepth) {
                queue_.push_back(now_);
            }
        }
        admitFromQueue();

        // Compute speeds for every in-flight request.
        int host_active = 0;
        for (const auto &r : inFlight_)
            if (segmentOf(r).kind == SegmentKind::Host)
                ++host_active;

        bool accel_taken = false, pcie_taken = false;
        std::vector<double> speed(inFlight_.size(), 0.0);
        for (size_t i = 0; i < inFlight_.size(); ++i) {
            const auto &seg = segmentOf(inFlight_[i]);
            switch (seg.kind) {
              case SegmentKind::Host: {
                double share = env.effCores / host_active;
                double cores_each = std::min(
                    share, static_cast<double>(seg.host.parallelism));
                double core_scale =
                    cores_each / seg.host.parallelism;
                HostSpeeds sp =
                    hostSpeeds(seg.host, env, demandBasis());
                speed[i] = std::max(sp.speed * core_scale, 1e-6);
                last_host_speed = sp.demandSpeed;
                break;
              }
              case SegmentKind::Accel:
                // FIFO: only the first accel-stage request runs.
                if (!accel_taken) {
                    speed[i] = 1.0;
                    accel_taken = true;
                }
                break;
              case SegmentKind::Pcie:
                if (!pcie_taken) {
                    speed[i] = 1.0;
                    pcie_taken = true;
                }
                break;
            }
        }

        // Next event: earliest completion, next arrival, or tick end.
        sim::Time horizon = end;
        if (!cfg_.closedLoop)
            horizon = std::min(horizon, nextArrival_);
        for (size_t i = 0; i < inFlight_.size(); ++i) {
            if (speed[i] > 0.0) {
                horizon = std::min(
                    horizon, now_ + inFlight_[i].remaining / speed[i]);
            }
        }
        sim::Time slice = std::max(horizon - now_, 1e-12);

        for (size_t i = 0; i < inFlight_.size(); ++i) {
            if (speed[i] > 0.0)
                inFlight_[i].remaining -= slice * speed[i];
            const auto &seg = segmentOf(inFlight_[i]);
            if (speed[i] > 0.0 && seg.kind == SegmentKind::Accel)
                accel_busy += slice;
            if (speed[i] > 0.0 && seg.kind == SegmentKind::Pcie)
                link_busy += slice;
        }
        now_ += slice;

        // Retire completed segments and requests.
        for (size_t i = 0; i < inFlight_.size();) {
            if (inFlight_[i].remaining <= 1e-12) {
                if (advanceStage(inFlight_[i])) {
                    latency_.add(now_ - inFlight_[i].arrival);
                    ++completed_;
                    if (completionSink_)
                        completionSink_(inFlight_[i].arrival, now_);
                    inFlight_.erase(inFlight_.begin() +
                                    static_cast<long>(i));
                    continue;
                }
            }
            ++i;
        }
    }
    now_ = end;

    if (accel_) {
        accel_->recordEngineBusy(accel_busy / dt, dt);
        accel_->recordLinkBusy(link_busy / dt, dt);
    }
    if (last_host_speed >= 0.0)
        updateDemandBasis(last_host_speed);
}

} // namespace wl
} // namespace kelp
