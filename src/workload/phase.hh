/**
 * @file
 * Phase descriptors: how a slice of work responds to the host
 * environment.
 *
 * Every workload is a composition of three segment kinds:
 *  - Host segments run on CPU cores and are the interference-sensitive
 *    part: their speed depends on memory latency, bandwidth share, LLC
 *    hit rate, prefetchers, SMT contention, and distress throttling.
 *  - Accel segments run on the accelerator at a fixed rate (the paper
 *    shows they are insensitive to host interference).
 *  - Pcie segments move data across the host link at a fixed rate
 *    (the paper observed no PCIe contention in its experiments).
 *
 * Host behaviour is captured by HostPhaseParams, calibrated per
 * workload in calibration.hh.
 */

#ifndef KELP_WORKLOAD_PHASE_HH
#define KELP_WORKLOAD_PHASE_HH

#include <string>
#include <vector>

#include "cpu/prefetcher.hh"
#include "sim/types.hh"

namespace kelp {
namespace wl {

/** Interference-response parameters of host-side execution. */
struct HostPhaseParams
{
    /**
     * Fraction of standalone execution time spent computing (not
     * stalled on memory). The remaining (1 - cpuFrac) scales with
     * effective memory latency.
     */
    double cpuFrac = 0.5;

    /** Bandwidth demand per core at standalone speed, GiB/s. */
    double bwPerCore = 2.0;

    /**
     * How strongly the stall time responds to latency/miss inflation,
     * in [0, 1]. Pointer-chasing code (beam search) is 1.0: stalls
     * scale with full latency. Deeply-pipelined streaming code with
     * high MLP (Stream, parameter-server reductions) is low: latency
     * inflation barely slows it -- bandwidth starvation does.
     */
    double latencySensitivity = 1.0;

    /** Maximum cores one execution of this phase can use. */
    int parallelism = 1;

    /** Prefetcher response. */
    cpu::PrefetchParams prefetch;

    /** LLC working-set size, MiB. */
    double llcFootprintMb = 8.0;

    /** Hit rate with unbounded LLC capacity. */
    double llcHitMax = 0.85;

    /** Relative LLC access intensity (shared-pool competition). */
    double llcWeight = 1.0;
};

/** Kind of a step segment. */
enum class SegmentKind { Host, Accel, Pcie };

/** One segment of a step: a contiguous slice of one resource. */
struct StepSegment
{
    SegmentKind kind = SegmentKind::Host;

    /** Standalone duration of the segment, seconds. */
    sim::Time duration = 1 * sim::msec;

    /** Host response parameters (Host segments only). */
    HostPhaseParams host;
};

/**
 * One stage of a step: segments that execute concurrently; the stage
 * completes when all of them do. CNN in-feed overlapping accelerator
 * compute is a stage with one Host and one Accel segment.
 */
struct StepStage
{
    std::vector<StepSegment> segments;
};

/** A full step (training step or inference iteration): sequential
 * stages. */
struct StepGraph
{
    std::vector<StepStage> stages;

    /** Sum of standalone stage durations (critical path). */
    sim::Time standaloneDuration() const;

    /** Total standalone host-busy time across all stages. */
    sim::Time hostTime() const;
};

/** Convenience constructors. */
StepSegment hostSegment(sim::Time duration, const HostPhaseParams &p);
StepSegment accelSegment(sim::Time duration);
StepSegment pcieSegment(sim::Time duration);

} // namespace wl
} // namespace kelp

#endif // KELP_WORKLOAD_PHASE_HH
