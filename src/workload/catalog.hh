/**
 * @file
 * Workload catalog: the four production ML workloads (Table I) and
 * the colocated CPU workloads / synthetic aggressors used throughout
 * the paper's evaluation.
 *
 * The paper's workloads are confidential; these models are calibrated
 * against everything the paper discloses: platform, CPU-accelerator
 * interaction pattern, CPU and host-memory intensity classes
 * (Table I), and the sensitivity/degradation numbers in Figures 3, 5,
 * 7, 9, 10, 13, 15 and 16. Every constant in catalog.cc carries the
 * paper target it was calibrated toward.
 */

#ifndef KELP_WORKLOAD_CATALOG_HH
#define KELP_WORKLOAD_CATALOG_HH

#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "workload/ml_infer_task.hh"
#include "workload/phase.hh"

namespace kelp {
namespace wl {

/** The four accelerated ML workloads (paper Table I). */
enum class MlWorkload { Rnn1, Cnn1, Cnn2, Cnn3 };

/** Colocated CPU workloads and synthetic aggressors. */
enum class CpuWorkload { Stream, Stitch, Cpuml, LlcAggressor,
                         DramAggressor };

/** Synthetic DRAM aggressor intensity (Figure 7's L/M/H). */
enum class AggressorLevel { Low, Medium, High };

/** Full description of one ML workload (Table I row + model). */
struct MlDesc
{
    MlWorkload id;
    std::string name;

    /** Platform the workload runs on. */
    accel::Kind platform;

    /** True for the inference server (RNN1). */
    bool inference = false;

    /** Training-step graph (training workloads). */
    StepGraph step;

    /** Inference configuration (inference workloads). */
    InferConfig infer;

    /** Host cores the ML task is entitled to. */
    int mlCores = 4;

    /** Table I columns. */
    std::string description;
    std::string interaction;
    std::string cpuIntensity;
    std::string memIntensity;
};

/** All four ML workloads, in Table I order. */
std::vector<MlWorkload> allMlWorkloads();

/** The three CPU workloads used in the evaluation (Section V-A). */
std::vector<CpuWorkload> evaluationCpuWorkloads();

/** Catalog entry for an ML workload. */
MlDesc mlDesc(MlWorkload w);

/** Human-readable name. */
const char *mlName(MlWorkload w);
const char *cpuName(CpuWorkload w);

/** Host-phase parameters for a CPU workload. The LLC aggressor needs
 * the platform's LLC size (its working set exactly fits the LLC). */
HostPhaseParams cpuParams(CpuWorkload w, double platform_llc_mb = 32.0);

/** Threads per "instance" of a CPU workload (Stitch runs 2-thread
 * instances; the others are per-thread sweeps). */
int threadsPerInstance(CpuWorkload w);

/** Thread count of a synthetic DRAM aggressor at a given level,
 * scaled to one NUMA subdomain's bandwidth capacity. */
int aggressorThreads(AggressorLevel level, double subdomain_bw_gibps);

const char *aggressorLevelName(AggressorLevel level);

/**
 * DRAM-aggressor thread count that just saturates a socket of the
 * given peak bandwidth (~95% offered load), matching the paper's
 * "traverses a large array" synthetic at full blast.
 */
int saturatingDramThreads(double peak_bw_gibps);

/**
 * One archetype of the dynamic-colocation churn mix: what kind of
 * batch antagonist arrives, how often relative to the others, how
 * long it lives, and how wide it runs. The lifecycle engine samples
 * arrivals from this catalog (Poisson inter-arrivals, exponential
 * lifetimes) so churned colocations draw from the same workload
 * population as the static experiments and the fleet profiler.
 */
struct ChurnArchetype
{
    CpuWorkload kind;

    /** Relative arrival weight within the mix. */
    double weight = 1.0;

    /** Mean task lifetime, simulated seconds. */
    double meanLifetime = 60.0;

    /** Thread-count range per arriving instance. */
    int minThreads = 1;
    int maxThreads = 4;
};

/** The churn mix (same WSC population as the fleet profiler). */
const std::vector<ChurnArchetype> &churnMix();

} // namespace wl
} // namespace kelp

#endif // KELP_WORKLOAD_CATALOG_HH
