#include "workload/task.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace wl {

HostSpeeds
hostSpeeds(const HostPhaseParams &p, const ExecEnv &env,
           double demand_basis)
{
    // Latency view: the memory-stall portion of execution time scales
    // with effective latency, LLC miss inflation, and the stall
    // exposure from partially-disabled prefetchers.
    double lat_ratio =
        std::max(env.latencyNs / env.baseLatencyNs, 1e-3);
    double pf_stall = cpu::prefetchStallFactor(p.prefetch,
                                               env.pfFraction);
    double mem_frac = 1.0 - p.cpuFrac;
    // The stall multiplier is damped by the phase's latency
    // sensitivity: high-MLP streaming code barely feels latency
    // inflation (bandwidth starvation limits it instead), while
    // dependent-load code feels it fully.
    double stall_mult = env.missRatio * lat_ratio * pf_stall;
    stall_mult = 1.0 + p.latencySensitivity * (stall_mult - 1.0);
    stall_mult = std::max(stall_mult, 0.1);

    // Distress throttling slows memory issue: the stall portion of
    // execution stretches by 1/throttle. Compute-heavy phases are
    // therefore less exposed than stall-heavy ones -- exactly the
    // CNN2-vs-CNN1 asymmetry in Figure 7.
    double throttle = std::max(env.throttle, 0.05);
    double rel_unthrottled = p.cpuFrac + mem_frac * stall_mult;
    double rel_time = p.cpuFrac + mem_frac * stall_mult / throttle;
    double speed_lat = 1.0 / std::max(rel_time, 1e-6);

    // Bandwidth view: the task cannot progress faster than its data
    // arrives. The demand it submitted corresponded to demand_basis
    // speed, so granted bandwidth supports demand_basis * fraction.
    double speed = speed_lat;
    if (env.bwFraction < 0.999) {
        double speed_bw =
            std::max(demand_basis, 0.05) * env.bwFraction;
        speed = std::min(speed, speed_bw);
    }

    HostSpeeds out;
    out.speed = speed * env.smtFactor;
    // Offered memory pressure is largely prefetcher-driven for
    // streaming code (Section VI-B): throttling the core barely
    // reduces it, so the demand basis damps the throttle by the
    // phase's latency sensitivity. This is what lets a saturated
    // low-priority controller *stay* saturated and keep the distress
    // signal asserted (Figure 7's premise).
    double demand_throttle =
        1.0 - p.latencySensitivity * (1.0 - throttle);
    out.demandSpeed = (1.0 / std::max(rel_unthrottled, 1e-6)) *
                      demand_throttle * env.smtFactor;
    return out;
}

double
hostSpeed(const HostPhaseParams &p, const ExecEnv &env,
          double demand_basis)
{
    return hostSpeeds(p, env, demand_basis).speed;
}

double
hostDemand(const HostPhaseParams &p, double cores, double speed_basis,
           double miss_ratio, double pf_fraction)
{
    double pf_traffic =
        cpu::prefetchTrafficFactor(p.prefetch, pf_fraction);
    // Demand scales with how fast the task is actually running and
    // how many of its accesses miss the LLC relative to standalone.
    return p.bwPerCore * cores * pf_traffic * miss_ratio *
           std::clamp(speed_basis, 0.0, 1.5);
}

const char *
lifeStateName(LifeState s)
{
    switch (s) {
      case LifeState::Running:
        return "running";
      case LifeState::Suspended:
        return "suspended";
      case LifeState::Finished:
        return "finished";
      case LifeState::Crashed:
        return "crashed";
    }
    return "?";
}

Task::Task(std::string name, sim::GroupId group)
    : name_(std::move(name)), group_(group)
{
}

void
Task::setDataPlacement(std::vector<DataShare> placement)
{
    double total = 0.0;
    for (const auto &s : placement)
        total += s.fraction;
    KELP_ASSERT(placement.empty() || std::abs(total - 1.0) < 1e-6,
                "data placement fractions must sum to 1");
    dataPlacement_ = std::move(placement);
    noteChange();
}

double
Task::demandBasisStep(double basis, double achieved_speed)
{
    // Damped relaxation toward the achieved speed: fast enough to
    // track phase changes within a few 100 us ticks, slow enough to
    // avoid demand/grant oscillation.
    double next =
        std::clamp(basis + 0.5 * (achieved_speed - basis), 0.02, 1.5);
    // Convergence deadband. The basis feeds the task's bandwidth
    // demand, which feeds memory latency, which feeds the achieved
    // speed folded back in here; under colocation that loop can chase
    // its own rounding forever at the sub-ppm level, which has no
    // modeling significance but keeps the resolved state from ever
    // repeating bit-for-bit (so the quiescence fast path could never
    // engage). Treat asymptotic-tail updates as converged; real phase
    // and interference shifts are many orders of magnitude larger.
    if (std::fabs(next - basis) <= 1e-6 * basis)
        return basis;
    return next;
}

void
Task::updateDemandBasis(double achieved_speed)
{
    demandBasis_ = demandBasisStep(demandBasis_, achieved_speed);
}

} // namespace wl
} // namespace kelp
